//! Kernel execution: cycle-accurate and functional modes.

use crate::checkpoint;
use crate::config::SimConfig;
use crate::runtime::{RtRuntime, RuntimeStats};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use vksim_fault::SimError;
use vksim_gpu::{GpuFault, GpuSim, GpuStats, LaunchDims, RunOutcome};
use vksim_isa::interp::{run_to_exit, ExecError, ThreadState};
use vksim_isa::SimMemory;
use vksim_power::{ActivityCounts, PowerModel, PowerReport};
use vksim_snapshot::Snapshot;
use vksim_trace::{
    chrome_trace_json, hotspot_summary, interval_csv, ProfReport, RtReport, TraceReport,
    TraversalAnalytics,
};
use vksim_vulkan::{Device, TraceRaysCommand};

/// Everything a simulated `vkCmdTraceRaysKHR` produced.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Timing-model statistics.
    pub gpu: GpuStats,
    /// Functional-traversal statistics.
    pub runtime: RuntimeStats,
    /// Power/energy estimate.
    pub power: PowerReport,
    /// Final functional memory (framebuffers, output buffers).
    pub memory: SimMemory,
    /// The cycle-level trace, when tracing was enabled (any exporter files
    /// requested in the config have already been written).
    pub trace: Option<TraceReport>,
    /// The cycle-accounting breakdown, when accounting was enabled
    /// (`VKSIM_PROF` / [`vksim_trace::TraceConfig::accounting`]; the flat
    /// JSON export, if requested, has already been written).
    pub prof: Option<ProfReport>,
    /// The ray-traversal analytics report, when RT analytics was enabled
    /// (`VKSIM_RT_ANALYTICS` /
    /// [`vksim_trace::TraceConfig::rt_analytics`]; the flat JSON and
    /// heatmap CSV exports, if requested, have already been written).
    pub rt: Option<RtReport>,
}

/// A classified simulation failure.
///
/// Carries the structured [`SimError`], the path of the post-mortem dump
/// (when one was written), and — for timing-model faults — the partial
/// [`RunReport`] accumulated up to the failing cycle, so callers can
/// inspect counters, power and memory state post mortem.
#[derive(Debug)]
pub struct SimFailure {
    /// What went wrong, classified.
    pub error: SimError,
    /// Post-mortem dump file (flat JSON), if one could be written.
    pub dump: Option<PathBuf>,
    /// Final machine snapshot written beside the post-mortem dump, if one
    /// could be captured — the complete state at the failing cycle, for
    /// offline inspection or a recovery attempt.
    pub snapshot: Option<PathBuf>,
    /// Statistics and memory state up to the fault. `None` only for
    /// functional-mode failures, which have no timing state to report.
    pub report: Option<RunReport>,
}

impl std::fmt::Display for SimFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.dump {
            Some(path) => write!(f, "{} (post-mortem dump: {})", self.error, path.display()),
            None => write!(f, "{}", self.error),
        }
    }
}

impl std::error::Error for SimFailure {}

/// The simulator facade: executes recorded trace commands against a scene
/// device.
pub struct Simulator {
    config: SimConfig,
}

impl Simulator {
    /// Creates a simulator with the given configuration.
    pub fn new(config: SimConfig) -> Self {
        Simulator { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Cycle-level run (paper §III-C): functional execution drives the
    /// timing model; returns full statistics.
    ///
    /// # Errors
    ///
    /// Returns a classified [`SimFailure`] — carrying the partial
    /// [`RunReport`] and a post-mortem dump path — when the simulation
    /// faults: a shader execution error, the cycle bound, a watchdog-
    /// detected hang, or a contained worker panic.
    pub fn run(
        &mut self,
        device: &Device,
        cmd: &TraceRaysCommand,
    ) -> Result<RunReport, Box<SimFailure>> {
        self.run_inner(device, cmd, None)
    }

    /// Resumes a killed or faulted cycle-level run from a checkpoint file
    /// written by a previous [`Simulator::run`] under
    /// `VKSIM_CHECKPOINT_EVERY` / [`SimConfig::with_checkpoint`].
    ///
    /// The device and command must be the ones the checkpointed run was
    /// started with; the configuration must match architecturally (thread
    /// count, watchdog, cycle bound and fault plan may differ — a resumed
    /// chaos run does not re-inject the worker panic that killed it). The
    /// resumed run continues from the checkpoint cycle and produces
    /// byte-identical counters, goldens and traces to an uninterrupted
    /// run.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SnapshotMismatch`] when the file is unreadable,
    /// corrupt, or fingerprinted for a different configuration, command
    /// or scene; otherwise fails exactly as [`Simulator::run`] does.
    pub fn resume(
        &mut self,
        device: &Device,
        cmd: &TraceRaysCommand,
        snapshot: &Path,
    ) -> Result<RunReport, Box<SimFailure>> {
        self.run_inner(device, cmd, Some(snapshot))
    }

    fn run_inner(
        &mut self,
        device: &Device,
        cmd: &TraceRaysCommand,
        resume_from: Option<&Path>,
    ) -> Result<RunReport, Box<SimFailure>> {
        let mut gpu_config = self.config.resolve();
        if let Err(e) = crate::validate::validate_config(&gpu_config) {
            return Err(config_failure(e));
        }
        let fingerprint = checkpoint::config_fingerprint(&gpu_config, device, cmd);
        let resume_payload = match resume_from {
            Some(path) => match Snapshot::read(path) {
                Ok(snap) if snap.fingerprint != fingerprint => {
                    return Err(snapshot_failure(format!(
                        "snapshot {} was taken under fingerprint {:016x}, this \
                         configuration/command fingerprints as {fingerprint:016x}",
                        path.display(),
                        snap.fingerprint
                    )))
                }
                Ok(snap) => {
                    // The panic that killed the original run must not fire
                    // again on the recovery attempt.
                    gpu_config.fault_plan.worker_panic = None;
                    Some(snap.payload)
                }
                Err(e) => {
                    return Err(snapshot_failure(format!(
                        "cannot read snapshot {}: {e}",
                        path.display()
                    )))
                }
            },
            None => None,
        };
        let threads = gpu_config.effective_threads();
        let every = gpu_config.effective_checkpoint_every();
        let keep = gpu_config.effective_checkpoint_keep();
        let ckpt_dir = gpu_config.effective_checkpoint_dir();
        let num_sms = gpu_config.num_sms;
        let rt_analytics_on = gpu_config.effective_trace().rt_analytics;
        let mut gpu = GpuSim::new(gpu_config);
        gpu.mem = device.memory.clone();
        gpu.launch(
            cmd.program.clone(),
            LaunchDims {
                width: cmd.dims.width,
                height: cmd.dims.height,
                depth: cmd.dims.depth,
            },
        );
        // Parallel engine: one runtime shard per SM (warps never migrate
        // between SMs, so per-thread state partitions exactly). The serial
        // engine drives a single runtime, carried as a one-element vec so
        // both modes checkpoint through the same path.
        let mut shards: Vec<RtRuntime> = {
            let mut runtime = self.make_runtime(device, cmd);
            if rt_analytics_on {
                runtime.enable_analytics();
            }
            if threads > 1 {
                (0..num_sms).map(|sm| runtime.shard(sm)).collect()
            } else {
                vec![runtime]
            }
        };
        if let Some(payload) = resume_payload {
            if let Err(e) = checkpoint::restore_machine(&mut gpu, &mut shards, &payload) {
                return Err(snapshot_failure(format!(
                    "snapshot does not match this run: {e}"
                )));
            }
        }
        // Run in checkpoint-bounded slices. With checkpointing off (the
        // default) this is a single unbounded slice — exactly the
        // historical run path.
        let outcome = loop {
            let res = if every == 0 {
                if threads > 1 {
                    gpu.run_sharded(&mut shards)
                        .map(|stats| RunOutcome::Done(Box::new(stats)))
                } else {
                    gpu.run(&mut shards[0])
                        .map(|stats| RunOutcome::Done(Box::new(stats)))
                }
            } else {
                // Next checkpoint boundary strictly after the current cycle.
                let stop = (gpu.cycles() + 1).next_multiple_of(every);
                if threads > 1 {
                    gpu.run_sharded_until(&mut shards, stop)
                } else {
                    gpu.run_until(&mut shards[0], stop)
                }
            };
            match res {
                Ok(RunOutcome::Done(stats)) => break Ok(*stats),
                Ok(RunOutcome::Paused) => {
                    let dir = ckpt_dir.clone().unwrap_or_else(|| ".".into());
                    let path = Path::new(&dir).join(format!("ckpt-{}.vksnap", gpu.cycles()));
                    let snap =
                        Snapshot::new(fingerprint, checkpoint::machine_payload(&gpu, &shards));
                    // Checkpoint failures are warnings: a healthy run never
                    // dies because a checkpoint could not be written.
                    if let Err(e) = snap.write_atomic(&path) {
                        eprintln!("vksim: failed to write checkpoint {}: {e}", path.display());
                    } else {
                        prune_checkpoints(Path::new(&dir), keep);
                    }
                }
                Err(fault) => break Err(fault),
            }
        };
        // On a fault, capture the final machine state beside the
        // post-mortem dump before anything is torn down.
        let fault_snapshot = match &outcome {
            Err(fault) => write_final_snapshot(&gpu, &shards, fingerprint, fault.dump.as_deref()),
            Ok(_) => None,
        };
        let runtime_stats = if threads > 1 {
            let mut merged = RuntimeStats::default();
            for shard in &shards {
                merged.merge(&shard.stats);
            }
            merged
        } else {
            shards[0].stats.clone()
        };
        let memory = std::mem::take(&mut gpu.mem);
        // Trace export happens on healthy AND faulted runs: a trace that
        // ends at the fault is exactly what post-mortem analysis wants.
        let trace = gpu.take_trace_report();
        if let Some(t) = &trace {
            export_trace(t);
        }
        // Profile export too: a faulted run's partial breakdown is exactly
        // what post-mortem analysis wants (conservation only holds for
        // healthy runs; fault paths can leave SMs unticked mid-cycle).
        let prof = gpu.prof_report();
        if let (Some(p), Some(path)) = (&prof, &gpu.config().effective_trace().prof) {
            export_prof(path, p);
        }
        // RT analytics likewise export on both paths; a faulted run's
        // partial heatmap is still a valid characterization of the rays
        // that completed.
        let rt = rt_report(&gpu, &shards);
        if let Some(r) = &rt {
            let tcfg = gpu.config().effective_trace();
            if let Some(path) = &tcfg.rt {
                export_rt(path, r);
            }
            if let Some(path) = &tcfg.rt_heatmap {
                export_rt_heatmap(path, r);
            }
        }
        match outcome {
            Ok(stats) => {
                // Conservation only holds on healthy runs: fault paths can
                // stop mid-traversal with scripts half-consumed.
                if let Some(r) = &rt {
                    assert!(
                        r.conservation_holds(),
                        "rt analytics conservation violated on a healthy run: \
                         heatmap visits {} vs per-ray nodes {}, per-ray box \
                         tests {} vs rt-unit box ops {}",
                        r.traversal.visit_total(),
                        r.traversal.histograms()[0].1.sum(),
                        r.traversal.histograms()[1].1.sum(),
                        r.rt_box_ops,
                    );
                }
                let power = power_from_stats(&stats);
                Ok(RunReport {
                    gpu: stats,
                    runtime: runtime_stats,
                    power,
                    memory,
                    trace,
                    prof,
                    rt,
                })
            }
            Err(fault) => {
                let GpuFault { error, stats, dump } = *fault;
                let power = power_from_stats(&stats);
                let report = RunReport {
                    gpu: stats,
                    runtime: runtime_stats,
                    power,
                    memory,
                    trace,
                    prof,
                    rt,
                };
                Err(Box::new(SimFailure {
                    error,
                    dump,
                    snapshot: fault_snapshot,
                    report: Some(report),
                }))
            }
        }
    }

    /// Functional-only run: executes every thread to completion without the
    /// timing model — used for image generation/validation (Fig. 2) and for
    /// workload characterization on large launches.
    ///
    /// # Errors
    ///
    /// Returns a classified [`SimFailure`] (with a post-mortem dump but no
    /// timing report) when a thread's program execution fails — a
    /// translator bug, a truncated program, or a corrupted acceleration
    /// structure.
    pub fn run_functional(
        &mut self,
        device: &Device,
        cmd: &TraceRaysCommand,
    ) -> Result<(SimMemory, RuntimeStats), Box<SimFailure>> {
        let mut runtime = self.make_runtime(device, cmd);
        let mut mem = device.memory.clone();
        let total = cmd.dims.width as usize * cmd.dims.height as usize * cmd.dims.depth as usize;
        for tid in 0..total {
            let mut t =
                ThreadState::with_tid(cmd.program.num_regs(), cmd.program.num_preds().max(1), tid);
            if let Err(e) = run_to_exit(&cmd.program, &mut t, &mut mem, &mut runtime) {
                return Err(functional_failure(tid, &e));
            }
        }
        Ok((mem, runtime.stats.clone()))
    }

    fn make_runtime(&self, device: &Device, cmd: &TraceRaysCommand) -> RtRuntime {
        let tlas = device.tlas.clone().unwrap_or_else(|| vksim_bvh::Tlas {
            bvh: Default::default(),
            instances: Vec::new(),
            base_addr: 0,
        });
        RtRuntime::new(
            tlas,
            device.blases.clone(),
            [cmd.dims.width, cmd.dims.height, cmd.dims.depth],
            cmd.fcc,
        )
    }
}

/// Writes the exporter files requested by the trace configuration: Chrome
/// trace-event JSON (`out`), interval CSV (`csv`) and the hotspot summary
/// (`summary`; `-` prints to stderr). Export failures are warnings — a
/// finished simulation never fails because a trace file could not be
/// written.
fn export_trace(report: &TraceReport) {
    let mut outputs: Vec<(&str, String)> = Vec::new();
    // The streaming exporter writes `out` incrementally during the run
    // and claims the file by setting `streamed`; only fall back to the
    // one-shot serialization when no stream ever reached the file.
    if let (Some(path), false) = (&report.config.out, report.streamed) {
        outputs.push((path.as_str(), chrome_trace_json(report)));
    }
    if let Some(path) = &report.config.csv {
        outputs.push((path.as_str(), interval_csv(report)));
    }
    if let Some(path) = &report.config.summary {
        let text = hotspot_summary(report, 10);
        if path == "-" {
            eprintln!("{text}");
        } else {
            outputs.push((path.as_str(), text));
        }
    }
    for (path, contents) in outputs {
        if let Err(e) = std::fs::write(path, contents) {
            eprintln!("vksim: failed to write trace file {path}: {e}");
        }
    }
}

/// Writes the cycle-accounting breakdown requested by the trace config
/// (`VKSIM_PROF`): flat `name -> u64` JSON, golden-comparable; `-` prints
/// to stderr. Export failures are warnings, exactly like trace export.
fn export_prof(path: &str, report: &ProfReport) {
    let json = report.flat_json();
    if path == "-" {
        eprintln!("{json}");
    } else if let Err(e) = std::fs::write(path, json) {
        eprintln!("vksim: failed to write profile {path}: {e}");
    }
}

/// Assembles the end-of-run [`RtReport`] when RT analytics was enabled:
/// shard traversal tallies merge commutatively (identical at any
/// `VKSIM_THREADS`), per-SM coherence and RT-unit attribution come from
/// the machine. `None` whenever analytics was off.
fn rt_report(gpu: &GpuSim, shards: &[RtRuntime]) -> Option<RtReport> {
    let (per_sm, rt_box_ops) = gpu.rt_report_parts()?;
    let mut traversal = TraversalAnalytics::default();
    for shard in shards {
        traversal.merge(shard.analytics()?);
    }
    Some(RtReport {
        traversal,
        per_sm,
        rt_box_ops,
    })
}

/// Writes the ray-traversal analytics breakdown requested by the trace
/// config (`VKSIM_RT_ANALYTICS`): flat `name -> u64` JSON,
/// golden-comparable; `-` prints to stderr. Export failures are
/// warnings, exactly like trace export.
fn export_rt(path: &str, report: &RtReport) {
    let json = report.flat_json();
    if path == "-" {
        eprintln!("{json}");
    } else if let Err(e) = std::fs::write(path, json) {
        eprintln!("vksim: failed to write rt analytics {path}: {e}");
    }
}

/// Writes the per-BVH-node heatmap CSV (`VKSIM_RT_HEATMAP`). Export
/// failures are warnings.
fn export_rt_heatmap(path: &str, report: &RtReport) {
    if let Err(e) = std::fs::write(path, report.heatmap_csv()) {
        eprintln!("vksim: failed to write rt heatmap {path}: {e}");
    }
}

/// Prunes all but the newest `keep` periodic `ckpt-*.vksnap` files in
/// `dir` after a successful checkpoint write; `keep == 0` retains
/// everything. Failures are warnings — retention must never kill a
/// healthy run.
fn prune_checkpoints(dir: &Path, keep: u64) {
    if keep == 0 {
        return;
    }
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!(
                "vksim: cannot scan checkpoint dir {} for pruning: {e}",
                dir.display()
            );
            return;
        }
    };
    let mut ckpts: Vec<(u64, PathBuf)> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter_map(|p| {
            let cycle = p
                .file_name()?
                .to_str()?
                .strip_prefix("ckpt-")?
                .strip_suffix(".vksnap")?
                .parse::<u64>()
                .ok()?;
            Some((cycle, p))
        })
        .collect();
    if ckpts.len() as u64 <= keep {
        return;
    }
    ckpts.sort_unstable_by_key(|&(cycle, _)| cycle);
    let cut = ckpts.len() - keep as usize;
    for (_, p) in &ckpts[..cut] {
        if let Err(e) = std::fs::remove_file(p) {
            eprintln!("vksim: failed to prune checkpoint {}: {e}", p.display());
        }
    }
}

/// Writes the final machine snapshot for a faulted run, sited beside the
/// post-mortem dump (same stem, `.vksnap` extension) when a dump exists
/// and in the dump directory's default location otherwise. Best-effort:
/// returns `None` when the write fails — a snapshot failure must never
/// mask the original fault.
fn write_final_snapshot(
    gpu: &GpuSim,
    shards: &[RtRuntime],
    fingerprint: u64,
    dump: Option<&Path>,
) -> Option<PathBuf> {
    let path = match dump {
        Some(p) => p.with_extension("vksnap"),
        None => return None,
    };
    let snap = Snapshot::new(fingerprint, checkpoint::machine_payload(gpu, shards));
    match snap.write_atomic(&path) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!(
                "vksim: failed to write final snapshot {}: {e}",
                path.display()
            );
            None
        }
    }
}

/// Builds the `SimFailure` for an unusable snapshot: unreadable, corrupt,
/// or fingerprinted for a different configuration/command/scene. The run
/// never started.
fn snapshot_failure(detail: String) -> Box<SimFailure> {
    let error = SimError::SnapshotMismatch { detail };
    let mut snap = BTreeMap::new();
    snap.insert("fault.kind".to_string(), error.kind_code());
    let dump = vksim_fault::write_dump(&snap).ok();
    Box::new(SimFailure {
        error,
        dump,
        snapshot: None,
        report: None,
    })
}

/// Builds the `SimFailure` for a rejected configuration: the run never
/// started, so there is no timing report — just the classified error and
/// a minimal dump identifying the fault class.
fn config_failure(e: crate::validate::ConfigError) -> Box<SimFailure> {
    let error = SimError::InvalidConfig { detail: e.detail };
    let mut snap = BTreeMap::new();
    snap.insert("fault.kind".to_string(), error.kind_code());
    let dump = vksim_fault::write_dump(&snap).ok();
    Box::new(SimFailure {
        error,
        dump,
        snapshot: None,
        report: None,
    })
}

/// Builds the `SimFailure` for a functional-mode execution error, writing
/// a small post-mortem dump identifying the failing thread.
fn functional_failure(tid: usize, e: &ExecError) -> Box<SimFailure> {
    let pc = match e {
        ExecError::PcOutOfRange { pc } | ExecError::Rt { pc, .. } => *pc,
        ExecError::StepLimit => 0,
    };
    let error = SimError::Exec {
        sm: 0,
        warp: (tid / 32) as u32,
        lane: tid % 32,
        pc,
        detail: format!("thread {tid}: {e}"),
    };
    let mut snap = BTreeMap::new();
    snap.insert("fault.kind".to_string(), error.kind_code());
    snap.insert("fault.thread".to_string(), tid as u64);
    snap.insert("fault.pc".to_string(), u64::from(pc));
    let dump = vksim_fault::write_dump(&snap).ok();
    Box::new(SimFailure {
        error,
        dump,
        snapshot: None,
        report: None,
    })
}

/// Derives AccelWattch-style activity counts from GPU statistics.
pub fn power_from_stats(stats: &GpuStats) -> PowerReport {
    let counts = ActivityCounts {
        cycles: stats.cycles,
        alu_ops: stats.counters.get("inst.Alu") * 32,
        sfu_ops: stats.counters.get("inst.Sfu") * 32,
        cache_accesses: stats.l1_stats.sum_prefix("shader") + stats.l1_stats.sum_prefix("rt_unit"),
        dram_accesses: stats.dram_stats.get("req"),
        rt_ops: stats.rt_ops,
        regfile_accesses: 0,
    };
    PowerModel::default().estimate(&counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemoryMode;
    use vksim_bvh::geometry::{BlasGeometry, Triangle};
    use vksim_bvh::Instance;
    use vksim_math::{Mat4x3, Vec3};
    use vksim_shader::builder::ShaderBuilder;
    use vksim_shader::ir::{Builtin, ShaderKind};
    use vksim_shader::PipelineShaders;

    /// A minimal full pipeline: camera-less raygen fires a +z ray per
    /// pixel through a quad; closest-hit writes 1.0, miss writes 0.25.
    fn quad_workload(width: u32, height: u32) -> (Device, TraceRaysCommand, u64) {
        let mut device = Device::new();
        let fb = device.alloc_buffer(width as u64 * height as u64 * 4);
        device.bind_descriptor(0, fb);
        let blas = device.create_blas(BlasGeometry::triangles(vec![
            Triangle::new(
                Vec3::new(-0.5, -0.5, 0.0),
                Vec3::new(0.5, -0.5, 0.0),
                Vec3::new(0.5, 0.5, 0.0),
            ),
            Triangle::new(
                Vec3::new(-0.5, -0.5, 0.0),
                Vec3::new(0.5, 0.5, 0.0),
                Vec3::new(-0.5, 0.5, 0.0),
            ),
        ]));
        device.create_tlas(vec![Instance::new(blas, Mat4x3::IDENTITY)]);

        let mut rg = ShaderBuilder::new(ShaderKind::RayGen);
        let x = rg.var_f32(rg.launch_id(0).to_f32());
        let y = rg.var_f32(rg.launch_id(1).to_f32());
        let w = rg.var_f32(rg.launch_size(0).to_f32());
        let h = rg.var_f32(rg.launch_size(1).to_f32());
        // Map pixel to [-1, 1]^2 at z = -3, firing +z.
        let ox = rg.var_f32(rg.v(x) / rg.v(w) * rg.c_f32(2.0) - rg.c_f32(1.0));
        let oy = rg.var_f32(rg.v(y) / rg.v(h) * rg.c_f32(2.0) - rg.c_f32(1.0));
        rg.trace_ray(
            [rg.v(ox), rg.v(oy), rg.c_f32(-3.0)],
            [rg.c_f32(0.0), rg.c_f32(0.0), rg.c_f32(1.0)],
            rg.c_f32(0.001),
            rg.c_f32(1e30),
            rg.c_u32(0),
            0,
        );
        let px = rg.var_u32(rg.launch_id(1) * rg.launch_size(0) + rg.launch_id(0));
        let addr = rg.var_u32(rg.buffer_base(0) + rg.v(px) * rg.c_u32(4));
        rg.store(rg.v(addr), 0, rg.payload(0));

        let mut ch = ShaderBuilder::new(ShaderKind::ClosestHit);
        ch.set_payload_in(0, ch.c_f32(1.0));
        let mut ms = ShaderBuilder::new(ShaderKind::Miss);
        ms.set_payload_in(0, ms.c_f32(0.25));

        let shaders = PipelineShaders {
            raygen: rg.finish(),
            miss: vec![ms.finish()],
            closest_hit: vec![ch.finish()],
            intersection: vec![],
            any_hit: vec![],
            max_recursion_depth: 1,
        };
        let pipeline = device.create_ray_tracing_pipeline(shaders, false).unwrap();
        let cmd = device.cmd_trace_rays(&pipeline, width, height);
        (device, cmd, fb)
    }

    fn center_pixel(mem: &SimMemory, fb: u64, w: u32, h: u32) -> f32 {
        mem.read_f32(fb + ((h / 2) * w + w / 2) as u64 * 4)
    }

    #[test]
    fn functional_run_renders_hit_and_miss() {
        let (device, cmd, fb) = quad_workload(16, 16);
        let mut sim = Simulator::new(SimConfig::test_small());
        let (mem, stats) = sim.run_functional(&device, &cmd).expect("healthy run");
        assert_eq!(center_pixel(&mem, fb, 16, 16), 1.0, "center hits the quad");
        assert_eq!(mem.read_f32(fb), 0.25, "corner misses");
        assert_eq!(stats.rays, 256);
        assert!(stats.triangle_hits > 0 && stats.misses > 0);
    }

    #[test]
    fn timing_run_matches_functional_image() {
        let (device, cmd, fb) = quad_workload(16, 4);
        let mut sim = Simulator::new(SimConfig::test_small());
        let (fmem, _) = sim.run_functional(&device, &cmd).expect("healthy run");
        let report = sim.run(&device, &cmd).expect("healthy run");
        for i in 0..(16 * 4) {
            assert_eq!(
                report.memory.read_f32(fb + i * 4),
                fmem.read_f32(fb + i * 4),
                "pixel {i} differs between timing and functional runs"
            );
        }
        assert!(report.gpu.cycles > 0);
        assert!(report.gpu.counters.get("rt.trace_warps") >= 2);
        assert!(report.runtime.rays == 64);
        assert!(report.power.total_energy_j > 0.0);
    }

    #[test]
    fn rt_units_see_traffic_in_timing_run() {
        let (device, cmd, _) = quad_workload(32, 4);
        let mut sim = Simulator::new(SimConfig::test_small());
        let report = sim.run(&device, &cmd).expect("healthy run");
        assert!(report.gpu.rt_busy_cycles > 0);
        assert!(report.gpu.rt_ops > 0);
        assert!(report.gpu.rt_warp_latency.count() >= 4);
        assert!(
            report.gpu.l1_stats.sum_prefix("rt_unit") > 0,
            "RT unit uses the L1"
        );
    }

    #[test]
    fn perfect_bvh_is_faster_than_baseline() {
        let (device, cmd, _) = quad_workload(32, 8);
        let base = Simulator::new(SimConfig::test_small())
            .run(&device, &cmd)
            .expect("healthy run");
        let perfect =
            Simulator::new(SimConfig::test_small().with_memory_mode(MemoryMode::PerfectBvh))
                .run(&device, &cmd)
                .expect("healthy run");
        assert!(
            perfect.gpu.cycles <= base.gpu.cycles,
            "perfect BVH {} vs baseline {}",
            perfect.gpu.cycles,
            base.gpu.cycles
        );
    }

    #[test]
    fn rt_cache_mode_populates_rtc_stats() {
        let (device, cmd, _) = quad_workload(32, 4);
        let report = Simulator::new(SimConfig::test_small().with_memory_mode(MemoryMode::RtCache))
            .run(&device, &cmd)
            .expect("healthy run");
        assert!(!report.gpu.rtc_stats.is_empty(), "RT cache saw accesses");
        assert_eq!(
            report.gpu.l1_stats.sum_prefix("rt_unit"),
            0,
            "RT traffic moved off L1"
        );
    }

    #[test]
    fn its_mode_completes_with_same_image() {
        let (device, cmd, fb) = quad_workload(16, 4);
        let stack = Simulator::new(SimConfig::test_small())
            .run(&device, &cmd)
            .expect("healthy run");
        let its = Simulator::new(SimConfig::test_small().with_its(true))
            .run(&device, &cmd)
            .expect("healthy run");
        for i in 0..(16 * 4) {
            assert_eq!(
                stack.memory.read_f32(fb + i * 4),
                its.memory.read_f32(fb + i * 4),
                "pixel {i}"
            );
        }
    }

    #[test]
    fn instruction_mix_recorded() {
        let (device, cmd, _) = quad_workload(16, 4);
        let report = Simulator::new(SimConfig::test_small())
            .run(&device, &cmd)
            .expect("healthy run");
        let alu = report.gpu.counters.get("inst.Alu");
        let mem = report.gpu.counters.get("inst.Mem");
        let rt = report.gpu.counters.get("inst.Rt");
        assert!(alu > 0 && mem > 0 && rt > 0);
        assert!(alu > rt, "ALU dominates trace instructions");
    }

    #[test]
    fn killed_run_resumes_bit_identically_from_checkpoint() {
        let (device, cmd, fb) = quad_workload(16, 8);
        let reference = Simulator::new(SimConfig::test_small())
            .run(&device, &cmd)
            .expect("healthy run");
        let dir = std::env::temp_dir().join(format!("vksim-ckpt-core-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Checkpoint every quarter of the reference run and kill at the
        // three-quarter mark: at least two checkpoints land before the
        // panic regardless of the workload's absolute cycle count.
        let every = (reference.gpu.cycles / 4).max(1);
        let ckpt_cfg = || {
            let mut cfg =
                SimConfig::test_small().with_checkpoint(every, dir.to_string_lossy().to_string());
            // An injected worker panic kills the run mid-flight; resume
            // must clear it from the plan instead of dying again.
            cfg.gpu.fault_plan.worker_panic = Some(vksim_gpu::WorkerPanicSpec {
                sm: 1,
                cycle: every * 3,
            });
            cfg
        };
        let failure = Simulator::new(ckpt_cfg())
            .run(&device, &cmd)
            .expect_err("injected panic kills the run");
        assert!(
            matches!(failure.error, SimError::WorkerPanicked { .. }),
            "{failure}"
        );
        assert!(
            failure.snapshot.is_some(),
            "final snapshot written beside the post-mortem dump"
        );
        let last_ckpt = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "vksnap"))
            .max_by_key(|p| {
                p.file_stem()
                    .and_then(|s| s.to_str())
                    .and_then(|s| s.strip_prefix("ckpt-"))
                    .and_then(|s| s.parse::<u64>().ok())
                    .unwrap_or(0)
            })
            .expect("at least one periodic checkpoint written before the kill");
        let resumed = Simulator::new(ckpt_cfg())
            .resume(&device, &cmd, &last_ckpt)
            .expect("resumed run completes");
        assert_eq!(resumed.gpu.cycles, reference.gpu.cycles, "same end cycle");
        assert_eq!(
            resumed.gpu.counters, reference.gpu.counters,
            "bit-identical counters after kill + resume"
        );
        for i in 0..(16 * 8) {
            assert_eq!(
                resumed.memory.read_f32(fb + i * 4),
                reference.memory.read_f32(fb + i * 4),
                "pixel {i}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_keep_prunes_all_but_newest() {
        let (device, cmd, _) = quad_workload(16, 8);
        let reference = Simulator::new(SimConfig::test_small())
            .run(&device, &cmd)
            .expect("healthy run");
        let dir = std::env::temp_dir().join(format!("vksim-ckpt-keep-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Checkpoint every eighth of the run: at least 7 land, retention
        // must leave exactly 2.
        let every = (reference.gpu.cycles / 8).max(1);
        let cfg = SimConfig::test_small()
            .with_checkpoint(every, dir.to_string_lossy().to_string())
            .with_checkpoint_keep(2);
        let resumed = Simulator::new(cfg).run(&device, &cmd).expect("healthy run");
        assert_eq!(resumed.gpu.cycles, reference.gpu.cycles);
        let mut cycles: Vec<u64> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter_map(|p| {
                p.file_name()?
                    .to_str()?
                    .strip_prefix("ckpt-")?
                    .strip_suffix(".vksnap")?
                    .parse::<u64>()
                    .ok()
            })
            .collect();
        cycles.sort_unstable();
        assert_eq!(cycles.len(), 2, "retention must keep exactly 2: {cycles:?}");
        // The survivors are the two *newest* checkpoints.
        assert!(
            cycles[0] > every && cycles[1] > cycles[0],
            "oldest checkpoints must be pruned first: {cycles:?}"
        );
        // The newest survivor still resumes bit-identically.
        let last = dir.join(format!("ckpt-{}.vksnap", cycles[1]));
        let resumed = Simulator::new(SimConfig::test_small())
            .resume(&device, &cmd, &last)
            .expect("resume from retained checkpoint");
        assert_eq!(resumed.gpu.cycles, reference.gpu.cycles);
        assert_eq!(resumed.gpu.counters, reference.gpu.counters);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prof_export_writes_conserved_breakdown() {
        let (device, cmd, _) = quad_workload(16, 8);
        let dir = std::env::temp_dir().join(format!("vksim-prof-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("prof.json");
        let cfg = SimConfig::test_small().with_prof(path.to_string_lossy().to_string());
        let report = Simulator::new(cfg).run(&device, &cmd).expect("healthy run");
        let prof = report.prof.as_ref().expect("accounting enabled");
        assert!(prof.conservation_holds(), "{prof:?}");
        assert_eq!(prof.cycles, report.gpu.cycles);
        let written = std::fs::read_to_string(&path).expect("prof file written");
        assert_eq!(written, prof.flat_json(), "file matches in-memory report");
        let parsed = vksim_testkit::json::parse_flat_u64_object(&written).expect("valid flat JSON");
        assert_eq!(parsed.get("cycles"), Some(&report.gpu.cycles));
        assert_eq!(parsed.get("num_sms"), Some(&2));
        let total: u64 = vksim_trace::CycleCategory::ALL
            .iter()
            .map(|c| parsed[&format!("total.{c}")])
            .sum();
        assert_eq!(total, report.gpu.cycles * 2, "conservation in the file");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn default_run_carries_no_prof() {
        let (device, cmd, _) = quad_workload(16, 4);
        let report = Simulator::new(SimConfig::test_small())
            .run(&device, &cmd)
            .expect("healthy run");
        assert!(report.prof.is_none(), "accounting is opt-in");
        assert!(report.rt.is_none(), "rt analytics is opt-in");
    }

    #[test]
    fn rt_export_writes_conserved_analytics() {
        let (device, cmd, _) = quad_workload(16, 8);
        let dir = std::env::temp_dir().join(format!("vksim-rt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let json_path = dir.join("rt.json");
        let csv_path = dir.join("heatmap.csv");
        let cfg = SimConfig::test_small()
            .with_rt(json_path.to_string_lossy().to_string())
            .with_rt_heatmap(csv_path.to_string_lossy().to_string());
        let report = Simulator::new(cfg).run(&device, &cmd).expect("healthy run");
        let rt = report.rt.as_ref().expect("rt analytics enabled");
        assert!(rt.conservation_holds(), "{rt:?}");
        assert_eq!(rt.traversal.rays(), report.runtime.rays);
        assert_eq!(rt.num_sms(), 2);
        let written = std::fs::read_to_string(&json_path).expect("rt file written");
        assert_eq!(written, rt.flat_json(), "file matches in-memory report");
        let parsed = vksim_testkit::json::parse_flat_u64_object(&written).expect("valid flat JSON");
        assert_eq!(parsed.get("rays"), Some(&report.runtime.rays));
        assert_eq!(
            parsed["heatmap.visits"], parsed["nodes_visited"],
            "conservation in the file"
        );
        assert_eq!(parsed["box_tests"], parsed["rtu.box_ops"]);
        let csv = std::fs::read_to_string(&csv_path).expect("heatmap written");
        assert!(csv.starts_with("space,depth,node,visits,hits\n"));
        assert_eq!(
            csv.lines().count() as u64,
            1 + parsed["heatmap.cells"],
            "one CSV row per heatmap cell"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rt_analytics_report_is_thread_count_invariant() {
        let (device, cmd, _) = quad_workload(16, 8);
        let run = |threads: usize| {
            let cfg = SimConfig::test_small()
                .with_rt_analytics(true)
                .with_threads(threads);
            let report = Simulator::new(cfg).run(&device, &cmd).expect("healthy run");
            report.rt.expect("rt analytics enabled").flat_json()
        };
        assert_eq!(run(1), run(4), "flat JSON identical at any VKSIM_THREADS");
    }

    #[test]
    fn resume_rejects_mismatched_fingerprint() {
        let (device, cmd, _) = quad_workload(16, 4);
        let dir = std::env::temp_dir().join(format!("vksim-ckpt-fp-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cfg = SimConfig::test_small().with_checkpoint(64, dir.to_string_lossy().to_string());
        Simulator::new(cfg.clone())
            .run(&device, &cmd)
            .expect("healthy run");
        let ckpt = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok().map(|e| e.path()))
            .find(|p| p.extension().is_some_and(|x| x == "vksnap"))
            .expect("checkpoint written");
        // A different machine (4 SMs) must refuse the snapshot.
        let mut other = cfg;
        other.gpu.num_sms = 4;
        let failure = Simulator::new(other)
            .resume(&device, &cmd, &ckpt)
            .expect_err("mismatched config must be rejected");
        assert!(
            matches!(failure.error, SimError::SnapshotMismatch { .. }),
            "{failure}"
        );
        assert!(failure.report.is_none(), "the run never started");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn faulted_run_returns_partial_report_and_dump() {
        let (device, cmd, _) = quad_workload(16, 4);
        let mut cfg = SimConfig::test_small();
        cfg.gpu.watchdog_cycles = 2_000;
        cfg.gpu.fault_plan.stall_warp = Some(0);
        let failure = Simulator::new(cfg)
            .run(&device, &cmd)
            .expect_err("stalled warp must trip the watchdog");
        assert!(matches!(failure.error, SimError::Hang { .. }), "{failure}");
        let report = failure.report.as_ref().expect("timing fault keeps stats");
        assert!(report.gpu.cycles > 0, "partial stats reach the caller");
        assert!(failure.dump.is_some(), "post-mortem dump written");
    }

    #[test]
    fn degenerate_fr_fcfs_depth_is_rejected_before_the_run() {
        let (device, cmd, _) = quad_workload(4, 4);
        let cfg = SimConfig::test_small().with_dram_sched(vksim_mem::DramSched::FrFcfs {
            queue_depth: 0,
            age_cap: 100,
        });
        let failure = Simulator::new(cfg)
            .run(&device, &cmd)
            .expect_err("queue_depth 0 must be rejected, not clamped");
        assert!(
            matches!(failure.error, SimError::InvalidConfig { .. }),
            "{failure}"
        );
        assert!(failure.report.is_none(), "the run never started");
        assert!(failure.dump.is_some(), "fault class still dumped");
    }

    #[test]
    fn truncated_program_fails_functionally_with_classified_error() {
        let (device, mut cmd, _) = quad_workload(4, 4);
        cmd.program = cmd.program.truncated(cmd.program.len() / 2);
        let failure = Simulator::new(SimConfig::test_small())
            .run_functional(&device, &cmd)
            .expect_err("truncated program must fail");
        assert!(matches!(failure.error, SimError::Exec { .. }), "{failure}");
        assert!(
            failure.report.is_none(),
            "functional faults carry no report"
        );
        assert!(failure.dump.is_some());
    }

    /// A raygen with a shader-visible builtin (world normal) exercised via
    /// closest-hit.
    #[test]
    fn closest_hit_reads_hit_attributes() {
        let mut device = Device::new();
        let fb = device.alloc_buffer(64);
        device.bind_descriptor(0, fb);
        let blas = device.create_blas(BlasGeometry::triangles(vec![Triangle::new(
            Vec3::new(-1.0, -1.0, 2.0),
            Vec3::new(1.0, -1.0, 2.0),
            Vec3::new(0.0, 1.0, 2.0),
        )]));
        device.create_tlas(vec![
            Instance::new(blas, Mat4x3::IDENTITY).with_custom_index(42)
        ]);

        let mut rg = ShaderBuilder::new(ShaderKind::RayGen);
        rg.trace_ray(
            [rg.c_f32(0.0), rg.c_f32(-0.2), rg.c_f32(-1.0)],
            [rg.c_f32(0.0), rg.c_f32(0.0), rg.c_f32(1.0)],
            rg.c_f32(0.001),
            rg.c_f32(1e30),
            rg.c_u32(0),
            0,
        );
        let a = rg.var_u32(rg.buffer_base(0));
        rg.store(rg.v(a), 0, rg.payload(0)); // t
        rg.store(rg.v(a), 4, rg.payload(1)); // custom index as f32
        rg.store(rg.v(a), 8, rg.payload(2)); // normal z

        let mut ch = ShaderBuilder::new(ShaderKind::ClosestHit);
        ch.set_payload_in(0, ch.builtin(Builtin::HitT));
        ch.set_payload_in(1, ch.builtin(Builtin::HitInstanceCustomIndex).to_f32());
        ch.set_payload_in(2, ch.builtin(Builtin::HitWorldNormal(2)));
        let mut ms = ShaderBuilder::new(ShaderKind::Miss);
        ms.set_payload_in(0, ms.c_f32(-1.0));

        let shaders = PipelineShaders {
            raygen: rg.finish(),
            miss: vec![ms.finish()],
            closest_hit: vec![ch.finish()],
            intersection: vec![],
            any_hit: vec![],
            max_recursion_depth: 1,
        };
        let pipeline = device.create_ray_tracing_pipeline(shaders, false).unwrap();
        let cmd = device.cmd_trace_rays(&pipeline, 1, 1);
        let mut sim = Simulator::new(SimConfig::test_small());
        let (mem, _) = sim.run_functional(&device, &cmd).expect("healthy run");
        assert!((mem.read_f32(fb) - 3.0).abs() < 1e-3, "hit t");
        assert_eq!(mem.read_f32(fb + 4), 42.0, "custom index");
        assert!(mem.read_f32(fb + 8) < 0.0, "normal faces the ray");
    }
}
