//! Simulation configurations: Table III plus the Fig. 15 memory variants.

use vksim_gpu::{DivergenceMode, GpuConfig};
use vksim_mem::{CacheConfig, DramConfig};

/// Memory-system variant (paper Fig. 15).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MemoryMode {
    /// RT unit shares the SM's L1D.
    #[default]
    Baseline,
    /// Dedicated RT cache next to the L1D.
    RtCache,
    /// Zero-latency BVH node accesses (limit study).
    PerfectBvh,
    /// Zero-latency DRAM (limit study).
    PerfectMem,
}

/// Top-level simulation configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// The GPU configuration (Table III baseline or mobile).
    pub gpu: GpuConfig,
    /// Memory-system variant.
    pub memory_mode: MemoryMode,
}

impl SimConfig {
    /// Paper baseline (Table III).
    pub fn baseline() -> Self {
        SimConfig {
            gpu: GpuConfig::baseline(),
            memory_mode: MemoryMode::Baseline,
        }
    }

    /// Paper-scale configuration (48 SMs, 8 memory partitions, FR-FCFS
    /// DRAM scheduling) used where Table IV / Fig. 12 fidelity needs the
    /// full machine rather than the 2-SM test mule.
    pub fn paper() -> Self {
        SimConfig {
            gpu: GpuConfig::paper(),
            memory_mode: MemoryMode::Baseline,
        }
    }

    /// Paper mobile configuration.
    pub fn mobile() -> Self {
        SimConfig {
            gpu: GpuConfig::mobile(),
            memory_mode: MemoryMode::Baseline,
        }
    }

    /// A small configuration for unit tests (2 SMs).
    pub fn test_small() -> Self {
        SimConfig {
            gpu: GpuConfig {
                num_sms: 2,
                ..GpuConfig::baseline()
            },
            memory_mode: MemoryMode::Baseline,
        }
    }

    /// Selects the memory variant.
    pub fn with_memory_mode(mut self, mode: MemoryMode) -> Self {
        self.memory_mode = mode;
        self
    }

    /// Sets the RT-unit concurrent-warp limit (the Fig. 16 sweep).
    pub fn with_rt_max_warps(mut self, warps: usize) -> Self {
        self.gpu.rt_unit.max_warps = warps.max(1);
        self
    }

    /// Sets the two-phase engine's worker-thread count (1 = serial
    /// reference path; counters are identical at any value).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.gpu.threads = threads.max(1);
        self
    }

    /// Enables periodic checkpointing: every `every` cycles the simulator
    /// snapshots the complete machine state into
    /// `<dir>/ckpt-<cycle>.vksnap`, from which [`crate::Simulator::resume`]
    /// continues bit-identically. `every = 0` disables checkpointing (the
    /// default). Tests pass explicit values here instead of relying on the
    /// `VKSIM_CHECKPOINT_EVERY` / `VKSIM_CHECKPOINT_DIR` overrides.
    pub fn with_checkpoint(mut self, every: u64, dir: impl Into<String>) -> Self {
        self.gpu.checkpoint_every = every;
        self.gpu.checkpoint_dir = Some(dir.into());
        self
    }

    /// Sets the cycle-level tracing configuration (timeline events,
    /// interval metrics, exporters). The default is off; tests pass an
    /// explicit config here instead of relying on the `VKSIM_TRACE_*`
    /// environment overrides.
    pub fn with_trace(mut self, trace: vksim_trace::TraceConfig) -> Self {
        self.gpu.trace = trace;
        self
    }

    /// Enables cycle-accounting (the `VKSIM_PROF` profiler): every SM
    /// cycle is attributed to exactly one stall category, with the
    /// breakdown available as [`crate::RunReport::prof`]. Independent of
    /// event tracing; tests pass an explicit flag here instead of relying
    /// on the `VKSIM_PROF` environment override.
    pub fn with_accounting(mut self, on: bool) -> Self {
        self.gpu.trace.accounting = on;
        self
    }

    /// Enables cycle-accounting and writes its flat-JSON breakdown to
    /// `path` at the end of the run (`-` prints to stderr).
    pub fn with_prof(mut self, path: impl Into<String>) -> Self {
        self.gpu.trace.accounting = true;
        self.gpu.trace.prof = Some(path.into());
        self
    }

    /// Enables ray-traversal analytics (the `VKSIM_RT_ANALYTICS`
    /// characterization layer): per-BVH-node heatmaps, per-ray
    /// histograms, warp traversal coherence and RT-unit job attribution,
    /// available as [`crate::RunReport::rt`]. Independent of event
    /// tracing and cycle accounting; tests pass an explicit flag here
    /// instead of relying on the environment override.
    pub fn with_rt_analytics(mut self, on: bool) -> Self {
        self.gpu.trace.rt_analytics = on;
        self
    }

    /// Enables RT analytics and writes its flat-JSON breakdown to `path`
    /// at the end of the run (`-` prints to stderr).
    pub fn with_rt(mut self, path: impl Into<String>) -> Self {
        self.gpu.trace.rt_analytics = true;
        self.gpu.trace.rt = Some(path.into());
        self
    }

    /// Enables RT analytics and writes the per-BVH-node heatmap CSV to
    /// `path` at the end of the run.
    pub fn with_rt_heatmap(mut self, path: impl Into<String>) -> Self {
        self.gpu.trace.rt_analytics = true;
        self.gpu.trace.rt_heatmap = Some(path.into());
        self
    }

    /// Sets how many periodic checkpoints to retain: after each
    /// successful checkpoint write, all but the newest `keep`
    /// `ckpt-*.vksnap` files are pruned from the checkpoint directory.
    /// `0` (the default) keeps every checkpoint.
    pub fn with_checkpoint_keep(mut self, keep: u64) -> Self {
        self.gpu.checkpoint_keep = keep;
        self
    }

    /// Sets the number of independent memory partitions (L2 slice + DRAM
    /// channel group each); `1` is the monolithic backend.
    pub fn with_partitions(mut self, n: u32) -> Self {
        self.gpu.mem.num_partitions = n.max(1);
        self
    }

    /// Selects the DRAM access scheduler (in-order FCFS or FR-FCFS).
    pub fn with_dram_sched(mut self, sched: vksim_mem::DramSched) -> Self {
        self.gpu.mem.dram.sched = sched;
        self
    }

    /// Bounds each memory partition's interconnect ingress queue to
    /// `depth` in-flight requests (`0` = unbounded, the historical model).
    /// A full queue backpressures the issuing SM.
    pub fn with_icnt_queue_depth(mut self, depth: u32) -> Self {
        self.gpu.mem.icnt_queue_depth = depth;
        self
    }

    /// Limits each partition's return path to `credits` concurrent
    /// completions in flight toward the SMs (`0` = unbounded).
    pub fn with_icnt_return_credits(mut self, credits: u32) -> Self {
        self.gpu.mem.icnt_return_credits = credits;
        self
    }

    /// Enables independent thread scheduling (§IV-B).
    pub fn with_its(mut self, its: bool) -> Self {
        self.gpu.divergence = if its {
            DivergenceMode::Multipath
        } else {
            DivergenceMode::Stack
        };
        self
    }

    /// Resolves to the concrete GPU configuration.
    pub fn resolve(&self) -> GpuConfig {
        let mut gpu = self.gpu.clone();
        match self.memory_mode {
            MemoryMode::Baseline => {}
            MemoryMode::RtCache => {
                gpu.rt_cache = Some(CacheConfig {
                    name: "RTC".into(),
                    size_bytes: 32 * 1024,
                    line_bytes: 32,
                    assoc: 8,
                    hit_latency: 10,
                    mshr_entries: 64,
                    mshr_merge: 8,
                });
            }
            MemoryMode::PerfectBvh => gpu.perfect_bvh = true,
            MemoryMode::PerfectMem => {
                gpu.mem.dram = DramConfig {
                    perfect: true,
                    ..gpu.mem.dram
                };
            }
        }
        gpu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_modes_resolve_distinctly() {
        let base = SimConfig::baseline().resolve();
        assert!(base.rt_cache.is_none() && !base.perfect_bvh && !base.mem.dram.perfect);
        let rtc = SimConfig::baseline()
            .with_memory_mode(MemoryMode::RtCache)
            .resolve();
        assert!(rtc.rt_cache.is_some());
        let pbvh = SimConfig::baseline()
            .with_memory_mode(MemoryMode::PerfectBvh)
            .resolve();
        assert!(pbvh.perfect_bvh);
        let pmem = SimConfig::baseline()
            .with_memory_mode(MemoryMode::PerfectMem)
            .resolve();
        assert!(pmem.mem.dram.perfect);
    }

    #[test]
    fn builders_compose() {
        let c = SimConfig::mobile()
            .with_rt_max_warps(12)
            .with_its(true)
            .with_threads(4);
        let g = c.resolve();
        assert_eq!(g.rt_unit.max_warps, 12);
        assert_eq!(g.divergence, DivergenceMode::Multipath);
        assert_eq!(g.num_sms, 8);
        assert_eq!(g.threads, 4);
        assert_eq!(SimConfig::baseline().with_threads(0).gpu.threads, 1);
    }

    #[test]
    fn paper_and_partition_builders() {
        let p = SimConfig::paper().resolve();
        assert_eq!(p.num_sms, 48);
        assert_eq!(p.mem.num_partitions, 8);
        let c = SimConfig::test_small()
            .with_partitions(4)
            .with_dram_sched(vksim_mem::DramSched::fr_fcfs_paper())
            .resolve();
        assert_eq!(c.mem.num_partitions, 4);
        assert!(matches!(
            c.mem.dram.sched,
            vksim_mem::DramSched::FrFcfs { .. }
        ));
        assert_eq!(
            SimConfig::test_small()
                .with_partitions(0)
                .gpu
                .mem
                .num_partitions,
            1
        );
    }

    #[test]
    fn accounting_and_retention_builders() {
        let c = SimConfig::test_small()
            .with_prof("/tmp/p.json")
            .with_checkpoint_keep(3);
        assert!(c.gpu.trace.accounting);
        assert_eq!(c.gpu.trace.prof.as_deref(), Some("/tmp/p.json"));
        assert_eq!(c.gpu.checkpoint_keep, 3);
        let c = SimConfig::test_small().with_accounting(true);
        assert!(c.gpu.trace.accounting);
        assert!(c.gpu.trace.prof.is_none());
    }

    #[test]
    fn rt_analytics_builders() {
        let c = SimConfig::test_small()
            .with_rt("/tmp/rt.json")
            .with_rt_heatmap("/tmp/heat.csv");
        assert!(c.gpu.trace.rt_analytics);
        assert_eq!(c.gpu.trace.rt.as_deref(), Some("/tmp/rt.json"));
        assert_eq!(c.gpu.trace.rt_heatmap.as_deref(), Some("/tmp/heat.csv"));
        let c = SimConfig::test_small().with_rt_analytics(true);
        assert!(c.gpu.trace.rt_analytics);
        assert!(c.gpu.trace.rt.is_none() && c.gpu.trace.rt_heatmap.is_none());
    }

    #[test]
    fn rt_warps_clamped_to_one() {
        assert_eq!(
            SimConfig::baseline()
                .with_rt_max_warps(0)
                .resolve()
                .rt_unit
                .max_warps,
            1
        );
    }
}
