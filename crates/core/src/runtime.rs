//! The per-thread ray-tracing runtime (RtHooks implementation).
//!
//! Backs the custom PTX instructions of Table II during execution:
//!
//! * `traverseAS` runs the functional traversal (Algorithm 2) against the
//!   scene's TLAS/BLAS, commits the closest triangle hit, collects
//!   procedural-leaf encounters into the *intersection table* for delayed
//!   shader execution, and converts the recorded trace events into the
//!   RT-unit replay script (the paper's transactions buffer);
//! * traversal results live on a per-thread stack so `traceRayEXT` can
//!   recurse (paper §III-B2);
//! * `endTraceRay` pops the stack and clears the intersection table;
//! * with FCC enabled (§IV-A), the intersection table is replaced by a
//!   per-warp *coalescing buffer*: rows of (shader ID, lane mask) built by
//!   matching shader IDs across the warp, read back through
//!   `getNextCoalescedCall`, at the cost of extra coalescing-table memory
//!   traffic in the RT unit.

use std::collections::HashMap;
use std::sync::Arc;
use vksim_bvh::traversal::{self, TraversalConfig};
use vksim_bvh::{Blas, NodeKind, ProceduralHit, Tlas, TraceEvent};
use vksim_gpu::ScriptSource;
use vksim_isa::interp::{RayDesc, RtHooks};
use vksim_isa::op::{RtIdxQuery, RtQuery};
use vksim_isa::RtError;
use vksim_math::{Ray, Vec3};
use vksim_rtunit::{OpKind, Step, SHORT_STACK_ENTRIES};
use vksim_snapshot::{Dec, Enc, SnapError};
use vksim_trace::TraversalAnalytics;

/// Vulkan ray flag bit 0: terminate on first hit (shadow rays).
pub const RAY_FLAG_TERMINATE_ON_FIRST_HIT: u32 = 1;

const WARP_SIZE: usize = 32;

/// Base of the `rt_alloc_mem` arena (below per-thread local memory at
/// 0x7000_0000).
const SHARD_ALLOC_BASE: u64 = 0x6000_0000;

/// Per-shard slice of the arena: 1 MiB per SM keeps even 48-SM configs well
/// clear of the local-memory window.
const SHARD_ALLOC_REGION: u64 = 0x10_0000;

/// Committed hit of one trace frame.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
struct Committed {
    /// 0 = miss, 1 = triangle, 2 = committed procedural.
    kind: u32,
    t: f32,
    u: f32,
    v: f32,
    primitive_index: u32,
    instance_index: u32,
    instance_custom_index: u32,
    sbt_offset: u32,
    normal: [f32; 3],
}

/// One entry of the per-thread traversal-results stack.
#[derive(Clone, Debug)]
struct Frame {
    ray: RayDesc,
    committed: Committed,
    pending: Vec<ProceduralHit>,
}

#[derive(Clone, Debug)]
struct FccRow {
    shader_id: u32,
    /// Per-lane index into that lane's pending table.
    lane_hit: [Option<u32>; WARP_SIZE],
}

/// Aggregate functional-traversal statistics (Table IV inputs).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RuntimeStats {
    /// Rays traced (`traverseAS` executions).
    pub rays: u64,
    /// Total BVH nodes visited.
    pub nodes_visited: u64,
    /// Ray-box tests.
    pub box_tests: u64,
    /// Ray-triangle tests.
    pub triangle_tests: u64,
    /// Ray transformations.
    pub transforms: u64,
    /// Procedural-leaf encounters queued.
    pub procedural_hits: u64,
    /// Committed triangle hits.
    pub triangle_hits: u64,
    /// Rays that missed everything.
    pub misses: u64,
    /// Deepest traversal stack seen.
    pub max_stack_depth: u32,
    /// Short-stack spill stores synthesized.
    pub spill_stores: u64,
    /// Short-stack spill reloads synthesized.
    pub spill_loads: u64,
}

impl RuntimeStats {
    /// Accumulates another shard's statistics into this one. All fields are
    /// sums except `max_stack_depth` (a max), so merging is commutative and
    /// independent of shard order.
    pub fn merge(&mut self, other: &RuntimeStats) {
        self.rays += other.rays;
        self.nodes_visited += other.nodes_visited;
        self.box_tests += other.box_tests;
        self.triangle_tests += other.triangle_tests;
        self.transforms += other.transforms;
        self.procedural_hits += other.procedural_hits;
        self.triangle_hits += other.triangle_hits;
        self.misses += other.misses;
        self.max_stack_depth = self.max_stack_depth.max(other.max_stack_depth);
        self.spill_stores += other.spill_stores;
        self.spill_loads += other.spill_loads;
    }

    /// Average BVH nodes visited per ray (Table IV).
    pub fn avg_nodes_per_ray(&self) -> f64 {
        if self.rays == 0 {
            0.0
        } else {
            self.nodes_visited as f64 / self.rays as f64
        }
    }
}

/// The scene-bound RT runtime.
///
/// Scene data (TLAS/BLAS) is shared behind `Arc` so [`RtRuntime::shard`]
/// can hand every SM its own runtime without copying geometry. All mutable
/// state is keyed by thread id or warp id; warps never migrate between SMs,
/// so per-SM shards partition it exactly.
pub struct RtRuntime {
    tlas: Arc<Tlas>,
    blases: Arc<Vec<Blas>>,
    launch: [u32; 3],
    fcc: bool,
    frames: HashMap<usize, Vec<Frame>>,
    scripts: HashMap<usize, Vec<Step>>,
    fcc_tables: HashMap<(usize, usize), Vec<FccRow>>,
    alloc_cursor: u64,
    /// Accumulated functional statistics.
    pub stats: RuntimeStats,
    /// Ray-traversal analytics (heatmaps, per-ray histograms, per-level
    /// line reuse); `None` unless enabled, so the default run pays one
    /// null check per traversal.
    analytics: Option<Box<TraversalAnalytics>>,
}

impl RtRuntime {
    /// Binds a runtime to a scene and launch.
    pub fn new(tlas: Tlas, blases: Vec<Blas>, launch: [u32; 3], fcc: bool) -> Self {
        RtRuntime {
            tlas: Arc::new(tlas),
            blases: Arc::new(blases),
            launch,
            fcc,
            frames: HashMap::new(),
            scripts: HashMap::new(),
            fcc_tables: HashMap::new(),
            alloc_cursor: SHARD_ALLOC_BASE,
            stats: RuntimeStats::default(),
            analytics: None,
        }
    }

    /// Turns on ray-traversal analytics collection: per-node heatmaps,
    /// per-ray histograms and per-level line-reuse tallies. Call before
    /// sharding so every shard inherits the setting.
    pub fn enable_analytics(&mut self) {
        self.analytics = Some(Box::new(TraversalAnalytics::default()));
    }

    /// The collected traversal analytics, if enabled.
    pub fn analytics(&self) -> Option<&TraversalAnalytics> {
        self.analytics.as_deref()
    }

    /// Merges another runtime's traversal analytics into this one's (used
    /// to fold per-SM shards back together; the merge is commutative, so
    /// shard order does not matter).
    pub fn merge_analytics_from(&mut self, other: &RtRuntime) {
        if let (Some(mine), Some(theirs)) = (self.analytics.as_deref_mut(), other.analytics()) {
            mine.merge(theirs);
        }
    }

    /// A per-SM shard sharing this runtime's scene with fresh per-thread
    /// state and a disjoint `rt_alloc_mem` region (so concurrent shards
    /// never hand out overlapping addresses).
    pub fn shard(&self, sm: usize) -> RtRuntime {
        RtRuntime {
            tlas: Arc::clone(&self.tlas),
            blases: Arc::clone(&self.blases),
            launch: self.launch,
            fcc: self.fcc,
            frames: HashMap::new(),
            scripts: HashMap::new(),
            fcc_tables: HashMap::new(),
            alloc_cursor: SHARD_ALLOC_BASE + sm as u64 * SHARD_ALLOC_REGION,
            stats: RuntimeStats::default(),
            analytics: self
                .analytics
                .as_ref()
                .map(|_| Box::new(TraversalAnalytics::default())),
        }
    }

    fn frame(&self, tid: usize) -> Option<&Frame> {
        self.frames.get(&tid).and_then(|v| v.last())
    }

    fn depth(&self, tid: usize) -> usize {
        self.frames.get(&tid).map_or(0, |v| v.len())
    }

    /// Resolves a pending-table index to a [`ProceduralHit`], honouring the
    /// FCC coalescing buffer when enabled.
    fn pending_at(&mut self, tid: usize, idx: u32) -> Option<ProceduralHit> {
        if self.fcc {
            let table = self.fcc_table(tid);
            let lane = tid % WARP_SIZE;
            let hit_idx = table.get(idx as usize)?.lane_hit[lane]?;
            self.frame(tid)
                .and_then(|f| f.pending.get(hit_idx as usize))
                .copied()
        } else {
            self.frame(tid)
                .and_then(|f| f.pending.get(idx as usize))
                .copied()
        }
    }

    /// Lazily builds the per-warp coalescing buffer for the warp containing
    /// `tid` at its current trace depth (all lanes of a warp execute
    /// `traverseAS` in the same warp instruction, so their frames exist by
    /// the time any lane reads the buffer).
    fn fcc_table(&mut self, tid: usize) -> &Vec<FccRow> {
        let warp = tid / WARP_SIZE;
        let depth = self.depth(tid);
        let key = (warp, depth);
        if !self.fcc_tables.contains_key(&key) {
            let mut rows: Vec<FccRow> = Vec::new();
            for lane in 0..WARP_SIZE {
                let lane_tid = warp * WARP_SIZE + lane;
                // Only lanes at the same depth participate in this round.
                if self.depth(lane_tid) != depth {
                    continue;
                }
                let pending: Vec<ProceduralHit> = self
                    .frame(lane_tid)
                    .map(|f| f.pending.clone())
                    .unwrap_or_default();
                for (hit_idx, hit) in pending.iter().enumerate() {
                    // Match with an existing row of the same shader ID that
                    // this lane does not occupy yet (paper §IV-A).
                    let slot = rows
                        .iter_mut()
                        .find(|r| r.shader_id == hit.shader_id && r.lane_hit[lane].is_none());
                    match slot {
                        Some(row) => row.lane_hit[lane] = Some(hit_idx as u32),
                        None => {
                            let mut row = FccRow {
                                shader_id: hit.shader_id,
                                lane_hit: [None; WARP_SIZE],
                            };
                            row.lane_hit[lane] = Some(hit_idx as u32);
                            rows.push(row);
                        }
                    }
                }
            }
            self.fcc_tables.insert(key, rows);
        }
        &self.fcc_tables[&key]
    }

    /// Converts the functional trace events into the RT-unit replay script,
    /// synthesizing short-stack spill traffic (paper §III-C2) and, under
    /// FCC, the extra coalescing-table loads (§VI-E: "FCC results in 11%
    /// more memory loads in the RT unit").
    fn events_to_script(&mut self, tid: usize, events: &[TraceEvent]) -> Vec<Step> {
        let mut script = Vec::with_capacity(events.len());
        let mut depth: u32 = 0;
        let spill_base = 0x7000_0000u64 + (tid as u64) * 0x1_0000 + 0x8000;
        let mut i = 0;
        while i < events.len() {
            match events[i] {
                TraceEvent::NodeFetch { addr, size, kind } => {
                    // The BVH operation consuming this node follows it.
                    let op = match events.get(i + 1) {
                        Some(TraceEvent::BoxTests { count }) => {
                            i += 1;
                            OpKind::Box { tests: *count }
                        }
                        Some(TraceEvent::TriangleTest) => {
                            i += 1;
                            OpKind::Triangle
                        }
                        _ if kind == NodeKind::InstanceLeaf => OpKind::Transform,
                        _ => OpKind::None,
                    };
                    script.push(Step::Fetch { addr, size, op });
                }
                TraceEvent::StackPush => {
                    depth += 1;
                    if depth > SHORT_STACK_ENTRIES {
                        // Spill the bottom entry to per-thread memory.
                        self.stats.spill_stores += 1;
                        script.push(Step::Store {
                            addr: spill_base + (depth as u64 % 64) * 32,
                            size: 32,
                        });
                    }
                }
                TraceEvent::StackPop => {
                    if depth > SHORT_STACK_ENTRIES {
                        // Refill from spill memory.
                        self.stats.spill_loads += 1;
                        script.push(Step::Fetch {
                            addr: spill_base + (depth as u64 % 64) * 32,
                            size: 32,
                            op: OpKind::None,
                        });
                    }
                    depth = depth.saturating_sub(1);
                }
                TraceEvent::IntersectionStore { addr, size } => {
                    if self.fcc {
                        // FCC: check the coalescing table for a matching
                        // shader ID (load), then insert (store).
                        script.push(Step::Fetch {
                            addr,
                            size,
                            op: OpKind::None,
                        });
                    }
                    script.push(Step::Store { addr, size });
                }
                TraceEvent::BoxTests { .. } | TraceEvent::TriangleTest | TraceEvent::Transform => {
                    // Standalone op events (e.g. cached-instance re-entry
                    // transforms) are charged with their node fetches.
                }
            }
            i += 1;
        }
        script
    }

    /// Serializes the runtime's mutable state — per-thread frame stacks,
    /// pending replay scripts, FCC coalescing buffers, the `rt_alloc_mem`
    /// cursor and the functional statistics — for a checkpoint. Scene data
    /// (TLAS/BLAS), launch dims and the FCC switch are rebuilt from the
    /// resuming configuration, not written. Hash maps are emitted in
    /// sorted key order so identical states encode identically.
    pub fn save_state(&self, e: &mut Enc) {
        let mut tids: Vec<usize> = self.frames.keys().copied().collect();
        tids.sort_unstable();
        e.seq(tids.len());
        for tid in tids {
            e.usize(tid);
            let frames = &self.frames[&tid];
            e.seq(frames.len());
            for f in frames {
                save_frame(f, e);
            }
        }
        let mut tids: Vec<usize> = self.scripts.keys().copied().collect();
        tids.sort_unstable();
        e.seq(tids.len());
        for tid in tids {
            e.usize(tid);
            let steps = &self.scripts[&tid];
            e.seq(steps.len());
            for s in steps {
                s.save(e);
            }
        }
        let mut keys: Vec<(usize, usize)> = self.fcc_tables.keys().copied().collect();
        keys.sort_unstable();
        e.seq(keys.len());
        for key in keys {
            e.usize(key.0);
            e.usize(key.1);
            let rows = &self.fcc_tables[&key];
            e.seq(rows.len());
            for row in rows {
                e.u32(row.shader_id);
                for slot in &row.lane_hit {
                    e.opt_u32(*slot);
                }
            }
        }
        e.u64(self.alloc_cursor);
        self.stats.save(e);
        match &self.analytics {
            None => e.u8(0),
            Some(a) => {
                e.u8(1);
                a.save(e);
            }
        }
    }

    /// Restores state written by [`RtRuntime::save_state`] into a runtime
    /// freshly bound to the same scene and launch.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError`] on a truncated or malformed payload.
    pub fn restore_state(&mut self, d: &mut Dec<'_>) -> Result<(), SnapError> {
        let mut frames = HashMap::new();
        for _ in 0..d.seq()? {
            let tid = d.usize()?;
            let n = d.seq()?;
            let mut stack = Vec::with_capacity(n);
            for _ in 0..n {
                stack.push(load_frame(d)?);
            }
            frames.insert(tid, stack);
        }
        let mut scripts = HashMap::new();
        for _ in 0..d.seq()? {
            let tid = d.usize()?;
            let n = d.seq()?;
            let mut steps = Vec::with_capacity(n);
            for _ in 0..n {
                steps.push(Step::load(d)?);
            }
            scripts.insert(tid, steps);
        }
        let mut fcc_tables = HashMap::new();
        for _ in 0..d.seq()? {
            let key = (d.usize()?, d.usize()?);
            let n = d.seq()?;
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                let shader_id = d.u32()?;
                let mut lane_hit = [None; WARP_SIZE];
                for slot in &mut lane_hit {
                    *slot = d.opt_u32()?;
                }
                rows.push(FccRow {
                    shader_id,
                    lane_hit,
                });
            }
            fcc_tables.insert(key, rows);
        }
        self.frames = frames;
        self.scripts = scripts;
        self.fcc_tables = fcc_tables;
        self.alloc_cursor = d.u64()?;
        self.stats = RuntimeStats::load(d)?;
        self.analytics = match d.u8()? {
            0 => None,
            1 => Some(Box::new(TraversalAnalytics::load(d)?)),
            t => {
                return Err(SnapError::Malformed(format!(
                    "rt runtime analytics tag {t}"
                )))
            }
        };
        Ok(())
    }
}

fn save_ray(ray: &RayDesc, e: &mut Enc) {
    for c in ray.origin {
        e.f32(c);
    }
    for c in ray.dir {
        e.f32(c);
    }
    e.f32(ray.t_min);
    e.f32(ray.t_max);
    e.u32(ray.flags);
}

fn load_ray(d: &mut Dec<'_>) -> Result<RayDesc, SnapError> {
    Ok(RayDesc {
        origin: [d.f32()?, d.f32()?, d.f32()?],
        dir: [d.f32()?, d.f32()?, d.f32()?],
        t_min: d.f32()?,
        t_max: d.f32()?,
        flags: d.u32()?,
    })
}

fn save_frame(f: &Frame, e: &mut Enc) {
    save_ray(&f.ray, e);
    e.u32(f.committed.kind);
    e.f32(f.committed.t);
    e.f32(f.committed.u);
    e.f32(f.committed.v);
    e.u32(f.committed.primitive_index);
    e.u32(f.committed.instance_index);
    e.u32(f.committed.instance_custom_index);
    e.u32(f.committed.sbt_offset);
    for c in f.committed.normal {
        e.f32(c);
    }
    e.seq(f.pending.len());
    for h in &f.pending {
        e.u32(h.primitive_index);
        e.u32(h.shader_id);
        e.u32(h.instance_index);
        e.u32(h.instance_custom_index);
        e.u32(h.sbt_offset);
        e.f32(h.t_enter);
    }
}

fn load_frame(d: &mut Dec<'_>) -> Result<Frame, SnapError> {
    let ray = load_ray(d)?;
    let committed = Committed {
        kind: d.u32()?,
        t: d.f32()?,
        u: d.f32()?,
        v: d.f32()?,
        primitive_index: d.u32()?,
        instance_index: d.u32()?,
        instance_custom_index: d.u32()?,
        sbt_offset: d.u32()?,
        normal: [d.f32()?, d.f32()?, d.f32()?],
    };
    let n = d.seq()?;
    let mut pending = Vec::with_capacity(n);
    for _ in 0..n {
        pending.push(ProceduralHit {
            primitive_index: d.u32()?,
            shader_id: d.u32()?,
            instance_index: d.u32()?,
            instance_custom_index: d.u32()?,
            sbt_offset: d.u32()?,
            t_enter: d.f32()?,
        });
    }
    Ok(Frame {
        ray,
        committed,
        pending,
    })
}

impl RuntimeStats {
    /// Serializes the statistics for a checkpoint.
    pub fn save(&self, e: &mut Enc) {
        e.u64(self.rays);
        e.u64(self.nodes_visited);
        e.u64(self.box_tests);
        e.u64(self.triangle_tests);
        e.u64(self.transforms);
        e.u64(self.procedural_hits);
        e.u64(self.triangle_hits);
        e.u64(self.misses);
        e.u32(self.max_stack_depth);
        e.u64(self.spill_stores);
        e.u64(self.spill_loads);
    }

    /// Reads statistics written by [`RuntimeStats::save`].
    ///
    /// # Errors
    ///
    /// Returns [`SnapError`] on a truncated payload.
    pub fn load(d: &mut Dec<'_>) -> Result<Self, SnapError> {
        Ok(RuntimeStats {
            rays: d.u64()?,
            nodes_visited: d.u64()?,
            box_tests: d.u64()?,
            triangle_tests: d.u64()?,
            transforms: d.u64()?,
            procedural_hits: d.u64()?,
            triangle_hits: d.u64()?,
            misses: d.u64()?,
            max_stack_depth: d.u32()?,
            spill_stores: d.u64()?,
            spill_loads: d.u64()?,
        })
    }
}

impl RtHooks for RtRuntime {
    fn traverse(&mut self, tid: usize, ray: RayDesc) -> Result<(), RtError> {
        let r = Ray::with_interval(
            Vec3::from(ray.origin),
            Vec3::from(ray.dir),
            ray.t_min,
            ray.t_max,
        );
        let per_thread_buffer = 0x4000_0000u64 + (tid as u64) * 0x800;
        let cfg = TraversalConfig {
            terminate_on_first_hit: ray.flags & RAY_FLAG_TERMINATE_ON_FIRST_HIT != 0,
            record_events: true,
            record_visits: self.analytics.is_some(),
            intersection_buffer_base: per_thread_buffer,
        };
        let blas_refs: Vec<&Blas> = self.blases.iter().collect();
        let result = traversal::traverse(&self.tlas, &blas_refs, &r, &cfg)
            .map_err(|e| RtError(format!("acceleration structure traversal failed: {e}")))?;

        self.stats.rays += 1;
        self.stats.nodes_visited += result.nodes_visited as u64;
        self.stats.box_tests += result.box_tests as u64;
        self.stats.triangle_tests += result.triangle_tests as u64;
        self.stats.transforms += result.transforms as u64;
        self.stats.procedural_hits += result.procedural_hits.len() as u64;
        self.stats.max_stack_depth = self.stats.max_stack_depth.max(result.max_stack_depth);

        let committed = match result.closest {
            Some(h) => {
                self.stats.triangle_hits += 1;
                Committed {
                    kind: 1,
                    t: h.t,
                    u: h.u,
                    v: h.v,
                    primitive_index: h.primitive_index,
                    instance_index: h.instance_index,
                    instance_custom_index: h.instance_custom_index,
                    sbt_offset: h.sbt_offset,
                    normal: h.world_normal.into(),
                }
            }
            None => {
                if result.procedural_hits.is_empty() {
                    self.stats.misses += 1;
                }
                Committed::default()
            }
        };

        // Script synthesis tallies short-stack spill reloads; the delta
        // over this call is exactly this ray's traversal restarts.
        let spill_loads_before = self.stats.spill_loads;
        let script = self.events_to_script(tid, &result.events);
        let restarts = self.stats.spill_loads - spill_loads_before;
        if let Some(a) = self.analytics.as_deref_mut() {
            for v in &result.visits {
                a.record_visit(v.blas, v.depth, v.node, v.addr, v.hit);
            }
            a.record_ray(
                result.nodes_visited as u64,
                result.box_tests as u64,
                result.triangle_tests as u64,
                restarts,
            );
        }
        self.scripts.insert(tid, script);
        self.frames.entry(tid).or_default().push(Frame {
            ray,
            committed,
            pending: result.procedural_hits,
        });
        Ok(())
    }

    fn end_trace(&mut self, tid: usize) {
        let depth = self.depth(tid);
        if let Some(frames) = self.frames.get_mut(&tid) {
            frames.pop();
        }
        // The coalescing buffer for this round is dead once any lane ends
        // its trace; rows are keyed by (warp, depth).
        self.fcc_tables.remove(&(tid / WARP_SIZE, depth));
    }

    fn alloc_mem(&mut self, _tid: usize, size: u32) -> u64 {
        let addr = self.alloc_cursor;
        self.alloc_cursor += (size as u64).div_ceil(64) * 64;
        addr
    }

    fn query(&mut self, tid: usize, q: RtQuery) -> u32 {
        let f = |v: f32| v.to_bits();
        match q {
            RtQuery::LaunchId(d) => {
                let tid = tid as u32;
                let (w, h) = (self.launch[0].max(1), self.launch[1].max(1));
                match d {
                    0 => tid % w,
                    1 => (tid / w) % h,
                    _ => tid / (w * h),
                }
            }
            RtQuery::LaunchSize(d) => self.launch.get(d as usize).copied().unwrap_or(1),
            RtQuery::RecursionDepth => self.depth(tid) as u32,
            _ => {
                let Some(frame) = self.frame(tid) else {
                    return 0;
                };
                match q {
                    RtQuery::HitKind => frame.committed.kind,
                    RtQuery::HitT => f(frame.committed.t),
                    RtQuery::HitU => f(frame.committed.u),
                    RtQuery::HitV => f(frame.committed.v),
                    RtQuery::HitPrimitiveIndex => frame.committed.primitive_index,
                    RtQuery::HitInstanceIndex => frame.committed.instance_index,
                    RtQuery::HitInstanceCustomIndex => frame.committed.instance_custom_index,
                    RtQuery::HitWorldNormal(d) => f(frame.committed.normal[d as usize % 3]),
                    RtQuery::ClosestHitShaderId => frame.committed.sbt_offset,
                    RtQuery::IntersectionCount => frame.pending.len() as u32,
                    RtQuery::RayOrigin(d) => f(frame.ray.origin[d as usize % 3]),
                    RtQuery::RayDirection(d) => f(frame.ray.dir[d as usize % 3]),
                    RtQuery::RayTMin => f(frame.ray.t_min),
                    _ => 0,
                }
            }
        }
    }

    fn query_idx(&mut self, tid: usize, q: RtIdxQuery, idx: u32) -> u32 {
        let Some(hit) = self.pending_at(tid, idx) else {
            return 0;
        };
        match q {
            RtIdxQuery::IntersectionShaderId => hit.shader_id,
            RtIdxQuery::IntersectionPrimitiveIndex => hit.primitive_index,
            RtIdxQuery::IntersectionInstanceCustomIndex => hit.instance_custom_index,
            RtIdxQuery::IntersectionInstanceIndex => hit.instance_index,
            RtIdxQuery::IntersectionTEnter => hit.t_enter.to_bits(),
        }
    }

    fn intersection_valid(&mut self, tid: usize, idx: u32) -> bool {
        if self.fcc {
            (idx as usize) < self.fcc_table(tid).len()
        } else {
            self.frame(tid)
                .is_some_and(|f| (idx as usize) < f.pending.len())
        }
    }

    fn next_coalesced_call(&mut self, tid: usize, idx: u32) -> u32 {
        let lane = tid % WARP_SIZE;
        let table = self.fcc_table(tid);
        match table.get(idx as usize) {
            Some(row) if row.lane_hit[lane].is_some() => row.shader_id,
            _ => u32::MAX,
        }
    }

    fn report_intersection(&mut self, tid: usize, idx: u32, t: f32) -> Result<(), RtError> {
        let Some(hit) = self.pending_at(tid, idx) else {
            return Ok(());
        };
        let Some(frame) = self.frames.get_mut(&tid).and_then(|v| v.last_mut()) else {
            return Ok(());
        };
        if t < frame.ray.t_min {
            return Ok(());
        }
        let current_t = if frame.committed.kind == 0 {
            frame.ray.t_max
        } else {
            frame.committed.t
        };
        if t < current_t {
            frame.committed = Committed {
                kind: 2,
                t,
                u: 0.0,
                v: 0.0,
                primitive_index: hit.primitive_index,
                instance_index: hit.instance_index,
                instance_custom_index: hit.instance_custom_index,
                sbt_offset: hit.sbt_offset,
                normal: [0.0; 3],
            };
        }
        Ok(())
    }
}

impl ScriptSource for RtRuntime {
    fn take_script(&mut self, tid: usize) -> Vec<Step> {
        self.scripts.remove(&tid).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vksim_bvh::geometry::{BlasGeometry, ProceduralPrimitive, Triangle};
    use vksim_bvh::Instance;
    use vksim_math::{Aabb, Mat4x3};

    fn quad_scene() -> (Tlas, Vec<Blas>) {
        let blas = Blas::from_triangles(&[
            Triangle::new(
                Vec3::new(-1.0, -1.0, 0.0),
                Vec3::new(1.0, -1.0, 0.0),
                Vec3::new(1.0, 1.0, 0.0),
            ),
            Triangle::new(
                Vec3::new(-1.0, -1.0, 0.0),
                Vec3::new(1.0, 1.0, 0.0),
                Vec3::new(-1.0, 1.0, 0.0),
            ),
        ]);
        let tlas = Tlas::build(vec![Instance::new(0, Mat4x3::IDENTITY)], &[&blas]);
        (tlas, vec![blas])
    }

    fn proc_scene(shader_ids: &[u32]) -> (Tlas, Vec<Blas>) {
        let prims: Vec<ProceduralPrimitive> = shader_ids
            .iter()
            .map(|&s| ProceduralPrimitive::new(Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0)), s))
            .collect();
        let blas = Blas::build(BlasGeometry::procedurals(prims));
        let tlas = Tlas::build(vec![Instance::new(0, Mat4x3::IDENTITY)], &[&blas]);
        (tlas, vec![blas])
    }

    fn z_ray() -> RayDesc {
        RayDesc {
            origin: [0.0, 0.0, -5.0],
            dir: [0.0, 0.0, 1.0],
            t_min: 1e-3,
            t_max: 1e30,
            flags: 0,
        }
    }

    #[test]
    fn traverse_commits_triangle_hit_and_records_script() {
        let (tlas, blases) = quad_scene();
        let mut rt = RtRuntime::new(tlas, blases, [4, 4, 1], false);
        rt.traverse(0, z_ray()).unwrap();
        assert_eq!(rt.query(0, RtQuery::HitKind), 1);
        assert!((f32::from_bits(rt.query(0, RtQuery::HitT)) - 5.0).abs() < 1e-3);
        let script = rt.take_script(0);
        assert!(!script.is_empty());
        assert!(script.iter().any(|s| matches!(
            s,
            Step::Fetch {
                op: OpKind::Triangle,
                ..
            }
        )));
        assert!(script.iter().any(|s| matches!(
            s,
            Step::Fetch {
                op: OpKind::Transform,
                ..
            }
        )));
        rt.end_trace(0);
        assert_eq!(rt.query(0, RtQuery::HitKind), 0, "frame popped");
        assert_eq!(rt.stats.rays, 1);
        assert_eq!(rt.stats.triangle_hits, 1);
    }

    #[test]
    fn miss_reports_kind_zero() {
        let (tlas, blases) = quad_scene();
        let mut rt = RtRuntime::new(tlas, blases, [4, 4, 1], false);
        let mut ray = z_ray();
        ray.origin = [50.0, 50.0, -5.0];
        rt.traverse(0, ray).unwrap();
        assert_eq!(rt.query(0, RtQuery::HitKind), 0);
        assert_eq!(rt.stats.misses, 1);
    }

    #[test]
    fn launch_id_mapping() {
        let (tlas, blases) = quad_scene();
        let mut rt = RtRuntime::new(tlas, blases, [8, 4, 1], false);
        let tid = 8 * 3 + 5; // x=5, y=3
        assert_eq!(rt.query(tid, RtQuery::LaunchId(0)), 5);
        assert_eq!(rt.query(tid, RtQuery::LaunchId(1)), 3);
        assert_eq!(rt.query(tid, RtQuery::LaunchSize(0)), 8);
    }

    #[test]
    fn nested_traces_stack_frames() {
        let (tlas, blases) = quad_scene();
        let mut rt = RtRuntime::new(tlas, blases, [4, 4, 1], false);
        rt.traverse(0, z_ray()).unwrap();
        assert_eq!(rt.query(0, RtQuery::RecursionDepth), 1);
        let mut shadow = z_ray();
        shadow.origin = [0.0, 0.0, -1.0];
        shadow.flags = RAY_FLAG_TERMINATE_ON_FIRST_HIT;
        rt.traverse(0, shadow).unwrap();
        assert_eq!(rt.query(0, RtQuery::RecursionDepth), 2);
        rt.end_trace(0);
        assert_eq!(rt.query(0, RtQuery::RecursionDepth), 1);
        // Outer frame intact.
        assert_eq!(rt.query(0, RtQuery::HitKind), 1);
    }

    #[test]
    fn pending_intersections_and_report() {
        let (tlas, blases) = proc_scene(&[3]);
        let mut rt = RtRuntime::new(tlas, blases, [4, 4, 1], false);
        rt.traverse(0, z_ray()).unwrap();
        assert_eq!(
            rt.query(0, RtQuery::HitKind),
            0,
            "procedural not committed yet"
        );
        assert!(rt.intersection_valid(0, 0));
        assert!(!rt.intersection_valid(0, 1));
        assert_eq!(rt.query_idx(0, RtIdxQuery::IntersectionShaderId, 0), 3);
        rt.report_intersection(0, 0, 4.0).unwrap();
        assert_eq!(rt.query(0, RtQuery::HitKind), 2);
        assert_eq!(f32::from_bits(rt.query(0, RtQuery::HitT)), 4.0);
        // A farther report does not replace it.
        rt.report_intersection(0, 0, 9.0).unwrap();
        assert_eq!(f32::from_bits(rt.query(0, RtQuery::HitT)), 4.0);
    }

    #[test]
    fn report_respects_t_min() {
        let (tlas, blases) = proc_scene(&[0]);
        let mut rt = RtRuntime::new(tlas, blases, [4, 4, 1], false);
        rt.traverse(0, z_ray()).unwrap();
        rt.report_intersection(0, 0, 1e-6).unwrap(); // below t_min
        assert_eq!(rt.query(0, RtQuery::HitKind), 0);
    }

    #[test]
    fn fcc_coalesces_same_shader_across_lanes() {
        // Two lanes, both hitting shader-0 geometry twice and shader-1 once:
        // rows should be [s0, s0, s1] (not 6 rows).
        let (tlas, blases) = proc_scene(&[0, 0, 1]);
        let mut rt = RtRuntime::new(tlas, blases, [32, 1, 1], true);
        rt.traverse(0, z_ray()).unwrap();
        rt.traverse(1, z_ray()).unwrap();
        let rows: Vec<u32> = (0..4)
            .map_while(|i| {
                if rt.intersection_valid(0, i) {
                    Some(rt.next_coalesced_call(0, i))
                } else {
                    None
                }
            })
            .collect();
        assert_eq!(rows.len(), 3, "3 coalesced rows for 2x3 hits");
        assert_eq!(rows.iter().filter(|&&s| s == 0).count(), 2);
        assert_eq!(rows.iter().filter(|&&s| s == 1).count(), 1);
        // Lane 1 participates in the same rows.
        assert_eq!(rt.next_coalesced_call(1, 0), rt.next_coalesced_call(0, 0));
    }

    #[test]
    fn fcc_nonparticipating_lane_gets_sentinel() {
        let (tlas, blases) = proc_scene(&[0]);
        let mut rt = RtRuntime::new(tlas, blases, [32, 1, 1], true);
        rt.traverse(0, z_ray()).unwrap();
        // Lane 1 misses everything.
        let mut miss = z_ray();
        miss.origin = [99.0, 99.0, -5.0];
        rt.traverse(1, miss).unwrap();
        assert_eq!(rt.next_coalesced_call(0, 0), 0);
        assert_eq!(rt.next_coalesced_call(1, 0), u32::MAX);
    }

    #[test]
    fn fcc_script_has_extra_table_loads() {
        let (tlas, blases) = proc_scene(&[0, 0]);
        let mut base_rt = RtRuntime::new(tlas.clone(), blases.clone(), [4, 1, 1], false);
        base_rt.traverse(0, z_ray()).unwrap();
        let base_loads = base_rt
            .take_script(0)
            .iter()
            .filter(|s| matches!(s, Step::Fetch { .. }))
            .count();
        let mut fcc_rt = RtRuntime::new(tlas, blases, [4, 1, 1], true);
        fcc_rt.traverse(0, z_ray()).unwrap();
        let fcc_loads = fcc_rt
            .take_script(0)
            .iter()
            .filter(|s| matches!(s, Step::Fetch { .. }))
            .count();
        assert!(fcc_loads > base_loads, "FCC adds coalescing-table loads");
    }

    #[test]
    fn shards_share_scene_with_disjoint_alloc_regions() {
        let (tlas, blases) = quad_scene();
        let rt = RtRuntime::new(tlas, blases, [32, 1, 1], false);
        let mut s0 = rt.shard(0);
        let mut s1 = rt.shard(1);
        // Disjoint rt_alloc_mem arenas.
        let a0 = s0.alloc_mem(0, 64);
        let a1 = s1.alloc_mem(0, 64);
        assert_ne!(a0, a1);
        assert_eq!(a1 - a0, SHARD_ALLOC_REGION);
        // Same scene: identical traversal results for the same ray.
        s0.traverse(0, z_ray()).unwrap();
        s1.traverse(32, z_ray()).unwrap();
        assert_eq!(s0.stats.nodes_visited, s1.stats.nodes_visited);
        assert_eq!(
            s0.query(0, RtQuery::HitKind),
            s1.query(32, RtQuery::HitKind)
        );
    }

    #[test]
    fn merged_shard_stats_match_single_runtime() {
        let (tlas, blases) = quad_scene();
        let single_scene = RtRuntime::new(tlas, blases, [64, 1, 1], false);
        let mut single = single_scene.shard(0);
        let mut s0 = single_scene.shard(0);
        let mut s1 = single_scene.shard(1);
        let mut miss = z_ray();
        miss.origin = [50.0, 50.0, -5.0];
        for tid in 0..32 {
            single.traverse(tid, z_ray()).unwrap();
            s0.traverse(tid, z_ray()).unwrap();
        }
        for tid in 32..64 {
            single.traverse(tid, miss).unwrap();
            s1.traverse(tid, miss).unwrap();
        }
        let mut merged = RuntimeStats::default();
        merged.merge(&s0.stats);
        merged.merge(&s1.stats);
        assert_eq!(merged, single.stats);
        // Merge is commutative.
        let mut swapped = RuntimeStats::default();
        swapped.merge(&s1.stats);
        swapped.merge(&s0.stats);
        assert_eq!(swapped, merged);
    }

    #[test]
    fn alloc_mem_is_monotonic_and_aligned() {
        let (tlas, blases) = quad_scene();
        let mut rt = RtRuntime::new(tlas, blases, [1, 1, 1], false);
        let a = rt.alloc_mem(0, 100);
        let b = rt.alloc_mem(0, 4);
        assert!(b >= a + 100);
        assert_eq!(a % 64, 0);
        assert_eq!(b % 64, 0);
    }

    #[test]
    fn scripts_are_consumed_once() {
        let (tlas, blases) = quad_scene();
        let mut rt = RtRuntime::new(tlas, blases, [4, 4, 1], false);
        rt.traverse(7, z_ray()).unwrap();
        assert!(!rt.take_script(7).is_empty());
        assert!(rt.take_script(7).is_empty(), "second take is empty");
    }

    #[test]
    fn analytics_mirror_functional_stats_exactly() {
        let (tlas, blases) = quad_scene();
        let mut rt = RtRuntime::new(tlas, blases, [4, 4, 1], false);
        rt.enable_analytics();
        rt.traverse(0, z_ray()).unwrap();
        let mut miss = z_ray();
        miss.origin = [50.0, 50.0, -5.0];
        rt.traverse(1, miss).unwrap();
        let a = rt.analytics().expect("enabled");
        assert_eq!(a.rays(), rt.stats.rays);
        assert_eq!(a.visit_total(), rt.stats.nodes_visited);
        for (name, hist) in a.histograms() {
            assert_eq!(hist.count(), rt.stats.rays, "hist {name}");
        }
        let [(_, nodes), (_, boxes), (_, tris), _] = a.histograms();
        assert_eq!(nodes.sum(), rt.stats.nodes_visited);
        assert_eq!(boxes.sum(), rt.stats.box_tests);
        assert_eq!(tris.sum(), rt.stats.triangle_tests);
        assert!(a.hit_total() > 0, "the quad hit leaves hot nodes");
        // Analytics state rides checkpoints byte-identically.
        let mut e = Enc::new();
        rt.save_state(&mut e);
        let bytes = e.into_bytes();
        let (tlas, blases) = quad_scene();
        let mut back = RtRuntime::new(tlas, blases, [4, 4, 1], false);
        back.enable_analytics();
        let mut d = Dec::new(&bytes);
        back.restore_state(&mut d).unwrap();
        d.finish().unwrap();
        let mut e2 = Enc::new();
        back.save_state(&mut e2);
        assert_eq!(e2.into_bytes(), bytes, "round trip is byte-idempotent");
    }

    #[test]
    fn shards_inherit_analytics_and_merge_conserves() {
        let (tlas, blases) = quad_scene();
        let mut rt = RtRuntime::new(tlas, blases, [64, 1, 1], false);
        assert!(rt.shard(0).analytics().is_none(), "off stays off");
        rt.enable_analytics();
        let mut s0 = rt.shard(0);
        let mut s1 = rt.shard(1);
        s0.traverse(0, z_ray()).unwrap();
        s1.traverse(32, z_ray()).unwrap();
        rt.merge_analytics_from(&s0);
        rt.merge_analytics_from(&s1);
        let merged = rt.analytics().expect("enabled");
        assert_eq!(merged.rays(), 2);
        assert_eq!(
            merged.visit_total(),
            s0.stats.nodes_visited + s1.stats.nodes_visited
        );
    }

    #[test]
    fn deep_scene_generates_spill_traffic() {
        // Thousands of overlapping triangles scattered in a cube: poor
        // spatial separation makes many children overlap the ray, forcing a
        // deep traversal stack.
        let mut tris = Vec::new();
        let mut state = 0x12345678u32;
        let mut rng = || {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            (state >> 8) as f32 / 16_777_216.0 * 20.0 - 10.0
        };
        for _ in 0..2048 {
            // Large triangles spanning much of the cube: every node's
            // children overlap almost any ray.
            tris.push(Triangle::new(
                Vec3::new(rng(), rng(), rng()),
                Vec3::new(rng(), rng(), rng()),
                Vec3::new(rng(), rng(), rng()),
            ));
        }
        let blas = Blas::from_triangles(&tris);
        let tlas = Tlas::build(vec![Instance::new(0, Mat4x3::IDENTITY)], &[&blas]);
        let mut rt = RtRuntime::new(tlas, vec![blas], [1, 1, 1], false);
        // Ray through the middle of the cloud, forced to visit everything
        // near its path (no early hit thanks to a tiny t interval... use a
        // ray that misses all triangles but crosses many boxes).
        rt.traverse(
            0,
            RayDesc {
                origin: [-15.0, 0.05, 0.05],
                dir: [1.0, 0.001, 0.001],
                t_min: 1e-3,
                t_max: 1e30,
                flags: 0,
            },
        )
        .unwrap();
        assert!(rt.stats.max_stack_depth > SHORT_STACK_ENTRIES);
        assert!(rt.stats.spill_stores > 0);
    }
}
