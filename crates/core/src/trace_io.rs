//! Kernel trace dump/replay (the artifact's trace-runner workflow).
//!
//! The Vulkan-Sim artifact dumps the translated PTX shaders and launch
//! arguments of a `vkCmdTraceRaysKHR` call to files, which the standalone
//! *trace runner* replays on any machine without the Vulkan frontend
//! (paper Appendix E). This module reproduces that: [`dump_command`]
//! serializes a recorded [`TraceRaysCommand`] — the translated program in
//! textual assembly plus the launch arguments — and [`load_command`]
//! reconstructs it for replay against a scene device.
//!
//! # Example
//!
//! ```
//! use vksim_core::trace_io::{dump_command, load_command};
//! use vksim_scenes::{build, Scale, WorkloadKind};
//!
//! let w = build(WorkloadKind::Tri, Scale::Test);
//! let text = dump_command(&w.cmd);
//! let replayed = load_command(&text).unwrap();
//! assert_eq!(replayed.program, w.cmd.program);
//! assert_eq!(replayed.dims, w.cmd.dims);
//! ```

use vksim_isa::text::{assemble, disassemble, ParseError};
use vksim_vulkan::{LaunchSize, TraceRaysCommand};

/// Serializes a trace command: a `.launch` header followed by the
/// program's textual assembly.
pub fn dump_command(cmd: &TraceRaysCommand) -> String {
    format!(
        ".launch width={} height={} depth={} fcc={}\n{}",
        cmd.dims.width,
        cmd.dims.height,
        cmd.dims.depth,
        cmd.fcc as u8,
        disassemble(&cmd.program)
    )
}

/// Errors from [`load_command`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceLoadError {
    /// The `.launch` header is missing or malformed.
    BadHeader(String),
    /// The program body failed to assemble.
    Program(ParseError),
}

impl std::fmt::Display for TraceLoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceLoadError::BadHeader(m) => write!(f, "bad trace header: {m}"),
            TraceLoadError::Program(e) => write!(f, "bad trace program: {e}"),
        }
    }
}

impl std::error::Error for TraceLoadError {}

/// Parses a dumped trace back into a replayable command.
///
/// # Errors
///
/// Returns [`TraceLoadError`] on malformed headers or programs.
pub fn load_command(text: &str) -> Result<TraceRaysCommand, TraceLoadError> {
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| TraceLoadError::BadHeader("empty trace".into()))?;
    let rest = header
        .strip_prefix(".launch")
        .ok_or_else(|| TraceLoadError::BadHeader(format!("expected .launch, got `{header}`")))?;
    let mut width = None;
    let mut height = None;
    let mut depth = None;
    let mut fcc = None;
    for tok in rest.split_whitespace() {
        let (k, v) = tok
            .split_once('=')
            .ok_or_else(|| TraceLoadError::BadHeader(format!("bad token `{tok}`")))?;
        let n: u32 = v
            .parse()
            .map_err(|_| TraceLoadError::BadHeader(format!("bad value `{tok}`")))?;
        match k {
            "width" => width = Some(n),
            "height" => height = Some(n),
            "depth" => depth = Some(n),
            "fcc" => fcc = Some(n != 0),
            other => return Err(TraceLoadError::BadHeader(format!("unknown key `{other}`"))),
        }
    }
    let body: String = lines.collect::<Vec<_>>().join("\n");
    let program = assemble(&body).map_err(TraceLoadError::Program)?;
    Ok(TraceRaysCommand {
        program,
        dims: LaunchSize {
            width: width.ok_or_else(|| TraceLoadError::BadHeader("missing width".into()))?,
            height: height.ok_or_else(|| TraceLoadError::BadHeader("missing height".into()))?,
            depth: depth.unwrap_or(1),
        },
        fcc: fcc.unwrap_or(false),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimConfig, Simulator};
    use vksim_scenes::{build, Scale, WorkloadKind};

    #[test]
    fn dump_load_roundtrip_all_workloads() {
        for kind in WorkloadKind::ALL {
            let w = build(kind, Scale::Test);
            let text = dump_command(&w.cmd);
            let loaded = load_command(&text).unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert_eq!(loaded.program, w.cmd.program, "{}", w.name);
            assert_eq!(loaded.dims, w.cmd.dims, "{}", w.name);
            assert_eq!(loaded.fcc, w.cmd.fcc, "{}", w.name);
        }
    }

    #[test]
    fn replayed_trace_renders_identical_image() {
        let w = build(WorkloadKind::Tri, Scale::Test);
        let replayed = load_command(&dump_command(&w.cmd)).unwrap();
        let mut sim = Simulator::new(SimConfig::test_small());
        let (orig_mem, _) = sim.run_functional(&w.device, &w.cmd).expect("healthy run");
        let (replay_mem, _) = sim
            .run_functional(&w.device, &replayed)
            .expect("healthy run");
        for i in 0..(w.width * w.height) as u64 {
            assert_eq!(
                orig_mem.read_u32(w.fb_addr + i * 4),
                replay_mem.read_u32(w.fb_addr + i * 4),
                "pixel {i}"
            );
        }
    }

    #[test]
    fn fcc_flag_survives_roundtrip() {
        let mut w = build(WorkloadKind::Rtv6, Scale::Test);
        let fcc_cmd = w.with_fcc(true);
        let loaded = load_command(&dump_command(&fcc_cmd)).unwrap();
        assert!(loaded.fcc);
    }

    #[test]
    fn malformed_traces_are_rejected() {
        assert!(matches!(
            load_command(""),
            Err(TraceLoadError::BadHeader(_))
        ));
        assert!(matches!(
            load_command("not a trace\nexit"),
            Err(TraceLoadError::BadHeader(_))
        ));
        assert!(matches!(
            load_command(".launch width=4 height=4 depth=1 fcc=0\n0: bogus"),
            Err(TraceLoadError::Program(_))
        ));
        assert!(matches!(
            load_command(".launch height=4 depth=1 fcc=0\n0: exit"),
            Err(TraceLoadError::BadHeader(_))
        ));
    }
}
