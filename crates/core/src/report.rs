//! Evaluation-quantity derivation (paper §VI).

use vksim_gpu::GpuStats;
use vksim_stats::{Roofline, RooflinePoint};

/// Instruction-mix fractions (paper §VI: "ALU operations account for 60%
/// ... memory operations with 25% ... around 1% trace ray instructions").
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct InstructionMix {
    /// ALU fraction.
    pub alu: f64,
    /// SFU fraction.
    pub sfu: f64,
    /// Memory fraction.
    pub mem: f64,
    /// Control-flow fraction.
    pub ctrl: f64,
    /// RT-instruction fraction (bookkeeping + trace).
    pub rt: f64,
    /// `traverseAS` (trace ray) fraction specifically.
    pub trace_ray: f64,
}

/// Derives the instruction mix from run statistics.
pub fn instruction_mix(stats: &GpuStats) -> InstructionMix {
    let alu = stats.counters.get("inst.Alu") as f64;
    let sfu = stats.counters.get("inst.Sfu") as f64;
    let mem = stats.counters.get("inst.Mem") as f64;
    let ctrl = stats.counters.get("inst.Ctrl") as f64;
    let rt = stats.counters.get("inst.Rt") as f64;
    let exit = stats.counters.get("inst.Exit") as f64;
    let trace = stats.counters.get("rt.trace_warps") as f64;
    let total = alu + sfu + mem + ctrl + rt + exit;
    if total == 0.0 {
        return InstructionMix::default();
    }
    InstructionMix {
        alu: alu / total,
        sfu: sfu / total,
        mem: mem / total,
        ctrl: ctrl / total,
        rt: rt / total,
        trace_ray: trace / total,
    }
}

/// The Fig. 1 substitute: fraction of execution attributable to ray
/// tracing, measured as cycles where RT units were busy.
pub fn rt_time_fraction(stats: &GpuStats, num_sms: usize) -> f64 {
    if stats.cycles == 0 || num_sms == 0 {
        return 0.0;
    }
    let per_sm = stats.rt_busy_cycles as f64 / num_sms as f64;
    (per_sm / stats.cycles as f64).min(1.0)
}

/// Builds the RT-unit roofline (Fig. 12): performance = RT operations per
/// cycle; operational intensity = operations per 32 B cache block fetched;
/// compute roof = units × pipeline stages; memory roof = 1 block/cycle.
pub fn roofline_point(stats: &GpuStats) -> RooflinePoint {
    let ops = stats.rt_ops as f64;
    let blocks = stats.rt_chunks_fetched.max(1) as f64;
    let cycles = stats.cycles.max(1) as f64;
    RooflinePoint {
        operational_intensity: ops / blocks,
        performance: ops / cycles,
    }
}

/// The paper's roofline bounds for a 32-wide RT unit: 32 instances of each
/// operation unit with their pipeline depths, one cache block per cycle.
pub fn rt_roofline(box_lat: u32, tri_lat: u32, tf_lat: u32) -> Roofline {
    let stages = (box_lat + tri_lat + tf_lat) as f64;
    Roofline::new(32.0 * stages, 1.0)
}

/// DRAM row-buffer hit rate from run statistics.
///
/// Uses the merged (summed-over-partitions) `row_hit` / `req` counters, so
/// the result is weighted by each partition's request count — never the
/// mean of per-partition rates, which overweights idle partitions under
/// asymmetric load.
pub fn dram_row_hit_rate(stats: &GpuStats) -> f64 {
    let hits = stats.dram_stats.get("row_hit") as f64;
    let reqs = stats.dram_stats.get("req") as f64;
    if reqs == 0.0 {
        0.0
    } else {
        hits / reqs
    }
}

/// One row of the Fig. 14 cache breakdown.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CacheBreakdown {
    /// Hits from shader accesses.
    pub shader_hits: u64,
    /// Hits from RT-unit accesses.
    pub rt_hits: u64,
    /// Compulsory (cold) misses, shader.
    pub shader_compulsory: u64,
    /// Capacity + conflict misses, shader.
    pub shader_thrash: u64,
    /// Compulsory misses, RT unit.
    pub rt_compulsory: u64,
    /// Capacity + conflict misses, RT unit (cache-thrashing evidence).
    pub rt_thrash: u64,
}

impl CacheBreakdown {
    /// Extracts a breakdown from a cache's counter bag.
    pub fn from_counters(c: &vksim_stats::Counters) -> Self {
        CacheBreakdown {
            shader_hits: c.get("shader_load.hit") + c.get("shader_store.hit"),
            rt_hits: c.get("rt_unit.hit"),
            shader_compulsory: c.get("shader_load.miss_compulsory"),
            shader_thrash: c.get("shader_load.miss_capacity") + c.get("shader_load.miss_conflict"),
            rt_compulsory: c.get("rt_unit.miss_compulsory"),
            rt_thrash: c.get("rt_unit.miss_capacity") + c.get("rt_unit.miss_conflict"),
        }
    }

    /// Total accesses in the breakdown.
    pub fn total(&self) -> u64 {
        self.shader_hits
            + self.rt_hits
            + self.shader_compulsory
            + self.shader_thrash
            + self.rt_compulsory
            + self.rt_thrash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vksim_stats::Counters;

    fn stats_with(counters: Counters) -> GpuStats {
        GpuStats {
            cycles: 1000,
            issued_insts: 0,
            simt_efficiency: 0.0,
            rt_simt_efficiency: 0.0,
            counters,
            l1_stats: Counters::new(),
            rtc_stats: Counters::new(),
            l2_stats: Counters::new(),
            dram_stats: Counters::new(),
            dram_efficiency: 0.0,
            dram_utilization: 0.0,
            rt_warp_latency: vksim_stats::Histogram::new(1000.0),
            rt_busy_cycles: 0,
            rt_resident_warp_cycles: 0,
            rt_occupancy: Vec::new(),
            rt_ops: 0,
            rt_chunks_fetched: 0,
        }
    }

    #[test]
    fn mix_fractions_sum_to_one() {
        let mut c = Counters::new();
        c.add("inst.Alu", 60);
        c.add("inst.Mem", 25);
        c.add("inst.Ctrl", 10);
        c.add("inst.Rt", 4);
        c.add("inst.Exit", 1);
        let m = instruction_mix(&stats_with(c));
        let sum = m.alu + m.sfu + m.mem + m.ctrl + m.rt;
        assert!((sum - 0.99).abs() < 0.02);
        assert!((m.alu - 0.6).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_give_zero_mix() {
        let m = instruction_mix(&stats_with(Counters::new()));
        assert_eq!(m, InstructionMix::default());
    }

    #[test]
    fn rt_fraction_bounded() {
        let mut s = stats_with(Counters::new());
        s.rt_busy_cycles = 920 * 2; // 2 SMs busy 92% of 1000 cycles
        assert!((rt_time_fraction(&s, 2) - 0.92).abs() < 1e-9);
        s.rt_busy_cycles = 10_000_000;
        assert_eq!(rt_time_fraction(&s, 2), 1.0);
    }

    #[test]
    fn roofline_point_computation() {
        let mut s = stats_with(Counters::new());
        s.rt_ops = 4000;
        s.rt_chunks_fetched = 1000;
        s.cycles = 2000;
        let p = roofline_point(&s);
        assert_eq!(p.operational_intensity, 4.0);
        assert_eq!(p.performance, 2.0);
        let r = rt_roofline(4, 8, 4);
        assert!(r.is_memory_bound(&p));
        assert!(r.utilization(&p) <= 1.0);
    }

    #[test]
    fn row_hit_rate_is_request_weighted_across_partitions() {
        // Partition 0: 900 reqs, 900 hits (rate 1.0). Partition 1: 100
        // reqs, 0 hits (rate 0.0). The merged counters are the sums the
        // backend emits alongside the per-partition `p{i}.*` keys.
        let mut s = stats_with(Counters::new());
        s.dram_stats.add("req", 900);
        s.dram_stats.add("row_hit", 900);
        s.dram_stats.add("p0.req", 900);
        s.dram_stats.add("p0.row_hit", 900);
        s.dram_stats.add("req", 100);
        s.dram_stats.add("p1.req", 100);
        let rate = dram_row_hit_rate(&s);
        // Request-weighted: 900/1000, not the per-partition mean 0.5.
        assert!((rate - 0.9).abs() < 1e-12);
        assert!((rate - 0.5).abs() > 0.1);
        // No requests -> defined zero, not NaN.
        assert_eq!(dram_row_hit_rate(&stats_with(Counters::new())), 0.0);
    }

    #[test]
    fn cache_breakdown_extraction() {
        let mut c = Counters::new();
        c.add("shader_load.hit", 10);
        c.add("shader_store.hit", 2);
        c.add("rt_unit.hit", 5);
        c.add("shader_load.miss_compulsory", 3);
        c.add("shader_load.miss_capacity", 1);
        c.add("shader_load.miss_conflict", 1);
        c.add("rt_unit.miss_capacity", 4);
        let b = CacheBreakdown::from_counters(&c);
        assert_eq!(b.shader_hits, 12);
        assert_eq!(b.rt_hits, 5);
        assert_eq!(b.shader_thrash, 2);
        assert_eq!(b.rt_thrash, 4);
        assert_eq!(b.total(), 26);
    }
}
