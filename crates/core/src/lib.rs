//! Vulkan-Sim core: the full ray-tracing GPU simulator.
//!
//! This crate is the paper's primary contribution assembled from the
//! substrate crates: it binds the functional model (acceleration-structure
//! traversal + translated shaders, paper §III-B) to the timing model (SIMT
//! GPU + RT units, §III-C) and exposes the evaluation instruments used in
//! §VI.
//!
//! * [`runtime::RtRuntime`] — the per-thread ray-tracing runtime backing
//!   the custom PTX instructions: it executes `traverseAS` functionally
//!   (recording the transactions script the RT unit replays), maintains the
//!   per-thread traversal-results stack, the delayed intersection table,
//!   and the FCC coalescing buffer (case study §IV-A).
//! * [`simulator::Simulator`] — runs a recorded `vkCmdTraceRaysKHR` either
//!   cycle-accurately on the GPU model or functionally (for image
//!   validation à la Fig. 2).
//! * [`config::SimConfig`] / [`config::MemoryMode`] — Table III
//!   configurations plus the Fig. 15 memory variants (RT cache, perfect
//!   BVH, perfect memory).
//! * [`hwproxy`] — an independent analytic cost model standing in for the
//!   RTX 2080 SUPER in the correlation studies (Figs. 11 and 19); see
//!   DESIGN.md for the substitution rationale.
//! * [`report`] — derives the paper's evaluation quantities (instruction
//!   mix, roofline points, cache breakdowns, DRAM efficiency).
//! * [`validate`] — image comparison (percentage of differing pixels).
//!
//! # Example
//!
//! ```
//! use vksim_core::{Simulator, SimConfig};
//! use vksim_vulkan::Device;
//! use vksim_bvh::{geometry::{BlasGeometry, Triangle}, Instance};
//! use vksim_math::{Mat4x3, Vec3};
//! use vksim_shader::{builder::ShaderBuilder, ir::ShaderKind, PipelineShaders};
//!
//! // Trivial kernel: every thread writes its x to the framebuffer.
//! let mut device = Device::new();
//! let fb = device.alloc_buffer(4 * 32);
//! device.bind_descriptor(0, fb);
//! let mut rg = ShaderBuilder::new(ShaderKind::RayGen);
//! let x = rg.launch_id(0);
//! let a = rg.var_u32(rg.buffer_base(0) + x.clone() * rg.c_u32(4));
//! rg.store(rg.v(a), 0, x);
//! let pipe = device
//!     .create_ray_tracing_pipeline(PipelineShaders::raygen_only(rg.finish()), false)
//!     .unwrap();
//! let cmd = device.cmd_trace_rays(&pipe, 32, 1);
//!
//! let mut sim = Simulator::new(SimConfig::test_small());
//! let report = sim.run(&device, &cmd).expect("healthy run");
//! assert_eq!(report.memory.read_u32(fb + 4 * 7), 7);
//! assert!(report.gpu.cycles > 0);
//! ```

pub mod checkpoint;
pub mod config;
pub mod hwproxy;
pub mod report;
pub mod runtime;
pub mod simulator;
pub mod trace_io;
pub mod validate;

pub use checkpoint::config_fingerprint;
pub use config::{MemoryMode, SimConfig};
pub use runtime::{RtRuntime, RuntimeStats};
pub use simulator::{RunReport, SimFailure, Simulator};
pub use validate::{validate_config, ConfigError, ImageSizeMismatch};
pub use vksim_gpu::{FaultPlan, GpuFault, HangClass, SimError, WorkerPanicSpec};
pub use vksim_snapshot::{SnapError, Snapshot};
