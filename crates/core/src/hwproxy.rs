//! Analytic "hardware" cost model for the correlation studies.
//!
//! The paper validates Vulkan-Sim by correlating simulated cycles against
//! an NVIDIA RTX 2080 SUPER (Figs. 11 and 19). We have no RTX 2080 SUPER,
//! so — per the substitution policy in DESIGN.md — the hardware series is
//! produced by an *independent analytic model*: a closed-form cost estimate
//! built only from functional workload characteristics (instruction counts,
//! rays, nodes per ray, working-set size), never from the cycle-level
//! model's internals. Correlating two differently-constructed estimators is
//! what makes the correlation/slope numbers meaningful.
//!
//! The model deliberately resembles how one would first-order a real RT
//! GPU: SIMT issue throughput for shader code, one node per RT-core cycle
//! for traversal with a memory-boundedness multiplier, and a DRAM term for
//! cold footprints.

use crate::runtime::RuntimeStats;

/// Functional workload characteristics (no timing-model inputs).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkloadProfile {
    /// Total warp-instructions the shaders execute.
    pub warp_instructions: u64,
    /// Rays traced.
    pub rays: u64,
    /// Average BVH nodes per ray.
    pub avg_nodes_per_ray: f64,
    /// Scene footprint in bytes (AS size).
    pub footprint_bytes: u64,
    /// Number of SMs on the modelled hardware.
    pub num_sms: u32,
}

impl WorkloadProfile {
    /// Builds a profile from a run's statistics.
    pub fn from_stats(
        warp_instructions: u64,
        runtime: &RuntimeStats,
        footprint_bytes: u64,
        num_sms: u32,
    ) -> Self {
        WorkloadProfile {
            warp_instructions,
            rays: runtime.rays,
            avg_nodes_per_ray: runtime.avg_nodes_per_ray(),
            footprint_bytes,
            num_sms,
        }
    }
}

/// Coefficients of the analytic hardware model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HwProxy {
    /// Cycles per warp-instruction per SM (issue throughput).
    pub cpi: f64,
    /// RT-core cycles per BVH node visited.
    pub node_cycles: f64,
    /// Memory-boundedness multiplier applied to traversal when the
    /// footprint exceeds on-chip capacity.
    pub mem_penalty: f64,
    /// On-chip capacity (bytes) before the penalty engages.
    pub on_chip_bytes: f64,
    /// Fixed launch overhead in cycles.
    pub launch_overhead: f64,
}

impl Default for HwProxy {
    fn default() -> Self {
        HwProxy {
            cpi: 1.4,
            node_cycles: 5.5,
            mem_penalty: 2.2,
            on_chip_bytes: (3 * 1024 * 1024) as f64,
            launch_overhead: 20_000.0,
        }
    }
}

impl HwProxy {
    /// Estimated hardware cycles for a workload.
    pub fn estimate_cycles(&self, p: &WorkloadProfile) -> f64 {
        let sms = p.num_sms.max(1) as f64;
        let shader = p.warp_instructions as f64 * self.cpi / sms;
        let traversal_nodes = p.rays as f64 * p.avg_nodes_per_ray;
        let boundedness = 1.0
            + (self.mem_penalty - 1.0) * (p.footprint_bytes as f64 / self.on_chip_bytes).min(1.0);
        let traversal = traversal_nodes * self.node_cycles * boundedness / sms;
        self.launch_overhead + shader + traversal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(insts: u64, rays: u64, nodes: f64, footprint: u64) -> WorkloadProfile {
        WorkloadProfile {
            warp_instructions: insts,
            rays,
            avg_nodes_per_ray: nodes,
            footprint_bytes: footprint,
            num_sms: 30,
        }
    }

    #[test]
    fn more_work_costs_more() {
        let hw = HwProxy::default();
        let small = hw.estimate_cycles(&profile(1_000, 1_000, 4.0, 10_000));
        let big = hw.estimate_cycles(&profile(100_000, 100_000, 40.0, 10_000_000));
        assert!(big > small * 5.0);
    }

    #[test]
    fn large_footprints_pay_memory_penalty() {
        let hw = HwProxy::default();
        let fits = hw.estimate_cycles(&profile(0, 10_000, 20.0, 1_000));
        let spills = hw.estimate_cycles(&profile(0, 10_000, 20.0, 100 * 1024 * 1024));
        assert!(spills > fits * 1.5);
    }

    #[test]
    fn penalty_saturates() {
        let hw = HwProxy::default();
        let a = hw.estimate_cycles(&profile(0, 10_000, 20.0, 100 * 1024 * 1024));
        let b = hw.estimate_cycles(&profile(0, 10_000, 20.0, 200 * 1024 * 1024));
        assert!((a - b).abs() < 1e-6, "penalty clamps at full boundedness");
    }

    #[test]
    fn more_sms_is_faster() {
        let hw = HwProxy::default();
        let mut p = profile(1_000_000, 10_000, 20.0, 10_000_000);
        let c30 = hw.estimate_cycles(&p);
        p.num_sms = 8;
        let c8 = hw.estimate_cycles(&p);
        assert!(c8 > c30 * 2.0);
    }

    #[test]
    fn profile_from_stats() {
        let rs = RuntimeStats {
            rays: 100,
            nodes_visited: 730,
            ..Default::default()
        };
        let p = WorkloadProfile::from_stats(5_000, &rs, 64_000, 30);
        assert_eq!(p.rays, 100);
        assert!((p.avg_nodes_per_ray - 7.3).abs() < 1e-9);
    }
}
