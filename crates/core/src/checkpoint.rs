//! Checkpoint/restore orchestration: configuration fingerprinting and
//! whole-machine snapshot payloads.
//!
//! A checkpoint captures *everything* the two-phase engine needs to
//! continue bit-identically: every runtime shard's functional state
//! (frame stacks, replay scripts, FCC buffers, allocation cursor,
//! statistics) followed by the complete GPU machine state
//! ([`GpuSim::save_state`]). The container ([`vksim_snapshot::Snapshot`])
//! adds versioning and a checksum; this module adds the *fingerprint* —
//! a hash of everything architecturally relevant — so a snapshot can only
//! be resumed under the configuration, program and scene that produced
//! it. Knobs that do not affect simulated state (thread count, watchdog,
//! cycle bound, fault plan, checkpoint cadence, trace output paths) are
//! deliberately excluded, so a run checkpointed under a watchdog can be
//! resumed without one, and chaos-injected runs can resume cleanly.

use crate::runtime::RtRuntime;
use vksim_fault::FaultPlan;
use vksim_gpu::{GpuConfig, GpuSim};
use vksim_snapshot::{fnv1a, fnv1a_init, Dec, Enc, SnapError};
use vksim_trace::TraceConfig;
use vksim_vulkan::{Device, TraceRaysCommand};

/// Fingerprints a (configuration, scene, command) triple.
///
/// Two runs share a fingerprint exactly when they would simulate the same
/// machine on the same work: the hash covers every architectural knob
/// (SM/cache/DRAM/RT-unit geometry, divergence mode, partitioning,
/// interconnect bounds), the trace *sampling* parameters (enabled,
/// interval, flight depth, event cap — these shape collector state inside
/// the snapshot), the full program text and launch header, and scene
/// shape (BLAS and TLAS instance counts). It excludes anything that only
/// controls how the run is driven or observed: `threads`, `max_cycles`,
/// the watchdog, the fault plan, checkpoint cadence/directory, and trace
/// output file paths.
pub fn config_fingerprint(config: &GpuConfig, device: &Device, cmd: &TraceRaysCommand) -> u64 {
    let trace = config.effective_trace();
    let canonical = GpuConfig {
        max_cycles: 0,
        threads: 1,
        watchdog_cycles: 0,
        fault_plan: FaultPlan::default(),
        checkpoint_every: 0,
        checkpoint_dir: None,
        checkpoint_keep: 0,
        trace: TraceConfig {
            enabled: trace.enabled,
            out: None,
            csv: None,
            summary: None,
            interval: trace.interval,
            flight_depth: trace.flight_depth,
            max_events: trace.max_events,
            // Accounting and RT analytics shape per-SM snapshot state
            // (like `enabled` shapes collector state); the output paths
            // do not.
            accounting: trace.accounting,
            prof: None,
            rt_analytics: trace.rt_analytics,
            rt: None,
            rt_heatmap: None,
        },
        ..config.clone()
    };
    let instances = device.tlas.as_ref().map_or(0, |t| t.instances.len());
    let mut h = fnv1a_init();
    h = fnv1a(h, format!("{canonical:?}").as_bytes());
    h = fnv1a(h, crate::trace_io::dump_command(cmd).as_bytes());
    h = fnv1a(
        h,
        format!("blas={} instances={instances}", device.blases.len()).as_bytes(),
    );
    h
}

/// Builds the snapshot payload for the machine at a clean cycle boundary:
/// the runtime shard count, every shard's functional state, then the
/// complete GPU state. The serial engine passes its single runtime as a
/// one-element slice; the parallel engine passes one shard per SM.
pub(crate) fn machine_payload(gpu: &GpuSim, shards: &[RtRuntime]) -> Vec<u8> {
    let mut e = Enc::new();
    e.seq(shards.len());
    for shard in shards {
        shard.save_state(&mut e);
    }
    gpu.save_state(&mut e);
    e.into_bytes()
}

/// Restores a payload written by [`machine_payload`] into a freshly
/// launched machine with the same shard layout.
///
/// # Errors
///
/// Returns [`SnapError::Malformed`] when the shard count disagrees (the
/// snapshot was taken under a different `VKSIM_THREADS` engine mode) or
/// when any embedded state disagrees with the resuming configuration;
/// [`SnapError::Truncated`] on a short payload.
pub(crate) fn restore_machine(
    gpu: &mut GpuSim,
    shards: &mut [RtRuntime],
    payload: &[u8],
) -> Result<(), SnapError> {
    let mut d = Dec::new(payload);
    let n = d.seq()?;
    if n != shards.len() {
        return Err(SnapError::Malformed(format!(
            "snapshot holds {n} runtime shard(s) but this run uses {} — \
             serial (1 thread) and sharded (>1 thread) checkpoints are not \
             interchangeable",
            shards.len()
        )));
    }
    for shard in shards.iter_mut() {
        shard.restore_state(&mut d)?;
    }
    gpu.restore_state(&mut d)?;
    d.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use vksim_shader::builder::ShaderBuilder;
    use vksim_shader::ir::ShaderKind;
    use vksim_shader::PipelineShaders;

    fn tiny_cmd(width: u32) -> (Device, TraceRaysCommand) {
        let mut device = Device::new();
        let fb = device.alloc_buffer(u64::from(width) * 4);
        device.bind_descriptor(0, fb);
        let mut rg = ShaderBuilder::new(ShaderKind::RayGen);
        let x = rg.launch_id(0);
        let a = rg.var_u32(rg.buffer_base(0) + x.clone() * rg.c_u32(4));
        rg.store(rg.v(a), 0, x);
        let pipe = device
            .create_ray_tracing_pipeline(PipelineShaders::raygen_only(rg.finish()), false)
            .unwrap();
        let cmd = device.cmd_trace_rays(&pipe, width, 1);
        (device, cmd)
    }

    #[test]
    fn fingerprint_ignores_run_harness_knobs() {
        let (device, cmd) = tiny_cmd(32);
        let base = SimConfig::test_small().resolve();
        let mut harness = SimConfig::test_small().resolve();
        harness.threads = 8;
        harness.watchdog_cycles = 50_000;
        harness.max_cycles = 123;
        harness.checkpoint_every = 1000;
        harness.checkpoint_dir = Some("/tmp/ckpts".into());
        harness.checkpoint_keep = 2;
        harness.fault_plan.stall_warp = Some(3);
        harness.trace.prof = Some("/tmp/prof.json".into());
        harness.trace.rt = Some("/tmp/rt.json".into());
        harness.trace.rt_heatmap = Some("/tmp/heatmap.csv".into());
        assert_eq!(
            config_fingerprint(&base, &device, &cmd),
            config_fingerprint(&harness, &device, &cmd),
            "harness knobs must not invalidate snapshots"
        );
    }

    #[test]
    fn fingerprint_tracks_architecture_and_command() {
        let (device, cmd) = tiny_cmd(32);
        let base = SimConfig::test_small().resolve();
        let mut bigger = SimConfig::test_small().resolve();
        bigger.num_sms = 4;
        assert_ne!(
            config_fingerprint(&base, &device, &cmd),
            config_fingerprint(&bigger, &device, &cmd),
            "SM count is architectural"
        );
        let (device2, cmd2) = tiny_cmd(64);
        assert_ne!(
            config_fingerprint(&base, &device, &cmd),
            config_fingerprint(&base, &device2, &cmd2),
            "launch dims are part of the work"
        );
        let mut acct = SimConfig::test_small().resolve();
        acct.trace.accounting = true;
        assert_ne!(
            config_fingerprint(&base, &device, &cmd),
            config_fingerprint(&acct, &device, &cmd),
            "accounting shapes per-SM snapshot state"
        );
        let mut rt = SimConfig::test_small().resolve();
        rt.trace.rt_analytics = true;
        assert_ne!(
            config_fingerprint(&base, &device, &cmd),
            config_fingerprint(&rt, &device, &cmd),
            "rt analytics shapes runtime and per-SM snapshot state"
        );
    }
}
