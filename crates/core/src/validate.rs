//! Image validation (paper Fig. 2: "Only 0.3% of pixels rendered ...
//! differ from an NVIDIA GPU") and configuration validation.
//!
//! Framebuffers are stored as packed RGBA8 words; [`pixel_diff_fraction`]
//! reports the fraction of pixels whose channels differ by more than a
//! tolerance — the number quoted when validating the simulator's functional
//! model against the reference renderer.
//!
//! [`validate_config`] rejects degenerate knob combinations *before* a run
//! starts, so a bad configuration surfaces as a structured error instead
//! of a silent clamp or a mid-run panic.

use vksim_gpu::GpuConfig;
use vksim_isa::SimMemory;
use vksim_mem::DramSched;

/// A configuration knob was rejected by [`validate_config`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigError {
    /// Which knob was rejected and why.
    pub detail: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid configuration: {}", self.detail)
    }
}

impl std::error::Error for ConfigError {}

/// Checks a resolved GPU configuration for degenerate knob values.
///
/// Historically `DramSched::FrFcfs { queue_depth: 0 }` was silently
/// clamped to 1 deep inside the DRAM model; it is now rejected here (the
/// model itself asserts against it as a second line of defense).
///
/// # Errors
///
/// Returns a [`ConfigError`] naming the offending knob.
pub fn validate_config(config: &GpuConfig) -> Result<(), ConfigError> {
    if let DramSched::FrFcfs { queue_depth: 0, .. } = config.mem.dram.sched {
        return Err(ConfigError {
            detail: "DramSched::FrFcfs queue_depth must be >= 1 (0 would \
                     mean no bank queue at all; use FCFS for unscheduled DRAM)"
                .into(),
        });
    }
    Ok(())
}

/// Packs `[0,1]` RGB floats into an RGBA8 word (alpha = 255). This is the
/// quantization the shaders emit; the reference renderer uses it too so
/// comparisons are apples-to-apples.
pub fn pack_rgba8(r: f32, g: f32, b: f32) -> u32 {
    let q = |v: f32| (v.clamp(0.0, 1.0) * 255.0 + 0.5) as u32;
    q(r) | (q(g) << 8) | (q(b) << 16) | 0xFF00_0000
}

/// Unpacks an RGBA8 word into `[r, g, b]` bytes.
pub fn unpack_rgb(px: u32) -> [u8; 3] {
    [
        (px & 0xFF) as u8,
        ((px >> 8) & 0xFF) as u8,
        ((px >> 16) & 0xFF) as u8,
    ]
}

/// Reads a framebuffer of `count` RGBA8 pixels from simulated memory.
pub fn read_framebuffer(mem: &SimMemory, base: u64, count: usize) -> Vec<u32> {
    (0..count)
        .map(|i| mem.read_u32(base + i as u64 * 4))
        .collect()
}

/// The two images passed to [`pixel_diff_fraction`] have different pixel
/// counts, so a per-pixel comparison is meaningless.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ImageSizeMismatch {
    /// Pixel count of the first image.
    pub a: usize,
    /// Pixel count of the second image.
    pub b: usize,
}

impl std::fmt::Display for ImageSizeMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "image size mismatch: {} vs {} pixels", self.a, self.b)
    }
}

impl std::error::Error for ImageSizeMismatch {}

/// Fraction of pixels differing by more than `tolerance` in any channel.
///
/// # Errors
///
/// Returns [`ImageSizeMismatch`] if the images have different sizes.
pub fn pixel_diff_fraction(a: &[u32], b: &[u32], tolerance: u8) -> Result<f64, ImageSizeMismatch> {
    if a.len() != b.len() {
        return Err(ImageSizeMismatch {
            a: a.len(),
            b: b.len(),
        });
    }
    if a.is_empty() {
        return Ok(0.0);
    }
    let differing = a
        .iter()
        .zip(b)
        .filter(|(&pa, &pb)| {
            let ca = unpack_rgb(pa);
            let cb = unpack_rgb(pb);
            ca.iter().zip(&cb).any(|(&x, &y)| x.abs_diff(y) > tolerance)
        })
        .count();
    Ok(differing as f64 / a.len() as f64)
}

/// Writes an image as a binary PPM (P6) byte vector — handy for dumping
/// rendered frames from examples.
pub fn to_ppm(pixels: &[u32], width: u32, height: u32) -> Vec<u8> {
    let mut out = format!("P6\n{width} {height}\n255\n").into_bytes();
    for &px in pixels {
        out.extend_from_slice(&unpack_rgb(px));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fr_fcfs_depth_is_rejected_with_a_structured_error() {
        let mut config = GpuConfig::baseline();
        config.mem.dram.sched = DramSched::FrFcfs {
            queue_depth: 0,
            age_cap: 100,
        };
        let err = validate_config(&config).expect_err("depth 0 must be rejected");
        assert!(err.detail.contains("queue_depth"), "{err}");
        assert!(err.to_string().starts_with("invalid configuration:"));
    }

    #[test]
    fn healthy_configs_validate() {
        assert_eq!(validate_config(&GpuConfig::baseline()), Ok(()));
        assert_eq!(validate_config(&GpuConfig::paper()), Ok(()));
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let px = pack_rgba8(1.0, 0.5, 0.0);
        let [r, g, b] = unpack_rgb(px);
        assert_eq!(r, 255);
        assert!((g as i32 - 128).abs() <= 1);
        assert_eq!(b, 0);
    }

    #[test]
    fn pack_clamps_out_of_range() {
        let [r, g, b] = unpack_rgb(pack_rgba8(2.0, -1.0, 0.25));
        assert_eq!(r, 255);
        assert_eq!(g, 0);
        assert!((b as i32 - 64).abs() <= 1);
    }

    #[test]
    fn identical_images_have_zero_diff() {
        let img = vec![pack_rgba8(0.1, 0.2, 0.3); 100];
        assert_eq!(pixel_diff_fraction(&img, &img, 0), Ok(0.0));
    }

    #[test]
    fn diff_fraction_counts_changed_pixels() {
        let a = vec![pack_rgba8(0.0, 0.0, 0.0); 100];
        let mut b = a.clone();
        for px in b.iter_mut().take(3) {
            *px = pack_rgba8(1.0, 1.0, 1.0);
        }
        assert!((pixel_diff_fraction(&a, &b, 0).unwrap() - 0.03).abs() < 1e-9);
    }

    #[test]
    fn tolerance_forgives_small_differences() {
        let a = vec![pack_rgba8(0.500, 0.5, 0.5); 10];
        let b = vec![pack_rgba8(0.503, 0.5, 0.5); 10];
        assert_eq!(pixel_diff_fraction(&a, &b, 2), Ok(0.0));
        let c = vec![pack_rgba8(0.6, 0.5, 0.5); 10];
        assert_eq!(pixel_diff_fraction(&a, &c, 2), Ok(1.0));
    }

    #[test]
    fn size_mismatch_is_an_error_not_a_panic() {
        let err = pixel_diff_fraction(&[0], &[0, 0], 0).unwrap_err();
        assert_eq!(err, ImageSizeMismatch { a: 1, b: 2 });
        assert!(err.to_string().contains("1 vs 2"));
    }

    #[test]
    fn framebuffer_read_and_ppm() {
        let mut mem = SimMemory::new();
        mem.write_u32(0x100, pack_rgba8(1.0, 0.0, 0.0));
        mem.write_u32(0x104, pack_rgba8(0.0, 1.0, 0.0));
        let fb = read_framebuffer(&mem, 0x100, 2);
        let ppm = to_ppm(&fb, 2, 1);
        assert!(ppm.starts_with(b"P6\n2 1\n255\n"));
        assert_eq!(&ppm[ppm.len() - 6..], &[255, 0, 0, 0, 255, 0]);
    }
}
