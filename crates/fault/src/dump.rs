//! Post-mortem snapshot files.
//!
//! A dump is a flat `name -> u64` JSON object — the same format as the
//! golden-counter snapshots — holding per-warp PCs and statuses, MSHR and
//! in-flight queue depths, RT-unit occupancy and the fault classification.
//! Using the golden format means `vksim_testkit::json::parse_flat_u64_object`
//! reads a dump back without any extra tooling.
//!
//! Dumps land in `$VKSIM_DUMP_DIR` when set, else `<tmp>/vksim-dumps`.
//! Filenames embed the process id and a per-process sequence number so
//! parallel test runs never collide.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use vksim_testkit::json::write_flat_u64_object;

/// Environment variable overriding the dump directory.
pub const DUMP_DIR_ENV: &str = "VKSIM_DUMP_DIR";

static DUMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// The directory dumps are written to (created on demand by [`write_dump`]).
pub fn dump_dir() -> PathBuf {
    match std::env::var_os(DUMP_DIR_ENV) {
        Some(d) if !d.is_empty() => PathBuf::from(d),
        _ => std::env::temp_dir().join("vksim-dumps"),
    }
}

/// Writes `snapshot` as a flat-JSON post-mortem file and returns its path.
///
/// # Errors
///
/// Propagates filesystem errors; callers on a failure path typically treat
/// an unwritable dump as "no dump" rather than masking the original fault.
pub fn write_dump(snapshot: &BTreeMap<String, u64>) -> io::Result<PathBuf> {
    write_dump_in(&dump_dir(), snapshot)
}

/// Writes `snapshot` into `dir`, creating the directory and any missing
/// parents first — `$VKSIM_DUMP_DIR` may point somewhere that does not
/// exist yet (a fresh CI scratch path, a per-run subdirectory).
///
/// # Errors
///
/// Propagates filesystem errors, as [`write_dump`] does.
pub fn write_dump_in(dir: &Path, snapshot: &BTreeMap<String, u64>) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let seq = DUMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let path = dir.join(format!(
        "vksim-postmortem-{}-{}.json",
        std::process::id(),
        seq
    ));
    std::fs::write(&path, write_flat_u64_object(snapshot))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vksim_testkit::json::parse_flat_u64_object;

    #[test]
    fn dump_roundtrips_through_flat_json() {
        let mut snap = BTreeMap::new();
        snap.insert("cycle".to_string(), 123u64);
        snap.insert("sm0.warp0.pc".to_string(), 7u64);
        let path = write_dump(&snap).expect("dump written");
        let text = std::fs::read_to_string(&path).expect("dump readable");
        let parsed = parse_flat_u64_object(&text).expect("dump parses");
        assert_eq!(parsed, snap);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn dump_dir_is_created_with_missing_parents() {
        let base = std::env::temp_dir().join(format!(
            "vksim-dump-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&base);
        let nested = base.join("does/not/exist/yet");
        assert!(!nested.exists());
        let snap = BTreeMap::from([("cycle".to_string(), 9u64)]);
        let path = write_dump_in(&nested, &snap).expect("dump created the directory chain");
        assert!(path.starts_with(&nested));
        let text = std::fs::read_to_string(&path).expect("dump readable");
        assert_eq!(parse_flat_u64_object(&text).unwrap(), snap);
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn sequential_dumps_get_distinct_paths() {
        let snap = BTreeMap::from([("x".to_string(), 1u64)]);
        let a = write_dump(&snap).unwrap();
        let b = write_dump(&snap).unwrap();
        assert_ne!(a, b);
        let _ = std::fs::remove_file(a);
        let _ = std::fs::remove_file(b);
    }
}
