//! Structured simulation faults, injection plans and post-mortem dumps.
//!
//! Long cycle-level runs must finish or fail *diagnosably* (GPGPU-Sim ships
//! a deadlock detector for exactly this reason). This crate is the
//! workspace-wide fault vocabulary:
//!
//! * [`SimError`] — the classified failure every engine layer converges on:
//!   an instruction-level execution fault, the cycle cap, a watchdog-detected
//!   hang ([`HangClass`]) or a contained worker panic.
//! * [`FaultPlan`] — deterministic fault-injection switches threaded through
//!   `GpuConfig` so tests can provoke each failure class on demand.
//! * [`dump`] — the post-mortem snapshot writer: a flat `name -> u64` JSON
//!   object (the same format as the golden-counter files, written and parsed
//!   by `vksim_testkit::json`) saved next to the error so a hung or faulted
//!   run leaves per-warp / per-queue state behind for inspection.
//!
//! The crate deliberately depends only on `vksim-testkit` (for the JSON
//! helpers); every simulator layer can therefore use it without dependency
//! cycles.

use std::fmt;

pub mod dump;

/// Why the forward-progress watchdog declared a hang.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HangClass {
    /// Every schedulable warp is waiting on the memory system and the
    /// memory system still has work queued: progress is possible but
    /// slower than the watchdog window (raise `watchdog_cycles`), or the
    /// backend is re-queueing the same requests forever.
    AllWarpsBlockedOnMemory,
    /// At least one warp context is `Ready` yet no instruction issued for
    /// the whole window: the scheduler can see the warp but never picks
    /// it, i.e. a SIMT-stack or scheduler livelock.
    SimtLivelock,
    /// Warps are waiting on memory or the RT unit but the memory backend
    /// is idle: a completion was lost (scoreboard/MSHR wedge) and no event
    /// can ever wake the waiters.
    ScoreboardWedge,
}

impl fmt::Display for HangClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            HangClass::AllWarpsBlockedOnMemory => "all-warps-blocked-on-memory",
            HangClass::SimtLivelock => "simt-livelock",
            HangClass::ScoreboardWedge => "scoreboard-wedge",
        };
        f.write_str(s)
    }
}

/// A classified, recoverable simulation failure.
///
/// Carried up from the faulting layer to `Simulator::run`; wrappers at each
/// level (`GpuFault`, `SimFailure`) attach the statistics accumulated so far
/// and the post-mortem dump path.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// An instruction faulted during issue (pc out of range after a
    /// truncated upload, RT instruction without a runtime, corrupt BVH...).
    Exec {
        /// SM that issued the faulting instruction.
        sm: usize,
        /// Warp id within the SM.
        warp: u32,
        /// Faulting lane within the warp.
        lane: usize,
        /// Program counter of the faulting instruction.
        pc: u32,
        /// Human-readable cause from the interpreter.
        detail: String,
    },
    /// The run exceeded `GpuConfig::max_cycles` while still making
    /// progress (a runaway shader loop, not an engine hang).
    MaxCycles {
        /// The configured cycle cap.
        limit: u64,
    },
    /// The forward-progress watchdog saw no instruction issue, no warp
    /// retire and no memory completion for a full window.
    Hang {
        /// The diagnosed hang class.
        class: HangClass,
        /// The configured watchdog window in cycles.
        window: u64,
        /// Cycle at which the hang was declared.
        cycle: u64,
    },
    /// A worker panicked inside the cycle engine; the panic was contained
    /// and converted instead of poisoning the round barrier.
    WorkerPanicked {
        /// SM whose tick panicked.
        sm: usize,
        /// The panic payload, if it was a string.
        detail: String,
    },
    /// The configuration was rejected before the run started (degenerate
    /// queue depths, impossible knob combinations). Raised by
    /// `vksim_core::validate::validate_config`, never mid-run.
    InvalidConfig {
        /// Which knob was rejected and why.
        detail: String,
    },
    /// A checkpoint could not be resumed: the snapshot file is corrupt,
    /// from an incompatible format version, or was produced under a
    /// different configuration/workload than the one resuming it.
    /// Restoring anyway would silently compute garbage, so the mismatch
    /// is a structured refusal instead.
    SnapshotMismatch {
        /// What differed (fingerprint, version, shard count, ...).
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Exec {
                sm,
                warp,
                lane,
                pc,
                detail,
            } => write!(f, "SM{sm} warp {warp} lane {lane} pc {pc}: {detail}"),
            SimError::MaxCycles { limit } => {
                write!(f, "simulation exceeded {limit} cycles")
            }
            SimError::Hang {
                class,
                window,
                cycle,
            } => write!(
                f,
                "no forward progress for {window} cycles (cycle {cycle}): {class}"
            ),
            SimError::WorkerPanicked { sm, detail } => {
                write!(f, "worker for SM{sm} panicked: {detail}")
            }
            SimError::InvalidConfig { detail } => {
                write!(f, "invalid configuration: {detail}")
            }
            SimError::SnapshotMismatch { detail } => {
                write!(f, "snapshot cannot be resumed: {detail}")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl SimError {
    /// A small stable code for each error class, recorded in post-mortem
    /// dumps under `fault.kind` so dumps stay flat `name -> u64` maps.
    pub fn kind_code(&self) -> u64 {
        match self {
            SimError::Exec { .. } => 1,
            SimError::MaxCycles { .. } => 2,
            SimError::Hang {
                class: HangClass::AllWarpsBlockedOnMemory,
                ..
            } => 3,
            SimError::Hang {
                class: HangClass::SimtLivelock,
                ..
            } => 4,
            SimError::Hang {
                class: HangClass::ScoreboardWedge,
                ..
            } => 5,
            SimError::WorkerPanicked { .. } => 6,
            SimError::InvalidConfig { .. } => 7,
            SimError::SnapshotMismatch { .. } => 8,
        }
    }
}

/// Extracts a readable message from a caught panic payload (the engines
/// contain worker panics with `catch_unwind` and convert them into
/// [`SimError::WorkerPanicked`]).
pub fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A worker-panic injection point: panic while ticking `sm` at `cycle`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerPanicSpec {
    /// SM whose tick panics.
    pub sm: usize,
    /// Cycle at which the panic fires.
    pub cycle: u64,
}

/// Deterministic fault-injection switches, carried in `GpuConfig`.
///
/// All fields default to "no fault"; a default plan leaves every hot path
/// byte-identical to a build without injection (the golden suite pins this).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Silently drop the Nth (1-based) memory completion the shared memory
    /// system would deliver — models a lost MSHR wakeup.
    pub drop_nth_completion: Option<u64>,
    /// Never schedule this warp id even when `Ready` — crafts a SIMT
    /// livelock the watchdog must classify.
    pub stall_warp: Option<u32>,
    /// Panic inside one SM's tick — exercises panic containment.
    pub worker_panic: Option<WorkerPanicSpec>,
}

impl FaultPlan {
    /// `true` when no fault is injected (the production configuration).
    pub fn is_empty(&self) -> bool {
        *self == FaultPlan::default()
    }
}

/// Re-exported for convenience: the post-mortem writer.
pub use dump::{write_dump, write_dump_in, DUMP_DIR_ENV};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_class_and_location() {
        let e = SimError::Hang {
            class: HangClass::ScoreboardWedge,
            window: 10_000,
            cycle: 123_456,
        };
        let s = e.to_string();
        assert!(s.contains("scoreboard-wedge") && s.contains("10000"));
        let e = SimError::Exec {
            sm: 3,
            warp: 7,
            lane: 1,
            pc: 42,
            detail: "pc 42 out of range".into(),
        };
        assert!(e.to_string().contains("SM3 warp 7 lane 1 pc 42"));
    }

    #[test]
    fn kind_codes_are_distinct() {
        let errs = [
            SimError::Exec {
                sm: 0,
                warp: 0,
                lane: 0,
                pc: 0,
                detail: String::new(),
            },
            SimError::MaxCycles { limit: 1 },
            SimError::Hang {
                class: HangClass::AllWarpsBlockedOnMemory,
                window: 1,
                cycle: 1,
            },
            SimError::Hang {
                class: HangClass::SimtLivelock,
                window: 1,
                cycle: 1,
            },
            SimError::Hang {
                class: HangClass::ScoreboardWedge,
                window: 1,
                cycle: 1,
            },
            SimError::WorkerPanicked {
                sm: 0,
                detail: String::new(),
            },
            SimError::InvalidConfig {
                detail: String::new(),
            },
            SimError::SnapshotMismatch {
                detail: String::new(),
            },
        ];
        let mut codes: Vec<u64> = errs.iter().map(|e| e.kind_code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), errs.len());
    }

    #[test]
    fn default_plan_is_empty() {
        assert!(FaultPlan::default().is_empty());
        let p = FaultPlan {
            stall_warp: Some(0),
            ..FaultPlan::default()
        };
        assert!(!p.is_empty());
    }
}
