//! Scene geometry fed into acceleration-structure builds.

use vksim_math::{Aabb, Vec3};

/// A triangle primitive.
///
/// # Example
///
/// ```
/// use vksim_bvh::geometry::Triangle;
/// use vksim_math::Vec3;
/// let t = Triangle::new(Vec3::ZERO, Vec3::X, Vec3::Y);
/// assert_eq!(t.aabb().max, Vec3::new(1.0, 1.0, 0.0));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Triangle {
    /// First vertex.
    pub v0: Vec3,
    /// Second vertex.
    pub v1: Vec3,
    /// Third vertex.
    pub v2: Vec3,
}

impl Triangle {
    /// Creates a triangle from three vertices.
    pub const fn new(v0: Vec3, v1: Vec3, v2: Vec3) -> Self {
        Triangle { v0, v1, v2 }
    }

    /// Bounding box of the triangle, padded slightly so axis-aligned
    /// triangles do not produce zero-thickness boxes.
    pub fn aabb(&self) -> Aabb {
        Aabb::from_triangle(self.v0, self.v1, self.v2)
    }

    /// Triangle centroid (SAH binning key).
    pub fn centroid(&self) -> Vec3 {
        (self.v0 + self.v1 + self.v2) / 3.0
    }

    /// Unit geometric normal.
    pub fn normal(&self) -> Vec3 {
        vksim_math::intersect::triangle_normal(self.v0, self.v1, self.v2)
    }

    /// Twice the triangle's area (cross-product magnitude).
    pub fn double_area(&self) -> f32 {
        (self.v1 - self.v0).cross(self.v2 - self.v0).length()
    }
}

/// A procedural (custom-geometry) primitive: the AS only knows its bounding
/// box; an *intersection shader* decides whether a ray actually hits it
/// (paper §II-C). `shader_id` selects that shader in the SBT.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProceduralPrimitive {
    /// Conservative bounding box registered with the AS build.
    pub aabb: Aabb,
    /// Intersection-shader index for this primitive's geometry.
    pub shader_id: u32,
}

impl ProceduralPrimitive {
    /// Creates a procedural primitive.
    pub const fn new(aabb: Aabb, shader_id: u32) -> Self {
        ProceduralPrimitive { aabb, shader_id }
    }
}

/// Geometry for one BLAS build: triangles and/or procedural primitives, in
/// the order that defines their primitive indices.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BlasGeometry {
    /// Triangle list (primitive index = position).
    pub triangles: Vec<Triangle>,
    /// Procedural primitive list (primitive index = position).
    pub procedurals: Vec<ProceduralPrimitive>,
}

impl BlasGeometry {
    /// Geometry with only triangles.
    pub fn triangles(triangles: Vec<Triangle>) -> Self {
        BlasGeometry {
            triangles,
            procedurals: Vec::new(),
        }
    }

    /// Geometry with only procedural primitives.
    pub fn procedurals(procedurals: Vec<ProceduralPrimitive>) -> Self {
        BlasGeometry {
            triangles: Vec::new(),
            procedurals,
        }
    }

    /// Total primitive count.
    pub fn primitive_count(&self) -> usize {
        self.triangles.len() + self.procedurals.len()
    }

    /// Bounding box over all primitives.
    pub fn aabb(&self) -> Aabb {
        let mut b = Aabb::EMPTY;
        for t in &self.triangles {
            b = b.union(&t.aabb());
        }
        for p in &self.procedurals {
            b = b.union(&p.aabb);
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_centroid_and_area() {
        let t = Triangle::new(
            Vec3::ZERO,
            Vec3::new(3.0, 0.0, 0.0),
            Vec3::new(0.0, 3.0, 0.0),
        );
        assert_eq!(t.centroid(), Vec3::new(1.0, 1.0, 0.0));
        assert_eq!(t.double_area(), 9.0);
        assert_eq!(t.normal(), Vec3::Z);
    }

    #[test]
    fn blas_geometry_counts_and_bounds() {
        let g = BlasGeometry {
            triangles: vec![Triangle::new(Vec3::ZERO, Vec3::X, Vec3::Y)],
            procedurals: vec![ProceduralPrimitive::new(
                Aabb::new(Vec3::splat(2.0), Vec3::splat(3.0)),
                7,
            )],
        };
        assert_eq!(g.primitive_count(), 2);
        let b = g.aabb();
        assert_eq!(b.min, Vec3::ZERO);
        assert_eq!(b.max, Vec3::splat(3.0));
    }

    #[test]
    fn empty_geometry_has_empty_bounds() {
        assert!(BlasGeometry::default().aabb().is_empty());
    }
}
