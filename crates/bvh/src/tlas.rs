//! Bottom-level and top-level acceleration structures.
//!
//! Vulkan defines the AS in two levels (paper Fig. 6): one [`Blas`] per
//! unique object's geometry, and a single [`Tlas`] that places BLAS
//! *instances* in the scene, each with an object-to-world transform, a
//! user-defined custom index and an SBT offset selecting which closest-hit /
//! intersection shaders run for geometry inside it.

use crate::build::{build_wide_bvh, BuildItem, BuildOptions};
use crate::geometry::BlasGeometry;
use crate::node::{InstanceLeaf, ProceduralLeaf, TriangleLeaf, WideBvh};
use vksim_math::{Aabb, Mat4x3};

/// A bottom-level acceleration structure over one object's geometry.
#[derive(Clone, Debug, PartialEq)]
pub struct Blas {
    /// The wide BVH over this object's primitives.
    pub bvh: WideBvh,
    /// The geometry the BVH was built over (kept for intersection tests).
    pub geometry: BlasGeometry,
    /// Base address of this structure in simulated GPU memory.
    pub base_addr: u64,
}

impl Blas {
    /// Builds a BLAS with default options.
    pub fn build(geometry: BlasGeometry) -> Self {
        Self::build_with(geometry, &BuildOptions::default())
    }

    /// Builds a BLAS with explicit options.
    pub fn build_with(geometry: BlasGeometry, opts: &BuildOptions) -> Self {
        let mut items = Vec::with_capacity(geometry.primitive_count());
        for (i, t) in geometry.triangles.iter().enumerate() {
            items.push(BuildItem::triangle(TriangleLeaf {
                primitive_index: i as u32,
                geometry_index: 0,
                triangle: *t,
            }));
        }
        for (i, p) in geometry.procedurals.iter().enumerate() {
            items.push(BuildItem::procedural(ProceduralLeaf {
                primitive_index: i as u32,
                geometry_index: 1,
                shader_id: p.shader_id,
                aabb: p.aabb,
            }));
        }
        let bvh = build_wide_bvh(items, opts);
        Blas {
            bvh,
            geometry,
            base_addr: 0,
        }
    }

    /// Convenience: BLAS over a triangle list.
    pub fn from_triangles(triangles: &[crate::geometry::Triangle]) -> Self {
        Self::build(BlasGeometry::triangles(triangles.to_vec()))
    }

    /// Object-space bounding box.
    pub fn aabb(&self) -> Aabb {
        self.bvh.aabb
    }

    /// Assigns the base address (done by the device allocator).
    pub fn set_base_addr(&mut self, addr: u64) {
        self.base_addr = addr;
    }

    /// Total footprint in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.bvh.size_bytes
    }
}

/// One BLAS instance placed in the scene by the TLAS.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Instance {
    /// Index of the referenced BLAS in the scene's BLAS table.
    pub blas_index: u32,
    /// Object-to-world transform.
    pub object_to_world: Mat4x3,
    /// World-to-object transform (inverse, stored in the 128 B leaf).
    pub world_to_object: Mat4x3,
    /// User-defined instance custom index (`gl_InstanceCustomIndexEXT`).
    pub custom_index: u32,
    /// SBT record offset: selects closest-hit/intersection shaders for hits
    /// inside this instance (paper §III-B1: "user-defined instance indices
    /// that specify which closest-hit and intersection shaders should be
    /// executed").
    pub sbt_offset: u32,
}

impl Instance {
    /// Creates an instance; the world-to-object matrix is derived by
    /// inversion.
    ///
    /// # Panics
    ///
    /// Panics if `object_to_world` is singular.
    pub fn new(blas_index: u32, object_to_world: Mat4x3) -> Self {
        let world_to_object = object_to_world
            .inverse()
            .expect("instance transform must be invertible");
        Instance {
            blas_index,
            object_to_world,
            world_to_object,
            custom_index: 0,
            sbt_offset: 0,
        }
    }

    /// Sets the user-defined custom index.
    pub fn with_custom_index(mut self, idx: u32) -> Self {
        self.custom_index = idx;
        self
    }

    /// Sets the SBT record offset.
    pub fn with_sbt_offset(mut self, off: u32) -> Self {
        self.sbt_offset = off;
        self
    }
}

/// The top-level acceleration structure.
#[derive(Clone, Debug, PartialEq)]
pub struct Tlas {
    /// Wide BVH whose leaves are [`InstanceLeaf`] nodes.
    pub bvh: WideBvh,
    /// The instance table referenced by instance leaves.
    pub instances: Vec<Instance>,
    /// Base address of this structure in simulated GPU memory.
    pub base_addr: u64,
}

impl Tlas {
    /// Builds a TLAS over instances; `blases[i.blas_index]` provides each
    /// instance's object-space bounds.
    ///
    /// # Panics
    ///
    /// Panics if an instance references a BLAS index out of range.
    pub fn build(instances: Vec<Instance>, blases: &[&Blas]) -> Self {
        Self::build_with(instances, blases, &BuildOptions::default())
    }

    /// Builds a TLAS with explicit build options.
    pub fn build_with(instances: Vec<Instance>, blases: &[&Blas], opts: &BuildOptions) -> Self {
        let items: Vec<BuildItem> = instances
            .iter()
            .enumerate()
            .map(|(i, inst)| {
                let blas = blases
                    .get(inst.blas_index as usize)
                    .unwrap_or_else(|| panic!("instance {i} references missing BLAS"));
                let world_bounds = blas.aabb().transformed(&inst.object_to_world).padded(1e-4);
                BuildItem::instance(
                    world_bounds,
                    InstanceLeaf {
                        instance_index: i as u32,
                    },
                )
            })
            .collect();
        let bvh = build_wide_bvh(items, opts);
        Tlas {
            bvh,
            instances,
            base_addr: 0,
        }
    }

    /// Assigns the base address (done by the device allocator).
    pub fn set_base_addr(&mut self, addr: u64) {
        self.base_addr = addr;
    }

    /// Total footprint in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.bvh.size_bytes
    }

    /// Combined depth statistic for Table IV: TLAS depth plus the deepest
    /// instanced BLAS depth.
    pub fn combined_depth(&self, blases: &[&Blas]) -> u32 {
        let blas_depth = self
            .instances
            .iter()
            .map(|i| blases[i.blas_index as usize].bvh.depth)
            .max()
            .unwrap_or(0);
        self.bvh.depth + blas_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{ProceduralPrimitive, Triangle};
    use vksim_math::Vec3;

    fn quad_blas() -> Blas {
        Blas::from_triangles(&[
            Triangle::new(
                Vec3::new(-1.0, -1.0, 0.0),
                Vec3::new(1.0, -1.0, 0.0),
                Vec3::new(1.0, 1.0, 0.0),
            ),
            Triangle::new(
                Vec3::new(-1.0, -1.0, 0.0),
                Vec3::new(1.0, 1.0, 0.0),
                Vec3::new(-1.0, 1.0, 0.0),
            ),
        ])
    }

    #[test]
    fn blas_build_over_triangles() {
        let b = quad_blas();
        assert_eq!(b.geometry.triangles.len(), 2);
        assert!(!b.bvh.is_empty());
        assert_eq!(b.aabb().min, Vec3::new(-1.0, -1.0, 0.0));
        b.bvh.check_invariants().unwrap();
    }

    #[test]
    fn blas_build_mixed_geometry() {
        let g = BlasGeometry {
            triangles: vec![Triangle::new(Vec3::ZERO, Vec3::X, Vec3::Y)],
            procedurals: vec![ProceduralPrimitive::new(
                Aabb::new(Vec3::splat(2.0), Vec3::splat(3.0)),
                4,
            )],
        };
        let b = Blas::build(g);
        assert_eq!(b.bvh.leaf_count(), 2);
    }

    #[test]
    fn instance_inverse_transform_is_consistent() {
        let m = Mat4x3::translation(Vec3::new(5.0, 0.0, 0.0));
        let inst = Instance::new(0, m);
        let p = Vec3::new(1.0, 2.0, 3.0);
        let roundtrip = inst
            .world_to_object
            .transform_point(inst.object_to_world.transform_point(p));
        assert!((roundtrip - p).length() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "invertible")]
    fn singular_instance_transform_panics() {
        let _ = Instance::new(0, Mat4x3::scale(Vec3::new(0.0, 1.0, 1.0)));
    }

    #[test]
    fn tlas_bounds_cover_transformed_instances() {
        let blas = quad_blas();
        let instances = vec![
            Instance::new(0, Mat4x3::IDENTITY),
            Instance::new(0, Mat4x3::translation(Vec3::new(10.0, 0.0, 0.0))),
        ];
        let tlas = Tlas::build(instances, &[&blas]);
        assert!(tlas.bvh.aabb.max.x >= 11.0 - 1e-3);
        assert!(tlas.bvh.aabb.min.x <= -1.0 + 1e-3);
        tlas.bvh.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "missing BLAS")]
    fn tlas_with_bad_blas_index_panics() {
        let _ = Tlas::build(vec![Instance::new(3, Mat4x3::IDENTITY)], &[]);
    }

    #[test]
    fn combined_depth_adds_levels() {
        let blas = quad_blas();
        let tlas = Tlas::build(vec![Instance::new(0, Mat4x3::IDENTITY)], &[&blas]);
        assert_eq!(
            tlas.combined_depth(&[&blas]),
            tlas.bvh.depth + blas.bvh.depth
        );
    }

    #[test]
    fn builder_style_instance_options() {
        let i = Instance::new(0, Mat4x3::IDENTITY)
            .with_custom_index(9)
            .with_sbt_offset(2);
        assert_eq!(i.custom_index, 9);
        assert_eq!(i.sbt_offset, 2);
    }
}
