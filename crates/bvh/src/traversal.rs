//! Functional acceleration-structure traversal (paper Algorithm 2).
//!
//! A ray starts at the TLAS root, walks internal nodes, transforms into each
//! intersected instance's object space (world-to-object matrix from the
//! 128 B top-level leaf), walks BLAS internal nodes, performs ray-triangle
//! tests at triangle leaves, and *collects* procedural leaves into an
//! intersection buffer for delayed intersection-shader execution (paper
//! §III-A, "delayed intersection and any-hit execution").
//!
//! Every node access and BVH operation is recorded as a [`TraceEvent`]; the
//! RT unit timing model replays this script against the simulated memory
//! hierarchy — the paper's *transactions buffer* (§III-B4: "Every time a ray
//! accesses a node or intersection buffer, we record memory addresses that
//! are accessed with its size and data type to a transactions buffer, which
//! is then sent to the timing model").

use crate::node::{Node, NodeKind};
use crate::tlas::{Blas, Tlas};
use vksim_math::{intersect, Ray, Vec3};

/// One recorded step of a ray's traversal, replayed by the timing model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceEvent {
    /// A node was fetched from memory.
    NodeFetch {
        /// Absolute simulated address.
        addr: u64,
        /// Fetch size in bytes.
        size: u32,
        /// Node type (selects the operation unit that consumes it).
        kind: NodeKind,
    },
    /// Ray-box tests against an internal node's children.
    BoxTests {
        /// Number of child AABBs tested (1..=6).
        count: u8,
    },
    /// One ray-triangle intersection test.
    TriangleTest,
    /// One ray coordinate transformation (TLAS -> BLAS crossing).
    Transform,
    /// A traversal-stack push (short-stack occupancy modelling).
    StackPush,
    /// A traversal-stack pop.
    StackPop,
    /// An intersection-buffer store for a procedural hit.
    IntersectionStore {
        /// Absolute simulated address of the entry.
        addr: u64,
        /// Entry size in bytes.
        size: u32,
    },
}

/// One BVH-node visit recorded for the analytics layer: which node was
/// fetched, how deep in its tree it sits, and whether the visit *hit*
/// (an internal node with at least one intersected child, a pushed
/// instance, a passing triangle test, or a collected procedural leaf).
/// Only recorded when [`TraversalConfig::record_visits`] is on, so the
/// default path allocates nothing for it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NodeVisit {
    /// Node index within its arena.
    pub node: u32,
    /// Tree depth of the node within its own BVH (root = 0).
    pub depth: u32,
    /// `true` for a bottom-level (BLAS) node, `false` for top-level.
    pub blas: bool,
    /// Absolute simulated address of the fetch (for line-reuse analysis).
    pub addr: u64,
    /// The visit contributed to the traversal (see type docs).
    pub hit: bool,
}

/// A committed triangle hit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TriangleIntersection {
    /// Ray parameter of the hit.
    pub t: f32,
    /// Barycentric u.
    pub u: f32,
    /// Barycentric v.
    pub v: f32,
    /// Primitive index within its geometry.
    pub primitive_index: u32,
    /// Geometry index within the BLAS.
    pub geometry_index: u32,
    /// Instance index within the TLAS.
    pub instance_index: u32,
    /// The instance's user custom index.
    pub instance_custom_index: u32,
    /// The instance's SBT record offset (selects the closest-hit shader).
    pub sbt_offset: u32,
    /// Geometric normal in world space (unit length).
    pub world_normal: Vec3,
    /// `true` when the back face was hit.
    pub back_face: bool,
}

/// A procedural-leaf encounter queued for delayed intersection-shader
/// execution (paper Algorithm 2 line 17: "add intersection to
/// intersectionBuffer").
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProceduralHit {
    /// Primitive index within its geometry.
    pub primitive_index: u32,
    /// Intersection-shader index registered for the geometry.
    pub shader_id: u32,
    /// Instance index within the TLAS.
    pub instance_index: u32,
    /// The instance's user custom index.
    pub instance_custom_index: u32,
    /// The instance's SBT record offset.
    pub sbt_offset: u32,
    /// Ray parameter at which the ray enters the primitive's AABB.
    pub t_enter: f32,
}

/// Traversal options.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraversalConfig {
    /// Terminate on the first confirmed triangle hit
    /// (`gl_RayFlagsTerminateOnFirstHitEXT`, used by shadow rays).
    pub terminate_on_first_hit: bool,
    /// Record the [`TraceEvent`] script (disable for functional-only runs).
    pub record_events: bool,
    /// Record a [`NodeVisit`] per fetched node (analytics layer only).
    pub record_visits: bool,
    /// Base address of the per-ray intersection buffer.
    pub intersection_buffer_base: u64,
}

impl Default for TraversalConfig {
    fn default() -> Self {
        TraversalConfig {
            terminate_on_first_hit: false,
            record_events: true,
            record_visits: false,
            intersection_buffer_base: 0x4000_0000,
        }
    }
}

/// Per-entry size of the intersection buffer: shader id + primitive index +
/// instance index + SBT offset + custom index + t (6 x 4 B, padded to 32 B).
pub const INTERSECTION_ENTRY_SIZE: u32 = 32;

/// Result of one ray's traversal.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraversalResult {
    /// Closest committed triangle hit, if any.
    pub closest: Option<TriangleIntersection>,
    /// Procedural hits pending intersection-shader execution.
    pub procedural_hits: Vec<ProceduralHit>,
    /// Recorded traversal script (empty when `record_events` is off).
    pub events: Vec<TraceEvent>,
    /// Per-node visit records (empty when `record_visits` is off).
    pub visits: Vec<NodeVisit>,
    /// Number of BVH nodes fetched.
    pub nodes_visited: u32,
    /// Number of ray-box tests performed.
    pub box_tests: u32,
    /// Number of ray-triangle tests performed.
    pub triangle_tests: u32,
    /// Number of ray transformations performed.
    pub transforms: u32,
    /// Deepest traversal-stack occupancy reached.
    pub max_stack_depth: u32,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Space {
    Tlas,
    Blas { instance: u32 },
}

#[derive(Clone, Copy, Debug)]
struct StackEntry {
    node: u32,
    space: Space,
    t_enter: f32,
    /// Tree depth within the entry's own BVH (each BLAS restarts at 0).
    depth: u32,
}

/// A structural fault detected during traversal (corrupt or mismatched
/// acceleration structure). Traversal validates every pointer it chases and
/// bounds total node visits, so a corrupt child pointer — out of range or
/// forming a cycle — is a classified error, never a panic or an infinite
/// loop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraversalError {
    /// An instance references a BLAS index outside the provided table.
    MissingBlas {
        /// TLAS instance index.
        instance: u32,
        /// The out-of-range BLAS index it references.
        blas_index: u32,
    },
    /// A child pointer escaped its node arena.
    NodeOutOfRange {
        /// The corrupt node index.
        node: u32,
        /// Arena length of the structure being walked.
        len: usize,
    },
    /// A bottom-level leaf kind appeared while walking the TLAS.
    LeafInTlas {
        /// The offending node index.
        node: u32,
    },
    /// Total node visits exceeded the structural budget: the pointer graph
    /// contains a cycle (corrupt child pointer back into an ancestor).
    VisitBudgetExceeded {
        /// The exhausted budget.
        budget: u64,
    },
}

impl std::fmt::Display for TraversalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraversalError::MissingBlas {
                instance,
                blas_index,
            } => write!(
                f,
                "instance {instance} references missing BLAS {blas_index}"
            ),
            TraversalError::NodeOutOfRange { node, len } => {
                write!(
                    f,
                    "corrupt BVH child pointer {node} (arena has {len} nodes)"
                )
            }
            TraversalError::LeafInTlas { node } => {
                write!(f, "bottom-level leaf node {node} reached in TLAS space")
            }
            TraversalError::VisitBudgetExceeded { budget } => {
                write!(
                    f,
                    "BVH traversal exceeded {budget} node visits (pointer cycle)"
                )
            }
        }
    }
}

impl std::error::Error for TraversalError {}

/// Traverses the two-level acceleration structure for one ray.
///
/// `blases[instance.blas_index]` must hold every BLAS referenced by the
/// TLAS. The world-space ray's `t_max` shrinks as triangle hits commit;
/// procedural hits do not shrink it (their surfaces are resolved later by
/// intersection shaders, per the delayed-execution scheme).
///
/// # Errors
///
/// Returns a [`TraversalError`] when the structure is corrupt: a missing
/// BLAS, an out-of-range child pointer, a bottom-level leaf in the TLAS, or
/// a pointer cycle (caught by a node-visit budget).
pub fn traverse(
    tlas: &Tlas,
    blases: &[&Blas],
    ray: &Ray,
    config: &TraversalConfig,
) -> Result<TraversalResult, TraversalError> {
    let mut out = TraversalResult::default();
    if tlas.bvh.is_empty() {
        return Ok(out);
    }

    // A healthy two-level walk visits each TLAS node at most once and each
    // BLAS node at most once per instance entry; corrupt pointers that form
    // a cycle blow well past this bound and are caught instead of spinning.
    let total_nodes = tlas.bvh.node_count()
        + blases.iter().map(|b| b.bvh.node_count()).sum::<usize>() * tlas.instances.len().max(1);
    let visit_budget = (total_nodes as u64).saturating_mul(4).max(4096);

    let mut world_ray = *ray;
    let mut stack: Vec<StackEntry> = Vec::with_capacity(64);
    stack.push(StackEntry {
        node: 0,
        space: Space::Tlas,
        t_enter: world_ray.t_min,
        depth: 0,
    });
    out.max_stack_depth = 1;

    // Cached object-space ray for the instance currently being traversed.
    let mut cached_instance: Option<u32> = None;
    let mut object_ray = world_ray;

    while let Some(entry) = stack.pop() {
        push_event(&mut out, config, TraceEvent::StackPop);
        // A committed hit may have shrunk t_max below this subtree's entry.
        if entry.t_enter > world_ray.t_max {
            continue;
        }

        let (bvh, base, space_ray) = match entry.space {
            Space::Tlas => (&tlas.bvh, tlas.base_addr, {
                object_ray.t_max = world_ray.t_max;
                world_ray
            }),
            Space::Blas { instance } => {
                let inst = &tlas.instances[instance as usize];
                let blas =
                    blases
                        .get(inst.blas_index as usize)
                        .ok_or(TraversalError::MissingBlas {
                            instance,
                            blas_index: inst.blas_index,
                        })?;
                if cached_instance != Some(instance) {
                    // Re-entering a different instance: re-apply the
                    // world-to-object transform (Algorithm 2 line 6).
                    object_ray = inst.world_to_object.transform_ray(&world_ray);
                    cached_instance = Some(instance);
                    out.transforms += 1;
                    push_event(&mut out, config, TraceEvent::Transform);
                }
                object_ray.t_max = world_ray.t_max;
                (&blas.bvh, blas.base_addr, object_ray)
            }
        };

        let node = bvh
            .nodes
            .get(entry.node as usize)
            .ok_or(TraversalError::NodeOutOfRange {
                node: entry.node,
                len: bvh.nodes.len(),
            })?;
        if out.nodes_visited as u64 >= visit_budget {
            return Err(TraversalError::VisitBudgetExceeded {
                budget: visit_budget,
            });
        }
        push_event(
            &mut out,
            config,
            TraceEvent::NodeFetch {
                addr: base + bvh.offset_of(entry.node),
                size: node.kind().size_bytes() as u32,
                kind: node.kind(),
            },
        );
        out.nodes_visited += 1;
        if config.record_visits {
            // Recorded as a miss; the arms below upgrade the entry when the
            // visit contributes (child/triangle/instance/procedural hit).
            out.visits.push(NodeVisit {
                node: entry.node,
                depth: entry.depth,
                blas: entry.space != Space::Tlas,
                addr: base + bvh.offset_of(entry.node),
                hit: false,
            });
        }

        match node {
            Node::Internal(int) => {
                // Test all child AABBs, push hits nearest-first.
                let mut hits: [(u32, f32); crate::BVH_WIDTH] = [(0, 0.0); crate::BVH_WIDTH];
                let mut nhits = 0usize;
                out.box_tests += int.child_count as u32;
                push_event(
                    &mut out,
                    config,
                    TraceEvent::BoxTests {
                        count: int.child_count,
                    },
                );
                for (child, bounds) in int.iter_children() {
                    if let Some(t) =
                        intersect::ray_aabb(&space_ray, bounds, space_ray.t_min, world_ray.t_max)
                    {
                        hits[nhits] = (child, t);
                        nhits += 1;
                    }
                }
                // Sort hit children by descending entry t so the nearest is
                // popped first.
                hits[..nhits]
                    .sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
                for &(child, t) in &hits[..nhits] {
                    stack.push(StackEntry {
                        node: child,
                        space: entry.space,
                        t_enter: t,
                        depth: entry.depth + 1,
                    });
                    push_event(&mut out, config, TraceEvent::StackPush);
                }
                out.max_stack_depth = out.max_stack_depth.max(stack.len() as u32);
                if nhits > 0 {
                    mark_visit_hit(&mut out, config);
                }
            }
            Node::Instance(leaf) => {
                let inst = &tlas.instances[leaf.instance_index as usize];
                let blas =
                    blases
                        .get(inst.blas_index as usize)
                        .ok_or(TraversalError::MissingBlas {
                            instance: leaf.instance_index,
                            blas_index: inst.blas_index,
                        })?;
                if !blas.bvh.is_empty() {
                    stack.push(StackEntry {
                        node: 0,
                        space: Space::Blas {
                            instance: leaf.instance_index,
                        },
                        t_enter: entry.t_enter,
                        depth: 0,
                    });
                    push_event(&mut out, config, TraceEvent::StackPush);
                    out.max_stack_depth = out.max_stack_depth.max(stack.len() as u32);
                    mark_visit_hit(&mut out, config);
                }
            }
            Node::Triangle(leaf) => {
                let Space::Blas { instance } = entry.space else {
                    return Err(TraversalError::LeafInTlas { node: entry.node });
                };
                let mut test_ray = space_ray;
                test_ray.t_max = world_ray.t_max;
                out.triangle_tests += 1;
                push_event(&mut out, config, TraceEvent::TriangleTest);
                let tri = &leaf.triangle;
                if let Some(hit) = intersect::ray_triangle(&test_ray, tri.v0, tri.v1, tri.v2) {
                    mark_visit_hit(&mut out, config);
                    let inst = &tlas.instances[instance as usize];
                    // Commit: shrink t_max (Algorithm 2 line 14, "update
                    // closest-hit geometry").
                    world_ray.t_max = hit.t;
                    let obj_normal = tri.normal();
                    let mut world_normal = inst
                        .object_to_world
                        .transform_vector(obj_normal)
                        .normalized();
                    if hit.back_face {
                        world_normal = -world_normal;
                    }
                    out.closest = Some(TriangleIntersection {
                        t: hit.t,
                        u: hit.u,
                        v: hit.v,
                        primitive_index: leaf.primitive_index,
                        geometry_index: leaf.geometry_index,
                        instance_index: instance,
                        instance_custom_index: inst.custom_index,
                        sbt_offset: inst.sbt_offset,
                        world_normal,
                        back_face: hit.back_face,
                    });
                    if config.terminate_on_first_hit {
                        return Ok(out);
                    }
                }
            }
            Node::Procedural(leaf) => {
                let Space::Blas { instance } = entry.space else {
                    return Err(TraversalError::LeafInTlas { node: entry.node });
                };
                let inst = &tlas.instances[instance as usize];
                let idx = out.procedural_hits.len() as u64;
                out.procedural_hits.push(ProceduralHit {
                    primitive_index: leaf.primitive_index,
                    shader_id: leaf.shader_id,
                    instance_index: instance,
                    instance_custom_index: inst.custom_index,
                    sbt_offset: inst.sbt_offset,
                    t_enter: entry.t_enter,
                });
                push_event(
                    &mut out,
                    config,
                    TraceEvent::IntersectionStore {
                        addr: config.intersection_buffer_base
                            + idx * INTERSECTION_ENTRY_SIZE as u64,
                        size: INTERSECTION_ENTRY_SIZE,
                    },
                );
                mark_visit_hit(&mut out, config);
            }
        }
    }
    Ok(out)
}

#[inline]
fn push_event(out: &mut TraversalResult, config: &TraversalConfig, ev: TraceEvent) {
    if config.record_events {
        out.events.push(ev);
    }
}

/// Upgrades the most recent [`NodeVisit`] to a hit. Every call site runs
/// while the visit pushed for the current node is still last in the vec.
#[inline]
fn mark_visit_hit(out: &mut TraversalResult, config: &TraversalConfig) {
    if config.record_visits {
        if let Some(v) = out.visits.last_mut() {
            v.hit = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{BlasGeometry, ProceduralPrimitive, Triangle};
    use crate::tlas::Instance;
    use vksim_math::{Aabb, Mat4x3};

    fn quad_at_z(z: f32) -> Vec<Triangle> {
        vec![
            Triangle::new(
                Vec3::new(-1.0, -1.0, z),
                Vec3::new(1.0, -1.0, z),
                Vec3::new(1.0, 1.0, z),
            ),
            Triangle::new(
                Vec3::new(-1.0, -1.0, z),
                Vec3::new(1.0, 1.0, z),
                Vec3::new(-1.0, 1.0, z),
            ),
        ]
    }

    fn single_quad_scene() -> (Tlas, Blas) {
        let blas = Blas::from_triangles(&quad_at_z(0.0));
        let tlas = Tlas::build(vec![Instance::new(0, Mat4x3::IDENTITY)], &[&blas]);
        (tlas, blas)
    }

    #[test]
    fn hit_through_quad() {
        let (tlas, blas) = single_quad_scene();
        let ray = Ray::new(Vec3::new(0.2, 0.3, -5.0), Vec3::Z);
        let r = traverse(&tlas, &[&blas], &ray, &TraversalConfig::default()).unwrap();
        let hit = r.closest.expect("hit");
        assert!((hit.t - 5.0).abs() < 1e-4);
        assert!(hit.world_normal.z < 0.0, "normal should face the ray");
        assert!(r.nodes_visited >= 3); // TLAS root + instance leaf + BLAS nodes
        assert!(r.triangle_tests >= 1);
    }

    /// `record_visits` records exactly one entry per fetched node, carrying
    /// the tree depth the node sits at; the default config records none.
    #[test]
    fn record_visits_mirrors_nodes_visited() {
        let (tlas, blas) = single_quad_scene();
        let ray = Ray::new(Vec3::new(0.2, 0.3, -5.0), Vec3::Z);
        let off = traverse(&tlas, &[&blas], &ray, &TraversalConfig::default()).unwrap();
        assert!(off.visits.is_empty(), "visits are off by default");

        let cfg = TraversalConfig {
            record_visits: true,
            ..TraversalConfig::default()
        };
        let r = traverse(&tlas, &[&blas], &ray, &cfg).unwrap();
        assert_eq!(r.visits.len() as u32, r.nodes_visited);
        // The walk starts at the TLAS root (depth 0, not a BLAS node) and,
        // on a hitting ray, every BVH level contributes at least one hit.
        assert!(matches!(
            r.visits.first(),
            Some(NodeVisit {
                depth: 0,
                blas: false,
                hit: true,
                ..
            })
        ));
        assert!(r.visits.iter().any(|v| v.blas && v.hit));
        // Functional output is identical with recording on.
        assert_eq!(r.closest, off.closest);
        assert_eq!(r.nodes_visited, off.nodes_visited);
    }

    #[test]
    fn miss_outside_quad() {
        let (tlas, blas) = single_quad_scene();
        let ray = Ray::new(Vec3::new(5.0, 5.0, -5.0), Vec3::Z);
        let r = traverse(&tlas, &[&blas], &ray, &TraversalConfig::default()).unwrap();
        assert!(r.closest.is_none());
        assert!(r.procedural_hits.is_empty());
    }

    #[test]
    fn closest_of_two_quads_wins() {
        let blas_near = Blas::from_triangles(&quad_at_z(0.0));
        let blas_far = Blas::from_triangles(&quad_at_z(0.0));
        let instances = vec![
            Instance::new(0, Mat4x3::translation(Vec3::new(0.0, 0.0, 2.0))).with_custom_index(1),
            Instance::new(1, Mat4x3::translation(Vec3::new(0.0, 0.0, 8.0))).with_custom_index(2),
        ];
        let tlas = Tlas::build(instances, &[&blas_near, &blas_far]);
        let ray = Ray::new(Vec3::new(0.0, 0.0, -5.0), Vec3::Z);
        let r = traverse(
            &tlas,
            &[&blas_near, &blas_far],
            &ray,
            &TraversalConfig::default(),
        )
        .unwrap();
        let hit = r.closest.expect("hit");
        assert_eq!(hit.instance_custom_index, 1);
        assert!((hit.t - 7.0).abs() < 1e-4);
    }

    #[test]
    fn instance_transform_applies_to_ray() {
        let blas = Blas::from_triangles(&quad_at_z(0.0));
        // Instance moved +10 in x: only rays near x=10 hit it.
        let tlas = Tlas::build(
            vec![Instance::new(
                0,
                Mat4x3::translation(Vec3::new(10.0, 0.0, 0.0)),
            )],
            &[&blas],
        );
        let miss = Ray::new(Vec3::new(0.0, 0.0, -5.0), Vec3::Z);
        let hit = Ray::new(Vec3::new(10.0, 0.0, -5.0), Vec3::Z);
        assert!(
            traverse(&tlas, &[&blas], &miss, &TraversalConfig::default())
                .unwrap()
                .closest
                .is_none()
        );
        let r = traverse(&tlas, &[&blas], &hit, &TraversalConfig::default()).unwrap();
        assert!(r.closest.is_some());
        assert!(r.transforms >= 1, "must transform into BLAS space");
    }

    #[test]
    fn procedural_hits_collected_not_committed() {
        let geo = BlasGeometry::procedurals(vec![ProceduralPrimitive::new(
            Aabb::new(Vec3::new(-1.0, -1.0, -1.0), Vec3::new(1.0, 1.0, 1.0)),
            3,
        )]);
        let blas = Blas::build(geo);
        let tlas = Tlas::build(vec![Instance::new(0, Mat4x3::IDENTITY)], &[&blas]);
        let ray = Ray::new(Vec3::new(0.0, 0.0, -5.0), Vec3::Z);
        let r = traverse(&tlas, &[&blas], &ray, &TraversalConfig::default()).unwrap();
        assert!(
            r.closest.is_none(),
            "procedural AABB entry is not a committed hit"
        );
        assert_eq!(r.procedural_hits.len(), 1);
        assert_eq!(r.procedural_hits[0].shader_id, 3);
        assert!(r
            .events
            .iter()
            .any(|e| matches!(e, TraceEvent::IntersectionStore { .. })));
    }

    #[test]
    fn terminate_on_first_hit_stops_early() {
        let blas = Blas::from_triangles(&quad_at_z(0.0));
        let instances = vec![
            Instance::new(0, Mat4x3::translation(Vec3::new(0.0, 0.0, 2.0))),
            Instance::new(0, Mat4x3::translation(Vec3::new(0.0, 0.0, 8.0))),
        ];
        let tlas = Tlas::build(instances, &[&blas]);
        let ray = Ray::new(Vec3::new(0.0, 0.0, -5.0), Vec3::Z);
        let full = traverse(&tlas, &[&blas], &ray, &TraversalConfig::default()).unwrap();
        let early = traverse(
            &tlas,
            &[&blas],
            &ray,
            &TraversalConfig {
                terminate_on_first_hit: true,
                ..TraversalConfig::default()
            },
        )
        .unwrap();
        assert!(early.closest.is_some());
        assert!(early.nodes_visited <= full.nodes_visited);
    }

    #[test]
    fn events_script_has_fetch_per_visited_node() {
        let (tlas, blas) = single_quad_scene();
        let ray = Ray::new(Vec3::new(0.0, 0.0, -5.0), Vec3::Z);
        let r = traverse(&tlas, &[&blas], &ray, &TraversalConfig::default()).unwrap();
        let fetches = r
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::NodeFetch { .. }))
            .count() as u32;
        assert_eq!(fetches, r.nodes_visited);
        // Instance leaf fetch must be 128 B.
        assert!(r.events.iter().any(|e| matches!(
            e,
            TraceEvent::NodeFetch {
                size: 128,
                kind: NodeKind::InstanceLeaf,
                ..
            }
        )));
    }

    #[test]
    fn record_events_off_produces_empty_script() {
        let (tlas, blas) = single_quad_scene();
        let ray = Ray::new(Vec3::new(0.0, 0.0, -5.0), Vec3::Z);
        let r = traverse(
            &tlas,
            &[&blas],
            &ray,
            &TraversalConfig {
                record_events: false,
                ..TraversalConfig::default()
            },
        )
        .unwrap();
        assert!(r.events.is_empty());
        assert!(r.closest.is_some());
    }

    #[test]
    fn node_addresses_respect_base() {
        let blas0 = Blas::from_triangles(&quad_at_z(0.0));
        let mut blas = blas0;
        blas.set_base_addr(0x9000_0000);
        let mut tlas = Tlas::build(vec![Instance::new(0, Mat4x3::IDENTITY)], &[&blas]);
        tlas.set_base_addr(0x8000_0000);
        let ray = Ray::new(Vec3::new(0.0, 0.0, -5.0), Vec3::Z);
        let r = traverse(&tlas, &[&blas], &ray, &TraversalConfig::default()).unwrap();
        let mut saw_tlas = false;
        let mut saw_blas = false;
        for e in &r.events {
            if let TraceEvent::NodeFetch { addr, .. } = e {
                if *addr >= 0x9000_0000 {
                    saw_blas = true;
                } else if *addr >= 0x8000_0000 {
                    saw_tlas = true;
                }
            }
        }
        assert!(saw_tlas && saw_blas);
    }

    #[test]
    fn empty_tlas_returns_default() {
        let tlas = Tlas::build(vec![], &[]);
        let ray = Ray::new(Vec3::ZERO, Vec3::Z);
        let r = traverse(&tlas, &[], &ray, &TraversalConfig::default()).unwrap();
        assert_eq!(r, TraversalResult::default());
    }

    #[test]
    fn corrupt_child_pointer_is_a_classified_error() {
        let (tlas, mut blas) = single_quad_scene();
        // Point an internal node's first child outside the arena.
        let arena_len = blas.bvh.nodes.len();
        for node in &mut blas.bvh.nodes {
            if let Node::Internal(int) = node {
                int.children[0] = 0xDEAD_BEEF;
                break;
            }
        }
        let ray = Ray::new(Vec3::new(0.2, 0.3, -5.0), Vec3::Z);
        let err = traverse(&tlas, &[&blas], &ray, &TraversalConfig::default()).unwrap_err();
        assert_eq!(
            err,
            TraversalError::NodeOutOfRange {
                node: 0xDEAD_BEEF,
                len: arena_len,
            }
        );
    }

    #[test]
    fn child_pointer_cycle_hits_visit_budget() {
        let (tlas, mut blas) = single_quad_scene();
        // Point an internal node's first child back at the root: an
        // in-range cycle that only the visit budget can catch.
        for node in &mut blas.bvh.nodes {
            if let Node::Internal(int) = node {
                int.children[0] = 0;
                break;
            }
        }
        let ray = Ray::new(Vec3::new(0.2, 0.3, -5.0), Vec3::Z);
        let err = traverse(&tlas, &[&blas], &ray, &TraversalConfig::default()).unwrap_err();
        assert!(
            matches!(err, TraversalError::VisitBudgetExceeded { .. }),
            "{err:?}"
        );
    }

    #[test]
    fn missing_blas_is_a_classified_error() {
        let (tlas, blas) = single_quad_scene();
        let _ = blas;
        let ray = Ray::new(Vec3::new(0.2, 0.3, -5.0), Vec3::Z);
        let err = traverse(&tlas, &[], &ray, &TraversalConfig::default()).unwrap_err();
        assert!(
            matches!(err, TraversalError::MissingBlas { blas_index: 0, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn big_scene_traversal_is_logarithmic() {
        // 1024 quads in a row; a single ray should visit far fewer nodes
        // than the total.
        let mut tris = Vec::new();
        for i in 0..1024 {
            let x = i as f32 * 3.0;
            tris.push(Triangle::new(
                Vec3::new(x - 1.0, -1.0, 0.0),
                Vec3::new(x + 1.0, -1.0, 0.0),
                Vec3::new(x, 1.0, 0.0),
            ));
        }
        let blas = Blas::from_triangles(&tris);
        let tlas = Tlas::build(vec![Instance::new(0, Mat4x3::IDENTITY)], &[&blas]);
        let ray = Ray::new(Vec3::new(300.0, 0.0, -5.0), Vec3::Z);
        let r = traverse(&tlas, &[&blas], &ray, &TraversalConfig::default()).unwrap();
        assert!(r.closest.is_some());
        assert!(
            r.nodes_visited < 100,
            "visited {} of {} nodes",
            r.nodes_visited,
            blas.bvh.node_count()
        );
    }
}
