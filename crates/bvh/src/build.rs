//! BVH construction: binned-SAH binary build collapsed into a 6-wide BVH.
//!
//! Mesa's acceleration-structure build produces the 6-wide tree the paper's
//! traversal consumes. We reproduce the standard pipeline: a binary BVH
//! built top-down with a binned surface-area heuristic, then a collapse pass
//! that greedily merges binary nodes into nodes of up to [`BVH_WIDTH`]
//! children (the child with the largest surface area is expanded first).

use crate::node::{InstanceLeaf, InternalNode, Node, ProceduralLeaf, TriangleLeaf, WideBvh};
use crate::BVH_WIDTH;
use vksim_math::Aabb;

/// Build-time tuning knobs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BuildOptions {
    /// Number of SAH bins per axis.
    pub sah_bins: usize,
    /// Below this many primitives a median split replaces SAH binning.
    pub min_sah_prims: usize,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            sah_bins: 16,
            min_sah_prims: 4,
        }
    }
}

/// One input item to a build: a bounding box plus the leaf node that will
/// represent it.
#[derive(Clone, Debug)]
pub struct BuildItem {
    /// Item bounds.
    pub aabb: Aabb,
    /// Leaf payload (already fully formed).
    pub leaf: Node,
}

impl BuildItem {
    /// Convenience constructor for a triangle leaf item.
    pub fn triangle(leaf: TriangleLeaf) -> Self {
        BuildItem {
            aabb: leaf.triangle.aabb(),
            leaf: Node::Triangle(leaf),
        }
    }

    /// Convenience constructor for a procedural leaf item.
    pub fn procedural(leaf: ProceduralLeaf) -> Self {
        BuildItem {
            aabb: leaf.aabb,
            leaf: Node::Procedural(leaf),
        }
    }

    /// Convenience constructor for an instance leaf item.
    pub fn instance(aabb: Aabb, leaf: InstanceLeaf) -> Self {
        BuildItem {
            aabb,
            leaf: Node::Instance(leaf),
        }
    }
}

// Temporary binary tree node used during construction.
enum BinaryNode {
    Leaf {
        item: usize,
    },
    Internal {
        aabb: Aabb,
        left: Box<BinaryNode>,
        right: Box<BinaryNode>,
    },
}

impl BinaryNode {
    fn aabb(&self, items: &[BuildItem]) -> Aabb {
        match self {
            BinaryNode::Leaf { item } => items[*item].aabb,
            BinaryNode::Internal { aabb, .. } => *aabb,
        }
    }
}

/// Builds a linearized wide BVH from leaf items.
///
/// Returns an empty [`WideBvh`] for empty input. A single item produces a
/// root internal node with one leaf child, so traversal always starts at an
/// internal node (matching Algorithm 2's entry condition).
pub fn build_wide_bvh(items: Vec<BuildItem>, opts: &BuildOptions) -> WideBvh {
    if items.is_empty() {
        return WideBvh::default();
    }
    let indices: Vec<usize> = (0..items.len()).collect();
    let binary = build_binary(&items, indices, opts);

    // Collapse binary tree into a wide tree (temporary recursive form).
    struct WideTmp {
        bounds: Vec<Aabb>,
        children: Vec<WideChild>,
    }
    enum WideChild {
        Leaf(usize),
        Inner(Box<WideTmp>),
    }

    fn collapse(node: BinaryNode, items: &[BuildItem]) -> WideChild {
        match node {
            BinaryNode::Leaf { item } => WideChild::Leaf(item),
            BinaryNode::Internal { left, right, .. } => {
                // Greedily expand the internal child with the largest surface
                // area until we have up to BVH_WIDTH children.
                let mut pool: Vec<BinaryNode> = vec![*left, *right];
                loop {
                    if pool.len() >= BVH_WIDTH {
                        break;
                    }
                    // Pick the internal node with the largest area to expand.
                    let mut best: Option<(usize, f32)> = None;
                    for (i, n) in pool.iter().enumerate() {
                        if let BinaryNode::Internal { aabb, .. } = n {
                            let area = aabb.surface_area();
                            if best.is_none_or(|(_, a)| area > a) {
                                best = Some((i, area));
                            }
                        }
                    }
                    let Some((idx, _)) = best else { break };
                    let BinaryNode::Internal { left, right, .. } = pool.swap_remove(idx) else {
                        unreachable!()
                    };
                    pool.push(*left);
                    pool.push(*right);
                }
                let mut tmp = WideTmp {
                    bounds: Vec::new(),
                    children: Vec::new(),
                };
                for n in pool {
                    tmp.bounds.push(n.aabb(items));
                    tmp.children.push(collapse(n, items));
                }
                WideChild::Inner(Box::new(tmp))
            }
        }
    }

    let root = match collapse(binary, &items) {
        WideChild::Inner(t) => *t,
        WideChild::Leaf(item) => {
            // Single primitive: wrap in a one-child internal root.
            WideTmp {
                bounds: vec![items[item].aabb],
                children: vec![WideChild::Leaf(item)],
            }
        }
    };

    // Linearize breadth-first so that siblings are consecutive in memory and
    // internal nodes need only a first-child pointer (paper §III-B1).
    let mut leaf_payloads: Vec<Option<Node>> = items.into_iter().map(|i| Some(i.leaf)).collect();
    let mut nodes: Vec<Node> = Vec::new();
    let mut queue: Vec<(WideTmp, usize)> = Vec::new(); // (subtree, arena slot)

    let root_aabb = root.bounds.iter().fold(Aabb::EMPTY, |a, b| a.union(b));
    nodes.push(placeholder_internal());
    queue.push((root, 0));

    while let Some((tmp, slot)) = queue.pop() {
        let mut internal = InternalNode {
            child_bounds: [Aabb::EMPTY; BVH_WIDTH],
            children: [u32::MAX; BVH_WIDTH],
            child_count: tmp.children.len() as u8,
        };
        // Allocate the children block contiguously at the end of the arena.
        let first_child = nodes.len() as u32;
        let mut pending: Vec<(WideTmp, usize)> = Vec::new();
        for (i, (child, bounds)) in tmp.children.into_iter().zip(tmp.bounds).enumerate() {
            internal.child_bounds[i] = bounds;
            let idx = first_child + i as u32;
            internal.children[i] = idx;
            match child {
                WideChild::Leaf(item) => {
                    nodes.push(leaf_payloads[item].take().expect("leaf used once"));
                }
                WideChild::Inner(sub) => {
                    nodes.push(placeholder_internal());
                    pending.push((*sub, idx as usize));
                }
            }
        }
        nodes[slot] = Node::Internal(internal);
        queue.extend(pending);
    }

    // Assign byte offsets in arena order (siblings were allocated
    // consecutively, so consecutive indices means consecutive bytes).
    let mut offsets = Vec::with_capacity(nodes.len());
    let mut cursor = 0u64;
    for n in &nodes {
        offsets.push(cursor);
        cursor += n.kind().size_bytes();
    }

    let depth = compute_depth(&nodes, 0);
    WideBvh {
        nodes,
        offsets,
        size_bytes: cursor,
        depth,
        aabb: root_aabb,
    }
}

fn placeholder_internal() -> Node {
    Node::Internal(InternalNode {
        child_bounds: [Aabb::EMPTY; BVH_WIDTH],
        children: [u32::MAX; BVH_WIDTH],
        child_count: 0,
    })
}

fn compute_depth(nodes: &[Node], idx: u32) -> u32 {
    match &nodes[idx as usize] {
        Node::Internal(int) => {
            1 + int
                .iter_children()
                .map(|(c, _)| compute_depth(nodes, c))
                .max()
                .unwrap_or(0)
        }
        _ => 1,
    }
}

fn build_binary(items: &[BuildItem], mut indices: Vec<usize>, opts: &BuildOptions) -> BinaryNode {
    if indices.len() == 1 {
        return BinaryNode::Leaf { item: indices[0] };
    }
    let bounds = indices
        .iter()
        .fold(Aabb::EMPTY, |a, &i| a.union(&items[i].aabb));
    let centroid_bounds = indices
        .iter()
        .fold(Aabb::EMPTY, |a, &i| a.union_point(items[i].aabb.center()));
    let axis = centroid_bounds.longest_axis();
    let extent = centroid_bounds.extent()[axis];

    let split = if extent <= 0.0 {
        // All centroids coincide: split in half by index.
        indices.len() / 2
    } else if indices.len() < opts.min_sah_prims {
        median_split(items, &mut indices, axis)
    } else {
        sah_split(items, &mut indices, axis, &centroid_bounds, opts)
            .unwrap_or_else(|| median_split(items, &mut indices, axis))
    };
    let split = split.clamp(1, indices.len() - 1);
    let right = indices.split_off(split);
    let left = indices;
    let l = build_binary(items, left, opts);
    let r = build_binary(items, right, opts);
    let _ = bounds;
    let aabb = l.aabb(items).union(&r.aabb(items));
    BinaryNode::Internal {
        aabb,
        left: Box::new(l),
        right: Box::new(r),
    }
}

fn median_split(items: &[BuildItem], indices: &mut [usize], axis: usize) -> usize {
    indices.sort_by(|&a, &b| {
        items[a].aabb.center()[axis]
            .partial_cmp(&items[b].aabb.center()[axis])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    indices.len() / 2
}

/// Binned SAH split. Sorts `indices` so that `[0, split)` is the left child;
/// returns `None` when no bin boundary produces a non-degenerate split.
fn sah_split(
    items: &[BuildItem],
    indices: &mut [usize],
    axis: usize,
    centroid_bounds: &Aabb,
    opts: &BuildOptions,
) -> Option<usize> {
    let nbins = opts.sah_bins.max(2);
    let lo = centroid_bounds.min[axis];
    let extent = centroid_bounds.extent()[axis];
    let bin_of = |idx: usize| -> usize {
        let c = items[idx].aabb.center()[axis];
        (((c - lo) / extent * nbins as f32) as usize).min(nbins - 1)
    };

    let mut bin_bounds = vec![Aabb::EMPTY; nbins];
    let mut bin_counts = vec![0usize; nbins];
    for &i in indices.iter() {
        let b = bin_of(i);
        bin_bounds[b] = bin_bounds[b].union(&items[i].aabb);
        bin_counts[b] += 1;
    }

    // Sweep to find the cheapest boundary: cost = A_l*n_l + A_r*n_r.
    let mut right_acc = vec![(Aabb::EMPTY, 0usize); nbins];
    let mut acc = Aabb::EMPTY;
    let mut cnt = 0;
    for b in (1..nbins).rev() {
        acc = acc.union(&bin_bounds[b]);
        cnt += bin_counts[b];
        right_acc[b] = (acc, cnt);
    }
    let mut best: Option<(usize, f32)> = None;
    let mut left_box = Aabb::EMPTY;
    let mut left_cnt = 0usize;
    for b in 1..nbins {
        left_box = left_box.union(&bin_bounds[b - 1]);
        left_cnt += bin_counts[b - 1];
        let (rbox, rcnt) = right_acc[b];
        if left_cnt == 0 || rcnt == 0 {
            continue;
        }
        let cost = left_box.surface_area() * left_cnt as f32 + rbox.surface_area() * rcnt as f32;
        if best.is_none_or(|(_, c)| cost < c) {
            best = Some((b, cost));
        }
    }
    let (boundary, _) = best?;
    // Partition indices by bin.
    indices.sort_by_key(|&i| bin_of(i));
    let split = indices.iter().position(|&i| bin_of(i) >= boundary)?;
    if split == 0 || split == indices.len() {
        return None;
    }
    Some(split)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Triangle;
    use vksim_math::Vec3;

    fn tri_grid(n: usize) -> Vec<BuildItem> {
        let mut v = Vec::new();
        for i in 0..n {
            let x = i as f32 * 2.0;
            let t = Triangle::new(
                Vec3::new(x, 0.0, 0.0),
                Vec3::new(x + 1.0, 0.0, 0.0),
                Vec3::new(x, 1.0, 0.0),
            );
            v.push(BuildItem::triangle(TriangleLeaf {
                primitive_index: i as u32,
                geometry_index: 0,
                triangle: t,
            }));
        }
        v
    }

    #[test]
    fn empty_input_builds_empty_bvh() {
        let b = build_wide_bvh(Vec::new(), &BuildOptions::default());
        assert!(b.is_empty());
    }

    #[test]
    fn single_item_gets_internal_root() {
        let b = build_wide_bvh(tri_grid(1), &BuildOptions::default());
        assert_eq!(b.node_count(), 2);
        assert!(matches!(b.nodes[0], Node::Internal(_)));
        assert!(matches!(b.nodes[1], Node::Triangle(_)));
        assert_eq!(b.depth, 2);
        b.check_invariants().unwrap();
    }

    #[test]
    fn all_leaves_present_exactly_once() {
        for n in [2usize, 3, 6, 7, 13, 64, 257] {
            let b = build_wide_bvh(tri_grid(n), &BuildOptions::default());
            let mut seen = vec![false; n];
            for node in &b.nodes {
                if let Node::Triangle(t) = node {
                    assert!(!seen[t.primitive_index as usize], "duplicate leaf");
                    seen[t.primitive_index as usize] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "missing leaf for n={n}");
            b.check_invariants().unwrap();
        }
    }

    #[test]
    fn children_bounded_by_width() {
        let b = build_wide_bvh(tri_grid(100), &BuildOptions::default());
        for node in &b.nodes {
            if let Node::Internal(i) = node {
                assert!(i.child_count as usize <= BVH_WIDTH);
                assert!(i.child_count >= 1);
            }
        }
    }

    #[test]
    fn child_bounds_contain_descendants() {
        let b = build_wide_bvh(tri_grid(50), &BuildOptions::default());
        fn check(b: &WideBvh, idx: u32) -> Aabb {
            match &b.nodes[idx as usize] {
                Node::Internal(int) => {
                    let mut total = Aabb::EMPTY;
                    for (c, declared) in int.iter_children() {
                        let actual = check(b, c);
                        // Declared child bounds must contain actual bounds.
                        assert!(declared.min.x <= actual.min.x + 1e-5);
                        assert!(declared.max.x >= actual.max.x - 1e-5);
                        total = total.union(declared);
                    }
                    total
                }
                Node::Triangle(t) => t.triangle.aabb(),
                Node::Procedural(p) => p.aabb,
                Node::Instance(_) => Aabb::EMPTY,
            }
        }
        check(&b, 0);
    }

    #[test]
    fn depth_is_logarithmic_for_uniform_input() {
        let b = build_wide_bvh(tri_grid(1000), &BuildOptions::default());
        // 6-wide tree over 1000 leaves: depth should be well under 20.
        assert!(b.depth >= 4, "depth {} too shallow", b.depth);
        assert!(b.depth <= 20, "depth {} too deep", b.depth);
    }

    #[test]
    fn offsets_are_64_byte_aligned_for_primitives() {
        let b = build_wide_bvh(tri_grid(10), &BuildOptions::default());
        for (node, &off) in b.nodes.iter().zip(&b.offsets) {
            if node.kind() != crate::node::NodeKind::InstanceLeaf {
                assert_eq!(off % 64, 0);
            }
        }
        assert_eq!(b.size_bytes % 64, 0);
    }

    #[test]
    fn identical_centroids_still_split() {
        // All triangles identical: degenerate centroid extent.
        let items: Vec<BuildItem> = (0..8)
            .map(|i| {
                BuildItem::triangle(TriangleLeaf {
                    primitive_index: i,
                    geometry_index: 0,
                    triangle: Triangle::new(Vec3::ZERO, Vec3::X, Vec3::Y),
                })
            })
            .collect();
        let b = build_wide_bvh(items, &BuildOptions::default());
        assert_eq!(
            b.nodes
                .iter()
                .filter(|n| matches!(n, Node::Triangle(_)))
                .count(),
            8
        );
        b.check_invariants().unwrap();
    }
}
