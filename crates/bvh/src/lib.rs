//! Two-level 6-wide bounding volume hierarchy (acceleration structure).
//!
//! This crate reproduces the acceleration structure Vulkan-Sim adopts from
//! Mesa (paper §III-B1): a 6-wide BVH split into one *bottom-level* AS
//! ([`Blas`]) per unique object and a single *top-level* AS ([`Tlas`]) that
//! positions BLAS instances in the scene with transformation matrices.
//!
//! Node memory layout follows Fig. 7 of the paper:
//!
//! * internal nodes are 64 bytes, hold the AABBs of up to six children and a
//!   pointer to the first child (children are stored consecutively);
//! * top-level leaf nodes are 128 bytes, holding the BLAS root pointer, the
//!   object-to-world and world-to-object matrices and user instance indices;
//! * triangle leaves are 64 bytes (leaf descriptor, primitive index,
//!   vertices); procedural leaves hold a descriptor and primitive index.
//!
//! [`traversal::traverse`] implements Algorithm 2 of the paper and records a
//! byte-accurate [`TraceEvent`] script per ray — every node fetch with its
//! address, size and type — which the RT-unit timing model replays against
//! the simulated memory hierarchy, exactly like the paper's *transactions
//! buffer*.
//!
//! # Example
//!
//! ```
//! use vksim_bvh::{Blas, Tlas, Instance, geometry::Triangle, traversal};
//! use vksim_math::{Mat4x3, Ray, Vec3};
//!
//! let tri = Triangle::new(
//!     Vec3::new(-1.0, -1.0, 0.0),
//!     Vec3::new(1.0, -1.0, 0.0),
//!     Vec3::new(0.0, 1.0, 0.0),
//! );
//! let blas = Blas::from_triangles(&[tri]);
//! let tlas = Tlas::build(vec![Instance::new(0, Mat4x3::IDENTITY)], &[&blas]);
//! let ray = Ray::new(Vec3::new(0.0, 0.0, -5.0), Vec3::Z);
//! let result = traversal::traverse(&tlas, &[&blas], &ray, &traversal::TraversalConfig::default())
//!     .expect("structure is well-formed");
//! assert!(result.closest.is_some());
//! ```

pub mod build;
pub mod geometry;
pub mod node;
pub mod tlas;
pub mod traversal;

pub use build::BuildOptions;
pub use node::{NodeKind, WideBvh, INSTANCE_LEAF_SIZE, INTERNAL_NODE_SIZE, PRIMITIVE_LEAF_SIZE};
pub use tlas::{Blas, Instance, Tlas};
pub use traversal::{
    NodeVisit, ProceduralHit, TraceEvent, TraversalConfig, TraversalError, TraversalResult,
    TriangleIntersection,
};

/// Maximum branching factor of the wide BVH (Mesa's layout, paper §III-B1).
pub const BVH_WIDTH: usize = 6;
