//! Wide BVH node representation and memory layout.
//!
//! The *logical* node contents live in Rust structs; the *physical* layout
//! (node sizes and addresses) matches Fig. 7 of the paper so that traversal
//! generates byte-accurate memory transactions:
//!
//! | node                   | size  | contents                                            |
//! |------------------------|-------|-----------------------------------------------------|
//! | internal (TLAS & BLAS) | 64 B  | first-child pointer + per-child AABBs               |
//! | top-level (instance)   | 128 B | BLAS root pointer, O2W & W2O matrices, user indices |
//! | triangle leaf          | 64 B  | leaf descriptor, primitive index, vertices          |
//! | procedural leaf        | 64 B  | leaf descriptor, primitive index                    |
//!
//! Children of an internal node are stored consecutively, so the node only
//! needs the first child's pointer (paper §III-B1).

use crate::geometry::Triangle;
use crate::BVH_WIDTH;
use vksim_math::Aabb;

/// Byte size of an internal node (Fig. 7a).
pub const INTERNAL_NODE_SIZE: u64 = 64;
/// Byte size of a top-level (instance) leaf node (Fig. 7b).
pub const INSTANCE_LEAF_SIZE: u64 = 128;
/// Byte size of a triangle or procedural leaf (Fig. 7c).
pub const PRIMITIVE_LEAF_SIZE: u64 = 64;

/// Discriminates node types; physically part of the leaf descriptor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// Internal 6-wide node.
    Internal,
    /// Bottom-level triangle leaf.
    TriangleLeaf,
    /// Bottom-level procedural leaf.
    ProceduralLeaf,
    /// Top-level leaf referencing a BLAS instance.
    InstanceLeaf,
}

impl NodeKind {
    /// Physical size in bytes of a node of this kind.
    pub fn size_bytes(self) -> u64 {
        match self {
            NodeKind::Internal | NodeKind::TriangleLeaf | NodeKind::ProceduralLeaf => {
                INTERNAL_NODE_SIZE
            }
            NodeKind::InstanceLeaf => INSTANCE_LEAF_SIZE,
        }
    }
}

/// An internal node: up to [`BVH_WIDTH`] children with their bounding boxes.
#[derive(Clone, Debug, PartialEq)]
pub struct InternalNode {
    /// Bounding box of each child (unused slots are `Aabb::EMPTY`).
    pub child_bounds: [Aabb; BVH_WIDTH],
    /// Arena index of each child (unused slots are `u32::MAX`).
    pub children: [u32; BVH_WIDTH],
    /// Number of valid children.
    pub child_count: u8,
}

impl InternalNode {
    /// Iterates the valid `(child_index, child_bounds)` pairs.
    pub fn iter_children(&self) -> impl Iterator<Item = (u32, &Aabb)> + '_ {
        self.children[..self.child_count as usize]
            .iter()
            .copied()
            .zip(self.child_bounds[..self.child_count as usize].iter())
    }
}

/// A triangle leaf: one primitive with its vertices inlined (Fig. 7c).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TriangleLeaf {
    /// Index of the primitive within its geometry.
    pub primitive_index: u32,
    /// Geometry index within the BLAS build (Vulkan geometry order).
    pub geometry_index: u32,
    /// The triangle vertices.
    pub triangle: Triangle,
}

/// A procedural leaf: descriptor plus primitive index; the actual surface is
/// defined by an intersection shader.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProceduralLeaf {
    /// Index of the primitive within its geometry.
    pub primitive_index: u32,
    /// Geometry index within the BLAS build.
    pub geometry_index: u32,
    /// Intersection-shader index registered for this geometry.
    pub shader_id: u32,
    /// The conservative bounds registered at build time.
    pub aabb: Aabb,
}

/// A top-level leaf referencing one BLAS instance (Fig. 7b). The transforms
/// and user indices live in [`crate::Instance`]; this node stores the index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InstanceLeaf {
    /// Index into the TLAS instance table.
    pub instance_index: u32,
}

/// One node of a wide BVH.
#[derive(Clone, Debug, PartialEq)]
pub enum Node {
    /// Internal node.
    Internal(InternalNode),
    /// Triangle leaf.
    Triangle(TriangleLeaf),
    /// Procedural leaf.
    Procedural(ProceduralLeaf),
    /// Instance (top-level) leaf.
    Instance(InstanceLeaf),
}

impl Node {
    /// The node's kind.
    pub fn kind(&self) -> NodeKind {
        match self {
            Node::Internal(_) => NodeKind::Internal,
            Node::Triangle(_) => NodeKind::TriangleLeaf,
            Node::Procedural(_) => NodeKind::ProceduralLeaf,
            Node::Instance(_) => NodeKind::InstanceLeaf,
        }
    }
}

/// A linearized wide BVH: nodes in sibling-consecutive order with byte
/// offsets assigned, ready for address-accurate traversal.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WideBvh {
    /// Node arena; index 0 is the root (when non-empty).
    pub nodes: Vec<Node>,
    /// Byte offset of each node from the structure's base address.
    pub offsets: Vec<u64>,
    /// Total footprint in bytes.
    pub size_bytes: u64,
    /// Tree depth in nodes (root-only tree has depth 1; empty tree 0).
    pub depth: u32,
    /// Bounding box of the whole structure.
    pub aabb: Aabb,
}

impl WideBvh {
    /// `true` when the BVH contains no nodes (empty geometry).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of internal nodes.
    pub fn internal_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Internal(_)))
            .count()
    }

    /// Number of leaf nodes.
    pub fn leaf_count(&self) -> usize {
        self.nodes.len() - self.internal_count()
    }

    /// Byte offset of node `idx` from the structure base.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn offset_of(&self, idx: u32) -> u64 {
        self.offsets[idx as usize]
    }

    /// Validates structural invariants; used by tests and debug assertions.
    ///
    /// Checks that children of every internal node are stored consecutively
    /// in memory, that offsets are strictly increasing with index, and that
    /// every child index is in range.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.nodes.len() != self.offsets.len() {
            return Err("offsets and nodes length mismatch".into());
        }
        for w in self.offsets.windows(2) {
            if w[0] >= w[1] {
                return Err("offsets not strictly increasing".into());
            }
        }
        for (i, node) in self.nodes.iter().enumerate() {
            if let Node::Internal(int) = node {
                let kids = &int.children[..int.child_count as usize];
                for (&k, pair) in kids
                    .iter()
                    .zip(kids.windows(2).chain(std::iter::once(&[][..])))
                {
                    let _ = pair;
                    if k as usize >= self.nodes.len() {
                        return Err(format!("node {i}: child {k} out of range"));
                    }
                }
                // Consecutive in memory: each child's offset is the previous
                // child's offset plus its size.
                for pair in kids.windows(2) {
                    let a = pair[0] as usize;
                    let b = pair[1] as usize;
                    let expected = self.offsets[a] + self.nodes[a].kind().size_bytes();
                    if self.offsets[b] != expected {
                        return Err(format!(
                            "node {i}: children {a},{b} not consecutive in memory"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_sizes_match_paper() {
        assert_eq!(NodeKind::Internal.size_bytes(), 64);
        assert_eq!(NodeKind::TriangleLeaf.size_bytes(), 64);
        assert_eq!(NodeKind::ProceduralLeaf.size_bytes(), 64);
        assert_eq!(NodeKind::InstanceLeaf.size_bytes(), 128);
    }

    #[test]
    fn empty_bvh_properties() {
        let b = WideBvh::default();
        assert!(b.is_empty());
        assert_eq!(b.node_count(), 0);
        assert_eq!(b.depth, 0);
        assert!(b.check_invariants().is_ok());
    }

    #[test]
    fn internal_node_iterates_only_valid_children() {
        let mut n = InternalNode {
            child_bounds: [Aabb::EMPTY; BVH_WIDTH],
            children: [u32::MAX; BVH_WIDTH],
            child_count: 2,
        };
        n.children[0] = 1;
        n.children[1] = 2;
        let kids: Vec<u32> = n.iter_children().map(|(c, _)| c).collect();
        assert_eq!(kids, vec![1, 2]);
    }
}
