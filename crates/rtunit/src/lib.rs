//! The RT unit: a per-SM ray-tracing accelerator timing model.
//!
//! Reproduces the performance model of paper §III-C. One RT unit exists per
//! SM and is treated like an execution unit with variable latency: when a
//! warp's `traverseAS` instruction issues, the warp enters the RT unit's
//! *Warp Buffer* and its per-thread traversal scripts (recorded by the
//! functional model) are replayed cycle by cycle:
//!
//! * a *Warp Scheduler* picks one resident warp per cycle,
//!   greedy-then-oldest (§III-C2);
//! * the *Memory Scheduler* collects the next node address from every ready
//!   thread in the selected warp, merges identical requests and pushes the
//!   unique set to the *Memory Access Queue*; one request per cycle is sent
//!   to the L1 data cache (or a dedicated RT cache) (§III-C3);
//! * returning data enters the *Response FIFO*; the *Operation Scheduler*
//!   forwards waiting threads to the pipelined ray-box / ray-triangle /
//!   transform *Operation Units*, which have fixed latency (§III-C4);
//! * each ray's traversal stack is a short stack with
//!   [`SHORT_STACK_ENTRIES`] entries that spills into per-thread memory.
//!
//! A warp completes when every thread finished its script; until then
//! finished threads idle — the source of the low RT-unit SIMT efficiency
//! the paper reports (§VI-B).

pub mod unit;

pub use unit::{
    RtMem, RtMemResult, RtUnit, RtUnitAnalytics, RtUnitEvent, RtUnitEventKind, RtUnitStats,
    WarpDone,
};

use vksim_stats::{Counters, Histogram};

/// Short-stack depth per ray; deeper pushes spill to per-thread memory
/// (paper §III-C2, eight entries).
pub const SHORT_STACK_ENTRIES: u32 = 8;

/// One step of a thread's traversal script (converted from the functional
/// model's trace events by the simulator core).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Step {
    /// Fetch `size` bytes at `addr`, then run `op` on the returned data.
    Fetch {
        /// Absolute address.
        addr: u64,
        /// Size in bytes (split into 32 B chunks internally).
        size: u32,
        /// BVH operation consuming the data.
        op: OpKind,
    },
    /// Fire-and-forget store (intersection-buffer entry, stack spill).
    Store {
        /// Absolute address.
        addr: u64,
        /// Size in bytes.
        size: u32,
    },
}

/// Which operation unit processes a fetched node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// Ray-box intersection tests against an internal node's children.
    Box {
        /// Number of child AABBs tested.
        tests: u8,
    },
    /// One ray-triangle intersection test.
    Triangle,
    /// A ray coordinate transformation (TLAS -> BLAS crossing).
    Transform,
    /// Raw data fetch with no BVH operation (stack refill, metadata).
    None,
}

impl OpKind {
    /// Serializes the operation kind for a machine-state snapshot.
    pub fn save(&self, e: &mut vksim_snapshot::Enc) {
        match *self {
            OpKind::Box { tests } => {
                e.u8(0);
                e.u8(tests);
            }
            OpKind::Triangle => e.u8(1),
            OpKind::Transform => e.u8(2),
            OpKind::None => e.u8(3),
        }
    }

    /// Restores a kind written by [`OpKind::save`].
    ///
    /// # Errors
    ///
    /// An unknown variant tag is malformed.
    pub fn load(d: &mut vksim_snapshot::Dec<'_>) -> Result<Self, vksim_snapshot::SnapError> {
        Ok(match d.u8()? {
            0 => OpKind::Box { tests: d.u8()? },
            1 => OpKind::Triangle,
            2 => OpKind::Transform,
            3 => OpKind::None,
            t => {
                return Err(vksim_snapshot::SnapError::Malformed(format!(
                    "op kind tag {t}"
                )))
            }
        })
    }
}

impl Step {
    /// Serializes the step for a machine-state snapshot.
    pub fn save(&self, e: &mut vksim_snapshot::Enc) {
        match *self {
            Step::Fetch { addr, size, op } => {
                e.u8(0);
                e.u64(addr);
                e.u32(size);
                op.save(e);
            }
            Step::Store { addr, size } => {
                e.u8(1);
                e.u64(addr);
                e.u32(size);
            }
        }
    }

    /// Restores a step written by [`Step::save`].
    ///
    /// # Errors
    ///
    /// An unknown variant tag is malformed.
    pub fn load(d: &mut vksim_snapshot::Dec<'_>) -> Result<Self, vksim_snapshot::SnapError> {
        Ok(match d.u8()? {
            0 => Step::Fetch {
                addr: d.u64()?,
                size: d.u32()?,
                op: OpKind::load(d)?,
            },
            1 => Step::Store {
                addr: d.u64()?,
                size: d.u32()?,
            },
            t => {
                return Err(vksim_snapshot::SnapError::Malformed(format!(
                    "traversal step tag {t}"
                )))
            }
        })
    }
}

/// A whole warp's traversal work: one script per thread (empty scripts are
/// inactive lanes).
#[derive(Clone, Debug, Default)]
pub struct WarpJob {
    /// Identifier handed back on completion.
    pub warp_id: u32,
    /// Per-lane scripts.
    pub scripts: Vec<Vec<Step>>,
}

impl WarpJob {
    /// Number of lanes with non-empty scripts.
    pub fn active_lanes(&self) -> usize {
        self.scripts.iter().filter(|s| !s.is_empty()).count()
    }

    /// Total steps across lanes.
    pub fn total_steps(&self) -> usize {
        self.scripts.iter().map(|s| s.len()).sum()
    }

    /// Serializes the job (lane order preserved) for a machine-state
    /// snapshot.
    pub fn save(&self, e: &mut vksim_snapshot::Enc) {
        e.u32(self.warp_id);
        e.seq(self.scripts.len());
        for script in &self.scripts {
            e.seq(script.len());
            for step in script {
                step.save(e);
            }
        }
    }

    /// Restores a job written by [`WarpJob::save`].
    ///
    /// # Errors
    ///
    /// Propagates decoder errors on truncated or malformed payloads.
    pub fn load(d: &mut vksim_snapshot::Dec<'_>) -> Result<Self, vksim_snapshot::SnapError> {
        let warp_id = d.u32()?;
        let n = d.seq()?;
        let mut scripts = Vec::with_capacity(n);
        for _ in 0..n {
            let ns = d.seq()?;
            let mut script = Vec::with_capacity(ns);
            for _ in 0..ns {
                script.push(Step::load(d)?);
            }
            scripts.push(script);
        }
        Ok(WarpJob { warp_id, scripts })
    }
}

/// RT unit configuration (paper Table III: 1 RT unit per SM, max warps 4
/// baseline, 32 of each operation unit, MSHR size 64).
#[derive(Clone, Debug, PartialEq)]
pub struct RtUnitConfig {
    /// Maximum co-resident warps (the Fig. 16 sweep varies 1-20).
    pub max_warps: usize,
    /// Ray-box unit pipeline latency (cycles).
    pub box_latency: u32,
    /// Ray-triangle unit pipeline latency.
    pub triangle_latency: u32,
    /// Transform unit pipeline latency.
    pub transform_latency: u32,
    /// Memory access queue capacity.
    pub mem_queue: usize,
    /// Requests issued from the queue to the cache per cycle.
    pub issue_per_cycle: usize,
}

impl Default for RtUnitConfig {
    fn default() -> Self {
        RtUnitConfig {
            max_warps: 4,
            box_latency: 4,
            triangle_latency: 8,
            transform_latency: 4,
            mem_queue: 64,
            issue_per_cycle: 1,
        }
    }
}

/// Aggregated RT-unit statistics used by the evaluation experiments.
#[derive(Clone, Debug)]
pub struct RtStatsBundle {
    /// Event counters (fetches, ops, spills, ...).
    pub counters: Counters,
    /// Warp residency latency histogram (Fig. 13), 1000-cycle bins.
    pub warp_latency: Histogram,
    /// Per-cycle active-ray samples (RT-unit SIMT efficiency, §VI-B).
    pub active_ray_cycles: u64,
    /// Cycles with at least one resident warp.
    pub busy_cycles: u64,
    /// Sum over busy cycles of resident warps (occupancy, Fig. 18).
    pub resident_warp_cycles: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warp_job_counts_active_lanes() {
        let job = WarpJob {
            warp_id: 0,
            scripts: vec![
                vec![Step::Fetch {
                    addr: 0,
                    size: 64,
                    op: OpKind::Box { tests: 2 },
                }],
                vec![],
            ],
        };
        assert_eq!(job.active_lanes(), 1);
        assert_eq!(job.total_steps(), 1);
    }

    #[test]
    fn default_config_matches_table_iii() {
        let c = RtUnitConfig::default();
        assert_eq!(c.max_warps, 4);
        assert_eq!(c.mem_queue, 64);
    }
}
