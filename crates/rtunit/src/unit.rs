//! The RT unit state machine.

use crate::{OpKind, RtStatsBundle, RtUnitConfig, Step, WarpJob, SHORT_STACK_ENTRIES};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use vksim_mem::chunk_addresses;
use vksim_stats::{Counters, Histogram};

/// Result of handing a chunk load to the memory port.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RtMemResult {
    /// Data available at absolute cycle `at` (cache hit).
    Ready {
        /// Completion cycle.
        at: u64,
    },
    /// Miss in flight; [`RtUnit::on_mem_complete`] will be called with
    /// `token`.
    Pending {
        /// Correlation token chosen by the port.
        token: u64,
    },
    /// No resources (MSHR full); retry next cycle.
    Retry,
}

/// Memory port the RT unit issues 32 B chunk requests through — backed by
/// the SM's L1D or a dedicated RT cache (paper §III-C3).
pub trait RtMem {
    /// Issues a chunk read at `now`.
    fn load_chunk(&mut self, addr: u64, now: u64) -> RtMemResult;
    /// Issues a fire-and-forget chunk write at `now`.
    fn store_chunk(&mut self, addr: u64, now: u64);
}

/// A completed warp notification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WarpDone {
    /// The identifier given in [`WarpJob::warp_id`].
    pub warp_id: u32,
    /// Cycles the warp was resident in the RT unit.
    pub latency: u64,
}

/// What a traced RT-unit event records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RtUnitEventKind {
    /// A warp job entered the Warp Buffer.
    Enqueue,
    /// A warp job retired after `latency` resident cycles.
    Finish {
        /// Resident latency in cycles.
        latency: u64,
    },
}

/// One traced RT-unit timeline event, recorded at the source so warp
/// attribution survives even when the SM's job bookkeeping has moved on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RtUnitEvent {
    /// Cycle the event occurred on.
    pub cycle: u64,
    /// The [`WarpJob::warp_id`] of the affected job.
    pub warp_id: u32,
    /// What happened.
    pub kind: RtUnitEventKind,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LaneState {
    /// Next step may issue.
    Ready,
    /// Waiting for outstanding memory chunks.
    WaitMem,
    /// In an operation-unit pipeline until the given cycle.
    InOp(u64),
    /// Script finished; lane idles until the warp completes.
    Done,
}

#[derive(Clone, Debug)]
struct Lane {
    script: Vec<Step>,
    next: usize,
    state: LaneState,
    outstanding_chunks: u32,
    pending_op: OpKind,
}

impl Lane {
    fn new(script: Vec<Step>) -> Self {
        let state = if script.is_empty() {
            LaneState::Done
        } else {
            LaneState::Ready
        };
        Lane {
            script,
            next: 0,
            state,
            outstanding_chunks: 0,
            pending_op: OpKind::None,
        }
    }

    fn current_step(&self) -> Option<Step> {
        self.script.get(self.next).copied()
    }

    fn advance(&mut self) {
        self.next += 1;
        self.state = if self.next >= self.script.len() {
            LaneState::Done
        } else {
            LaneState::Ready
        };
    }
}

#[derive(Clone, Debug)]
struct WarpSlot {
    warp_id: u32,
    lanes: Vec<Lane>,
    entered_at: u64,
    arrival: u64,
}

// A merged memory-access-queue entry: one chunk address, many waiting lanes.
#[derive(Clone, Debug)]
struct QueuedReq {
    addr: u64,
    waiters: Vec<(u32, usize)>, // (warp_id, lane)
}

impl LaneState {
    fn save(&self, e: &mut vksim_snapshot::Enc) {
        match *self {
            LaneState::Ready => e.u8(0),
            LaneState::WaitMem => e.u8(1),
            LaneState::InOp(done) => {
                e.u8(2);
                e.u64(done);
            }
            LaneState::Done => e.u8(3),
        }
    }

    fn load(d: &mut vksim_snapshot::Dec<'_>) -> Result<Self, vksim_snapshot::SnapError> {
        Ok(match d.u8()? {
            0 => LaneState::Ready,
            1 => LaneState::WaitMem,
            2 => LaneState::InOp(d.u64()?),
            3 => LaneState::Done,
            t => {
                return Err(vksim_snapshot::SnapError::Malformed(format!(
                    "lane state tag {t}"
                )))
            }
        })
    }
}

impl Lane {
    fn save(&self, e: &mut vksim_snapshot::Enc) {
        e.seq(self.script.len());
        for step in &self.script {
            step.save(e);
        }
        e.usize(self.next);
        self.state.save(e);
        e.u32(self.outstanding_chunks);
        self.pending_op.save(e);
    }

    fn load(d: &mut vksim_snapshot::Dec<'_>) -> Result<Self, vksim_snapshot::SnapError> {
        let n = d.seq()?;
        let mut script = Vec::with_capacity(n);
        for _ in 0..n {
            script.push(Step::load(d)?);
        }
        Ok(Lane {
            script,
            next: d.usize()?,
            state: LaneState::load(d)?,
            outstanding_chunks: d.u32()?,
            pending_op: OpKind::load(d)?,
        })
    }
}

impl WarpSlot {
    fn save(&self, e: &mut vksim_snapshot::Enc) {
        e.u32(self.warp_id);
        e.seq(self.lanes.len());
        for lane in &self.lanes {
            lane.save(e);
        }
        e.u64(self.entered_at);
        e.u64(self.arrival);
    }

    fn load(d: &mut vksim_snapshot::Dec<'_>) -> Result<Self, vksim_snapshot::SnapError> {
        let warp_id = d.u32()?;
        let n = d.seq()?;
        let mut lanes = Vec::with_capacity(n);
        for _ in 0..n {
            lanes.push(Lane::load(d)?);
        }
        Ok(WarpSlot {
            warp_id,
            lanes,
            entered_at: d.u64()?,
            arrival: d.u64()?,
        })
    }
}

impl QueuedReq {
    fn save(&self, e: &mut vksim_snapshot::Enc) {
        e.u64(self.addr);
        e.seq(self.waiters.len());
        for &(warp_id, lane) in &self.waiters {
            e.u32(warp_id);
            e.usize(lane);
        }
    }

    fn load(d: &mut vksim_snapshot::Dec<'_>) -> Result<Self, vksim_snapshot::SnapError> {
        let addr = d.u64()?;
        let n = d.seq()?;
        let mut waiters = Vec::with_capacity(n);
        for _ in 0..n {
            let warp_id = d.u32()?;
            waiters.push((warp_id, d.usize()?));
        }
        Ok(QueuedReq { addr, waiters })
    }
}

/// Per-job step/latency attribution for the rt-analytics layer: script
/// steps attributed to each in-flight job while it runs, folded into the
/// aggregate tallies when the job retires. Allocated only while analytics
/// is enabled, so the default path pays one branch per hook.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RtUnitAnalytics {
    /// Jobs retired.
    pub jobs: u64,
    /// Script steps fully consumed by retired and in-flight jobs.
    pub steps: u64,
    /// Σ enqueue→retire latency over retired jobs, in cycles.
    pub latency_total: u64,
    /// Steps consumed so far by each in-flight job.
    live: HashMap<u32, u64>,
}

impl RtUnitAnalytics {
    fn on_enqueue(&mut self, warp_id: u32) {
        self.live.insert(warp_id, 0);
    }

    fn on_step(&mut self, warp_id: u32) {
        self.steps += 1;
        *self.live.entry(warp_id).or_default() += 1;
    }

    fn on_retire(&mut self, warp_id: u32, latency: u64) {
        self.live.remove(&warp_id);
        self.jobs += 1;
        self.latency_total += latency;
    }

    fn save(&self, e: &mut vksim_snapshot::Enc) {
        e.u64(self.jobs);
        e.u64(self.steps);
        e.u64(self.latency_total);
        let mut live: Vec<(&u32, &u64)> = self.live.iter().collect();
        live.sort_unstable_by_key(|(id, _)| **id);
        e.seq(live.len());
        for (id, steps) in live {
            e.u32(*id);
            e.u64(*steps);
        }
    }

    fn load(d: &mut vksim_snapshot::Dec<'_>) -> Result<Self, vksim_snapshot::SnapError> {
        let jobs = d.u64()?;
        let steps = d.u64()?;
        let latency_total = d.u64()?;
        let mut live = HashMap::new();
        for _ in 0..d.seq()? {
            let id = d.u32()?;
            live.insert(id, d.u64()?);
        }
        Ok(RtUnitAnalytics {
            jobs,
            steps,
            latency_total,
            live,
        })
    }
}

/// The per-SM ray-tracing accelerator.
///
/// Drive it with [`RtUnit::try_enqueue`], one [`RtUnit::tick`] per core
/// cycle, and [`RtUnit::on_mem_complete`] when the memory system finishes a
/// pending chunk.
#[derive(Debug)]
pub struct RtUnit {
    config: RtUnitConfig,
    warps: Vec<WarpSlot>,
    mem_queue: VecDeque<QueuedReq>,
    // Chunk addresses already in the queue (for merging).
    inflight: HashMap<u64, QueuedReq>,
    ready_heap: BinaryHeap<Reverse<(u64, u64)>>, // (ready_at, key into ready_store)
    ready_store: HashMap<u64, QueuedReq>,
    ready_seq: u64,
    last_warp: Option<u32>,
    arrivals: u64,
    stats: Counters,
    warp_latency: Histogram,
    active_ray_cycles: u64,
    busy_cycles: u64,
    resident_warp_cycles: u64,
    occupancy_trace: Vec<(u64, u32, u32)>, // (cycle, warps, active rays) sampled
    sample_period: u64,
    // Timeline event buffer, allocated only while tracing is enabled.
    events: Option<Vec<RtUnitEvent>>,
    // Per-job attribution, allocated only while rt analytics is enabled.
    analytics: Option<Box<RtUnitAnalytics>>,
}

/// Snapshot of RT-unit statistics.
pub type RtUnitStats = RtStatsBundle;

impl RtUnit {
    /// Creates an empty RT unit.
    pub fn new(config: RtUnitConfig) -> Self {
        RtUnit {
            config,
            warps: Vec::new(),
            mem_queue: VecDeque::new(),
            inflight: HashMap::new(),
            ready_heap: BinaryHeap::new(),
            ready_store: HashMap::new(),
            ready_seq: 0,
            last_warp: None,
            arrivals: 0,
            stats: Counters::new(),
            warp_latency: Histogram::new(1000.0),
            active_ray_cycles: 0,
            busy_cycles: 0,
            resident_warp_cycles: 0,
            occupancy_trace: Vec::new(),
            sample_period: 256,
            events: None,
            analytics: None,
        }
    }

    /// Enables (or disables) timeline event recording. Off by default.
    pub fn set_event_trace(&mut self, enabled: bool) {
        self.events = if enabled { Some(Vec::new()) } else { None };
    }

    /// Enables (or disables) per-job step/latency attribution. Off by
    /// default.
    pub fn set_analytics(&mut self, enabled: bool) {
        self.analytics = if enabled { Some(Box::default()) } else { None };
    }

    /// The per-job attribution recorder, when analytics is enabled.
    pub fn analytics(&self) -> Option<&RtUnitAnalytics> {
        self.analytics.as_deref()
    }

    /// Drains recorded enqueue/finish timeline events.
    pub fn take_events(&mut self) -> Vec<RtUnitEvent> {
        self.events.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// The configuration in use.
    pub fn config(&self) -> &RtUnitConfig {
        &self.config
    }

    /// `true` when another warp can enter the Warp Buffer.
    pub fn has_capacity(&self) -> bool {
        self.warps.len() < self.config.max_warps
    }

    /// Number of resident warps.
    pub fn resident_warps(&self) -> usize {
        self.warps.len()
    }

    /// Rays still traversing (not Done) across resident warps.
    pub fn active_rays(&self) -> u32 {
        self.warps
            .iter()
            .flat_map(|w| &w.lanes)
            .filter(|l| l.state != LaneState::Done)
            .count() as u32
    }

    /// Memory requests waiting in the scheduler queue (post-mortem dumps).
    pub fn queued_mem_requests(&self) -> usize {
        self.mem_queue.len()
    }

    /// Memory requests issued and awaiting completion (post-mortem dumps).
    pub fn inflight_mem_requests(&self) -> usize {
        self.inflight.len()
    }

    /// Attempts to admit a warp; returns `false` when the Warp Buffer is
    /// full (the SM must retry — the `traverseAS` issue stalls).
    pub fn try_enqueue(&mut self, job: WarpJob, now: u64) -> bool {
        if !self.has_capacity() {
            self.stats.inc("warp_buffer_full");
            return false;
        }
        self.arrivals += 1;
        self.stats.inc("warps_entered");
        self.stats.add("rays_entered", job.active_lanes() as u64);
        if let Some(buf) = self.events.as_mut() {
            buf.push(RtUnitEvent {
                cycle: now,
                warp_id: job.warp_id,
                kind: RtUnitEventKind::Enqueue,
            });
        }
        if let Some(a) = self.analytics.as_mut() {
            a.on_enqueue(job.warp_id);
        }
        self.warps.push(WarpSlot {
            warp_id: job.warp_id,
            lanes: job.scripts.into_iter().map(Lane::new).collect(),
            entered_at: now,
            arrival: self.arrivals,
        });
        true
    }

    /// Memory system callback for a pending chunk issued earlier.
    pub fn on_mem_complete(&mut self, token: u64, now: u64) {
        if let Some(req) = self.inflight.remove(&token) {
            self.finish_chunk(req, now);
        }
    }

    fn finish_chunk(&mut self, req: QueuedReq, now: u64) {
        let cfg = self.config.clone();
        for (warp_id, lane_idx) in req.waiters {
            if let Some(w) = self.warps.iter_mut().find(|w| w.warp_id == warp_id) {
                let lane = &mut w.lanes[lane_idx];
                if lane.state != LaneState::WaitMem {
                    continue;
                }
                lane.outstanding_chunks = lane.outstanding_chunks.saturating_sub(1);
                if lane.outstanding_chunks == 0 {
                    // Data complete: enter the operation unit.
                    let lat = match lane.pending_op {
                        OpKind::Box { .. } => cfg.box_latency,
                        OpKind::Triangle => cfg.triangle_latency,
                        OpKind::Transform => cfg.transform_latency,
                        OpKind::None => 1,
                    } as u64;
                    match lane.pending_op {
                        OpKind::Box { tests } => self.stats.add("ops.box_tests", tests as u64),
                        OpKind::Triangle => self.stats.inc("ops.triangle_tests"),
                        OpKind::Transform => self.stats.inc("ops.transforms"),
                        OpKind::None => {}
                    }
                    lane.state = LaneState::InOp(now + lat);
                }
            }
        }
    }

    /// Advances one cycle; returns warps that completed this cycle.
    pub fn tick(&mut self, now: u64, mem: &mut dyn RtMem) -> Vec<WarpDone> {
        // 0. Hit-latency completions that became ready.
        while let Some(&Reverse((at, key))) = self.ready_heap.peek() {
            if at > now {
                break;
            }
            self.ready_heap.pop();
            if let Some(req) = self.ready_store.remove(&key) {
                self.finish_chunk(req, now);
            }
        }

        // 1. Operation-unit completions.
        for w in &mut self.warps {
            for lane in &mut w.lanes {
                if let LaneState::InOp(done) = lane.state {
                    if done <= now {
                        lane.advance();
                        if let Some(a) = self.analytics.as_mut() {
                            a.on_step(w.warp_id);
                        }
                    }
                }
            }
        }

        // 2. Warp scheduling: greedy-then-oldest.
        if let Some(wid) = self.pick_warp() {
            self.last_warp = Some(wid);
            self.schedule_memory(wid, mem, now);
        }

        // 3. Issue from the Memory Access Queue to the cache.
        for _ in 0..self.config.issue_per_cycle {
            let Some(req) = self.mem_queue.front() else {
                break;
            };
            let addr = req.addr;
            match mem.load_chunk(addr, now) {
                RtMemResult::Ready { at } => {
                    let req = self.mem_queue.pop_front().expect("nonempty");
                    self.ready_seq += 1;
                    let key = self.ready_seq;
                    self.ready_store.insert(key, req);
                    self.ready_heap.push(Reverse((at.max(now + 1), key)));
                    self.stats.inc("mem.issued");
                }
                RtMemResult::Pending { token } => {
                    let req = self.mem_queue.pop_front().expect("nonempty");
                    self.inflight.insert(token, req);
                    self.stats.inc("mem.issued");
                }
                RtMemResult::Retry => {
                    self.stats.inc("mem.retry");
                    break;
                }
            }
        }

        // 4. Retire finished warps.
        let mut done = Vec::new();
        let mut i = 0;
        while i < self.warps.len() {
            if self.warps[i]
                .lanes
                .iter()
                .all(|l| l.state == LaneState::Done)
            {
                let w = self.warps.remove(i);
                let latency = now.saturating_sub(w.entered_at).max(1);
                self.warp_latency.record(latency as f64);
                self.stats.inc("warps_completed");
                if let Some(buf) = self.events.as_mut() {
                    buf.push(RtUnitEvent {
                        cycle: now,
                        warp_id: w.warp_id,
                        kind: RtUnitEventKind::Finish { latency },
                    });
                }
                if let Some(a) = self.analytics.as_mut() {
                    a.on_retire(w.warp_id, latency);
                }
                done.push(WarpDone {
                    warp_id: w.warp_id,
                    latency,
                });
            } else {
                i += 1;
            }
        }

        // 5. Statistics sampling.
        if !self.warps.is_empty() {
            self.busy_cycles += 1;
            self.resident_warp_cycles += self.warps.len() as u64;
            self.active_ray_cycles += self.active_rays() as u64;
        }
        if now.is_multiple_of(self.sample_period) {
            self.occupancy_trace
                .push((now, self.warps.len() as u32, self.active_rays()));
        }
        done
    }

    fn pick_warp(&self) -> Option<u32> {
        let schedulable = |w: &WarpSlot| w.lanes.iter().any(|l| l.state == LaneState::Ready);
        // Greedy: stick with the last warp while it has ready lanes.
        if let Some(last) = self.last_warp {
            if let Some(w) = self.warps.iter().find(|w| w.warp_id == last) {
                if schedulable(w) {
                    return Some(last);
                }
            }
        }
        // Then oldest (smallest arrival stamp).
        self.warps
            .iter()
            .filter(|w| schedulable(w))
            .min_by_key(|w| w.arrival)
            .map(|w| w.warp_id)
    }

    /// Collects memory requests from all ready lanes of the selected warp,
    /// merging identical chunk addresses (the paper's Memory Scheduler).
    fn schedule_memory(&mut self, warp_id: u32, mem: &mut dyn RtMem, now: u64) {
        let Some(w_idx) = self.warps.iter().position(|w| w.warp_id == warp_id) else {
            return;
        };
        let lanes = self.warps[w_idx].lanes.len();
        for lane_idx in 0..lanes {
            let lane = &self.warps[w_idx].lanes[lane_idx];
            if lane.state != LaneState::Ready {
                continue;
            }
            match lane.current_step() {
                Some(Step::Store { addr, size }) => {
                    // Fire-and-forget store traffic (intersection buffer,
                    // stack spill); the lane advances after one cycle.
                    for chunk in chunk_addresses(addr, size) {
                        mem.store_chunk(chunk, now);
                        self.stats.inc("mem.stores");
                    }
                    let lane = &mut self.warps[w_idx].lanes[lane_idx];
                    lane.state = LaneState::InOp(now + 1);
                }
                Some(Step::Fetch { addr, size, op }) => {
                    let chunks = chunk_addresses(addr, size);
                    // Only commit the lane if every chunk fits in the queue
                    // (or merges with an existing entry). The queue is small
                    // (MSHR-sized), so a linear scan is fine.
                    let new_needed = chunks
                        .iter()
                        .filter(|c| !self.mem_queue.iter().any(|r| r.addr == **c))
                        .count();
                    if self.mem_queue.len() + new_needed > self.config.mem_queue {
                        self.stats.inc("mem.queue_full");
                        continue;
                    }
                    for chunk in &chunks {
                        match self.mem_queue.iter_mut().find(|r| r.addr == *chunk) {
                            Some(req) => {
                                req.waiters.push((warp_id, lane_idx));
                                self.stats.inc("mem.merged");
                            }
                            None => {
                                self.mem_queue.push_back(QueuedReq {
                                    addr: *chunk,
                                    waiters: vec![(warp_id, lane_idx)],
                                });
                                self.stats.inc("mem.requests");
                            }
                        }
                    }
                    let lane = &mut self.warps[w_idx].lanes[lane_idx];
                    lane.state = LaneState::WaitMem;
                    lane.outstanding_chunks = chunks.len() as u32;
                    lane.pending_op = op;
                }
                None => {}
            }
        }
    }

    /// Snapshot of accumulated statistics.
    pub fn stats(&self) -> RtUnitStats {
        RtStatsBundle {
            counters: self.stats.clone(),
            warp_latency: self.warp_latency.clone(),
            active_ray_cycles: self.active_ray_cycles,
            busy_cycles: self.busy_cycles,
            resident_warp_cycles: self.resident_warp_cycles,
        }
    }

    /// Sampled `(cycle, resident warps, active rays)` occupancy timeline
    /// (Fig. 18).
    pub fn occupancy_trace(&self) -> &[(u64, u32, u32)] {
        &self.occupancy_trace
    }

    /// RT-unit SIMT efficiency: mean active rays per busy cycle over the
    /// maximum lane count (paper §VI-B, 32-lane warps).
    pub fn simt_efficiency(&self, lanes_per_warp: u32) -> f64 {
        if self.busy_cycles == 0 || self.resident_warp_cycles == 0 {
            return 0.0;
        }
        let max_rays = self.resident_warp_cycles as f64 * lanes_per_warp as f64;
        self.active_ray_cycles as f64 / max_rays
    }

    /// `true` when no warps are resident and no memory is outstanding.
    pub fn is_idle(&self) -> bool {
        self.warps.is_empty() && self.inflight.is_empty() && self.mem_queue.is_empty()
    }

    /// Serializes the unit's in-flight occupancy — resident warps with
    /// their per-lane script positions, the memory access queue, pending
    /// and ready requests, scheduler state — plus statistics, for a
    /// machine-state snapshot. Insertion-ordered containers are written in
    /// order (warp/queue order feeds the GTO scheduler); hash maps are
    /// sorted by key and the ready heap by `(ready_at, key)`, so
    /// re-encoding a restored unit is byte-identical. Configuration is
    /// rebuilt from the resuming config, not the file.
    pub fn save(&self, e: &mut vksim_snapshot::Enc) {
        e.seq(self.warps.len());
        for w in &self.warps {
            w.save(e);
        }
        e.seq(self.mem_queue.len());
        for req in &self.mem_queue {
            req.save(e);
        }
        let mut inflight: Vec<(&u64, &QueuedReq)> = self.inflight.iter().collect();
        inflight.sort_unstable_by_key(|(token, _)| **token);
        e.seq(inflight.len());
        for (token, req) in inflight {
            e.u64(*token);
            req.save(e);
        }
        let mut heap: Vec<(u64, u64)> = self.ready_heap.iter().map(|r| r.0).collect();
        heap.sort_unstable();
        e.seq(heap.len());
        for (at, key) in heap {
            e.u64(at);
            e.u64(key);
        }
        let mut store: Vec<(&u64, &QueuedReq)> = self.ready_store.iter().collect();
        store.sort_unstable_by_key(|(key, _)| **key);
        e.seq(store.len());
        for (key, req) in store {
            e.u64(*key);
            req.save(e);
        }
        e.u64(self.ready_seq);
        e.opt_u32(self.last_warp);
        e.u64(self.arrivals);
        self.stats.save(e);
        self.warp_latency.save(e);
        e.u64(self.active_ray_cycles);
        e.u64(self.busy_cycles);
        e.u64(self.resident_warp_cycles);
        e.seq(self.occupancy_trace.len());
        for &(cycle, warps, rays) in &self.occupancy_trace {
            e.u64(cycle);
            e.u32(warps);
            e.u32(rays);
        }
        match &self.events {
            None => e.u8(0),
            Some(buf) => {
                e.u8(1);
                e.seq(buf.len());
                for ev in buf {
                    e.u64(ev.cycle);
                    e.u32(ev.warp_id);
                    match ev.kind {
                        RtUnitEventKind::Enqueue => e.u8(0),
                        RtUnitEventKind::Finish { latency } => {
                            e.u8(1);
                            e.u64(latency);
                        }
                    }
                }
            }
        }
        match &self.analytics {
            None => e.u8(0),
            Some(a) => {
                e.u8(1);
                a.save(e);
            }
        }
    }

    /// Restores a unit written by [`RtUnit::save`] under `config`.
    ///
    /// # Errors
    ///
    /// Propagates decoder errors on truncated or malformed payloads.
    pub fn load(
        config: RtUnitConfig,
        d: &mut vksim_snapshot::Dec<'_>,
    ) -> Result<Self, vksim_snapshot::SnapError> {
        let mut rt = RtUnit::new(config);
        let n = d.seq()?;
        rt.warps = Vec::with_capacity(n);
        for _ in 0..n {
            rt.warps.push(WarpSlot::load(d)?);
        }
        let nq = d.seq()?;
        rt.mem_queue = VecDeque::with_capacity(nq);
        for _ in 0..nq {
            rt.mem_queue.push_back(QueuedReq::load(d)?);
        }
        let ni = d.seq()?;
        rt.inflight = HashMap::with_capacity(ni);
        for _ in 0..ni {
            let token = d.u64()?;
            rt.inflight.insert(token, QueuedReq::load(d)?);
        }
        let nh = d.seq()?;
        rt.ready_heap = BinaryHeap::with_capacity(nh);
        for _ in 0..nh {
            let at = d.u64()?;
            rt.ready_heap.push(Reverse((at, d.u64()?)));
        }
        let ns = d.seq()?;
        rt.ready_store = HashMap::with_capacity(ns);
        for _ in 0..ns {
            let key = d.u64()?;
            rt.ready_store.insert(key, QueuedReq::load(d)?);
        }
        rt.ready_seq = d.u64()?;
        rt.last_warp = d.opt_u32()?;
        rt.arrivals = d.u64()?;
        rt.stats = Counters::load(d)?;
        rt.warp_latency = Histogram::load(d)?;
        rt.active_ray_cycles = d.u64()?;
        rt.busy_cycles = d.u64()?;
        rt.resident_warp_cycles = d.u64()?;
        let no = d.seq()?;
        rt.occupancy_trace = Vec::with_capacity(no);
        for _ in 0..no {
            let cycle = d.u64()?;
            let warps = d.u32()?;
            rt.occupancy_trace.push((cycle, warps, d.u32()?));
        }
        rt.events = match d.u8()? {
            0 => None,
            1 => {
                let ne = d.seq()?;
                let mut buf = Vec::with_capacity(ne);
                for _ in 0..ne {
                    let cycle = d.u64()?;
                    let warp_id = d.u32()?;
                    let kind = match d.u8()? {
                        0 => RtUnitEventKind::Enqueue,
                        1 => RtUnitEventKind::Finish { latency: d.u64()? },
                        t => {
                            return Err(vksim_snapshot::SnapError::Malformed(format!(
                                "rt event tag {t}"
                            )))
                        }
                    };
                    buf.push(RtUnitEvent {
                        cycle,
                        warp_id,
                        kind,
                    });
                }
                Some(buf)
            }
            t => {
                return Err(vksim_snapshot::SnapError::Malformed(format!(
                    "rt event trace tag {t}"
                )))
            }
        };
        rt.analytics = match d.u8()? {
            0 => None,
            1 => Some(Box::new(RtUnitAnalytics::load(d)?)),
            t => {
                return Err(vksim_snapshot::SnapError::Malformed(format!(
                    "rt analytics tag {t}"
                )))
            }
        };
        Ok(rt)
    }
}

/// Computes stack-spill traffic: given a sequence of stack depths reached by
/// pushes/pops, returns `(spill_stores, spill_loads)` for a short stack of
/// [`SHORT_STACK_ENTRIES`] entries (paper §III-C2).
pub fn short_stack_spills(depth_trace: &[u32]) -> (u32, u32) {
    let mut stores = 0;
    let mut loads = 0;
    let mut prev = 0u32;
    for &d in depth_trace {
        if d > SHORT_STACK_ENTRIES && d > prev {
            stores += d - prev.max(SHORT_STACK_ENTRIES);
        }
        if prev > SHORT_STACK_ENTRIES && d < prev {
            loads += prev.min(prev) - d.max(SHORT_STACK_ENTRIES).min(prev);
        }
        prev = d;
    }
    (stores, loads)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Memory stub: every load hits after `lat` cycles.
    struct FlatMem {
        lat: u64,
        loads: Vec<u64>,
        stores: Vec<u64>,
    }

    impl FlatMem {
        fn new(lat: u64) -> Self {
            FlatMem {
                lat,
                loads: Vec::new(),
                stores: Vec::new(),
            }
        }
    }

    impl RtMem for FlatMem {
        fn load_chunk(&mut self, addr: u64, now: u64) -> RtMemResult {
            self.loads.push(addr);
            RtMemResult::Ready { at: now + self.lat }
        }
        fn store_chunk(&mut self, addr: u64, _now: u64) {
            self.stores.push(addr);
        }
    }

    fn fetch(addr: u64, size: u32) -> Step {
        Step::Fetch {
            addr,
            size,
            op: OpKind::Box { tests: 6 },
        }
    }

    fn run_until_done(rt: &mut RtUnit, mem: &mut FlatMem, limit: u64) -> Vec<(u64, WarpDone)> {
        let mut done = Vec::new();
        for now in 0..limit {
            for d in rt.tick(now, mem) {
                done.push((now, d));
            }
            if rt.is_idle() {
                break;
            }
        }
        done
    }

    #[test]
    fn single_warp_single_step_completes() {
        let mut rt = RtUnit::new(RtUnitConfig::default());
        let job = WarpJob {
            warp_id: 7,
            scripts: vec![vec![fetch(0x1000, 64)]],
        };
        assert!(rt.try_enqueue(job, 0));
        let mut mem = FlatMem::new(20);
        let done = run_until_done(&mut rt, &mut mem, 10_000);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].1.warp_id, 7);
        // 64 B = 2 chunks.
        assert_eq!(mem.loads.len(), 2);
        assert!(done[0].1.latency >= 20, "must include memory latency");
    }

    /// Per-job attribution ties steps to script lengths and latency to the
    /// retire report, and survives a mid-flight save/load byte-identically.
    #[test]
    fn analytics_attributes_steps_and_latency_per_job() {
        let mut rt = RtUnit::new(RtUnitConfig::default());
        rt.set_analytics(true);
        let job = WarpJob {
            warp_id: 3,
            scripts: vec![
                vec![fetch(0x1000, 32), fetch(0x2000, 32)],
                vec![fetch(0x1000, 32)],
                Vec::new(),
            ],
        };
        assert!(rt.try_enqueue(job, 0));
        let mut mem = FlatMem::new(5);

        // Save mid-flight after a couple of cycles; the live map rides the
        // snapshot and re-encodes byte-identically.
        rt.tick(0, &mut mem);
        rt.tick(1, &mut mem);
        let mut e = vksim_snapshot::Enc::new();
        rt.save(&mut e);
        let bytes = e.into_bytes();
        let mut d = vksim_snapshot::Dec::new(&bytes);
        let restored = RtUnit::load(RtUnitConfig::default(), &mut d).unwrap();
        d.finish().unwrap();
        let mut e2 = vksim_snapshot::Enc::new();
        restored.save(&mut e2);
        assert_eq!(e2.into_bytes(), bytes);

        let done = {
            let mut done = Vec::new();
            for now in 2..10_000 {
                for f in rt.tick(now, &mut mem) {
                    done.push((now, f));
                }
                if rt.is_idle() {
                    break;
                }
            }
            done
        };
        assert_eq!(done.len(), 1);
        let a = rt.analytics().expect("analytics enabled");
        assert_eq!(a.jobs, 1);
        assert_eq!(a.steps, 3, "one step per script entry across lanes");
        assert_eq!(a.latency_total, done[0].1.latency);
        let disabled = RtUnit::new(RtUnitConfig::default());
        assert!(disabled.analytics().is_none());
    }

    #[test]
    fn warp_buffer_capacity_enforced() {
        let mut rt = RtUnit::new(RtUnitConfig {
            max_warps: 2,
            ..Default::default()
        });
        for i in 0..2 {
            assert!(rt.try_enqueue(
                WarpJob {
                    warp_id: i,
                    scripts: vec![vec![fetch(0, 32)]]
                },
                0
            ));
        }
        assert!(!rt.try_enqueue(
            WarpJob {
                warp_id: 9,
                scripts: vec![vec![fetch(0, 32)]]
            },
            0
        ));
        assert_eq!(rt.resident_warps(), 2);
    }

    #[test]
    fn identical_addresses_merge_within_warp() {
        let mut rt = RtUnit::new(RtUnitConfig::default());
        // 4 lanes all fetching the same node (the BVH-root pattern from the
        // paper's DRAM discussion).
        let scripts = vec![vec![fetch(0x2000, 32)]; 4];
        rt.try_enqueue(
            WarpJob {
                warp_id: 0,
                scripts,
            },
            0,
        );
        let mut mem = FlatMem::new(10);
        run_until_done(&mut rt, &mut mem, 1000);
        assert_eq!(mem.loads.len(), 1, "one merged request for 4 lanes");
        let s = rt.stats();
        assert_eq!(s.counters.get("mem.merged"), 3);
        assert_eq!(s.counters.get("mem.requests"), 1);
    }

    #[test]
    fn divergent_addresses_do_not_merge() {
        let mut rt = RtUnit::new(RtUnitConfig::default());
        let scripts: Vec<Vec<Step>> = (0..4)
            .map(|i| vec![fetch(0x3000 + i * 0x100, 32)])
            .collect();
        rt.try_enqueue(
            WarpJob {
                warp_id: 0,
                scripts,
            },
            0,
        );
        let mut mem = FlatMem::new(10);
        run_until_done(&mut rt, &mut mem, 1000);
        assert_eq!(mem.loads.len(), 4);
    }

    #[test]
    fn stores_fire_and_forget() {
        let mut rt = RtUnit::new(RtUnitConfig::default());
        let scripts = vec![vec![
            Step::Store {
                addr: 0x4000,
                size: 32,
            },
            fetch(0x5000, 32),
        ]];
        rt.try_enqueue(
            WarpJob {
                warp_id: 0,
                scripts,
            },
            0,
        );
        let mut mem = FlatMem::new(5);
        let done = run_until_done(&mut rt, &mut mem, 1000);
        assert_eq!(done.len(), 1);
        assert_eq!(mem.stores, vec![0x4000]);
        assert_eq!(mem.loads, vec![0x5000]);
    }

    #[test]
    fn pending_memory_resolves_via_callback() {
        struct PendingMem {
            next_token: u64,
            outstanding: Vec<u64>,
        }
        impl RtMem for PendingMem {
            fn load_chunk(&mut self, _addr: u64, _now: u64) -> RtMemResult {
                self.next_token += 1;
                self.outstanding.push(self.next_token);
                RtMemResult::Pending {
                    token: self.next_token,
                }
            }
            fn store_chunk(&mut self, _addr: u64, _now: u64) {}
        }
        let mut rt = RtUnit::new(RtUnitConfig::default());
        rt.try_enqueue(
            WarpJob {
                warp_id: 3,
                scripts: vec![vec![fetch(0x100, 32)]],
            },
            0,
        );
        let mut mem = PendingMem {
            next_token: 0,
            outstanding: vec![],
        };
        let mut now = 0;
        while mem.outstanding.is_empty() {
            now += 1;
            rt.tick(now, &mut mem);
        }
        // Deliver the completion much later.
        let token = mem.outstanding[0];
        rt.on_mem_complete(token, 500);
        let mut done = Vec::new();
        for t in 501..600 {
            done.extend(rt.tick(t, &mut mem));
        }
        assert_eq!(done.len(), 1);
        assert!(done[0].latency >= 500);
    }

    #[test]
    fn retry_stalls_queue_head() {
        struct FussyMem {
            attempts: u32,
        }
        impl RtMem for FussyMem {
            fn load_chunk(&mut self, _addr: u64, now: u64) -> RtMemResult {
                self.attempts += 1;
                if self.attempts < 5 {
                    RtMemResult::Retry
                } else {
                    RtMemResult::Ready { at: now + 1 }
                }
            }
            fn store_chunk(&mut self, _addr: u64, _now: u64) {}
        }
        let mut rt = RtUnit::new(RtUnitConfig::default());
        rt.try_enqueue(
            WarpJob {
                warp_id: 0,
                scripts: vec![vec![fetch(0x100, 32)]],
            },
            0,
        );
        let mut mem = FussyMem { attempts: 0 };
        let mut done = Vec::new();
        for t in 0..100 {
            done.extend(rt.tick(t, &mut mem));
        }
        assert_eq!(done.len(), 1);
        assert_eq!(mem.attempts, 5);
        assert_eq!(rt.stats().counters.get("mem.retry"), 4);
    }

    #[test]
    fn gto_prefers_last_scheduled_warp() {
        // Two warps whose lanes are ready every cycle (store-only scripts,
        // no memory stalls): greedy scheduling must drain warp 0 completely
        // before touching warp 1; round-robin would interleave them.
        let mut rt = RtUnit::new(RtUnitConfig {
            max_warps: 4,
            ..Default::default()
        });
        let stores = |base: u64| -> Vec<Step> {
            (0..3)
                .map(|i| Step::Store {
                    addr: base + i * 32,
                    size: 32,
                })
                .collect()
        };
        rt.try_enqueue(
            WarpJob {
                warp_id: 0,
                scripts: vec![stores(0x1000)],
            },
            0,
        );
        rt.try_enqueue(
            WarpJob {
                warp_id: 1,
                scripts: vec![stores(0x9000)],
            },
            0,
        );
        let mut mem = FlatMem::new(1);
        run_until_done(&mut rt, &mut mem, 1000);
        assert_eq!(mem.stores.len(), 6);
        assert!(
            mem.stores[..3].iter().all(|&a| a < 0x9000),
            "GTO must finish warp 0's stores first: {:x?}",
            mem.stores
        );
    }

    #[test]
    fn stalled_warp_yields_to_oldest_ready() {
        // GTO's "then oldest": when the greedy warp stalls on memory, the
        // oldest ready warp is scheduled instead.
        let mut rt = RtUnit::new(RtUnitConfig {
            max_warps: 4,
            ..Default::default()
        });
        rt.try_enqueue(
            WarpJob {
                warp_id: 0,
                scripts: vec![vec![fetch(0x1000, 32)]],
            },
            0,
        );
        rt.try_enqueue(
            WarpJob {
                warp_id: 1,
                scripts: vec![vec![fetch(0x9000, 32)]],
            },
            0,
        );
        let mut mem = FlatMem::new(100);
        run_until_done(&mut rt, &mut mem, 10_000);
        // Warp 1's request was issued while warp 0 waited on memory.
        assert_eq!(mem.loads, vec![0x1000, 0x9000]);
    }

    #[test]
    fn simt_efficiency_reflects_tail_threads() {
        let mut rt = RtUnit::new(RtUnitConfig::default());
        // One lane with a long script, 31 with one step: long tail.
        let mut scripts = vec![vec![fetch(0x100, 32)]; 31];
        scripts.push((0..32).map(|i| fetch(0x10_000 + i * 0x1000, 32)).collect());
        rt.try_enqueue(
            WarpJob {
                warp_id: 0,
                scripts,
            },
            0,
        );
        let mut mem = FlatMem::new(30);
        run_until_done(&mut rt, &mut mem, 100_000);
        let eff = rt.simt_efficiency(32);
        assert!(eff < 0.5, "tail thread should drag efficiency down: {eff}");
        assert!(eff > 0.0);
    }

    #[test]
    fn latency_histogram_records_each_warp() {
        let mut rt = RtUnit::new(RtUnitConfig::default());
        rt.try_enqueue(
            WarpJob {
                warp_id: 0,
                scripts: vec![vec![fetch(0, 32)]],
            },
            0,
        );
        let mut mem = FlatMem::new(5);
        run_until_done(&mut rt, &mut mem, 1000);
        assert_eq!(rt.stats().warp_latency.count(), 1);
    }

    #[test]
    fn event_trace_records_enqueue_and_finish() {
        let mut rt = RtUnit::new(RtUnitConfig::default());
        // Disabled by default: nothing recorded.
        rt.try_enqueue(
            WarpJob {
                warp_id: 1,
                scripts: vec![vec![fetch(0, 32)]],
            },
            0,
        );
        let mut mem = FlatMem::new(5);
        run_until_done(&mut rt, &mut mem, 1000);
        assert!(rt.take_events().is_empty());

        rt.set_event_trace(true);
        rt.try_enqueue(
            WarpJob {
                warp_id: 5,
                scripts: vec![vec![fetch(0x40, 32)]],
            },
            3,
        );
        run_until_done(&mut rt, &mut mem, 1000);
        let evs = rt.take_events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].warp_id, 5);
        assert_eq!(evs[0].kind, RtUnitEventKind::Enqueue);
        assert_eq!(evs[0].cycle, 3);
        assert!(matches!(evs[1].kind, RtUnitEventKind::Finish { .. }));
        assert!(rt.take_events().is_empty(), "take drains the buffer");
    }

    #[test]
    fn occupancy_trace_sampled() {
        let mut rt = RtUnit::new(RtUnitConfig::default());
        rt.try_enqueue(
            WarpJob {
                warp_id: 0,
                scripts: vec![(0..64).map(|i| fetch(i * 64, 32)).collect()],
            },
            0,
        );
        let mut mem = FlatMem::new(50);
        run_until_done(&mut rt, &mut mem, 100_000);
        assert!(!rt.occupancy_trace().is_empty());
    }

    #[test]
    fn snapshot_round_trips_mid_traversal() {
        // Freeze the unit mid-traversal — resident warps, queued and
        // in-flight memory, an open GTO pick — and check save -> load ->
        // save is byte-identical and the restored unit finishes exactly
        // like the original.
        let encode = |rt: &RtUnit| {
            let mut e = vksim_snapshot::Enc::new();
            rt.save(&mut e);
            e.into_bytes()
        };
        let mut rt = RtUnit::new(RtUnitConfig::default());
        rt.set_event_trace(true);
        for w in 0..2 {
            rt.try_enqueue(
                WarpJob {
                    warp_id: w,
                    scripts: (0..4)
                        .map(|i| vec![fetch(0x1000 * (w as u64 + 1) + i * 64, 32), fetch(0x40, 32)])
                        .collect(),
                },
                w as u64,
            );
        }
        let mut mem = FlatMem::new(25);
        for now in 0..6 {
            rt.tick(now, &mut mem);
        }
        assert!(!rt.is_idle(), "freeze point must be mid-traversal");

        let bytes = encode(&rt);
        let mut d = vksim_snapshot::Dec::new(&bytes);
        let mut restored = RtUnit::load(RtUnitConfig::default(), &mut d).expect("restore");
        d.finish().expect("payload fully consumed");
        assert_eq!(encode(&restored), bytes, "re-encode is byte-identical");

        // Both copies drive fresh-but-identical memory ports from here.
        let mut mem_r = FlatMem::new(25);
        let mut done = Vec::new();
        let mut done_r = Vec::new();
        for now in 6..10_000 {
            done.extend(rt.tick(now, &mut mem));
            done_r.extend(restored.tick(now, &mut mem_r));
            if rt.is_idle() && restored.is_idle() {
                break;
            }
        }
        assert_eq!(done.len(), 2);
        assert_eq!(done, done_r, "restored unit completes identically");
        assert_eq!(encode(&rt), encode(&restored), "final states converge");
        assert_eq!(rt.take_events(), restored.take_events());
    }

    #[test]
    fn short_stack_spill_accounting() {
        // Depth climbs to 10: 2 spill stores; then drops to 0: 2 reloads.
        let trace: Vec<u32> = (1..=10).chain((0..10).rev()).collect();
        let (stores, loads) = short_stack_spills(&trace);
        assert_eq!(stores, 2);
        assert_eq!(loads, 2);
        // Never exceeding the short stack: no spills.
        let shallow: Vec<u32> = (1..=8).collect();
        assert_eq!(short_stack_spills(&shallow), (0, 0));
    }
}
