//! Vulkan-like ray-tracing frontend.
//!
//! Stands in for the Mesa Vulkan frontend the real Vulkan-Sim intercepts
//! (paper §III-D): applications create a [`Device`], allocate and fill
//! buffers, build bottom/top-level acceleration structures
//! (`VK_KHR_acceleration_structure`), register shaders into a ray-tracing
//! pipeline (`vkCreateRayTracingPipelinesKHR` — this is where the
//! NIR-to-PTX translation happens), bind descriptors, and finally record a
//! [`TraceRaysCommand`] (`vkCmdTraceRaysKHR`) that the simulator core
//! executes.
//!
//! # Example
//!
//! ```
//! use vksim_vulkan::Device;
//! use vksim_bvh::{geometry::Triangle, Instance};
//! use vksim_math::{Mat4x3, Vec3};
//! use vksim_shader::{builder::ShaderBuilder, ir::ShaderKind, PipelineShaders};
//!
//! let mut device = Device::new();
//! let blas = device.create_blas(vksim_bvh::geometry::BlasGeometry::triangles(vec![
//!     Triangle::new(Vec3::ZERO, Vec3::X, Vec3::Y),
//! ]));
//! device.create_tlas(vec![Instance::new(blas, Mat4x3::IDENTITY)]);
//!
//! let mut rg = ShaderBuilder::new(ShaderKind::RayGen);
//! let x = rg.launch_id(0);
//! let out = rg.var_u32(rg.buffer_base(0) + x.clone() * rg.c_u32(4));
//! rg.store(rg.v(out), 0, x);
//! let pipeline = device
//!     .create_ray_tracing_pipeline(PipelineShaders::raygen_only(rg.finish()), false)
//!     .unwrap();
//!
//! let fb = device.alloc_buffer(4 * 64);
//! device.bind_descriptor(0, fb);
//! let cmd = device.cmd_trace_rays(&pipeline, 64, 1);
//! assert_eq!(cmd.dims.width, 64);
//! ```

use vksim_bvh::geometry::BlasGeometry;
use vksim_bvh::{Blas, Instance, Tlas};
use vksim_isa::{Program, SimMemory};
use vksim_shader::{translate, PipelineShaders, TranslateError, TranslateOptions};
use vksim_shader::{DESCRIPTOR_TABLE_ADDR, MAX_DESCRIPTOR_BINDINGS};

/// Base address of the general buffer arena.
pub const BUFFER_ARENA_BASE: u64 = 0x0010_0000;
/// Base address of the TLAS in device memory.
pub const TLAS_BASE: u64 = 0x7800_0000;
/// Base address of the BLAS arena.
pub const BLAS_ARENA_BASE: u64 = 0x9000_0000;
/// Base address of the per-ray intersection buffers.
pub const INTERSECTION_BUFFER_BASE: u64 = 0x4000_0000;

/// A compiled ray-tracing pipeline: the translated program plus the shader
/// binding table layout.
#[derive(Clone, Debug)]
pub struct RayTracingPipeline {
    /// The translated, executable program (rooted at the raygen shader).
    pub program: Program,
    /// Shader binding table: registered shader handles.
    pub sbt: ShaderBindingTable,
    /// Whether function-call coalescing lowering was used (Algorithm 3).
    pub fcc: bool,
}

/// The shader binding table (paper §III-B3): one raygen, plus handles (IDs)
/// for every miss / closest-hit / intersection / any-hit shader. A shader's
/// handle is its index within its group, assigned at registration.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShaderBindingTable {
    /// Number of miss shaders.
    pub miss_count: u32,
    /// Number of closest-hit shaders.
    pub closest_hit_count: u32,
    /// Number of intersection shaders.
    pub intersection_count: u32,
    /// Number of any-hit shaders.
    pub any_hit_count: u32,
}

impl ShaderBindingTable {
    /// Handle (ID) of miss shader `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn miss_handle(&self, i: u32) -> u32 {
        assert!(i < self.miss_count, "miss shader {i} not registered");
        i
    }

    /// Handle (ID) of closest-hit shader `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn closest_hit_handle(&self, i: u32) -> u32 {
        assert!(
            i < self.closest_hit_count,
            "closest-hit shader {i} not registered"
        );
        i
    }

    /// Total number of registered shaders (including raygen).
    pub fn total(&self) -> u32 {
        1 + self.miss_count + self.closest_hit_count + self.intersection_count + self.any_hit_count
    }
}

/// A recorded `vkCmdTraceRaysKHR`: everything the simulator core needs to
/// execute one ray-tracing kernel.
#[derive(Clone, Debug)]
pub struct TraceRaysCommand {
    /// Translated program.
    pub program: Program,
    /// Launch dimensions.
    pub dims: LaunchSize,
    /// FCC lowering flag (affects the RT runtime's intersection table).
    pub fcc: bool,
}

/// Launch grid (width × height × depth).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LaunchSize {
    /// Width in rays (image width).
    pub width: u32,
    /// Height in rays (image height).
    pub height: u32,
    /// Depth.
    pub depth: u32,
}

/// The simulated logical device: memory, acceleration structures and
/// pipelines.
#[derive(Debug, Default)]
pub struct Device {
    /// The functional memory image (descriptor table, buffers).
    pub memory: SimMemory,
    /// All bottom-level acceleration structures, by handle.
    pub blases: Vec<Blas>,
    /// The top-level acceleration structure, once built.
    pub tlas: Option<Tlas>,
    buffer_cursor: u64,
    blas_cursor: u64,
}

impl Device {
    /// Creates a fresh device.
    pub fn new() -> Self {
        Device {
            memory: SimMemory::new(),
            blases: Vec::new(),
            tlas: None,
            buffer_cursor: BUFFER_ARENA_BASE,
            blas_cursor: BLAS_ARENA_BASE,
        }
    }

    /// Allocates a device buffer; returns its address (64 B aligned).
    pub fn alloc_buffer(&mut self, size: u64) -> u64 {
        let addr = self.buffer_cursor;
        self.buffer_cursor += size.div_ceil(64) * 64;
        addr
    }

    /// Binds descriptor `binding` to a buffer address (descriptor-set
    /// write; shaders fetch it via `BufferBase`).
    ///
    /// # Panics
    ///
    /// Panics if the binding index is out of range or the address does not
    /// fit the 32-bit shader address space.
    pub fn bind_descriptor(&mut self, binding: u32, addr: u64) {
        assert!(
            binding < MAX_DESCRIPTOR_BINDINGS,
            "binding {binding} out of range"
        );
        assert!(
            addr <= u32::MAX as u64,
            "address beyond shader-visible space"
        );
        self.memory
            .write_u32(DESCRIPTOR_TABLE_ADDR + binding as u64 * 4, addr as u32);
    }

    /// Uploads f32 data to a buffer.
    pub fn upload_f32(&mut self, addr: u64, data: &[f32]) {
        for (i, v) in data.iter().enumerate() {
            self.memory.write_f32(addr + i as u64 * 4, *v);
        }
    }

    /// Uploads u32 data to a buffer.
    pub fn upload_u32(&mut self, addr: u64, data: &[u32]) {
        for (i, v) in data.iter().enumerate() {
            self.memory.write_u32(addr + i as u64 * 4, *v);
        }
    }

    /// Builds a BLAS (`VK_KHR_acceleration_structure`), assigning its
    /// device address; returns its handle.
    pub fn create_blas(&mut self, geometry: BlasGeometry) -> u32 {
        let mut blas = Blas::build(geometry);
        blas.set_base_addr(self.blas_cursor);
        self.blas_cursor += blas.size_bytes().div_ceil(4096) * 4096;
        self.blases.push(blas);
        (self.blases.len() - 1) as u32
    }

    /// Builds the TLAS over instances of previously created BLASes.
    ///
    /// # Panics
    ///
    /// Panics if an instance references an unknown BLAS handle.
    pub fn create_tlas(&mut self, instances: Vec<Instance>) {
        let refs: Vec<&Blas> = self.blases.iter().collect();
        let mut tlas = Tlas::build(instances, &refs);
        tlas.set_base_addr(TLAS_BASE);
        self.tlas = Some(tlas);
    }

    /// Creates the ray-tracing pipeline: registers the shaders (assigning
    /// SBT handles) and translates them to the executable program — the
    /// `vkCreateRayTracingPipelinesKHR` + NIR-to-PTX step.
    ///
    /// # Errors
    ///
    /// Returns the translator's error for malformed pipelines.
    pub fn create_ray_tracing_pipeline(
        &mut self,
        shaders: PipelineShaders,
        fcc: bool,
    ) -> Result<RayTracingPipeline, TranslateError> {
        let sbt = ShaderBindingTable {
            miss_count: shaders.miss.len() as u32,
            closest_hit_count: shaders.closest_hit.len() as u32,
            intersection_count: shaders.intersection.len() as u32,
            any_hit_count: shaders.any_hit.len() as u32,
        };
        let program = translate(&shaders, &TranslateOptions { fcc })?;
        Ok(RayTracingPipeline { program, sbt, fcc })
    }

    /// Records a `vkCmdTraceRaysKHR` launch.
    pub fn cmd_trace_rays(
        &self,
        pipeline: &RayTracingPipeline,
        width: u32,
        height: u32,
    ) -> TraceRaysCommand {
        TraceRaysCommand {
            program: pipeline.program.clone(),
            dims: LaunchSize {
                width,
                height,
                depth: 1,
            },
            fcc: pipeline.fcc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vksim_bvh::geometry::Triangle;
    use vksim_math::{Mat4x3, Vec3};
    use vksim_shader::builder::ShaderBuilder;
    use vksim_shader::ir::ShaderKind;

    fn tri_geometry() -> BlasGeometry {
        BlasGeometry::triangles(vec![Triangle::new(Vec3::ZERO, Vec3::X, Vec3::Y)])
    }

    #[test]
    fn buffers_are_aligned_and_disjoint() {
        let mut d = Device::new();
        let a = d.alloc_buffer(100);
        let b = d.alloc_buffer(1);
        let c = d.alloc_buffer(64);
        assert_eq!(a % 64, 0);
        assert!(b >= a + 100);
        assert!(c > b);
    }

    #[test]
    fn descriptor_table_wiring() {
        let mut d = Device::new();
        let buf = d.alloc_buffer(256);
        d.bind_descriptor(3, buf);
        assert_eq!(d.memory.read_u32(DESCRIPTOR_TABLE_ADDR + 12), buf as u32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn descriptor_binding_bounds_checked() {
        let mut d = Device::new();
        d.bind_descriptor(MAX_DESCRIPTOR_BINDINGS, 0x1000);
    }

    #[test]
    fn blas_handles_and_addresses() {
        let mut d = Device::new();
        let h0 = d.create_blas(tri_geometry());
        let h1 = d.create_blas(tri_geometry());
        assert_eq!((h0, h1), (0, 1));
        assert_eq!(d.blases[0].base_addr, BLAS_ARENA_BASE);
        assert!(d.blases[1].base_addr > d.blases[0].base_addr);
        assert_eq!(d.blases[1].base_addr % 4096, 0);
    }

    #[test]
    fn tlas_build_and_base() {
        let mut d = Device::new();
        let h = d.create_blas(tri_geometry());
        d.create_tlas(vec![Instance::new(h, Mat4x3::IDENTITY)]);
        let tlas = d.tlas.as_ref().unwrap();
        assert_eq!(tlas.base_addr, TLAS_BASE);
        assert_eq!(tlas.instances.len(), 1);
    }

    #[test]
    fn pipeline_creation_builds_sbt() {
        let mut d = Device::new();
        let mut rg = ShaderBuilder::new(ShaderKind::RayGen);
        let x = rg.launch_id(0);
        let out = rg.var_u32(rg.c_u32(0x1000));
        rg.store(rg.v(out), 0, x);
        let p = d
            .create_ray_tracing_pipeline(PipelineShaders::raygen_only(rg.finish()), false)
            .unwrap();
        assert_eq!(p.sbt.total(), 1);
        assert!(!p.program.is_empty());
        assert!(!p.fcc);
    }

    #[test]
    fn sbt_handles_are_indices() {
        let sbt = ShaderBindingTable {
            miss_count: 2,
            closest_hit_count: 3,
            intersection_count: 0,
            any_hit_count: 0,
        };
        assert_eq!(sbt.miss_handle(1), 1);
        assert_eq!(sbt.closest_hit_handle(2), 2);
        assert_eq!(sbt.total(), 6);
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn sbt_handle_bounds_checked() {
        let sbt = ShaderBindingTable::default();
        let _ = sbt.miss_handle(0);
    }

    #[test]
    fn trace_command_captures_dims() {
        let mut d = Device::new();
        let mut rg = ShaderBuilder::new(ShaderKind::RayGen);
        let v = rg.var_u32(rg.c_u32(0));
        let _ = v;
        let p = d
            .create_ray_tracing_pipeline(PipelineShaders::raygen_only(rg.finish()), true)
            .unwrap();
        let cmd = d.cmd_trace_rays(&p, 320, 240);
        assert_eq!(
            (cmd.dims.width, cmd.dims.height, cmd.dims.depth),
            (320, 240, 1)
        );
        assert!(cmd.fcc);
    }
}
