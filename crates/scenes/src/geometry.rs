//! Procedural mesh generators for the workloads.

use vksim_bvh::geometry::Triangle;
use vksim_math::Vec3;

/// Two triangles forming an axis-aligned rectangle in the XZ plane at
/// height `y` spanning `[x0, x1] × [z0, z1]`.
pub fn ground_quad(x0: f32, x1: f32, z0: f32, z1: f32, y: f32) -> Vec<Triangle> {
    let a = Vec3::new(x0, y, z0);
    let b = Vec3::new(x1, y, z0);
    let c = Vec3::new(x1, y, z1);
    let d = Vec3::new(x0, y, z1);
    vec![Triangle::new(a, b, c), Triangle::new(a, c, d)]
}

/// A vertical rectangle (wall) facing +z at depth `z`.
pub fn wall_quad(x0: f32, x1: f32, y0: f32, y1: f32, z: f32) -> Vec<Triangle> {
    let a = Vec3::new(x0, y0, z);
    let b = Vec3::new(x1, y0, z);
    let c = Vec3::new(x1, y1, z);
    let d = Vec3::new(x0, y1, z);
    vec![Triangle::new(a, b, c), Triangle::new(a, c, d)]
}

/// A 12-triangle axis-aligned box `[min, max]`.
pub fn box_mesh(min: Vec3, max: Vec3) -> Vec<Triangle> {
    let p = |x: bool, y: bool, z: bool| {
        Vec3::new(
            if x { max.x } else { min.x },
            if y { max.y } else { min.y },
            if z { max.z } else { min.z },
        )
    };
    let quads = [
        // -z / +z
        [
            p(false, false, false),
            p(true, false, false),
            p(true, true, false),
            p(false, true, false),
        ],
        [
            p(false, false, true),
            p(false, true, true),
            p(true, true, true),
            p(true, false, true),
        ],
        // -x / +x
        [
            p(false, false, false),
            p(false, true, false),
            p(false, true, true),
            p(false, false, true),
        ],
        [
            p(true, false, false),
            p(true, false, true),
            p(true, true, true),
            p(true, true, false),
        ],
        // -y / +y
        [
            p(false, false, false),
            p(false, false, true),
            p(true, false, true),
            p(true, false, false),
        ],
        [
            p(false, true, false),
            p(true, true, false),
            p(true, true, true),
            p(false, true, true),
        ],
    ];
    let mut out = Vec::with_capacity(12);
    for [a, b, c, d] in quads {
        out.push(Triangle::new(a, b, c));
        out.push(Triangle::new(a, c, d));
    }
    out
}

/// A tessellated vertical cylinder (column): `segments` sides plus caps.
pub fn column(center: Vec3, radius: f32, height: f32, segments: u32) -> Vec<Triangle> {
    let mut out = Vec::new();
    let n = segments.max(3);
    for i in 0..n {
        let a0 = i as f32 / n as f32 * std::f32::consts::TAU;
        let a1 = (i + 1) as f32 / n as f32 * std::f32::consts::TAU;
        let (s0, c0) = a0.sin_cos();
        let (s1, c1) = a1.sin_cos();
        let b0 = center + Vec3::new(c0 * radius, 0.0, s0 * radius);
        let b1 = center + Vec3::new(c1 * radius, 0.0, s1 * radius);
        let t0 = b0 + Vec3::new(0.0, height, 0.0);
        let t1 = b1 + Vec3::new(0.0, height, 0.0);
        out.push(Triangle::new(b0, b1, t1));
        out.push(Triangle::new(b0, t1, t0));
        // Caps.
        out.push(Triangle::new(center, b1, b0));
        let top_c = center + Vec3::new(0.0, height, 0.0);
        out.push(Triangle::new(top_c, t0, t1));
    }
    out
}

/// An icosphere with `subdivisions` refinement levels: 20 × 4^k triangles.
/// Used as the RTV5 "statue" substitute.
pub fn icosphere(center: Vec3, radius: f32, subdivisions: u32) -> Vec<Triangle> {
    let phi = (1.0 + 5.0f32.sqrt()) / 2.0;
    let verts: Vec<Vec3> = [
        (-1.0, phi, 0.0),
        (1.0, phi, 0.0),
        (-1.0, -phi, 0.0),
        (1.0, -phi, 0.0),
        (0.0, -1.0, phi),
        (0.0, 1.0, phi),
        (0.0, -1.0, -phi),
        (0.0, 1.0, -phi),
        (phi, 0.0, -1.0),
        (phi, 0.0, 1.0),
        (-phi, 0.0, -1.0),
        (-phi, 0.0, 1.0),
    ]
    .iter()
    .map(|&(x, y, z)| Vec3::new(x, y, z).normalized())
    .collect();
    let faces: [(usize, usize, usize); 20] = [
        (0, 11, 5),
        (0, 5, 1),
        (0, 1, 7),
        (0, 7, 10),
        (0, 10, 11),
        (1, 5, 9),
        (5, 11, 4),
        (11, 10, 2),
        (10, 7, 6),
        (7, 1, 8),
        (3, 9, 4),
        (3, 4, 2),
        (3, 2, 6),
        (3, 6, 8),
        (3, 8, 9),
        (4, 9, 5),
        (2, 4, 11),
        (6, 2, 10),
        (8, 6, 7),
        (9, 8, 1),
    ];
    let mut tris: Vec<(Vec3, Vec3, Vec3)> = faces
        .iter()
        .map(|&(a, b, c)| (verts[a], verts[b], verts[c]))
        .collect();
    for _ in 0..subdivisions {
        let mut next = Vec::with_capacity(tris.len() * 4);
        for (a, b, c) in tris {
            let ab = ((a + b) * 0.5).normalized();
            let bc = ((b + c) * 0.5).normalized();
            let ca = ((c + a) * 0.5).normalized();
            next.push((a, ab, ca));
            next.push((ab, b, bc));
            next.push((ca, bc, c));
            next.push((ab, bc, ca));
        }
        tris = next;
    }
    tris.into_iter()
        .map(|(a, b, c)| {
            Triangle::new(
                center + a * radius,
                center + b * radius,
                center + c * radius,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quad_generators_make_two_triangles() {
        assert_eq!(ground_quad(-1.0, 1.0, -1.0, 1.0, 0.0).len(), 2);
        assert_eq!(wall_quad(-1.0, 1.0, 0.0, 2.0, -3.0).len(), 2);
    }

    #[test]
    fn box_has_twelve_triangles_with_correct_bounds() {
        let b = box_mesh(Vec3::ZERO, Vec3::ONE);
        assert_eq!(b.len(), 12);
        let mut lo = Vec3::splat(f32::INFINITY);
        let mut hi = Vec3::splat(f32::NEG_INFINITY);
        for t in &b {
            for v in [t.v0, t.v1, t.v2] {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        assert_eq!(lo, Vec3::ZERO);
        assert_eq!(hi, Vec3::ONE);
    }

    #[test]
    fn column_triangle_count() {
        let c = column(Vec3::ZERO, 1.0, 4.0, 8);
        assert_eq!(c.len(), 8 * 4);
    }

    #[test]
    fn icosphere_counts_grow_geometrically() {
        assert_eq!(icosphere(Vec3::ZERO, 1.0, 0).len(), 20);
        assert_eq!(icosphere(Vec3::ZERO, 1.0, 2).len(), 320);
    }

    #[test]
    fn icosphere_vertices_lie_on_sphere() {
        for t in icosphere(Vec3::new(1.0, 2.0, 3.0), 2.0, 1) {
            for v in [t.v0, t.v1, t.v2] {
                let r = (v - Vec3::new(1.0, 2.0, 3.0)).length();
                assert!((r - 2.0).abs() < 1e-4, "r = {r}");
            }
        }
    }
}
