//! Pinhole camera shared by shaders and the reference renderer.

use vksim_math::{Ray, Vec3};

/// A pinhole camera. The same arithmetic generates rays on both sides of
//  the validation (shader DSL and reference renderer), so images match to
/// float precision.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Camera {
    /// Eye position.
    pub eye: Vec3,
    /// Lower-left corner of the image plane.
    pub lower_left: Vec3,
    /// Image-plane horizontal extent.
    pub horizontal: Vec3,
    /// Image-plane vertical extent.
    pub vertical: Vec3,
}

impl Camera {
    /// Builds a camera from look-at parameters.
    pub fn look_at(eye: Vec3, target: Vec3, up: Vec3, vfov_deg: f32, aspect: f32) -> Self {
        let theta = vfov_deg.to_radians();
        let half_h = (theta / 2.0).tan();
        let half_w = aspect * half_h;
        let w = (eye - target).normalized();
        let u = up.cross(w).normalized();
        let v = w.cross(u);
        Camera {
            eye,
            lower_left: eye - u * half_w - v * half_h - w,
            horizontal: u * (2.0 * half_w),
            vertical: v * (2.0 * half_h),
        }
    }

    /// Serializes to the 16-float uniform layout the raygen shader loads:
    /// `[eye, pad, lower_left, pad, horizontal, pad, vertical, pad]`.
    pub fn to_uniform(&self) -> [f32; 16] {
        let mut out = [0.0f32; 16];
        for (i, v) in [self.eye, self.lower_left, self.horizontal, self.vertical]
            .iter()
            .enumerate()
        {
            out[i * 4] = v.x;
            out[i * 4 + 1] = v.y;
            out[i * 4 + 2] = v.z;
        }
        out
    }

    /// The primary ray through pixel `(px, py)` of a `w`×`h` image —
    /// identical math to the raygen shader.
    pub fn primary_ray(&self, px: u32, py: u32, w: u32, h: u32) -> Ray {
        let u = (px as f32 + 0.5) / w as f32;
        let v = (py as f32 + 0.5) / h as f32;
        let dir = self.lower_left + self.horizontal * u + self.vertical * v - self.eye;
        Ray::with_interval(self.eye, dir, 1e-3, f32::INFINITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cam() -> Camera {
        Camera::look_at(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, Vec3::Y, 60.0, 1.0)
    }

    #[test]
    fn center_ray_points_at_target() {
        let c = cam();
        let r = c.primary_ray(50, 50, 101, 101);
        let d = r.dir.normalized();
        assert!((d - Vec3::new(0.0, 0.0, -1.0)).length() < 0.02, "{d}");
    }

    #[test]
    fn corner_rays_diverge() {
        let c = cam();
        let a = c.primary_ray(0, 0, 100, 100).dir.normalized();
        let b = c.primary_ray(99, 99, 100, 100).dir.normalized();
        assert!(a.dot(b) < 0.99);
        assert!(a.x < 0.0 && a.y < 0.0);
        assert!(b.x > 0.0 && b.y > 0.0);
    }

    #[test]
    fn uniform_layout_is_padded_vec3s() {
        let u = cam().to_uniform();
        assert_eq!(u[0], 0.0);
        assert_eq!(u[2], 5.0); // eye.z
        assert_eq!(u[3], 0.0); // padding
        assert_eq!(u[7], 0.0);
        // horizontal has positive x for this orientation
        assert!(u[8] > 0.0);
    }
}
