//! Reference CPU renderer — the stand-in for the paper's NVIDIA-GPU images.
//!
//! Fig. 2 validates Vulkan-Sim's functional model by comparing rendered
//! pixels against an industry Vulkan implementation (0.3% of pixels
//! differ). Without NVIDIA hardware, the oracle here is an independent CPU
//! ray tracer that mirrors the shader math exactly (same camera, palette,
//! hash, shading formulas and operation order — see [`crate::shaders`] for
//! the shared twins). TRI, REF and EXT are supported; the path-traced
//! RTV5/RTV6 images are characterized by statistics instead (low-sample
//! path tracing is noisy by design, paper §V-A).

use crate::scenes::Workload;
use crate::shaders::{light_dir, palette_rgb, sky_rgb, MATERIAL_MIRROR};
use vksim_bvh::traversal::{traverse, TraversalConfig, TriangleIntersection};
use vksim_bvh::{Blas, Tlas};
use vksim_math::{Ray, Vec3};

/// Packs RGB floats exactly like the shader's quantization.
fn pack(c: Vec3) -> u32 {
    let q = |v: f32| (v.clamp(0.0, 1.0) * 255.0 + 0.5) as u32;
    q(c.x) | (q(c.y) << 8) | (q(c.z) << 16) | 0xFF00_0000
}

/// Normalization with the shader's exact operation order
/// (`1/sqrt(len2)` then multiply, not per-component division).
fn normalize_like_shader(v: Vec3) -> Vec3 {
    let len = (v.x * v.x + v.y * v.y + v.z * v.z).sqrt();
    let inv = 1.0 / len;
    Vec3::new(v.x * inv, v.y * inv, v.z * inv)
}

struct Tracer<'a> {
    tlas: &'a Tlas,
    blases: Vec<&'a Blas>,
}

impl<'a> Tracer<'a> {
    fn hit(&self, ray: &Ray) -> Option<TriangleIntersection> {
        let cfg = TraversalConfig {
            record_events: false,
            ..Default::default()
        };
        traverse(self.tlas, &self.blases, ray, &cfg)
            .expect("reference scenes are well-formed")
            .closest
    }

    fn occluded(&self, ray: &Ray) -> bool {
        let cfg = TraversalConfig {
            record_events: false,
            terminate_on_first_hit: true,
            ..Default::default()
        };
        traverse(self.tlas, &self.blases, ray, &cfg)
            .expect("reference scenes are well-formed")
            .closest
            .is_some()
    }
}

fn sky(dir: Vec3) -> Vec3 {
    sky_rgb(normalize_like_shader(dir).y)
}

/// Renders a workload with the reference renderer.
///
/// # Panics
///
/// Panics for workloads without a reference implementation (RTV5/RTV6).
pub fn render(w: &Workload) -> Vec<u32> {
    let tracer = Tracer {
        tlas: w.device.tlas.as_ref().expect("scene has TLAS"),
        blases: w.device.blases.iter().collect(),
    };
    let shade: &dyn Fn(&Tracer, &Ray, u32, u32) -> Vec3 = match w.name {
        "TRI" => &shade_tri,
        "REF" => &shade_refl,
        "EXT" => &shade_ext,
        other => panic!("no reference renderer for {other}"),
    };
    let mut out = Vec::with_capacity((w.width * w.height) as usize);
    for py in 0..w.height {
        for px in 0..w.width {
            let mut ray = w.camera.primary_ray(px, py, w.width, w.height);
            ray.t_max = 1e30;
            let pid = py * w.width + px;
            out.push(pack(shade(&tracer, &ray, 1, pid)));
        }
    }
    out
}

fn shade_tri(t: &Tracer, ray: &Ray, _depth: u32, _pid: u32) -> Vec3 {
    match t.hit(ray) {
        Some(h) => Vec3::new(1.0 - h.u - h.v, h.u, h.v),
        None => sky(ray.dir),
    }
}

fn probe(t: &Tracer, p: Vec3, n: Vec3, dir: Vec3, t_max: f32) -> f32 {
    let origin = p + n * 1e-3;
    let ray = Ray::with_interval(origin, dir, 1e-3, t_max);
    if t.occluded(&ray) {
        0.0
    } else {
        1.0
    }
}

// `pid` is unused here but the signature must match the shader table's
// `fn(&Tracer, &Ray, u32, u32) -> Vec3` entries.
#[allow(clippy::only_used_in_recursion)]
fn shade_refl(t: &Tracer, ray: &Ray, depth: u32, pid: u32) -> Vec3 {
    let Some(h) = t.hit(ray) else {
        return sky(ray.dir);
    };
    let n = h.world_normal;
    let p = ray.origin + ray.dir * h.t;
    if h.instance_custom_index == MATERIAL_MIRROR {
        if depth < 2 {
            let dn = ray.dir.dot(n);
            let refl = ray.dir - n * (2.0 * dn);
            let sub = Ray::with_interval(p + n * 1e-3, refl, 1e-3, 1e30);
            shade_refl(t, &sub, depth + 1, pid) * 0.9
        } else {
            Vec3::ZERO
        }
    } else {
        let albedo = palette_rgb(h.instance_custom_index);
        let l = light_dir();
        let lit = if depth < 2 {
            probe(t, p, n, l, 1e4)
        } else {
            1.0
        };
        let ndotl = n.dot(l).max(0.0);
        let shade = 0.15 + 0.85 * lit * ndotl;
        albedo * shade
    }
}

fn shade_ext(t: &Tracer, ray: &Ray, depth: u32, pid: u32) -> Vec3 {
    use crate::shaders::{hash_u32_cpu, hash_unit_cpu};
    let Some(h) = t.hit(ray) else {
        return sky(ray.dir);
    };
    let n = h.world_normal;
    let p = ray.origin + ray.dir * h.t;
    let albedo = palette_rgb(h.instance_custom_index);
    let l = light_dir();
    let lit = if depth < 2 {
        probe(t, p, n, l, 1e4)
    } else {
        1.0
    };
    let ndotl = n.dot(l).max(0.0);
    let mut ao_acc = 0.0f32;
    for k in 0..2u32 {
        let seed = hash_u32_cpu(pid * 2 + k);
        let u1 = hash_unit_cpu(seed);
        let s2 = hash_u32_cpu(seed);
        let u2 = hash_unit_cpu(s2);
        let s3 = hash_u32_cpu(s2);
        let u3 = hash_unit_cpu(s3);
        let raw = Vec3::new(
            n.x + (u1 - 0.5) * 1.6,
            n.y + (u2 - 0.5) * 1.6,
            n.z + (u3 - 0.5) * 1.6,
        );
        let dir = normalize_like_shader(raw);
        let open = if depth < 2 {
            probe(t, p, n, dir, 4.0)
        } else {
            1.0
        };
        ao_acc += open;
    }
    let ao = 0.4 + 0.3 * ao_acc;
    let shade = (0.15 + 0.75 * lit * ndotl) * ao;
    albedo * shade
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenes::{build, Scale, WorkloadKind};

    #[test]
    fn tri_reference_has_triangle_and_sky() {
        let w = build(WorkloadKind::Tri, Scale::Test);
        let img = render(&w);
        assert_eq!(img.len(), (w.width * w.height) as usize);
        // Center pixel: on the triangle (not sky).
        let center = img[(w.height / 2 * w.width + w.width / 2) as usize];
        let corner = img[0];
        assert_ne!(center, corner, "triangle differs from sky");
    }

    #[test]
    fn ref_reference_contains_shadowed_and_lit_regions() {
        let w = build(WorkloadKind::Ref, Scale::Test);
        let img = render(&w);
        let distinct: std::collections::HashSet<u32> = img.iter().copied().collect();
        assert!(
            distinct.len() > 10,
            "expect varied shading, got {}",
            distinct.len()
        );
    }

    #[test]
    fn ext_reference_renders() {
        let w = build(WorkloadKind::Ext, Scale::Test);
        let img = render(&w);
        assert_eq!(img.len(), (w.width * w.height) as usize);
        let distinct: std::collections::HashSet<u32> = img.iter().copied().collect();
        assert!(distinct.len() > 10);
    }

    #[test]
    #[should_panic(expected = "no reference renderer")]
    fn rtv5_has_no_reference() {
        let w = build(WorkloadKind::Rtv5, Scale::Test);
        let _ = render(&w);
    }
}
