//! Shared shader-construction helpers and their CPU twins.
//!
//! Every lighting formula exists twice: once emitted through the shader DSL
//! (executed by the simulator) and once as a plain Rust function (used by
//! the reference renderer). The twins use identical constants and operation
//! order so the Fig. 2 pixel-diff validation compares like for like.

use crate::{BINDING_CAMERA, BINDING_FRAMEBUFFER};
use vksim_math::Vec3;
use vksim_shader::builder::{hash_to_unit_f32, hash_u32, ShaderBuilder};
use vksim_shader::ir::{Builtin, Expr, Var};

/// Directional light used by REF and EXT (normalized in both twins).
pub const LIGHT_DIR: [f32; 3] = [0.371_390_7, 0.742_781_35, 0.557_086_03];

/// Mirror material marker (instance custom index).
pub const MATERIAL_MIRROR: u32 = 99;

/// Loads three consecutive f32s from `base + byte_offset`.
pub fn load_vec3(b: &mut ShaderBuilder, base: &Expr, byte_offset: i32) -> [Var; 3] {
    [
        b.var_f32(b.load_f32(base.clone(), byte_offset)),
        b.var_f32(b.load_f32(base.clone(), byte_offset + 4)),
        b.var_f32(b.load_f32(base.clone(), byte_offset + 8)),
    ]
}

/// Dot product of two expression triples.
pub fn dot3(a: [Expr; 3], c: [Expr; 3]) -> Expr {
    let [ax, ay, az] = a;
    let [cx, cy, cz] = c;
    ax * cx + ay * cy + az * cz
}

/// Normalizes an expression triple into variables.
pub fn normalize3(b: &mut ShaderBuilder, v: [Expr; 3]) -> [Var; 3] {
    let x = b.var_f32(v[0].clone());
    let y = b.var_f32(v[1].clone());
    let z = b.var_f32(v[2].clone());
    let len = b.var_f32((b.v(x) * b.v(x) + b.v(y) * b.v(y) + b.v(z) * b.v(z)).sqrt());
    let inv = b.var_f32(b.c_f32(1.0) / b.v(len));
    [
        b.var_f32(b.v(x) * b.v(inv)),
        b.var_f32(b.v(y) * b.v(inv)),
        b.var_f32(b.v(z) * b.v(inv)),
    ]
}

/// Emits the camera-ray prologue: loads the camera uniform (binding 1) and
/// computes the primary ray for this thread's pixel. Returns
/// `(origin, dir, pixel_index)`.
pub fn camera_ray(b: &mut ShaderBuilder) -> ([Var; 3], [Var; 3], Var) {
    let cam = b.var_u32(b.buffer_base(BINDING_CAMERA));
    let eye = load_vec3(b, &b.v(cam), 0);
    let ll = load_vec3(b, &b.v(cam), 16);
    let hor = load_vec3(b, &b.v(cam), 32);
    let ver = load_vec3(b, &b.v(cam), 48);
    let x = b.var_f32(b.launch_id(0).to_f32());
    let y = b.var_f32(b.launch_id(1).to_f32());
    let w = b.var_f32(b.launch_size(0).to_f32());
    let h = b.var_f32(b.launch_size(1).to_f32());
    let u = b.var_f32((b.v(x) + b.c_f32(0.5)) / b.v(w));
    let v = b.var_f32((b.v(y) + b.c_f32(0.5)) / b.v(h));
    let mut dir = [eye[0]; 3];
    for i in 0..3 {
        dir[i] = b.var_f32(b.v(ll[i]) + b.v(hor[i]) * b.v(u) + b.v(ver[i]) * b.v(v) - b.v(eye[i]));
    }
    let pixel = b.var_u32(b.launch_id(1) * b.launch_size(0) + b.launch_id(0));
    (eye, dir, pixel)
}

/// Packs an RGB expression triple into RGBA8 and stores it at
/// `framebuffer[pixel]`.
pub fn store_pixel(b: &mut ShaderBuilder, pixel: Var, rgb: [Expr; 3]) {
    let q = |b: &mut ShaderBuilder, e: Expr| -> Var {
        b.var_u32((e.max(b.c_f32(0.0)).min(b.c_f32(1.0)) * b.c_f32(255.0) + b.c_f32(0.5)).to_u32())
    };
    let [r, g, bl] = rgb;
    let r = q(b, r);
    let g = q(b, g);
    let bl = q(b, bl);
    let packed = b.var_u32(
        b.v(r)
            .bitor(b.v(g).shl(b.c_u32(8)))
            .bitor(b.v(bl).shl(b.c_u32(16)))
            .bitor(b.c_u32(0xFF00_0000)),
    );
    let addr = b.var_u32(b.buffer_base(BINDING_FRAMEBUFFER) + b.v(pixel) * b.c_u32(4));
    b.store(b.v(addr), 0, b.v(packed));
}

/// DSL twin of [`palette_rgb`]: deterministic albedo from a material id.
pub fn palette(b: &mut ShaderBuilder, id: Expr) -> [Var; 3] {
    let h1 = b.var_u32(hash_u32(b, id));
    let h2 = b.var_u32(hash_u32(b, b.v(h1)));
    let h3 = b.var_u32(hash_u32(b, b.v(h2)));
    let unit = |b: &mut ShaderBuilder, h: Var| -> Expr { hash_to_unit_f32(b, b.v(h)) };
    let r = unit(b, h1);
    let g = unit(b, h2);
    let bl = unit(b, h3);
    [
        b.var_f32(b.c_f32(0.25) + b.c_f32(0.6) * r),
        b.var_f32(b.c_f32(0.25) + b.c_f32(0.6) * g),
        b.var_f32(b.c_f32(0.25) + b.c_f32(0.6) * bl),
    ]
}

/// DSL twin of [`sky_rgb`]: background gradient from the ray direction's
/// (unnormalized) y component mapped through a squash.
pub fn sky_color(b: &mut ShaderBuilder, dy_unit: Expr) -> [Expr; 3] {
    // t in [0,1] from unit-ish dy.
    let t = b.c_f32(0.5) * (dy_unit + b.c_f32(1.0));
    [
        b.c_f32(0.30) + b.c_f32(0.30) * t.clone(),
        b.c_f32(0.40) + b.c_f32(0.30) * t.clone(),
        b.c_f32(0.55) + b.c_f32(0.35) * t,
    ]
}

/// Hit point `origin + t * dir` from the current trace frame.
pub fn hit_point(b: &mut ShaderBuilder) -> [Var; 3] {
    let t = b.var_f32(b.builtin(Builtin::HitT));
    [0u8, 1, 2].map(|d| {
        b.var_f32(b.builtin(Builtin::RayOrigin(d)) + b.builtin(Builtin::RayDirection(d)) * b.v(t))
    })
}

// ---------------- CPU twins (used by the reference renderer) ----------------

/// Rust twin of the DSL integer hash in `vksim_shader::builder::hash_u32`.
pub fn hash_u32_cpu(mut x: u32) -> u32 {
    x ^= x >> 16;
    x = x.wrapping_mul(0x7feb_352d);
    x ^= x >> 15;
    x = x.wrapping_mul(0x846c_a68b);
    x ^ (x >> 16)
}

/// Rust twin of `hash_to_unit_f32`.
pub fn hash_unit_cpu(h: u32) -> f32 {
    (h >> 8) as f32 * (1.0 / 16_777_216.0)
}

/// Deterministic albedo from a material id (twin of [`palette`]).
pub fn palette_rgb(id: u32) -> Vec3 {
    let h1 = hash_u32_cpu(id);
    let h2 = hash_u32_cpu(h1);
    let h3 = hash_u32_cpu(h2);
    Vec3::new(
        0.25 + 0.6 * hash_unit_cpu(h1),
        0.25 + 0.6 * hash_unit_cpu(h2),
        0.25 + 0.6 * hash_unit_cpu(h3),
    )
}

/// Background gradient (twin of [`sky_color`]).
pub fn sky_rgb(dy_unit: f32) -> Vec3 {
    let t = 0.5 * (dy_unit + 1.0);
    Vec3::new(0.30 + 0.30 * t, 0.40 + 0.30 * t, 0.55 + 0.35 * t)
}

/// The normalized light direction as a vector.
pub fn light_dir() -> Vec3 {
    Vec3::new(LIGHT_DIR[0], LIGHT_DIR[1], LIGHT_DIR[2])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_hash_matches_reference_values() {
        // Spot values; the DSL twin is verified end-to-end by the image
        // comparison tests in the scenes module.
        assert_ne!(hash_u32_cpu(1), hash_u32_cpu(2));
        assert_eq!(hash_u32_cpu(42), hash_u32_cpu(42));
        let u = hash_unit_cpu(hash_u32_cpu(7));
        assert!((0.0..1.0).contains(&u));
    }

    #[test]
    fn palette_is_deterministic_and_bounded() {
        let a = palette_rgb(5);
        let b = palette_rgb(5);
        assert_eq!(a, b);
        for c in [a.x, a.y, a.z] {
            assert!((0.25..=0.85).contains(&c));
        }
        assert_ne!(palette_rgb(1), palette_rgb(2));
    }

    #[test]
    fn sky_gradient_monotonic_in_y() {
        assert!(sky_rgb(1.0).z > sky_rgb(-1.0).z);
        assert!(sky_rgb(0.0).x > 0.0);
    }

    #[test]
    fn light_dir_is_unit() {
        assert!((light_dir().length() - 1.0).abs() < 1e-5);
    }
}
