//! The five evaluation workloads (paper Table IV).

use crate::camera::Camera;
use crate::geometry::{box_mesh, column, ground_quad, icosphere, wall_quad};
use crate::shaders::*;
use crate::{BINDING_CAMERA, BINDING_FRAMEBUFFER, BINDING_PRIMDATA};
use vksim_bvh::geometry::{BlasGeometry, ProceduralPrimitive, Triangle};
use vksim_bvh::Instance;
use vksim_math::{Aabb, Mat4x3, Vec3};
use vksim_shader::builder::{hash_to_unit_f32, hash_u32, ShaderBuilder};
use vksim_shader::ir::{Builtin, Expr, RtIdxQuery, ShaderKind, Var};
use vksim_shader::PipelineShaders;
use vksim_vulkan::{Device, TraceRaysCommand};

/// Which workload to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// Single ray-traced triangle (primary rays only).
    Tri,
    /// Reflections + shadows (50 primitives).
    Ref,
    /// Sponza-like architectural scene (primary + shadow + AO rays).
    Ext,
    /// Statue-like mesh, path traced.
    Rtv5,
    /// Procedural spheres and cubes with two intersection shaders.
    Rtv6,
}

impl WorkloadKind {
    /// All five workloads, evaluation order.
    pub const ALL: [WorkloadKind; 5] = [
        WorkloadKind::Tri,
        WorkloadKind::Ref,
        WorkloadKind::Ext,
        WorkloadKind::Rtv5,
        WorkloadKind::Rtv6,
    ];

    /// Paper name.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Tri => "TRI",
            WorkloadKind::Ref => "REF",
            WorkloadKind::Ext => "EXT",
            WorkloadKind::Rtv5 => "RTV5",
            WorkloadKind::Rtv6 => "RTV6",
        }
    }
}

/// Scene/launch size.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Tiny: unit-test sized (seconds even under the timing model).
    Test,
    /// Medium: benchmark runs.
    Small,
    /// Paper-scale primitive counts (functional characterization).
    Paper,
}

impl Scale {
    fn resolution(self) -> (u32, u32) {
        match self {
            Scale::Test => (32, 32),
            Scale::Small => (96, 96),
            Scale::Paper => (224, 160),
        }
    }
}

/// A fully assembled workload: device (scene + descriptors) and the
/// recorded trace command.
#[derive(Debug)]
pub struct Workload {
    /// Paper name (TRI/REF/EXT/RTV5/RTV6).
    pub name: &'static str,
    /// The logical device holding the scene.
    pub device: Device,
    /// The recorded `vkCmdTraceRaysKHR`.
    pub cmd: TraceRaysCommand,
    /// Framebuffer address.
    pub fb_addr: u64,
    /// Image width.
    pub width: u32,
    /// Image height.
    pub height: u32,
    /// Total primitive count (Table IV row).
    pub primitive_count: usize,
    /// Combined TLAS + deepest-BLAS depth (Table IV row).
    pub bvh_depth: u32,
    /// The camera used (for the reference renderer).
    pub camera: Camera,
    /// The shader set (kept for re-translation, e.g. FCC on/off).
    pub shaders: PipelineShaders,
}

impl Workload {
    /// Re-records the trace command with FCC lowering toggled (case study
    /// §IV-A).
    ///
    /// # Panics
    ///
    /// Panics if the pipeline fails to re-translate (cannot happen for a
    /// workload that built once).
    pub fn with_fcc(&mut self, fcc: bool) -> TraceRaysCommand {
        let pipeline = self
            .device
            .create_ray_tracing_pipeline(self.shaders.clone(), fcc)
            .expect("retranslation");
        self.device
            .cmd_trace_rays(&pipeline, self.width, self.height)
    }
}

/// Builds one of the five workloads at the given scale.
pub fn build(kind: WorkloadKind, scale: Scale) -> Workload {
    match kind {
        WorkloadKind::Tri => build_tri(scale),
        WorkloadKind::Ref => build_ref(scale),
        WorkloadKind::Ext => build_ext(scale),
        WorkloadKind::Rtv5 => build_rtv5(scale),
        WorkloadKind::Rtv6 => build_rtv6(scale),
    }
}

fn finish_workload(
    name: &'static str,
    mut device: Device,
    shaders: PipelineShaders,
    camera: Camera,
    width: u32,
    height: u32,
    fcc: bool,
) -> Workload {
    let fb = device.alloc_buffer(width as u64 * height as u64 * 4);
    device.bind_descriptor(BINDING_FRAMEBUFFER, fb);
    let cam_buf = device.alloc_buffer(64);
    device.upload_f32(cam_buf, &camera.to_uniform());
    device.bind_descriptor(BINDING_CAMERA, cam_buf);
    let pipeline = device
        .create_ray_tracing_pipeline(shaders.clone(), fcc)
        .expect("pipeline translation");
    let cmd = device.cmd_trace_rays(&pipeline, width, height);
    let primitive_count: usize = device
        .blases
        .iter()
        .map(|b| b.geometry.primitive_count())
        .sum();
    let blas_refs: Vec<&vksim_bvh::Blas> = device.blases.iter().collect();
    let bvh_depth = device
        .tlas
        .as_ref()
        .map(|t| t.combined_depth(&blas_refs))
        .unwrap_or(0);
    Workload {
        name,
        device,
        cmd,
        fb_addr: fb,
        width,
        height,
        primitive_count,
        bvh_depth,
        camera,
        shaders,
    }
}

/// Miss shader writing the sky gradient into the incoming color payload.
fn sky_miss() -> vksim_shader::ir::ShaderModule {
    let mut b = ShaderBuilder::new(ShaderKind::Miss);
    let d = [0u8, 1, 2].map(|i| b.var_f32(b.builtin(Builtin::RayDirection(i))));
    let d_exprs = d.map(Expr::Var);
    let n = normalize3(&mut b, d_exprs);
    let ny = Expr::Var(n[1]);
    let rgb = sky_color(&mut b, ny);
    for (slot, c) in rgb.into_iter().enumerate() {
        b.set_payload_in(slot as u8, c);
    }
    b.finish()
}

/// Occlusion miss shader: sets payload slot 7 to 1.0 ("unoccluded").
fn occlusion_miss() -> vksim_shader::ir::ShaderModule {
    let mut b = ShaderBuilder::new(ShaderKind::Miss);
    b.set_payload_in(7, b.c_f32(1.0));
    b.finish()
}

/// Emits the occlusion-probe protocol into a closest-hit shader: traces a
/// shadow feeler toward `dir` from `point` (only below the recursion limit)
/// and leaves 1.0/0.0 in `lit`.
fn occlusion_probe(
    b: &mut ShaderBuilder,
    point: &[Var; 3],
    normal: &[Var; 3],
    dir: [Expr; 3],
    t_max: f32,
    depth_limit: u32,
) -> Var {
    b.set_payload(7, b.c_f32(0.0));
    let origin = [0, 1, 2].map(|i| b.var_f32(b.v(point[i]) + b.v(normal[i]) * b.c_f32(1e-3)));
    let depth_ok = b.builtin(Builtin::RecursionDepth).lt(b.c_u32(depth_limit));
    let dir2 = dir.clone();
    b.if_(depth_ok.clone(), move |b| {
        b.trace_ray(
            [b.v(origin[0]), b.v(origin[1]), b.v(origin[2])],
            dir2,
            b.c_f32(1e-3),
            b.c_f32(t_max),
            b.c_u32(1), // terminate on first hit
            1,          // occlusion miss shader
        );
    });
    b.var_f32(depth_ok.select(b.payload(7), b.c_f32(1.0)))
}

// ------------------------------- TRI -------------------------------

fn build_tri(scale: Scale) -> Workload {
    let (w, h) = scale.resolution();
    let mut device = Device::new();
    let blas = device.create_blas(BlasGeometry::triangles(vec![Triangle::new(
        Vec3::new(-1.0, -1.0, 0.0),
        Vec3::new(1.0, -1.0, 0.0),
        Vec3::new(0.0, 1.0, 0.0),
    )]));
    device.create_tlas(vec![Instance::new(blas, Mat4x3::IDENTITY)]);
    let camera = Camera::look_at(
        Vec3::new(0.0, 0.0, 2.5),
        Vec3::ZERO,
        Vec3::Y,
        60.0,
        w as f32 / h as f32,
    );

    let mut rg = ShaderBuilder::new(ShaderKind::RayGen);
    let (o, d, pixel) = camera_ray(&mut rg);
    rg.trace_ray(
        [rg.v(o[0]), rg.v(o[1]), rg.v(o[2])],
        [rg.v(d[0]), rg.v(d[1]), rg.v(d[2])],
        rg.c_f32(1e-3),
        rg.c_f32(1e30),
        rg.c_u32(0),
        0,
    );
    let rgb = [rg.payload(0), rg.payload(1), rg.payload(2)];
    store_pixel(&mut rg, pixel, rgb);

    // Classic barycentric-color triangle.
    let mut ch = ShaderBuilder::new(ShaderKind::ClosestHit);
    let u = ch.var_f32(ch.builtin(Builtin::HitU));
    let v = ch.var_f32(ch.builtin(Builtin::HitV));
    ch.set_payload_in(0, ch.c_f32(1.0) - ch.v(u) - ch.v(v));
    ch.set_payload_in(1, ch.v(u));
    ch.set_payload_in(2, ch.v(v));

    let shaders = PipelineShaders {
        raygen: rg.finish(),
        miss: vec![sky_miss()],
        closest_hit: vec![ch.finish()],
        intersection: vec![],
        any_hit: vec![],
        max_recursion_depth: 1,
    };
    finish_workload("TRI", device, shaders, camera, w, h, false)
}

// ------------------------------- REF -------------------------------

fn build_ref(scale: Scale) -> Workload {
    let (w, h) = scale.resolution();
    let mut device = Device::new();
    // Ground (2) + 4 boxes (48) = 50 primitives (Table IV).
    let ground = device.create_blas(BlasGeometry::triangles(ground_quad(
        -12.0, 12.0, -12.0, 12.0, 0.0,
    )));
    let boxes: Vec<u32> = (0..4)
        .map(|i| {
            let _ = i;
            device.create_blas(BlasGeometry::triangles(box_mesh(
                Vec3::new(-0.8, 0.0, -0.8),
                Vec3::new(0.8, 1.6, 0.8),
            )))
        })
        .collect();
    let mut instances = vec![Instance::new(ground, Mat4x3::IDENTITY).with_custom_index(1)];
    let spots = [
        (Vec3::new(-2.5, 0.0, 0.0), 2u32),
        (Vec3::new(0.0, 0.0, -2.0), MATERIAL_MIRROR),
        (Vec3::new(2.5, 0.0, 0.5), 3),
        (Vec3::new(0.5, 0.0, 2.5), 4),
    ];
    for (i, (pos, material)) in spots.iter().enumerate() {
        instances
            .push(Instance::new(boxes[i], Mat4x3::translation(*pos)).with_custom_index(*material));
    }
    device.create_tlas(instances);
    let camera = Camera::look_at(
        Vec3::new(5.0, 3.5, 6.5),
        Vec3::new(0.0, 0.8, 0.0),
        Vec3::Y,
        50.0,
        w as f32 / h as f32,
    );

    let mut rg = ShaderBuilder::new(ShaderKind::RayGen);
    let (o, d, pixel) = camera_ray(&mut rg);
    rg.trace_ray(
        [rg.v(o[0]), rg.v(o[1]), rg.v(o[2])],
        [rg.v(d[0]), rg.v(d[1]), rg.v(d[2])],
        rg.c_f32(1e-3),
        rg.c_f32(1e30),
        rg.c_u32(0),
        0,
    );
    let rgb = [rg.payload(0), rg.payload(1), rg.payload(2)];
    store_pixel(&mut rg, pixel, rgb);

    // Closest-hit: mirror boxes reflect, everything else is diffuse with a
    // shadow ray — the "mirror reflections and shadows rendered by
    // secondary rays" of the paper's REF.
    let mut ch = ShaderBuilder::new(ShaderKind::ClosestHit);
    let n = [0u8, 1, 2].map(|i| ch.var_f32(ch.builtin(Builtin::HitWorldNormal(i))));
    let p = hit_point(&mut ch);
    let custom = ch.var_u32(ch.builtin(Builtin::HitInstanceCustomIndex));
    let is_mirror = ch.v(custom).eq_(ch.c_u32(MATERIAL_MIRROR));
    ch.if_else(
        is_mirror,
        |ch| {
            // refl = d - 2 (d . n) n
            let d = [0u8, 1, 2].map(|i| ch.var_f32(ch.builtin(Builtin::RayDirection(i))));
            let dn = ch.var_f32(dot3(d.map(|v| ch.v(v)), n.map(|v| ch.v(v))));
            let refl =
                [0, 1, 2].map(|i| ch.var_f32(ch.v(d[i]) - ch.c_f32(2.0) * ch.v(dn) * ch.v(n[i])));
            let org = [0, 1, 2].map(|i| ch.var_f32(ch.v(p[i]) + ch.v(n[i]) * ch.c_f32(1e-3)));
            for slot in 0..3u8 {
                ch.set_payload(slot, ch.c_f32(0.0));
            }
            let depth_ok = ch.builtin(Builtin::RecursionDepth).lt(ch.c_u32(2));
            ch.if_(depth_ok, |ch| {
                ch.trace_ray(
                    [ch.v(org[0]), ch.v(org[1]), ch.v(org[2])],
                    [ch.v(refl[0]), ch.v(refl[1]), ch.v(refl[2])],
                    ch.c_f32(1e-3),
                    ch.c_f32(1e30),
                    ch.c_u32(0),
                    0,
                );
            });
            for slot in 0..3u8 {
                ch.set_payload_in(slot, ch.c_f32(0.9) * ch.payload(slot));
            }
        },
        |ch| {
            let albedo = palette(ch, ch.v(custom));
            let l = [
                ch.c_f32(LIGHT_DIR[0]),
                ch.c_f32(LIGHT_DIR[1]),
                ch.c_f32(LIGHT_DIR[2]),
            ];
            let lit = occlusion_probe(ch, &p, &n, l.clone(), 1e4, 2);
            let ndotl = ch.var_f32(dot3(n.map(|v| ch.v(v)), l).max(ch.c_f32(0.0)));
            let shade = ch.var_f32(ch.c_f32(0.15) + ch.c_f32(0.85) * ch.v(lit) * ch.v(ndotl));
            for slot in 0..3u8 {
                ch.set_payload_in(slot, ch.v(albedo[slot as usize]) * ch.v(shade));
            }
        },
    );

    let shaders = PipelineShaders {
        raygen: rg.finish(),
        miss: vec![sky_miss(), occlusion_miss()],
        closest_hit: vec![ch.finish()],
        intersection: vec![],
        any_hit: vec![],
        max_recursion_depth: 3,
    };
    finish_workload("REF", device, shaders, camera, w, h, false)
}

// ------------------------------- EXT -------------------------------

fn build_ext(scale: Scale) -> Workload {
    let (w, h) = scale.resolution();
    // Column grid sized per scale; Paper lands at ≈283 k primitives like
    // Sponza (Table IV).
    let (cols_x, cols_z, segments, stories) = match scale {
        Scale::Test => (2, 2, 6, 1),
        Scale::Small => (6, 3, 10, 2),
        Scale::Paper => (24, 12, 41, 6),
    };
    let mut tris = Vec::new();
    let extent_x = cols_x as f32 * 3.0;
    let extent_z = cols_z as f32 * 3.0;
    tris.extend(ground_quad(-extent_x, extent_x, -extent_z, extent_z, 0.0));
    tris.extend(wall_quad(-extent_x, extent_x, 0.0, 10.0, -extent_z));
    tris.extend(wall_quad(-extent_x, extent_x, 0.0, 10.0, extent_z));
    for story in 0..stories {
        let y = story as f32 * 3.2;
        for ix in 0..cols_x {
            for iz in 0..cols_z {
                let x = (ix as f32 - cols_x as f32 / 2.0) * 3.0 + 1.5;
                let z = (iz as f32 - cols_z as f32 / 2.0) * 3.0 + 1.5;
                tris.extend(column(Vec3::new(x, y, z), 0.45, 3.0, segments));
            }
        }
    }
    let mut device = Device::new();
    let atrium = device.create_blas(BlasGeometry::triangles(tris));
    device.create_tlas(vec![
        Instance::new(atrium, Mat4x3::IDENTITY).with_custom_index(7)
    ]);
    let camera = Camera::look_at(
        Vec3::new(-extent_x * 0.6, 4.5, extent_z * 0.9),
        Vec3::new(0.0, 1.5, 0.0),
        Vec3::Y,
        55.0,
        w as f32 / h as f32,
    );

    let mut rg = ShaderBuilder::new(ShaderKind::RayGen);
    let (o, d, pixel) = camera_ray(&mut rg);
    rg.trace_ray(
        [rg.v(o[0]), rg.v(o[1]), rg.v(o[2])],
        [rg.v(d[0]), rg.v(d[1]), rg.v(d[2])],
        rg.c_f32(1e-3),
        rg.c_f32(1e30),
        rg.c_u32(0),
        0,
    );
    let rgb = [rg.payload(0), rg.payload(1), rg.payload(2)];
    store_pixel(&mut rg, pixel, rgb);

    // Closest-hit: diffuse + shadow ray + 2 ambient-occlusion rays (the
    // paper's EXT uses secondary, shadow and AO rays).
    let mut ch = ShaderBuilder::new(ShaderKind::ClosestHit);
    let n = [0u8, 1, 2].map(|i| ch.var_f32(ch.builtin(Builtin::HitWorldNormal(i))));
    let p = hit_point(&mut ch);
    let custom = ch.var_u32(ch.builtin(Builtin::HitInstanceCustomIndex));
    let custom_e = Expr::Var(custom);
    let albedo = palette(&mut ch, custom_e);
    let l = [
        ch.c_f32(LIGHT_DIR[0]),
        ch.c_f32(LIGHT_DIR[1]),
        ch.c_f32(LIGHT_DIR[2]),
    ];
    let lit = occlusion_probe(&mut ch, &p, &n, l.clone(), 1e4, 2);
    let ndotl = ch.var_f32(dot3(n.map(|v| ch.v(v)), l).max(ch.c_f32(0.0)));
    // Two AO feelers with hashed directions; the paper notes AO rays are
    // the bulk of EXT (59%) and highly incoherent.
    let pid = ch.var_u32(ch.launch_id(1) * ch.launch_size(0) + ch.launch_id(0));
    let ao_acc = ch.var_f32(ch.c_f32(0.0));
    for k in 0..2u32 {
        let seed = ch.var_u32(hash_u32(&ch, ch.v(pid) * ch.c_u32(2) + ch.c_u32(k)));
        let u1 = ch.var_f32(hash_to_unit_f32(&ch, ch.v(seed)));
        let s2 = ch.var_u32(hash_u32(&ch, ch.v(seed)));
        let u2 = ch.var_f32(hash_to_unit_f32(&ch, ch.v(s2)));
        let s3 = ch.var_u32(hash_u32(&ch, ch.v(s2)));
        let u3 = ch.var_f32(hash_to_unit_f32(&ch, ch.v(s3)));
        let us = [u1, u2, u3];
        let ao_dir_raw: [Expr; 3] =
            [0, 1, 2].map(|i| ch.v(n[i]) + (ch.v(us[i]) - ch.c_f32(0.5)) * ch.c_f32(1.6));
        let ao_dir = normalize3(&mut ch, ao_dir_raw);
        let ao_dir_e = [
            Expr::Var(ao_dir[0]),
            Expr::Var(ao_dir[1]),
            Expr::Var(ao_dir[2]),
        ];
        let open = occlusion_probe(&mut ch, &p, &n, ao_dir_e, 4.0, 2);
        ch.set(ao_acc, ch.v(ao_acc) + ch.v(open));
    }
    let ao = ch.var_f32(ch.c_f32(0.4) + ch.c_f32(0.3) * ch.v(ao_acc));
    let shade = ch.var_f32((ch.c_f32(0.15) + ch.c_f32(0.75) * ch.v(lit) * ch.v(ndotl)) * ch.v(ao));
    for slot in 0..3u8 {
        ch.set_payload_in(slot, ch.v(albedo[slot as usize]) * ch.v(shade));
    }

    let shaders = PipelineShaders {
        raygen: rg.finish(),
        miss: vec![sky_miss(), occlusion_miss()],
        closest_hit: vec![ch.finish()],
        intersection: vec![],
        any_hit: vec![],
        max_recursion_depth: 2,
    };
    finish_workload("EXT", device, shaders, camera, w, h, false)
}

// ----------------------- path-tracing raygen -----------------------

/// Iterative path-tracing raygen shared by RTV5/RTV6: bounces rays while
/// the hit shaders keep the path alive through the payload protocol
/// (0-2 segment color, 3-5 scatter direction, 6 alive flag, 7 hit t).
fn path_trace_raygen(bounces: u32) -> vksim_shader::ir::ShaderModule {
    let mut rg = ShaderBuilder::new(ShaderKind::RayGen);
    let (o0, d0, pixel) = camera_ray(&mut rg);
    let o = [0, 1, 2].map(|i| rg.var_f32(rg.v(o0[i])));
    let d = [0, 1, 2].map(|i| rg.var_f32(rg.v(d0[i])));
    let atten = [0, 1, 2].map(|_| rg.var_f32(rg.c_f32(1.0)));
    let color = [0, 1, 2].map(|_| rg.var_f32(rg.c_f32(0.0)));
    let done = rg.var_u32(rg.c_u32(0));
    let bounce = rg.var_u32(rg.c_u32(0));
    let cond = rg
        .v(done)
        .eq_(rg.c_u32(0))
        .and(rg.v(bounce).lt(rg.c_u32(bounces)));
    rg.while_(cond, |rg| {
        rg.trace_ray(
            [rg.v(o[0]), rg.v(o[1]), rg.v(o[2])],
            [rg.v(d[0]), rg.v(d[1]), rg.v(d[2])],
            rg.c_f32(1e-3),
            rg.c_f32(1e30),
            rg.c_u32(0),
            0,
        );
        let seg = [0u8, 1, 2].map(|s| rg.var_f32(rg.payload(s)));
        let alive = rg.var_f32(rg.payload(6));
        rg.if_else(
            rg.v(alive).gt(rg.c_f32(0.5)),
            |rg| {
                // Continue the path: attenuate, move to the hit point,
                // follow the scatter direction.
                let t = rg.var_f32(rg.payload(7));
                for i in 0..3 {
                    rg.set(atten[i], rg.v(atten[i]) * rg.v(seg[i]));
                    rg.set(o[i], rg.v(o[i]) + rg.v(d[i]) * rg.v(t));
                }
                for (i, slot) in (3u8..6).enumerate() {
                    rg.set(d[i], rg.payload(slot));
                    // Offset along the new direction to escape the surface.
                    rg.set(o[i], rg.v(o[i]) + rg.v(d[i]) * rg.c_f32(1e-3));
                }
            },
            |rg| {
                // Terminated (sky): accumulate and stop.
                for i in 0..3 {
                    rg.set(color[i], rg.v(atten[i]) * rg.v(seg[i]));
                }
                rg.set(done, rg.c_u32(1));
            },
        );
        rg.set(bounce, rg.v(bounce) + rg.c_u32(1));
    });
    let rgb = [
        Expr::Var(color[0]),
        Expr::Var(color[1]),
        Expr::Var(color[2]),
    ];
    store_pixel(&mut rg, pixel, rgb);
    rg.finish()
}

/// Path-tracer miss: sky emission, path terminated.
fn path_trace_miss() -> vksim_shader::ir::ShaderModule {
    let mut b = ShaderBuilder::new(ShaderKind::Miss);
    let d = [0u8, 1, 2].map(|i| b.var_f32(b.builtin(Builtin::RayDirection(i))));
    let d_exprs = d.map(Expr::Var);
    let n = normalize3(&mut b, d_exprs);
    let ny = Expr::Var(n[1]);
    let rgb = sky_color(&mut b, ny);
    for (slot, c) in rgb.into_iter().enumerate() {
        b.set_payload_in(slot as u8, c);
    }
    b.set_payload_in(6, b.c_f32(0.0));
    b.finish()
}

/// Emits the Lambertian scatter tail of a path-tracing closest-hit: writes
/// albedo, a hashed scatter direction around `n`, alive flag and hit t.
fn scatter_tail(ch: &mut ShaderBuilder, n: &[Var; 3], albedo: &[Var; 3]) {
    let pid = ch.var_u32(ch.launch_id(1) * ch.launch_size(0) + ch.launch_id(0));
    let t = ch.var_f32(ch.builtin(Builtin::HitT));
    let tq = ch.var_u32((ch.v(t) * ch.c_f32(1024.0)).to_u32());
    let seed = ch.var_u32(hash_u32(
        ch,
        ch.v(pid).bitxor(ch.v(tq) * ch.c_u32(2654435761)),
    ));
    let u1 = ch.var_f32(hash_to_unit_f32(ch, ch.v(seed)));
    let s2 = ch.var_u32(hash_u32(ch, ch.v(seed)));
    let u2 = ch.var_f32(hash_to_unit_f32(ch, ch.v(s2)));
    let s3 = ch.var_u32(hash_u32(ch, ch.v(s2)));
    let u3 = ch.var_f32(hash_to_unit_f32(ch, ch.v(s3)));
    let us = [u1, u2, u3];
    let raw: [vksim_shader::ir::Expr; 3] =
        [0, 1, 2].map(|i| ch.v(n[i]) + (ch.v(us[i]) - ch.c_f32(0.5)) * ch.c_f32(1.8));
    let scatter = normalize3(ch, raw);
    for slot in 0..3u8 {
        ch.set_payload_in(slot, ch.v(albedo[slot as usize]));
    }
    for (i, slot) in (3u8..6).enumerate() {
        ch.set_payload_in(slot, ch.v(scatter[i]));
    }
    ch.set_payload_in(6, ch.c_f32(1.0));
    ch.set_payload_in(7, ch.v(t));
}

// ------------------------------- RTV5 -------------------------------

fn build_rtv5(scale: Scale) -> Workload {
    let (w, h) = scale.resolution();
    let subdivisions = match scale {
        Scale::Test => 1,
        Scale::Small => 3,
        Scale::Paper => 7, // 20 * 4^7 = 327,680 triangles: statue-scale
    };
    let mut tris = icosphere(Vec3::new(0.0, 1.0, 0.0), 1.0, subdivisions);
    tris.extend(ground_quad(-20.0, 20.0, -20.0, 20.0, 0.0));
    let mut device = Device::new();
    let statue = device.create_blas(BlasGeometry::triangles(tris));
    device.create_tlas(vec![
        Instance::new(statue, Mat4x3::IDENTITY).with_custom_index(11)
    ]);
    let camera = Camera::look_at(
        Vec3::new(0.0, 1.6, 4.0),
        Vec3::new(0.0, 1.0, 0.0),
        Vec3::Y,
        45.0,
        w as f32 / h as f32,
    );

    // Closest-hit: Lambertian scatter (incoherent bounces, paper §VI-B:
    // "secondary rays are generated by scattering randomly").
    let mut ch = ShaderBuilder::new(ShaderKind::ClosestHit);
    let n = [0u8, 1, 2].map(|i| ch.var_f32(ch.builtin(Builtin::HitWorldNormal(i))));
    let custom = ch.var_u32(ch.builtin(Builtin::HitInstanceCustomIndex));
    let custom_e = Expr::Var(custom);
    let albedo = palette(&mut ch, custom_e);
    scatter_tail(&mut ch, &n, &albedo);

    let shaders = PipelineShaders {
        raygen: path_trace_raygen(3),
        miss: vec![path_trace_miss()],
        closest_hit: vec![ch.finish()],
        intersection: vec![],
        any_hit: vec![],
        max_recursion_depth: 1,
    };
    finish_workload("RTV5", device, shaders, camera, w, h, false)
}

// ------------------------------- RTV6 -------------------------------

/// Procedural-primitive record: `[cx, cy, cz, size, r, g, b, kind]`.
const PRIM_STRIDE: u32 = 32;

fn build_rtv6(scale: Scale) -> Workload {
    let (w, h) = scale.resolution();
    let target = match scale {
        Scale::Test => 16usize,
        Scale::Small => 256,
        Scale::Paper => 4080, // Table IV's RTV6 primitive count
    };
    let grid = (target as f32).sqrt().ceil() as usize;
    let mut prims = Vec::new();
    let mut data: Vec<f32> = Vec::new();
    let mut i = 0usize;
    'outer: for gz in 0..grid {
        for gx in 0..grid {
            if i >= target {
                break 'outer;
            }
            let x = (gx as f32 - grid as f32 / 2.0) * 1.5;
            let z = (gz as f32 - grid as f32 / 2.0) * 1.5;
            let size = 0.45;
            let kind = (i % 2) as u32; // alternate spheres and cubes
            let c = Vec3::new(x, size, z);
            prims.push(ProceduralPrimitive::new(
                Aabb::new(c - Vec3::splat(size), c + Vec3::splat(size)),
                kind,
            ));
            let albedo = palette_rgb((i as u32) * 3 + 1);
            data.extend_from_slice(&[x, size, z, size, albedo.x, albedo.y, albedo.z, kind as f32]);
            i += 1;
        }
    }
    let mut device = Device::new();
    let blas = device.create_blas(BlasGeometry::procedurals(prims));
    device.create_tlas(vec![
        Instance::new(blas, Mat4x3::IDENTITY).with_custom_index(21)
    ]);
    let prim_buf = device.alloc_buffer(data.len() as u64 * 4);
    device.upload_f32(prim_buf, &data);
    device.bind_descriptor(BINDING_PRIMDATA, prim_buf);
    let camera = Camera::look_at(
        Vec3::new(0.0, grid as f32 * 0.8, grid as f32 * 1.2),
        Vec3::new(0.0, 0.0, 0.0),
        Vec3::Y,
        50.0,
        w as f32 / h as f32,
    );

    // Sphere intersection shader (analytic quadratic).
    let mut isect_sphere = ShaderBuilder::new(ShaderKind::Intersection);
    {
        let b = &mut isect_sphere;
        let prim = b.var_u32(b.intersection_attr(RtIdxQuery::IntersectionPrimitiveIndex));
        let base = b.var_u32(b.buffer_base(BINDING_PRIMDATA) + b.v(prim) * b.c_u32(PRIM_STRIDE));
        let c = load_vec3(b, &b.v(base), 0);
        let cy = b.var_f32(b.load_f32(b.v(base), 12)); // size doubles as radius
        let o = [0u8, 1, 2].map(|i| b.var_f32(b.builtin(Builtin::RayOrigin(i))));
        let d = [0u8, 1, 2].map(|i| b.var_f32(b.builtin(Builtin::RayDirection(i))));
        let oc = [0, 1, 2].map(|i| b.var_f32(b.v(o[i]) - b.v(c[i])));
        let a = b.var_f32(dot3(d.map(|v| b.v(v)), d.map(|v| b.v(v))));
        let half_b = b.var_f32(dot3(oc.map(|v| b.v(v)), d.map(|v| b.v(v))));
        let cc = b.var_f32(dot3(oc.map(|v| b.v(v)), oc.map(|v| b.v(v))) - b.v(cy) * b.v(cy));
        let disc = b.var_f32(b.v(half_b) * b.v(half_b) - b.v(a) * b.v(cc));
        b.if_(b.v(disc).ge(b.c_f32(0.0)), |b| {
            let sq = b.var_f32(b.v(disc).sqrt());
            let t0 = b.var_f32((b.c_f32(0.0) - b.v(half_b) - b.v(sq)) / b.v(a));
            let tmin = b.builtin(Builtin::RayTMin);
            b.if_else(
                b.v(t0).ge(tmin.clone()),
                |b| b.report_intersection(b.v(t0)),
                |b| {
                    let t1 = b.var_f32((b.c_f32(0.0) - b.v(half_b) + b.v(sq)) / b.v(a));
                    b.if_(b.v(t1).ge(b.builtin(Builtin::RayTMin)), |b| {
                        b.report_intersection(b.v(t1));
                    });
                },
            );
        });
    }

    // Cube intersection shader (slab test).
    let mut isect_cube = ShaderBuilder::new(ShaderKind::Intersection);
    {
        let b = &mut isect_cube;
        let prim = b.var_u32(b.intersection_attr(RtIdxQuery::IntersectionPrimitiveIndex));
        let base = b.var_u32(b.buffer_base(BINDING_PRIMDATA) + b.v(prim) * b.c_u32(PRIM_STRIDE));
        let c = load_vec3(b, &b.v(base), 0);
        let half = b.var_f32(b.load_f32(b.v(base), 12));
        let o = [0u8, 1, 2].map(|i| b.var_f32(b.builtin(Builtin::RayOrigin(i))));
        let d = [0u8, 1, 2].map(|i| b.var_f32(b.builtin(Builtin::RayDirection(i))));
        let mut near = b.var_f32(b.c_f32(-1e30));
        let mut far = b.var_f32(b.c_f32(1e30));
        for i in 0..3 {
            let inv = b.var_f32(b.c_f32(1.0) / b.v(d[i]));
            let lo = b.var_f32((b.v(c[i]) - b.v(half) - b.v(o[i])) * b.v(inv));
            let hi = b.var_f32((b.v(c[i]) + b.v(half) - b.v(o[i])) * b.v(inv));
            let n2 = b.var_f32(b.v(near).max(b.v(lo).min(b.v(hi))));
            let f2 = b.var_f32(b.v(far).min(b.v(lo).max(b.v(hi))));
            near = n2;
            far = f2;
        }
        let tmin = b.builtin(Builtin::RayTMin);
        let valid = b.v(near).le(b.v(far)).and(b.v(far).ge(tmin.clone()));
        b.if_(valid, |b| {
            let t = b.var_f32(
                b.v(near)
                    .ge(b.builtin(Builtin::RayTMin))
                    .select(b.v(near), b.v(far)),
            );
            b.report_intersection(b.v(t));
        });
    }

    // Closest-hit: reconstruct the procedural normal, then scatter.
    let mut ch = ShaderBuilder::new(ShaderKind::ClosestHit);
    {
        let b = &mut ch;
        let prim = b.var_u32(b.builtin(Builtin::HitPrimitiveIndex));
        let base = b.var_u32(b.buffer_base(BINDING_PRIMDATA) + b.v(prim) * b.c_u32(PRIM_STRIDE));
        let c = load_vec3(b, &b.v(base), 0);
        let size = b.var_f32(b.load_f32(b.v(base), 12));
        let kind = b.var_f32(b.load_f32(b.v(base), 28));
        let albedo = load_vec3(b, &b.v(base), 16);
        let p = hit_point(b);
        let q = [0, 1, 2].map(|i| b.var_f32(b.v(p[i]) - b.v(c[i])));
        // Sphere normal: q / r. Cube normal: dominant axis of q.
        let aq = [0, 1, 2].map(|i| b.var_f32(b.v(q[i]).abs()));
        let mut n = [q[0]; 3];
        for i in 0..3 {
            let (j, k) = ((i + 1) % 3, (i + 2) % 3);
            let dominant = b.v(aq[i]).ge(b.v(aq[j])).and(b.v(aq[i]).ge(b.v(aq[k])));
            let sign = b
                .v(q[i])
                .ge(b.c_f32(0.0))
                .select(b.c_f32(1.0), b.c_f32(-1.0));
            let cube_n = dominant.select(sign, b.c_f32(0.0));
            let sphere_n = b.v(q[i]) / b.v(size);
            let is_sphere = b.v(kind).lt(b.c_f32(0.5));
            n[i] = b.var_f32(is_sphere.select(sphere_n, cube_n));
        }
        scatter_tail(b, &n, &albedo);
    }

    let shaders = PipelineShaders {
        raygen: path_trace_raygen(2),
        miss: vec![path_trace_miss()],
        closest_hit: vec![ch.finish()],
        intersection: vec![isect_sphere.finish(), isect_cube.finish()],
        any_hit: vec![],
        max_recursion_depth: 1,
    };
    finish_workload("RTV6", device, shaders, camera, w, h, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_workloads_build_at_test_scale() {
        for kind in WorkloadKind::ALL {
            let w = build(kind, Scale::Test);
            assert_eq!(w.name, kind.name());
            assert!(w.primitive_count >= 1, "{}", w.name);
            assert!(w.bvh_depth >= 2, "{}", w.name);
            assert!(!w.cmd.program.is_empty(), "{}", w.name);
        }
    }

    #[test]
    fn table_iv_primitive_counts_at_paper_scale() {
        // Only check the cheap ones here (EXT/RTV5 at paper scale build
        // hundreds of thousands of primitives; exercised by benches).
        let tri = build(WorkloadKind::Tri, Scale::Paper);
        assert_eq!(tri.primitive_count, 1);
        let rf = build(WorkloadKind::Ref, Scale::Paper);
        assert_eq!(rf.primitive_count, 50);
        let rtv6 = build(WorkloadKind::Rtv6, Scale::Paper);
        assert_eq!(rtv6.primitive_count, 4080);
    }

    #[test]
    fn rtv6_registers_two_intersection_shaders() {
        let w = build(WorkloadKind::Rtv6, Scale::Test);
        assert_eq!(w.shaders.intersection.len(), 2);
        // FCC retranslation produces a different program.
        let mut w = w;
        let fcc_cmd = w.with_fcc(true);
        assert!(fcc_cmd.fcc);
    }

    #[test]
    fn scales_order_resolutions() {
        let (tw, th) = Scale::Test.resolution();
        let (pw, ph) = Scale::Paper.resolution();
        assert!(tw * th < pw * ph);
    }
}
