//! Evaluation workloads (paper Table IV) and the reference renderer.
//!
//! The paper evaluates five Vulkan ray-tracing workloads:
//!
//! | name | content | rays |
//! |------|---------|------|
//! | TRI  | a single ray-traced triangle | primary only |
//! | REF  | mirror reflections and shadows (50 prims) | primary + secondary |
//! | EXT  | Sponza-like architectural scene (≈283 k prims at paper scale) | primary, shadow, ambient occlusion |
//! | RTV5 | statue-like mesh, path traced (≈449 k prims at paper scale) | incoherent bounces |
//! | RTV6 | procedural spheres **and** cubes with two intersection shaders (4080 prims) | incoherent bounces |
//!
//! We cannot ship the original assets (Sponza, the RayTracingInVulkan
//! statue), so each scene is generated procedurally at a configurable
//! [`Scale`], matching the paper's primitive counts at [`Scale::Paper`] and
//! staying laptop-test-friendly at [`Scale::Test`] (see DESIGN.md's
//! substitution table).
//!
//! Shaders are written in the `vksim-shader` DSL (standing in for GLSL) and
//! compiled by the device into executable pipelines. The [`reference`]
//! module renders TRI/REF/EXT with a plain CPU ray tracer that mirrors the
//! shader math — the stand-in for the paper's NVIDIA-GPU images in the
//! Fig. 2 pixel-diff validation.
//!
//! # Example
//!
//! ```
//! use vksim_scenes::{build, Scale, WorkloadKind};
//! let w = build(WorkloadKind::Tri, Scale::Test);
//! assert_eq!(w.name, "TRI");
//! assert!(w.primitive_count >= 1);
//! ```

pub mod camera;
pub mod geometry;
pub mod reference;
pub mod scenes;
pub mod shaders;

pub use camera::Camera;
pub use scenes::{build, Scale, Workload, WorkloadKind};

/// Descriptor binding of the framebuffer.
pub const BINDING_FRAMEBUFFER: u32 = 0;
/// Descriptor binding of the camera uniform.
pub const BINDING_CAMERA: u32 = 1;
/// Descriptor binding of the procedural-primitive data buffer (RTV6).
pub const BINDING_PRIMDATA: u32 = 2;
