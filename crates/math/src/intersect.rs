//! Ray-primitive intersection routines.
//!
//! These are the algorithms the RT unit's *Box Intersection Evaluators* and
//! *Triangle Intersection Evaluators* implement in hardware (paper §II-B),
//! following the T&I Engine design the paper's timing model is based on.

use crate::{Aabb, Ray, Vec3};

/// Result of a ray-triangle intersection.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TriangleHit {
    /// Ray parameter of the hit point.
    pub t: f32,
    /// Barycentric coordinate of vertex 1.
    pub u: f32,
    /// Barycentric coordinate of vertex 2.
    pub v: f32,
    /// `true` if the ray hit the triangle's back face.
    pub back_face: bool,
}

/// Slab-method ray/AABB intersection.
///
/// Returns the entry parameter `t_entry` clamped to `[t_min, t_max]` when the
/// ray's interval overlaps the box, or `None` otherwise. Rays starting inside
/// the box report `t_min`.
///
/// # Example
///
/// ```
/// use vksim_math::{Ray, Vec3, Aabb, intersect::ray_aabb};
/// let ray = Ray::new(Vec3::new(0.0, 0.0, -3.0), Vec3::Z);
/// let b = Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0));
/// assert_eq!(ray_aabb(&ray, &b, 0.0, f32::INFINITY), Some(2.0));
/// ```
#[inline]
pub fn ray_aabb(ray: &Ray, aabb: &Aabb, t_min: f32, t_max: f32) -> Option<f32> {
    let inv = ray.inv_dir();
    let mut t0 = t_min;
    let mut t1 = t_max;
    for axis in 0..3 {
        let (lo, hi, o, i) = (aabb.min[axis], aabb.max[axis], ray.origin[axis], inv[axis]);
        // When the direction component is 0, inv is +-inf and the products
        // below are +-inf or NaN; the NaN case (origin exactly on a slab
        // plane) must not widen the interval, hence the explicit min/max with
        // NaN-suppressing order.
        let mut near = (lo - o) * i;
        let mut far = (hi - o) * i;
        if near > far {
            std::mem::swap(&mut near, &mut far);
        }
        if near.is_nan() {
            near = f32::NEG_INFINITY;
        }
        if far.is_nan() {
            far = f32::INFINITY;
        }
        t0 = t0.max(near);
        t1 = t1.min(far);
        if t0 > t1 {
            return None;
        }
    }
    Some(t0)
}

/// Möller–Trumbore ray-triangle intersection.
///
/// Returns a [`TriangleHit`] when the ray hits the triangle `(v0, v1, v2)`
/// within `[ray.t_min, ray.t_max]`. Both faces are reported ("opaque,
/// double-sided" semantics — Vulkan's default when no culling flags are set);
/// `back_face` distinguishes them for shading.
#[inline]
pub fn ray_triangle(ray: &Ray, v0: Vec3, v1: Vec3, v2: Vec3) -> Option<TriangleHit> {
    const EPS: f32 = 1e-9;
    let e1 = v1 - v0;
    let e2 = v2 - v0;
    let pvec = ray.dir.cross(e2);
    let det = e1.dot(pvec);
    if det.abs() < EPS {
        return None; // Ray parallel to triangle plane.
    }
    let inv_det = 1.0 / det;
    let tvec = ray.origin - v0;
    let u = tvec.dot(pvec) * inv_det;
    if !(0.0..=1.0).contains(&u) {
        return None;
    }
    let qvec = tvec.cross(e1);
    let v = ray.dir.dot(qvec) * inv_det;
    if v < 0.0 || u + v > 1.0 {
        return None;
    }
    let t = e2.dot(qvec) * inv_det;
    if t < ray.t_min || t > ray.t_max {
        return None;
    }
    Some(TriangleHit {
        t,
        u,
        v,
        back_face: det < 0.0,
    })
}

/// Geometric normal of triangle `(v0, v1, v2)` (not normalized by area,
/// returned unit length).
#[inline]
pub fn triangle_normal(v0: Vec3, v1: Vec3, v2: Vec3) -> Vec3 {
    (v1 - v0).cross(v2 - v0).normalized()
}

/// Analytic ray-sphere intersection, used by procedural-geometry
/// intersection shaders (RTV5/RTV6 spheres).
///
/// Returns the nearest `t` in `[ray.t_min, ray.t_max]`.
#[inline]
pub fn ray_sphere(ray: &Ray, center: Vec3, radius: f32) -> Option<f32> {
    let oc = ray.origin - center;
    let a = ray.dir.dot(ray.dir);
    let half_b = oc.dot(ray.dir);
    let c = oc.dot(oc) - radius * radius;
    let disc = half_b * half_b - a * c;
    if disc < 0.0 {
        return None;
    }
    let sq = disc.sqrt();
    let t0 = (-half_b - sq) / a;
    if t0 >= ray.t_min && t0 <= ray.t_max {
        return Some(t0);
    }
    let t1 = (-half_b + sq) / a;
    if t1 >= ray.t_min && t1 <= ray.t_max {
        return Some(t1);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_box() -> Aabb {
        Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0))
    }

    #[test]
    fn ray_hits_box_head_on() {
        let r = Ray::new(Vec3::new(0.0, 0.0, -5.0), Vec3::Z);
        assert_eq!(ray_aabb(&r, &unit_box(), 0.0, f32::INFINITY), Some(4.0));
    }

    #[test]
    fn ray_misses_box_off_axis() {
        let r = Ray::new(Vec3::new(3.0, 3.0, -5.0), Vec3::Z);
        assert_eq!(ray_aabb(&r, &unit_box(), 0.0, f32::INFINITY), None);
    }

    #[test]
    fn ray_starting_inside_box_reports_t_min() {
        let r = Ray::new(Vec3::ZERO, Vec3::X);
        assert_eq!(ray_aabb(&r, &unit_box(), 0.25, f32::INFINITY), Some(0.25));
    }

    #[test]
    fn ray_behind_box_misses() {
        let r = Ray::new(Vec3::new(0.0, 0.0, 5.0), Vec3::Z);
        assert_eq!(ray_aabb(&r, &unit_box(), 0.0, f32::INFINITY), None);
    }

    #[test]
    fn interval_clips_box_hit() {
        let r = Ray::new(Vec3::new(0.0, 0.0, -5.0), Vec3::Z);
        // Box entry at t=4 but interval ends at t=3.
        assert_eq!(ray_aabb(&r, &unit_box(), 0.0, 3.0), None);
    }

    #[test]
    fn axis_parallel_ray_on_slab_plane() {
        // Origin lies exactly on the x = -1 plane with dir.x == 0: the NaN
        // guard must keep this a hit.
        let r = Ray::new(Vec3::new(-1.0, 0.0, -5.0), Vec3::Z);
        assert!(ray_aabb(&r, &unit_box(), 0.0, f32::INFINITY).is_some());
    }

    #[test]
    fn axis_parallel_ray_outside_slab_misses() {
        let r = Ray::new(Vec3::new(-1.5, 0.0, -5.0), Vec3::Z);
        assert!(ray_aabb(&r, &unit_box(), 0.0, f32::INFINITY).is_none());
    }

    fn tri() -> (Vec3, Vec3, Vec3) {
        (
            Vec3::new(-1.0, -1.0, 0.0),
            Vec3::new(1.0, -1.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
        )
    }

    #[test]
    fn triangle_center_hit() {
        let (a, b, c) = tri();
        let r = Ray::new(Vec3::new(0.0, -0.2, -3.0), Vec3::Z);
        let h = ray_triangle(&r, a, b, c).expect("hit");
        assert!((h.t - 3.0).abs() < 1e-6);
        assert!(h.u > 0.0 && h.v > 0.0 && h.u + h.v < 1.0);
    }

    #[test]
    fn triangle_miss_outside_edge() {
        let (a, b, c) = tri();
        let r = Ray::new(Vec3::new(2.0, 0.0, -3.0), Vec3::Z);
        assert!(ray_triangle(&r, a, b, c).is_none());
    }

    #[test]
    fn triangle_backface_flag() {
        let (a, b, c) = tri();
        let front = Ray::new(Vec3::new(0.0, 0.0, -3.0), Vec3::Z);
        let back = Ray::new(Vec3::new(0.0, 0.0, 3.0), -Vec3::Z);
        let hf = ray_triangle(&front, a, b, c).unwrap();
        let hb = ray_triangle(&back, a, b, c).unwrap();
        assert_ne!(hf.back_face, hb.back_face);
    }

    #[test]
    fn triangle_parallel_ray_misses() {
        let (a, b, c) = tri();
        let r = Ray::new(Vec3::new(0.0, 0.0, -1.0), Vec3::X);
        assert!(ray_triangle(&r, a, b, c).is_none());
    }

    #[test]
    fn triangle_hit_respects_t_interval() {
        let (a, b, c) = tri();
        let r = Ray::with_interval(Vec3::new(0.0, 0.0, -3.0), Vec3::Z, 0.0, 2.0);
        assert!(ray_triangle(&r, a, b, c).is_none());
    }

    #[test]
    fn triangle_vertex_hit_is_inclusive() {
        let (a, b, c) = tri();
        let r = Ray::new(Vec3::new(0.0, 1.0, -3.0), Vec3::Z);
        // Exactly through vertex c: u+v == 1 boundary, should count as a hit.
        assert!(ray_triangle(&r, a, b, c).is_some());
    }

    #[test]
    fn barycentric_interpolation_recovers_point() {
        let (a, b, c) = tri();
        let r = Ray::new(Vec3::new(0.2, -0.1, -5.0), Vec3::Z);
        let h = ray_triangle(&r, a, b, c).unwrap();
        let p = a * (1.0 - h.u - h.v) + b * h.u + c * h.v;
        assert!((p - r.at(h.t)).length() < 1e-5);
    }

    #[test]
    fn sphere_hit_front_and_inside() {
        let r = Ray::new(Vec3::new(0.0, 0.0, -5.0), Vec3::Z);
        let t = ray_sphere(&r, Vec3::ZERO, 1.0).expect("hit");
        assert!((t - 4.0).abs() < 1e-5);
        // From inside: nearest root is behind t_min, second root used.
        let inside = Ray::new(Vec3::ZERO, Vec3::Z);
        let t2 = ray_sphere(&inside, Vec3::ZERO, 1.0).expect("hit");
        assert!((t2 - 1.0).abs() < 1e-5);
    }

    #[test]
    fn sphere_miss() {
        let r = Ray::new(Vec3::new(0.0, 5.0, -5.0), Vec3::Z);
        assert!(ray_sphere(&r, Vec3::ZERO, 1.0).is_none());
    }

    #[test]
    fn normal_is_unit_and_right_handed() {
        let n = triangle_normal(Vec3::ZERO, Vec3::X, Vec3::Y);
        assert!((n - Vec3::Z).length() < 1e-6);
    }
}
