//! Three-component `f32` vector.

use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Index, Mul, MulAssign, Neg, Sub, SubAssign};

/// A three-component single-precision vector used for points, directions and
/// colors throughout the simulator.
///
/// # Example
///
/// ```
/// use vksim_math::Vec3;
/// let n = Vec3::new(3.0, 0.0, 4.0);
/// assert_eq!(n.length(), 5.0);
/// assert_eq!(n.normalized().length(), 1.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Vec3 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// The all-ones vector.
    pub const ONE: Vec3 = Vec3 {
        x: 1.0,
        y: 1.0,
        z: 1.0,
    };
    /// Unit vector along +X.
    pub const X: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit vector along +Y.
    pub const Y: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };
    /// Unit vector along +Z.
    pub const Z: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    /// Creates a vector from its components.
    #[inline]
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Vec3 { x, y, z }
    }

    /// Creates a vector with all components set to `v`.
    #[inline]
    pub const fn splat(v: f32) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec3) -> f32 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3::new(
            self.y * rhs.z - self.z * rhs.y,
            self.z * rhs.x - self.x * rhs.z,
            self.x * rhs.y - self.y * rhs.x,
        )
    }

    /// Euclidean length.
    #[inline]
    pub fn length(self) -> f32 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean length (avoids the square root).
    #[inline]
    pub fn length_squared(self) -> f32 {
        self.dot(self)
    }

    /// Returns the vector scaled to unit length.
    ///
    /// # Panics
    ///
    /// Does not panic: a zero-length input returns a zero vector.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let len = self.length();
        if len > 0.0 {
            self / len
        } else {
            Vec3::ZERO
        }
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.min(rhs.x), self.y.min(rhs.y), self.z.min(rhs.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.max(rhs.x), self.y.max(rhs.y), self.z.max(rhs.z))
    }

    /// Component-wise product (Hadamard product); used for color modulation.
    #[inline]
    pub fn mul_elem(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x * rhs.x, self.y * rhs.y, self.z * rhs.z)
    }

    /// Component-wise reciprocal, mapping `0.0` to `f32::INFINITY`; used to
    /// precompute inverse ray directions for slab tests.
    #[inline]
    pub fn recip(self) -> Vec3 {
        Vec3::new(1.0 / self.x, 1.0 / self.y, 1.0 / self.z)
    }

    /// Largest component value.
    #[inline]
    pub fn max_element(self) -> f32 {
        self.x.max(self.y).max(self.z)
    }

    /// Smallest component value.
    #[inline]
    pub fn min_element(self) -> f32 {
        self.x.min(self.y).min(self.z)
    }

    /// Linear interpolation: `self * (1 - t) + rhs * t`.
    #[inline]
    pub fn lerp(self, rhs: Vec3, t: f32) -> Vec3 {
        self * (1.0 - t) + rhs * t
    }

    /// Reflects `self` around the (unit) normal `n`.
    #[inline]
    pub fn reflect(self, n: Vec3) -> Vec3 {
        self - n * (2.0 * self.dot(n))
    }

    /// Index of the component with the largest absolute value.
    #[inline]
    pub fn max_abs_axis(self) -> usize {
        let a = [self.x.abs(), self.y.abs(), self.z.abs()];
        if a[0] >= a[1] && a[0] >= a[2] {
            0
        } else if a[1] >= a[2] {
            1
        } else {
            2
        }
    }

    /// `true` if all components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f32> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: f32) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Mul<Vec3> for f32 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl MulAssign<f32> for Vec3 {
    #[inline]
    fn mul_assign(&mut self, rhs: f32) {
        *self = *self * rhs;
    }
}

impl Div<f32> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, rhs: f32) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl DivAssign<f32> for Vec3 {
    #[inline]
    fn div_assign(&mut self, rhs: f32) {
        *self = *self / rhs;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Index<usize> for Vec3 {
    type Output = f32;

    /// Component access by axis index (0 = x, 1 = y, 2 = z).
    ///
    /// # Panics
    ///
    /// Panics if `index > 2`.
    #[inline]
    fn index(&self, index: usize) -> &f32 {
        match index {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {index}"),
        }
    }
}

impl From<[f32; 3]> for Vec3 {
    #[inline]
    fn from(a: [f32; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl From<Vec3> for [f32; 3] {
    #[inline]
    fn from(v: Vec3) -> Self {
        [v.x, v.y, v.z]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_basics() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(b / 2.0, Vec3::new(2.0, 2.5, 3.0));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn dot_and_cross() {
        let a = Vec3::X;
        let b = Vec3::Y;
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), Vec3::Z);
        assert_eq!(b.cross(a), -Vec3::Z);
        assert_eq!(
            Vec3::new(1.0, 2.0, 3.0).dot(Vec3::new(4.0, -5.0, 6.0)),
            12.0
        );
    }

    #[test]
    fn length_and_normalize() {
        assert_eq!(Vec3::new(3.0, 4.0, 0.0).length(), 5.0);
        assert_eq!(Vec3::new(3.0, 4.0, 0.0).length_squared(), 25.0);
        let n = Vec3::new(10.0, 0.0, 0.0).normalized();
        assert_eq!(n, Vec3::X);
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
    }

    #[test]
    fn min_max_elementwise() {
        let a = Vec3::new(1.0, 5.0, 3.0);
        let b = Vec3::new(2.0, 4.0, 3.0);
        assert_eq!(a.min(b), Vec3::new(1.0, 4.0, 3.0));
        assert_eq!(a.max(b), Vec3::new(2.0, 5.0, 3.0));
        assert_eq!(a.max_element(), 5.0);
        assert_eq!(a.min_element(), 1.0);
        assert_eq!(a.mul_elem(b), Vec3::new(2.0, 20.0, 9.0));
    }

    #[test]
    fn recip_maps_zero_to_infinity() {
        let r = Vec3::new(2.0, 0.0, -4.0).recip();
        assert_eq!(r.x, 0.5);
        assert!(r.y.is_infinite());
        assert_eq!(r.z, -0.25);
    }

    #[test]
    fn reflect_through_normal() {
        let v = Vec3::new(1.0, -1.0, 0.0);
        let r = v.reflect(Vec3::Y);
        assert_eq!(r, Vec3::new(1.0, 1.0, 0.0));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec3::ZERO;
        let b = Vec3::splat(2.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::splat(1.0));
    }

    #[test]
    fn index_and_axis_helpers() {
        let v = Vec3::new(-7.0, 2.0, 3.0);
        assert_eq!(v[0], -7.0);
        assert_eq!(v[1], 2.0);
        assert_eq!(v[2], 3.0);
        assert_eq!(v.max_abs_axis(), 0);
        assert_eq!(Vec3::new(0.0, -9.0, 3.0).max_abs_axis(), 1);
        assert_eq!(Vec3::new(0.0, 1.0, 3.0).max_abs_axis(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_out_of_range_panics() {
        let _ = Vec3::ZERO[3];
    }

    #[test]
    fn array_conversions_roundtrip() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        let a: [f32; 3] = v.into();
        assert_eq!(Vec3::from(a), v);
    }
}
