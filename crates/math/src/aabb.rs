//! Axis-aligned bounding boxes.

use crate::{Mat4x3, Vec3};

/// An axis-aligned bounding box, the bounding volume used at every level of
/// the acceleration structure (paper §II-C).
///
/// An *empty* box has `min > max` on every axis; [`Aabb::EMPTY`] is the
/// identity for [`Aabb::union`].
///
/// # Example
///
/// ```
/// use vksim_math::{Aabb, Vec3};
/// let b = Aabb::EMPTY
///     .union_point(Vec3::ZERO)
///     .union_point(Vec3::new(1.0, 2.0, 3.0));
/// assert_eq!(b.extent(), Vec3::new(1.0, 2.0, 3.0));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Vec3,
    /// Maximum corner.
    pub max: Vec3,
}

impl Aabb {
    /// The empty box (identity for union).
    pub const EMPTY: Aabb = Aabb {
        min: Vec3::splat(f32::INFINITY),
        max: Vec3::splat(f32::NEG_INFINITY),
    };

    /// Creates a box from corners.
    #[inline]
    pub const fn new(min: Vec3, max: Vec3) -> Self {
        Aabb { min, max }
    }

    /// Box containing all three triangle vertices.
    pub fn from_triangle(v0: Vec3, v1: Vec3, v2: Vec3) -> Self {
        Aabb {
            min: v0.min(v1).min(v2),
            max: v0.max(v1).max(v2),
        }
    }

    /// `true` if the box contains no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y || self.min.z > self.max.z
    }

    /// Smallest box containing both operands.
    #[inline]
    pub fn union(&self, rhs: &Aabb) -> Aabb {
        Aabb {
            min: self.min.min(rhs.min),
            max: self.max.max(rhs.max),
        }
    }

    /// Grows the box to contain `p`.
    #[inline]
    pub fn union_point(&self, p: Vec3) -> Aabb {
        Aabb {
            min: self.min.min(p),
            max: self.max.max(p),
        }
    }

    /// Box center.
    #[inline]
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Per-axis extent (zero vector when empty).
    #[inline]
    pub fn extent(&self) -> Vec3 {
        if self.is_empty() {
            Vec3::ZERO
        } else {
            self.max - self.min
        }
    }

    /// Surface area; the SAH build cost metric.
    #[inline]
    pub fn surface_area(&self) -> f32 {
        let e = self.extent();
        2.0 * (e.x * e.y + e.y * e.z + e.z * e.x)
    }

    /// Axis with the largest extent (0 = x, 1 = y, 2 = z).
    #[inline]
    pub fn longest_axis(&self) -> usize {
        self.extent().max_abs_axis()
    }

    /// `true` if `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// Bounding box of this box under an affine transform (transforms all 8
    /// corners); used when instancing a BLAS into the TLAS.
    pub fn transformed(&self, m: &Mat4x3) -> Aabb {
        if self.is_empty() {
            return *self;
        }
        let mut out = Aabb::EMPTY;
        for i in 0..8 {
            let c = Vec3::new(
                if i & 1 == 0 { self.min.x } else { self.max.x },
                if i & 2 == 0 { self.min.y } else { self.max.y },
                if i & 4 == 0 { self.min.z } else { self.max.z },
            );
            out = out.union_point(m.transform_point(c));
        }
        out
    }

    /// Pads the box by `eps` on every side (guards against degenerate flat
    /// boxes from axis-aligned geometry).
    pub fn padded(&self, eps: f32) -> Aabb {
        Aabb {
            min: self.min - Vec3::splat(eps),
            max: self.max + Vec3::splat(eps),
        }
    }
}

impl Default for Aabb {
    fn default() -> Self {
        Aabb::EMPTY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_box_properties() {
        let e = Aabb::EMPTY;
        assert!(e.is_empty());
        assert_eq!(e.extent(), Vec3::ZERO);
        assert_eq!(e.surface_area(), 0.0);
    }

    #[test]
    fn union_with_empty_is_identity() {
        let b = Aabb::new(Vec3::ZERO, Vec3::ONE);
        assert_eq!(b.union(&Aabb::EMPTY), b);
        assert_eq!(Aabb::EMPTY.union(&b), b);
    }

    #[test]
    fn union_point_grows() {
        let b = Aabb::EMPTY
            .union_point(Vec3::ZERO)
            .union_point(Vec3::new(-1.0, 2.0, 0.5));
        assert_eq!(b.min, Vec3::new(-1.0, 0.0, 0.0));
        assert_eq!(b.max, Vec3::new(0.0, 2.0, 0.5));
    }

    #[test]
    fn surface_area_of_unit_cube() {
        let b = Aabb::new(Vec3::ZERO, Vec3::ONE);
        assert_eq!(b.surface_area(), 6.0);
    }

    #[test]
    fn center_extent_longest_axis() {
        let b = Aabb::new(Vec3::ZERO, Vec3::new(1.0, 4.0, 2.0));
        assert_eq!(b.center(), Vec3::new(0.5, 2.0, 1.0));
        assert_eq!(b.extent(), Vec3::new(1.0, 4.0, 2.0));
        assert_eq!(b.longest_axis(), 1);
    }

    #[test]
    fn contains_boundary_and_interior() {
        let b = Aabb::new(Vec3::ZERO, Vec3::ONE);
        assert!(b.contains(Vec3::splat(0.5)));
        assert!(b.contains(Vec3::ZERO));
        assert!(b.contains(Vec3::ONE));
        assert!(!b.contains(Vec3::new(1.1, 0.5, 0.5)));
    }

    #[test]
    fn from_triangle_bounds_all_vertices() {
        let b = Aabb::from_triangle(
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, -2.0),
            Vec3::new(0.5, 3.0, 1.0),
        );
        assert_eq!(b.min, Vec3::new(0.0, 0.0, -2.0));
        assert_eq!(b.max, Vec3::new(1.0, 3.0, 1.0));
    }

    #[test]
    fn transformed_box_bounds_rotation() {
        let b = Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0));
        let m = Mat4x3::rotation_y(std::f32::consts::FRAC_PI_4);
        let t = b.transformed(&m);
        let s = 2.0f32.sqrt();
        assert!((t.max.x - s).abs() < 1e-5);
        assert!((t.max.z - s).abs() < 1e-5);
        assert!((t.max.y - 1.0).abs() < 1e-6);
    }

    #[test]
    fn transformed_empty_stays_empty() {
        let m = Mat4x3::translation(Vec3::ONE);
        assert!(Aabb::EMPTY.transformed(&m).is_empty());
    }

    #[test]
    fn padded_expands_symmetrically() {
        let b = Aabb::new(Vec3::ZERO, Vec3::ONE).padded(0.5);
        assert_eq!(b.min, Vec3::splat(-0.5));
        assert_eq!(b.max, Vec3::splat(1.5));
    }
}
