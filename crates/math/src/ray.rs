//! Rays with parametric validity interval.

use crate::Vec3;

/// A ray with origin, direction and a `[t_min, t_max]` validity interval —
/// the *ray properties* tracked per-thread in the RT unit's Ray Buffer
/// (paper §III-C2: "origin, direction, and t-parameters").
///
/// # Example
///
/// ```
/// use vksim_math::{Ray, Vec3};
/// let r = Ray::new(Vec3::ZERO, Vec3::Z);
/// assert_eq!(r.at(2.5), Vec3::new(0.0, 0.0, 2.5));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Ray {
    /// Ray origin.
    pub origin: Vec3,
    /// Ray direction (not necessarily unit length).
    pub dir: Vec3,
    /// Minimum valid parameter (usually a small epsilon for secondary rays).
    pub t_min: f32,
    /// Maximum valid parameter; shrinks as closer hits are found.
    pub t_max: f32,
}

impl Ray {
    /// Creates a ray valid on `[1e-4, +inf)`.
    #[inline]
    pub fn new(origin: Vec3, dir: Vec3) -> Self {
        Ray {
            origin,
            dir,
            t_min: 1e-4,
            t_max: f32::INFINITY,
        }
    }

    /// Creates a ray with an explicit parametric interval.
    #[inline]
    pub fn with_interval(origin: Vec3, dir: Vec3, t_min: f32, t_max: f32) -> Self {
        Ray {
            origin,
            dir,
            t_min,
            t_max,
        }
    }

    /// The point at parameter `t`.
    #[inline]
    pub fn at(&self, t: f32) -> Vec3 {
        self.origin + self.dir * t
    }

    /// Precomputed component-wise inverse direction for slab tests.
    #[inline]
    pub fn inv_dir(&self) -> Vec3 {
        self.dir.recip()
    }
}

impl Default for Ray {
    fn default() -> Self {
        Ray::new(Vec3::ZERO, Vec3::Z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_evaluates_parametrically() {
        let r = Ray::new(Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 2.0, 0.0));
        assert_eq!(r.at(0.0), Vec3::new(1.0, 0.0, 0.0));
        assert_eq!(r.at(1.5), Vec3::new(1.0, 3.0, 0.0));
    }

    #[test]
    fn default_interval_is_open_ended() {
        let r = Ray::new(Vec3::ZERO, Vec3::X);
        assert!(r.t_min > 0.0 && r.t_min < 1e-2);
        assert!(r.t_max.is_infinite());
    }

    #[test]
    fn with_interval_respects_bounds() {
        let r = Ray::with_interval(Vec3::ZERO, Vec3::X, 0.5, 9.0);
        assert_eq!(r.t_min, 0.5);
        assert_eq!(r.t_max, 9.0);
    }

    #[test]
    fn inv_dir_matches_recip() {
        let r = Ray::new(Vec3::ZERO, Vec3::new(2.0, -4.0, 0.5));
        assert_eq!(r.inv_dir(), Vec3::new(0.5, -0.25, 2.0));
    }
}
