//! Affine transform matrices.
//!
//! The Vulkan acceleration structure stores 4×3 row-major object-to-world and
//! world-to-object matrices in top-level leaf nodes (paper Fig. 7b). The RT
//! unit's transformation Operation Unit is "a simple matrix multiplier"
//! (§III-C4) applying these to rays when crossing from the TLAS into a BLAS.

use crate::{Ray, Vec3};

/// A 4×3 affine transform: a 3×3 linear part plus a translation column,
/// matching `VkTransformMatrixKHR` (row-major, 48 bytes).
///
/// # Example
///
/// ```
/// use vksim_math::{Mat4x3, Vec3};
/// let t = Mat4x3::translation(Vec3::new(1.0, 2.0, 3.0));
/// assert_eq!(t.transform_point(Vec3::ZERO), Vec3::new(1.0, 2.0, 3.0));
/// assert_eq!(t.transform_vector(Vec3::X), Vec3::X);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Mat4x3 {
    /// Rows of the matrix; `rows[r][c]` with `c == 3` the translation.
    pub rows: [[f32; 4]; 3],
}

impl Default for Mat4x3 {
    fn default() -> Self {
        Self::IDENTITY
    }
}

impl Mat4x3 {
    /// The identity transform.
    pub const IDENTITY: Mat4x3 = Mat4x3 {
        rows: [
            [1.0, 0.0, 0.0, 0.0],
            [0.0, 1.0, 0.0, 0.0],
            [0.0, 0.0, 1.0, 0.0],
        ],
    };

    /// Creates a transform from explicit rows.
    pub const fn from_rows(rows: [[f32; 4]; 3]) -> Self {
        Mat4x3 { rows }
    }

    /// Pure translation.
    pub fn translation(t: Vec3) -> Self {
        Mat4x3 {
            rows: [
                [1.0, 0.0, 0.0, t.x],
                [0.0, 1.0, 0.0, t.y],
                [0.0, 0.0, 1.0, t.z],
            ],
        }
    }

    /// Non-uniform scale.
    pub fn scale(s: Vec3) -> Self {
        Mat4x3 {
            rows: [
                [s.x, 0.0, 0.0, 0.0],
                [0.0, s.y, 0.0, 0.0],
                [0.0, 0.0, s.z, 0.0],
            ],
        }
    }

    /// Rotation of `angle` radians about the Y axis.
    pub fn rotation_y(angle: f32) -> Self {
        let (s, c) = angle.sin_cos();
        Mat4x3 {
            rows: [[c, 0.0, s, 0.0], [0.0, 1.0, 0.0, 0.0], [-s, 0.0, c, 0.0]],
        }
    }

    /// Rotation of `angle` radians about the X axis.
    pub fn rotation_x(angle: f32) -> Self {
        let (s, c) = angle.sin_cos();
        Mat4x3 {
            rows: [[1.0, 0.0, 0.0, 0.0], [0.0, c, -s, 0.0], [0.0, s, c, 0.0]],
        }
    }

    /// Transforms a point (applies the linear part and translation).
    #[inline]
    pub fn transform_point(&self, p: Vec3) -> Vec3 {
        let r = &self.rows;
        Vec3::new(
            r[0][0] * p.x + r[0][1] * p.y + r[0][2] * p.z + r[0][3],
            r[1][0] * p.x + r[1][1] * p.y + r[1][2] * p.z + r[1][3],
            r[2][0] * p.x + r[2][1] * p.y + r[2][2] * p.z + r[2][3],
        )
    }

    /// Transforms a direction (linear part only, no translation).
    #[inline]
    pub fn transform_vector(&self, v: Vec3) -> Vec3 {
        let r = &self.rows;
        Vec3::new(
            r[0][0] * v.x + r[0][1] * v.y + r[0][2] * v.z,
            r[1][0] * v.x + r[1][1] * v.y + r[1][2] * v.z,
            r[2][0] * v.x + r[2][1] * v.y + r[2][2] * v.z,
        )
    }

    /// Transforms a ray: origin as a point, direction as a vector.
    ///
    /// This is the coordinate-system change applied when traversal descends
    /// from the TLAS into a BLAS instance (paper Algorithm 2, line 6). The
    /// direction is intentionally *not* re-normalized so that `t` values stay
    /// comparable across spaces.
    #[inline]
    pub fn transform_ray(&self, ray: &Ray) -> Ray {
        Ray {
            origin: self.transform_point(ray.origin),
            dir: self.transform_vector(ray.dir),
            t_min: ray.t_min,
            t_max: ray.t_max,
        }
    }

    /// Composition: `self * rhs` (apply `rhs` first).
    pub fn compose(&self, rhs: &Mat4x3) -> Mat4x3 {
        let mut out = [[0.0f32; 4]; 3];
        for (i, row) in out.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                let mut acc = 0.0;
                for k in 0..3 {
                    acc += self.rows[i][k] * rhs.rows[k][j];
                }
                if j == 3 {
                    acc += self.rows[i][3];
                }
                *cell = acc;
            }
        }
        Mat4x3 { rows: out }
    }

    /// Inverts the affine transform.
    ///
    /// Returns `None` if the linear part is singular (determinant ~ 0).
    pub fn inverse(&self) -> Option<Mat4x3> {
        let m = &self.rows;
        let a = m[0][0];
        let b = m[0][1];
        let c = m[0][2];
        let d = m[1][0];
        let e = m[1][1];
        let f = m[1][2];
        let g = m[2][0];
        let h = m[2][1];
        let i = m[2][2];
        let det = a * (e * i - f * h) - b * (d * i - f * g) + c * (d * h - e * g);
        if det.abs() < 1e-12 {
            return None;
        }
        let inv_det = 1.0 / det;
        // Inverse of the 3x3 linear part (adjugate / det).
        let lin = [
            [
                (e * i - f * h) * inv_det,
                (c * h - b * i) * inv_det,
                (b * f - c * e) * inv_det,
            ],
            [
                (f * g - d * i) * inv_det,
                (a * i - c * g) * inv_det,
                (c * d - a * f) * inv_det,
            ],
            [
                (d * h - e * g) * inv_det,
                (b * g - a * h) * inv_det,
                (a * e - b * d) * inv_det,
            ],
        ];
        // Inverse translation: -Linv * t
        let t = Vec3::new(m[0][3], m[1][3], m[2][3]);
        let mut rows = [[0.0f32; 4]; 3];
        for (r, lin_row) in lin.iter().enumerate() {
            rows[r][..3].copy_from_slice(lin_row);
            rows[r][3] = -(lin_row[0] * t.x + lin_row[1] * t.y + lin_row[2] * t.z);
        }
        Some(Mat4x3 { rows })
    }

    /// Serializes into 12 little-endian `f32` words (48 bytes), the layout
    /// used in BVH top-level leaf nodes.
    pub fn to_words(&self) -> [f32; 12] {
        let mut w = [0.0f32; 12];
        for r in 0..3 {
            w[r * 4..r * 4 + 4].copy_from_slice(&self.rows[r]);
        }
        w
    }
}

/// A full 4×4 matrix; used only for camera projection setup in workloads.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Mat4 {
    /// Row-major elements.
    pub rows: [[f32; 4]; 4],
}

impl Default for Mat4 {
    fn default() -> Self {
        Self::IDENTITY
    }
}

impl Mat4 {
    /// The identity matrix.
    pub const IDENTITY: Mat4 = Mat4 {
        rows: [
            [1.0, 0.0, 0.0, 0.0],
            [0.0, 1.0, 0.0, 0.0],
            [0.0, 0.0, 1.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        ],
    };

    /// Right-handed perspective projection (vertical fov in radians).
    pub fn perspective(fov_y: f32, aspect: f32, near: f32, far: f32) -> Mat4 {
        let f = 1.0 / (fov_y / 2.0).tan();
        Mat4 {
            rows: [
                [f / aspect, 0.0, 0.0, 0.0],
                [0.0, f, 0.0, 0.0],
                [0.0, 0.0, far / (near - far), near * far / (near - far)],
                [0.0, 0.0, -1.0, 0.0],
            ],
        }
    }

    /// Right-handed look-at view matrix.
    pub fn look_at(eye: Vec3, center: Vec3, up: Vec3) -> Mat4 {
        let f = (center - eye).normalized();
        let s = f.cross(up).normalized();
        let u = s.cross(f);
        Mat4 {
            rows: [
                [s.x, s.y, s.z, -s.dot(eye)],
                [u.x, u.y, u.z, -u.dot(eye)],
                [-f.x, -f.y, -f.z, f.dot(eye)],
                [0.0, 0.0, 0.0, 1.0],
            ],
        }
    }

    /// Transforms a point with perspective divide.
    pub fn project_point(&self, p: Vec3) -> Vec3 {
        let r = &self.rows;
        let x = r[0][0] * p.x + r[0][1] * p.y + r[0][2] * p.z + r[0][3];
        let y = r[1][0] * p.x + r[1][1] * p.y + r[1][2] * p.z + r[1][3];
        let z = r[2][0] * p.x + r[2][1] * p.y + r[2][2] * p.z + r[2][3];
        let w = r[3][0] * p.x + r[3][1] * p.y + r[3][2] * p.z + r[3][3];
        Vec3::new(x / w, y / w, z / w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: Vec3, b: Vec3, eps: f32) {
        assert!((a - b).length() < eps, "{a} != {b}");
    }

    #[test]
    fn identity_is_noop() {
        let p = Vec3::new(1.0, -2.0, 3.5);
        assert_eq!(Mat4x3::IDENTITY.transform_point(p), p);
        assert_eq!(Mat4x3::IDENTITY.transform_vector(p), p);
    }

    #[test]
    fn translation_moves_points_not_vectors() {
        let t = Mat4x3::translation(Vec3::new(5.0, 0.0, 0.0));
        assert_eq!(t.transform_point(Vec3::ZERO), Vec3::new(5.0, 0.0, 0.0));
        assert_eq!(t.transform_vector(Vec3::Z), Vec3::Z);
    }

    #[test]
    fn scale_scales() {
        let s = Mat4x3::scale(Vec3::new(2.0, 3.0, 4.0));
        assert_eq!(s.transform_point(Vec3::ONE), Vec3::new(2.0, 3.0, 4.0));
    }

    #[test]
    fn rotation_y_quarter_turn() {
        let r = Mat4x3::rotation_y(std::f32::consts::FRAC_PI_2);
        assert_close(r.transform_vector(Vec3::X), -Vec3::Z, 1e-6);
        assert_close(r.transform_vector(Vec3::Z), Vec3::X, 1e-6);
    }

    #[test]
    fn compose_applies_rhs_first() {
        let t = Mat4x3::translation(Vec3::new(1.0, 0.0, 0.0));
        let s = Mat4x3::scale(Vec3::splat(2.0));
        // (s ∘ t)(p) = s(t(p))
        let st = s.compose(&t);
        assert_eq!(st.transform_point(Vec3::ZERO), Vec3::new(2.0, 0.0, 0.0));
        let ts = t.compose(&s);
        assert_eq!(ts.transform_point(Vec3::ZERO), Vec3::new(1.0, 0.0, 0.0));
    }

    #[test]
    fn inverse_roundtrips() {
        let m = Mat4x3::translation(Vec3::new(1.0, 2.0, 3.0))
            .compose(&Mat4x3::rotation_y(0.7))
            .compose(&Mat4x3::scale(Vec3::new(2.0, 1.0, 0.5)));
        let inv = m.inverse().expect("invertible");
        let p = Vec3::new(0.3, -0.9, 2.2);
        assert_close(inv.transform_point(m.transform_point(p)), p, 1e-4);
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        let m = Mat4x3::scale(Vec3::new(1.0, 0.0, 1.0));
        assert!(m.inverse().is_none());
    }

    #[test]
    fn transform_ray_moves_origin_and_dir() {
        let m = Mat4x3::translation(Vec3::new(0.0, 1.0, 0.0));
        let ray = Ray::new(Vec3::ZERO, Vec3::X);
        let out = m.transform_ray(&ray);
        assert_eq!(out.origin, Vec3::new(0.0, 1.0, 0.0));
        assert_eq!(out.dir, Vec3::X);
        assert_eq!(out.t_min, ray.t_min);
        assert_eq!(out.t_max, ray.t_max);
    }

    #[test]
    fn words_layout_is_row_major() {
        let m = Mat4x3::translation(Vec3::new(9.0, 8.0, 7.0));
        let w = m.to_words();
        assert_eq!(w[3], 9.0);
        assert_eq!(w[7], 8.0);
        assert_eq!(w[11], 7.0);
    }

    #[test]
    fn look_at_centers_target() {
        let v = Mat4::look_at(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, Vec3::Y);
        let p = v.project_point(Vec3::ZERO);
        assert!(p.x.abs() < 1e-6 && p.y.abs() < 1e-6);
    }
}
