//! Geometric math foundation for the Vulkan-Sim reproduction.
//!
//! This crate provides the small, allocation-free linear-algebra kit the
//! simulator is built on: [`Vec3`], affine transforms ([`Mat4x3`]), rays,
//! axis-aligned bounding boxes ([`Aabb`]) and the two intersection routines
//! the paper's RT unit *Operation Units* implement in hardware:
//! slab-method ray-box tests ([`intersect::ray_aabb`]) and Möller–Trumbore
//! ray-triangle tests ([`intersect::ray_triangle`]).
//!
//! # Example
//!
//! ```
//! use vksim_math::{Ray, Vec3, Aabb, intersect};
//!
//! let ray = Ray::new(Vec3::new(0.0, 0.0, -5.0), Vec3::new(0.0, 0.0, 1.0));
//! let boxx = Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0));
//! assert!(intersect::ray_aabb(&ray, &boxx, 0.0, f32::INFINITY).is_some());
//! ```

pub mod aabb;
pub mod intersect;
pub mod mat;
pub mod ray;
pub mod vec3;

pub use aabb::Aabb;
pub use intersect::{ray_aabb, ray_triangle, TriangleHit};
pub use mat::{Mat4, Mat4x3};
pub use ray::Ray;
pub use vec3::Vec3;
