//! Versioned, checksummed machine-state snapshots.
//!
//! Long paper-scale runs (48 SMs, 8 FR-FCFS partitions, millions of
//! cycles) must survive crashes and kills: this crate is the wire format
//! that every stateful crate serializes into so a run can be checkpointed
//! at a cycle boundary and resumed bit-exactly later. It sits below every
//! timing crate in the workspace graph and is dependency-free by design.
//!
//! Three layers:
//!
//! * [`Enc`] / [`Dec`] — a flat little-endian byte codec (fixed-width
//!   integers, `f64` via its bit pattern, length-prefixed strings and
//!   sequences). Every stateful type writes itself field-by-field; there
//!   is no reflection and no schema beyond the code itself.
//! * [`Snapshot`] — the file container: an 8-byte magic, a format
//!   version, a 64-bit configuration fingerprint, the payload, and an
//!   FNV-1a-64 checksum trailer over everything before it.
//! * atomic persistence — [`Snapshot::write_atomic`] writes to a
//!   temporary sibling and renames, so a checkpoint file is either the
//!   complete old snapshot or the complete new one, never a torn write.
//!
//! Determinism contract: encoders must produce identical bytes for
//! identical machine state (hash-map contents are written sorted by key;
//! heaps as sorted sequences), so "snapshot → restore → snapshot" is
//! byte-idempotent and restored runs replay exactly.
//!
//! Snapshots are host-format files: multi-byte fields are explicitly
//! little-endian, but the payload layout is tied to [`FORMAT_VERSION`]
//! and is not a cross-release interchange format.

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Leading magic of every snapshot file.
pub const MAGIC: [u8; 8] = *b"VKSNAP01";

/// Current payload layout version. Bump on any incompatible change to
/// what the workspace crates encode.
pub const FORMAT_VERSION: u32 = 1;

/// Offset basis of FNV-1a-64.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// Prime of FNV-1a-64.
const FNV_PRIME: u64 = 0x1000_0000_01b3;

/// FNV-1a-64 over `bytes`, continuing from `state` (seed with
/// [`fnv1a_init`]). Used both for the file checksum and for the
/// configuration fingerprint.
pub fn fnv1a(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// The FNV-1a-64 offset basis, the initial `state` for [`fnv1a`].
pub fn fnv1a_init() -> u64 {
    FNV_OFFSET
}

/// Everything that can go wrong producing or consuming a snapshot.
#[derive(Debug)]
pub enum SnapError {
    /// Filesystem failure while reading or writing a snapshot file.
    Io(String),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's layout version is not [`FORMAT_VERSION`].
    BadVersion {
        /// Version found in the file.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// The checksum trailer does not match the file contents.
    BadChecksum,
    /// The decoder ran past the end of the payload.
    Truncated,
    /// The payload decoded to an impossible value (bad enum tag,
    /// oversized length, unconsumed trailing bytes, ...).
    Malformed(String),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Io(detail) => write!(f, "snapshot i/o error: {detail}"),
            SnapError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapError::BadVersion { found, expected } => {
                write!(f, "snapshot format version {found}, expected {expected}")
            }
            SnapError::BadChecksum => write!(f, "snapshot checksum mismatch (corrupt file)"),
            SnapError::Truncated => write!(f, "snapshot payload truncated"),
            SnapError::Malformed(detail) => write!(f, "malformed snapshot: {detail}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// Byte encoder. All integers are little-endian fixed width; sequences
/// and strings carry a `u64` length prefix.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Writes a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes an `f32` as its IEEE-754 bit pattern.
    pub fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }

    /// Writes an `f64` as its IEEE-754 bit pattern (NaN payloads and
    /// signed zeros round-trip exactly).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a sequence-length prefix.
    pub fn seq(&mut self, n: usize) {
        self.u64(n as u64);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.seq(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes length-prefixed raw bytes.
    pub fn bytes(&mut self, b: &[u8]) {
        self.seq(b.len());
        self.buf.extend_from_slice(b);
    }

    /// Writes an `Option<u64>` as a presence byte plus the value.
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
            None => self.u8(0),
        }
    }

    /// Writes an `Option<u32>` as a presence byte plus the value.
    pub fn opt_u32(&mut self, v: Option<u32>) {
        match v {
            Some(x) => {
                self.u8(1);
                self.u32(x);
            }
            None => self.u8(0),
        }
    }
}

/// Byte decoder over a payload slice. Every read is bounds-checked and
/// returns [`SnapError::Truncated`] past the end.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool; any byte other than 0/1 is malformed.
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapError::Malformed(format!("bool byte {b}"))),
        }
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, SnapError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, SnapError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `u64` and narrows it to `usize`.
    pub fn usize(&mut self) -> Result<usize, SnapError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| SnapError::Malformed(format!("usize {v}")))
    }

    /// Reads an `f32` bit pattern.
    pub fn f32(&mut self) -> Result<f32, SnapError> {
        Ok(f32::from_bits(self.u32()?))
    }

    /// Reads an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a sequence-length prefix, rejecting lengths that could not
    /// possibly fit in the remaining payload (corruption guard so a bad
    /// length cannot trigger a huge allocation).
    pub fn seq(&mut self) -> Result<usize, SnapError> {
        let n = self.usize()?;
        if n > self.remaining() {
            return Err(SnapError::Malformed(format!(
                "sequence length {n} exceeds {} remaining payload bytes",
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapError> {
        let n = self.seq()?;
        let raw = self.take(n)?;
        String::from_utf8(raw.to_vec()).map_err(|_| SnapError::Malformed("non-UTF-8 string".into()))
    }

    /// Reads length-prefixed raw bytes.
    pub fn bytes(&mut self) -> Result<Vec<u8>, SnapError> {
        let n = self.seq()?;
        Ok(self.take(n)?.to_vec())
    }

    /// Reads an `Option<u64>`.
    pub fn opt_u64(&mut self) -> Result<Option<u64>, SnapError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            b => Err(SnapError::Malformed(format!("option tag {b}"))),
        }
    }

    /// Reads an `Option<u32>`.
    pub fn opt_u32(&mut self) -> Result<Option<u32>, SnapError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u32()?)),
            b => Err(SnapError::Malformed(format!("option tag {b}"))),
        }
    }

    /// Asserts the whole payload was consumed — catches encoder/decoder
    /// drift where a field was added to one side only.
    pub fn finish(&self) -> Result<(), SnapError> {
        if self.remaining() != 0 {
            return Err(SnapError::Malformed(format!(
                "{} unconsumed trailing bytes",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// One snapshot: a format version, the configuration fingerprint of the
/// run that produced it, and the opaque machine-state payload.
pub struct Snapshot {
    /// Payload layout version ([`FORMAT_VERSION`] when produced by this
    /// build).
    pub version: u32,
    /// FNV-1a-64 fingerprint of the producing configuration + workload;
    /// a resume under a different configuration must be refused.
    pub fingerprint: u64,
    /// The encoded machine state.
    pub payload: Vec<u8>,
}

impl Snapshot {
    /// Wraps a payload under the current format version.
    pub fn new(fingerprint: u64, payload: Vec<u8>) -> Self {
        Self {
            version: FORMAT_VERSION,
            fingerprint,
            payload,
        }
    }

    /// Serializes the container: magic, version, fingerprint,
    /// length-prefixed payload, FNV-1a-64 checksum of all prior bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.payload.len() + 36);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&self.fingerprint.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.payload);
        let sum = fnv1a(fnv1a_init(), &out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Parses and verifies a container produced by [`Snapshot::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapError> {
        // magic(8) + version(4) + fingerprint(8) + len(8) + checksum(8)
        if bytes.len() < 36 {
            return Err(SnapError::Truncated);
        }
        if bytes[..8] != MAGIC {
            return Err(SnapError::BadMagic);
        }
        let body = &bytes[..bytes.len() - 8];
        let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
        if fnv1a(fnv1a_init(), body) != stored {
            return Err(SnapError::BadChecksum);
        }
        let mut d = Dec::new(&bytes[8..bytes.len() - 8]);
        let version = d.u32()?;
        if version != FORMAT_VERSION {
            return Err(SnapError::BadVersion {
                found: version,
                expected: FORMAT_VERSION,
            });
        }
        let fingerprint = d.u64()?;
        let payload = d.bytes()?;
        d.finish()?;
        Ok(Self {
            version,
            fingerprint,
            payload,
        })
    }

    /// Writes the snapshot to `path` atomically: the bytes go to a
    /// temporary sibling in the same directory (created if missing) and
    /// are renamed into place, so readers never observe a torn file.
    pub fn write_atomic(&self, path: &Path) -> Result<(), SnapError> {
        let io = |e: std::io::Error| SnapError::Io(format!("{}: {e}", path.display()));
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent).map_err(io)?;
            }
        }
        let tmp: PathBuf = path.with_extension("vksnap.tmp");
        {
            let mut f = fs::File::create(&tmp).map_err(io)?;
            f.write_all(&self.to_bytes()).map_err(io)?;
            f.sync_all().map_err(io)?;
        }
        fs::rename(&tmp, path).map_err(io)
    }

    /// Reads and verifies a snapshot file.
    pub fn read(path: &Path) -> Result<Self, SnapError> {
        let bytes =
            fs::read(path).map_err(|e| SnapError::Io(format!("{}: {e}", path.display())))?;
        Self::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        let mut e = Enc::new();
        e.u8(7);
        e.bool(true);
        e.u16(0xbeef);
        e.u32(0xdead_beef);
        e.u64(u64::MAX - 3);
        e.i64(-42);
        e.f32(1.5);
        e.f64(-0.0);
        e.f64(f64::NAN);
        e.str("warp μ");
        e.bytes(&[1, 2, 3]);
        e.opt_u64(Some(9));
        e.opt_u64(None);
        e.opt_u32(Some(4));
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert!(d.bool().unwrap());
        assert_eq!(d.u16().unwrap(), 0xbeef);
        assert_eq!(d.u32().unwrap(), 0xdead_beef);
        assert_eq!(d.u64().unwrap(), u64::MAX - 3);
        assert_eq!(d.i64().unwrap(), -42);
        assert_eq!(d.f32().unwrap(), 1.5);
        let z = d.f64().unwrap();
        assert_eq!(z.to_bits(), (-0.0f64).to_bits());
        assert!(d.f64().unwrap().is_nan());
        assert_eq!(d.str().unwrap(), "warp μ");
        assert_eq!(d.bytes().unwrap(), vec![1, 2, 3]);
        assert_eq!(d.opt_u64().unwrap(), Some(9));
        assert_eq!(d.opt_u64().unwrap(), None);
        assert_eq!(d.opt_u32().unwrap(), Some(4));
        d.finish().unwrap();
    }

    #[test]
    fn truncated_reads_are_errors_not_panics() {
        let mut e = Enc::new();
        e.u64(1);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes[..5]);
        assert!(matches!(d.u64(), Err(SnapError::Truncated)));
    }

    #[test]
    fn oversized_sequence_length_is_rejected() {
        let mut e = Enc::new();
        e.u64(1 << 40); // claims a petabyte-scale sequence
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert!(matches!(d.seq(), Err(SnapError::Malformed(_))));
    }

    #[test]
    fn unconsumed_payload_is_detected() {
        let mut e = Enc::new();
        e.u32(5);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        d.u16().unwrap();
        assert!(matches!(d.finish(), Err(SnapError::Malformed(_))));
    }

    #[test]
    fn container_round_trips() {
        let snap = Snapshot::new(0x1234_5678, vec![9, 8, 7, 6]);
        let bytes = snap.to_bytes();
        let back = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back.version, FORMAT_VERSION);
        assert_eq!(back.fingerprint, 0x1234_5678);
        assert_eq!(back.payload, vec![9, 8, 7, 6]);
        // The container encoding itself is deterministic.
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn corruption_is_detected_at_every_byte() {
        let bytes = Snapshot::new(42, b"state".to_vec()).to_bytes();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                Snapshot::from_bytes(&bad).is_err(),
                "flip at byte {i} went unnoticed"
            );
        }
    }

    #[test]
    fn wrong_version_is_a_structured_error() {
        let mut snap = Snapshot::new(1, vec![]);
        snap.version = FORMAT_VERSION + 1;
        // Re-checksum by rebuilding the container manually.
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&snap.version.to_le_bytes());
        out.extend_from_slice(&snap.fingerprint.to_le_bytes());
        out.extend_from_slice(&0u64.to_le_bytes());
        let sum = fnv1a(fnv1a_init(), &out);
        out.extend_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            Snapshot::from_bytes(&out),
            Err(SnapError::BadVersion { found, expected })
                if found == FORMAT_VERSION + 1 && expected == FORMAT_VERSION
        ));
    }

    #[test]
    fn write_atomic_creates_parents_and_reads_back() {
        let dir = std::env::temp_dir().join(format!(
            "vksnap-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("deep/nested/ckpt-100.vksnap");
        let snap = Snapshot::new(7, vec![1, 1, 2, 3, 5, 8]);
        snap.write_atomic(&path).unwrap();
        let back = Snapshot::read(&path).unwrap();
        assert_eq!(back.fingerprint, 7);
        assert_eq!(back.payload, vec![1, 1, 2, 3, 5, 8]);
        // No temp file left behind.
        assert!(!path.with_extension("vksnap.tmp").exists());
        fs::remove_dir_all(&dir).unwrap();
    }
}
