//! Shader IR and the NIR-to-PTX translator.
//!
//! Real Vulkan-Sim consumes GLSL shaders precompiled to SPIR-V, lowers them
//! through Mesa to the NIR intermediate representation, and translates NIR
//! to PTX with a custom backend (paper §III-B2). This crate reproduces that
//! layer with a structured, NIR-like IR:
//!
//! * [`ir`] — expressions, statements and shader modules, including the 15
//!   ray-tracing intrinsics NIR carries (`traceRayEXT`,
//!   `loadRayWorldOrigin`, `loadRayLaunchId`, hit-attribute queries,
//!   `reportIntersectionEXT`, ...);
//! * [`builder`] — an ergonomic Rust DSL for writing shaders (standing in
//!   for GLSL source);
//! * [`translate`] — the NIR→ISA translator. `traceRayEXT` lowers to the
//!   paper's Algorithm 1: `traverseAS`, a delayed intersection-shader loop
//!   with if-else-if shader-ID dispatch, conditional closest-hit/miss
//!   dispatch, and `endTraceRay`. With
//!   [`translate::TranslateOptions::fcc`] enabled it lowers to Algorithm 3
//!   (function-call coalescing) instead, reading shader IDs through
//!   `getNextCoalescedCall`.
//!
//! Shader *calls* are inlined (the paper's "one thread per raygen shader"
//! mapping treats shader calls as function calls); recursive `traceRayEXT`
//! is inlined up to the pipeline's declared maximum recursion depth.
//!
//! # Example
//!
//! ```
//! use vksim_shader::builder::ShaderBuilder;
//! use vksim_shader::ir::ShaderKind;
//! use vksim_shader::translate::{translate, PipelineShaders, TranslateOptions};
//!
//! // A raygen that writes launch-id x to a buffer — "hello world" of RT.
//! let mut rg = ShaderBuilder::new(ShaderKind::RayGen);
//! let x = rg.launch_id(0);
//! let base = rg.buffer_base(0);
//! let addr = rg.var_u32(base + x.clone() * rg.c_u32(4));
//! rg.store(rg.v(addr), 0, x);
//! let raygen = rg.finish();
//!
//! let pipeline = PipelineShaders::raygen_only(raygen);
//! let prog = translate(&pipeline, &TranslateOptions::default()).unwrap();
//! assert!(prog.len() > 0);
//! ```

pub mod builder;
pub mod ir;
pub mod translate;

pub use builder::ShaderBuilder;
pub use ir::{Builtin, Expr, ShaderKind, ShaderModule, Stmt, Ty, Var};
pub use translate::{translate, PipelineShaders, TranslateError, TranslateOptions};

/// Number of 32-bit payload slots carried between shader stages.
pub const PAYLOAD_SLOTS: usize = 8;

/// Address of the descriptor table in simulated memory: slot `i` holds the
/// 32-bit base address of descriptor binding `i`.
pub const DESCRIPTOR_TABLE_ADDR: u64 = 0x100;

/// Maximum number of descriptor bindings.
pub const MAX_DESCRIPTOR_BINDINGS: u32 = 32;
