//! NIR-like structured shader IR.
//!
//! The IR is deliberately close to NIR's shape: scalar SSA-ish expressions,
//! structured control flow (NIR jumps are structurized before backends see
//! them), and ray-tracing intrinsics as first-class operations. The
//! translator in [`crate::translate`] lowers it to the PTX-like ISA.

pub use vksim_isa::op::{CmpOp, RtIdxQuery};

/// Scalar value types.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Ty {
    /// 32-bit float.
    F32,
    /// 32-bit unsigned integer.
    U32,
    /// Boolean (lives in predicate registers).
    Bool,
}

/// A shader-local variable handle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Var(pub u32);

/// Ray-tracing pipeline stage of a shader (paper Fig. 5).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ShaderKind {
    /// Ray generation: entry point, one invocation per thread.
    RayGen,
    /// Closest-hit: runs when traversal commits a hit.
    ClosestHit,
    /// Miss: runs when the ray hits nothing.
    Miss,
    /// Any-hit: validates candidate hits.
    AnyHit,
    /// Intersection: evaluates procedural geometry.
    Intersection,
}

/// Binary operators. Integer or float semantics follow the operand type.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (float only).
    Div,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Bitwise and (u32 only).
    And,
    /// Bitwise or (u32 only).
    Or,
    /// Bitwise xor (u32 only).
    Xor,
    /// Shift left (u32 only).
    Shl,
    /// Shift right (u32 only).
    Shr,
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Negate (f32).
    Neg,
    /// Absolute value (f32).
    Abs,
    /// Square root (f32).
    Sqrt,
    /// Reciprocal square root (f32).
    Rsqrt,
    /// Sine (f32).
    Sin,
    /// Cosine (f32).
    Cos,
    /// Floor (f32).
    Floor,
    /// Convert f32 -> u32 via i32 truncation.
    F2U,
    /// Convert u32 -> f32.
    U2F,
}

/// Built-in inputs — the NIR ray-tracing load intrinsics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Builtin {
    /// `gl_LaunchIDEXT` component (`load_ray_launch_id`).
    LaunchId(u8),
    /// `gl_LaunchSizeEXT` component.
    LaunchSize(u8),
    /// Committed-hit kind: 0 miss, 1 triangle, 2 procedural.
    HitKind,
    /// Committed-hit `gl_HitTEXT`.
    HitT,
    /// Committed-hit barycentric u.
    HitU,
    /// Committed-hit barycentric v.
    HitV,
    /// `gl_PrimitiveID` of the committed hit.
    HitPrimitiveIndex,
    /// `gl_InstanceID` of the committed hit.
    HitInstanceIndex,
    /// `gl_InstanceCustomIndexEXT` of the committed hit.
    HitInstanceCustomIndex,
    /// World-space geometric normal component of the committed hit.
    HitWorldNormal(u8),
    /// `gl_WorldRayOriginEXT` component (`loadRayWorldOrigin`).
    RayOrigin(u8),
    /// `gl_WorldRayDirectionEXT` component.
    RayDirection(u8),
    /// `gl_RayTminEXT`.
    RayTMin,
    /// Current trace recursion depth.
    RecursionDepth,
}

impl Builtin {
    /// Result type of the builtin.
    pub fn ty(self) -> Ty {
        match self {
            Builtin::LaunchId(_)
            | Builtin::LaunchSize(_)
            | Builtin::HitKind
            | Builtin::HitPrimitiveIndex
            | Builtin::HitInstanceIndex
            | Builtin::HitInstanceCustomIndex
            | Builtin::RecursionDepth => Ty::U32,
            _ => Ty::F32,
        }
    }
}

/// An expression tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Float literal.
    ConstF(f32),
    /// Unsigned literal.
    ConstU(u32),
    /// Variable read.
    Var(Var),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// Comparison producing a boolean.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Boolean conjunction.
    BoolAnd(Box<Expr>, Box<Expr>),
    /// Boolean negation.
    BoolNot(Box<Expr>),
    /// `if cond { a } else { b }` as a value.
    Select(Box<Expr>, Box<Expr>, Box<Expr>),
    /// 32-bit load from global memory at `addr + offset`.
    Load {
        /// Address expression (u32).
        addr: Box<Expr>,
        /// Immediate byte offset.
        offset: i32,
        /// Type the loaded bits should be treated as.
        ty: Ty,
    },
    /// Base address of descriptor binding `n` (read from the descriptor
    /// table, like a Vulkan descriptor-set fetch).
    BufferBase(u32),
    /// Built-in input.
    Builtin(Builtin),
    /// Per-candidate intersection attribute; only valid inside intersection
    /// or any-hit shaders, where the translator substitutes the current
    /// candidate index.
    IntersectionAttr(RtIdxQuery),
    /// Outgoing payload slot (the payload of traces *this* shader issues).
    Payload(u8),
    /// Incoming payload slot (invalid in raygen shaders).
    PayloadIn(u8),
}

impl Expr {
    /// Result type of this expression given the owning module's variable
    /// types.
    pub fn ty(&self, module: &ShaderModule) -> Ty {
        match self {
            Expr::ConstF(_) => Ty::F32,
            Expr::ConstU(_) => Ty::U32,
            Expr::Var(v) => module.var_ty(*v),
            Expr::Bin(_, a, _) => a.ty(module),
            Expr::Un(op, a) => match op {
                UnOp::F2U => Ty::U32,
                UnOp::U2F => Ty::F32,
                _ => a.ty(module),
            },
            Expr::Cmp(..) | Expr::BoolAnd(..) | Expr::BoolNot(..) => Ty::Bool,
            Expr::Select(_, a, _) => a.ty(module),
            Expr::Load { ty, .. } => *ty,
            Expr::BufferBase(_) => Ty::U32,
            Expr::Builtin(b) => b.ty(),
            Expr::IntersectionAttr(q) => match q {
                RtIdxQuery::IntersectionTEnter => Ty::F32,
                _ => Ty::U32,
            },
            // Payload slots are reinterpreted freely; default to F32 (color
            // data). Integer payloads go through bit-preserving moves.
            Expr::Payload(_) | Expr::PayloadIn(_) => Ty::F32,
        }
    }
}

/// A statement.
// `TraceRay` dwarfs the other variants, but statement vectors are tiny
// (shader bodies, not per-ray data) and boxing its fields would churn
// every builder call site for no measurable win.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `var = expr`.
    Set(Var, Expr),
    /// 32-bit store to global memory.
    Store {
        /// Address expression (u32).
        addr: Expr,
        /// Immediate byte offset.
        offset: i32,
        /// Value to store.
        value: Expr,
    },
    /// Write an outgoing-payload slot.
    SetPayload(u8, Expr),
    /// Write an incoming-payload slot (how hit/miss shaders return data).
    SetPayloadIn(u8, Expr),
    /// Structured conditional.
    If {
        /// Condition (Bool).
        cond: Expr,
        /// Taken block.
        then_blk: Vec<Stmt>,
        /// Not-taken block (may be empty).
        else_blk: Vec<Stmt>,
    },
    /// Structured loop; `cond` re-evaluated each iteration.
    While {
        /// Continue condition (Bool).
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `traceRayEXT`: the translator expands this to Algorithm 1.
    TraceRay {
        /// Ray origin (x, y, z), f32.
        origin: [Expr; 3],
        /// Ray direction (x, y, z), f32.
        dir: [Expr; 3],
        /// Minimum t.
        t_min: Expr,
        /// Maximum t.
        t_max: Expr,
        /// Vulkan ray flags (bit 0 = terminate on first hit).
        flags: Expr,
        /// Which miss shader runs if nothing is hit.
        miss_index: u32,
    },
    /// `reportIntersectionEXT(t)`; only valid in intersection shaders.
    ReportIntersection {
        /// Hit parameter.
        t: Expr,
    },
}

/// A complete shader: a stage, variable table and body.
#[derive(Clone, Debug, PartialEq)]
pub struct ShaderModule {
    /// Pipeline stage.
    pub kind: ShaderKind,
    /// Human-readable name (diagnostics).
    pub name: String,
    /// Variable types; `Var(i)` has type `vars[i]`.
    pub vars: Vec<Ty>,
    /// Statement list.
    pub body: Vec<Stmt>,
}

impl ShaderModule {
    /// Type of variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not declared in this module.
    pub fn var_ty(&self, v: Var) -> Ty {
        self.vars[v.0 as usize]
    }

    /// Counts statements recursively (diagnostics / tests).
    pub fn stmt_count(&self) -> usize {
        fn count(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::If {
                        then_blk, else_blk, ..
                    } => 1 + count(then_blk) + count(else_blk),
                    Stmt::While { body, .. } => 1 + count(body),
                    _ => 1,
                })
                .sum()
        }
        count(&self.body)
    }

    /// `true` if the shader (recursively) contains a `TraceRay` statement.
    pub fn contains_trace(&self) -> bool {
        fn scan(stmts: &[Stmt]) -> bool {
            stmts.iter().any(|s| match s {
                Stmt::TraceRay { .. } => true,
                Stmt::If {
                    then_blk, else_blk, ..
                } => scan(then_blk) || scan(else_blk),
                Stmt::While { body, .. } => scan(body),
                _ => false,
            })
        }
        scan(&self.body)
    }
}

impl Expr {
    /// Coerces a u32 expression into a boolean (`expr != 0`); convenience
    /// for tests and generated code.
    pub fn into_bool(self) -> Expr {
        Expr::Cmp(CmpOp::Ne, Box::new(self), Box::new(Expr::ConstU(0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module_with_vars(vars: Vec<Ty>) -> ShaderModule {
        ShaderModule {
            kind: ShaderKind::RayGen,
            name: "t".into(),
            vars,
            body: vec![],
        }
    }

    #[test]
    fn expression_types() {
        let m = module_with_vars(vec![Ty::F32, Ty::U32]);
        assert_eq!(Expr::ConstF(1.0).ty(&m), Ty::F32);
        assert_eq!(Expr::Var(Var(1)).ty(&m), Ty::U32);
        let add = Expr::Bin(
            BinOp::Add,
            Box::new(Expr::Var(Var(0))),
            Box::new(Expr::ConstF(1.0)),
        );
        assert_eq!(add.ty(&m), Ty::F32);
        let cmp = Expr::Cmp(
            CmpOp::Lt,
            Box::new(Expr::ConstF(0.0)),
            Box::new(Expr::ConstF(1.0)),
        );
        assert_eq!(cmp.ty(&m), Ty::Bool);
        assert_eq!(
            Expr::Un(UnOp::F2U, Box::new(Expr::ConstF(2.0))).ty(&m),
            Ty::U32
        );
        assert_eq!(Expr::Builtin(Builtin::LaunchId(0)).ty(&m), Ty::U32);
        assert_eq!(Expr::Builtin(Builtin::HitT).ty(&m), Ty::F32);
    }

    #[test]
    fn stmt_count_recurses() {
        let m = ShaderModule {
            kind: ShaderKind::Miss,
            name: "m".into(),
            vars: vec![],
            body: vec![Stmt::If {
                cond: Expr::ConstU(1).into_bool(),
                then_blk: vec![Stmt::SetPayloadIn(0, Expr::ConstF(1.0))],
                else_blk: vec![],
            }],
        };
        assert_eq!(m.stmt_count(), 2);
    }

    #[test]
    fn contains_trace_scans_nested() {
        let trace = Stmt::TraceRay {
            origin: [Expr::ConstF(0.0), Expr::ConstF(0.0), Expr::ConstF(0.0)],
            dir: [Expr::ConstF(0.0), Expr::ConstF(0.0), Expr::ConstF(1.0)],
            t_min: Expr::ConstF(0.0),
            t_max: Expr::ConstF(1.0),
            flags: Expr::ConstU(0),
            miss_index: 0,
        };
        let m = ShaderModule {
            kind: ShaderKind::RayGen,
            name: "r".into(),
            vars: vec![],
            body: vec![Stmt::While {
                cond: Expr::ConstU(0).into_bool(),
                body: vec![trace],
            }],
        };
        assert!(m.contains_trace());
    }
}
