//! The NIR-to-PTX translator (paper §III-B2).
//!
//! `traceRayEXT` lowers to the paper's Algorithm 1:
//!
//! ```text
//! traverseAS()
//! intersectionIdx <- 0
//! while intersectionExit(intersectionIdx):
//!     shaderID <- getIntersectionShaderID()        // or getNextCoalescedCall (FCC, Alg. 3)
//!     if shaderID == intersectionID0: callIntersectionShader(shaderID)
//!     else if shaderID == intersectionID1: ...
//!     intersectionIdx++
//! if HitGeometry():
//!     shaderID <- getClosestHitShaderID()
//!     if shaderID == closestHitID0: callClosestHitShader(shaderID)
//!     else if ...
//! else:
//!     callMissShader()
//! endTraceRay()
//! ```
//!
//! "Calls" are inlined (one-thread-per-raygen mapping); recursive
//! `traceRayEXT` inside hit shaders is inlined up to the pipeline's
//! `max_recursion_depth`, mirroring Vulkan's static recursion bound. The
//! if-else-if dispatch over shader IDs is exactly what makes intersection
//! shader calls divergent — the inefficiency the FCC case study attacks.
//!
//! Structured control flow lowers to `SSY`/`SYNC`-bracketed branches so the
//! GPU model's SIMT stack reconverges at immediate post-dominators.

use crate::ir::{BinOp, Builtin, Expr, ShaderKind, ShaderModule, Stmt, Ty, UnOp, Var};
use crate::{DESCRIPTOR_TABLE_ADDR, MAX_DESCRIPTOR_BINDINGS, PAYLOAD_SLOTS};
use vksim_isa::op::{CmpOp, Instr, MemSpace, Pred, Reg, RtIdxQuery, RtQuery};
use vksim_isa::program::{Program, ProgramBuilder};

/// The set of shaders registered in one ray-tracing pipeline. Shader IDs
/// are positions within each vector (the handles a shader binding table
/// stores).
#[derive(Clone, Debug)]
pub struct PipelineShaders {
    /// The single ray-generation shader.
    pub raygen: ShaderModule,
    /// Miss shaders, selected by `traceRayEXT`'s `miss_index`.
    pub miss: Vec<ShaderModule>,
    /// Closest-hit shaders, selected by the instance SBT offset.
    pub closest_hit: Vec<ShaderModule>,
    /// Intersection shaders, selected by procedural-geometry shader IDs.
    pub intersection: Vec<ShaderModule>,
    /// Any-hit shaders; when present, `any_hit[0]` validates every
    /// procedural candidate after its intersection shader (delayed any-hit
    /// execution).
    pub any_hit: Vec<ShaderModule>,
    /// Maximum `traceRayEXT` nesting (Vulkan
    /// `maxPipelineRayRecursionDepth`); traces beyond it are elided.
    pub max_recursion_depth: u32,
}

impl PipelineShaders {
    /// A pipeline with only a raygen shader (no tracing possible).
    pub fn raygen_only(raygen: ShaderModule) -> Self {
        PipelineShaders {
            raygen,
            miss: Vec::new(),
            closest_hit: Vec::new(),
            intersection: Vec::new(),
            any_hit: Vec::new(),
            max_recursion_depth: 1,
        }
    }

    /// Total number of registered shaders.
    pub fn shader_count(&self) -> usize {
        1 + self.miss.len() + self.closest_hit.len() + self.intersection.len() + self.any_hit.len()
    }
}

/// Translation options.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TranslateOptions {
    /// Lower `traceRayEXT` with function-call coalescing (Algorithm 3)
    /// instead of the baseline intersection table (Algorithm 1).
    pub fcc: bool,
}

/// Errors from translation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TranslateError {
    /// A shader was registered under the wrong pipeline stage.
    WrongStage {
        /// Stage the slot requires.
        expected: ShaderKind,
        /// Stage the module declares.
        found: ShaderKind,
    },
    /// `PayloadIn` used in the raygen shader (it has no caller).
    PayloadInInRayGen,
    /// `reportIntersectionEXT` outside an intersection shader.
    ReportOutsideIntersection,
    /// Payload slot index out of range.
    PayloadSlotOutOfRange(u8),
    /// Descriptor binding out of range.
    BindingOutOfRange(u32),
    /// `traceRayEXT` references a miss shader that is not registered.
    MissingMissShader(u32),
    /// Unsupported operation for the operand type (e.g. u32 division).
    UnsupportedOp(&'static str),
}

impl std::fmt::Display for TranslateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TranslateError::WrongStage { expected, found } => {
                write!(
                    f,
                    "shader stage mismatch: expected {expected:?}, found {found:?}"
                )
            }
            TranslateError::PayloadInInRayGen => write!(f, "incoming payload used in raygen"),
            TranslateError::ReportOutsideIntersection => {
                write!(f, "reportIntersection outside an intersection shader")
            }
            TranslateError::PayloadSlotOutOfRange(s) => write!(f, "payload slot {s} out of range"),
            TranslateError::BindingOutOfRange(b) => {
                write!(f, "descriptor binding {b} out of range")
            }
            TranslateError::MissingMissShader(i) => write!(f, "miss shader {i} not registered"),
            TranslateError::UnsupportedOp(op) => write!(f, "unsupported operation: {op}"),
        }
    }
}

impl std::error::Error for TranslateError {}

/// Translates a pipeline into one executable program rooted at the raygen
/// shader.
///
/// # Errors
///
/// Returns a [`TranslateError`] when the pipeline is malformed (wrong
/// stages, bad payload slots, missing miss shaders, ...).
pub fn translate(
    pipeline: &PipelineShaders,
    opts: &TranslateOptions,
) -> Result<Program, TranslateError> {
    if pipeline.raygen.kind != ShaderKind::RayGen {
        return Err(TranslateError::WrongStage {
            expected: ShaderKind::RayGen,
            found: pipeline.raygen.kind,
        });
    }
    check_stages(&pipeline.miss, ShaderKind::Miss)?;
    check_stages(&pipeline.closest_hit, ShaderKind::ClosestHit)?;
    check_stages(&pipeline.intersection, ShaderKind::Intersection)?;
    check_stages(&pipeline.any_hit, ShaderKind::AnyHit)?;

    let mut cx = Cx {
        b: ProgramBuilder::new(),
        pipeline,
        opts: *opts,
        payload_regs: Vec::new(),
        temps: Vec::new(),
        temp_preds: Vec::new(),
    };
    let mut scope = Scope::for_module(&pipeline.raygen, 0, None, &mut cx);
    cx.gen_block(&pipeline.raygen.body, &mut scope)?;
    cx.b.exit();
    Ok(cx.b.build())
}

fn check_stages(mods: &[ShaderModule], expected: ShaderKind) -> Result<(), TranslateError> {
    for m in mods {
        if m.kind != expected {
            return Err(TranslateError::WrongStage {
                expected,
                found: m.kind,
            });
        }
    }
    Ok(())
}

/// Per-inlined-shader state.
struct Scope {
    /// Register assigned to each declared variable.
    var_regs: Vec<Reg>,
    /// Variable types (copied so the scope is self-contained).
    var_tys: Vec<Ty>,
    /// Shader stage being generated.
    kind: ShaderKind,
    /// Trace nesting depth of this shader (raygen = 0).
    depth: u32,
    /// The current candidate-index register inside the intersection loop.
    isect_idx: Option<Reg>,
}

impl Scope {
    fn for_module(m: &ShaderModule, depth: u32, isect_idx: Option<Reg>, cx: &mut Cx) -> Scope {
        let var_regs = m.vars.iter().map(|_| cx.b.reg()).collect();
        Scope {
            var_regs,
            var_tys: m.vars.clone(),
            kind: m.kind,
            depth,
            isect_idx,
        }
    }

    fn var_ty(&self, v: Var) -> Ty {
        self.var_tys[v.0 as usize]
    }
}

/// An evaluated operand: its register and whether it is a reusable temp.
#[derive(Clone, Copy)]
struct Val {
    reg: Reg,
    temp: bool,
}

struct Cx<'a> {
    b: ProgramBuilder,
    pipeline: &'a PipelineShaders,
    opts: TranslateOptions,
    /// Payload register file per trace depth; `payload_regs[d]` backs traces
    /// issued by shaders at depth `d`.
    payload_regs: Vec<[Reg; PAYLOAD_SLOTS]>,
    temps: Vec<Reg>,
    temp_preds: Vec<Pred>,
}

impl<'a> Cx<'a> {
    fn alloc_temp(&mut self) -> Reg {
        self.temps.pop().unwrap_or_else(|| self.b.reg())
    }

    fn free(&mut self, v: Val) {
        if v.temp {
            self.temps.push(v.reg);
        }
    }

    fn alloc_pred(&mut self) -> Pred {
        self.temp_preds.pop().unwrap_or_else(|| self.b.pred())
    }

    fn free_pred(&mut self, p: Pred) {
        self.temp_preds.push(p);
    }

    fn payload_reg(&mut self, depth: u32, slot: u8) -> Result<Reg, TranslateError> {
        if slot as usize >= PAYLOAD_SLOTS {
            return Err(TranslateError::PayloadSlotOutOfRange(slot));
        }
        while self.payload_regs.len() <= depth as usize {
            let arr = std::array::from_fn(|_| self.b.reg());
            self.payload_regs.push(arr);
        }
        Ok(self.payload_regs[depth as usize][slot as usize])
    }

    // ---- expression codegen ----

    fn eval_ty(&self, e: &Expr, scope: &Scope) -> Ty {
        match e {
            Expr::ConstF(_) => Ty::F32,
            Expr::ConstU(_) => Ty::U32,
            Expr::Var(v) => scope.var_ty(*v),
            Expr::Bin(_, a, _) => self.eval_ty(a, scope),
            Expr::Un(op, a) => match op {
                UnOp::F2U => Ty::U32,
                UnOp::U2F => Ty::F32,
                _ => self.eval_ty(a, scope),
            },
            Expr::Cmp(..) | Expr::BoolAnd(..) | Expr::BoolNot(..) => Ty::Bool,
            Expr::Select(_, a, _) => self.eval_ty(a, scope),
            Expr::Load { ty, .. } => *ty,
            Expr::BufferBase(_) => Ty::U32,
            Expr::Builtin(b) => b.ty(),
            Expr::IntersectionAttr(q) => match q {
                RtIdxQuery::IntersectionTEnter => Ty::F32,
                _ => Ty::U32,
            },
            Expr::Payload(_) | Expr::PayloadIn(_) => Ty::F32,
        }
    }

    fn eval(&mut self, e: &Expr, scope: &Scope) -> Result<Val, TranslateError> {
        match e {
            Expr::ConstF(v) => {
                let r = self.alloc_temp();
                self.b.mov_imm_f32(r, *v);
                Ok(Val { reg: r, temp: true })
            }
            Expr::ConstU(v) => {
                let r = self.alloc_temp();
                self.b.mov_imm_u32(r, *v);
                Ok(Val { reg: r, temp: true })
            }
            Expr::Var(v) => Ok(Val {
                reg: scope.var_regs[v.0 as usize],
                temp: false,
            }),
            Expr::Bin(op, a, c) => {
                let ty = self.eval_ty(a, scope);
                let va = self.eval(a, scope)?;
                let vb = self.eval(c, scope)?;
                self.free(va);
                self.free(vb);
                let dst = self.alloc_temp();
                let (a, b) = (va.reg, vb.reg);
                let instr = match (op, ty) {
                    (BinOp::Add, Ty::F32) => Instr::FAdd { dst, a, b },
                    (BinOp::Sub, Ty::F32) => Instr::FSub { dst, a, b },
                    (BinOp::Mul, Ty::F32) => Instr::FMul { dst, a, b },
                    (BinOp::Div, Ty::F32) => Instr::FDiv { dst, a, b },
                    (BinOp::Min, Ty::F32) => Instr::FMin { dst, a, b },
                    (BinOp::Max, Ty::F32) => Instr::FMax { dst, a, b },
                    (BinOp::Add, Ty::U32) => Instr::IAdd { dst, a, b },
                    (BinOp::Sub, Ty::U32) => Instr::ISub { dst, a, b },
                    (BinOp::Mul, Ty::U32) => Instr::IMul { dst, a, b },
                    (BinOp::Min, Ty::U32) => Instr::IMin { dst, a, b },
                    (BinOp::Max, Ty::U32) => Instr::IMax { dst, a, b },
                    (BinOp::And, Ty::U32) => Instr::IAnd { dst, a, b },
                    (BinOp::Or, Ty::U32) => Instr::IOr { dst, a, b },
                    (BinOp::Xor, Ty::U32) => Instr::IXor { dst, a, b },
                    (BinOp::Shl, Ty::U32) => Instr::IShl { dst, a, b },
                    (BinOp::Shr, Ty::U32) => Instr::IShr { dst, a, b },
                    (BinOp::Div, Ty::U32) => return Err(TranslateError::UnsupportedOp("u32 div")),
                    (_, Ty::Bool) => return Err(TranslateError::UnsupportedOp("bin op on bool")),
                    (op, ty) => {
                        let _ = (op, ty);
                        return Err(TranslateError::UnsupportedOp("bitwise op on f32"));
                    }
                };
                self.b.emit(instr);
                Ok(Val {
                    reg: dst,
                    temp: true,
                })
            }
            Expr::Un(op, a) => {
                let va = self.eval(a, scope)?;
                self.free(va);
                let dst = self.alloc_temp();
                let a = va.reg;
                let instr = match op {
                    UnOp::Neg => Instr::FNeg { dst, a },
                    UnOp::Abs => Instr::FAbs { dst, a },
                    UnOp::Sqrt => Instr::FSqrt { dst, a },
                    UnOp::Rsqrt => Instr::FRsqrt { dst, a },
                    UnOp::Sin => Instr::FSin { dst, a },
                    UnOp::Cos => Instr::FCos { dst, a },
                    UnOp::Floor => Instr::FFloor { dst, a },
                    UnOp::F2U => Instr::CvtF2I { dst, a },
                    UnOp::U2F => Instr::CvtU2F { dst, a },
                };
                self.b.emit(instr);
                Ok(Val {
                    reg: dst,
                    temp: true,
                })
            }
            Expr::Cmp(..) | Expr::BoolAnd(..) | Expr::BoolNot(..) => {
                // Materialize a boolean as 0/1 via select.
                let p = self.eval_bool(e, scope)?;
                let one = self.alloc_temp();
                self.b.mov_imm_u32(one, 1);
                let zero = self.alloc_temp();
                self.b.mov_imm_u32(zero, 0);
                self.temps.push(one);
                self.temps.push(zero);
                let dst = self.alloc_temp();
                self.b.emit(Instr::Sel {
                    dst,
                    cond: p,
                    a: one,
                    b: zero,
                });
                self.free_pred(p);
                Ok(Val {
                    reg: dst,
                    temp: true,
                })
            }
            Expr::Select(c, a, bb) => {
                let p = self.eval_bool(c, scope)?;
                let va = self.eval(a, scope)?;
                let vb = self.eval(bb, scope)?;
                self.free(va);
                self.free(vb);
                let dst = self.alloc_temp();
                self.b.emit(Instr::Sel {
                    dst,
                    cond: p,
                    a: va.reg,
                    b: vb.reg,
                });
                self.free_pred(p);
                Ok(Val {
                    reg: dst,
                    temp: true,
                })
            }
            Expr::Load { addr, offset, .. } => {
                let va = self.eval(addr, scope)?;
                self.free(va);
                let dst = self.alloc_temp();
                self.b.emit(Instr::Ld {
                    dst,
                    space: MemSpace::Global,
                    addr: va.reg,
                    offset: *offset,
                });
                Ok(Val {
                    reg: dst,
                    temp: true,
                })
            }
            Expr::BufferBase(n) => {
                if *n >= MAX_DESCRIPTOR_BINDINGS {
                    return Err(TranslateError::BindingOutOfRange(*n));
                }
                let a = self.alloc_temp();
                self.b.mov_imm_u32(a, DESCRIPTOR_TABLE_ADDR as u32 + n * 4);
                self.temps.push(a);
                let dst = self.alloc_temp();
                self.b.emit(Instr::Ld {
                    dst,
                    space: MemSpace::Const,
                    addr: a,
                    offset: 0,
                });
                Ok(Val {
                    reg: dst,
                    temp: true,
                })
            }
            Expr::Builtin(bi) => {
                let dst = self.alloc_temp();
                self.b.emit(Instr::RtRead {
                    dst,
                    query: builtin_query(*bi),
                });
                Ok(Val {
                    reg: dst,
                    temp: true,
                })
            }
            Expr::IntersectionAttr(q) => {
                let idx = scope
                    .isect_idx
                    .ok_or(TranslateError::ReportOutsideIntersection)?;
                let dst = self.alloc_temp();
                self.b.emit(Instr::RtReadIdx {
                    dst,
                    query: *q,
                    idx,
                });
                Ok(Val {
                    reg: dst,
                    temp: true,
                })
            }
            Expr::Payload(slot) => {
                let r = self.payload_reg(scope.depth, *slot)?;
                Ok(Val {
                    reg: r,
                    temp: false,
                })
            }
            Expr::PayloadIn(slot) => {
                if scope.depth == 0 {
                    return Err(TranslateError::PayloadInInRayGen);
                }
                let r = self.payload_reg(scope.depth - 1, *slot)?;
                Ok(Val {
                    reg: r,
                    temp: false,
                })
            }
        }
    }

    fn eval_bool(&mut self, e: &Expr, scope: &Scope) -> Result<Pred, TranslateError> {
        match e {
            Expr::Cmp(cmp, a, b) => {
                let ty = self.eval_ty(a, scope);
                let va = self.eval(a, scope)?;
                let vb = self.eval(b, scope)?;
                self.free(va);
                self.free(vb);
                let p = self.alloc_pred();
                match ty {
                    Ty::F32 => self.b.setp_f(p, *cmp, va.reg, vb.reg),
                    Ty::U32 => self.b.setp_i(p, *cmp, va.reg, vb.reg),
                    Ty::Bool => return Err(TranslateError::UnsupportedOp("cmp on bool")),
                }
                Ok(p)
            }
            Expr::BoolAnd(a, b) => {
                let pa = self.eval_bool(a, scope)?;
                let pb = self.eval_bool(b, scope)?;
                self.free_pred(pa);
                self.free_pred(pb);
                let p = self.alloc_pred();
                self.b.emit(Instr::PredAnd {
                    dst: p,
                    a: pa,
                    b: pb,
                });
                Ok(p)
            }
            Expr::BoolNot(a) => {
                let pa = self.eval_bool(a, scope)?;
                self.free_pred(pa);
                let p = self.alloc_pred();
                self.b.emit(Instr::PredNot { dst: p, a: pa });
                Ok(p)
            }
            other => {
                // Non-boolean expression used as condition: compare != 0.
                let v = self.eval(other, scope)?;
                self.free(v);
                let zero = self.alloc_temp();
                self.b.mov_imm_u32(zero, 0);
                self.temps.push(zero);
                let p = self.alloc_pred();
                self.b.setp_i(p, CmpOp::Ne, v.reg, zero);
                Ok(p)
            }
        }
    }

    // ---- statement codegen ----

    fn gen_block(&mut self, stmts: &[Stmt], scope: &mut Scope) -> Result<(), TranslateError> {
        for s in stmts {
            self.gen_stmt(s, scope)?;
        }
        Ok(())
    }

    fn gen_stmt(&mut self, s: &Stmt, scope: &mut Scope) -> Result<(), TranslateError> {
        match s {
            Stmt::Set(var, e) => {
                let v = self.eval(e, scope)?;
                let dst = scope.var_regs[var.0 as usize];
                if v.reg != dst {
                    self.b.mov(dst, v.reg);
                }
                self.free(v);
            }
            Stmt::Store {
                addr,
                offset,
                value,
            } => {
                let va = self.eval(addr, scope)?;
                let vv = self.eval(value, scope)?;
                self.b.emit(Instr::St {
                    src: vv.reg,
                    space: MemSpace::Global,
                    addr: va.reg,
                    offset: *offset,
                });
                self.free(va);
                self.free(vv);
            }
            Stmt::SetPayload(slot, e) => {
                let v = self.eval(e, scope)?;
                let dst = self.payload_reg(scope.depth, *slot)?;
                if v.reg != dst {
                    self.b.mov(dst, v.reg);
                }
                self.free(v);
            }
            Stmt::SetPayloadIn(slot, e) => {
                if scope.depth == 0 {
                    return Err(TranslateError::PayloadInInRayGen);
                }
                let v = self.eval(e, scope)?;
                let dst = self.payload_reg(scope.depth - 1, *slot)?;
                if v.reg != dst {
                    self.b.mov(dst, v.reg);
                }
                self.free(v);
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let join = self.b.new_label();
                self.b.ssy(join);
                let p = self.eval_bool(cond, scope)?;
                if else_blk.is_empty() {
                    self.b.bra_if(join, p, false);
                    self.free_pred(p);
                    self.gen_block(then_blk, scope)?;
                } else {
                    let else_l = self.b.new_label();
                    self.b.bra_if(else_l, p, false);
                    self.free_pred(p);
                    self.gen_block(then_blk, scope)?;
                    self.b.bra(join);
                    self.b.bind_label(else_l);
                    self.gen_block(else_blk, scope)?;
                }
                self.b.bind_label(join);
                self.b.sync();
            }
            Stmt::While { cond, body } => {
                let join = self.b.new_label();
                let top = self.b.new_label();
                self.b.ssy(join);
                self.b.bind_label(top);
                let p = self.eval_bool(cond, scope)?;
                self.b.bra_if(join, p, false);
                self.free_pred(p);
                self.gen_block(body, scope)?;
                self.b.bra(top);
                self.b.bind_label(join);
                self.b.sync();
            }
            Stmt::TraceRay {
                origin,
                dir,
                t_min,
                t_max,
                flags,
                miss_index,
            } => {
                self.gen_trace_ray(origin, dir, t_min, t_max, flags, *miss_index, scope)?;
            }
            Stmt::ReportIntersection { t } => {
                if scope.kind != ShaderKind::Intersection {
                    return Err(TranslateError::ReportOutsideIntersection);
                }
                let idx = scope
                    .isect_idx
                    .ok_or(TranslateError::ReportOutsideIntersection)?;
                let vt = self.eval(t, scope)?;
                self.b.emit(Instr::ReportIntersection { t: vt.reg, idx });
                self.free(vt);
            }
        }
        Ok(())
    }

    /// Lowers `traceRayEXT` per Algorithm 1 (or Algorithm 3 with FCC).
    #[allow(clippy::too_many_arguments)]
    fn gen_trace_ray(
        &mut self,
        origin: &[Expr; 3],
        dir: &[Expr; 3],
        t_min: &Expr,
        t_max: &Expr,
        flags: &Expr,
        miss_index: u32,
        scope: &mut Scope,
    ) -> Result<(), TranslateError> {
        if scope.depth >= self.pipeline.max_recursion_depth {
            // Beyond the pipeline's declared recursion bound: Vulkan makes
            // this undefined; we elide the trace (shaders guard with
            // RecursionDepth checks).
            return Ok(());
        }
        if miss_index as usize >= self.pipeline.miss.len() {
            return Err(TranslateError::MissingMissShader(miss_index));
        }

        // 1. traverseAS()
        let o: Vec<Val> = origin
            .iter()
            .map(|e| self.eval(e, scope))
            .collect::<Result<_, _>>()?;
        let d: Vec<Val> = dir
            .iter()
            .map(|e| self.eval(e, scope))
            .collect::<Result<_, _>>()?;
        let vmin = self.eval(t_min, scope)?;
        let vmax = self.eval(t_max, scope)?;
        let vflags = self.eval(flags, scope)?;
        self.b.emit(Instr::TraverseAs {
            origin: [o[0].reg, o[1].reg, o[2].reg],
            dir: [d[0].reg, d[1].reg, d[2].reg],
            tmin: vmin.reg,
            tmax: vmax.reg,
            flags: vflags.reg,
        });
        for v in o.into_iter().chain(d).chain([vmin, vmax, vflags]) {
            self.free(v);
        }

        let child_depth = scope.depth + 1;

        // 2. Delayed intersection / any-hit loop (lines 2-11).
        if !self.pipeline.intersection.is_empty() {
            let idx = self.b.reg(); // loop-carried; not pooled
            self.b.mov_imm_u32(idx, 0);
            let one = self.b.reg();
            self.b.mov_imm_u32(one, 1);
            let join = self.b.new_label();
            let top = self.b.new_label();
            self.b.ssy(join);
            self.b.bind_label(top);
            let cont = self.alloc_pred();
            self.b.emit(Instr::IntersectionValid { dst: cont, idx });
            self.b.bra_if(join, cont, false);
            self.free_pred(cont);

            // shaderID <- getIntersectionShaderID() / getNextCoalescedCall()
            let sid = self.alloc_temp();
            if self.opts.fcc {
                self.b.emit(Instr::NextCoalescedCall { dst: sid, idx });
            } else {
                self.b.emit(Instr::RtReadIdx {
                    dst: sid,
                    query: RtIdxQuery::IntersectionShaderId,
                    idx,
                });
            }

            // if-else-if dispatch over registered intersection shaders.
            let shaders: Vec<ShaderModule> = self.pipeline.intersection.to_vec();
            for (i, module) in shaders.iter().enumerate() {
                let skip = self.b.new_label();
                self.b.ssy(skip);
                let id_imm = self.alloc_temp();
                self.b.mov_imm_u32(id_imm, i as u32);
                self.temps.push(id_imm);
                let peq = self.alloc_pred();
                self.b.setp_i(peq, CmpOp::Eq, sid, id_imm);
                self.b.bra_if(skip, peq, false);
                self.free_pred(peq);
                let mut sub = Scope::for_module(module, child_depth, Some(idx), self);
                self.gen_block(&module.body, &mut sub)?;
                self.b.bind_label(skip);
                self.b.sync();
            }
            self.temps.push(sid);

            // Delayed any-hit execution: validate each candidate.
            if let Some(anyhit) = self.pipeline.any_hit.first().cloned() {
                let mut sub = Scope::for_module(&anyhit, child_depth, Some(idx), self);
                self.gen_block(&anyhit.body, &mut sub)?;
            }

            self.b.emit(Instr::IAdd {
                dst: idx,
                a: idx,
                b: one,
            });
            self.b.bra(top);
            self.b.bind_label(join);
            self.b.sync();
        }

        // 3. HitGeometry() ? closest-hit dispatch : miss (lines 12-21).
        let kind = self.alloc_temp();
        self.b.emit(Instr::RtRead {
            dst: kind,
            query: RtQuery::HitKind,
        });
        let zero = self.alloc_temp();
        self.b.mov_imm_u32(zero, 0);
        let phit = self.alloc_pred();
        self.b.setp_i(phit, CmpOp::Ne, kind, zero);
        self.temps.push(kind);
        self.temps.push(zero);

        let join = self.b.new_label();
        let miss_l = self.b.new_label();
        self.b.ssy(join);
        self.b.bra_if(miss_l, phit, false);
        self.free_pred(phit);

        // Hit side: dispatch closest-hit by SBT shader id.
        if !self.pipeline.closest_hit.is_empty() {
            let chid = self.alloc_temp();
            self.b.emit(Instr::RtRead {
                dst: chid,
                query: RtQuery::ClosestHitShaderId,
            });
            let shaders: Vec<ShaderModule> = self.pipeline.closest_hit.to_vec();
            let n = shaders.len();
            for (i, module) in shaders.iter().enumerate() {
                let last = i + 1 == n;
                let skip = self.b.new_label();
                self.b.ssy(skip);
                if !last {
                    // if shaderID == closestHitID_i
                    let id_imm = self.alloc_temp();
                    self.b.mov_imm_u32(id_imm, i as u32);
                    self.temps.push(id_imm);
                    let peq = self.alloc_pred();
                    self.b.setp_i(peq, CmpOp::Eq, chid, id_imm);
                    self.b.bra_if(skip, peq, false);
                    self.free_pred(peq);
                } else {
                    // Final else-if arm: ids >= n-1 all land here (clamped),
                    // keeping dispatch total.
                    let id_imm = self.alloc_temp();
                    self.b.mov_imm_u32(id_imm, i as u32);
                    self.temps.push(id_imm);
                    let peq = self.alloc_pred();
                    self.b.setp_i(peq, CmpOp::Ge, chid, id_imm);
                    self.b.bra_if(skip, peq, false);
                    self.free_pred(peq);
                }
                let mut sub = Scope::for_module(module, child_depth, None, self);
                self.gen_block(&module.body, &mut sub)?;
                self.b.bind_label(skip);
                self.b.sync();
            }
            self.temps.push(chid);
        }
        self.b.bra(join);

        // Miss side.
        self.b.bind_label(miss_l);
        let miss = self.pipeline.miss[miss_index as usize].clone();
        let mut sub = Scope::for_module(&miss, child_depth, None, self);
        self.gen_block(&miss.body, &mut sub)?;

        self.b.bind_label(join);
        self.b.sync();

        // 4. endTraceRay() (line 22).
        self.b.emit(Instr::EndTraceRay);
        Ok(())
    }
}

fn builtin_query(b: Builtin) -> RtQuery {
    match b {
        Builtin::LaunchId(d) => RtQuery::LaunchId(d),
        Builtin::LaunchSize(d) => RtQuery::LaunchSize(d),
        Builtin::HitKind => RtQuery::HitKind,
        Builtin::HitT => RtQuery::HitT,
        Builtin::HitU => RtQuery::HitU,
        Builtin::HitV => RtQuery::HitV,
        Builtin::HitPrimitiveIndex => RtQuery::HitPrimitiveIndex,
        Builtin::HitInstanceIndex => RtQuery::HitInstanceIndex,
        Builtin::HitInstanceCustomIndex => RtQuery::HitInstanceCustomIndex,
        Builtin::HitWorldNormal(d) => RtQuery::HitWorldNormal(d),
        Builtin::RayOrigin(d) => RtQuery::RayOrigin(d),
        Builtin::RayDirection(d) => RtQuery::RayDirection(d),
        Builtin::RayTMin => RtQuery::RayTMin,
        Builtin::RecursionDepth => RtQuery::RecursionDepth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ShaderBuilder;
    use vksim_isa::interp::{run_to_exit, RayDesc, RtHooks, ThreadState};
    use vksim_isa::SimMemory;

    /// Scripted RT runtime: configurable hit result and pending
    /// intersections; records calls.
    #[derive(Debug, Default)]
    struct ScriptRt {
        hit_kind: u32,
        hit_t: f32,
        closest_hit_shader: u32,
        pending_shader_ids: Vec<u32>,
        traversals: Vec<RayDesc>,
        reports: Vec<(u32, f32)>,
        end_count: u32,
        depth: u32,
    }

    impl RtHooks for ScriptRt {
        fn traverse(&mut self, _tid: usize, ray: RayDesc) -> Result<(), vksim_isa::RtError> {
            self.traversals.push(ray);
            self.depth += 1;
            Ok(())
        }
        fn end_trace(&mut self, _tid: usize) {
            self.end_count += 1;
            self.depth -= 1;
        }
        fn alloc_mem(&mut self, _tid: usize, _size: u32) -> u64 {
            0x6000_0000
        }
        fn query(&mut self, _tid: usize, q: RtQuery) -> u32 {
            match q {
                RtQuery::HitKind => self.hit_kind,
                RtQuery::HitT => self.hit_t.to_bits(),
                RtQuery::ClosestHitShaderId => self.closest_hit_shader,
                RtQuery::LaunchId(0) => 7,
                RtQuery::RecursionDepth => self.depth,
                _ => 0,
            }
        }
        fn query_idx(&mut self, _tid: usize, q: RtIdxQuery, idx: u32) -> u32 {
            match q {
                RtIdxQuery::IntersectionShaderId => self.pending_shader_ids[idx as usize],
                RtIdxQuery::IntersectionPrimitiveIndex => 40 + idx,
                RtIdxQuery::IntersectionTEnter => (idx as f32).to_bits(),
                _ => 0,
            }
        }
        fn intersection_valid(&mut self, _tid: usize, idx: u32) -> bool {
            (idx as usize) < self.pending_shader_ids.len()
        }
        fn next_coalesced_call(&mut self, _tid: usize, idx: u32) -> u32 {
            self.pending_shader_ids
                .get(idx as usize)
                .copied()
                .unwrap_or(u32::MAX)
        }
        fn report_intersection(
            &mut self,
            _tid: usize,
            idx: u32,
            t: f32,
        ) -> Result<(), vksim_isa::RtError> {
            self.reports.push((idx, t));
            Ok(())
        }
    }

    fn run_pipeline(p: &PipelineShaders, rt: &mut ScriptRt) -> (ThreadState, SimMemory) {
        let prog = translate(p, &TranslateOptions::default()).expect("translate");
        let mut t = ThreadState::new(prog.num_regs());
        t.preds = vec![false; prog.num_preds().max(1) as usize];
        let mut m = SimMemory::new();
        run_to_exit(&prog, &mut t, &mut m, rt).expect("run");
        (t, m)
    }

    fn trace_stmt_raygen(out_addr: u32) -> ShaderModule {
        let mut b = ShaderBuilder::new(ShaderKind::RayGen);
        b.trace_ray(
            [b.c_f32(0.0), b.c_f32(0.0), b.c_f32(0.0)],
            [b.c_f32(0.0), b.c_f32(0.0), b.c_f32(1.0)],
            b.c_f32(0.001),
            b.c_f32(1e30),
            b.c_u32(0),
            0,
        );
        // Store payload slot 0 to memory so the test can observe it.
        let a = b.var_u32(b.c_u32(out_addr));
        b.store(b.v(a), 0, b.payload(0));
        b.finish()
    }

    fn const_miss(value: f32) -> ShaderModule {
        let mut b = ShaderBuilder::new(ShaderKind::Miss);
        b.set_payload_in(0, b.c_f32(value));
        b.finish()
    }

    fn const_chit(value: f32) -> ShaderModule {
        let mut b = ShaderBuilder::new(ShaderKind::ClosestHit);
        b.set_payload_in(0, b.c_f32(value));
        b.finish()
    }

    #[test]
    fn miss_path_runs_miss_shader() {
        let p = PipelineShaders {
            raygen: trace_stmt_raygen(0x1000),
            miss: vec![const_miss(9.5)],
            closest_hit: vec![const_chit(3.25)],
            intersection: vec![],
            any_hit: vec![],
            max_recursion_depth: 1,
        };
        let mut rt = ScriptRt {
            hit_kind: 0,
            ..Default::default()
        };
        let (_, m) = run_pipeline(&p, &mut rt);
        assert_eq!(m.read_f32(0x1000), 9.5);
        assert_eq!(rt.end_count, 1);
        assert_eq!(rt.traversals.len(), 1);
    }

    #[test]
    fn hit_path_runs_closest_hit() {
        let p = PipelineShaders {
            raygen: trace_stmt_raygen(0x1000),
            miss: vec![const_miss(9.5)],
            closest_hit: vec![const_chit(3.25)],
            intersection: vec![],
            any_hit: vec![],
            max_recursion_depth: 1,
        };
        let mut rt = ScriptRt {
            hit_kind: 1,
            ..Default::default()
        };
        let (_, m) = run_pipeline(&p, &mut rt);
        assert_eq!(m.read_f32(0x1000), 3.25);
    }

    #[test]
    fn closest_hit_dispatch_by_shader_id() {
        let p = PipelineShaders {
            raygen: trace_stmt_raygen(0x1000),
            miss: vec![const_miss(0.0)],
            closest_hit: vec![const_chit(1.0), const_chit(2.0), const_chit(3.0)],
            intersection: vec![],
            any_hit: vec![],
            max_recursion_depth: 1,
        };
        for (id, expect) in [(0u32, 1.0f32), (1, 2.0), (2, 3.0), (7, 3.0)] {
            let mut rt = ScriptRt {
                hit_kind: 1,
                closest_hit_shader: id,
                ..Default::default()
            };
            let (_, m) = run_pipeline(&p, &mut rt);
            assert_eq!(m.read_f32(0x1000), expect, "shader id {id}");
        }
    }

    #[test]
    fn intersection_loop_visits_all_pending() {
        // Intersection shader 0 reports t = primitive index; shader 1
        // reports nothing.
        let mut i0 = ShaderBuilder::new(ShaderKind::Intersection);
        let prim = i0.intersection_attr(RtIdxQuery::IntersectionPrimitiveIndex);
        i0.report_intersection(prim.to_f32());
        let i1 = ShaderBuilder::new(ShaderKind::Intersection);
        let _ = i1.intersection_attr(RtIdxQuery::IntersectionShaderId);
        let p = PipelineShaders {
            raygen: trace_stmt_raygen(0x1000),
            miss: vec![const_miss(0.0)],
            closest_hit: vec![const_chit(1.0)],
            intersection: vec![i0.finish(), i1.finish()],
            any_hit: vec![],
            max_recursion_depth: 1,
        };
        let mut rt = ScriptRt {
            hit_kind: 0,
            pending_shader_ids: vec![0, 1, 0, 0],
            ..Default::default()
        };
        let (_, _) = run_pipeline(&p, &mut rt);
        // Shader 0 ran for candidates 0, 2, 3 (prim index = 40 + idx).
        assert_eq!(rt.reports, vec![(0, 40.0), (2, 42.0), (3, 43.0)]);
    }

    #[test]
    fn fcc_mode_uses_coalesced_call() {
        let mut i0 = ShaderBuilder::new(ShaderKind::Intersection);
        let prim = i0.intersection_attr(RtIdxQuery::IntersectionPrimitiveIndex);
        i0.report_intersection(prim.to_f32());
        let p = PipelineShaders {
            raygen: trace_stmt_raygen(0x1000),
            miss: vec![const_miss(0.0)],
            closest_hit: vec![const_chit(1.0)],
            intersection: vec![i0.finish()],
            any_hit: vec![],
            max_recursion_depth: 1,
        };
        let prog = translate(&p, &TranslateOptions { fcc: true }).unwrap();
        assert!(
            prog.instrs()
                .iter()
                .any(|i| matches!(i, Instr::NextCoalescedCall { .. })),
            "FCC lowering must use getNextCoalescedCall"
        );
        let baseline = translate(&p, &TranslateOptions::default()).unwrap();
        assert!(
            !baseline
                .instrs()
                .iter()
                .any(|i| matches!(i, Instr::NextCoalescedCall { .. })),
            "baseline must not"
        );
    }

    #[test]
    fn recursion_inlines_to_declared_depth() {
        // Closest-hit traces again (shadow-style); depth 2 pipeline inlines
        // one nested trace; deeper traces are elided.
        let mut ch = ShaderBuilder::new(ShaderKind::ClosestHit);
        ch.trace_ray(
            [ch.c_f32(0.0), ch.c_f32(0.0), ch.c_f32(0.0)],
            [ch.c_f32(0.0), ch.c_f32(1.0), ch.c_f32(0.0)],
            ch.c_f32(0.001),
            ch.c_f32(1e30),
            ch.c_u32(1),
            0,
        );
        ch.set_payload_in(0, ch.c_f32(5.0));
        let p = PipelineShaders {
            raygen: trace_stmt_raygen(0x1000),
            miss: vec![const_miss(1.0)],
            closest_hit: vec![ch.finish()],
            intersection: vec![],
            any_hit: vec![],
            max_recursion_depth: 2,
        };
        let prog = translate(&p, &TranslateOptions::default()).unwrap();
        let traces = prog.instrs().iter().filter(|i| i.is_trace_ray()).count();
        assert_eq!(traces, 2, "outer + one inlined nested trace");
        // Depth 1 pipeline elides the nested trace.
        let p1 = PipelineShaders {
            max_recursion_depth: 1,
            ..p
        };
        let prog1 = translate(&p1, &TranslateOptions::default()).unwrap();
        assert_eq!(
            prog1.instrs().iter().filter(|i| i.is_trace_ray()).count(),
            1
        );
    }

    #[test]
    fn nested_trace_runs_and_pops_frames() {
        let mut ch = ShaderBuilder::new(ShaderKind::ClosestHit);
        ch.trace_ray(
            [ch.c_f32(0.0), ch.c_f32(0.0), ch.c_f32(0.0)],
            [ch.c_f32(0.0), ch.c_f32(1.0), ch.c_f32(0.0)],
            ch.c_f32(0.001),
            ch.c_f32(1e30),
            ch.c_u32(1),
            0,
        );
        // Forward nested payload result + 100 to our caller.
        ch.set_payload_in(0, ch.payload(0) + ch.c_f32(100.0));
        let p = PipelineShaders {
            raygen: trace_stmt_raygen(0x1000),
            miss: vec![const_miss(7.0)],
            closest_hit: vec![ch.finish()],
            intersection: vec![],
            any_hit: vec![],
            max_recursion_depth: 2,
        };
        // First trace hits, nested trace misses -> 7 + 100.
        struct SeqRt(ScriptRt, u32);
        impl RtHooks for SeqRt {
            fn traverse(&mut self, tid: usize, ray: RayDesc) -> Result<(), vksim_isa::RtError> {
                self.0.hit_kind = if self.1 == 0 { 1 } else { 0 };
                self.1 += 1;
                self.0.traverse(tid, ray)
            }
            fn end_trace(&mut self, tid: usize) {
                self.0.end_trace(tid)
            }
            fn alloc_mem(&mut self, tid: usize, s: u32) -> u64 {
                self.0.alloc_mem(tid, s)
            }
            fn query(&mut self, tid: usize, q: RtQuery) -> u32 {
                self.0.query(tid, q)
            }
            fn query_idx(&mut self, tid: usize, q: RtIdxQuery, i: u32) -> u32 {
                self.0.query_idx(tid, q, i)
            }
            fn intersection_valid(&mut self, tid: usize, i: u32) -> bool {
                self.0.intersection_valid(tid, i)
            }
            fn next_coalesced_call(&mut self, tid: usize, i: u32) -> u32 {
                self.0.next_coalesced_call(tid, i)
            }
            fn report_intersection(
                &mut self,
                tid: usize,
                i: u32,
                t: f32,
            ) -> Result<(), vksim_isa::RtError> {
                self.0.report_intersection(tid, i, t)
            }
        }
        let prog = translate(&p, &TranslateOptions::default()).unwrap();
        let mut t = ThreadState::new(prog.num_regs());
        t.preds = vec![false; prog.num_preds().max(1) as usize];
        let mut m = SimMemory::new();
        let mut rt = SeqRt(ScriptRt::default(), 0);
        run_to_exit(&prog, &mut t, &mut m, &mut rt).unwrap();
        assert_eq!(m.read_f32(0x1000), 107.0);
        assert_eq!(rt.0.end_count, 2);
    }

    #[test]
    fn payload_in_raygen_rejected() {
        let mut b = ShaderBuilder::new(ShaderKind::RayGen);
        b.set_payload_in(0, b.c_f32(0.0));
        let p = PipelineShaders::raygen_only(b.finish());
        assert_eq!(
            translate(&p, &TranslateOptions::default()),
            Err(TranslateError::PayloadInInRayGen)
        );
    }

    #[test]
    fn report_outside_intersection_rejected() {
        let mut b = ShaderBuilder::new(ShaderKind::RayGen);
        b.report_intersection(b.c_f32(1.0));
        let p = PipelineShaders::raygen_only(b.finish());
        assert_eq!(
            translate(&p, &TranslateOptions::default()),
            Err(TranslateError::ReportOutsideIntersection)
        );
    }

    #[test]
    fn missing_miss_shader_rejected() {
        let p = PipelineShaders {
            raygen: trace_stmt_raygen(0x1000),
            miss: vec![],
            closest_hit: vec![],
            intersection: vec![],
            any_hit: vec![],
            max_recursion_depth: 1,
        };
        assert_eq!(
            translate(&p, &TranslateOptions::default()),
            Err(TranslateError::MissingMissShader(0))
        );
    }

    #[test]
    fn wrong_stage_rejected() {
        let m = const_miss(0.0);
        let p = PipelineShaders {
            raygen: trace_stmt_raygen(0x1000),
            miss: vec![const_miss(0.0)],
            closest_hit: vec![m], // a Miss module in a closest-hit slot
            intersection: vec![],
            any_hit: vec![],
            max_recursion_depth: 1,
        };
        assert!(matches!(
            translate(&p, &TranslateOptions::default()),
            Err(TranslateError::WrongStage { .. })
        ));
    }

    #[test]
    fn control_flow_if_else_executes_correct_arm() {
        let mut b = ShaderBuilder::new(ShaderKind::RayGen);
        let x = b.var_f32(b.c_f32(2.0));
        let out = b.var_u32(b.c_u32(0x2000));
        b.if_else(
            b.v(x).gt(b.c_f32(1.0)),
            |b| b.store(b.v(out), 0, b.c_f32(111.0)),
            |b| b.store(b.v(out), 0, b.c_f32(222.0)),
        );
        let p = PipelineShaders::raygen_only(b.finish());
        let mut rt = ScriptRt::default();
        let (_, m) = run_pipeline(&p, &mut rt);
        assert_eq!(m.read_f32(0x2000), 111.0);
    }

    #[test]
    fn while_loop_translates_and_runs() {
        let mut b = ShaderBuilder::new(ShaderKind::RayGen);
        let i = b.var_u32(b.c_u32(0));
        let acc = b.var_f32(b.c_f32(0.0));
        b.while_(b.v(i).lt(b.c_u32(5)), |b| {
            b.set(acc, b.v(acc) + b.c_f32(2.0));
            b.set(i, b.v(i) + b.c_u32(1));
        });
        let out = b.var_u32(b.c_u32(0x3000));
        b.store(b.v(out), 0, b.v(acc));
        let p = PipelineShaders::raygen_only(b.finish());
        let mut rt = ScriptRt::default();
        let (_, m) = run_pipeline(&p, &mut rt);
        assert_eq!(m.read_f32(0x3000), 10.0);
    }

    #[test]
    fn buffer_base_reads_descriptor_table() {
        let mut b = ShaderBuilder::new(ShaderKind::RayGen);
        let base = b.var_u32(b.buffer_base(2));
        b.store(b.v(base), 0, b.c_f32(5.0));
        let p = PipelineShaders::raygen_only(b.finish());
        let prog = translate(&p, &TranslateOptions::default()).unwrap();
        let mut t = ThreadState::new(prog.num_regs());
        t.preds = vec![false; prog.num_preds().max(1) as usize];
        let mut m = SimMemory::new();
        m.write_u32(DESCRIPTOR_TABLE_ADDR + 8, 0x4440);
        let mut rt = ScriptRt::default();
        run_to_exit(&prog, &mut t, &mut m, &mut rt).unwrap();
        assert_eq!(m.read_f32(0x4440), 5.0);
    }

    #[test]
    fn instruction_mix_is_mostly_alu() {
        // A raygen with realistic math should be ALU-dominated like the
        // paper's measured 60% ALU share.
        let mut b = ShaderBuilder::new(ShaderKind::RayGen);
        let x = b.var_f32(b.launch_id(0).to_f32());
        let y = b.var_f32(b.launch_id(1).to_f32());
        let d = b.var_f32((b.v(x) * b.v(x) + b.v(y) * b.v(y)).sqrt());
        let out = b.var_u32(b.c_u32(0x100));
        b.store(b.v(out), 0, b.v(d));
        let p = PipelineShaders::raygen_only(b.finish());
        let prog = translate(&p, &TranslateOptions::default()).unwrap();
        let alu = prog
            .instrs()
            .iter()
            .filter(|i| i.class() == vksim_isa::op::InstClass::Alu)
            .count();
        assert!(
            alu * 2 > prog.len(),
            "ALU should dominate: {alu}/{}",
            prog.len()
        );
    }
}
