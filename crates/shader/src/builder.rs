//! Ergonomic shader-authoring DSL (the stand-in for GLSL source).
//!
//! [`ShaderBuilder`] accumulates statements; structured control flow uses
//! closures. [`Expr`] implements the arithmetic operators, so shader math
//! reads naturally:
//!
//! ```
//! use vksim_shader::builder::ShaderBuilder;
//! use vksim_shader::ir::ShaderKind;
//!
//! let mut b = ShaderBuilder::new(ShaderKind::Miss);
//! let sky = b.c_f32(0.2) + b.c_f32(0.3) * b.c_f32(0.5);
//! b.set_payload_in(0, sky);
//! let m = b.finish();
//! assert_eq!(m.stmt_count(), 1);
//! ```

use crate::ir::{
    BinOp, Builtin, CmpOp, Expr, RtIdxQuery, ShaderKind, ShaderModule, Stmt, Ty, UnOp, Var,
};

impl std::ops::Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Add, Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Sub, Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Mul, Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Div for Expr {
    type Output = Expr;
    fn div(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Div, Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::Un(UnOp::Neg, Box::new(self))
    }
}

impl Expr {
    /// Component-wise minimum.
    pub fn min(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Min, Box::new(self), Box::new(rhs))
    }
    /// Component-wise maximum.
    pub fn max(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Max, Box::new(self), Box::new(rhs))
    }
    /// Bitwise and (u32).
    #[allow(clippy::should_implement_trait)] // DSL builder, not std::ops
    pub fn bitand(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::And, Box::new(self), Box::new(rhs))
    }
    /// Bitwise or (u32).
    #[allow(clippy::should_implement_trait)] // DSL builder, not std::ops
    pub fn bitor(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Or, Box::new(self), Box::new(rhs))
    }
    /// Bitwise xor (u32).
    #[allow(clippy::should_implement_trait)] // DSL builder, not std::ops
    pub fn bitxor(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Xor, Box::new(self), Box::new(rhs))
    }
    /// Shift left (u32).
    #[allow(clippy::should_implement_trait)] // DSL builder, not std::ops
    pub fn shl(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Shl, Box::new(self), Box::new(rhs))
    }
    /// Shift right (u32).
    #[allow(clippy::should_implement_trait)] // DSL builder, not std::ops
    pub fn shr(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Shr, Box::new(self), Box::new(rhs))
    }
    /// Square root.
    pub fn sqrt(self) -> Expr {
        Expr::Un(UnOp::Sqrt, Box::new(self))
    }
    /// Reciprocal square root.
    pub fn rsqrt(self) -> Expr {
        Expr::Un(UnOp::Rsqrt, Box::new(self))
    }
    /// Absolute value.
    pub fn abs(self) -> Expr {
        Expr::Un(UnOp::Abs, Box::new(self))
    }
    /// Sine.
    pub fn sin(self) -> Expr {
        Expr::Un(UnOp::Sin, Box::new(self))
    }
    /// Cosine.
    pub fn cos(self) -> Expr {
        Expr::Un(UnOp::Cos, Box::new(self))
    }
    /// Floor.
    pub fn floor(self) -> Expr {
        Expr::Un(UnOp::Floor, Box::new(self))
    }
    /// Convert f32 to u32.
    pub fn to_u32(self) -> Expr {
        Expr::Un(UnOp::F2U, Box::new(self))
    }
    /// Convert u32 to f32.
    pub fn to_f32(self) -> Expr {
        Expr::Un(UnOp::U2F, Box::new(self))
    }
    /// Comparison `self < rhs`.
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Lt, Box::new(self), Box::new(rhs))
    }
    /// Comparison `self <= rhs`.
    pub fn le(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Le, Box::new(self), Box::new(rhs))
    }
    /// Comparison `self > rhs`.
    pub fn gt(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Gt, Box::new(self), Box::new(rhs))
    }
    /// Comparison `self >= rhs`.
    pub fn ge(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ge, Box::new(self), Box::new(rhs))
    }
    /// Comparison `self == rhs`.
    pub fn eq_(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Eq, Box::new(self), Box::new(rhs))
    }
    /// Comparison `self != rhs`.
    pub fn ne_(self, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ne, Box::new(self), Box::new(rhs))
    }
    /// Boolean and.
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::BoolAnd(Box::new(self), Box::new(rhs))
    }
    /// Boolean not.
    #[allow(clippy::should_implement_trait)] // DSL builder, not std::ops
    pub fn not(self) -> Expr {
        Expr::BoolNot(Box::new(self))
    }
    /// Conditional select: `if self { a } else { b }`.
    pub fn select(self, a: Expr, b: Expr) -> Expr {
        Expr::Select(Box::new(self), Box::new(a), Box::new(b))
    }
}

/// Builds a [`ShaderModule`] statement by statement.
#[derive(Debug)]
pub struct ShaderBuilder {
    kind: ShaderKind,
    name: String,
    vars: Vec<Ty>,
    // Innermost block last; blocks for nested control flow.
    blocks: Vec<Vec<Stmt>>,
}

impl ShaderBuilder {
    /// Starts a shader of the given stage.
    pub fn new(kind: ShaderKind) -> Self {
        ShaderBuilder {
            kind,
            name: format!("{kind:?}"),
            vars: Vec::new(),
            blocks: vec![Vec::new()],
        }
    }

    /// Sets a diagnostic name.
    pub fn named(mut self, name: &str) -> Self {
        self.name = name.to_owned();
        self
    }

    /// Float literal.
    pub fn c_f32(&self, v: f32) -> Expr {
        Expr::ConstF(v)
    }

    /// Unsigned literal.
    pub fn c_u32(&self, v: u32) -> Expr {
        Expr::ConstU(v)
    }

    /// Variable read.
    pub fn v(&self, var: Var) -> Expr {
        Expr::Var(var)
    }

    /// Declares an f32 variable initialized with `init`.
    pub fn var_f32(&mut self, init: Expr) -> Var {
        self.declare(Ty::F32, init)
    }

    /// Declares a u32 variable initialized with `init`.
    pub fn var_u32(&mut self, init: Expr) -> Var {
        self.declare(Ty::U32, init)
    }

    fn declare(&mut self, ty: Ty, init: Expr) -> Var {
        let var = Var(self.vars.len() as u32);
        self.vars.push(ty);
        self.push(Stmt::Set(var, init));
        var
    }

    /// Assigns to an existing variable.
    pub fn set(&mut self, var: Var, value: Expr) {
        self.push(Stmt::Set(var, value));
    }

    /// 32-bit global store.
    pub fn store(&mut self, addr: Expr, offset: i32, value: Expr) {
        self.push(Stmt::Store {
            addr,
            offset,
            value,
        });
    }

    /// 32-bit global load as f32.
    pub fn load_f32(&self, addr: Expr, offset: i32) -> Expr {
        Expr::Load {
            addr: Box::new(addr),
            offset,
            ty: Ty::F32,
        }
    }

    /// 32-bit global load as u32.
    pub fn load_u32(&self, addr: Expr, offset: i32) -> Expr {
        Expr::Load {
            addr: Box::new(addr),
            offset,
            ty: Ty::U32,
        }
    }

    /// Base address of descriptor binding `n`.
    pub fn buffer_base(&self, n: u32) -> Expr {
        Expr::BufferBase(n)
    }

    /// `gl_LaunchIDEXT` component.
    pub fn launch_id(&self, dim: u8) -> Expr {
        Expr::Builtin(Builtin::LaunchId(dim))
    }

    /// `gl_LaunchSizeEXT` component.
    pub fn launch_size(&self, dim: u8) -> Expr {
        Expr::Builtin(Builtin::LaunchSize(dim))
    }

    /// Any builtin input.
    pub fn builtin(&self, b: Builtin) -> Expr {
        Expr::Builtin(b)
    }

    /// Outgoing-payload slot read.
    pub fn payload(&self, slot: u8) -> Expr {
        Expr::Payload(slot)
    }

    /// Outgoing-payload slot write.
    pub fn set_payload(&mut self, slot: u8, value: Expr) {
        self.push(Stmt::SetPayload(slot, value));
    }

    /// Incoming-payload slot read (hit/miss shaders).
    pub fn payload_in(&self, slot: u8) -> Expr {
        Expr::PayloadIn(slot)
    }

    /// Incoming-payload slot write (how hit/miss shaders return results).
    pub fn set_payload_in(&mut self, slot: u8, value: Expr) {
        self.push(Stmt::SetPayloadIn(slot, value));
    }

    /// Per-candidate intersection attribute (intersection shaders).
    pub fn intersection_attr(&self, q: RtIdxQuery) -> Expr {
        Expr::IntersectionAttr(q)
    }

    /// `reportIntersectionEXT(t)`.
    pub fn report_intersection(&mut self, t: Expr) {
        self.push(Stmt::ReportIntersection { t });
    }

    /// `traceRayEXT`.
    #[allow(clippy::too_many_arguments)]
    pub fn trace_ray(
        &mut self,
        origin: [Expr; 3],
        dir: [Expr; 3],
        t_min: Expr,
        t_max: Expr,
        flags: Expr,
        miss_index: u32,
    ) {
        self.push(Stmt::TraceRay {
            origin,
            dir,
            t_min,
            t_max,
            flags,
            miss_index,
        });
    }

    /// Structured `if`.
    pub fn if_<F: FnOnce(&mut Self)>(&mut self, cond: Expr, then: F) {
        self.if_else(cond, then, |_| {});
    }

    /// Structured `if`/`else`.
    pub fn if_else<F, G>(&mut self, cond: Expr, then: F, els: G)
    where
        F: FnOnce(&mut Self),
        G: FnOnce(&mut Self),
    {
        self.blocks.push(Vec::new());
        then(self);
        let then_blk = self.blocks.pop().expect("builder block stack");
        self.blocks.push(Vec::new());
        els(self);
        let else_blk = self.blocks.pop().expect("builder block stack");
        self.push(Stmt::If {
            cond,
            then_blk,
            else_blk,
        });
    }

    /// Structured `while`.
    pub fn while_<F: FnOnce(&mut Self)>(&mut self, cond: Expr, body: F) {
        self.blocks.push(Vec::new());
        body(self);
        let body_blk = self.blocks.pop().expect("builder block stack");
        self.push(Stmt::While {
            cond,
            body: body_blk,
        });
    }

    fn push(&mut self, s: Stmt) {
        self.blocks.last_mut().expect("builder block stack").push(s);
    }

    /// Finalizes the module.
    ///
    /// # Panics
    ///
    /// Panics if called with unclosed control-flow blocks (builder misuse —
    /// cannot happen through the closure API).
    pub fn finish(mut self) -> ShaderModule {
        assert_eq!(self.blocks.len(), 1, "unclosed blocks");
        ShaderModule {
            kind: self.kind,
            name: self.name,
            vars: self.vars,
            body: self.blocks.pop().unwrap(),
        }
    }
}

/// Integer hash (PCG-style) emitted as IR; the pseudo-random generator used
/// by path-tracing workloads (RTV5/RTV6 scatter randomly — paper §VI-B).
pub fn hash_u32(b: &ShaderBuilder, x: Expr) -> Expr {
    // x ^= x >> 16; x *= 0x7feb352d; x ^= x >> 15; x *= 0x846ca68b; x ^= x >> 16
    let s1 = x.clone().bitxor(x.shr(b.c_u32(16)));
    let m1 = s1 * b.c_u32(0x7feb352d);
    let s2 = m1.clone().bitxor(m1.shr(b.c_u32(15)));
    let m2 = s2 * b.c_u32(0x846c_a68b);
    m2.clone().bitxor(m2.shr(b.c_u32(16)))
}

/// Converts a u32 hash to a float in `[0, 1)`.
pub fn hash_to_unit_f32(b: &ShaderBuilder, h: Expr) -> Expr {
    h.shr(b.c_u32(8)).to_f32() * b.c_f32(1.0 / 16_777_216.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_blocks_build_correctly() {
        let mut b = ShaderBuilder::new(ShaderKind::RayGen);
        let i = b.var_u32(b.c_u32(0));
        b.while_(b.v(i).lt(b.c_u32(4)), |b| {
            b.if_else(
                b.v(i).eq_(b.c_u32(2)),
                |b| b.set(i, b.c_u32(10)),
                |b| b.set(i, b.v(i) + b.c_u32(1)),
            );
        });
        let m = b.finish();
        assert_eq!(m.vars, vec![Ty::U32]);
        // set + while(if(set, set))
        assert_eq!(m.stmt_count(), 5);
        match &m.body[1] {
            Stmt::While { body, .. } => match &body[0] {
                Stmt::If {
                    then_blk, else_blk, ..
                } => {
                    assert_eq!(then_blk.len(), 1);
                    assert_eq!(else_blk.len(), 1);
                }
                other => panic!("expected If, got {other:?}"),
            },
            other => panic!("expected While, got {other:?}"),
        }
    }

    #[test]
    fn operators_build_expected_trees() {
        let b = ShaderBuilder::new(ShaderKind::Miss);
        let e = b.c_f32(1.0) + b.c_f32(2.0) * b.c_f32(3.0);
        match e {
            Expr::Bin(BinOp::Add, _, rhs) => {
                assert!(matches!(*rhs, Expr::Bin(BinOp::Mul, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn variable_types_recorded() {
        let mut b = ShaderBuilder::new(ShaderKind::ClosestHit);
        let f = b.var_f32(b.c_f32(0.0));
        let u = b.var_u32(b.c_u32(0));
        let m = b.finish();
        assert_eq!(m.var_ty(f), Ty::F32);
        assert_eq!(m.var_ty(u), Ty::U32);
    }

    #[test]
    fn hash_helpers_produce_u32_and_f32() {
        let b = ShaderBuilder::new(ShaderKind::RayGen);
        let m = ShaderModule {
            kind: ShaderKind::RayGen,
            name: "h".into(),
            vars: vec![],
            body: vec![],
        };
        let h = hash_u32(&b, b.c_u32(12345));
        assert_eq!(h.ty(&m), Ty::U32);
        let f = hash_to_unit_f32(&b, h);
        assert_eq!(f.ty(&m), Ty::F32);
    }
}
