//! Fixed-width-bin histogram.

use std::fmt;

/// A histogram with uniform bin width, used for warp-latency distributions
/// (paper Fig. 13) and RT-unit occupancy timelines (Fig. 18).
///
/// Bins grow on demand; values are non-negative.
///
/// # Example
///
/// ```
/// use vksim_stats::Histogram;
/// let mut h = Histogram::new(100.0);
/// for v in [10.0, 50.0, 150.0, 220.0] {
///     h.record(v);
/// }
/// assert_eq!(h.bin_count(0), 2);
/// assert_eq!(h.bin_count(1), 1);
/// assert_eq!(h.bin_count(2), 1);
/// assert_eq!(h.count(), 4);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Histogram {
    bin_width: f64,
    bins: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// Creates an empty histogram with the given bin width.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width` is not strictly positive and finite.
    pub fn new(bin_width: f64) -> Self {
        assert!(
            bin_width > 0.0 && bin_width.is_finite(),
            "bin width must be positive and finite"
        );
        Histogram {
            bin_width,
            bins: Vec::new(),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records a sample. Negative values clamp into the first bin.
    pub fn record(&mut self, value: f64) {
        let v = value.max(0.0);
        let idx = (v / self.bin_width) as usize;
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, 0);
        }
        self.bins[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest recorded sample (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Count in bin `idx` (0 for out-of-range bins).
    pub fn bin_count(&self, idx: usize) -> u64 {
        self.bins.get(idx).copied().unwrap_or(0)
    }

    /// Number of allocated bins.
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// The bin width this histogram was created with.
    pub fn bin_width(&self) -> f64 {
        self.bin_width
    }

    /// Approximate p-th percentile (`0.0..=1.0`) using bin upper edges,
    /// clamped to the recorded maximum (a bare upper edge would over-report
    /// by up to one bin width — e.g. `percentile(1.0)` past `max()`).
    ///
    /// Returns `None` when empty.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let p = p.clamp(0.0, 1.0);
        let target = (p * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.bins.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(((i as f64 + 1.0) * self.bin_width).min(self.max));
            }
        }
        Some((self.bins.len() as f64 * self.bin_width).min(self.max))
    }

    /// Merges another histogram into this one.
    ///
    /// # Panics
    ///
    /// Panics if the bin widths differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bin_width, other.bin_width,
            "bin width mismatch in merge"
        );
        if other.bins.len() > self.bins.len() {
            self.bins.resize(other.bins.len(), 0);
        }
        for (dst, src) in self.bins.iter_mut().zip(&other.bins) {
            *dst += src;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Serializes the full histogram state (including empty trailing bins
    /// and the running min/max/sum, so a restored histogram is
    /// indistinguishable from the original) for a machine-state snapshot.
    pub fn save(&self, e: &mut vksim_snapshot::Enc) {
        e.f64(self.bin_width);
        e.seq(self.bins.len());
        for &b in &self.bins {
            e.u64(b);
        }
        e.u64(self.count);
        e.f64(self.sum);
        e.f64(self.min);
        e.f64(self.max);
    }

    /// Restores a histogram written by [`Histogram::save`].
    ///
    /// # Errors
    ///
    /// Propagates decoder errors on truncated or malformed payloads.
    pub fn load(d: &mut vksim_snapshot::Dec<'_>) -> Result<Self, vksim_snapshot::SnapError> {
        let bin_width = d.f64()?;
        let n = d.seq()?;
        let mut bins = Vec::with_capacity(n);
        for _ in 0..n {
            bins.push(d.u64()?);
        }
        Ok(Histogram {
            bin_width,
            bins,
            count: d.u64()?,
            sum: d.f64()?,
            min: d.f64()?,
            max: d.f64()?,
        })
    }

    /// Iterates `(bin_lower_edge, count)` over non-empty bins.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.bins
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(move |(i, &c)| (i as f64 * self.bin_width, c))
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "histogram (n={}, mean={:.2})", self.count, self.mean())?;
        for (edge, c) in self.iter() {
            writeln!(f, "  [{edge:>12.1}, {:>12.1}) {c}", edge + self.bin_width)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_bins() {
        let mut h = Histogram::new(10.0);
        h.record(0.0);
        h.record(9.999);
        h.record(10.0);
        h.record(35.0);
        assert_eq!(h.bin_count(0), 2);
        assert_eq!(h.bin_count(1), 1);
        assert_eq!(h.bin_count(3), 1);
        assert_eq!(h.num_bins(), 4);
    }

    #[test]
    fn summary_statistics() {
        let mut h = Histogram::new(1.0);
        for v in [1.0, 2.0, 3.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.mean(), 2.0);
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(3.0));
    }

    #[test]
    fn empty_histogram_defaults() {
        let h = Histogram::new(5.0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), None);
        assert_eq!(h.percentile(0.5), None);
    }

    #[test]
    fn negative_values_clamp_to_first_bin() {
        let mut h = Histogram::new(10.0);
        h.record(-5.0);
        assert_eq!(h.bin_count(0), 1);
        assert_eq!(h.min(), Some(0.0));
    }

    #[test]
    fn percentile_monotone() {
        let mut h = Histogram::new(10.0);
        for i in 0..100 {
            h.record(i as f64);
        }
        let p50 = h.percentile(0.5).unwrap();
        let p95 = h.percentile(0.95).unwrap();
        let p100 = h.percentile(1.0).unwrap();
        assert!(p50 <= p95 && p95 <= p100);
        assert_eq!(p50, 50.0);
        assert_eq!(p100, 99.0, "p100 is the recorded max, not a bin edge");
    }

    #[test]
    fn p100_never_exceeds_max() {
        let mut h = Histogram::new(1000.0);
        for v in [12.0, 700.0, 701.5] {
            h.record(v);
        }
        assert_eq!(h.percentile(1.0), Some(701.5));
        assert_eq!(h.percentile(1.0), h.max());
    }

    #[test]
    fn single_sample_percentiles_report_the_sample() {
        // Regression: a lone 3.0 in a width-1000 histogram used to report
        // every percentile as the bin upper edge, 1000.0.
        let mut h = Histogram::new(1000.0);
        h.record(3.0);
        assert_eq!(h.percentile(0.0), Some(3.0));
        assert_eq!(h.percentile(0.5), Some(3.0));
        assert_eq!(h.percentile(1.0), Some(3.0));
    }

    #[test]
    #[should_panic(expected = "bin width")]
    fn zero_bin_width_panics() {
        let _ = Histogram::new(0.0);
    }

    #[test]
    fn snapshot_round_trip_preserves_everything() {
        let mut h = Histogram::new(10.0);
        for v in [1.0, 250.5, 3.25] {
            h.record(v);
        }
        let mut e = vksim_snapshot::Enc::new();
        h.save(&mut e);
        let bytes = e.into_bytes();
        let back = Histogram::load(&mut vksim_snapshot::Dec::new(&bytes)).unwrap();
        assert_eq!(back, h);
        // An empty histogram's infinite min/max round-trip through bits.
        let empty = Histogram::new(2.0);
        let mut e = vksim_snapshot::Enc::new();
        empty.save(&mut e);
        let bytes = e.into_bytes();
        let back = Histogram::load(&mut vksim_snapshot::Dec::new(&bytes)).unwrap();
        assert_eq!(back, empty);
        assert_eq!(back.min(), None);
    }

    #[test]
    fn iter_skips_empty_bins() {
        let mut h = Histogram::new(1.0);
        h.record(0.5);
        h.record(5.5);
        let bins: Vec<(f64, u64)> = h.iter().collect();
        assert_eq!(bins, vec![(0.0, 1), (5.0, 1)]);
    }
}
