//! Correlation and regression helpers for the hardware-correlation studies.
//!
//! The paper reports a Pearson correlation of 95.7% and a trendline slope of
//! 2.58 between simulator and RTX 2080 SUPER cycle counts (Fig. 11), and
//! tunes configurations until the slope drops to 0.88 (Fig. 19). These
//! helpers compute both numbers.

/// Pearson product-moment correlation coefficient of two equal-length series.
///
/// Returns `None` if the series are shorter than 2 points, have different
/// lengths, or either has zero variance.
///
/// # Example
///
/// ```
/// use vksim_stats::pearson;
/// let r = pearson(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]).unwrap();
/// assert!((r - 1.0).abs() < 1e-12);
/// ```
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return None;
    }
    Some(cov / (vx.sqrt() * vy.sqrt()))
}

/// Least-squares slope of `y = slope * x` **through the origin**, the form
/// used for the paper's cycle-count trendlines (a zero-cycle workload takes
/// zero cycles on both series).
///
/// Returns `None` on mismatched/empty input or all-zero `xs`.
pub fn least_squares_slope(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.is_empty() {
        return None;
    }
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| x * y).sum();
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    if sxx == 0.0 {
        return None;
    }
    Some(sxy / sxx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive_correlation() {
        let r = pearson(&[1.0, 2.0, 4.0], &[3.0, 6.0, 12.0]).unwrap();
        assert!((r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_negative_correlation() {
        let r = pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]).unwrap();
        assert!((r + 1.0).abs() < 1e-12);
    }

    #[test]
    fn uncorrelated_series() {
        let r = pearson(&[1.0, 2.0, 3.0, 4.0], &[1.0, -1.0, 1.0, -1.0]).unwrap();
        assert!(r.abs() < 0.5);
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(pearson(&[1.0], &[2.0]).is_none());
        assert!(pearson(&[1.0, 2.0], &[2.0]).is_none());
        assert!(pearson(&[1.0, 1.0], &[2.0, 3.0]).is_none());
    }

    #[test]
    fn slope_through_origin() {
        let s = least_squares_slope(&[1.0, 2.0, 3.0], &[2.58, 5.16, 7.74]).unwrap();
        assert!((s - 2.58).abs() < 1e-9);
    }

    #[test]
    fn slope_with_noise_is_near_true_slope() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        let ys = [21.0, 39.0, 62.0, 79.0];
        let s = least_squares_slope(&xs, &ys).unwrap();
        assert!((s - 2.0).abs() < 0.05);
    }

    #[test]
    fn slope_degenerate_inputs() {
        assert!(least_squares_slope(&[], &[]).is_none());
        assert!(least_squares_slope(&[0.0, 0.0], &[1.0, 2.0]).is_none());
        assert!(least_squares_slope(&[1.0], &[1.0, 2.0]).is_none());
    }
}
