//! Statistics utilities for the Vulkan-Sim reproduction.
//!
//! The simulator's evaluation section relies on a handful of statistical
//! building blocks: event counters, latency/occupancy histograms
//! ([`Histogram`]), Pearson correlation and least-squares slope for the
//! hardware-correlation studies (Figs. 11 and 19), and roofline points
//! (Fig. 12). They are kept in one dependency-free crate so every model can
//! record into them.
//!
//! # Example
//!
//! ```
//! use vksim_stats::{Histogram, correlation};
//!
//! let mut h = Histogram::new(10.0);
//! h.record(5.0);
//! h.record(25.0);
//! assert_eq!(h.count(), 2);
//!
//! let r = correlation::pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]).unwrap();
//! assert!((r - 1.0).abs() < 1e-12);
//! ```

pub mod correlation;
pub mod counters;
pub mod histogram;
pub mod roofline;

pub use correlation::{least_squares_slope, pearson};
pub use counters::Counters;
pub use histogram::Histogram;
pub use roofline::{Roofline, RooflinePoint};
