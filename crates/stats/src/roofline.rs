//! Roofline model for the RT unit (paper §VI-A, Fig. 12).
//!
//! The paper adapts the classic roofline model to ray tracing: *operations*
//! are intersection tests and ray transformations, *operational intensity*
//! is operations per cache block fetched, and *performance* is operations
//! per cycle, bounded above by `units × pipeline stages` (compute roof) and
//! by one cache block per cycle times intensity (memory roof).

/// One workload's position on the roofline plot.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RooflinePoint {
    /// Operations (box/tri/transform) per cache block fetched.
    pub operational_intensity: f64,
    /// Achieved operations per cycle.
    pub performance: f64,
}

/// The roofline itself: a compute roof and a memory-bandwidth roof.
///
/// # Example
///
/// ```
/// use vksim_stats::{Roofline, RooflinePoint};
/// // 32 units x 4 stages, 1 block/cycle.
/// let r = Roofline::new(128.0, 1.0);
/// let p = RooflinePoint { operational_intensity: 4.0, performance: 2.0 };
/// assert_eq!(r.bound_at(4.0), 4.0); // memory bound region
/// assert!(r.is_memory_bound(&p));
/// assert!(r.utilization(&p) < 1.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Roofline {
    /// Peak operations per cycle (# units × # pipeline stages).
    pub compute_roof: f64,
    /// Peak cache blocks fetched per cycle.
    pub blocks_per_cycle: f64,
}

impl Roofline {
    /// Creates a roofline from its two roofs.
    ///
    /// # Panics
    ///
    /// Panics if either roof is not strictly positive.
    pub fn new(compute_roof: f64, blocks_per_cycle: f64) -> Self {
        assert!(
            compute_roof > 0.0 && blocks_per_cycle > 0.0,
            "roofs must be positive"
        );
        Roofline {
            compute_roof,
            blocks_per_cycle,
        }
    }

    /// Attainable performance at a given operational intensity:
    /// `min(compute_roof, intensity * blocks_per_cycle)`.
    pub fn bound_at(&self, operational_intensity: f64) -> f64 {
        (operational_intensity * self.blocks_per_cycle).min(self.compute_roof)
    }

    /// The ridge point intensity where the two roofs meet.
    pub fn ridge_intensity(&self) -> f64 {
        self.compute_roof / self.blocks_per_cycle
    }

    /// `true` when the point sits left of the ridge (memory-bound region).
    pub fn is_memory_bound(&self, p: &RooflinePoint) -> bool {
        p.operational_intensity < self.ridge_intensity()
    }

    /// Fraction of the attainable bound the point achieves, in `[0, 1]` for
    /// model-consistent data.
    pub fn utilization(&self, p: &RooflinePoint) -> f64 {
        let bound = self.bound_at(p.operational_intensity);
        if bound == 0.0 {
            0.0
        } else {
            p.performance / bound
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_transitions_at_ridge() {
        let r = Roofline::new(100.0, 2.0);
        assert_eq!(r.ridge_intensity(), 50.0);
        assert_eq!(r.bound_at(10.0), 20.0); // memory roof
        assert_eq!(r.bound_at(50.0), 100.0); // ridge
        assert_eq!(r.bound_at(500.0), 100.0); // compute roof
    }

    #[test]
    fn memory_vs_compute_bound_classification() {
        let r = Roofline::new(100.0, 2.0);
        let mem = RooflinePoint {
            operational_intensity: 10.0,
            performance: 5.0,
        };
        let comp = RooflinePoint {
            operational_intensity: 90.0,
            performance: 50.0,
        };
        assert!(r.is_memory_bound(&mem));
        assert!(!r.is_memory_bound(&comp));
    }

    #[test]
    fn utilization_fraction() {
        let r = Roofline::new(100.0, 1.0);
        let p = RooflinePoint {
            operational_intensity: 10.0,
            performance: 5.0,
        };
        assert!((r.utilization(&p) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_roof_panics() {
        let _ = Roofline::new(0.0, 1.0);
    }
}
