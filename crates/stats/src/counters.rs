//! Named event counters.

use std::collections::BTreeMap;
use std::fmt;

/// A bag of named `u64` event counters.
///
/// Counters are created lazily on first increment and iterate in name order,
/// which keeps simulator reports deterministic.
///
/// # Example
///
/// ```
/// use vksim_stats::Counters;
/// let mut c = Counters::new();
/// c.add("l1d_hit", 3);
/// c.inc("l1d_hit");
/// assert_eq!(c.get("l1d_hit"), 4);
/// assert_eq!(c.get("never_touched"), 0);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    values: BTreeMap<String, u64>,
}

impl Counters {
    /// Creates an empty counter bag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to counter `name`, creating it if needed.
    pub fn add(&mut self, name: &str, n: u64) {
        if n == 0 {
            return;
        }
        *self.values.entry(name.to_owned()).or_insert(0) += n;
    }

    /// Increments counter `name` by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Current value of `name` (0 if never incremented).
    pub fn get(&self, name: &str) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    /// Iterates `(name, value)` pairs whose name starts with `prefix`, in
    /// name order, without allocating. The `BTreeMap` range starts at the
    /// prefix itself (borrowed, via the `Borrow<str>` bound) and stops at
    /// the first non-matching key.
    pub fn iter_prefix<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = (&'a str, u64)> + 'a {
        self.values
            .range::<str, _>((
                std::ops::Bound::Included(prefix),
                std::ops::Bound::Unbounded,
            ))
            .take_while(move |(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.as_str(), *v))
    }

    /// Sum of all counters whose name starts with `prefix`.
    pub fn sum_prefix(&self, prefix: &str) -> u64 {
        self.iter_prefix(prefix).map(|(_, v)| v).sum()
    }

    /// Merges another counter bag into this one.
    pub fn merge(&mut self, other: &Counters) {
        for (k, v) in &other.values {
            *self.values.entry(k.clone()).or_insert(0) += v;
        }
    }

    /// Iterates `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of distinct counters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if no counter was ever incremented.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Serializes the bag for a machine-state snapshot: entry count, then
    /// `(name, value)` pairs in name order (the map is a `BTreeMap`, so
    /// the encoding is deterministic by construction).
    pub fn save(&self, e: &mut vksim_snapshot::Enc) {
        e.seq(self.values.len());
        for (k, v) in &self.values {
            e.str(k);
            e.u64(*v);
        }
    }

    /// Restores a bag written by [`Counters::save`].
    ///
    /// # Errors
    ///
    /// Propagates decoder errors on truncated or malformed payloads.
    pub fn load(d: &mut vksim_snapshot::Dec<'_>) -> Result<Self, vksim_snapshot::SnapError> {
        let n = d.seq()?;
        let mut values = BTreeMap::new();
        for _ in 0..n {
            let k = d.str()?;
            let v = d.u64()?;
            values.insert(k, v);
        }
        Ok(Counters { values })
    }

    /// Ratio `num / (num + den)` as a fraction in `[0, 1]`; returns 0 when
    /// both are zero. Convenient for hit rates.
    pub fn ratio(&self, num: &str, den: &str) -> f64 {
        let n = self.get(num) as f64;
        let d = self.get(den) as f64;
        if n + d == 0.0 {
            0.0
        } else {
            n / (n + d)
        }
    }
}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.values.is_empty() {
            return writeln!(f, "(no counters)");
        }
        for (k, v) in &self.values {
            writeln!(f, "{k} = {v}")?;
        }
        Ok(())
    }
}

impl<'a> Extend<(&'a str, u64)> for Counters {
    fn extend<T: IntoIterator<Item = (&'a str, u64)>>(&mut self, iter: T) {
        for (k, v) in iter {
            self.add(k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let mut c = Counters::new();
        c.add("a", 2);
        c.add("a", 3);
        c.inc("b");
        assert_eq!(c.get("a"), 5);
        assert_eq!(c.get("b"), 1);
        assert_eq!(c.get("missing"), 0);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn zero_add_does_not_create_counter() {
        let mut c = Counters::new();
        c.add("z", 0);
        assert!(c.is_empty());
    }

    #[test]
    fn prefix_sum() {
        let mut c = Counters::new();
        c.add("l1.hit", 4);
        c.add("l1.miss", 6);
        c.add("l2.hit", 10);
        assert_eq!(c.sum_prefix("l1."), 10);
        assert_eq!(c.sum_prefix("l2."), 10);
        assert_eq!(c.sum_prefix("l3."), 0);
    }

    #[test]
    fn prefix_iteration_is_ordered_and_exact() {
        let mut c = Counters::new();
        c.add("l1.hit", 4);
        c.add("l1.miss", 6);
        c.add("l10.hit", 9); // shares the "l1" prefix but not "l1."
        c.add("l2.hit", 10);
        let got: Vec<(&str, u64)> = c.iter_prefix("l1.").collect();
        assert_eq!(got, vec![("l1.hit", 4), ("l1.miss", 6)]);
        assert_eq!(c.iter_prefix("l1").count(), 3);
        assert_eq!(c.iter_prefix("zz").count(), 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Counters::new();
        a.add("x", 1);
        let mut b = Counters::new();
        b.add("x", 2);
        b.add("y", 3);
        a.merge(&b);
        assert_eq!(a.get("x"), 3);
        assert_eq!(a.get("y"), 3);
    }

    #[test]
    fn ratio_handles_zero() {
        let mut c = Counters::new();
        assert_eq!(c.ratio("hit", "miss"), 0.0);
        c.add("hit", 3);
        c.add("miss", 1);
        assert!((c.ratio("hit", "miss") - 0.75).abs() < 1e-12);
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut c = Counters::new();
        c.inc("zeta");
        c.inc("alpha");
        let names: Vec<&str> = c.iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }

    #[test]
    fn display_lists_counters() {
        let mut c = Counters::new();
        c.add("cycles", 42);
        assert!(c.to_string().contains("cycles = 42"));
        assert!(!Counters::new().to_string().is_empty());
    }

    #[test]
    fn snapshot_round_trip_is_exact_and_deterministic() {
        let mut c = Counters::new();
        c.add("l1.hit", 4);
        c.add("gpu.cycles", u64::MAX);
        let mut e = vksim_snapshot::Enc::new();
        c.save(&mut e);
        let bytes = e.into_bytes();
        let back = Counters::load(&mut vksim_snapshot::Dec::new(&bytes)).unwrap();
        assert_eq!(back, c);
        let mut e2 = vksim_snapshot::Enc::new();
        back.save(&mut e2);
        assert_eq!(e2.into_bytes(), bytes);
    }

    #[test]
    fn extend_from_pairs() {
        let mut c = Counters::new();
        c.extend([("a", 1u64), ("b", 2u64)]);
        assert_eq!(c.get("b"), 2);
    }
}
