//! Dependency-free worker-pool primitives for the two-phase cycle engine.
//!
//! The GPU model ticks every SM once per simulated cycle. Parallelising
//! that inner loop needs a *round barrier*: the coordinator announces a
//! round, every worker processes its share of the SMs, and the coordinator
//! waits for all of them before running the serial drain phase. Simulated
//! cycles are short (microseconds of host work), so a classic
//! `Mutex`+`Condvar` barrier would spend more time parking threads than
//! simulating; [`RoundBarrier`] therefore spins on an atomic epoch for a
//! bounded number of iterations before yielding to the scheduler.
//!
//! The barrier is deliberately not a thread pool: workers are plain scoped
//! threads (`std::thread::scope`) owned by the caller, so borrows of
//! stack-local simulation state need no `'static` laundering and a worker
//! panic propagates when the scope joins. [`DoneGuard`] keeps the
//! coordinator from deadlocking on a panicked worker: the worker's
//! completion signal rides on `Drop`, and the poison flag it sets on unwind
//! turns the lost round into a coordinator panic instead of a hang.
//!
//! # Example
//!
//! ```
//! use std::sync::atomic::{AtomicU64, Ordering};
//! use vksim_parallel::{DoneGuard, RoundBarrier};
//!
//! let threads = 3;
//! let barrier = RoundBarrier::new(threads);
//! let sum = AtomicU64::new(0);
//! std::thread::scope(|s| {
//!     for t in 0..threads {
//!         let (barrier, sum) = (&barrier, &sum);
//!         s.spawn(move || {
//!             let mut epoch = 0;
//!             while let Some(e) = barrier.wait_round(epoch) {
//!                 epoch = e;
//!                 let _done = DoneGuard::new(barrier);
//!                 sum.fetch_add(t as u64 + 1, Ordering::Relaxed);
//!             }
//!         });
//!     }
//!     for _ in 0..10 {
//!         barrier.begin_round();
//!         barrier.wait_workers();
//!     }
//!     barrier.shutdown();
//! });
//! assert_eq!(sum.load(Ordering::Relaxed), 10 * (1 + 2 + 3));
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// Spin iterations before a waiter starts yielding its time slice.
///
/// Rounds in the cycle engine are back-to-back, so the next epoch usually
/// arrives within a few hundred nanoseconds; spinning that long is cheaper
/// than a syscall. On an oversubscribed host (more workers than cores) the
/// yield fallback keeps forward progress.
const SPIN_LIMIT: u32 = 4096;

/// Epoch-based barrier coordinating one writer (the cycle loop) with a
/// fixed set of worker threads. See the [module docs](self) for the
/// protocol and a usage example.
#[derive(Debug)]
pub struct RoundBarrier {
    workers: usize,
    /// Spins before yielding; 0 when the host is oversubscribed (fewer
    /// cores than waiters), where spinning only steals the running thread's
    /// time slice.
    spin_limit: u32,
    /// Round number; bumped by [`RoundBarrier::begin_round`]. Odd protocol
    /// state lives entirely in this one word: workers watch it grow.
    epoch: AtomicU64,
    /// Workers finished with the current round.
    done: AtomicUsize,
    /// Set by [`RoundBarrier::shutdown`]; workers observe it and exit.
    quit: AtomicBool,
    /// Set when a worker unwound mid-round (via [`DoneGuard`]).
    poisoned: AtomicBool,
}

/// Error returned by [`RoundBarrier::try_wait_workers`]: a worker panicked
/// and unwound mid-round, poisoning the barrier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoisonedRound;

impl std::fmt::Display for PoisonedRound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("a worker panicked mid-round and poisoned the barrier")
    }
}

impl std::error::Error for PoisonedRound {}

impl RoundBarrier {
    /// A barrier for `workers` worker threads (and one coordinator).
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(workers: usize) -> Self {
        // workers + 1 waiters total (the coordinator blocks in
        // `wait_workers`); if they cannot all run at once, spinning just
        // burns the quantum the thread we are waiting on needs.
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let spin_limit = if workers + 1 > cores { 0 } else { SPIN_LIMIT };
        Self::with_spin_limit(workers, spin_limit)
    }

    /// [`RoundBarrier::new`] with an explicit spin limit (0 = always yield).
    pub fn with_spin_limit(workers: usize, spin_limit: u32) -> Self {
        assert!(workers > 0, "a round barrier needs at least one worker");
        RoundBarrier {
            workers,
            spin_limit,
            epoch: AtomicU64::new(0),
            done: AtomicUsize::new(0),
            quit: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
        }
    }

    /// Number of worker threads this barrier coordinates.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Coordinator: opens the next round. Must not be called again before
    /// [`RoundBarrier::wait_workers`] returns.
    pub fn begin_round(&self) {
        self.done.store(0, Ordering::Release);
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// Worker: blocks until a round newer than `seen_epoch` opens. Returns
    /// the new epoch, or `None` after [`RoundBarrier::shutdown`].
    pub fn wait_round(&self, seen_epoch: u64) -> Option<u64> {
        let mut spins = 0u32;
        loop {
            if self.quit.load(Ordering::Acquire) {
                return None;
            }
            let e = self.epoch.load(Ordering::Acquire);
            if e > seen_epoch {
                return Some(e);
            }
            spins += 1;
            if spins < self.spin_limit {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// Worker: marks this worker's share of the round complete. Prefer
    /// [`DoneGuard`], which also signals on unwind.
    pub fn worker_done(&self) {
        self.done.fetch_add(1, Ordering::AcqRel);
    }

    /// Coordinator: blocks until every worker signalled completion of the
    /// round opened by the last [`RoundBarrier::begin_round`].
    ///
    /// # Panics
    ///
    /// Panics if a worker unwound during the round (poisoned barrier); the
    /// worker's own panic then surfaces when the thread scope joins.
    pub fn wait_workers(&self) {
        let mut spins = 0u32;
        while self.done.load(Ordering::Acquire) < self.workers {
            spins += 1;
            if spins < self.spin_limit {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        assert!(
            !self.poisoned.load(Ordering::Acquire),
            "a worker panicked mid-round"
        );
    }

    /// Like [`RoundBarrier::wait_workers`] but reports a poisoned round as
    /// `Err` instead of panicking, so a coordinator that contains worker
    /// panics (converting them into structured faults) can keep control of
    /// its own unwind path.
    ///
    /// # Errors
    ///
    /// Returns `Err(PoisonedRound)` when a worker unwound during the round.
    pub fn try_wait_workers(&self) -> Result<(), PoisonedRound> {
        let mut spins = 0u32;
        while self.done.load(Ordering::Acquire) < self.workers {
            spins += 1;
            if spins < self.spin_limit {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        if self.poisoned.load(Ordering::Acquire) {
            Err(PoisonedRound)
        } else {
            Ok(())
        }
    }

    /// `true` when a worker unwound mid-round and poisoned the barrier.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// Coordinator: tells all workers to exit their round loops.
    pub fn shutdown(&self) {
        self.quit.store(true, Ordering::Release);
    }
}

/// RAII round-completion signal: created by a worker at the start of its
/// round, it calls [`RoundBarrier::worker_done`] on drop — including during
/// a panic unwind, where it additionally poisons the barrier so the
/// coordinator fails fast instead of waiting forever.
#[derive(Debug)]
pub struct DoneGuard<'a> {
    barrier: &'a RoundBarrier,
}

impl<'a> DoneGuard<'a> {
    /// Arms the guard for the current round.
    pub fn new(barrier: &'a RoundBarrier) -> Self {
        DoneGuard { barrier }
    }
}

impl Drop for DoneGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.barrier.poisoned.store(true, Ordering::Release);
        }
        self.barrier.worker_done();
    }
}

/// RAII shutdown signal for the coordinator: calls
/// [`RoundBarrier::shutdown`] on drop. Held across the coordinator's cycle
/// loop inside `std::thread::scope`, it guarantees workers are released
/// even when the coordinator unwinds (e.g. the poisoned-barrier panic from
/// [`RoundBarrier::wait_workers`]) — otherwise the scope's implicit join
/// would deadlock on workers still spinning in
/// [`RoundBarrier::wait_round`].
#[derive(Debug)]
pub struct ShutdownGuard<'a> {
    barrier: &'a RoundBarrier,
}

impl<'a> ShutdownGuard<'a> {
    /// Arms the guard.
    pub fn new(barrier: &'a RoundBarrier) -> Self {
        ShutdownGuard { barrier }
    }
}

impl Drop for ShutdownGuard<'_> {
    fn drop(&mut self) {
        self.barrier.shutdown();
    }
}

/// Splits `total` items among `workers` as contiguous, maximally even
/// ranges; returns worker `index`'s `start..end` range. Deterministic in
/// all arguments, so any assignment of simulation state to workers is too.
pub fn chunk_range(total: usize, workers: usize, index: usize) -> std::ops::Range<usize> {
    assert!(workers > 0 && index < workers);
    let base = total / workers;
    let extra = total % workers;
    let start = index * base + index.min(extra);
    let len = base + usize::from(index < extra);
    start..(start + len).min(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn rounds_run_every_worker_exactly_once() {
        let workers = 4;
        let rounds = 100u64;
        let barrier = RoundBarrier::new(workers);
        let counts: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
        std::thread::scope(|s| {
            for t in 0..workers {
                let (barrier, counts) = (&barrier, &counts);
                s.spawn(move || {
                    let mut epoch = 0;
                    while let Some(e) = barrier.wait_round(epoch) {
                        epoch = e;
                        let _done = DoneGuard::new(barrier);
                        counts[t].fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            for _ in 0..rounds {
                barrier.begin_round();
                barrier.wait_workers();
            }
            barrier.shutdown();
        });
        for c in &counts {
            assert_eq!(c.load(Ordering::Relaxed), rounds);
        }
    }

    #[test]
    fn shutdown_before_any_round_terminates_workers() {
        let barrier = RoundBarrier::new(2);
        std::thread::scope(|s| {
            for _ in 0..2 {
                let barrier = &barrier;
                s.spawn(move || {
                    assert_eq!(barrier.wait_round(0), None);
                });
            }
            barrier.shutdown();
        });
    }

    #[test]
    fn coordinator_observes_worker_effects_after_wait() {
        // The Release/Acquire pairing on `done` must publish worker writes.
        let barrier = RoundBarrier::new(2);
        let cell = AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..2 {
                let (barrier, cell) = (&barrier, &cell);
                s.spawn(move || {
                    let mut epoch = 0;
                    while let Some(e) = barrier.wait_round(epoch) {
                        epoch = e;
                        let _done = DoneGuard::new(barrier);
                        cell.fetch_add(epoch * (t as u64 + 1), Ordering::Relaxed);
                    }
                });
            }
            let mut expect = 0;
            for _ in 0..50 {
                barrier.begin_round();
                barrier.wait_workers();
                let epoch = barrier.epoch.load(Ordering::Relaxed);
                // worker 1 adds epoch, worker 2 adds 2 * epoch
                expect += epoch + epoch * 2;
                assert_eq!(cell.load(Ordering::Relaxed), expect);
            }
            barrier.shutdown();
        });
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = RoundBarrier::with_spin_limit(0, SPIN_LIMIT);
    }

    #[test]
    fn yield_only_barrier_completes_rounds() {
        // spin_limit = 0 is the oversubscribed-host path (more waiters than
        // cores): every wait yields instead of spinning. Protocol must be
        // identical.
        let barrier = RoundBarrier::with_spin_limit(2, 0);
        let hits = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..2 {
                let (barrier, hits) = (&barrier, &hits);
                s.spawn(move || {
                    let mut epoch = 0;
                    while let Some(e) = barrier.wait_round(epoch) {
                        epoch = e;
                        let _done = DoneGuard::new(barrier);
                        hits.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            for _ in 0..20 {
                barrier.begin_round();
                barrier.wait_workers();
            }
            barrier.shutdown();
        });
        assert_eq!(hits.load(Ordering::Relaxed), 40);
    }

    #[test]
    fn shutdown_guard_releases_workers_on_unwind() {
        let barrier = RoundBarrier::new(1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                let b = &barrier;
                s.spawn(move || {
                    assert_eq!(b.wait_round(0), None);
                });
                let _shutdown = ShutdownGuard::new(&barrier);
                panic!("coordinator failure");
            });
        }));
        assert!(result.is_err(), "coordinator panic must propagate");
    }

    #[test]
    fn try_wait_workers_reports_poison_without_panicking() {
        let barrier = RoundBarrier::new(1);
        std::thread::scope(|s| {
            let b = &barrier;
            s.spawn(move || {
                let mut epoch = 0;
                while let Some(e) = b.wait_round(epoch) {
                    epoch = e;
                    let _done = DoneGuard::new(b);
                    // Simulate an uncontained worker panic: a real unwind
                    // through the guard, caught at the thread boundary so
                    // the test itself survives the scope join.
                    let _ = std::panic::catch_unwind(|| {
                        let _poisoner = DoneGuard::new(b);
                        // The extra guard also bumps `done`; undo below.
                        panic!("worker failure");
                    });
                    // Undo the extra done signal from the inner guard.
                    b.done.fetch_sub(1, Ordering::AcqRel);
                }
            });
            barrier.begin_round();
            assert_eq!(barrier.try_wait_workers(), Err(PoisonedRound));
            assert!(barrier.is_poisoned());
            barrier.shutdown();
        });
    }

    #[test]
    fn chunk_ranges_partition_exactly() {
        for total in [0usize, 1, 5, 8, 17, 100] {
            for workers in [1usize, 2, 3, 7, 16] {
                let mut covered = Vec::new();
                for w in 0..workers {
                    covered.extend(chunk_range(total, workers, w));
                }
                assert_eq!(covered, (0..total).collect::<Vec<_>>());
                // Even: sizes differ by at most one.
                let sizes: Vec<usize> = (0..workers)
                    .map(|w| chunk_range(total, workers, w).len())
                    .collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "uneven split {sizes:?}");
            }
        }
    }
}
