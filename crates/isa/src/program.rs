//! Program container and builder.
//!
//! The NIR-to-PTX translator (in `vksim-shader`) emits instructions through
//! [`ProgramBuilder`], using forward-referenced labels for control flow;
//! [`ProgramBuilder::build`] resolves labels to instruction addresses and
//! returns an immutable [`Program`].

use crate::op::{CmpOp, Instr, MemSpace, Pred, Reg};

/// A forward-referencable branch target.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// An immutable, label-resolved program.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Program {
    instrs: Vec<Instr>,
    num_regs: u16,
    num_preds: u16,
}

impl Program {
    /// The instruction at `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    #[inline]
    pub fn fetch(&self, pc: u32) -> &Instr {
        &self.instrs[pc as usize]
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// `true` when the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Number of general-purpose registers a thread needs.
    pub fn num_regs(&self) -> u16 {
        self.num_regs
    }

    /// Number of predicate registers a thread needs.
    pub fn num_preds(&self) -> u16 {
        self.num_preds
    }

    /// All instructions, for analyses (e.g. static instruction mix).
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// A copy keeping only the first `len` instructions (saturating).
    ///
    /// Fault-injection helper: models a truncated shader upload whose
    /// control flow runs off the end of the program, which the engine must
    /// report as a recoverable pc-out-of-range fault.
    pub fn truncated(&self, len: usize) -> Program {
        Program {
            instrs: self.instrs[..len.min(self.instrs.len())].to_vec(),
            num_regs: self.num_regs,
            num_preds: self.num_preds,
        }
    }
}

/// Builder used by the shader translator.
///
/// # Example
///
/// ```
/// use vksim_isa::program::ProgramBuilder;
/// let mut b = ProgramBuilder::new();
/// let r = b.reg();
/// b.mov_imm_u32(r, 7);
/// let skip = b.new_label();
/// b.bra(skip);
/// b.mov_imm_u32(r, 8); // dead
/// b.bind_label(skip);
/// b.exit();
/// let p = b.build();
/// assert_eq!(p.len(), 4);
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    instrs: Vec<Instr>,
    label_pcs: Vec<Option<u32>>,
    // (instr index, label) pairs needing patching.
    fixups: Vec<(usize, Label, FixupKind)>,
    next_reg: u16,
    next_pred: u16,
}

#[derive(Debug, Clone, Copy)]
enum FixupKind {
    BraTarget,
    SsyReconv,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh general-purpose register.
    pub fn reg(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Allocates `N` fresh registers.
    pub fn regs<const N: usize>(&mut self) -> [Reg; N] {
        std::array::from_fn(|_| self.reg())
    }

    /// Allocates a fresh predicate register.
    pub fn pred(&mut self) -> Pred {
        let p = Pred(self.next_pred);
        self.next_pred += 1;
        p
    }

    /// Creates an unbound label.
    pub fn new_label(&mut self) -> Label {
        self.label_pcs.push(None);
        Label(self.label_pcs.len() - 1)
    }

    /// Binds `label` to the next emitted instruction.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind_label(&mut self, label: Label) {
        let slot = &mut self.label_pcs[label.0];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(self.instrs.len() as u32);
    }

    /// Current instruction count (the pc the next instruction will get).
    pub fn here(&self) -> u32 {
        self.instrs.len() as u32
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, i: Instr) {
        self.instrs.push(i);
    }

    // ---- convenience emitters used heavily by the translator ----

    /// `dst = bits(imm)`.
    pub fn mov_imm_u32(&mut self, dst: Reg, imm: u32) {
        self.emit(Instr::MovImm { dst, imm });
    }

    /// `dst = imm` as f32 bits.
    pub fn mov_imm_f32(&mut self, dst: Reg, imm: f32) {
        self.emit(Instr::MovImm {
            dst,
            imm: imm.to_bits(),
        });
    }

    /// Register move.
    pub fn mov(&mut self, dst: Reg, src: Reg) {
        self.emit(Instr::Mov { dst, src });
    }

    /// Float add.
    pub fn fadd(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.emit(Instr::FAdd { dst, a, b });
    }

    /// Float subtract.
    pub fn fsub(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.emit(Instr::FSub { dst, a, b });
    }

    /// Float multiply.
    pub fn fmul(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.emit(Instr::FMul { dst, a, b });
    }

    /// Float divide.
    pub fn fdiv(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.emit(Instr::FDiv { dst, a, b });
    }

    /// Fused multiply-add.
    pub fn ffma(&mut self, dst: Reg, a: Reg, b: Reg, c: Reg) {
        self.emit(Instr::FFma { dst, a, b, c });
    }

    /// Integer add.
    pub fn iadd(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.emit(Instr::IAdd { dst, a, b });
    }

    /// Integer multiply.
    pub fn imul(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.emit(Instr::IMul { dst, a, b });
    }

    /// Float compare into a predicate.
    pub fn setp_f(&mut self, dst: Pred, cmp: CmpOp, a: Reg, b: Reg) {
        self.emit(Instr::SetpF { dst, cmp, a, b });
    }

    /// Unsigned compare into a predicate.
    pub fn setp_i(&mut self, dst: Pred, cmp: CmpOp, a: Reg, b: Reg) {
        self.emit(Instr::SetpI { dst, cmp, a, b });
    }

    /// Unconditional branch.
    pub fn bra(&mut self, target: Label) {
        self.fixups
            .push((self.instrs.len(), target, FixupKind::BraTarget));
        self.emit(Instr::Bra {
            target: u32::MAX,
            pred: None,
        });
    }

    /// Branch taken when `pred == expect`.
    pub fn bra_if(&mut self, target: Label, pred: Pred, expect: bool) {
        self.fixups
            .push((self.instrs.len(), target, FixupKind::BraTarget));
        self.emit(Instr::Bra {
            target: u32::MAX,
            pred: Some((pred, expect)),
        });
    }

    /// Push reconvergence point for an upcoming divergent branch.
    pub fn ssy(&mut self, reconv: Label) {
        self.fixups
            .push((self.instrs.len(), reconv, FixupKind::SsyReconv));
        self.emit(Instr::Ssy { reconv: u32::MAX });
    }

    /// Reconverge.
    pub fn sync(&mut self) {
        self.emit(Instr::Sync);
    }

    /// Global-memory 32-bit load.
    pub fn ld_global(&mut self, dst: Reg, addr: Reg, offset: i32) {
        self.emit(Instr::Ld {
            dst,
            space: MemSpace::Global,
            addr,
            offset,
        });
    }

    /// Global-memory 32-bit store (`addr` register, immediate offset).
    pub fn st_global(&mut self, addr: Reg, offset: i32, src: Reg) {
        self.emit(Instr::St {
            src,
            space: MemSpace::Global,
            addr,
            offset,
        });
    }

    /// Thread exit.
    pub fn exit(&mut self) {
        self.emit(Instr::Exit);
    }

    /// Resolves labels and produces the program.
    ///
    /// # Panics
    ///
    /// Panics if any referenced label was never bound.
    pub fn build(mut self) -> Program {
        for (idx, label, kind) in self.fixups.drain(..) {
            let pc = self.label_pcs[label.0].expect("unbound label referenced");
            match (&mut self.instrs[idx], kind) {
                (Instr::Bra { target, .. }, FixupKind::BraTarget) => *target = pc,
                (Instr::Ssy { reconv }, FixupKind::SsyReconv) => *reconv = pc,
                (other, _) => panic!("fixup on non-branch instruction {other:?}"),
            }
        }
        Program {
            instrs: self.instrs,
            num_regs: self.next_reg,
            num_preds: self.next_pred,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_resolve_forward_and_backward() {
        let mut b = ProgramBuilder::new();
        let top = b.new_label();
        b.bind_label(top);
        let done = b.new_label();
        let p0 = b.pred();
        let r = b.reg();
        b.mov_imm_u32(r, 0);
        b.setp_i(p0, CmpOp::Eq, r, r);
        b.bra_if(done, p0, true);
        b.bra(top);
        b.bind_label(done);
        b.exit();
        let p = b.build();
        match p.fetch(2) {
            Instr::Bra {
                target,
                pred: Some(_),
            } => assert_eq!(*target, 4),
            other => panic!("unexpected {other:?}"),
        }
        match p.fetch(3) {
            Instr::Bra { target, pred: None } => assert_eq!(*target, 0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn register_allocation_counts() {
        let mut b = ProgramBuilder::new();
        let [_a, _b, _c] = b.regs::<3>();
        let _p = b.pred();
        b.exit();
        let p = b.build();
        assert_eq!(p.num_regs(), 3);
        assert_eq!(p.num_preds(), 1);
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.bra(l);
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.bind_label(l);
        b.bind_label(l);
    }

    #[test]
    fn truncated_keeps_prefix_and_register_counts() {
        let mut b = ProgramBuilder::new();
        let r = b.reg();
        b.mov_imm_u32(r, 1);
        b.mov_imm_u32(r, 2);
        b.exit();
        let p = b.build();
        let t = p.truncated(2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.num_regs(), p.num_regs());
        assert_eq!(t.instrs()[..2], p.instrs()[..2]);
        assert_eq!(p.truncated(99).len(), p.len());
    }

    #[test]
    fn ssy_fixup_resolves() {
        let mut b = ProgramBuilder::new();
        let join = b.new_label();
        b.ssy(join);
        b.exit();
        b.bind_label(join);
        b.sync();
        let p = b.build();
        match p.fetch(0) {
            Instr::Ssy { reconv } => assert_eq!(*reconv, 2),
            other => panic!("unexpected {other:?}"),
        }
    }
}
