//! Instruction set definition.
//!
//! Registers are untyped 32-bit cells (like PTX `.b32`); floating-point
//! instructions reinterpret the bits. Predicate registers are separate,
//! matching PTX's `.pred` register class.

/// A virtual general-purpose register index.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u16);

/// A predicate (boolean) register index.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pred(pub u16);

/// Comparison operator for `setp`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
}

/// Memory space of a load or store.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MemSpace {
    /// Device global memory (descriptor buffers, AS, framebuffers).
    Global,
    /// Per-thread local memory (spills, traversal-stack spill area).
    Local,
    /// Constant memory (launch parameters).
    Const,
}

/// Read-only queries against the per-thread RT state, answered by
/// [`crate::interp::RtHooks`]. These model the NIR ray-tracing intrinsics
/// (`loadRayWorldOrigin`, `loadRayLaunchId`, hit-attribute loads, ...) that
/// the NIR-to-PTX translator lowers to custom PTX instructions (paper
/// §III-B2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RtQuery {
    /// Launch-grid coordinate of this thread (`load_ray_launch_id`).
    LaunchId(u8),
    /// Launch-grid extent (`loadRayLaunchSize`).
    LaunchSize(u8),
    /// Committed hit: 0 = miss, 1 = triangle hit, 2 = committed procedural.
    HitKind,
    /// Committed hit ray parameter `t` (f32).
    HitT,
    /// Committed hit barycentric `u` (f32).
    HitU,
    /// Committed hit barycentric `v` (f32).
    HitV,
    /// Committed hit primitive index.
    HitPrimitiveIndex,
    /// Committed hit instance index.
    HitInstanceIndex,
    /// Committed hit instance custom index.
    HitInstanceCustomIndex,
    /// Committed hit world-space geometric normal component (f32).
    HitWorldNormal(u8),
    /// Committed hit SBT record offset (selects the closest-hit shader —
    /// `getClosestHitShaderID` in Algorithm 1).
    ClosestHitShaderId,
    /// Number of pending procedural intersections in the buffer.
    IntersectionCount,
    /// World-space ray origin component of the current trace (f32).
    RayOrigin(u8),
    /// World-space ray direction component of the current trace (f32).
    RayDirection(u8),
    /// Current trace `t_min` (f32).
    RayTMin,
    /// Current trace recursion depth.
    RecursionDepth,
}

/// Per-pending-intersection queries (operand-indexed).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RtIdxQuery {
    /// Intersection-shader ID of entry `idx` (`getIntersectionShaderID`).
    IntersectionShaderId,
    /// Primitive index of entry `idx`.
    IntersectionPrimitiveIndex,
    /// Instance custom index of entry `idx`.
    IntersectionInstanceCustomIndex,
    /// Instance index of entry `idx`.
    IntersectionInstanceIndex,
    /// AABB entry `t` of entry `idx` (f32).
    IntersectionTEnter,
}

/// Broad instruction class, used for the paper's instruction-mix statistics
/// (§VI: "ALU operations account for 60% ... memory operations 25% ...
/// around 1% trace ray instructions").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InstClass {
    /// Integer/float arithmetic, comparisons, conversions, selects.
    Alu,
    /// Special-function unit ops (sqrt, rsqrt, sin, cos, div).
    Sfu,
    /// Loads and stores.
    Mem,
    /// Branches and reconvergence markers.
    Ctrl,
    /// Ray-tracing instructions (`traverseAS` and friends).
    Rt,
    /// Thread exit.
    Exit,
}

/// One virtual instruction.
///
/// The custom RT instructions from the paper's Table II are:
/// [`Instr::TraverseAs`] (`traverseAS`), [`Instr::EndTraceRay`]
/// (`endTraceRay`), [`Instr::RtAllocMem`] (`rt_alloc_mem`) and
/// [`Instr::RtRead`] with [`RtQuery::LaunchId`] (`load_ray_launch_id`),
/// plus the accessors and intersection-control instructions Algorithm 1
/// relies on.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Instr {
    // ---- ALU ----
    /// `dst = imm` (raw 32-bit move).
    MovImm { dst: Reg, imm: u32 },
    /// `dst = src`.
    Mov { dst: Reg, src: Reg },
    /// Integer add: `dst = a + b` (wrapping).
    IAdd { dst: Reg, a: Reg, b: Reg },
    /// Integer subtract (wrapping).
    ISub { dst: Reg, a: Reg, b: Reg },
    /// Integer multiply (wrapping, low 32 bits).
    IMul { dst: Reg, a: Reg, b: Reg },
    /// Unsigned integer minimum.
    IMin { dst: Reg, a: Reg, b: Reg },
    /// Unsigned integer maximum.
    IMax { dst: Reg, a: Reg, b: Reg },
    /// Bitwise and.
    IAnd { dst: Reg, a: Reg, b: Reg },
    /// Bitwise or.
    IOr { dst: Reg, a: Reg, b: Reg },
    /// Bitwise xor.
    IXor { dst: Reg, a: Reg, b: Reg },
    /// Logical shift left by `b & 31`.
    IShl { dst: Reg, a: Reg, b: Reg },
    /// Logical shift right by `b & 31`.
    IShr { dst: Reg, a: Reg, b: Reg },
    /// Float add.
    FAdd { dst: Reg, a: Reg, b: Reg },
    /// Float subtract.
    FSub { dst: Reg, a: Reg, b: Reg },
    /// Float multiply.
    FMul { dst: Reg, a: Reg, b: Reg },
    /// Float divide (SFU class).
    FDiv { dst: Reg, a: Reg, b: Reg },
    /// Fused multiply-add: `dst = a * b + c`.
    FFma { dst: Reg, a: Reg, b: Reg, c: Reg },
    /// Float minimum (NaN-propagating like PTX `min.f32`).
    FMin { dst: Reg, a: Reg, b: Reg },
    /// Float maximum.
    FMax { dst: Reg, a: Reg, b: Reg },
    /// Float negate.
    FNeg { dst: Reg, a: Reg },
    /// Float absolute value.
    FAbs { dst: Reg, a: Reg },
    /// Square root (SFU class).
    FSqrt { dst: Reg, a: Reg },
    /// Reciprocal square root (SFU class).
    FRsqrt { dst: Reg, a: Reg },
    /// Sine (SFU class).
    FSin { dst: Reg, a: Reg },
    /// Cosine (SFU class).
    FCos { dst: Reg, a: Reg },
    /// Floor.
    FFloor { dst: Reg, a: Reg },
    /// Convert f32 -> i32 (truncating).
    CvtF2I { dst: Reg, a: Reg },
    /// Convert i32 -> f32.
    CvtI2F { dst: Reg, a: Reg },
    /// Convert u32 -> f32.
    CvtU2F { dst: Reg, a: Reg },
    /// Compare and set predicate.
    SetpF {
        dst: Pred,
        cmp: CmpOp,
        a: Reg,
        b: Reg,
    },
    /// Integer compare (unsigned) and set predicate.
    SetpI {
        dst: Pred,
        cmp: CmpOp,
        a: Reg,
        b: Reg,
    },
    /// Signed integer compare and set predicate.
    SetpS {
        dst: Pred,
        cmp: CmpOp,
        a: Reg,
        b: Reg,
    },
    /// Predicate logic: `dst = a AND b`.
    PredAnd { dst: Pred, a: Pred, b: Pred },
    /// Predicate logic: `dst = NOT a`.
    PredNot { dst: Pred, a: Pred },
    /// Select: `dst = if cond { a } else { b }`.
    Sel {
        dst: Reg,
        cond: Pred,
        a: Reg,
        b: Reg,
    },

    // ---- Control flow ----
    /// Unconditional or predicated branch to resolved pc `target`.
    /// `expect` gives the predicate value that takes the branch.
    Bra {
        target: u32,
        pred: Option<(Pred, bool)>,
    },
    /// Push a reconvergence point (immediate post-dominator) for the SIMT
    /// stack; like SASS `SSY`.
    Ssy { reconv: u32 },
    /// Reconverge at a previously pushed point; like SASS `SYNC`.
    Sync,

    // ---- Memory ----
    /// 32-bit load: `dst = [addr + offset]`.
    Ld {
        dst: Reg,
        space: MemSpace,
        addr: Reg,
        offset: i32,
    },
    /// 32-bit store: `[addr + offset] = src`.
    St {
        src: Reg,
        space: MemSpace,
        addr: Reg,
        offset: i32,
    },

    // ---- Ray tracing (Table II + Algorithm 1 support) ----
    /// `traverseAS`: launch acceleration-structure traversal for this
    /// thread's ray. Ray registers hold f32 components.
    TraverseAs {
        /// World-space origin (x, y, z).
        origin: [Reg; 3],
        /// World-space direction (x, y, z).
        dir: [Reg; 3],
        /// Minimum t (f32).
        tmin: Reg,
        /// Maximum t (f32).
        tmax: Reg,
        /// Vulkan ray flags (bit 0 = terminate on first hit).
        flags: Reg,
    },
    /// `endTraceRay`: pop the traversal-results stack and clear the
    /// intersection table.
    EndTraceRay,
    /// `rt_alloc_mem`: allocate `size` bytes of memory shared among shader
    /// stages; the address is written to `dst`.
    RtAllocMem { dst: Reg, size: u32 },
    /// Read a scalar from the per-thread RT state.
    RtRead { dst: Reg, query: RtQuery },
    /// Read an indexed value from the pending-intersection table.
    RtReadIdx {
        dst: Reg,
        query: RtIdxQuery,
        idx: Reg,
    },
    /// `intersectionExit`-style check: predicate set when `idx` is still a
    /// valid pending-intersection index (loop continues while true).
    IntersectionValid { dst: Pred, idx: Reg },
    /// `getNextCoalescedCall` (Algorithm 3 / FCC): reads the coalescing
    /// buffer row `idx`; `dst` receives the row's shader ID, or `u32::MAX`
    /// when this thread does not participate in the row.
    NextCoalescedCall { dst: Reg, idx: Reg },
    /// `reportIntersectionEXT` from an intersection shader: commit hit at
    /// `t` for pending entry `idx` if it is the closest so far.
    ReportIntersection { t: Reg, idx: Reg },
    /// Thread finished.
    Exit,
}

impl Instr {
    /// The instruction's class for scheduling and statistics.
    pub fn class(&self) -> InstClass {
        use Instr::*;
        match self {
            FDiv { .. } | FSqrt { .. } | FRsqrt { .. } | FSin { .. } | FCos { .. } => {
                InstClass::Sfu
            }
            MovImm { .. }
            | Mov { .. }
            | IAdd { .. }
            | ISub { .. }
            | IMul { .. }
            | IMin { .. }
            | IMax { .. }
            | IAnd { .. }
            | IOr { .. }
            | IXor { .. }
            | IShl { .. }
            | IShr { .. }
            | FAdd { .. }
            | FSub { .. }
            | FMul { .. }
            | FFma { .. }
            | FMin { .. }
            | FMax { .. }
            | FNeg { .. }
            | FAbs { .. }
            | FFloor { .. }
            | CvtF2I { .. }
            | CvtI2F { .. }
            | CvtU2F { .. }
            | SetpF { .. }
            | SetpI { .. }
            | SetpS { .. }
            | PredAnd { .. }
            | PredNot { .. }
            | Sel { .. } => InstClass::Alu,
            Bra { .. } | Ssy { .. } | Sync => InstClass::Ctrl,
            Ld { .. } | St { .. } => InstClass::Mem,
            TraverseAs { .. }
            | EndTraceRay
            | RtAllocMem { .. }
            | RtRead { .. }
            | RtReadIdx { .. }
            | IntersectionValid { .. }
            | NextCoalescedCall { .. }
            | ReportIntersection { .. } => InstClass::Rt,
            Exit => InstClass::Exit,
        }
    }

    /// `true` for the heavyweight `traverseAS` instruction that is routed to
    /// the RT unit (the paper's "trace ray instruction").
    pub fn is_trace_ray(&self) -> bool {
        matches!(self, Instr::TraverseAs { .. })
    }
}

pub use MemSpace::{Const as ConstSpace, Global as GlobalSpace, Local as LocalSpace};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_cover_paper_breakdown() {
        assert_eq!(
            Instr::FAdd {
                dst: Reg(0),
                a: Reg(0),
                b: Reg(0)
            }
            .class(),
            InstClass::Alu
        );
        assert_eq!(
            Instr::FSqrt {
                dst: Reg(0),
                a: Reg(0)
            }
            .class(),
            InstClass::Sfu
        );
        assert_eq!(
            Instr::Ld {
                dst: Reg(0),
                space: MemSpace::Global,
                addr: Reg(0),
                offset: 0
            }
            .class(),
            InstClass::Mem
        );
        assert_eq!(
            Instr::Bra {
                target: 0,
                pred: None
            }
            .class(),
            InstClass::Ctrl
        );
        assert_eq!(Instr::EndTraceRay.class(), InstClass::Rt);
        assert_eq!(Instr::Exit.class(), InstClass::Exit);
    }

    #[test]
    fn trace_ray_detection() {
        let t = Instr::TraverseAs {
            origin: [Reg(0), Reg(1), Reg(2)],
            dir: [Reg(3), Reg(4), Reg(5)],
            tmin: Reg(6),
            tmax: Reg(7),
            flags: Reg(8),
        };
        assert!(t.is_trace_ray());
        assert!(!Instr::EndTraceRay.is_trace_ray());
        assert_eq!(t.class(), InstClass::Rt);
    }
}
