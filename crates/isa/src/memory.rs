//! Flat sparse functional memory.
//!
//! This is the *functional* memory image: descriptor sets, acceleration
//! structures, framebuffers and shader scratch all live in one 64-bit
//! address space. The *timing* of accesses is modelled separately by
//! `vksim-mem`; the functional interpreter only needs correct values.

use std::collections::HashMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// Byte-granular functional memory access, with multi-byte little-endian
/// accessors provided on top.
///
/// The interpreter executes against `&mut dyn MemIo` so the same functional
/// semantics run against two backings:
///
/// * [`SimMemory`] — the flat image, used by functional-only execution;
/// * [`OverlayMem`] — a read-only view of the image plus a private
///   [`WriteOverlay`], used by the two-phase cycle engine so concurrent SMs
///   never mutate the shared image mid-cycle (writes are applied serially,
///   in SM-id order, at the cycle's drain phase).
pub trait MemIo {
    /// Reads one byte.
    fn read_u8(&self, addr: u64) -> u8;

    /// Writes one byte.
    fn write_u8(&mut self, addr: u64, value: u8);

    /// Reads a little-endian u32 (byte-granular, may straddle pages).
    fn read_u32(&self, addr: u64) -> u32 {
        let mut bytes = [0u8; 4];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = self.read_u8(addr + i as u64);
        }
        u32::from_le_bytes(bytes)
    }

    /// Writes a little-endian u32.
    fn write_u32(&mut self, addr: u64, value: u32) {
        for (i, b) in value.to_le_bytes().iter().enumerate() {
            self.write_u8(addr + i as u64, *b);
        }
    }

    /// Reads an f32.
    fn read_f32(&self, addr: u64) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// Writes an f32.
    fn write_f32(&mut self, addr: u64, value: f32) {
        self.write_u32(addr, value.to_bits());
    }

    /// Reads a little-endian u64.
    fn read_u64(&self, addr: u64) -> u64 {
        (self.read_u32(addr) as u64) | ((self.read_u32(addr + 4) as u64) << 32)
    }

    /// Writes a little-endian u64.
    fn write_u64(&mut self, addr: u64, value: u64) {
        self.write_u32(addr, value as u32);
        self.write_u32(addr + 4, (value >> 32) as u32);
    }
}

/// Sparse paged byte-addressable memory with little-endian 32-bit accessors.
///
/// Unwritten memory reads as zero, like freshly allocated device memory in
/// the simulator.
///
/// # Example
///
/// ```
/// use vksim_isa::SimMemory;
/// let mut m = SimMemory::new();
/// m.write_f32(0x1000, 3.5);
/// assert_eq!(m.read_f32(0x1000), 3.5);
/// assert_eq!(m.read_u32(0xdead_beef), 0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct SimMemory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl SimMemory {
    /// Creates an empty memory image.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(p) => p[(addr as usize) & (PAGE_SIZE - 1)],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let page = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
        page[(addr as usize) & (PAGE_SIZE - 1)] = value;
    }

    /// Reads a little-endian u32 (byte-granular, may straddle pages).
    pub fn read_u32(&self, addr: u64) -> u32 {
        let mut bytes = [0u8; 4];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = self.read_u8(addr + i as u64);
        }
        u32::from_le_bytes(bytes)
    }

    /// Writes a little-endian u32.
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        for (i, b) in value.to_le_bytes().iter().enumerate() {
            self.write_u8(addr + i as u64, *b);
        }
    }

    /// Reads an f32.
    pub fn read_f32(&self, addr: u64) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// Writes an f32.
    pub fn write_f32(&mut self, addr: u64, value: f32) {
        self.write_u32(addr, value.to_bits());
    }

    /// Reads a little-endian u64.
    pub fn read_u64(&self, addr: u64) -> u64 {
        (self.read_u32(addr) as u64) | ((self.read_u32(addr + 4) as u64) << 32)
    }

    /// Writes a little-endian u64.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write_u32(addr, value as u32);
        self.write_u32(addr + 4, (value >> 32) as u32);
    }

    /// Copies a byte slice into memory.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(addr + i as u64, *b);
        }
    }

    /// Reads `len` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Vec<u8> {
        (0..len).map(|i| self.read_u8(addr + i as u64)).collect()
    }

    /// Number of resident pages (footprint diagnostics).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Serializes the memory image for a machine-state snapshot: resident
    /// pages sorted by page number, each as the page index plus its 4 KiB
    /// of bytes. Sorting makes the encoding independent of `HashMap`
    /// iteration order, so identical images produce identical bytes.
    pub fn save(&self, e: &mut vksim_snapshot::Enc) {
        let mut pages: Vec<u64> = self.pages.keys().copied().collect();
        pages.sort_unstable();
        e.seq(pages.len());
        for p in pages {
            e.u64(p);
            e.bytes(&self.pages[&p][..]);
        }
    }

    /// Restores an image written by [`SimMemory::save`].
    ///
    /// # Errors
    ///
    /// Propagates decoder errors; a page payload that is not exactly
    /// 4 KiB is malformed.
    pub fn load(d: &mut vksim_snapshot::Dec<'_>) -> Result<Self, vksim_snapshot::SnapError> {
        let n = d.seq()?;
        let mut pages = HashMap::with_capacity(n);
        for _ in 0..n {
            let idx = d.u64()?;
            let raw = d.bytes()?;
            let arr: Box<[u8; PAGE_SIZE]> = raw.into_boxed_slice().try_into().map_err(|_| {
                vksim_snapshot::SnapError::Malformed(format!("page {idx} is not {PAGE_SIZE} bytes"))
            })?;
            pages.insert(idx, arr);
        }
        Ok(SimMemory { pages })
    }
}

impl MemIo for SimMemory {
    fn read_u8(&self, addr: u64) -> u8 {
        SimMemory::read_u8(self, addr)
    }

    fn write_u8(&mut self, addr: u64, value: u8) {
        SimMemory::write_u8(self, addr, value)
    }
}

/// A per-SM buffer of functional-memory writes made during one simulated
/// cycle, keyed by byte address (last write to an address wins, matching
/// in-order execution within the SM).
///
/// The two-phase cycle engine gives every SM an [`OverlayMem`] view for its
/// tick; the overlays are then applied to the shared [`SimMemory`] in SM-id
/// order, so the final image is identical for any worker-thread count.
#[derive(Clone, Debug, Default)]
pub struct WriteOverlay {
    bytes: HashMap<u64, u8>,
}

impl WriteOverlay {
    /// Creates an empty overlay.
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` when no writes are buffered.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Number of buffered byte writes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Applies all buffered writes to `mem` and clears the overlay.
    ///
    /// Each address holds its final value, so application order between
    /// distinct addresses cannot matter; cross-SM ordering is the caller's
    /// contract (apply overlays in SM-id order).
    pub fn apply_to(&mut self, mem: &mut SimMemory) {
        for (&addr, &value) in &self.bytes {
            mem.write_u8(addr, value);
        }
        self.bytes.clear();
    }
}

/// Read-through view: reads hit the overlay first, then the base image;
/// writes land only in the overlay. See [`WriteOverlay`].
#[derive(Debug)]
pub struct OverlayMem<'a> {
    base: &'a SimMemory,
    overlay: &'a mut WriteOverlay,
}

impl<'a> OverlayMem<'a> {
    /// A view of `base` buffering writes into `overlay`.
    pub fn new(base: &'a SimMemory, overlay: &'a mut WriteOverlay) -> Self {
        OverlayMem { base, overlay }
    }
}

impl MemIo for OverlayMem<'_> {
    fn read_u8(&self, addr: u64) -> u8 {
        if self.overlay.bytes.is_empty() {
            return self.base.read_u8(addr);
        }
        match self.overlay.bytes.get(&addr) {
            Some(&b) => b,
            None => self.base.read_u8(addr),
        }
    }

    fn write_u8(&mut self, addr: u64, value: u8) {
        self.overlay.bytes.insert(addr, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_semantics() {
        let m = SimMemory::new();
        assert_eq!(m.read_u32(0), 0);
        assert_eq!(m.read_u8(u64::MAX - 4), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn u32_roundtrip_and_endianness() {
        let mut m = SimMemory::new();
        m.write_u32(0x100, 0x1234_5678);
        assert_eq!(m.read_u8(0x100), 0x78);
        assert_eq!(m.read_u8(0x103), 0x12);
        assert_eq!(m.read_u32(0x100), 0x1234_5678);
    }

    #[test]
    fn f32_roundtrip_preserves_bits() {
        let mut m = SimMemory::new();
        m.write_f32(8, -0.0);
        assert_eq!(m.read_u32(8), 0x8000_0000);
        m.write_f32(8, f32::NAN);
        assert!(m.read_f32(8).is_nan());
    }

    #[test]
    fn cross_page_access() {
        let mut m = SimMemory::new();
        let addr = (1 << 12) - 2; // straddles first page boundary
        m.write_u32(addr, 0xAABB_CCDD);
        assert_eq!(m.read_u32(addr), 0xAABB_CCDD);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn u64_roundtrip() {
        let mut m = SimMemory::new();
        m.write_u64(0x2000, 0xDEAD_BEEF_0123_4567);
        assert_eq!(m.read_u64(0x2000), 0xDEAD_BEEF_0123_4567);
    }

    #[test]
    fn bulk_bytes_roundtrip() {
        let mut m = SimMemory::new();
        m.write_bytes(0x50, &[1, 2, 3, 4, 5]);
        assert_eq!(m.read_bytes(0x50, 5), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn snapshot_round_trip_is_exact_and_sorted() {
        let mut m = SimMemory::new();
        m.write_u32(0x9_0000, 0xCAFE_F00D);
        m.write_u8(0x42, 7);
        m.write_u64((1 << 12) - 4, u64::MAX); // straddles a page boundary
        let mut e = vksim_snapshot::Enc::new();
        m.save(&mut e);
        let bytes = e.into_bytes();
        let back = SimMemory::load(&mut vksim_snapshot::Dec::new(&bytes)).unwrap();
        assert_eq!(back.read_u32(0x9_0000), 0xCAFE_F00D);
        assert_eq!(back.read_u8(0x42), 7);
        assert_eq!(back.read_u64((1 << 12) - 4), u64::MAX);
        assert_eq!(back.resident_pages(), m.resident_pages());
        // Re-encoding is byte-identical (sorted pages, no map-order leak).
        let mut e2 = vksim_snapshot::Enc::new();
        back.save(&mut e2);
        assert_eq!(e2.into_bytes(), bytes);
    }

    #[test]
    fn overlay_reads_through_to_base() {
        let mut base = SimMemory::new();
        base.write_u32(0x100, 0xCAFE_F00D);
        let mut ov = WriteOverlay::new();
        let view = OverlayMem::new(&base, &mut ov);
        assert_eq!(view.read_u32(0x100), 0xCAFE_F00D);
        assert_eq!(view.read_u32(0x9000), 0);
    }

    #[test]
    fn overlay_buffers_writes_without_touching_base() {
        let mut base = SimMemory::new();
        base.write_u32(0x100, 1);
        let mut ov = WriteOverlay::new();
        let mut view = OverlayMem::new(&base, &mut ov);
        view.write_u32(0x100, 2);
        // The view observes its own write; the base image is untouched.
        assert_eq!(view.read_u32(0x100), 2);
        assert_eq!(base.read_u32(0x100), 1);
        assert_eq!(ov.len(), 4);
    }

    #[test]
    fn overlay_apply_flushes_and_clears() {
        let mut base = SimMemory::new();
        let mut ov = WriteOverlay::new();
        let mut view = OverlayMem::new(&base, &mut ov);
        view.write_f32(0x40, 2.5);
        view.write_u32(0x40, 7); // last write to the address wins
        ov.apply_to(&mut base);
        assert_eq!(base.read_u32(0x40), 7);
        assert!(ov.is_empty());
    }

    #[test]
    fn overlay_partial_write_merges_with_base() {
        let mut base = SimMemory::new();
        base.write_u32(0x200, 0xAABB_CCDD);
        let mut ov = WriteOverlay::new();
        let mut view = OverlayMem::new(&base, &mut ov);
        view.write_u8(0x201, 0xEE); // only one byte overlaid
        assert_eq!(view.read_u32(0x200), 0xAABB_EEDD);
    }
}
