//! PTX-like virtual ISA and functional interpreter.
//!
//! GPGPU-Sim executes NVIDIA's virtual ISA, PTX; Vulkan-Sim extends that ISA
//! with custom ray-tracing instructions (paper Table II). This crate
//! reproduces the equivalent layer for the Rust rewrite:
//!
//! * [`op::Instr`] — a register-based virtual instruction set with ALU,
//!   control-flow and memory instructions plus the paper's custom RT
//!   instructions (`traverseAS`, `endTraceRay`, `rt_alloc_mem`,
//!   `load_ray_launch_id` and the trace-result accessors they imply);
//! * [`program::Program`] / [`program::ProgramBuilder`] — the container the
//!   NIR-to-PTX translator emits into, with label resolution;
//! * [`interp`] — a per-thread functional interpreter. RT instructions are
//!   delegated to an [`interp::RtHooks`] implementation supplied by the
//!   simulator core, which owns the acceleration structures and per-thread
//!   trace-result stacks;
//! * [`memory::SimMemory`] — the flat, sparse functional memory image that
//!   loads and stores operate on.
//!
//! Divergence handling (SIMT stack / independent thread scheduling) is *not*
//! here: the GPU timing model drives threads through [`interp::step`] one
//! instruction at a time and reacts to the returned [`interp::Effect`].
//!
//! # Example
//!
//! ```
//! use vksim_isa::program::ProgramBuilder;
//! use vksim_isa::interp::{run_to_exit, NoRt, ThreadState};
//! use vksim_isa::memory::SimMemory;
//!
//! let mut b = ProgramBuilder::new();
//! let r = b.reg();
//! b.mov_imm_f32(r, 21.0);
//! b.fadd(r, r, r);
//! let out = b.reg();
//! b.mov_imm_u32(out, 0x100);
//! b.st_global(out, 0, r);
//! b.exit();
//! let prog = b.build();
//!
//! let mut mem = SimMemory::new();
//! let mut t = ThreadState::new(prog.num_regs());
//! run_to_exit(&prog, &mut t, &mut mem, &mut NoRt).unwrap();
//! assert_eq!(mem.read_f32(0x100), 42.0);
//! ```

pub mod interp;
pub mod memory;
pub mod op;
pub mod program;
pub mod text;

pub use interp::{Effect, ExecError, RtError, RtHooks, ThreadState};
pub use memory::{MemIo, OverlayMem, SimMemory, WriteOverlay};
pub use op::{CmpOp, InstClass, Instr, Pred, Reg, RtQuery};
pub use program::{Program, ProgramBuilder};

/// Nominal encoded size of one instruction in bytes (used for instruction
/// cache modelling).
pub const INSTR_SIZE_BYTES: u64 = 8;
