//! Per-thread functional interpreter.
//!
//! The GPU timing model (`vksim-gpu`) drives warps through [`exec_at`]: it
//! fetches the warp's next pc, executes every active lane at that pc and
//! uses the returned [`Effect`] to route the instruction to the right
//! execution unit (ALU/SFU/LDST/RT unit). A convenience [`run_to_exit`]
//! executes a single thread functionally, used by tests and by functional
//! (timing-free) rendering runs.
//!
//! Ray-tracing instructions are delegated to [`RtHooks`], implemented by
//! the simulator core, which owns acceleration structures and the
//! per-thread traversal-result stacks (paper §III-B2: "results of traversal
//! are stored in a stack").

use crate::memory::MemIo;
use crate::op::{CmpOp, Instr, MemSpace, RtIdxQuery, RtQuery};
use crate::program::Program;

/// A ray handed to `traverseAS`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RayDesc {
    /// World-space origin.
    pub origin: [f32; 3],
    /// World-space direction.
    pub dir: [f32; 3],
    /// Minimum t.
    pub t_min: f32,
    /// Maximum t.
    pub t_max: f32,
    /// Vulkan ray flags (bit 0 = terminate on first hit).
    pub flags: u32,
}

/// Error raised by an [`RtHooks`] implementation (no runtime bound, corrupt
/// acceleration structure...). Surfaced as [`ExecError::Rt`] by [`exec_at`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RtError(pub String);

impl std::fmt::Display for RtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for RtError {}

/// Runtime services backing the custom RT instructions.
///
/// All value-returning queries use raw `u32` bits; floating-point results
/// are returned via `f32::to_bits`. The two hooks that can encounter a
/// missing runtime or a corrupt acceleration structure are fallible; their
/// errors surface as [`ExecError::Rt`] instead of panicking mid-simulation.
pub trait RtHooks {
    /// `traverseAS`: traverse the AS for `ray`, pushing a trace frame for
    /// thread `tid`.
    ///
    /// # Errors
    ///
    /// Fails when no RT runtime is bound or traversal detects a corrupt
    /// acceleration structure.
    fn traverse(&mut self, tid: usize, ray: RayDesc) -> Result<(), RtError>;
    /// `endTraceRay`: pop the trace frame and clear the intersection table.
    fn end_trace(&mut self, tid: usize);
    /// `rt_alloc_mem`: allocate shader-shared memory, returning its address.
    fn alloc_mem(&mut self, tid: usize, size: u32) -> u64;
    /// Scalar query against the current trace frame.
    fn query(&mut self, tid: usize, q: RtQuery) -> u32;
    /// Indexed query against the pending-intersection table.
    fn query_idx(&mut self, tid: usize, q: RtIdxQuery, idx: u32) -> u32;
    /// `true` while `idx` is a valid pending-intersection index.
    fn intersection_valid(&mut self, tid: usize, idx: u32) -> bool;
    /// FCC `getNextCoalescedCall`: shader ID of coalescing-buffer row `idx`
    /// for this thread, or `u32::MAX` when not participating.
    fn next_coalesced_call(&mut self, tid: usize, idx: u32) -> u32;
    /// `reportIntersectionEXT`: commit pending entry `idx` at parameter `t`
    /// if it beats the current closest hit.
    ///
    /// # Errors
    ///
    /// Fails when no RT runtime is bound.
    fn report_intersection(&mut self, tid: usize, idx: u32, t: f32) -> Result<(), RtError>;
}

/// An [`RtHooks`] that fails on traversal — for programs without RT
/// instructions (unit tests, ALU microbenchmarks). Executing `traverseAS`
/// or `reportIntersectionEXT` against it is a recoverable [`ExecError`],
/// not a panic.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoRt;

impl RtHooks for NoRt {
    fn traverse(&mut self, _tid: usize, _ray: RayDesc) -> Result<(), RtError> {
        Err(RtError("traverseAS executed without an RT runtime".into()))
    }
    fn end_trace(&mut self, _tid: usize) {}
    fn alloc_mem(&mut self, _tid: usize, _size: u32) -> u64 {
        0
    }
    fn query(&mut self, _tid: usize, _q: RtQuery) -> u32 {
        0
    }
    fn query_idx(&mut self, _tid: usize, _q: RtIdxQuery, _idx: u32) -> u32 {
        0
    }
    fn intersection_valid(&mut self, _tid: usize, _idx: u32) -> bool {
        false
    }
    fn next_coalesced_call(&mut self, _tid: usize, _idx: u32) -> u32 {
        u32::MAX
    }
    fn report_intersection(&mut self, _tid: usize, _idx: u32, _t: f32) -> Result<(), RtError> {
        Err(RtError(
            "reportIntersection executed without an RT runtime".into(),
        ))
    }
}

/// Architectural state of one thread.
#[derive(Clone, Debug, PartialEq)]
pub struct ThreadState {
    /// Program counter.
    pub pc: u32,
    /// Global thread id (keys the RT runtime state).
    pub tid: usize,
    /// General-purpose registers (raw 32-bit).
    pub regs: Vec<u32>,
    /// Predicate registers.
    pub preds: Vec<bool>,
    /// Set when the thread executed `Exit`.
    pub exited: bool,
    /// Base address of this thread's local-memory window.
    pub local_base: u64,
}

impl ThreadState {
    /// Creates a fresh thread with `num_regs` registers, tid 0.
    pub fn new(num_regs: u16) -> Self {
        Self::with_tid(num_regs, 64, 0)
    }

    /// Creates a fresh thread with explicit register/predicate counts and id.
    pub fn with_tid(num_regs: u16, num_preds: u16, tid: usize) -> Self {
        ThreadState {
            pc: 0,
            tid,
            regs: vec![0; num_regs as usize],
            preds: vec![false; num_preds as usize],
            exited: false,
            local_base: 0x7000_0000 + (tid as u64) * 0x1_0000,
        }
    }

    /// Register read as f32.
    #[inline]
    pub fn f(&self, r: crate::op::Reg) -> f32 {
        f32::from_bits(self.regs[r.0 as usize])
    }

    /// Register read as u32.
    #[inline]
    pub fn u(&self, r: crate::op::Reg) -> u32 {
        self.regs[r.0 as usize]
    }

    /// Register write (raw bits).
    #[inline]
    pub fn set_u(&mut self, r: crate::op::Reg, v: u32) {
        self.regs[r.0 as usize] = v;
    }

    /// Register write as f32.
    #[inline]
    pub fn set_f(&mut self, r: crate::op::Reg, v: f32) {
        self.regs[r.0 as usize] = v.to_bits();
    }

    /// Serializes the thread's architectural state for a machine-state
    /// snapshot.
    pub fn save(&self, e: &mut vksim_snapshot::Enc) {
        e.u32(self.pc);
        e.usize(self.tid);
        e.seq(self.regs.len());
        for &r in &self.regs {
            e.u32(r);
        }
        e.seq(self.preds.len());
        for &p in &self.preds {
            e.bool(p);
        }
        e.bool(self.exited);
        e.u64(self.local_base);
    }

    /// Restores a thread written by [`ThreadState::save`].
    ///
    /// # Errors
    ///
    /// Propagates decoder errors on truncated or malformed payloads.
    pub fn load(d: &mut vksim_snapshot::Dec<'_>) -> Result<Self, vksim_snapshot::SnapError> {
        let pc = d.u32()?;
        let tid = d.usize()?;
        let nr = d.seq()?;
        let mut regs = Vec::with_capacity(nr);
        for _ in 0..nr {
            regs.push(d.u32()?);
        }
        let np = d.seq()?;
        let mut preds = Vec::with_capacity(np);
        for _ in 0..np {
            preds.push(d.bool()?);
        }
        let exited = d.bool()?;
        let local_base = d.u64()?;
        Ok(ThreadState {
            pc,
            tid,
            regs,
            preds,
            exited,
            local_base,
        })
    }
}

/// What an executed instruction did, for the timing model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Effect {
    /// Plain ALU work.
    Alu,
    /// Special-function-unit work.
    Sfu,
    /// A memory access of `size` bytes at `addr` (`is_store` for writes).
    Mem {
        /// Memory space accessed.
        space: MemSpace,
        /// Absolute byte address.
        addr: u64,
        /// `true` for stores.
        is_store: bool,
        /// Access size in bytes.
        size: u32,
    },
    /// A branch; `taken` tells the SIMT stack which way this lane went.
    Branch {
        /// Whether this lane takes the branch.
        taken: bool,
        /// Branch target pc.
        target: u32,
    },
    /// Reconvergence-point push (`SSY`).
    Ssy {
        /// The reconvergence pc.
        reconv: u32,
    },
    /// Reconverge (`SYNC`).
    Sync,
    /// A `traverseAS` instruction: route this warp to the RT unit.
    TraceRay,
    /// Lightweight RT bookkeeping instruction.
    RtOther,
    /// Thread exited.
    Exited,
}

/// Error from executing an instruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// pc past the end of the program without `Exit`.
    PcOutOfRange {
        /// The offending pc.
        pc: u32,
    },
    /// Watchdog limit hit in [`run_to_exit`].
    StepLimit,
    /// An RT instruction failed in its [`RtHooks`] backend.
    Rt {
        /// pc of the faulting RT instruction.
        pc: u32,
        /// The backend's explanation.
        detail: String,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::PcOutOfRange { pc } => write!(f, "pc {pc} out of range"),
            ExecError::StepLimit => write!(f, "step limit exceeded (runaway program)"),
            ExecError::Rt { pc, detail } => write!(f, "rt fault at pc {pc}: {detail}"),
        }
    }
}

impl std::error::Error for ExecError {}

fn cmp_f(cmp: CmpOp, a: f32, b: f32) -> bool {
    match cmp {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
    }
}

fn cmp_u(cmp: CmpOp, a: u32, b: u32) -> bool {
    match cmp {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
    }
}

fn cmp_s(cmp: CmpOp, a: i32, b: i32) -> bool {
    match cmp {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
    }
}

/// Executes the instruction at `pc` for one thread, updating registers and
/// `t.pc` (set to the lane's next pc) and returning the [`Effect`].
///
/// The caller (warp scheduler) decides what the *warp's* next pc is; for
/// divergent branches different lanes report different [`Effect::Branch`]
/// outcomes.
///
/// # Errors
///
/// Returns [`ExecError::PcOutOfRange`] if `pc` is outside the program and
/// [`ExecError::Rt`] if an RT instruction fails in its [`RtHooks`] backend
/// (no runtime bound, corrupt acceleration structure).
pub fn exec_at(
    program: &Program,
    pc: u32,
    t: &mut ThreadState,
    mem: &mut dyn MemIo,
    rt: &mut dyn RtHooks,
) -> Result<Effect, ExecError> {
    if pc as usize >= program.len() {
        return Err(ExecError::PcOutOfRange { pc });
    }
    let instr = *program.fetch(pc);
    let mut next = pc + 1;
    let effect = match instr {
        Instr::MovImm { dst, imm } => {
            t.set_u(dst, imm);
            Effect::Alu
        }
        Instr::Mov { dst, src } => {
            t.set_u(dst, t.u(src));
            Effect::Alu
        }
        Instr::IAdd { dst, a, b } => {
            t.set_u(dst, t.u(a).wrapping_add(t.u(b)));
            Effect::Alu
        }
        Instr::ISub { dst, a, b } => {
            t.set_u(dst, t.u(a).wrapping_sub(t.u(b)));
            Effect::Alu
        }
        Instr::IMul { dst, a, b } => {
            t.set_u(dst, t.u(a).wrapping_mul(t.u(b)));
            Effect::Alu
        }
        Instr::IMin { dst, a, b } => {
            t.set_u(dst, t.u(a).min(t.u(b)));
            Effect::Alu
        }
        Instr::IMax { dst, a, b } => {
            t.set_u(dst, t.u(a).max(t.u(b)));
            Effect::Alu
        }
        Instr::IAnd { dst, a, b } => {
            t.set_u(dst, t.u(a) & t.u(b));
            Effect::Alu
        }
        Instr::IOr { dst, a, b } => {
            t.set_u(dst, t.u(a) | t.u(b));
            Effect::Alu
        }
        Instr::IXor { dst, a, b } => {
            t.set_u(dst, t.u(a) ^ t.u(b));
            Effect::Alu
        }
        Instr::IShl { dst, a, b } => {
            t.set_u(dst, t.u(a) << (t.u(b) & 31));
            Effect::Alu
        }
        Instr::IShr { dst, a, b } => {
            t.set_u(dst, t.u(a) >> (t.u(b) & 31));
            Effect::Alu
        }
        Instr::FAdd { dst, a, b } => {
            t.set_f(dst, t.f(a) + t.f(b));
            Effect::Alu
        }
        Instr::FSub { dst, a, b } => {
            t.set_f(dst, t.f(a) - t.f(b));
            Effect::Alu
        }
        Instr::FMul { dst, a, b } => {
            t.set_f(dst, t.f(a) * t.f(b));
            Effect::Alu
        }
        Instr::FDiv { dst, a, b } => {
            t.set_f(dst, t.f(a) / t.f(b));
            Effect::Sfu
        }
        Instr::FFma { dst, a, b, c } => {
            t.set_f(dst, t.f(a).mul_add(t.f(b), t.f(c)));
            Effect::Alu
        }
        Instr::FMin { dst, a, b } => {
            t.set_f(dst, t.f(a).min(t.f(b)));
            Effect::Alu
        }
        Instr::FMax { dst, a, b } => {
            t.set_f(dst, t.f(a).max(t.f(b)));
            Effect::Alu
        }
        Instr::FNeg { dst, a } => {
            t.set_f(dst, -t.f(a));
            Effect::Alu
        }
        Instr::FAbs { dst, a } => {
            t.set_f(dst, t.f(a).abs());
            Effect::Alu
        }
        Instr::FSqrt { dst, a } => {
            t.set_f(dst, t.f(a).sqrt());
            Effect::Sfu
        }
        Instr::FRsqrt { dst, a } => {
            t.set_f(dst, 1.0 / t.f(a).sqrt());
            Effect::Sfu
        }
        Instr::FSin { dst, a } => {
            t.set_f(dst, t.f(a).sin());
            Effect::Sfu
        }
        Instr::FCos { dst, a } => {
            t.set_f(dst, t.f(a).cos());
            Effect::Sfu
        }
        Instr::FFloor { dst, a } => {
            t.set_f(dst, t.f(a).floor());
            Effect::Alu
        }
        Instr::CvtF2I { dst, a } => {
            t.set_u(dst, t.f(a) as i32 as u32);
            Effect::Alu
        }
        Instr::CvtI2F { dst, a } => {
            t.set_f(dst, t.u(a) as i32 as f32);
            Effect::Alu
        }
        Instr::CvtU2F { dst, a } => {
            t.set_f(dst, t.u(a) as f32);
            Effect::Alu
        }
        Instr::SetpF { dst, cmp, a, b } => {
            t.preds[dst.0 as usize] = cmp_f(cmp, t.f(a), t.f(b));
            Effect::Alu
        }
        Instr::SetpI { dst, cmp, a, b } => {
            t.preds[dst.0 as usize] = cmp_u(cmp, t.u(a), t.u(b));
            Effect::Alu
        }
        Instr::SetpS { dst, cmp, a, b } => {
            t.preds[dst.0 as usize] = cmp_s(cmp, t.u(a) as i32, t.u(b) as i32);
            Effect::Alu
        }
        Instr::PredAnd { dst, a, b } => {
            t.preds[dst.0 as usize] = t.preds[a.0 as usize] && t.preds[b.0 as usize];
            Effect::Alu
        }
        Instr::PredNot { dst, a } => {
            t.preds[dst.0 as usize] = !t.preds[a.0 as usize];
            Effect::Alu
        }
        Instr::Sel { dst, cond, a, b } => {
            let v = if t.preds[cond.0 as usize] {
                t.u(a)
            } else {
                t.u(b)
            };
            t.set_u(dst, v);
            Effect::Alu
        }
        Instr::Bra { target, pred } => {
            let taken = match pred {
                None => true,
                Some((p, expect)) => t.preds[p.0 as usize] == expect,
            };
            if taken {
                next = target;
            }
            Effect::Branch { taken, target }
        }
        Instr::Ssy { reconv } => Effect::Ssy { reconv },
        Instr::Sync => Effect::Sync,
        Instr::Ld {
            dst,
            space,
            addr,
            offset,
        } => {
            let a = resolve_addr(t, space, t.u(addr), offset);
            t.set_u(dst, mem.read_u32(a));
            Effect::Mem {
                space,
                addr: a,
                is_store: false,
                size: 4,
            }
        }
        Instr::St {
            src,
            space,
            addr,
            offset,
        } => {
            let a = resolve_addr(t, space, t.u(addr), offset);
            mem.write_u32(a, t.u(src));
            Effect::Mem {
                space,
                addr: a,
                is_store: true,
                size: 4,
            }
        }
        Instr::TraverseAs {
            origin,
            dir,
            tmin,
            tmax,
            flags,
        } => {
            let ray = RayDesc {
                origin: [t.f(origin[0]), t.f(origin[1]), t.f(origin[2])],
                dir: [t.f(dir[0]), t.f(dir[1]), t.f(dir[2])],
                t_min: t.f(tmin),
                t_max: t.f(tmax),
                flags: t.u(flags),
            };
            rt.traverse(t.tid, ray)
                .map_err(|e| ExecError::Rt { pc, detail: e.0 })?;
            Effect::TraceRay
        }
        Instr::EndTraceRay => {
            rt.end_trace(t.tid);
            Effect::RtOther
        }
        Instr::RtAllocMem { dst, size } => {
            let addr = rt.alloc_mem(t.tid, size);
            t.set_u(dst, addr as u32);
            Effect::RtOther
        }
        Instr::RtRead { dst, query } => {
            let v = rt.query(t.tid, query);
            t.set_u(dst, v);
            Effect::RtOther
        }
        Instr::RtReadIdx { dst, query, idx } => {
            let v = rt.query_idx(t.tid, query, t.u(idx));
            t.set_u(dst, v);
            Effect::RtOther
        }
        Instr::IntersectionValid { dst, idx } => {
            t.preds[dst.0 as usize] = rt.intersection_valid(t.tid, t.u(idx));
            Effect::RtOther
        }
        Instr::NextCoalescedCall { dst, idx } => {
            let v = rt.next_coalesced_call(t.tid, t.u(idx));
            t.set_u(dst, v);
            Effect::RtOther
        }
        Instr::ReportIntersection { t: treg, idx } => {
            rt.report_intersection(t.tid, t.u(idx), t.f(treg))
                .map_err(|e| ExecError::Rt { pc, detail: e.0 })?;
            Effect::RtOther
        }
        Instr::Exit => {
            t.exited = true;
            Effect::Exited
        }
    };
    t.pc = next;
    Ok(effect)
}

#[inline]
fn resolve_addr(t: &ThreadState, space: MemSpace, base: u32, offset: i32) -> u64 {
    let a = (base as u64).wrapping_add(offset as i64 as u64);
    match space {
        MemSpace::Global | MemSpace::Const => a,
        MemSpace::Local => t.local_base.wrapping_add(a),
    }
}

/// Runs a single thread functionally until `Exit`.
///
/// # Errors
///
/// Returns [`ExecError::StepLimit`] after 100 million steps (runaway
/// program) or [`ExecError::PcOutOfRange`] if control flow escapes the
/// program.
pub fn run_to_exit(
    program: &Program,
    t: &mut ThreadState,
    mem: &mut dyn MemIo,
    rt: &mut dyn RtHooks,
) -> Result<u64, ExecError> {
    const LIMIT: u64 = 100_000_000;
    let mut steps = 0u64;
    while !t.exited {
        if steps >= LIMIT {
            return Err(ExecError::StepLimit);
        }
        exec_at(program, t.pc, t, mem, rt)?;
        steps += 1;
    }
    Ok(steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::SimMemory;
    use crate::op::{Reg, RtQuery};
    use crate::program::ProgramBuilder;

    fn run(b: ProgramBuilder) -> (ThreadState, SimMemory) {
        let p = b.build();
        let mut t = ThreadState::new(p.num_regs().max(16));
        t.preds = vec![false; p.num_preds().max(8) as usize];
        let mut m = SimMemory::new();
        run_to_exit(&p, &mut t, &mut m, &mut NoRt).expect("clean exit");
        (t, m)
    }

    #[test]
    fn float_arithmetic_chain() {
        let mut b = ProgramBuilder::new();
        let [x, y, z] = b.regs::<3>();
        b.mov_imm_f32(x, 3.0);
        b.mov_imm_f32(y, 4.0);
        b.fmul(z, x, x);
        b.ffma(z, y, y, z); // z = 9 + 16 = 25
        b.emit(Instr::FSqrt { dst: z, a: z });
        b.exit();
        let (t, _) = run(b);
        assert_eq!(t.f(Reg(2)), 5.0);
    }

    #[test]
    fn integer_ops_wrap() {
        let mut b = ProgramBuilder::new();
        let [a, c] = b.regs::<2>();
        b.mov_imm_u32(a, u32::MAX);
        b.mov_imm_u32(c, 2);
        b.iadd(a, a, c); // wraps to 1
        b.exit();
        let (t, _) = run(b);
        assert_eq!(t.u(Reg(0)), 1);
    }

    #[test]
    fn loop_sums_one_to_ten() {
        let mut b = ProgramBuilder::new();
        let [i, sum, one, ten] = b.regs::<4>();
        let p = b.pred();
        b.mov_imm_u32(i, 1);
        b.mov_imm_u32(sum, 0);
        b.mov_imm_u32(one, 1);
        b.mov_imm_u32(ten, 10);
        let top = b.new_label();
        let done = b.new_label();
        b.bind_label(top);
        b.setp_i(p, CmpOp::Gt, i, ten);
        b.bra_if(done, p, true);
        b.iadd(sum, sum, i);
        b.iadd(i, i, one);
        b.bra(top);
        b.bind_label(done);
        b.exit();
        let (t, _) = run(b);
        assert_eq!(t.u(Reg(1)), 55);
    }

    #[test]
    fn memory_load_store_roundtrip() {
        let mut b = ProgramBuilder::new();
        let [addr, v, out] = b.regs::<3>();
        b.mov_imm_u32(addr, 0x1000);
        b.mov_imm_u32(v, 0xCAFE);
        b.st_global(addr, 4, v);
        b.ld_global(out, addr, 4);
        b.exit();
        let (t, m) = run(b);
        assert_eq!(t.u(Reg(2)), 0xCAFE);
        assert_eq!(m.read_u32(0x1004), 0xCAFE);
    }

    #[test]
    fn local_space_is_per_thread() {
        let p = {
            let mut b = ProgramBuilder::new();
            let [addr, v] = b.regs::<2>();
            b.mov_imm_u32(addr, 0x10);
            b.mov_imm_u32(v, 77);
            b.emit(Instr::St {
                src: v,
                space: MemSpace::Local,
                addr,
                offset: 0,
            });
            b.exit();
            b.build()
        };
        let mut mem = SimMemory::new();
        let mut t0 = ThreadState::with_tid(p.num_regs(), p.num_preds(), 0);
        let mut t1 = ThreadState::with_tid(p.num_regs(), p.num_preds(), 1);
        run_to_exit(&p, &mut t0, &mut mem, &mut NoRt).unwrap();
        run_to_exit(&p, &mut t1, &mut mem, &mut NoRt).unwrap();
        assert_eq!(mem.read_u32(t0.local_base + 0x10), 77);
        assert_eq!(mem.read_u32(t1.local_base + 0x10), 77);
        assert_ne!(t0.local_base, t1.local_base);
    }

    #[test]
    fn select_and_predicates() {
        let mut b = ProgramBuilder::new();
        let [a, c, out] = b.regs::<3>();
        let p = b.pred();
        b.mov_imm_f32(a, 1.0);
        b.mov_imm_f32(c, 2.0);
        b.setp_f(p, CmpOp::Lt, a, c);
        b.emit(Instr::Sel {
            dst: out,
            cond: p,
            a,
            b: c,
        });
        b.exit();
        let (t, _) = run(b);
        assert_eq!(t.f(Reg(2)), 1.0);
    }

    #[test]
    fn signed_compare_differs_from_unsigned() {
        let mut b = ProgramBuilder::new();
        let [a, c] = b.regs::<2>();
        let pu = b.pred();
        let ps = b.pred();
        b.mov_imm_u32(a, -1i32 as u32);
        b.mov_imm_u32(c, 1);
        b.setp_i(pu, CmpOp::Lt, a, c); // unsigned: MAX < 1 is false
        b.emit(Instr::SetpS {
            dst: ps,
            cmp: CmpOp::Lt,
            a,
            b: c,
        }); // signed: -1 < 1 true
        b.exit();
        let (t, _) = run(b);
        assert!(!t.preds[0]);
        assert!(t.preds[1]);
    }

    #[test]
    fn pc_out_of_range_detected() {
        let mut b = ProgramBuilder::new();
        let r = b.reg();
        b.mov_imm_u32(r, 0); // no exit
        let p = b.build();
        let mut t = ThreadState::new(p.num_regs());
        let mut m = SimMemory::new();
        let err = run_to_exit(&p, &mut t, &mut m, &mut NoRt).unwrap_err();
        assert_eq!(err, ExecError::PcOutOfRange { pc: 1 });
    }

    #[test]
    fn traverse_without_runtime_is_exec_error() {
        let mut b = ProgramBuilder::new();
        let rs = b.regs::<9>();
        b.emit(Instr::TraverseAs {
            origin: [rs[0], rs[1], rs[2]],
            dir: [rs[3], rs[4], rs[5]],
            tmin: rs[6],
            tmax: rs[7],
            flags: rs[8],
        });
        b.exit();
        let p = b.build();
        let mut t = ThreadState::new(p.num_regs());
        let mut m = SimMemory::new();
        let err = run_to_exit(&p, &mut t, &mut m, &mut NoRt).unwrap_err();
        match err {
            ExecError::Rt { pc, ref detail } => {
                assert_eq!(pc, 0);
                assert!(detail.contains("without an RT runtime"), "{detail}");
            }
            other => panic!("expected Rt error, got {other:?}"),
        }
    }

    #[test]
    fn report_intersection_without_runtime_is_exec_error() {
        let mut b = ProgramBuilder::new();
        let [treg, idx] = b.regs::<2>();
        b.emit(Instr::ReportIntersection { t: treg, idx });
        b.exit();
        let p = b.build();
        let mut t = ThreadState::new(p.num_regs());
        let mut m = SimMemory::new();
        let err = run_to_exit(&p, &mut t, &mut m, &mut NoRt).unwrap_err();
        assert!(matches!(err, ExecError::Rt { pc: 0, .. }), "{err:?}");
    }

    /// Minimal mock RT runtime for exercising the RT instruction plumbing.
    #[derive(Default)]
    struct MockRt {
        traversals: Vec<RayDesc>,
        reported: Vec<(u32, f32)>,
        pending: u32,
    }

    impl RtHooks for MockRt {
        fn traverse(&mut self, _tid: usize, ray: RayDesc) -> Result<(), RtError> {
            self.traversals.push(ray);
            self.pending = 2;
            Ok(())
        }
        fn end_trace(&mut self, _tid: usize) {
            self.pending = 0;
        }
        fn alloc_mem(&mut self, _tid: usize, size: u32) -> u64 {
            0x5000_0000 + size as u64
        }
        fn query(&mut self, _tid: usize, q: RtQuery) -> u32 {
            match q {
                RtQuery::HitKind => 1,
                RtQuery::HitT => 7.5f32.to_bits(),
                RtQuery::LaunchId(d) => 10 + d as u32,
                _ => 0,
            }
        }
        fn query_idx(&mut self, _tid: usize, _q: RtIdxQuery, idx: u32) -> u32 {
            100 + idx
        }
        fn intersection_valid(&mut self, _tid: usize, idx: u32) -> bool {
            idx < self.pending
        }
        fn next_coalesced_call(&mut self, _tid: usize, _idx: u32) -> u32 {
            u32::MAX
        }
        fn report_intersection(&mut self, _tid: usize, idx: u32, t: f32) -> Result<(), RtError> {
            self.reported.push((idx, t));
            Ok(())
        }
    }

    #[test]
    fn rt_instruction_plumbing() {
        let mut b = ProgramBuilder::new();
        let rs = b.regs::<12>();
        for (i, r) in rs[0..3].iter().enumerate() {
            b.mov_imm_f32(*r, i as f32);
        }
        b.mov_imm_f32(rs[3], 0.0);
        b.mov_imm_f32(rs[4], 0.0);
        b.mov_imm_f32(rs[5], 1.0);
        b.mov_imm_f32(rs[6], 0.001);
        b.mov_imm_f32(rs[7], 1e30);
        b.mov_imm_u32(rs[8], 0);
        b.emit(Instr::TraverseAs {
            origin: [rs[0], rs[1], rs[2]],
            dir: [rs[3], rs[4], rs[5]],
            tmin: rs[6],
            tmax: rs[7],
            flags: rs[8],
        });
        b.emit(Instr::RtRead {
            dst: rs[9],
            query: RtQuery::HitT,
        });
        b.mov_imm_u32(rs[10], 0);
        b.emit(Instr::ReportIntersection {
            t: rs[9],
            idx: rs[10],
        });
        b.emit(Instr::EndTraceRay);
        b.exit();
        let p = b.build();
        let mut t = ThreadState::new(p.num_regs());
        let mut m = SimMemory::new();
        let mut rt = MockRt::default();
        run_to_exit(&p, &mut t, &mut m, &mut rt).unwrap();
        assert_eq!(rt.traversals.len(), 1);
        assert_eq!(rt.traversals[0].dir, [0.0, 0.0, 1.0]);
        assert_eq!(rt.reported, vec![(0, 7.5)]);
        assert_eq!(rt.pending, 0, "end_trace cleared the table");
        assert_eq!(t.f(rs[9]), 7.5);
    }

    #[test]
    fn launch_id_query() {
        let mut b = ProgramBuilder::new();
        let r = b.reg();
        b.emit(Instr::RtRead {
            dst: r,
            query: RtQuery::LaunchId(1),
        });
        b.exit();
        let p = b.build();
        let mut t = ThreadState::new(p.num_regs());
        let mut m = SimMemory::new();
        let mut rt = MockRt::default();
        run_to_exit(&p, &mut t, &mut m, &mut rt).unwrap();
        assert_eq!(t.u(Reg(0)), 11);
    }
}
