//! Textual assembly: disassembler and assembler for the PTX-like ISA.
//!
//! The Vulkan-Sim artifact dumps translated PTX shaders to files
//! (`gpgpusimShaders/`) and replays them with a trace runner, decoupling
//! simulation from the Vulkan frontend. This module provides the
//! equivalent: [`disassemble`] renders a [`Program`] as stable text, and
//! [`assemble`] parses it back — a lossless round trip.
//!
//! # Example
//!
//! ```
//! use vksim_isa::program::ProgramBuilder;
//! use vksim_isa::text::{assemble, disassemble};
//!
//! let mut b = ProgramBuilder::new();
//! let r = b.reg();
//! b.mov_imm_f32(r, 1.5);
//! b.exit();
//! let p = b.build();
//! let text = disassemble(&p);
//! let q = assemble(&text).unwrap();
//! assert_eq!(p, q);
//! ```

use crate::op::{CmpOp, Instr, MemSpace, Pred, Reg, RtIdxQuery, RtQuery};
use crate::program::Program;
use std::fmt::Write as _;

/// Renders a program as text, one instruction per line, prefixed by a
/// header carrying the register counts.
pub fn disassemble(p: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        ".program regs={} preds={}",
        p.num_regs(),
        p.num_preds()
    );
    for (pc, i) in p.instrs().iter().enumerate() {
        let _ = writeln!(out, "{pc:>6}: {}", format_instr(i));
    }
    out
}

fn space(s: MemSpace) -> &'static str {
    match s {
        MemSpace::Global => "global",
        MemSpace::Local => "local",
        MemSpace::Const => "const",
    }
}

fn cmp(c: CmpOp) -> &'static str {
    match c {
        CmpOp::Eq => "eq",
        CmpOp::Ne => "ne",
        CmpOp::Lt => "lt",
        CmpOp::Le => "le",
        CmpOp::Gt => "gt",
        CmpOp::Ge => "ge",
    }
}

fn rt_query(q: RtQuery) -> String {
    match q {
        RtQuery::LaunchId(d) => format!("launch_id.{d}"),
        RtQuery::LaunchSize(d) => format!("launch_size.{d}"),
        RtQuery::HitKind => "hit_kind".into(),
        RtQuery::HitT => "hit_t".into(),
        RtQuery::HitU => "hit_u".into(),
        RtQuery::HitV => "hit_v".into(),
        RtQuery::HitPrimitiveIndex => "hit_prim".into(),
        RtQuery::HitInstanceIndex => "hit_inst".into(),
        RtQuery::HitInstanceCustomIndex => "hit_custom".into(),
        RtQuery::HitWorldNormal(d) => format!("hit_normal.{d}"),
        RtQuery::ClosestHitShaderId => "chit_shader".into(),
        RtQuery::IntersectionCount => "isect_count".into(),
        RtQuery::RayOrigin(d) => format!("ray_origin.{d}"),
        RtQuery::RayDirection(d) => format!("ray_dir.{d}"),
        RtQuery::RayTMin => "ray_tmin".into(),
        RtQuery::RecursionDepth => "depth".into(),
    }
}

fn parse_rt_query(s: &str) -> Option<RtQuery> {
    let (base, dim) = match s.split_once('.') {
        Some((b, d)) => (b, d.parse::<u8>().ok()?),
        None => (s, 0),
    };
    Some(match base {
        "launch_id" => RtQuery::LaunchId(dim),
        "launch_size" => RtQuery::LaunchSize(dim),
        "hit_kind" => RtQuery::HitKind,
        "hit_t" => RtQuery::HitT,
        "hit_u" => RtQuery::HitU,
        "hit_v" => RtQuery::HitV,
        "hit_prim" => RtQuery::HitPrimitiveIndex,
        "hit_inst" => RtQuery::HitInstanceIndex,
        "hit_custom" => RtQuery::HitInstanceCustomIndex,
        "hit_normal" => RtQuery::HitWorldNormal(dim),
        "chit_shader" => RtQuery::ClosestHitShaderId,
        "isect_count" => RtQuery::IntersectionCount,
        "ray_origin" => RtQuery::RayOrigin(dim),
        "ray_dir" => RtQuery::RayDirection(dim),
        "ray_tmin" => RtQuery::RayTMin,
        "depth" => RtQuery::RecursionDepth,
        _ => return None,
    })
}

fn idx_query(q: RtIdxQuery) -> &'static str {
    match q {
        RtIdxQuery::IntersectionShaderId => "isect_shader",
        RtIdxQuery::IntersectionPrimitiveIndex => "isect_prim",
        RtIdxQuery::IntersectionInstanceCustomIndex => "isect_custom",
        RtIdxQuery::IntersectionInstanceIndex => "isect_inst",
        RtIdxQuery::IntersectionTEnter => "isect_t",
    }
}

fn parse_idx_query(s: &str) -> Option<RtIdxQuery> {
    Some(match s {
        "isect_shader" => RtIdxQuery::IntersectionShaderId,
        "isect_prim" => RtIdxQuery::IntersectionPrimitiveIndex,
        "isect_custom" => RtIdxQuery::IntersectionInstanceCustomIndex,
        "isect_inst" => RtIdxQuery::IntersectionInstanceIndex,
        "isect_t" => RtIdxQuery::IntersectionTEnter,
        _ => return None,
    })
}

/// Renders one instruction (PTX-flavoured mnemonics).
pub fn format_instr(i: &Instr) -> String {
    use Instr::*;
    let r = |r: Reg| format!("r{}", r.0);
    let p = |p: Pred| format!("p{}", p.0);
    match *i {
        MovImm { dst, imm } => format!("mov.b32 {}, 0x{imm:08x}", r(dst)),
        Mov { dst, src } => format!("mov {}, {}", r(dst), r(src)),
        IAdd { dst, a, b } => format!("add.u32 {}, {}, {}", r(dst), r(a), r(b)),
        ISub { dst, a, b } => format!("sub.u32 {}, {}, {}", r(dst), r(a), r(b)),
        IMul { dst, a, b } => format!("mul.u32 {}, {}, {}", r(dst), r(a), r(b)),
        IMin { dst, a, b } => format!("min.u32 {}, {}, {}", r(dst), r(a), r(b)),
        IMax { dst, a, b } => format!("max.u32 {}, {}, {}", r(dst), r(a), r(b)),
        IAnd { dst, a, b } => format!("and.b32 {}, {}, {}", r(dst), r(a), r(b)),
        IOr { dst, a, b } => format!("or.b32 {}, {}, {}", r(dst), r(a), r(b)),
        IXor { dst, a, b } => format!("xor.b32 {}, {}, {}", r(dst), r(a), r(b)),
        IShl { dst, a, b } => format!("shl.b32 {}, {}, {}", r(dst), r(a), r(b)),
        IShr { dst, a, b } => format!("shr.b32 {}, {}, {}", r(dst), r(a), r(b)),
        FAdd { dst, a, b } => format!("add.f32 {}, {}, {}", r(dst), r(a), r(b)),
        FSub { dst, a, b } => format!("sub.f32 {}, {}, {}", r(dst), r(a), r(b)),
        FMul { dst, a, b } => format!("mul.f32 {}, {}, {}", r(dst), r(a), r(b)),
        FDiv { dst, a, b } => format!("div.f32 {}, {}, {}", r(dst), r(a), r(b)),
        FFma { dst, a, b, c } => format!("fma.f32 {}, {}, {}, {}", r(dst), r(a), r(b), r(c)),
        FMin { dst, a, b } => format!("min.f32 {}, {}, {}", r(dst), r(a), r(b)),
        FMax { dst, a, b } => format!("max.f32 {}, {}, {}", r(dst), r(a), r(b)),
        FNeg { dst, a } => format!("neg.f32 {}, {}", r(dst), r(a)),
        FAbs { dst, a } => format!("abs.f32 {}, {}", r(dst), r(a)),
        FSqrt { dst, a } => format!("sqrt.f32 {}, {}", r(dst), r(a)),
        FRsqrt { dst, a } => format!("rsqrt.f32 {}, {}", r(dst), r(a)),
        FSin { dst, a } => format!("sin.f32 {}, {}", r(dst), r(a)),
        FCos { dst, a } => format!("cos.f32 {}, {}", r(dst), r(a)),
        FFloor { dst, a } => format!("floor.f32 {}, {}", r(dst), r(a)),
        CvtF2I { dst, a } => format!("cvt.s32.f32 {}, {}", r(dst), r(a)),
        CvtI2F { dst, a } => format!("cvt.f32.s32 {}, {}", r(dst), r(a)),
        CvtU2F { dst, a } => format!("cvt.f32.u32 {}, {}", r(dst), r(a)),
        SetpF { dst, cmp: c, a, b } => {
            format!("setp.{}.f32 {}, {}, {}", cmp(c), p(dst), r(a), r(b))
        }
        SetpI { dst, cmp: c, a, b } => {
            format!("setp.{}.u32 {}, {}, {}", cmp(c), p(dst), r(a), r(b))
        }
        SetpS { dst, cmp: c, a, b } => {
            format!("setp.{}.s32 {}, {}, {}", cmp(c), p(dst), r(a), r(b))
        }
        PredAnd { dst, a, b } => format!("and.pred {}, {}, {}", p(dst), p(a), p(b)),
        PredNot { dst, a } => format!("not.pred {}, {}", p(dst), p(a)),
        Sel { dst, cond, a, b } => format!("selp {}, {}, {}, {}", r(dst), r(a), r(b), p(cond)),
        Bra { target, pred: None } => format!("bra {target}"),
        Bra {
            target,
            pred: Some((pr, exp)),
        } => {
            format!("@{}{} bra {target}", if exp { "" } else { "!" }, p(pr))
        }
        Ssy { reconv } => format!("ssy {reconv}"),
        Sync => "sync".into(),
        Ld {
            dst,
            space: s,
            addr,
            offset,
        } => {
            format!("ld.{} {}, [{}+{offset}]", space(s), r(dst), r(addr))
        }
        St {
            src,
            space: s,
            addr,
            offset,
        } => {
            format!("st.{} [{}+{offset}], {}", space(s), r(addr), r(src))
        }
        TraverseAs {
            origin,
            dir,
            tmin,
            tmax,
            flags,
        } => format!(
            "traverseAS {}, {}, {}, {}, {}, {}, {}, {}, {}",
            r(origin[0]),
            r(origin[1]),
            r(origin[2]),
            r(dir[0]),
            r(dir[1]),
            r(dir[2]),
            r(tmin),
            r(tmax),
            r(flags)
        ),
        EndTraceRay => "endTraceRay".into(),
        RtAllocMem { dst, size } => format!("rt_alloc_mem {}, {size}", r(dst)),
        RtRead { dst, query } => format!("rt_read {}, {}", r(dst), rt_query(query)),
        RtReadIdx { dst, query, idx } => {
            format!("rt_read_idx {}, {}, {}", r(dst), idx_query(query), r(idx))
        }
        IntersectionValid { dst, idx } => format!("intersectionExit {}, {}", p(dst), r(idx)),
        NextCoalescedCall { dst, idx } => format!("getNextCoalescedCall {}, {}", r(dst), r(idx)),
        ReportIntersection { t, idx } => format!("reportIntersection {}, {}", r(t), r(idx)),
        Exit => "exit".into(),
    }
}

/// Errors from [`assemble`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses text produced by [`disassemble`] back into a [`Program`].
///
/// # Errors
///
/// Returns a [`ParseError`] with the offending line on malformed input.
pub fn assemble(text: &str) -> Result<Program, ParseError> {
    let mut instrs: Vec<Instr> = Vec::new();
    let mut num_regs = 0u16;
    let mut num_preds = 0u16;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with("//") {
            continue;
        }
        let err = |m: &str| ParseError {
            line: lineno + 1,
            message: m.to_string(),
        };
        if let Some(rest) = line.strip_prefix(".program") {
            for tok in rest.split_whitespace() {
                if let Some(v) = tok.strip_prefix("regs=") {
                    num_regs = v.parse().map_err(|_| err("bad regs count"))?;
                } else if let Some(v) = tok.strip_prefix("preds=") {
                    num_preds = v.parse().map_err(|_| err("bad preds count"))?;
                }
            }
            continue;
        }
        // Strip the "  pc:" prefix if present.
        let body = match line.split_once(": ") {
            Some((pc, rest)) if pc.trim().chars().all(|c| c.is_ascii_digit()) => rest,
            _ => line,
        };
        instrs.push(parse_instr(body).ok_or_else(|| err(&format!("bad instruction: {body}")))?);
    }
    // Rebuild through the builder to preserve Program's invariants.
    let mut b = crate::program::ProgramBuilder::new();
    for _ in 0..num_regs {
        b.reg();
    }
    for _ in 0..num_preds {
        b.pred();
    }
    for i in &instrs {
        b.emit(*i);
    }
    Ok(b.build())
}

fn reg(s: &str) -> Option<Reg> {
    s.trim().strip_prefix('r')?.parse().ok().map(Reg)
}

fn pred(s: &str) -> Option<Pred> {
    s.trim().strip_prefix('p')?.parse().ok().map(Pred)
}

fn parse_cmp(s: &str) -> Option<CmpOp> {
    Some(match s {
        "eq" => CmpOp::Eq,
        "ne" => CmpOp::Ne,
        "lt" => CmpOp::Lt,
        "le" => CmpOp::Le,
        "gt" => CmpOp::Gt,
        "ge" => CmpOp::Ge,
        _ => return None,
    })
}

fn parse_space(s: &str) -> Option<MemSpace> {
    Some(match s {
        "global" => MemSpace::Global,
        "local" => MemSpace::Local,
        "const" => MemSpace::Const,
        _ => return None,
    })
}

fn parse_instr(body: &str) -> Option<Instr> {
    use Instr::*;
    // Predicated branch: "@p0 bra N" / "@!p0 bra N".
    if let Some(rest) = body.strip_prefix('@') {
        let (guard, tail) = rest.split_once(' ')?;
        let (expect, pname) = match guard.strip_prefix('!') {
            Some(g) => (false, g),
            None => (true, guard),
        };
        let target = tail.strip_prefix("bra ")?.trim().parse().ok()?;
        return Some(Bra {
            target,
            pred: Some((pred(pname)?, expect)),
        });
    }
    let (mnemonic, args) = match body.split_once(' ') {
        Some((m, a)) => (m, a.trim()),
        None => (body, ""),
    };
    let ops: Vec<&str> = args.split(',').map(|s| s.trim()).collect();
    let r3 = |k: fn(Reg, Reg, Reg) -> Instr| -> Option<Instr> {
        Some(k(reg(ops.first()?)?, reg(ops.get(1)?)?, reg(ops.get(2)?)?))
    };
    let r2 = |k: fn(Reg, Reg) -> Instr| -> Option<Instr> {
        Some(k(reg(ops.first()?)?, reg(ops.get(1)?)?))
    };
    Some(match mnemonic {
        "mov.b32" => MovImm {
            dst: reg(ops.first()?)?,
            imm: u32::from_str_radix(ops.get(1)?.strip_prefix("0x")?, 16).ok()?,
        },
        "mov" => r2(|dst, src| Mov { dst, src })?,
        "add.u32" => r3(|dst, a, b| IAdd { dst, a, b })?,
        "sub.u32" => r3(|dst, a, b| ISub { dst, a, b })?,
        "mul.u32" => r3(|dst, a, b| IMul { dst, a, b })?,
        "min.u32" => r3(|dst, a, b| IMin { dst, a, b })?,
        "max.u32" => r3(|dst, a, b| IMax { dst, a, b })?,
        "and.b32" => r3(|dst, a, b| IAnd { dst, a, b })?,
        "or.b32" => r3(|dst, a, b| IOr { dst, a, b })?,
        "xor.b32" => r3(|dst, a, b| IXor { dst, a, b })?,
        "shl.b32" => r3(|dst, a, b| IShl { dst, a, b })?,
        "shr.b32" => r3(|dst, a, b| IShr { dst, a, b })?,
        "add.f32" => r3(|dst, a, b| FAdd { dst, a, b })?,
        "sub.f32" => r3(|dst, a, b| FSub { dst, a, b })?,
        "mul.f32" => r3(|dst, a, b| FMul { dst, a, b })?,
        "div.f32" => r3(|dst, a, b| FDiv { dst, a, b })?,
        "min.f32" => r3(|dst, a, b| FMin { dst, a, b })?,
        "max.f32" => r3(|dst, a, b| FMax { dst, a, b })?,
        "fma.f32" => FFma {
            dst: reg(ops.first()?)?,
            a: reg(ops.get(1)?)?,
            b: reg(ops.get(2)?)?,
            c: reg(ops.get(3)?)?,
        },
        "neg.f32" => r2(|dst, a| FNeg { dst, a })?,
        "abs.f32" => r2(|dst, a| FAbs { dst, a })?,
        "sqrt.f32" => r2(|dst, a| FSqrt { dst, a })?,
        "rsqrt.f32" => r2(|dst, a| FRsqrt { dst, a })?,
        "sin.f32" => r2(|dst, a| FSin { dst, a })?,
        "cos.f32" => r2(|dst, a| FCos { dst, a })?,
        "floor.f32" => r2(|dst, a| FFloor { dst, a })?,
        "cvt.s32.f32" => r2(|dst, a| CvtF2I { dst, a })?,
        "cvt.f32.s32" => r2(|dst, a| CvtI2F { dst, a })?,
        "cvt.f32.u32" => r2(|dst, a| CvtU2F { dst, a })?,
        "and.pred" => PredAnd {
            dst: pred(ops.first()?)?,
            a: pred(ops.get(1)?)?,
            b: pred(ops.get(2)?)?,
        },
        "not.pred" => PredNot {
            dst: pred(ops.first()?)?,
            a: pred(ops.get(1)?)?,
        },
        "selp" => Sel {
            dst: reg(ops.first()?)?,
            a: reg(ops.get(1)?)?,
            b: reg(ops.get(2)?)?,
            cond: pred(ops.get(3)?)?,
        },
        "bra" => Bra {
            target: args.trim().parse().ok()?,
            pred: None,
        },
        "ssy" => Ssy {
            reconv: args.trim().parse().ok()?,
        },
        "sync" => Sync,
        "exit" => Exit,
        "endTraceRay" => EndTraceRay,
        "rt_alloc_mem" => RtAllocMem {
            dst: reg(ops.first()?)?,
            size: ops.get(1)?.parse().ok()?,
        },
        "rt_read" => RtRead {
            dst: reg(ops.first()?)?,
            query: parse_rt_query(ops.get(1)?)?,
        },
        "rt_read_idx" => RtReadIdx {
            dst: reg(ops.first()?)?,
            query: parse_idx_query(ops.get(1)?)?,
            idx: reg(ops.get(2)?)?,
        },
        "intersectionExit" => IntersectionValid {
            dst: pred(ops.first()?)?,
            idx: reg(ops.get(1)?)?,
        },
        "getNextCoalescedCall" => NextCoalescedCall {
            dst: reg(ops.first()?)?,
            idx: reg(ops.get(1)?)?,
        },
        "reportIntersection" => ReportIntersection {
            t: reg(ops.first()?)?,
            idx: reg(ops.get(1)?)?,
        },
        "traverseAS" => TraverseAs {
            origin: [reg(ops.first()?)?, reg(ops.get(1)?)?, reg(ops.get(2)?)?],
            dir: [reg(ops.get(3)?)?, reg(ops.get(4)?)?, reg(ops.get(5)?)?],
            tmin: reg(ops.get(6)?)?,
            tmax: reg(ops.get(7)?)?,
            flags: reg(ops.get(8)?)?,
        },
        m if m.starts_with("setp.") => {
            let mut parts = m.split('.');
            parts.next(); // setp
            let c = parse_cmp(parts.next()?)?;
            let ty = parts.next()?;
            let dst = pred(ops.first()?)?;
            let a = reg(ops.get(1)?)?;
            let b = reg(ops.get(2)?)?;
            match ty {
                "f32" => SetpF { dst, cmp: c, a, b },
                "u32" => SetpI { dst, cmp: c, a, b },
                "s32" => SetpS { dst, cmp: c, a, b },
                _ => return None,
            }
        }
        m if m.starts_with("ld.") => {
            let s = parse_space(m.strip_prefix("ld.")?)?;
            let dst = reg(ops.first()?)?;
            let mem = ops.get(1)?.trim_start_matches('[').trim_end_matches(']');
            let (a, off) = mem.split_once('+')?;
            Ld {
                dst,
                space: s,
                addr: reg(a)?,
                offset: off.parse().ok()?,
            }
        }
        m if m.starts_with("st.") => {
            let s = parse_space(m.strip_prefix("st.")?)?;
            let mem = ops.first()?.trim_start_matches('[').trim_end_matches(']');
            let (a, off) = mem.split_once('+')?;
            St {
                src: reg(ops.get(1)?)?,
                space: s,
                addr: reg(a)?,
                offset: off.parse().ok()?,
            }
        }
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;

    fn sample_program() -> Program {
        let mut b = ProgramBuilder::new();
        let [a, c, d] = b.regs::<3>();
        let p0 = b.pred();
        b.mov_imm_f32(a, 2.5);
        b.mov_imm_u32(c, 7);
        b.fadd(d, a, a);
        b.emit(Instr::FFma {
            dst: d,
            a,
            b: c,
            c: d,
        });
        b.setp_f(p0, CmpOp::Lt, a, d);
        let l = b.new_label();
        b.bra_if(l, p0, false);
        b.emit(Instr::Ld {
            dst: d,
            space: MemSpace::Global,
            addr: c,
            offset: -8,
        });
        b.emit(Instr::St {
            src: d,
            space: MemSpace::Local,
            addr: c,
            offset: 16,
        });
        b.bind_label(l);
        b.sync();
        b.emit(Instr::RtRead {
            dst: a,
            query: RtQuery::HitWorldNormal(2),
        });
        b.emit(Instr::RtReadIdx {
            dst: a,
            query: RtIdxQuery::IntersectionShaderId,
            idx: c,
        });
        b.emit(Instr::TraverseAs {
            origin: [a, c, d],
            dir: [a, c, d],
            tmin: a,
            tmax: c,
            flags: d,
        });
        b.emit(Instr::EndTraceRay);
        b.exit();
        b.build()
    }

    #[test]
    fn disassemble_produces_one_line_per_instruction() {
        let p = sample_program();
        let text = disassemble(&p);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), p.len() + 1); // header + instructions
        assert!(lines[0].starts_with(".program"));
        assert!(text.contains("traverseAS"));
        assert!(text.contains("fma.f32"));
        assert!(text.contains("@!p0 bra"));
    }

    #[test]
    fn round_trip_preserves_program() {
        let p = sample_program();
        let q = assemble(&disassemble(&p)).expect("assemble");
        assert_eq!(p.instrs(), q.instrs());
        assert_eq!(p.num_regs(), q.num_regs());
        assert_eq!(p.num_preds(), q.num_preds());
    }

    #[test]
    fn round_trip_every_simple_opcode() {
        let r0 = Reg(0);
        let r1 = Reg(1);
        let p0 = Pred(0);
        let all = vec![
            Instr::MovImm {
                dst: r0,
                imm: 0xDEADBEEF,
            },
            Instr::Mov { dst: r0, src: r1 },
            Instr::IAdd {
                dst: r0,
                a: r0,
                b: r1,
            },
            Instr::ISub {
                dst: r0,
                a: r0,
                b: r1,
            },
            Instr::IMul {
                dst: r0,
                a: r0,
                b: r1,
            },
            Instr::IMin {
                dst: r0,
                a: r0,
                b: r1,
            },
            Instr::IMax {
                dst: r0,
                a: r0,
                b: r1,
            },
            Instr::IAnd {
                dst: r0,
                a: r0,
                b: r1,
            },
            Instr::IOr {
                dst: r0,
                a: r0,
                b: r1,
            },
            Instr::IXor {
                dst: r0,
                a: r0,
                b: r1,
            },
            Instr::IShl {
                dst: r0,
                a: r0,
                b: r1,
            },
            Instr::IShr {
                dst: r0,
                a: r0,
                b: r1,
            },
            Instr::FAdd {
                dst: r0,
                a: r0,
                b: r1,
            },
            Instr::FSub {
                dst: r0,
                a: r0,
                b: r1,
            },
            Instr::FMul {
                dst: r0,
                a: r0,
                b: r1,
            },
            Instr::FDiv {
                dst: r0,
                a: r0,
                b: r1,
            },
            Instr::FMin {
                dst: r0,
                a: r0,
                b: r1,
            },
            Instr::FMax {
                dst: r0,
                a: r0,
                b: r1,
            },
            Instr::FNeg { dst: r0, a: r1 },
            Instr::FAbs { dst: r0, a: r1 },
            Instr::FSqrt { dst: r0, a: r1 },
            Instr::FRsqrt { dst: r0, a: r1 },
            Instr::FSin { dst: r0, a: r1 },
            Instr::FCos { dst: r0, a: r1 },
            Instr::FFloor { dst: r0, a: r1 },
            Instr::CvtF2I { dst: r0, a: r1 },
            Instr::CvtI2F { dst: r0, a: r1 },
            Instr::CvtU2F { dst: r0, a: r1 },
            Instr::SetpF {
                dst: p0,
                cmp: CmpOp::Ge,
                a: r0,
                b: r1,
            },
            Instr::SetpI {
                dst: p0,
                cmp: CmpOp::Ne,
                a: r0,
                b: r1,
            },
            Instr::SetpS {
                dst: p0,
                cmp: CmpOp::Le,
                a: r0,
                b: r1,
            },
            Instr::PredAnd {
                dst: p0,
                a: p0,
                b: p0,
            },
            Instr::PredNot { dst: p0, a: p0 },
            Instr::Sel {
                dst: r0,
                cond: p0,
                a: r0,
                b: r1,
            },
            Instr::Bra {
                target: 3,
                pred: None,
            },
            Instr::Bra {
                target: 4,
                pred: Some((p0, true)),
            },
            Instr::Ssy { reconv: 9 },
            Instr::Sync,
            Instr::Ld {
                dst: r0,
                space: MemSpace::Const,
                addr: r1,
                offset: 4,
            },
            Instr::St {
                src: r0,
                space: MemSpace::Global,
                addr: r1,
                offset: 0,
            },
            Instr::RtAllocMem { dst: r0, size: 128 },
            Instr::IntersectionValid { dst: p0, idx: r1 },
            Instr::NextCoalescedCall { dst: r0, idx: r1 },
            Instr::ReportIntersection { t: r0, idx: r1 },
            Instr::EndTraceRay,
            Instr::Exit,
        ];
        for i in all {
            let text = format_instr(&i);
            let parsed =
                parse_instr(&text).unwrap_or_else(|| panic!("failed to parse back: {text}"));
            assert_eq!(parsed, i, "round trip of `{text}`");
        }
    }

    #[test]
    fn round_trip_all_rt_queries() {
        for q in [
            RtQuery::LaunchId(2),
            RtQuery::LaunchSize(1),
            RtQuery::HitKind,
            RtQuery::HitT,
            RtQuery::HitU,
            RtQuery::HitV,
            RtQuery::HitPrimitiveIndex,
            RtQuery::HitInstanceIndex,
            RtQuery::HitInstanceCustomIndex,
            RtQuery::HitWorldNormal(1),
            RtQuery::ClosestHitShaderId,
            RtQuery::IntersectionCount,
            RtQuery::RayOrigin(0),
            RtQuery::RayDirection(2),
            RtQuery::RayTMin,
            RtQuery::RecursionDepth,
        ] {
            let i = Instr::RtRead {
                dst: Reg(5),
                query: q,
            };
            assert_eq!(parse_instr(&format_instr(&i)), Some(i));
        }
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = assemble(".program regs=2 preds=1\n0: bogus r0, r1\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("bogus"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = ".program regs=1 preds=1\n// a comment\n\n0: exit\n";
        let p = assemble(text).unwrap();
        assert_eq!(p.len(), 1);
    }
}
