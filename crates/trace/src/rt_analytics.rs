//! Ray-traversal workload characterization (`VKSIM_RT_ANALYTICS`).
//!
//! Where cycle accounting ([`crate::accounting`]) answers *what the SMs
//! spent their cycles on*, this module answers *what the rays did to the
//! acceleration structure*: per-BVH-node visit/hit heatmaps keyed by node
//! id and tree depth, per-ray histograms (nodes visited, box tests,
//! triangle tests, traversal restarts), per-BVH-level memory reuse
//! (visits vs distinct 32 B lines touched), warp traversal-coherence
//! distributions (active-lane occupancy per RT step, integer-exact
//! warp·step integrals), and per-job RT-unit step/latency attribution.
//!
//! Three recorder types feed one merged [`RtReport`]:
//!
//! * [`TraversalAnalytics`] lives on the functional runtime (one per
//!   shard); per-node and per-ray facts are recorded at traversal time
//!   and shard tallies merge commutatively (key-wise sums, line-set
//!   unions), so the merged view is identical at any `VKSIM_THREADS`.
//! * [`WarpCoherence`] lives on each SM and tallies active-lane
//!   occupancy per traversal step at `TraceRay` issue.
//! * RT-unit job attribution (jobs retired, script steps consumed,
//!   summed traversal latency) is tallied inside `vksim-rtunit` and
//!   carried here as plain integers per SM ([`RtSmAnalytics`]).
//!
//! Everything is integer-exact, keys iterate in `BTreeMap` order, and
//! the flat JSON matches the golden-counter shape — so exports diff
//! byte-for-byte across thread counts and checkpoint/resume.

use std::collections::{BTreeMap, BTreeSet};

/// Number of buckets in each per-ray histogram: bucket 0 holds zeros,
/// bucket `b >= 1` holds values in `[2^(b-1), 2^b)`, and the last bucket
/// saturates.
pub const RAY_HIST_BUCKETS: usize = 16;

/// Warp-occupancy tally width: one slot per possible active-lane count
/// (index 0 is unused — a traversal step exists only while some lane is
/// still walking).
pub const WARP_OCC_BUCKETS: usize = 33;

/// Number of per-window RT counter series exported to the Chrome trace:
/// trace warps launched, lane steps (warp·step integral), warp steps,
/// and RT-unit script steps consumed.
pub const NUM_RT_SERIES: usize = 4;

/// Power-of-two-bucketed histogram over one per-ray statistic, keeping
/// the exact count and sum alongside the buckets so conservation checks
/// stay integer-exact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RayHistogram {
    buckets: [u64; RAY_HIST_BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for RayHistogram {
    fn default() -> Self {
        RayHistogram {
            buckets: [0; RAY_HIST_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl RayHistogram {
    /// The bucket index a value lands in.
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros() as usize).min(RAY_HIST_BUCKETS - 1)
        }
    }

    /// Tallies one observation.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Bucket tallies, index 0 first.
    pub fn buckets(&self) -> &[u64; RAY_HIST_BUCKETS] {
        &self.buckets
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Folds another histogram in (bucket-wise sums).
    pub fn merge(&mut self, other: &RayHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Appends this histogram to a snapshot.
    pub fn save(&self, e: &mut vksim_snapshot::Enc) {
        for &b in &self.buckets {
            e.u64(b);
        }
        e.u64(self.count);
        e.u64(self.sum);
    }

    /// Mirror of [`RayHistogram::save`].
    pub fn load(d: &mut vksim_snapshot::Dec<'_>) -> Result<Self, vksim_snapshot::SnapError> {
        let mut buckets = [0u64; RAY_HIST_BUCKETS];
        for b in &mut buckets {
            *b = d.u64()?;
        }
        Ok(RayHistogram {
            buckets,
            count: d.u64()?,
            sum: d.u64()?,
        })
    }
}

/// Heatmap key: BVH space (`false` = top-level, `true` = bottom-level),
/// tree depth within that space, node index within its arena.
pub type NodeKey = (bool, u32, u32);

/// Per-node heatmap cell.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeCell {
    /// Times the node was fetched.
    pub visits: u64,
    /// Visits that contributed (child/instance/triangle/procedural hit).
    pub hits: u64,
}

/// Traversal-side analytics: per-node heatmap, per-level line reuse, and
/// per-ray histograms. One instance per runtime shard; merged at end of
/// run (and into checkpoints) with commutative key-wise sums.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraversalAnalytics {
    nodes: BTreeMap<NodeKey, NodeCell>,
    /// `(blas, depth)` → distinct 32 B lines fetched at that level.
    level_lines: BTreeMap<(bool, u32), BTreeSet<u64>>,
    rays: u64,
    ray_nodes: RayHistogram,
    ray_box: RayHistogram,
    ray_tri: RayHistogram,
    ray_restarts: RayHistogram,
}

impl TraversalAnalytics {
    /// Tallies one node visit.
    pub fn record_visit(&mut self, blas: bool, depth: u32, node: u32, addr: u64, hit: bool) {
        let cell = self.nodes.entry((blas, depth, node)).or_default();
        cell.visits += 1;
        cell.hits += u64::from(hit);
        self.level_lines
            .entry((blas, depth))
            .or_default()
            .insert(addr >> 5);
    }

    /// Tallies one completed ray.
    pub fn record_ray(&mut self, nodes: u64, box_tests: u64, tri_tests: u64, restarts: u64) {
        self.rays += 1;
        self.ray_nodes.record(nodes);
        self.ray_box.record(box_tests);
        self.ray_tri.record(tri_tests);
        self.ray_restarts.record(restarts);
    }

    /// Rays recorded.
    pub fn rays(&self) -> u64 {
        self.rays
    }

    /// The per-node heatmap.
    pub fn nodes(&self) -> &BTreeMap<NodeKey, NodeCell> {
        &self.nodes
    }

    /// Σ visits over every heatmap cell — one leg of the conservation
    /// invariant.
    pub fn visit_total(&self) -> u64 {
        self.nodes.values().map(|c| c.visits).sum()
    }

    /// Σ hits over every heatmap cell.
    pub fn hit_total(&self) -> u64 {
        self.nodes.values().map(|c| c.hits).sum()
    }

    /// The four per-ray histograms: nodes visited, box tests, triangle
    /// tests, traversal restarts.
    pub fn histograms(&self) -> [(&'static str, &RayHistogram); 4] {
        [
            ("nodes", &self.ray_nodes),
            ("box", &self.ray_box),
            ("tri", &self.ray_tri),
            ("restarts", &self.ray_restarts),
        ]
    }

    /// Per-level roll-up sorted by `(blas, depth)`: visits and distinct
    /// lines touched at each tree level.
    pub fn levels(&self) -> BTreeMap<(bool, u32), (u64, u64)> {
        let mut out: BTreeMap<(bool, u32), (u64, u64)> = BTreeMap::new();
        for (&(blas, depth, _), cell) in &self.nodes {
            out.entry((blas, depth)).or_default().0 += cell.visits;
        }
        for (&k, lines) in &self.level_lines {
            out.entry(k).or_default().1 = lines.len() as u64;
        }
        out
    }

    /// Folds another shard's tallies in. Commutative and associative, so
    /// any merge order produces identical state.
    pub fn merge(&mut self, other: &TraversalAnalytics) {
        for (&k, cell) in &other.nodes {
            let c = self.nodes.entry(k).or_default();
            c.visits += cell.visits;
            c.hits += cell.hits;
        }
        for (&k, lines) in &other.level_lines {
            self.level_lines.entry(k).or_default().extend(lines.iter());
        }
        self.rays += other.rays;
        self.ray_nodes.merge(&other.ray_nodes);
        self.ray_box.merge(&other.ray_box);
        self.ray_tri.merge(&other.ray_tri);
        self.ray_restarts.merge(&other.ray_restarts);
    }

    /// Appends the full analytics state to a snapshot. `BTreeMap`/`BTreeSet`
    /// iterate sorted, so the byte stream is canonical.
    pub fn save(&self, e: &mut vksim_snapshot::Enc) {
        e.seq(self.nodes.len());
        for (&(blas, depth, node), cell) in &self.nodes {
            e.bool(blas);
            e.u32(depth);
            e.u32(node);
            e.u64(cell.visits);
            e.u64(cell.hits);
        }
        e.seq(self.level_lines.len());
        for (&(blas, depth), lines) in &self.level_lines {
            e.bool(blas);
            e.u32(depth);
            e.seq(lines.len());
            for &line in lines {
                e.u64(line);
            }
        }
        e.u64(self.rays);
        self.ray_nodes.save(e);
        self.ray_box.save(e);
        self.ray_tri.save(e);
        self.ray_restarts.save(e);
    }

    /// Mirror of [`TraversalAnalytics::save`].
    pub fn load(d: &mut vksim_snapshot::Dec<'_>) -> Result<Self, vksim_snapshot::SnapError> {
        let mut nodes = BTreeMap::new();
        for _ in 0..d.seq()? {
            let key = (d.bool()?, d.u32()?, d.u32()?);
            nodes.insert(
                key,
                NodeCell {
                    visits: d.u64()?,
                    hits: d.u64()?,
                },
            );
        }
        let mut level_lines = BTreeMap::new();
        for _ in 0..d.seq()? {
            let key = (d.bool()?, d.u32()?);
            let mut lines = BTreeSet::new();
            for _ in 0..d.seq()? {
                lines.insert(d.u64()?);
            }
            level_lines.insert(key, lines);
        }
        Ok(TraversalAnalytics {
            nodes,
            level_lines,
            rays: d.u64()?,
            ray_nodes: RayHistogram::load(d)?,
            ray_box: RayHistogram::load(d)?,
            ray_tri: RayHistogram::load(d)?,
            ray_restarts: RayHistogram::load(d)?,
        })
    }
}

/// Per-SM warp traversal-coherence recorder, fed at `TraceRay` issue
/// from the per-lane script lengths of each launched warp job.
///
/// For a warp whose lanes hold scripts of lengths `l_0..l_31`, the warp
/// front advances `max(l_i)` steps (`warp_steps`) while the integral of
/// active lanes over those steps is `Σ l_i` (`lane_steps`) — both exact
/// integers, so mean occupancy `lane_steps / warp_steps` carries no
/// float drift. The occupancy tally histograms the active-lane count of
/// every individual step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WarpCoherence {
    trace_warps: u64,
    warp_steps: u64,
    lane_steps: u64,
    occ: [u64; WARP_OCC_BUCKETS],
}

impl Default for WarpCoherence {
    fn default() -> Self {
        WarpCoherence {
            trace_warps: 0,
            warp_steps: 0,
            lane_steps: 0,
            occ: [0; WARP_OCC_BUCKETS],
        }
    }
}

impl WarpCoherence {
    /// Fresh recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tallies one warp job from its per-step active-lane counts.
    pub fn record_job<I: IntoIterator<Item = u32>>(&mut self, per_step_active: I) {
        self.trace_warps += 1;
        for lanes in per_step_active {
            self.warp_steps += 1;
            self.lane_steps += u64::from(lanes);
            self.occ[(lanes as usize).min(WARP_OCC_BUCKETS - 1)] += 1;
        }
    }

    /// Warps that launched a traversal job.
    pub fn trace_warps(&self) -> u64 {
        self.trace_warps
    }

    /// Steps the warp fronts advanced (Σ max lane-script length).
    pub fn warp_steps(&self) -> u64 {
        self.warp_steps
    }

    /// Integer warp·step integral (Σ active lanes over all steps).
    pub fn lane_steps(&self) -> u64 {
        self.lane_steps
    }

    /// Occupancy tally: `occ()[n]` counts steps with exactly `n` lanes
    /// active.
    pub fn occ(&self) -> &[u64; WARP_OCC_BUCKETS] {
        &self.occ
    }

    /// Folds another recorder in.
    pub fn merge(&mut self, other: &WarpCoherence) {
        self.trace_warps += other.trace_warps;
        self.warp_steps += other.warp_steps;
        self.lane_steps += other.lane_steps;
        for (a, b) in self.occ.iter_mut().zip(other.occ.iter()) {
            *a += b;
        }
    }

    /// Appends this recorder to a snapshot.
    pub fn save(&self, e: &mut vksim_snapshot::Enc) {
        e.u64(self.trace_warps);
        e.u64(self.warp_steps);
        e.u64(self.lane_steps);
        for &o in &self.occ {
            e.u64(o);
        }
    }

    /// Mirror of [`WarpCoherence::save`].
    pub fn load(d: &mut vksim_snapshot::Dec<'_>) -> Result<Self, vksim_snapshot::SnapError> {
        let trace_warps = d.u64()?;
        let warp_steps = d.u64()?;
        let lane_steps = d.u64()?;
        let mut occ = [0u64; WARP_OCC_BUCKETS];
        for o in &mut occ {
            *o = d.u64()?;
        }
        Ok(WarpCoherence {
            trace_warps,
            warp_steps,
            lane_steps,
            occ,
        })
    }
}

/// One SM's slice of the analytics: its warp-coherence recorder plus the
/// RT-unit job attribution tallied inside `vksim-rtunit`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RtSmAnalytics {
    /// Warp traversal-coherence recorder.
    pub coherence: WarpCoherence,
    /// Traversal jobs the SM's RT unit retired.
    pub rtu_jobs: u64,
    /// Script steps the RT unit fully consumed.
    pub rtu_steps: u64,
    /// Σ enqueue→retire latency over retired jobs, in cycles.
    pub rtu_latency: u64,
}

/// The end-of-run ray-traversal analytics report: merged traversal-side
/// tallies, one [`RtSmAnalytics`] per SM, and the RT-unit box-op counter
/// the conservation invariant ties against.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RtReport {
    /// Traversal-side analytics, merged across runtime shards.
    pub traversal: TraversalAnalytics,
    /// One per SM, indexed by SM id.
    pub per_sm: Vec<RtSmAnalytics>,
    /// Box-test operations the RT units executed (`ops.box_tests`).
    pub rt_box_ops: u64,
}

impl RtReport {
    /// Number of SMs reported.
    pub fn num_sms(&self) -> u32 {
        self.per_sm.len() as u32
    }

    /// All SMs' coherence recorders merged.
    pub fn merged_coherence(&self) -> WarpCoherence {
        let mut m = WarpCoherence::new();
        for sm in &self.per_sm {
            m.merge(&sm.coherence);
        }
        m
    }

    /// The conservation invariant, release-asserted on every golden
    /// workload:
    ///
    /// * Σ per-node heatmap visits == Σ per-ray visited-node counts
    ///   (both legs recorded independently from each traversal);
    /// * Σ per-ray box tests == RT-unit box-test operations (every
    ///   internal-node visit becomes exactly one box op in the RT unit);
    /// * every ray contributes to every histogram exactly once.
    pub fn conservation_holds(&self) -> bool {
        let t = &self.traversal;
        t.visit_total() == t.ray_nodes.sum()
            && t.ray_box.sum() == self.rt_box_ops
            && t.histograms().iter().all(|(_, h)| h.count() == t.rays())
    }

    /// The flat `name -> u64` map behind the `VKSIM_RT_ANALYTICS` JSON.
    /// Fixed-schema keys (totals, histogram buckets, occupancy tallies,
    /// per-SM roll-ups) are always present, zeros included; per-level
    /// keys follow the scene's tree shape, like the per-partition keys
    /// in the golden counters.
    pub fn flat_map(&self) -> BTreeMap<String, u64> {
        let t = &self.traversal;
        let mut map = BTreeMap::new();
        map.insert("num_sms".to_string(), u64::from(self.num_sms()));
        map.insert("rays".to_string(), t.rays());
        map.insert("nodes_visited".to_string(), t.ray_nodes.sum());
        map.insert("box_tests".to_string(), t.ray_box.sum());
        map.insert("triangle_tests".to_string(), t.ray_tri.sum());
        map.insert("restarts".to_string(), t.ray_restarts.sum());
        map.insert("heatmap.cells".to_string(), t.nodes.len() as u64);
        map.insert("heatmap.visits".to_string(), t.visit_total());
        map.insert("heatmap.hits".to_string(), t.hit_total());
        map.insert("rtu.box_ops".to_string(), self.rt_box_ops);
        for (name, hist) in t.histograms() {
            for (i, &b) in hist.buckets().iter().enumerate() {
                map.insert(format!("hist.{name}.b{i}"), b);
            }
        }
        for (&(blas, depth), &(visits, lines)) in &t.levels() {
            let space = if blas { "blas" } else { "tlas" };
            map.insert(format!("{space}.l{depth}.visits"), visits);
            map.insert(format!("{space}.l{depth}.lines"), lines);
        }
        let merged = self.merged_coherence();
        map.insert("warp.trace_warps".to_string(), merged.trace_warps);
        map.insert("warp.warp_steps".to_string(), merged.warp_steps);
        map.insert("warp.lane_steps".to_string(), merged.lane_steps);
        for n in 1..WARP_OCC_BUCKETS {
            map.insert(format!("warp.occ{n}"), merged.occ[n]);
        }
        let (mut jobs, mut steps, mut latency) = (0u64, 0u64, 0u64);
        for (i, sm) in self.per_sm.iter().enumerate() {
            map.insert(format!("sm{i}.trace_warps"), sm.coherence.trace_warps);
            map.insert(format!("sm{i}.warp_steps"), sm.coherence.warp_steps);
            map.insert(format!("sm{i}.lane_steps"), sm.coherence.lane_steps);
            map.insert(format!("sm{i}.rtu.jobs"), sm.rtu_jobs);
            map.insert(format!("sm{i}.rtu.steps"), sm.rtu_steps);
            map.insert(format!("sm{i}.rtu.latency"), sm.rtu_latency);
            jobs += sm.rtu_jobs;
            steps += sm.rtu_steps;
            latency += sm.rtu_latency;
        }
        map.insert("rtu.jobs".to_string(), jobs);
        map.insert("rtu.steps".to_string(), steps);
        map.insert("rtu.latency".to_string(), latency);
        map
    }

    /// Serializes [`RtReport::flat_map`] in the golden-counter JSON shape
    /// (keys sorted, one per line, trailing newline) so the testkit
    /// flat-JSON reader parses it and byte comparison is meaningful.
    pub fn flat_json(&self) -> String {
        let map = self.flat_map();
        let mut out = String::from("{\n");
        let mut first = true;
        for (k, v) in &map {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!("  \"{k}\": {v}"));
        }
        out.push_str("\n}\n");
        out
    }

    /// Renders the per-node heatmap as CSV (`VKSIM_RT_HEATMAP`), rows
    /// sorted by `(space, depth, node)`.
    pub fn heatmap_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("space,depth,node,visits,hits\n");
        for (&(blas, depth, node), cell) in &self.traversal.nodes {
            let space = if blas { "blas" } else { "tlas" };
            let _ = writeln!(out, "{space},{depth},{node},{},{}", cell.visits, cell.hits);
        }
        out
    }

    /// Renders the human `--rt-summary` table: totals, top-visited
    /// nodes, the depth profile, warp coherence, and RT-unit latency.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let t = &self.traversal;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "=== rt analytics: {} rays, {} node visits over {} nodes ===",
            t.rays(),
            t.visit_total(),
            t.nodes.len()
        );
        let mean = |sum: u64, n: u64| if n == 0 { 0.0 } else { sum as f64 / n as f64 };
        let _ = writeln!(
            out,
            "  per ray: {:.2} nodes, {:.2} box tests, {:.2} triangle tests, {:.3} restarts",
            mean(t.ray_nodes.sum(), t.rays()),
            mean(t.ray_box.sum(), t.rays()),
            mean(t.ray_tri.sum(), t.rays()),
            mean(t.ray_restarts.sum(), t.rays()),
        );
        let _ = writeln!(out, "  top visited nodes:");
        let mut cells: Vec<(&NodeKey, &NodeCell)> = t.nodes.iter().collect();
        cells.sort_by(|a, b| b.1.visits.cmp(&a.1.visits).then(a.0.cmp(b.0)));
        for (&(blas, depth, node), cell) in cells.into_iter().take(10) {
            let space = if blas { "blas" } else { "tlas" };
            let _ = writeln!(
                out,
                "    {space:<4} d{depth:<2} n{node:<6} {:>10} visits {:>10} hits",
                cell.visits, cell.hits
            );
        }
        let _ = writeln!(out, "  depth profile (visits / distinct lines):");
        for (&(blas, depth), &(visits, lines)) in &t.levels() {
            let space = if blas { "blas" } else { "tlas" };
            let _ = writeln!(out, "    {space:<4} l{depth:<2} {visits:>10} / {lines}");
        }
        let c = self.merged_coherence();
        let _ = writeln!(
            out,
            "  warp coherence: {} trace warps, mean {:.2} active rays per RT step",
            c.trace_warps(),
            mean(c.lane_steps(), c.warp_steps()),
        );
        let (jobs, latency): (u64, u64) = self
            .per_sm
            .iter()
            .fold((0, 0), |(j, l), sm| (j + sm.rtu_jobs, l + sm.rtu_latency));
        let _ = writeln!(
            out,
            "  rt unit: {} jobs retired, mean traversal latency {:.1} cycles",
            jobs,
            mean(latency, jobs),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vksim_snapshot::{Dec, Enc};

    #[test]
    fn histogram_buckets_are_power_of_two_ranges() {
        assert_eq!(RayHistogram::bucket_of(0), 0);
        assert_eq!(RayHistogram::bucket_of(1), 1);
        assert_eq!(RayHistogram::bucket_of(2), 2);
        assert_eq!(RayHistogram::bucket_of(3), 2);
        assert_eq!(RayHistogram::bucket_of(4), 3);
        assert_eq!(RayHistogram::bucket_of(7), 3);
        assert_eq!(RayHistogram::bucket_of(u64::MAX), RAY_HIST_BUCKETS - 1);
        let mut h = RayHistogram::default();
        for v in [0, 1, 2, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 106);
        assert_eq!(h.buckets().iter().sum::<u64>(), h.count());
    }

    fn sample_traversal() -> TraversalAnalytics {
        let mut t = TraversalAnalytics::default();
        t.record_visit(false, 0, 0, 0x1000, true);
        t.record_visit(false, 0, 0, 0x1000, false);
        t.record_visit(true, 1, 3, 0x2040, true);
        t.record_ray(2, 6, 0, 0);
        t.record_ray(1, 6, 1, 1);
        t
    }

    #[test]
    fn merge_is_order_independent_and_conserves() {
        let a = sample_traversal();
        let mut b = TraversalAnalytics::default();
        b.record_visit(false, 0, 0, 0x1000, true);
        b.record_ray(1, 0, 0, 0);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.visit_total(), a.visit_total() + b.visit_total());
        assert_eq!(ab.rays(), 3);
        // The shared line at 0x1000 stays one distinct line after merge.
        assert_eq!(ab.levels()[&(false, 0)], (3, 1));
    }

    #[test]
    fn snapshot_round_trip_is_byte_idempotent() {
        let t = sample_traversal();
        let mut wc = WarpCoherence::new();
        wc.record_job([3, 3, 1]);

        let mut e = Enc::new();
        t.save(&mut e);
        wc.save(&mut e);
        let bytes = e.into_bytes();

        let mut d = Dec::new(&bytes);
        let t2 = TraversalAnalytics::load(&mut d).unwrap();
        let wc2 = WarpCoherence::load(&mut d).unwrap();
        d.finish().unwrap();
        assert_eq!(t2, t);
        assert_eq!(wc2, wc);

        let mut e2 = Enc::new();
        t2.save(&mut e2);
        wc2.save(&mut e2);
        assert_eq!(e2.into_bytes(), bytes, "re-save is byte-identical");
    }

    #[test]
    fn warp_coherence_integrals_are_exact() {
        let mut wc = WarpCoherence::new();
        // Lanes with script lengths [3, 2, 0, 1]: steps see 3, 2, 1 lanes.
        wc.record_job([3, 2, 1]);
        assert_eq!(wc.trace_warps(), 1);
        assert_eq!(wc.warp_steps(), 3);
        assert_eq!(wc.lane_steps(), 6);
        assert_eq!(wc.occ()[1], 1);
        assert_eq!(wc.occ()[2], 1);
        assert_eq!(wc.occ()[3], 1);
    }

    fn tiny_report() -> RtReport {
        let mut r = RtReport {
            traversal: sample_traversal(),
            per_sm: vec![RtSmAnalytics::default(), RtSmAnalytics::default()],
            rt_box_ops: 12,
        };
        r.per_sm[0].coherence.record_job([2, 1]);
        r.per_sm[0].rtu_jobs = 1;
        r.per_sm[0].rtu_steps = 3;
        r.per_sm[0].rtu_latency = 40;
        r.per_sm[1].rtu_jobs = 1;
        r.per_sm[1].rtu_steps = 2;
        r.per_sm[1].rtu_latency = 25;
        r
    }

    #[test]
    fn conservation_checks_all_three_legs() {
        let mut r = tiny_report();
        assert!(r.conservation_holds());
        r.rt_box_ops += 1;
        assert!(!r.conservation_holds(), "box-op mismatch must trip");
        r.rt_box_ops -= 1;
        r.traversal.record_visit(false, 0, 9, 0x5000, false);
        assert!(!r.conservation_holds(), "visit-count mismatch must trip");
    }

    #[test]
    fn flat_json_parses_and_has_fixed_schema() {
        let r = tiny_report();
        let json = r.flat_json();
        assert!(json.ends_with("\n}\n"));
        // 10 scalars + 3 rtu totals + 4×16 histogram buckets + 3 merged
        // warp counters + 32 occupancy tallies + 6 per-SM keys per SM +
        // 2 keys per populated level (tlas.l0, blas.l1 here).
        let keys = json.matches(':').count();
        assert_eq!(keys, 10 + 3 + 64 + 3 + 32 + 6 * 2 + 2 * 2);
        assert_eq!(r.flat_json(), json, "deterministic render");
        assert!(json.contains("\"heatmap.visits\": 3"));
        assert!(json.contains("\"warp.occ2\": 1"));
        assert!(json.contains("\"sm1.rtu.latency\": 25"));
        assert!(json.contains("\"tlas.l0.lines\": 1"));
    }

    #[test]
    fn heatmap_csv_and_summary_render() {
        let r = tiny_report();
        let csv = r.heatmap_csv();
        assert!(csv.starts_with("space,depth,node,visits,hits\n"));
        assert_eq!(csv.lines().count(), 1 + r.traversal.nodes().len());
        assert!(csv.contains("tlas,0,0,2,1"));
        let s = r.summary();
        assert!(s.contains("rt analytics: 2 rays"));
        assert!(s.contains("top visited nodes:"));
        assert!(s.contains("depth profile"));
        assert!(s.contains("warp coherence:"));
    }
}
