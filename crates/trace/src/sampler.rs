//! The interval metrics sampler's data model.
//!
//! The engine snapshots *cumulative* raw counters every interval; the
//! collector differences consecutive snapshots into [`IntervalRecord`]s.
//! Derived metrics (IPC, hit rates, bandwidth) are computed at export time
//! from the integer deltas, so the recorded data stays exact and the
//! sampler itself never touches floating point.

/// Cumulative raw counters at one instant. All fields are monotonically
/// nondecreasing over a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IntervalSnapshot {
    /// Instructions issued across all SMs.
    pub issued_insts: u64,
    /// L1 hits summed over SMs (shader + RT sources).
    pub l1_hits: u64,
    /// L1 classified misses summed over SMs.
    pub l1_misses: u64,
    /// Shared L2 hits.
    pub l2_hits: u64,
    /// Shared L2 classified misses.
    pub l2_misses: u64,
    /// DRAM requests serviced.
    pub dram_reqs: u64,
    /// DRAM data-bus busy cycles.
    pub dram_transfer_cycles: u64,
    /// RT-unit resident warp-cycles summed over SMs.
    pub rt_resident_warp_cycles: u64,
    /// RT-unit busy cycles summed over SMs.
    pub rt_busy_cycles: u64,
}

impl IntervalSnapshot {
    /// Per-field difference `self - prev`, plus the number of fields that
    /// went backwards. Every field is documented as monotonically
    /// nondecreasing, so a nonzero underflow count is a counter bug in
    /// the engine; the subtraction still saturates (never panics) and the
    /// caller decides how to surface the diagnosis — the collector
    /// debug-asserts and keeps a `trace.sampler_underflow` tally for
    /// release builds.
    pub fn delta_from(&self, prev: &IntervalSnapshot) -> (IntervalSnapshot, u64) {
        let mut underflows = 0u64;
        let mut sub = |cur: u64, old: u64| {
            if cur < old {
                underflows += 1;
            }
            cur.saturating_sub(old)
        };
        let d = IntervalSnapshot {
            issued_insts: sub(self.issued_insts, prev.issued_insts),
            l1_hits: sub(self.l1_hits, prev.l1_hits),
            l1_misses: sub(self.l1_misses, prev.l1_misses),
            l2_hits: sub(self.l2_hits, prev.l2_hits),
            l2_misses: sub(self.l2_misses, prev.l2_misses),
            dram_reqs: sub(self.dram_reqs, prev.dram_reqs),
            dram_transfer_cycles: sub(self.dram_transfer_cycles, prev.dram_transfer_cycles),
            rt_resident_warp_cycles: sub(
                self.rt_resident_warp_cycles,
                prev.rt_resident_warp_cycles,
            ),
            rt_busy_cycles: sub(self.rt_busy_cycles, prev.rt_busy_cycles),
        };
        (d, underflows)
    }

    /// Serializes the snapshot for a machine-state checkpoint.
    pub fn save(&self, e: &mut vksim_snapshot::Enc) {
        for v in [
            self.issued_insts,
            self.l1_hits,
            self.l1_misses,
            self.l2_hits,
            self.l2_misses,
            self.dram_reqs,
            self.dram_transfer_cycles,
            self.rt_resident_warp_cycles,
            self.rt_busy_cycles,
        ] {
            e.u64(v);
        }
    }

    /// Restores a snapshot written by [`IntervalSnapshot::save`].
    ///
    /// # Errors
    ///
    /// Propagates decoder errors on truncated payloads.
    pub fn load(d: &mut vksim_snapshot::Dec<'_>) -> Result<Self, vksim_snapshot::SnapError> {
        Ok(IntervalSnapshot {
            issued_insts: d.u64()?,
            l1_hits: d.u64()?,
            l1_misses: d.u64()?,
            l2_hits: d.u64()?,
            l2_misses: d.u64()?,
            dram_reqs: d.u64()?,
            dram_transfer_cycles: d.u64()?,
            rt_resident_warp_cycles: d.u64()?,
            rt_busy_cycles: d.u64()?,
        })
    }

    /// Per-field difference `self - prev`; debug-asserts the documented
    /// monotonicity (use [`IntervalSnapshot::delta_from`] to observe an
    /// underflow instead of asserting on it).
    pub fn delta(&self, prev: &IntervalSnapshot) -> IntervalSnapshot {
        let (d, underflows) = self.delta_from(prev);
        debug_assert_eq!(
            underflows, 0,
            "non-monotonic interval counter: {prev:?} -> {self:?}"
        );
        d
    }
}

/// One sampled interval: `[start, start + len)` plus the counter deltas
/// accumulated inside it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IntervalRecord {
    /// First cycle of the interval.
    pub start: u64,
    /// Interval length in cycles (the tail interval may be short).
    pub len: u64,
    /// Counter deltas within the interval.
    pub delta: IntervalSnapshot,
}

impl IntervalRecord {
    /// Serializes the record for a machine-state checkpoint.
    pub fn save(&self, e: &mut vksim_snapshot::Enc) {
        e.u64(self.start);
        e.u64(self.len);
        self.delta.save(e);
    }

    /// Restores a record written by [`IntervalRecord::save`].
    ///
    /// # Errors
    ///
    /// Propagates decoder errors on truncated payloads.
    pub fn load(d: &mut vksim_snapshot::Dec<'_>) -> Result<Self, vksim_snapshot::SnapError> {
        Ok(IntervalRecord {
            start: d.u64()?,
            len: d.u64()?,
            delta: IntervalSnapshot::load(d)?,
        })
    }

    /// Instructions per cycle within the interval.
    pub fn ipc(&self) -> f64 {
        ratio(self.delta.issued_insts, self.len)
    }

    /// L1 hit rate within the interval (0 when idle).
    pub fn l1_hit_rate(&self) -> f64 {
        ratio(
            self.delta.l1_hits,
            self.delta.l1_hits + self.delta.l1_misses,
        )
    }

    /// L2 hit rate within the interval (0 when idle).
    pub fn l2_hit_rate(&self) -> f64 {
        ratio(
            self.delta.l2_hits,
            self.delta.l2_hits + self.delta.l2_misses,
        )
    }

    /// DRAM data-bus busy fraction per channel-cycle is left to callers
    /// (they know the channel count); this is busy cycles per core cycle.
    pub fn dram_bw(&self) -> f64 {
        ratio(self.delta.dram_transfer_cycles, self.len)
    }

    /// Mean RT-unit resident warps over the interval, summed across SMs.
    pub fn rt_occupancy(&self) -> f64 {
        ratio(self.delta.rt_resident_warp_cycles, self.len)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_is_fieldwise_and_saturating() {
        let a = IntervalSnapshot {
            issued_insts: 10,
            l1_hits: 5,
            ..Default::default()
        };
        let b = IntervalSnapshot {
            issued_insts: 25,
            l1_hits: 3, // went "backwards": saturates to 0, never panics
            ..Default::default()
        };
        let (d, underflows) = b.delta_from(&a);
        assert_eq!(d.issued_insts, 15);
        assert_eq!(d.l1_hits, 0);
        assert_eq!(underflows, 1, "the regression is reported, not masked");
    }

    #[test]
    fn monotonic_delta_reports_no_underflow() {
        let a = IntervalSnapshot {
            issued_insts: 10,
            l1_hits: 5,
            ..Default::default()
        };
        let b = IntervalSnapshot {
            issued_insts: 25,
            l1_hits: 5,
            ..Default::default()
        };
        let (d, underflows) = b.delta_from(&a);
        assert_eq!(underflows, 0);
        assert_eq!(b.delta(&a), d, "delta agrees with delta_from");
    }

    #[test]
    fn derived_metrics_handle_idle_intervals() {
        let idle = IntervalRecord {
            start: 0,
            len: 100,
            delta: IntervalSnapshot::default(),
        };
        assert_eq!(idle.ipc(), 0.0);
        assert_eq!(idle.l1_hit_rate(), 0.0);
        assert_eq!(idle.rt_occupancy(), 0.0);
    }

    #[test]
    fn derived_metrics_compute_ratios() {
        let r = IntervalRecord {
            start: 0,
            len: 1000,
            delta: IntervalSnapshot {
                issued_insts: 2500,
                l1_hits: 75,
                l1_misses: 25,
                l2_hits: 10,
                l2_misses: 30,
                dram_transfer_cycles: 200,
                rt_resident_warp_cycles: 4000,
                ..Default::default()
            },
        };
        assert!((r.ipc() - 2.5).abs() < 1e-12);
        assert!((r.l1_hit_rate() - 0.75).abs() < 1e-12);
        assert!((r.l2_hit_rate() - 0.25).abs() < 1e-12);
        assert!((r.dram_bw() - 0.2).abs() < 1e-12);
        assert!((r.rt_occupancy() - 4.0).abs() < 1e-12);
    }
}
