//! Exhaustive per-SM cycle accounting: every SM cycle is attributed to
//! exactly one category from a fixed taxonomy, with a conservation
//! invariant (`Σ categories == ticks recorded`) that debug builds assert
//! and release tests check end-to-end.
//!
//! The recorder ([`CycleAccounting`]) lives behind an
//! `Option<Box<CycleAccounting>>` on each SM — the same branch-on-null
//! discipline as `SmTracer` — so a disabled run pays one null check per
//! tick and allocates nothing. Attribution is decided inside `Sm::tick`
//! from SM-local state sampled at tick start (the `icnt_stall_cycles`
//! discipline), which is what makes the breakdown byte-identical at any
//! `VKSIM_THREADS`.
//!
//! Alongside the category totals, the recorder keeps integer-exact
//! per-warp occupancy tallies: resident warp-cycles, eligible (issuable)
//! warp-cycles, and issued cycles (the `Issued` category). Together these
//! yield achieved-vs-peak IPC and occupancy without any floating-point
//! state in the machine.

use std::fmt;

/// Number of categories in the taxonomy.
pub const NUM_CATEGORIES: usize = 7;

/// Where one SM cycle went. Exactly one category is recorded per SM per
/// cycle; precedence (when several conditions hold at tick start) is the
/// declaration order below, after `Issued` which always wins when the SM
/// issued this cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum CycleCategory {
    /// The SM issued an instruction this cycle.
    Issued = 0,
    /// At least one resident warp is scoreboard-blocked on an
    /// outstanding load (`WaitMem`) and nothing issued.
    MemStall = 1,
    /// At least one resident warp is parked in (or waiting to enter) the
    /// RT unit and nothing issued.
    RtStall = 2,
    /// The bounded interconnect is refusing the SM's backlog; the issue
    /// stage is frozen for the whole cycle.
    IcntStall = 3,
    /// A resident warp is mid-divergence (split stack / pending
    /// reconvergence) with no issuable context and nothing issued.
    SimtSync = 4,
    /// Warps are resident but none is eligible, and no stall source
    /// above applies (occupancy gap, e.g. all warps in fixed-latency
    /// `OpUntil` shadows).
    NoEligibleWarp = 5,
    /// No warps resident: the SM has drained and idles until refill or
    /// end of run.
    Drained = 6,
}

impl CycleCategory {
    /// All categories, in stable code order.
    pub const ALL: [CycleCategory; NUM_CATEGORIES] = [
        CycleCategory::Issued,
        CycleCategory::MemStall,
        CycleCategory::RtStall,
        CycleCategory::IcntStall,
        CycleCategory::SimtSync,
        CycleCategory::NoEligibleWarp,
        CycleCategory::Drained,
    ];

    /// Stable wire/JSON name.
    pub fn name(self) -> &'static str {
        match self {
            CycleCategory::Issued => "issued",
            CycleCategory::MemStall => "mem_stall",
            CycleCategory::RtStall => "rt_stall",
            CycleCategory::IcntStall => "icnt_stall",
            CycleCategory::SimtSync => "simt_sync",
            CycleCategory::NoEligibleWarp => "no_eligible_warp",
            CycleCategory::Drained => "drained",
        }
    }

    /// Stable numeric code (the `repr` value).
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Inverse of [`CycleCategory::code`].
    pub fn from_code(code: u8) -> Option<CycleCategory> {
        CycleCategory::ALL.get(code as usize).copied()
    }
}

impl fmt::Display for CycleCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The per-SM cycle-accounting recorder. Pure integer state: category
/// totals plus occupancy tallies, all monotonic.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CycleAccounting {
    categories: [u64; NUM_CATEGORIES],
    resident_warp_cycles: u64,
    eligible_warp_cycles: u64,
}

impl CycleAccounting {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attributes one cycle to `cat`. Called exactly once per SM tick.
    pub fn record(&mut self, cat: CycleCategory) {
        self.categories[cat as usize] += 1;
    }

    /// Accumulates the per-warp occupancy sample for one cycle:
    /// `resident` warps on the SM, of which `eligible` had an issuable
    /// context at tick start.
    pub fn record_occupancy(&mut self, resident: u64, eligible: u64) {
        debug_assert!(
            eligible <= resident,
            "eligible {eligible} > resident {resident}"
        );
        self.resident_warp_cycles += resident;
        self.eligible_warp_cycles += eligible;
    }

    /// Cycles attributed to `cat`.
    pub fn get(&self, cat: CycleCategory) -> u64 {
        self.categories[cat as usize]
    }

    /// The raw category array, in code order.
    pub fn categories(&self) -> &[u64; NUM_CATEGORIES] {
        &self.categories
    }

    /// Total ticks recorded — by construction `Σ categories`. The
    /// conservation invariant is that this equals the cycles the SM was
    /// ticked for.
    pub fn total(&self) -> u64 {
        self.categories.iter().sum()
    }

    /// Resident warp-cycles accumulated.
    pub fn resident_warp_cycles(&self) -> u64 {
        self.resident_warp_cycles
    }

    /// Eligible (issuable-at-tick-start) warp-cycles accumulated.
    pub fn eligible_warp_cycles(&self) -> u64 {
        self.eligible_warp_cycles
    }

    /// Folds another recorder's tallies in (used to merge per-SM
    /// breakdowns into a machine-wide one).
    pub fn merge(&mut self, other: &CycleAccounting) {
        for (a, b) in self.categories.iter_mut().zip(other.categories.iter()) {
            *a += b;
        }
        self.resident_warp_cycles += other.resident_warp_cycles;
        self.eligible_warp_cycles += other.eligible_warp_cycles;
    }

    /// Serializes the recorder for a machine-state checkpoint.
    pub fn save(&self, e: &mut vksim_snapshot::Enc) {
        for &c in &self.categories {
            e.u64(c);
        }
        e.u64(self.resident_warp_cycles);
        e.u64(self.eligible_warp_cycles);
    }

    /// Restores a recorder written by [`CycleAccounting::save`].
    ///
    /// # Errors
    ///
    /// Propagates decoder errors on truncated payloads.
    pub fn load(d: &mut vksim_snapshot::Dec<'_>) -> Result<Self, vksim_snapshot::SnapError> {
        let mut categories = [0u64; NUM_CATEGORIES];
        for c in &mut categories {
            *c = d.u64()?;
        }
        Ok(CycleAccounting {
            categories,
            resident_warp_cycles: d.u64()?,
            eligible_warp_cycles: d.u64()?,
        })
    }
}

/// The end-of-run profile: per-SM breakdowns plus the run-level context
/// needed to check conservation and derive rates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfReport {
    /// Cycles the machine ran (every SM is ticked every cycle).
    pub cycles: u64,
    /// One recorder per SM, indexed by SM id.
    pub per_sm: Vec<CycleAccounting>,
    /// Instructions issued machine-wide (for achieved IPC).
    pub issued_insts: u64,
    /// Active lanes summed over issued instructions (for SIMT
    /// efficiency).
    pub issued_lanes: u64,
}

impl ProfReport {
    /// Number of SMs profiled.
    pub fn num_sms(&self) -> u32 {
        self.per_sm.len() as u32
    }

    /// All SMs' tallies merged.
    pub fn merged(&self) -> CycleAccounting {
        let mut m = CycleAccounting::new();
        for acc in &self.per_sm {
            m.merge(acc);
        }
        m
    }

    /// The conservation invariant: every cycle of every SM attributed to
    /// exactly one category. Holds on every healthy or paused run; a
    /// faulted run may stop mid-cycle with some SMs unticked.
    pub fn conservation_holds(&self) -> bool {
        self.merged().total() == self.cycles * self.per_sm.len() as u64
    }

    /// The category with the most cycles among the stall categories
    /// (everything except `Issued`), ties broken by code order.
    pub fn top_stall(&self) -> CycleCategory {
        let merged = self.merged();
        let mut best = CycleCategory::MemStall;
        let mut best_cycles = 0u64;
        for cat in CycleCategory::ALL {
            if cat == CycleCategory::Issued {
                continue;
            }
            let c = merged.get(cat);
            if c > best_cycles {
                best = cat;
                best_cycles = c;
            }
        }
        best
    }

    /// The flat `name -> u64` map behind the `VKSIM_PROF` JSON: merged
    /// totals under `total.<category>`, per-SM totals under
    /// `sm<i>.<category>`, occupancy tallies, and the run context. All
    /// keys are always present (zeros included) so the schema is fixed
    /// and two breakdowns diff key-by-key.
    pub fn flat_map(&self) -> std::collections::BTreeMap<String, u64> {
        let mut map = std::collections::BTreeMap::new();
        map.insert("cycles".to_string(), self.cycles);
        map.insert("num_sms".to_string(), u64::from(self.num_sms()));
        map.insert("issued_insts".to_string(), self.issued_insts);
        map.insert("issued_lanes".to_string(), self.issued_lanes);
        let merged = self.merged();
        for cat in CycleCategory::ALL {
            map.insert(format!("total.{}", cat.name()), merged.get(cat));
        }
        map.insert(
            "total.resident_warp_cycles".to_string(),
            merged.resident_warp_cycles(),
        );
        map.insert(
            "total.eligible_warp_cycles".to_string(),
            merged.eligible_warp_cycles(),
        );
        for (i, acc) in self.per_sm.iter().enumerate() {
            for cat in CycleCategory::ALL {
                map.insert(format!("sm{i}.{}", cat.name()), acc.get(cat));
            }
            map.insert(
                format!("sm{i}.resident_warp_cycles"),
                acc.resident_warp_cycles(),
            );
            map.insert(
                format!("sm{i}.eligible_warp_cycles"),
                acc.eligible_warp_cycles(),
            );
        }
        map
    }

    /// Serializes [`ProfReport::flat_map`] as a pretty, stable JSON
    /// object (keys sorted, one per line, trailing newline) — the same
    /// shape as the golden-counter files, so the testkit flat-JSON
    /// reader parses it and byte comparison is meaningful.
    pub fn flat_json(&self) -> String {
        let map = self.flat_map();
        let mut out = String::from("{\n");
        let mut first = true;
        for (k, v) in &map {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!("  \"{k}\": {v}"));
        }
        out.push_str("\n}\n");
        out
    }

    /// Renders the human `--prof-summary` table: cycle breakdown with
    /// percentages, SIMT efficiency, occupancy, and achieved-vs-peak
    /// IPC (peak is one instruction per SM per cycle).
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let merged = self.merged();
        let sm_cycles = self.cycles * u64::from(self.num_sms());
        let mut out = String::new();
        let _ = writeln!(
            out,
            "=== cycle accounting: {} cycles x {} SMs = {} SM-cycles ===",
            self.cycles,
            self.num_sms(),
            sm_cycles
        );
        for cat in CycleCategory::ALL {
            let c = merged.get(cat);
            let pct = if sm_cycles == 0 {
                0.0
            } else {
                100.0 * c as f64 / sm_cycles as f64
            };
            let _ = writeln!(out, "  {:<18} {:>12}  {:>6.2}%", cat.name(), c, pct);
        }
        let _ = writeln!(out, "  top stall: {}", self.top_stall().name());
        let achieved_ipc = if self.cycles == 0 {
            0.0
        } else {
            self.issued_insts as f64 / self.cycles as f64
        };
        let peak_ipc = f64::from(self.num_sms());
        let simt_eff = if self.issued_insts == 0 {
            0.0
        } else {
            self.issued_lanes as f64 / (self.issued_insts as f64 * 32.0)
        };
        let occupancy = if sm_cycles == 0 {
            0.0
        } else {
            merged.resident_warp_cycles() as f64 / sm_cycles as f64
        };
        let eligibility = if merged.resident_warp_cycles() == 0 {
            0.0
        } else {
            merged.eligible_warp_cycles() as f64 / merged.resident_warp_cycles() as f64
        };
        let _ = writeln!(
            out,
            "  ipc: {achieved_ipc:.3} achieved / {peak_ipc:.0} peak ({:.2}% of peak)",
            if peak_ipc == 0.0 {
                0.0
            } else {
                100.0 * achieved_ipc / peak_ipc
            }
        );
        let _ = writeln!(out, "  simt efficiency: {:.2}%", 100.0 * simt_eff);
        let _ = writeln!(
            out,
            "  warps/SM resident: {occupancy:.2} avg, eligible fraction {:.2}%",
            100.0 * eligibility
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip_and_names_are_stable() {
        for cat in CycleCategory::ALL {
            assert_eq!(CycleCategory::from_code(cat.code()), Some(cat));
        }
        assert_eq!(CycleCategory::from_code(7), None);
        let names: Vec<&str> = CycleCategory::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(
            names,
            vec![
                "issued",
                "mem_stall",
                "rt_stall",
                "icnt_stall",
                "simt_sync",
                "no_eligible_warp",
                "drained"
            ]
        );
    }

    #[test]
    fn record_and_merge_conserve_totals() {
        let mut a = CycleAccounting::new();
        a.record(CycleCategory::Issued);
        a.record(CycleCategory::Issued);
        a.record(CycleCategory::MemStall);
        a.record_occupancy(4, 2);
        let mut b = CycleAccounting::new();
        b.record(CycleCategory::Drained);
        b.record_occupancy(0, 0);
        let mut m = CycleAccounting::new();
        m.merge(&a);
        m.merge(&b);
        assert_eq!(m.total(), 4);
        assert_eq!(m.get(CycleCategory::Issued), 2);
        assert_eq!(m.get(CycleCategory::Drained), 1);
        assert_eq!(m.resident_warp_cycles(), 4);
        assert_eq!(m.eligible_warp_cycles(), 2);
    }

    #[test]
    fn snapshot_round_trip_is_byte_idempotent() {
        let mut a = CycleAccounting::new();
        a.record(CycleCategory::RtStall);
        a.record(CycleCategory::IcntStall);
        a.record_occupancy(7, 3);
        let mut e = vksim_snapshot::Enc::new();
        a.save(&mut e);
        let bytes = e.into_bytes();
        let mut d = vksim_snapshot::Dec::new(&bytes);
        let back = CycleAccounting::load(&mut d).unwrap();
        d.finish().unwrap();
        assert_eq!(back, a);
        let mut e2 = vksim_snapshot::Enc::new();
        back.save(&mut e2);
        assert_eq!(e2.into_bytes(), bytes);
    }

    fn tiny_report() -> ProfReport {
        let mut sm0 = CycleAccounting::new();
        for _ in 0..6 {
            sm0.record(CycleCategory::Issued);
        }
        for _ in 0..4 {
            sm0.record(CycleCategory::MemStall);
        }
        sm0.record_occupancy(20, 8);
        let mut sm1 = CycleAccounting::new();
        for _ in 0..10 {
            sm1.record(CycleCategory::Drained);
        }
        ProfReport {
            cycles: 10,
            per_sm: vec![sm0, sm1],
            issued_insts: 6,
            issued_lanes: 96,
        }
    }

    #[test]
    fn conservation_and_top_stall() {
        let r = tiny_report();
        assert!(r.conservation_holds());
        assert_eq!(r.top_stall(), CycleCategory::Drained);
    }

    #[test]
    fn flat_json_parses_and_has_fixed_schema() {
        let r = tiny_report();
        let json = r.flat_json();
        // 4 run-context keys + 9 merged keys + 9 per SM.
        let map = r.flat_map();
        assert_eq!(map.len(), 4 + 9 + 9 * 2);
        assert_eq!(map["total.issued"], 6);
        assert_eq!(map["sm1.drained"], 10);
        assert_eq!(map["sm0.resident_warp_cycles"], 20);
        // Deterministic output.
        assert_eq!(json, r.flat_json());
        assert!(json.ends_with("\n}\n"));
    }

    #[test]
    fn summary_names_top_stall_and_ipc() {
        let s = tiny_report().summary();
        assert!(s.contains("cycle accounting"));
        assert!(s.contains("top stall: drained"));
        assert!(s.contains("ipc: 0.600 achieved / 2 peak"));
        assert!(s.contains("simt efficiency: 50.00%"));
    }
}
