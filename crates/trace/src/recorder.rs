//! Per-SM event recorder and the serial collector that merges them.

use crate::accounting::NUM_CATEGORIES;
use crate::config::TraceConfig;
use crate::event::{Event, EventKind, NO_WARP};
use crate::export::TraceReport;
use crate::sampler::{IntervalRecord, IntervalSnapshot};
use std::collections::{BTreeMap, VecDeque};

/// The per-SM recorder. Lives behind an `Option<Box<SmTracer>>` on each SM
/// so a disabled run pays exactly one null check per hook site; all state
/// is SM-local, which is what makes tracing safe inside phase A of the
/// parallel engine.
#[derive(Clone, Debug)]
pub struct SmTracer {
    // Events staged since the last phase-B drain.
    staged: Vec<Event>,
    // Bounded ring of the most recent events (the flight recorder).
    flight: VecDeque<Event>,
    flight_depth: usize,
    // Open memory-stall spans: warp -> stall-begin cycle.
    stall_since: BTreeMap<u32, u64>,
    // Aggregates for the hotspot summary.
    pc_issues: BTreeMap<u32, u64>,
    warp_stall_cycles: BTreeMap<u32, u64>,
    // Edge detector for the RT-busy span.
    rt_busy: bool,
    // Open SM-wide interconnect-backpressure span: stall-begin cycle.
    icnt_stall_since: Option<u64>,
}

impl SmTracer {
    /// Creates an empty recorder with the given flight-ring depth.
    pub fn new(config: &TraceConfig) -> Self {
        SmTracer {
            staged: Vec::new(),
            flight: VecDeque::new(),
            flight_depth: config.effective_flight_depth(),
            stall_since: BTreeMap::new(),
            pc_issues: BTreeMap::new(),
            warp_stall_cycles: BTreeMap::new(),
            rt_busy: false,
            icnt_stall_since: None,
        }
    }

    /// Records a raw event.
    pub fn record(&mut self, cycle: u64, warp: u32, kind: EventKind) {
        let ev = Event { cycle, warp, kind };
        self.staged.push(ev);
        if self.flight.len() >= self.flight_depth {
            self.flight.pop_front();
        }
        self.flight.push_back(ev);
    }

    /// Records an instruction issue and feeds the hottest-PC aggregate.
    pub fn issue(&mut self, cycle: u64, warp: u32, pc: u32, lanes: u32) {
        *self.pc_issues.entry(pc).or_insert(0) += 1;
        self.record(cycle, warp, EventKind::Issue { pc, lanes });
    }

    /// Opens a memory-stall span for `warp` (idempotent while open).
    pub fn stall_begin(&mut self, cycle: u64, warp: u32) {
        if let std::collections::btree_map::Entry::Vacant(e) = self.stall_since.entry(warp) {
            e.insert(cycle);
            self.record(cycle, warp, EventKind::StallBegin);
        }
    }

    /// Closes the memory-stall span for `warp`, if one is open.
    pub fn stall_end(&mut self, cycle: u64, warp: u32) {
        if let Some(since) = self.stall_since.remove(&warp) {
            let cycles = cycle.saturating_sub(since);
            *self.warp_stall_cycles.entry(warp).or_insert(0) += cycles;
            self.record(cycle, warp, EventKind::StallEnd { cycles });
        }
    }

    /// Edge-detects the RT unit's busy state into a begin/end span.
    pub fn rt_busy_edge(&mut self, cycle: u64, busy: bool) {
        if busy != self.rt_busy {
            self.rt_busy = busy;
            let kind = if busy {
                EventKind::RtBusyBegin
            } else {
                EventKind::RtBusyEnd
            };
            self.record(cycle, NO_WARP, kind);
        }
    }

    /// Edge-detects the SM's interconnect-backpressure state into an
    /// SM-wide begin/end span (the issue stage is stalled while the
    /// bounded interconnect refuses the SM's backlog).
    pub fn icnt_stall_edge(&mut self, cycle: u64, blocked: bool) {
        match (self.icnt_stall_since, blocked) {
            (None, true) => {
                self.icnt_stall_since = Some(cycle);
                self.record(cycle, NO_WARP, EventKind::IcntStallBegin);
            }
            (Some(since), false) => {
                self.icnt_stall_since = None;
                let cycles = cycle.saturating_sub(since);
                self.record(cycle, NO_WARP, EventKind::IcntStallEnd { cycles });
            }
            _ => {}
        }
    }

    /// Closes every open span at end of run so exported B/E pairs match.
    pub fn finalize(&mut self, cycle: u64) {
        let open: Vec<u32> = self.stall_since.keys().copied().collect();
        for warp in open {
            self.stall_end(cycle, warp);
        }
        self.rt_busy_edge(cycle, false);
        self.icnt_stall_edge(cycle, false);
    }

    /// The flight-recorder ring, oldest first.
    pub fn flight(&self) -> impl Iterator<Item = &Event> {
        self.flight.iter()
    }

    /// Serializes the recorder for a machine-state checkpoint. Checkpoints
    /// are taken at cycle boundaries, after phase B drained `staged`, but
    /// the staged buffer is encoded anyway so the codec has no implicit
    /// precondition. All maps are `BTreeMap`s, so the encoding is
    /// deterministic.
    pub fn save(&self, e: &mut vksim_snapshot::Enc) {
        e.seq(self.staged.len());
        for ev in &self.staged {
            ev.save(e);
        }
        e.seq(self.flight.len());
        for ev in &self.flight {
            ev.save(e);
        }
        e.usize(self.flight_depth);
        e.seq(self.stall_since.len());
        for (&warp, &since) in &self.stall_since {
            e.u32(warp);
            e.u64(since);
        }
        e.seq(self.pc_issues.len());
        for (&pc, &n) in &self.pc_issues {
            e.u32(pc);
            e.u64(n);
        }
        e.seq(self.warp_stall_cycles.len());
        for (&warp, &n) in &self.warp_stall_cycles {
            e.u32(warp);
            e.u64(n);
        }
        e.bool(self.rt_busy);
        e.opt_u64(self.icnt_stall_since);
    }

    /// Restores a recorder written by [`SmTracer::save`].
    ///
    /// # Errors
    ///
    /// Propagates decoder errors on truncated or malformed payloads.
    pub fn load(d: &mut vksim_snapshot::Dec<'_>) -> Result<Self, vksim_snapshot::SnapError> {
        let n = d.seq()?;
        let mut staged = Vec::with_capacity(n);
        for _ in 0..n {
            staged.push(Event::load(d)?);
        }
        let n = d.seq()?;
        let mut flight = VecDeque::with_capacity(n);
        for _ in 0..n {
            flight.push_back(Event::load(d)?);
        }
        let flight_depth = d.usize()?;
        let mut stall_since = BTreeMap::new();
        for _ in 0..d.seq()? {
            let warp = d.u32()?;
            stall_since.insert(warp, d.u64()?);
        }
        let mut pc_issues = BTreeMap::new();
        for _ in 0..d.seq()? {
            let pc = d.u32()?;
            pc_issues.insert(pc, d.u64()?);
        }
        let mut warp_stall_cycles = BTreeMap::new();
        for _ in 0..d.seq()? {
            let warp = d.u32()?;
            warp_stall_cycles.insert(warp, d.u64()?);
        }
        Ok(SmTracer {
            staged,
            flight,
            flight_depth,
            stall_since,
            pc_issues,
            warp_stall_cycles,
            rt_busy: d.bool()?,
            icnt_stall_since: d.opt_u64()?,
        })
    }

    /// Events staged since the last drain (for tests).
    pub fn staged_len(&self) -> usize {
        self.staged.len()
    }
}

/// The serial merge point: phase B drains every SM's staged events — in
/// SM-id order — into one collector, samples the interval series, and at
/// end of run folds everything into a [`TraceReport`].
#[derive(Debug)]
pub struct TraceCollector {
    config: TraceConfig,
    events: Vec<(u32, Event)>,
    dropped: u64,
    intervals: Vec<IntervalRecord>,
    last_snapshot: IntervalSnapshot,
    interval_start: u64,
    sampler_underflows: u64,
    pc_issues: BTreeMap<u32, u64>,
    warp_stalls: BTreeMap<(u32, u32), u64>,
    // Cumulative merged cycle-accounting totals, sampled at the interval
    // boundaries; empty unless accounting rides along with tracing.
    prof_series: Vec<(u64, [u64; NUM_CATEGORIES])>,
}

impl TraceCollector {
    /// Creates an empty collector.
    pub fn new(config: TraceConfig) -> Self {
        TraceCollector {
            config,
            events: Vec::new(),
            dropped: 0,
            intervals: Vec::new(),
            last_snapshot: IntervalSnapshot::default(),
            interval_start: 0,
            sampler_underflows: 0,
            pc_issues: BTreeMap::new(),
            warp_stalls: BTreeMap::new(),
            prof_series: Vec::new(),
        }
    }

    /// The interval-sampler period.
    pub fn interval(&self) -> u64 {
        self.config.effective_interval()
    }

    fn push(&mut self, sm: u32, ev: Event) {
        if self.events.len() >= self.config.max_events {
            self.dropped += 1;
        } else {
            self.events.push((sm, ev));
        }
    }

    /// Drains one SM's staged events. Must be called in SM-id order each
    /// cycle (phase B) to keep the merged stream thread-count invariant.
    pub fn drain_sm(&mut self, sm: u32, tracer: &mut SmTracer) {
        for ev in std::mem::take(&mut tracer.staged) {
            self.push(sm, ev);
        }
    }

    /// Appends shared-backend events under the pseudo-process `sm` id
    /// (callers pass `num_sms`). Only called from serial phase-B code.
    pub fn push_mem_events(&mut self, sm: u32, events: impl IntoIterator<Item = Event>) {
        for ev in events {
            self.push(sm, ev);
        }
    }

    /// Records one interval sample: `snapshot` holds *cumulative* raw
    /// counters as of `cycle`; the collector stores the delta. A counter
    /// that went backwards is an engine bug: debug builds assert, release
    /// builds tally it under [`TraceCollector::sampler_underflows`] (the
    /// engine surfaces the tally as `trace.sampler_underflow`).
    pub fn sample(&mut self, cycle: u64, snapshot: IntervalSnapshot) {
        let len = cycle.saturating_sub(self.interval_start);
        if len == 0 {
            return;
        }
        let (delta, underflows) = snapshot.delta_from(&self.last_snapshot);
        debug_assert_eq!(
            underflows, 0,
            "non-monotonic interval counter at cycle {cycle}: {:?} -> {snapshot:?}",
            self.last_snapshot
        );
        self.sampler_underflows += underflows;
        self.intervals.push(IntervalRecord {
            start: self.interval_start,
            len,
            delta,
        });
        self.last_snapshot = snapshot;
        self.interval_start = cycle;
    }

    /// Fields observed going backwards across all samples so far (0 on a
    /// healthy run).
    pub fn sampler_underflows(&self) -> u64 {
        self.sampler_underflows
    }

    /// Records one cycle-accounting sample: `totals` holds *cumulative*
    /// per-category cycles merged across all SMs as of `cycle`. Sampled
    /// at the same interval boundaries as [`TraceCollector::sample`];
    /// a stale or duplicate cycle is ignored so the end-of-run tail
    /// sample cannot double-record an interval boundary.
    pub fn sample_prof(&mut self, cycle: u64, totals: [u64; NUM_CATEGORIES]) {
        if self.prof_series.last().is_some_and(|&(c, _)| c >= cycle) {
            return;
        }
        self.prof_series.push((cycle, totals));
    }

    /// Folds one SM's summary aggregates in (call once, at end of run).
    pub fn absorb_aggregates(&mut self, sm: u32, tracer: &SmTracer) {
        for (&pc, &n) in &tracer.pc_issues {
            *self.pc_issues.entry(pc).or_insert(0) += n;
        }
        for (&warp, &n) in &tracer.warp_stall_cycles {
            *self.warp_stalls.entry((sm, warp)).or_insert(0) += n;
        }
    }

    /// Serializes the collector's dynamic state (everything except the
    /// [`TraceConfig`], which the resuming run supplies) for a
    /// machine-state checkpoint. The interval-sampler cursor —
    /// `last_snapshot` + `interval_start` — rides along, which is what
    /// keeps a resumed run from re-emitting the last interval row or
    /// differencing against a zeroed baseline.
    pub fn save(&self, e: &mut vksim_snapshot::Enc) {
        e.seq(self.events.len());
        for (sm, ev) in &self.events {
            e.u32(*sm);
            ev.save(e);
        }
        e.u64(self.dropped);
        e.seq(self.intervals.len());
        for rec in &self.intervals {
            rec.save(e);
        }
        self.last_snapshot.save(e);
        e.u64(self.interval_start);
        e.u64(self.sampler_underflows);
        e.seq(self.pc_issues.len());
        for (&pc, &n) in &self.pc_issues {
            e.u32(pc);
            e.u64(n);
        }
        e.seq(self.warp_stalls.len());
        for (&(sm, warp), &n) in &self.warp_stalls {
            e.u32(sm);
            e.u32(warp);
            e.u64(n);
        }
        e.seq(self.prof_series.len());
        for (cycle, totals) in &self.prof_series {
            e.u64(*cycle);
            for &t in totals {
                e.u64(t);
            }
        }
    }

    /// Restores a collector written by [`TraceCollector::save`] under the
    /// resuming run's `config`.
    ///
    /// # Errors
    ///
    /// Propagates decoder errors on truncated or malformed payloads.
    pub fn load(
        config: TraceConfig,
        d: &mut vksim_snapshot::Dec<'_>,
    ) -> Result<Self, vksim_snapshot::SnapError> {
        let n = d.seq()?;
        let mut events = Vec::with_capacity(n);
        for _ in 0..n {
            let sm = d.u32()?;
            events.push((sm, Event::load(d)?));
        }
        let dropped = d.u64()?;
        let n = d.seq()?;
        let mut intervals = Vec::with_capacity(n);
        for _ in 0..n {
            intervals.push(IntervalRecord::load(d)?);
        }
        let last_snapshot = IntervalSnapshot::load(d)?;
        let interval_start = d.u64()?;
        let sampler_underflows = d.u64()?;
        let mut pc_issues = BTreeMap::new();
        for _ in 0..d.seq()? {
            let pc = d.u32()?;
            pc_issues.insert(pc, d.u64()?);
        }
        let mut warp_stalls = BTreeMap::new();
        for _ in 0..d.seq()? {
            let sm = d.u32()?;
            let warp = d.u32()?;
            warp_stalls.insert((sm, warp), d.u64()?);
        }
        let n = d.seq()?;
        let mut prof_series = Vec::with_capacity(n);
        for _ in 0..n {
            let cycle = d.u64()?;
            let mut totals = [0u64; NUM_CATEGORIES];
            for t in &mut totals {
                *t = d.u64()?;
            }
            prof_series.push((cycle, totals));
        }
        Ok(TraceCollector {
            config,
            events,
            dropped,
            intervals,
            last_snapshot,
            interval_start,
            sampler_underflows,
            pc_issues,
            warp_stalls,
            prof_series,
        })
    }

    /// Finishes collection into an exportable report.
    pub fn finish(self, final_cycle: u64, num_sms: u32) -> TraceReport {
        TraceReport {
            num_sms,
            final_cycle,
            interval: self.config.effective_interval(),
            events: self.events,
            intervals: self.intervals,
            dropped: self.dropped,
            pc_issues: self.pc_issues,
            warp_stalls: self.warp_stalls,
            prof_series: self.prof_series,
            config: self.config,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TraceConfig {
        TraceConfig {
            enabled: true,
            ..Default::default()
        }
    }

    #[test]
    fn stall_spans_pair_and_accumulate() {
        let mut t = SmTracer::new(&cfg());
        t.stall_begin(10, 3);
        t.stall_begin(12, 3); // idempotent while open
        t.stall_end(25, 3);
        t.stall_end(26, 3); // no open span: no event
        t.stall_begin(30, 3);
        t.finalize(40);
        let kinds: Vec<EventKind> = t.flight().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::StallBegin,
                EventKind::StallEnd { cycles: 15 },
                EventKind::StallBegin,
                EventKind::StallEnd { cycles: 10 },
            ]
        );
        assert_eq!(t.warp_stall_cycles.get(&3), Some(&25));
    }

    #[test]
    fn icnt_stall_spans_pair_and_close_at_finalize() {
        let mut t = SmTracer::new(&cfg());
        t.icnt_stall_edge(5, true);
        t.icnt_stall_edge(6, true); // idempotent while open
        t.icnt_stall_edge(9, false);
        t.icnt_stall_edge(10, false); // no open span: no event
        t.icnt_stall_edge(12, true);
        t.finalize(20);
        let kinds: Vec<EventKind> = t.flight().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::IcntStallBegin,
                EventKind::IcntStallEnd { cycles: 4 },
                EventKind::IcntStallBegin,
                EventKind::IcntStallEnd { cycles: 8 },
            ]
        );
        assert!(t.flight().all(|e| e.warp == NO_WARP), "SM-wide span");
    }

    #[test]
    fn healthy_sampler_reports_zero_underflows() {
        let mut c = TraceCollector::new(cfg());
        c.sample(
            100,
            IntervalSnapshot {
                issued_insts: 10,
                ..Default::default()
            },
        );
        c.sample(
            200,
            IntervalSnapshot {
                issued_insts: 30,
                ..Default::default()
            },
        );
        assert_eq!(c.sampler_underflows(), 0);
    }

    #[test]
    fn rt_busy_edges_only_on_transitions() {
        let mut t = SmTracer::new(&cfg());
        t.rt_busy_edge(1, false);
        t.rt_busy_edge(2, true);
        t.rt_busy_edge(3, true);
        t.rt_busy_edge(7, false);
        assert_eq!(t.staged_len(), 2);
    }

    #[test]
    fn flight_ring_is_bounded() {
        let mut t = SmTracer::new(&TraceConfig {
            enabled: true,
            flight_depth: 4,
            ..Default::default()
        });
        for i in 0..10 {
            t.record(i, 0, EventKind::Retire);
        }
        let cycles: Vec<u64> = t.flight().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![6, 7, 8, 9]);
    }

    #[test]
    fn collector_caps_events_and_counts_drops() {
        let mut c = TraceCollector::new(TraceConfig {
            enabled: true,
            max_events: 3,
            ..Default::default()
        });
        let mut t = SmTracer::new(&cfg());
        for i in 0..5 {
            t.record(i, 0, EventKind::Retire);
        }
        c.drain_sm(0, &mut t);
        assert_eq!(t.staged_len(), 0);
        let r = c.finish(100, 1);
        assert_eq!(r.events.len(), 3);
        assert_eq!(r.dropped, 2);
    }

    #[test]
    fn sampler_stores_deltas_not_cumulatives() {
        let mut c = TraceCollector::new(cfg());
        c.sample(
            1000,
            IntervalSnapshot {
                issued_insts: 500,
                ..Default::default()
            },
        );
        c.sample(
            2000,
            IntervalSnapshot {
                issued_insts: 800,
                ..Default::default()
            },
        );
        c.sample(2000, IntervalSnapshot::default()); // zero-length: ignored
        let r = c.finish(2000, 1);
        assert_eq!(r.intervals.len(), 2);
        assert_eq!(r.intervals[0].delta.issued_insts, 500);
        assert_eq!(r.intervals[1].delta.issued_insts, 300);
        assert_eq!(r.intervals[1].start, 1000);
        assert_eq!(r.intervals[1].len, 1000);
    }

    #[test]
    fn tracer_and_collector_snapshot_round_trip() {
        let mut t = SmTracer::new(&cfg());
        t.issue(5, 2, 0x80, 32);
        t.stall_begin(6, 1);
        t.rt_busy_edge(7, true);
        t.icnt_stall_edge(8, true);
        let mut c = TraceCollector::new(cfg());
        c.sample(
            100,
            IntervalSnapshot {
                issued_insts: 12,
                ..Default::default()
            },
        );
        c.drain_sm(0, &mut t);
        // Round-trip the tracer, open spans and all.
        let mut e = vksim_snapshot::Enc::new();
        t.save(&mut e);
        let bytes = e.into_bytes();
        let mut back = SmTracer::load(&mut vksim_snapshot::Dec::new(&bytes)).unwrap();
        assert_eq!(back.stall_since, t.stall_since);
        assert_eq!(back.rt_busy, t.rt_busy);
        assert_eq!(back.icnt_stall_since, t.icnt_stall_since);
        let mut e2 = vksim_snapshot::Enc::new();
        back.save(&mut e2);
        assert_eq!(e2.into_bytes(), bytes, "re-encoding is byte-idempotent");
        // The restored tracer closes its open spans exactly like the
        // original would.
        back.finalize(20);
        t.finalize(20);
        assert_eq!(back.warp_stall_cycles, t.warp_stall_cycles);
        // Round-trip the collector; the sampler cursor must survive so the
        // next sample differences against the right baseline.
        let mut e = vksim_snapshot::Enc::new();
        c.save(&mut e);
        let bytes = e.into_bytes();
        let mut back = TraceCollector::load(cfg(), &mut vksim_snapshot::Dec::new(&bytes)).unwrap();
        assert_eq!(back.interval_start, 100);
        assert_eq!(back.last_snapshot.issued_insts, 12);
        back.sample(
            200,
            IntervalSnapshot {
                issued_insts: 30,
                ..Default::default()
            },
        );
        let r = back.finish(200, 1);
        assert_eq!(r.intervals.len(), 2, "no duplicate rows after restore");
        assert_eq!(r.intervals[1].delta.issued_insts, 18);
        assert_eq!(r.events.len(), 4);
    }

    #[test]
    fn prof_series_dedups_and_round_trips() {
        let mut c = TraceCollector::new(cfg());
        let mut a = [0u64; NUM_CATEGORIES];
        a[0] = 3;
        c.sample_prof(100, a);
        c.sample_prof(100, a); // duplicate cycle: ignored
        c.sample_prof(50, a); // stale cycle: ignored
        let mut b = a;
        b[0] = 7;
        c.sample_prof(200, b);
        let mut e = vksim_snapshot::Enc::new();
        c.save(&mut e);
        let bytes = e.into_bytes();
        let mut d = vksim_snapshot::Dec::new(&bytes);
        let back = TraceCollector::load(cfg(), &mut d).unwrap();
        d.finish().unwrap();
        let r = back.finish(200, 1);
        assert_eq!(r.prof_series, vec![(100, a), (200, b)]);
    }

    #[test]
    fn aggregates_merge_across_sms() {
        let mut c = TraceCollector::new(cfg());
        let mut a = SmTracer::new(&cfg());
        a.issue(1, 0, 0x40, 32);
        a.issue(2, 0, 0x40, 32);
        let mut b = SmTracer::new(&cfg());
        b.issue(1, 0, 0x40, 16);
        b.stall_begin(0, 1);
        b.stall_end(9, 1);
        c.absorb_aggregates(0, &a);
        c.absorb_aggregates(1, &b);
        let r = c.finish(10, 2);
        assert_eq!(r.pc_issues.get(&0x40), Some(&3));
        assert_eq!(r.warp_stalls.get(&(1, 1)), Some(&9));
    }
}
