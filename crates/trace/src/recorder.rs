//! Per-SM event recorder and the serial collector that merges them.

use crate::accounting::NUM_CATEGORIES;
use crate::config::TraceConfig;
use crate::event::{Event, EventKind, NO_WARP};
use crate::export::{chrome_counter_tail, chrome_event_chunk, chrome_header, TraceReport};
use crate::rt_analytics::NUM_RT_SERIES;
use crate::sampler::{IntervalRecord, IntervalSnapshot};
use std::collections::{BTreeMap, VecDeque};
use std::io::{Seek as _, SeekFrom, Write as _};

/// The per-SM recorder. Lives behind an `Option<Box<SmTracer>>` on each SM
/// so a disabled run pays exactly one null check per hook site; all state
/// is SM-local, which is what makes tracing safe inside phase A of the
/// parallel engine.
#[derive(Clone, Debug)]
pub struct SmTracer {
    // Events staged since the last phase-B drain.
    staged: Vec<Event>,
    // Bounded ring of the most recent events (the flight recorder).
    flight: VecDeque<Event>,
    flight_depth: usize,
    // Open memory-stall spans: warp -> stall-begin cycle.
    stall_since: BTreeMap<u32, u64>,
    // Aggregates for the hotspot summary.
    pc_issues: BTreeMap<u32, u64>,
    warp_stall_cycles: BTreeMap<u32, u64>,
    // Per-warp RT traversal-latency aggregate: warp -> (jobs, Σ latency).
    // Fed from `RtFinish` events so the hotspot summary survives event
    // caps and streaming flushes.
    rt_warp_latency: BTreeMap<u32, (u64, u64)>,
    // Edge detector for the RT-busy span.
    rt_busy: bool,
    // Open SM-wide interconnect-backpressure span: stall-begin cycle.
    icnt_stall_since: Option<u64>,
}

impl SmTracer {
    /// Creates an empty recorder with the given flight-ring depth.
    pub fn new(config: &TraceConfig) -> Self {
        SmTracer {
            staged: Vec::new(),
            flight: VecDeque::new(),
            flight_depth: config.effective_flight_depth(),
            stall_since: BTreeMap::new(),
            pc_issues: BTreeMap::new(),
            warp_stall_cycles: BTreeMap::new(),
            rt_warp_latency: BTreeMap::new(),
            rt_busy: false,
            icnt_stall_since: None,
        }
    }

    /// Records a raw event.
    pub fn record(&mut self, cycle: u64, warp: u32, kind: EventKind) {
        if let EventKind::RtFinish { latency } = kind {
            let agg = self.rt_warp_latency.entry(warp).or_insert((0, 0));
            agg.0 += 1;
            agg.1 += latency;
        }
        let ev = Event { cycle, warp, kind };
        self.staged.push(ev);
        if self.flight.len() >= self.flight_depth {
            self.flight.pop_front();
        }
        self.flight.push_back(ev);
    }

    /// Records an instruction issue and feeds the hottest-PC aggregate.
    pub fn issue(&mut self, cycle: u64, warp: u32, pc: u32, lanes: u32) {
        *self.pc_issues.entry(pc).or_insert(0) += 1;
        self.record(cycle, warp, EventKind::Issue { pc, lanes });
    }

    /// Opens a memory-stall span for `warp` (idempotent while open).
    pub fn stall_begin(&mut self, cycle: u64, warp: u32) {
        if let std::collections::btree_map::Entry::Vacant(e) = self.stall_since.entry(warp) {
            e.insert(cycle);
            self.record(cycle, warp, EventKind::StallBegin);
        }
    }

    /// Closes the memory-stall span for `warp`, if one is open.
    pub fn stall_end(&mut self, cycle: u64, warp: u32) {
        if let Some(since) = self.stall_since.remove(&warp) {
            let cycles = cycle.saturating_sub(since);
            *self.warp_stall_cycles.entry(warp).or_insert(0) += cycles;
            self.record(cycle, warp, EventKind::StallEnd { cycles });
        }
    }

    /// Edge-detects the RT unit's busy state into a begin/end span.
    pub fn rt_busy_edge(&mut self, cycle: u64, busy: bool) {
        if busy != self.rt_busy {
            self.rt_busy = busy;
            let kind = if busy {
                EventKind::RtBusyBegin
            } else {
                EventKind::RtBusyEnd
            };
            self.record(cycle, NO_WARP, kind);
        }
    }

    /// Edge-detects the SM's interconnect-backpressure state into an
    /// SM-wide begin/end span (the issue stage is stalled while the
    /// bounded interconnect refuses the SM's backlog).
    pub fn icnt_stall_edge(&mut self, cycle: u64, blocked: bool) {
        match (self.icnt_stall_since, blocked) {
            (None, true) => {
                self.icnt_stall_since = Some(cycle);
                self.record(cycle, NO_WARP, EventKind::IcntStallBegin);
            }
            (Some(since), false) => {
                self.icnt_stall_since = None;
                let cycles = cycle.saturating_sub(since);
                self.record(cycle, NO_WARP, EventKind::IcntStallEnd { cycles });
            }
            _ => {}
        }
    }

    /// Closes every open span at end of run so exported B/E pairs match.
    pub fn finalize(&mut self, cycle: u64) {
        let open: Vec<u32> = self.stall_since.keys().copied().collect();
        for warp in open {
            self.stall_end(cycle, warp);
        }
        self.rt_busy_edge(cycle, false);
        self.icnt_stall_edge(cycle, false);
    }

    /// The flight-recorder ring, oldest first.
    pub fn flight(&self) -> impl Iterator<Item = &Event> {
        self.flight.iter()
    }

    /// Serializes the recorder for a machine-state checkpoint. Checkpoints
    /// are taken at cycle boundaries, after phase B drained `staged`, but
    /// the staged buffer is encoded anyway so the codec has no implicit
    /// precondition. All maps are `BTreeMap`s, so the encoding is
    /// deterministic.
    pub fn save(&self, e: &mut vksim_snapshot::Enc) {
        e.seq(self.staged.len());
        for ev in &self.staged {
            ev.save(e);
        }
        e.seq(self.flight.len());
        for ev in &self.flight {
            ev.save(e);
        }
        e.usize(self.flight_depth);
        e.seq(self.stall_since.len());
        for (&warp, &since) in &self.stall_since {
            e.u32(warp);
            e.u64(since);
        }
        e.seq(self.pc_issues.len());
        for (&pc, &n) in &self.pc_issues {
            e.u32(pc);
            e.u64(n);
        }
        e.seq(self.warp_stall_cycles.len());
        for (&warp, &n) in &self.warp_stall_cycles {
            e.u32(warp);
            e.u64(n);
        }
        e.bool(self.rt_busy);
        e.opt_u64(self.icnt_stall_since);
        e.seq(self.rt_warp_latency.len());
        for (&warp, &(jobs, cycles)) in &self.rt_warp_latency {
            e.u32(warp);
            e.u64(jobs);
            e.u64(cycles);
        }
    }

    /// Restores a recorder written by [`SmTracer::save`].
    ///
    /// # Errors
    ///
    /// Propagates decoder errors on truncated or malformed payloads.
    pub fn load(d: &mut vksim_snapshot::Dec<'_>) -> Result<Self, vksim_snapshot::SnapError> {
        let n = d.seq()?;
        let mut staged = Vec::with_capacity(n);
        for _ in 0..n {
            staged.push(Event::load(d)?);
        }
        let n = d.seq()?;
        let mut flight = VecDeque::with_capacity(n);
        for _ in 0..n {
            flight.push_back(Event::load(d)?);
        }
        let flight_depth = d.usize()?;
        let mut stall_since = BTreeMap::new();
        for _ in 0..d.seq()? {
            let warp = d.u32()?;
            stall_since.insert(warp, d.u64()?);
        }
        let mut pc_issues = BTreeMap::new();
        for _ in 0..d.seq()? {
            let pc = d.u32()?;
            pc_issues.insert(pc, d.u64()?);
        }
        let mut warp_stall_cycles = BTreeMap::new();
        for _ in 0..d.seq()? {
            let warp = d.u32()?;
            warp_stall_cycles.insert(warp, d.u64()?);
        }
        let rt_busy = d.bool()?;
        let icnt_stall_since = d.opt_u64()?;
        let mut rt_warp_latency = BTreeMap::new();
        for _ in 0..d.seq()? {
            let warp = d.u32()?;
            let jobs = d.u64()?;
            rt_warp_latency.insert(warp, (jobs, d.u64()?));
        }
        Ok(SmTracer {
            staged,
            flight,
            flight_depth,
            stall_since,
            pc_issues,
            warp_stall_cycles,
            rt_warp_latency,
            rt_busy,
            icnt_stall_since,
        })
    }

    /// Events staged since the last drain (for tests).
    pub fn staged_len(&self) -> usize {
        self.staged.len()
    }
}

/// The streaming Chrome-trace writer: when the config names an `out`
/// file, completed event chunks are appended to it at interval
/// boundaries instead of accumulating in RAM for the whole run. The file
/// is built from the same pieces as the one-shot
/// [`crate::chrome_trace_json`] export, so the streamed bytes are
/// identical. Any IO failure is a warning: the collector falls back to
/// accumulating and retries once at end of run.
#[derive(Debug)]
struct EventStream {
    /// Lazily created at the first flush (a fresh stream truncates the
    /// file; a checkpoint-restored one reopens and truncates to the
    /// saved offset instead).
    file: Option<std::fs::File>,
    path: String,
    /// Whether the array header + process metadata have been written.
    header_written: bool,
    /// Events already flushed to the file.
    flushed: u64,
    /// Current file length in bytes — saved into checkpoints so a resume
    /// can truncate away everything the killed run wrote afterwards.
    bytes: u64,
    /// A write failed; stop flushing (end-of-run finalize retries once).
    failed: bool,
}

/// The stream a fresh collector starts with: present exactly when
/// tracing is enabled with an `out` file.
fn fresh_stream(config: &TraceConfig) -> Option<EventStream> {
    let path = config.out.clone()?;
    config.enabled.then(|| EventStream {
        file: None,
        path,
        header_written: false,
        flushed: 0,
        bytes: 0,
        failed: false,
    })
}

/// Rebuilds a checkpointed stream on resume: reopens the `out` file and
/// truncates it to the saved byte offset (discarding everything the
/// killed run streamed after the checkpoint). A reopen failure is a
/// warning; the stream is marked failed so the stale file is neither
/// appended to nor clobbered.
fn reopen_stream(
    config: &TraceConfig,
    header_written: bool,
    flushed: u64,
    bytes: u64,
) -> Option<EventStream> {
    let path = config.out.clone()?;
    if !config.enabled {
        return None;
    }
    let mut stream = EventStream {
        file: None,
        path,
        header_written,
        flushed,
        bytes,
        failed: false,
    };
    if !header_written {
        // Nothing reached the file before the checkpoint: behave like a
        // fresh stream (first flush creates and truncates).
        return Some(stream);
    }
    let reopened = std::fs::OpenOptions::new()
        .write(true)
        .open(&stream.path)
        .and_then(|mut f| {
            f.set_len(bytes)?;
            f.seek(SeekFrom::Start(bytes))?;
            Ok(f)
        });
    match reopened {
        Ok(f) => stream.file = Some(f),
        Err(e) => {
            stream.failed = true;
            eprintln!(
                "vksim: cannot reopen streamed trace {} on resume ({e}); \
                 the trace file will not be continued",
                stream.path
            );
        }
    }
    Some(stream)
}

/// The serial merge point: phase B drains every SM's staged events — in
/// SM-id order — into one collector, samples the interval series, and at
/// end of run folds everything into a [`TraceReport`].
#[derive(Debug)]
pub struct TraceCollector {
    config: TraceConfig,
    num_sms: u32,
    stream: Option<EventStream>,
    events: Vec<(u32, Event)>,
    dropped: u64,
    intervals: Vec<IntervalRecord>,
    last_snapshot: IntervalSnapshot,
    interval_start: u64,
    sampler_underflows: u64,
    pc_issues: BTreeMap<u32, u64>,
    warp_stalls: BTreeMap<(u32, u32), u64>,
    // Cumulative merged cycle-accounting totals, sampled at the interval
    // boundaries; empty unless accounting rides along with tracing.
    prof_series: Vec<(u64, [u64; NUM_CATEGORIES])>,
    // Cumulative merged RT-analytics series, sampled at the interval
    // boundaries; empty unless RT analytics rides along with tracing.
    rt_series: Vec<(u64, [u64; NUM_RT_SERIES])>,
    // (sm, warp) -> (traversal jobs, Σ resident latency).
    rt_warp_latency: BTreeMap<(u32, u32), (u64, u64)>,
}

impl TraceCollector {
    /// Creates an empty collector for a machine with `num_sms` SMs. When
    /// the config names an `out` file, the collector streams event
    /// chunks to it at interval boundaries instead of holding the whole
    /// run in RAM.
    pub fn new(config: TraceConfig, num_sms: u32) -> Self {
        let stream = fresh_stream(&config);
        TraceCollector {
            config,
            num_sms,
            stream,
            events: Vec::new(),
            dropped: 0,
            intervals: Vec::new(),
            last_snapshot: IntervalSnapshot::default(),
            interval_start: 0,
            sampler_underflows: 0,
            pc_issues: BTreeMap::new(),
            warp_stalls: BTreeMap::new(),
            prof_series: Vec::new(),
            rt_series: Vec::new(),
            rt_warp_latency: BTreeMap::new(),
        }
    }

    /// The interval-sampler period.
    pub fn interval(&self) -> u64 {
        self.config.effective_interval()
    }

    fn push(&mut self, sm: u32, ev: Event) {
        // The cap bounds the *total* event stream — flushed chunks
        // included — so a streamed trace records exactly the events a
        // one-shot export would.
        let flushed = self.stream.as_ref().map_or(0, |s| s.flushed);
        if flushed + self.events.len() as u64 >= self.config.max_events as u64 {
            self.dropped += 1;
        } else {
            self.events.push((sm, ev));
        }
    }

    /// Drains one SM's staged events. Must be called in SM-id order each
    /// cycle (phase B) to keep the merged stream thread-count invariant.
    pub fn drain_sm(&mut self, sm: u32, tracer: &mut SmTracer) {
        for ev in std::mem::take(&mut tracer.staged) {
            self.push(sm, ev);
        }
    }

    /// Appends shared-backend events under the pseudo-process `sm` id
    /// (callers pass `num_sms`). Only called from serial phase-B code.
    pub fn push_mem_events(&mut self, sm: u32, events: impl IntoIterator<Item = Event>) {
        for ev in events {
            self.push(sm, ev);
        }
    }

    /// Records one interval sample: `snapshot` holds *cumulative* raw
    /// counters as of `cycle`; the collector stores the delta. A counter
    /// that went backwards is an engine bug: debug builds assert, release
    /// builds tally it under [`TraceCollector::sampler_underflows`] (the
    /// engine surfaces the tally as `trace.sampler_underflow`).
    pub fn sample(&mut self, cycle: u64, snapshot: IntervalSnapshot) {
        let len = cycle.saturating_sub(self.interval_start);
        if len == 0 {
            return;
        }
        let (delta, underflows) = snapshot.delta_from(&self.last_snapshot);
        debug_assert_eq!(
            underflows, 0,
            "non-monotonic interval counter at cycle {cycle}: {:?} -> {snapshot:?}",
            self.last_snapshot
        );
        self.sampler_underflows += underflows;
        self.intervals.push(IntervalRecord {
            start: self.interval_start,
            len,
            delta,
        });
        self.last_snapshot = snapshot;
        self.interval_start = cycle;
        // The interval boundary is the streaming flush point: every event
        // recorded so far is complete (phase B already drained this
        // cycle), so the chunk can leave RAM.
        self.flush_stream();
    }

    /// Appends the accumulated event chunk to the stream file, creating
    /// it (with the array header) on the first flush. On success the
    /// chunk leaves RAM; on failure the collector warns once and keeps
    /// accumulating (end-of-run finalize retries).
    fn flush_stream(&mut self) {
        let Some(s) = self.stream.as_mut() else {
            return;
        };
        if s.failed || (self.events.is_empty() && s.header_written) {
            return;
        }
        let mut chunk = String::new();
        if !s.header_written {
            chunk.push_str(&chrome_header(self.num_sms));
        }
        chrome_event_chunk(&mut chunk, &self.events);
        let res = match &mut s.file {
            Some(f) => f.write_all(chunk.as_bytes()),
            none => std::fs::File::create(&s.path).and_then(|mut f| {
                f.write_all(chunk.as_bytes())?;
                *none = Some(f);
                Ok(())
            }),
        };
        match res {
            Ok(()) => {
                s.header_written = true;
                s.flushed += self.events.len() as u64;
                s.bytes += chunk.len() as u64;
                self.events.clear();
            }
            Err(e) => {
                s.failed = true;
                eprintln!(
                    "vksim: streaming trace write to {} failed ({e}); \
                     accumulating in memory and retrying at end of run",
                    s.path
                );
            }
        }
    }

    /// Fields observed going backwards across all samples so far (0 on a
    /// healthy run).
    pub fn sampler_underflows(&self) -> u64 {
        self.sampler_underflows
    }

    /// Records one cycle-accounting sample: `totals` holds *cumulative*
    /// per-category cycles merged across all SMs as of `cycle`. Sampled
    /// at the same interval boundaries as [`TraceCollector::sample`];
    /// a stale or duplicate cycle is ignored so the end-of-run tail
    /// sample cannot double-record an interval boundary.
    pub fn sample_prof(&mut self, cycle: u64, totals: [u64; NUM_CATEGORIES]) {
        if self.prof_series.last().is_some_and(|&(c, _)| c >= cycle) {
            return;
        }
        self.prof_series.push((cycle, totals));
    }

    /// Records one RT-analytics sample: `totals` holds *cumulative*
    /// trace-warp / lane-step / warp-step / RT-unit-step counts merged
    /// across all SMs as of `cycle`. Same interval boundaries and stale-
    /// cycle dedup as [`TraceCollector::sample_prof`].
    pub fn sample_rt(&mut self, cycle: u64, totals: [u64; NUM_RT_SERIES]) {
        if self.rt_series.last().is_some_and(|&(c, _)| c >= cycle) {
            return;
        }
        self.rt_series.push((cycle, totals));
    }

    /// Folds one SM's summary aggregates in (call once, at end of run).
    pub fn absorb_aggregates(&mut self, sm: u32, tracer: &SmTracer) {
        for (&pc, &n) in &tracer.pc_issues {
            *self.pc_issues.entry(pc).or_insert(0) += n;
        }
        for (&warp, &n) in &tracer.warp_stall_cycles {
            *self.warp_stalls.entry((sm, warp)).or_insert(0) += n;
        }
        for (&warp, &(jobs, cycles)) in &tracer.rt_warp_latency {
            let agg = self.rt_warp_latency.entry((sm, warp)).or_insert((0, 0));
            agg.0 += jobs;
            agg.1 += cycles;
        }
    }

    /// Serializes the collector's dynamic state (everything except the
    /// [`TraceConfig`], which the resuming run supplies) for a
    /// machine-state checkpoint. The interval-sampler cursor —
    /// `last_snapshot` + `interval_start` — rides along, which is what
    /// keeps a resumed run from re-emitting the last interval row or
    /// differencing against a zeroed baseline.
    pub fn save(&self, e: &mut vksim_snapshot::Enc) {
        e.seq(self.events.len());
        for (sm, ev) in &self.events {
            e.u32(*sm);
            ev.save(e);
        }
        e.u64(self.dropped);
        e.seq(self.intervals.len());
        for rec in &self.intervals {
            rec.save(e);
        }
        self.last_snapshot.save(e);
        e.u64(self.interval_start);
        e.u64(self.sampler_underflows);
        e.seq(self.pc_issues.len());
        for (&pc, &n) in &self.pc_issues {
            e.u32(pc);
            e.u64(n);
        }
        e.seq(self.warp_stalls.len());
        for (&(sm, warp), &n) in &self.warp_stalls {
            e.u32(sm);
            e.u32(warp);
            e.u64(n);
        }
        e.seq(self.prof_series.len());
        for (cycle, totals) in &self.prof_series {
            e.u64(*cycle);
            for &t in totals {
                e.u64(t);
            }
        }
        e.seq(self.rt_series.len());
        for (cycle, totals) in &self.rt_series {
            e.u64(*cycle);
            for &t in totals {
                e.u64(t);
            }
        }
        e.seq(self.rt_warp_latency.len());
        for (&(sm, warp), &(jobs, cycles)) in &self.rt_warp_latency {
            e.u32(sm);
            e.u32(warp);
            e.u64(jobs);
            e.u64(cycles);
        }
        // Streaming cursor: the flushed-event count and the file byte
        // offset as of this checkpoint, so a resume can truncate away
        // whatever the killed run streamed afterwards and continue the
        // file byte-identically.
        match &self.stream {
            None => e.bool(false),
            Some(s) => {
                e.bool(true);
                e.bool(s.header_written);
                e.u64(s.flushed);
                e.u64(s.bytes);
            }
        }
    }

    /// Restores a collector written by [`TraceCollector::save`] under the
    /// resuming run's `config`. When the snapshot carries a streaming
    /// cursor and the resuming config still names an `out` file, that
    /// file is reopened and truncated to the saved byte offset so the
    /// resumed stream continues byte-identically.
    ///
    /// # Errors
    ///
    /// Propagates decoder errors on truncated or malformed payloads.
    pub fn load(
        config: TraceConfig,
        num_sms: u32,
        d: &mut vksim_snapshot::Dec<'_>,
    ) -> Result<Self, vksim_snapshot::SnapError> {
        let n = d.seq()?;
        let mut events = Vec::with_capacity(n);
        for _ in 0..n {
            let sm = d.u32()?;
            events.push((sm, Event::load(d)?));
        }
        let dropped = d.u64()?;
        let n = d.seq()?;
        let mut intervals = Vec::with_capacity(n);
        for _ in 0..n {
            intervals.push(IntervalRecord::load(d)?);
        }
        let last_snapshot = IntervalSnapshot::load(d)?;
        let interval_start = d.u64()?;
        let sampler_underflows = d.u64()?;
        let mut pc_issues = BTreeMap::new();
        for _ in 0..d.seq()? {
            let pc = d.u32()?;
            pc_issues.insert(pc, d.u64()?);
        }
        let mut warp_stalls = BTreeMap::new();
        for _ in 0..d.seq()? {
            let sm = d.u32()?;
            let warp = d.u32()?;
            warp_stalls.insert((sm, warp), d.u64()?);
        }
        let n = d.seq()?;
        let mut prof_series = Vec::with_capacity(n);
        for _ in 0..n {
            let cycle = d.u64()?;
            let mut totals = [0u64; NUM_CATEGORIES];
            for t in &mut totals {
                *t = d.u64()?;
            }
            prof_series.push((cycle, totals));
        }
        let n = d.seq()?;
        let mut rt_series = Vec::with_capacity(n);
        for _ in 0..n {
            let cycle = d.u64()?;
            let mut totals = [0u64; NUM_RT_SERIES];
            for t in &mut totals {
                *t = d.u64()?;
            }
            rt_series.push((cycle, totals));
        }
        let mut rt_warp_latency = BTreeMap::new();
        for _ in 0..d.seq()? {
            let sm = d.u32()?;
            let warp = d.u32()?;
            let jobs = d.u64()?;
            rt_warp_latency.insert((sm, warp), (jobs, d.u64()?));
        }
        let stream = if d.bool()? {
            let header_written = d.bool()?;
            let flushed = d.u64()?;
            let bytes = d.u64()?;
            reopen_stream(&config, header_written, flushed, bytes)
        } else {
            // The checkpointed run did not stream (no `out` file); the
            // resuming run starts a fresh stream if its config asks for
            // one.
            fresh_stream(&config)
        };
        Ok(TraceCollector {
            config,
            num_sms,
            stream,
            events,
            dropped,
            intervals,
            last_snapshot,
            interval_start,
            sampler_underflows,
            pc_issues,
            warp_stalls,
            prof_series,
            rt_series,
            rt_warp_latency,
        })
    }

    /// Finishes collection into an exportable report. When a stream is
    /// active, the remaining event chunk, the counter series and the
    /// array footer are appended to the `out` file here — completing a
    /// file byte-identical to a one-shot [`crate::chrome_trace_json`]
    /// export — and the report is marked `streamed` so the one-shot
    /// exporter leaves the file alone.
    pub fn finish(mut self, final_cycle: u64, num_sms: u32) -> TraceReport {
        let stream = self.stream.take();
        let mut report = TraceReport {
            num_sms,
            final_cycle,
            interval: self.config.effective_interval(),
            events: self.events,
            intervals: self.intervals,
            dropped: self.dropped,
            pc_issues: self.pc_issues,
            warp_stalls: self.warp_stalls,
            prof_series: self.prof_series,
            rt_series: self.rt_series,
            rt_warp_latency: self.rt_warp_latency,
            flushed: stream.as_ref().map_or(0, |s| s.flushed),
            streamed: false,
            config: self.config,
        };
        if let Some(mut s) = stream {
            if s.file.is_none() && s.header_written {
                // A resume could not reopen the file (already warned);
                // leave it untouched rather than clobber it with a
                // partial one-shot export.
                report.streamed = true;
                return report;
            }
            if s.failed {
                // A mid-run flush failed partway; rewind to the last
                // known-good offset before the retry below.
                if let Some(f) = &mut s.file {
                    let _ = f.set_len(s.bytes);
                    let _ = f.seek(SeekFrom::Start(s.bytes));
                }
            }
            let mut chunk = String::new();
            if !s.header_written {
                chunk.push_str(&chrome_header(report.num_sms));
            }
            chrome_event_chunk(&mut chunk, &report.events);
            chunk.push_str(&chrome_counter_tail(&report));
            let res = match &mut s.file {
                Some(f) => f.write_all(chunk.as_bytes()),
                none => std::fs::File::create(&s.path).and_then(|mut f| {
                    f.write_all(chunk.as_bytes())?;
                    *none = Some(f);
                    Ok(())
                }),
            };
            match res {
                Ok(()) => report.streamed = true,
                Err(e) => {
                    // With a flushed prefix the file cannot be rebuilt
                    // from RAM; claim it so the one-shot exporter does
                    // not overwrite it with a tail-only trace. With
                    // nothing flushed, fall through to the one-shot
                    // path, which still has every event.
                    report.streamed = s.flushed > 0;
                    eprintln!("vksim: failed to finalize streamed trace {} ({e})", s.path);
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TraceConfig {
        TraceConfig {
            enabled: true,
            ..Default::default()
        }
    }

    #[test]
    fn stall_spans_pair_and_accumulate() {
        let mut t = SmTracer::new(&cfg());
        t.stall_begin(10, 3);
        t.stall_begin(12, 3); // idempotent while open
        t.stall_end(25, 3);
        t.stall_end(26, 3); // no open span: no event
        t.stall_begin(30, 3);
        t.finalize(40);
        let kinds: Vec<EventKind> = t.flight().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::StallBegin,
                EventKind::StallEnd { cycles: 15 },
                EventKind::StallBegin,
                EventKind::StallEnd { cycles: 10 },
            ]
        );
        assert_eq!(t.warp_stall_cycles.get(&3), Some(&25));
    }

    #[test]
    fn icnt_stall_spans_pair_and_close_at_finalize() {
        let mut t = SmTracer::new(&cfg());
        t.icnt_stall_edge(5, true);
        t.icnt_stall_edge(6, true); // idempotent while open
        t.icnt_stall_edge(9, false);
        t.icnt_stall_edge(10, false); // no open span: no event
        t.icnt_stall_edge(12, true);
        t.finalize(20);
        let kinds: Vec<EventKind> = t.flight().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::IcntStallBegin,
                EventKind::IcntStallEnd { cycles: 4 },
                EventKind::IcntStallBegin,
                EventKind::IcntStallEnd { cycles: 8 },
            ]
        );
        assert!(t.flight().all(|e| e.warp == NO_WARP), "SM-wide span");
    }

    #[test]
    fn healthy_sampler_reports_zero_underflows() {
        let mut c = TraceCollector::new(cfg(), 1);
        c.sample(
            100,
            IntervalSnapshot {
                issued_insts: 10,
                ..Default::default()
            },
        );
        c.sample(
            200,
            IntervalSnapshot {
                issued_insts: 30,
                ..Default::default()
            },
        );
        assert_eq!(c.sampler_underflows(), 0);
    }

    #[test]
    fn rt_busy_edges_only_on_transitions() {
        let mut t = SmTracer::new(&cfg());
        t.rt_busy_edge(1, false);
        t.rt_busy_edge(2, true);
        t.rt_busy_edge(3, true);
        t.rt_busy_edge(7, false);
        assert_eq!(t.staged_len(), 2);
    }

    #[test]
    fn flight_ring_is_bounded() {
        let mut t = SmTracer::new(&TraceConfig {
            enabled: true,
            flight_depth: 4,
            ..Default::default()
        });
        for i in 0..10 {
            t.record(i, 0, EventKind::Retire);
        }
        let cycles: Vec<u64> = t.flight().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![6, 7, 8, 9]);
    }

    #[test]
    fn collector_caps_events_and_counts_drops() {
        let mut c = TraceCollector::new(
            TraceConfig {
                enabled: true,
                max_events: 3,
                ..Default::default()
            },
            1,
        );
        let mut t = SmTracer::new(&cfg());
        for i in 0..5 {
            t.record(i, 0, EventKind::Retire);
        }
        c.drain_sm(0, &mut t);
        assert_eq!(t.staged_len(), 0);
        let r = c.finish(100, 1);
        assert_eq!(r.events.len(), 3);
        assert_eq!(r.dropped, 2);
    }

    #[test]
    fn sampler_stores_deltas_not_cumulatives() {
        let mut c = TraceCollector::new(cfg(), 1);
        c.sample(
            1000,
            IntervalSnapshot {
                issued_insts: 500,
                ..Default::default()
            },
        );
        c.sample(
            2000,
            IntervalSnapshot {
                issued_insts: 800,
                ..Default::default()
            },
        );
        c.sample(2000, IntervalSnapshot::default()); // zero-length: ignored
        let r = c.finish(2000, 1);
        assert_eq!(r.intervals.len(), 2);
        assert_eq!(r.intervals[0].delta.issued_insts, 500);
        assert_eq!(r.intervals[1].delta.issued_insts, 300);
        assert_eq!(r.intervals[1].start, 1000);
        assert_eq!(r.intervals[1].len, 1000);
    }

    #[test]
    fn tracer_and_collector_snapshot_round_trip() {
        let mut t = SmTracer::new(&cfg());
        t.issue(5, 2, 0x80, 32);
        t.stall_begin(6, 1);
        t.rt_busy_edge(7, true);
        t.icnt_stall_edge(8, true);
        let mut c = TraceCollector::new(cfg(), 1);
        c.sample(
            100,
            IntervalSnapshot {
                issued_insts: 12,
                ..Default::default()
            },
        );
        c.drain_sm(0, &mut t);
        // Round-trip the tracer, open spans and all.
        let mut e = vksim_snapshot::Enc::new();
        t.save(&mut e);
        let bytes = e.into_bytes();
        let mut back = SmTracer::load(&mut vksim_snapshot::Dec::new(&bytes)).unwrap();
        assert_eq!(back.stall_since, t.stall_since);
        assert_eq!(back.rt_busy, t.rt_busy);
        assert_eq!(back.icnt_stall_since, t.icnt_stall_since);
        let mut e2 = vksim_snapshot::Enc::new();
        back.save(&mut e2);
        assert_eq!(e2.into_bytes(), bytes, "re-encoding is byte-idempotent");
        // The restored tracer closes its open spans exactly like the
        // original would.
        back.finalize(20);
        t.finalize(20);
        assert_eq!(back.warp_stall_cycles, t.warp_stall_cycles);
        // Round-trip the collector; the sampler cursor must survive so the
        // next sample differences against the right baseline.
        let mut e = vksim_snapshot::Enc::new();
        c.save(&mut e);
        let bytes = e.into_bytes();
        let mut back =
            TraceCollector::load(cfg(), 1, &mut vksim_snapshot::Dec::new(&bytes)).unwrap();
        assert_eq!(back.interval_start, 100);
        assert_eq!(back.last_snapshot.issued_insts, 12);
        back.sample(
            200,
            IntervalSnapshot {
                issued_insts: 30,
                ..Default::default()
            },
        );
        let r = back.finish(200, 1);
        assert_eq!(r.intervals.len(), 2, "no duplicate rows after restore");
        assert_eq!(r.intervals[1].delta.issued_insts, 18);
        assert_eq!(r.events.len(), 4);
    }

    #[test]
    fn prof_series_dedups_and_round_trips() {
        let mut c = TraceCollector::new(cfg(), 1);
        let mut a = [0u64; NUM_CATEGORIES];
        a[0] = 3;
        c.sample_prof(100, a);
        c.sample_prof(100, a); // duplicate cycle: ignored
        c.sample_prof(50, a); // stale cycle: ignored
        let mut b = a;
        b[0] = 7;
        c.sample_prof(200, b);
        let mut e = vksim_snapshot::Enc::new();
        c.save(&mut e);
        let bytes = e.into_bytes();
        let mut d = vksim_snapshot::Dec::new(&bytes);
        let back = TraceCollector::load(cfg(), 1, &mut d).unwrap();
        d.finish().unwrap();
        let r = back.finish(200, 1);
        assert_eq!(r.prof_series, vec![(100, a), (200, b)]);
    }

    #[test]
    fn streamed_file_matches_one_shot_export() {
        let path = std::env::temp_dir().join(format!("vksim-stream-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let stream_cfg = TraceConfig {
            enabled: true,
            out: Some(path.to_string_lossy().into_owned()),
            ..Default::default()
        };
        let mut streamed = TraceCollector::new(stream_cfg, 2);
        let mut plain = TraceCollector::new(cfg(), 2);
        let snap = |n: u64| IntervalSnapshot {
            issued_insts: n * 10,
            ..Default::default()
        };
        // Identical event/sample sequences; only the streamed collector
        // flushes chunks to disk at each boundary.
        for round in 0..3u64 {
            let events: Vec<Event> = (0..4)
                .map(|i| Event {
                    cycle: round * 100 + i,
                    warp: 0,
                    kind: EventKind::Retire,
                })
                .collect();
            streamed.push_mem_events(round as u32 % 2, events.clone());
            plain.push_mem_events(round as u32 % 2, events);
            streamed.sample((round + 1) * 100, snap(round + 1));
            plain.sample((round + 1) * 100, snap(round + 1));
        }
        let sr = streamed.finish(300, 2);
        let pr = plain.finish(300, 2);
        assert!(sr.streamed, "stream claimed the file");
        assert!(!pr.streamed, "no out file, no stream");
        assert_eq!(sr.flushed, 12, "all three chunks left RAM");
        assert!(sr.events.is_empty());
        let file = std::fs::read_to_string(&path).expect("streamed file written");
        assert_eq!(
            file,
            crate::export::chrome_trace_json(&pr),
            "streamed bytes identical to the one-shot export"
        );
        assert_eq!(
            crate::export::hotspot_summary(&sr, 5),
            crate::export::hotspot_summary(&pr, 5),
            "summary counts flushed events"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stream_cursor_resumes_after_truncation() {
        let path =
            std::env::temp_dir().join(format!("vksim-stream-resume-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let stream_cfg = || TraceConfig {
            enabled: true,
            out: Some(path.to_string_lossy().into_owned()),
            ..Default::default()
        };
        let ev = |cycle| Event {
            cycle,
            warp: 0,
            kind: EventKind::Retire,
        };
        // Reference: one uninterrupted streamed run.
        let mut reference = TraceCollector::new(stream_cfg(), 1);
        reference.push_mem_events(0, (0..4).map(ev));
        reference.sample(
            100,
            IntervalSnapshot {
                issued_insts: 10,
                ..Default::default()
            },
        );
        reference.push_mem_events(0, (100..103).map(ev));
        let _ = reference.finish(200, 1);
        let want = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        // Interrupted: checkpoint after the first flush, keep streaming
        // (the doomed run writes more), then resume from the checkpoint
        // — the reopen must truncate the extra bytes away.
        let mut doomed = TraceCollector::new(stream_cfg(), 1);
        doomed.push_mem_events(0, (0..4).map(ev));
        doomed.sample(
            100,
            IntervalSnapshot {
                issued_insts: 10,
                ..Default::default()
            },
        );
        let mut e = vksim_snapshot::Enc::new();
        doomed.save(&mut e);
        let bytes = e.into_bytes();
        doomed.push_mem_events(0, (500..520).map(ev));
        let _ = doomed.finish(999, 1); // the killed run even finalized
        let mut d = vksim_snapshot::Dec::new(&bytes);
        let mut resumed = TraceCollector::load(stream_cfg(), 1, &mut d).unwrap();
        d.finish().unwrap();
        resumed.push_mem_events(0, (100..103).map(ev));
        let report = resumed.finish(200, 1);
        assert!(report.streamed);
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            want,
            "resumed stream continues the file byte-identically"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn aggregates_merge_across_sms() {
        let mut c = TraceCollector::new(cfg(), 1);
        let mut a = SmTracer::new(&cfg());
        a.issue(1, 0, 0x40, 32);
        a.issue(2, 0, 0x40, 32);
        let mut b = SmTracer::new(&cfg());
        b.issue(1, 0, 0x40, 16);
        b.stall_begin(0, 1);
        b.stall_end(9, 1);
        c.absorb_aggregates(0, &a);
        c.absorb_aggregates(1, &b);
        let r = c.finish(10, 2);
        assert_eq!(r.pc_issues.get(&0x40), Some(&3));
        assert_eq!(r.warp_stalls.get(&(1, 1)), Some(&9));
    }
}
