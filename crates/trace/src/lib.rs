//! Cycle-level observability for the timing model.
//!
//! Aggregate end-of-run counters (`vksim-stats`) answer *how much*; this
//! crate answers *when*. It provides three layers, all off by default and
//! allocation-free when disabled:
//!
//! * an **event recorder** ([`SmTracer`]) — per-SM buffers of timeline
//!   events keyed by `(cycle, sm, warp, unit)`: warp issue/stall/retire,
//!   SIMT divergence/reconvergence, RT-unit traversal start/finish, MSHR
//!   allocate/fill, DRAM row activates;
//! * an **interval metrics sampler** ([`IntervalSnapshot`] /
//!   [`IntervalRecord`]) — cumulative raw counters snapshotted every
//!   `VKSIM_TRACE_INTERVAL` cycles and differenced into a time series
//!   (IPC, L1/L2 hit rate, RT occupancy, DRAM bandwidth per interval);
//! * a **cycle-accounting profiler** ([`CycleAccounting`] /
//!   [`ProfReport`]) — every SM cycle attributed to exactly one
//!   [`CycleCategory`], conservation-checked, with integer-exact
//!   per-warp occupancy tallies (`VKSIM_PROF`);
//! * **exporters** — Chrome trace-event JSON loadable in Perfetto
//!   ([`chrome_trace_json`]), flat CSV for the interval series
//!   ([`interval_csv`]), per-category accounting counter tracks on the
//!   Chrome trace, and a human-readable top-N hotspot summary
//!   ([`hotspot_summary`]).
//!
//! Determinism contract: SMs record into SM-local [`SmTracer`]s during
//! phase A of the two-phase cycle engine; the coordinator drains them into
//! one [`TraceCollector`] in SM-id order during phase B. Shared-backend
//! events (DRAM row activates) only occur in phase B, which is serial. The
//! merged event stream — and therefore the exported trace — is identical
//! at any `VKSIM_THREADS`.
//!
//! The crate is dependency-free by design: it sits below every timing
//! crate in the workspace graph so `vksim-gpu`, `vksim-mem`, `vksim-rtunit`
//! and `vksim-core` can all hook into it without cycles.

mod accounting;
mod config;
mod event;
mod export;
mod recorder;
pub mod rt_analytics;
mod sampler;

pub use accounting::{CycleAccounting, CycleCategory, ProfReport, NUM_CATEGORIES};
pub use config::{TraceConfig, DEFAULT_FLIGHT_DEPTH, DEFAULT_INTERVAL, DEFAULT_MAX_EVENTS};
pub use event::{Event, EventKind, NO_WARP};
pub use export::{
    chrome_trace_json, hotspot_summary, interval_csv, TraceReport, ICNT_STALL_TID, PROF_TID, RT_TID,
};
pub use recorder::{SmTracer, TraceCollector};
pub use rt_analytics::{
    RayHistogram, RtReport, RtSmAnalytics, TraversalAnalytics, WarpCoherence, NUM_RT_SERIES,
    RAY_HIST_BUCKETS, WARP_OCC_BUCKETS,
};
pub use sampler::{IntervalRecord, IntervalSnapshot};
