//! The timeline event model.

/// Warp field value for events not attributable to a warp (RT-unit memory
/// traffic, DRAM row activates).
pub const NO_WARP: u32 = u32::MAX;

/// One timeline event. The SM id is implicit — events live in per-SM
/// buffers and are tagged with their SM when merged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Core cycle the event occurred on.
    pub cycle: u64,
    /// Warp id within the SM, or [`NO_WARP`].
    pub warp: u32,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Serializes one event for a machine-state snapshot.
    pub fn save(&self, e: &mut vksim_snapshot::Enc) {
        e.u64(self.cycle);
        e.u32(self.warp);
        self.kind.save(e);
    }

    /// Restores an event written by [`Event::save`].
    ///
    /// # Errors
    ///
    /// Propagates decoder errors on truncated or malformed payloads.
    pub fn load(d: &mut vksim_snapshot::Dec<'_>) -> Result<Self, vksim_snapshot::SnapError> {
        Ok(Event {
            cycle: d.u64()?,
            warp: d.u32()?,
            kind: EventKind::load(d)?,
        })
    }
}

/// Event payloads. Span begin/end pairs (`StallBegin`/`StallEnd`,
/// `RtBusyBegin`/`RtBusyEnd`) are always properly nested per track; the
/// recorder closes open spans at end of run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A warp issued an instruction.
    Issue {
        /// Program counter of the issued instruction.
        pc: u32,
        /// Active lanes in the issue mask.
        lanes: u32,
    },
    /// A warp began stalling on memory.
    StallBegin,
    /// The stall ended; `cycles` is the stall length.
    StallEnd {
        /// Stall duration in cycles.
        cycles: u64,
    },
    /// A warp retired (all contexts exited).
    Retire,
    /// A branch split the active mask.
    Diverge {
        /// PC of the divergent branch.
        pc: u32,
    },
    /// A reconvergence point merged paths.
    Reconverge {
        /// PC of the reconvergence instruction.
        pc: u32,
    },
    /// The SM's RT unit went from idle to busy.
    RtBusyBegin,
    /// The SM's RT unit drained back to idle.
    RtBusyEnd,
    /// A warp's traversal job entered the RT unit.
    RtStart,
    /// A warp's traversal job completed after `latency` resident cycles.
    RtFinish {
        /// Resident latency in cycles.
        latency: u64,
    },
    /// An L1/RTC MSHR entry was allocated for a missing line.
    MshrAlloc {
        /// Line address.
        line: u64,
        /// Memory partition the line's fill is routed to.
        partition: u32,
    },
    /// A fill returned and released the MSHR entry.
    MshrFill {
        /// Line address.
        line: u64,
        /// Memory partition the fill came from.
        partition: u32,
    },
    /// A DRAM bank opened a row.
    DramRowActivate {
        /// Memory partition owning the channel.
        partition: u32,
        /// Global channel index (partition base + channel within the
        /// partition's group).
        channel: u32,
        /// Bank index within the channel.
        bank: u32,
    },
    /// The SM's issue stage stalled because the bounded interconnect
    /// refused a request (SM-wide: tagged [`NO_WARP`]).
    IcntStallBegin,
    /// The interconnect accepted the SM's backlog again; `cycles` is the
    /// stall length.
    IcntStallEnd {
        /// Stall duration in cycles.
        cycles: u64,
    },
}

impl EventKind {
    /// Stable numeric code for flat (post-mortem dump) encoding.
    pub fn code(&self) -> u64 {
        match self {
            EventKind::Issue { .. } => 0,
            EventKind::StallBegin => 1,
            EventKind::StallEnd { .. } => 2,
            EventKind::Retire => 3,
            EventKind::Diverge { .. } => 4,
            EventKind::Reconverge { .. } => 5,
            EventKind::RtBusyBegin => 6,
            EventKind::RtBusyEnd => 7,
            EventKind::RtStart => 8,
            EventKind::RtFinish { .. } => 9,
            EventKind::MshrAlloc { .. } => 10,
            EventKind::MshrFill { .. } => 11,
            EventKind::DramRowActivate { .. } => 12,
            EventKind::IcntStallBegin => 13,
            EventKind::IcntStallEnd { .. } => 14,
        }
    }

    /// Human-readable name (Chrome trace event name).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Issue { .. } => "issue",
            EventKind::StallBegin | EventKind::StallEnd { .. } => "stall",
            EventKind::Retire => "retire",
            EventKind::Diverge { .. } => "diverge",
            EventKind::Reconverge { .. } => "reconverge",
            EventKind::RtBusyBegin | EventKind::RtBusyEnd => "rt_busy",
            EventKind::RtStart => "rt_start",
            EventKind::RtFinish { .. } => "traversal",
            EventKind::MshrAlloc { .. } => "mshr_alloc",
            EventKind::MshrFill { .. } => "mshr_fill",
            EventKind::DramRowActivate { .. } => "row_activate",
            EventKind::IcntStallBegin | EventKind::IcntStallEnd { .. } => "icnt_stall",
        }
    }

    /// Serializes the kind losslessly (unlike [`EventKind::args`], which
    /// flattens payloads) using [`EventKind::code`] as the variant tag.
    pub fn save(&self, e: &mut vksim_snapshot::Enc) {
        e.u8(self.code() as u8);
        match *self {
            EventKind::Issue { pc, lanes } => {
                e.u32(pc);
                e.u32(lanes);
            }
            EventKind::StallEnd { cycles } | EventKind::IcntStallEnd { cycles } => e.u64(cycles),
            EventKind::Diverge { pc } | EventKind::Reconverge { pc } => e.u32(pc),
            EventKind::RtFinish { latency } => e.u64(latency),
            EventKind::MshrAlloc { line, partition } | EventKind::MshrFill { line, partition } => {
                e.u64(line);
                e.u32(partition);
            }
            EventKind::DramRowActivate {
                partition,
                channel,
                bank,
            } => {
                e.u32(partition);
                e.u32(channel);
                e.u32(bank);
            }
            EventKind::StallBegin
            | EventKind::Retire
            | EventKind::RtBusyBegin
            | EventKind::RtBusyEnd
            | EventKind::RtStart
            | EventKind::IcntStallBegin => {}
        }
    }

    /// Restores a kind written by [`EventKind::save`].
    ///
    /// # Errors
    ///
    /// An unknown variant tag is malformed.
    pub fn load(d: &mut vksim_snapshot::Dec<'_>) -> Result<Self, vksim_snapshot::SnapError> {
        Ok(match d.u8()? {
            0 => EventKind::Issue {
                pc: d.u32()?,
                lanes: d.u32()?,
            },
            1 => EventKind::StallBegin,
            2 => EventKind::StallEnd { cycles: d.u64()? },
            3 => EventKind::Retire,
            4 => EventKind::Diverge { pc: d.u32()? },
            5 => EventKind::Reconverge { pc: d.u32()? },
            6 => EventKind::RtBusyBegin,
            7 => EventKind::RtBusyEnd,
            8 => EventKind::RtStart,
            9 => EventKind::RtFinish { latency: d.u64()? },
            10 => EventKind::MshrAlloc {
                line: d.u64()?,
                partition: d.u32()?,
            },
            11 => EventKind::MshrFill {
                line: d.u64()?,
                partition: d.u32()?,
            },
            12 => EventKind::DramRowActivate {
                partition: d.u32()?,
                channel: d.u32()?,
                bank: d.u32()?,
            },
            13 => EventKind::IcntStallBegin,
            14 => EventKind::IcntStallEnd { cycles: d.u64()? },
            t => {
                return Err(vksim_snapshot::SnapError::Malformed(format!(
                    "event kind tag {t}"
                )))
            }
        })
    }

    /// The two payload words for flat encoding (unused slots are 0).
    pub fn args(&self) -> (u64, u64) {
        match *self {
            EventKind::Issue { pc, lanes } => (pc as u64, lanes as u64),
            EventKind::StallEnd { cycles } => (cycles, 0),
            EventKind::Diverge { pc } | EventKind::Reconverge { pc } => (pc as u64, 0),
            EventKind::RtFinish { latency } => (latency, 0),
            EventKind::MshrAlloc { line, partition } | EventKind::MshrFill { line, partition } => {
                (line, partition as u64)
            }
            EventKind::DramRowActivate {
                partition,
                channel,
                bank,
            } => (((partition as u64) << 32) | channel as u64, bank as u64),
            EventKind::IcntStallEnd { cycles } => (cycles, 0),
            EventKind::StallBegin
            | EventKind::Retire
            | EventKind::RtBusyBegin
            | EventKind::RtBusyEnd
            | EventKind::RtStart
            | EventKind::IcntStallBegin => (0, 0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_distinct_and_stable() {
        let kinds = [
            EventKind::Issue { pc: 1, lanes: 2 },
            EventKind::StallBegin,
            EventKind::StallEnd { cycles: 3 },
            EventKind::Retire,
            EventKind::Diverge { pc: 4 },
            EventKind::Reconverge { pc: 5 },
            EventKind::RtBusyBegin,
            EventKind::RtBusyEnd,
            EventKind::RtStart,
            EventKind::RtFinish { latency: 6 },
            EventKind::MshrAlloc {
                line: 7,
                partition: 0,
            },
            EventKind::MshrFill {
                line: 8,
                partition: 1,
            },
            EventKind::DramRowActivate {
                partition: 0,
                channel: 1,
                bank: 2,
            },
            EventKind::IcntStallBegin,
            EventKind::IcntStallEnd { cycles: 9 },
        ];
        let codes: std::collections::BTreeSet<u64> = kinds.iter().map(|k| k.code()).collect();
        assert_eq!(codes.len(), kinds.len());
        assert_eq!(codes.iter().copied().max(), Some(14));
    }

    #[test]
    fn args_round_payloads() {
        assert_eq!(EventKind::Issue { pc: 9, lanes: 32 }.args(), (9, 32));
        assert_eq!(EventKind::StallEnd { cycles: 77 }.args(), (77, 0));
        assert_eq!(
            EventKind::DramRowActivate {
                partition: 2,
                channel: 3,
                bank: 5
            }
            .args(),
            ((2 << 32) | 3, 5)
        );
        assert_eq!(
            EventKind::MshrAlloc {
                line: 0x1240,
                partition: 6
            }
            .args(),
            (0x1240, 6)
        );
        assert_eq!(EventKind::Retire.args(), (0, 0));
    }
}
