//! Trace configuration and environment-variable plumbing.

/// Default interval-sampler period in cycles.
pub const DEFAULT_INTERVAL: u64 = 1024;

/// Default flight-recorder depth (events kept per SM for post-mortems).
pub const DEFAULT_FLIGHT_DEPTH: usize = 64;

/// Default cap on total collected timeline events; once reached, further
/// events are counted in `dropped` instead of growing memory unboundedly.
pub const DEFAULT_MAX_EVENTS: usize = 1 << 20;

/// What to trace and where to write it. Everything defaults to off so a
/// default-configured run records nothing and pays one branch per hook.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceConfig {
    /// Master switch: when `false`, no tracer is allocated at all.
    pub enabled: bool,
    /// Chrome trace-event JSON output path (Perfetto-loadable).
    pub out: Option<String>,
    /// Interval-series CSV output path.
    pub csv: Option<String>,
    /// Top-N hotspot summary output path.
    pub summary: Option<String>,
    /// Interval-sampler period in cycles (0 is treated as the default).
    pub interval: u64,
    /// Flight-recorder ring depth per SM.
    pub flight_depth: usize,
    /// Cap on total collected timeline events.
    pub max_events: usize,
    /// Cycle-accounting switch, independent of `enabled`: when `true`,
    /// every SM carries a `CycleAccounting` recorder and attributes each
    /// cycle to one taxonomy category.
    pub accounting: bool,
    /// Flat-JSON cycle-breakdown output path (`-` writes to stderr).
    pub prof: Option<String>,
    /// Ray-traversal analytics switch, independent of `enabled`: when
    /// `true`, the runtime records per-node visit heatmaps and per-ray
    /// histograms, and every SM carries a warp-coherence recorder.
    pub rt_analytics: bool,
    /// Flat-JSON rt-analytics breakdown output path (`-` writes to stderr).
    pub rt: Option<String>,
    /// Per-node heatmap CSV output path.
    pub rt_heatmap: Option<String>,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            enabled: false,
            out: None,
            csv: None,
            summary: None,
            interval: DEFAULT_INTERVAL,
            flight_depth: DEFAULT_FLIGHT_DEPTH,
            max_events: DEFAULT_MAX_EVENTS,
            accounting: false,
            prof: None,
            rt_analytics: false,
            rt: None,
            rt_heatmap: None,
        }
    }
}

impl TraceConfig {
    /// Returns this config with environment overrides applied:
    ///
    /// * `VKSIM_TRACE=out.json` — enable tracing and write the Chrome
    ///   trace there;
    /// * `VKSIM_TRACE_INTERVAL=N` — interval-sampler period;
    /// * `VKSIM_TRACE_CSV=path` — interval series CSV;
    /// * `VKSIM_TRACE_SUMMARY=path` — hotspot summary;
    /// * `VKSIM_PROF=out.json` — enable cycle accounting and write the
    ///   flat-JSON breakdown there (`-` for stderr). Does **not** enable
    ///   event tracing.
    /// * `VKSIM_RT_ANALYTICS=out.json` — enable ray-traversal analytics
    ///   and write the flat-JSON breakdown there (`-` for stderr). Does
    ///   **not** enable event tracing.
    /// * `VKSIM_RT_HEATMAP=path.csv` — enable ray-traversal analytics and
    ///   write the per-node heatmap CSV there.
    ///
    /// Unset or unparsable variables leave the config field untouched, so
    /// explicitly-built configs keep working under a clean environment.
    pub fn with_env_overrides(&self) -> TraceConfig {
        let mut cfg = self.clone();
        if let Ok(path) = std::env::var("VKSIM_TRACE") {
            if !path.is_empty() {
                cfg.enabled = true;
                cfg.out = Some(path);
            }
        }
        if let Some(n) = parse_env_u64("VKSIM_TRACE_INTERVAL") {
            cfg.enabled = true;
            cfg.interval = n;
        }
        if let Ok(path) = std::env::var("VKSIM_TRACE_CSV") {
            if !path.is_empty() {
                cfg.enabled = true;
                cfg.csv = Some(path);
            }
        }
        if let Ok(path) = std::env::var("VKSIM_TRACE_SUMMARY") {
            if !path.is_empty() {
                cfg.enabled = true;
                cfg.summary = Some(path);
            }
        }
        if let Ok(path) = std::env::var("VKSIM_PROF") {
            if !path.is_empty() {
                cfg.accounting = true;
                cfg.prof = Some(path);
            }
        }
        if let Ok(path) = std::env::var("VKSIM_RT_ANALYTICS") {
            if !path.is_empty() {
                cfg.rt_analytics = true;
                cfg.rt = Some(path);
            }
        }
        if let Ok(path) = std::env::var("VKSIM_RT_HEATMAP") {
            if !path.is_empty() {
                cfg.rt_analytics = true;
                cfg.rt_heatmap = Some(path);
            }
        }
        cfg
    }

    /// The sampler period with the zero-means-default rule applied.
    pub fn effective_interval(&self) -> u64 {
        if self.interval == 0 {
            DEFAULT_INTERVAL
        } else {
            self.interval
        }
    }

    /// The flight depth with the zero-means-default rule applied.
    pub fn effective_flight_depth(&self) -> usize {
        if self.flight_depth == 0 {
            DEFAULT_FLIGHT_DEPTH
        } else {
            self.flight_depth
        }
    }

    /// `true` when any export file was requested.
    pub fn wants_export(&self) -> bool {
        self.out.is_some() || self.csv.is_some() || self.summary.is_some()
    }
}

fn parse_env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_fully_off() {
        let c = TraceConfig::default();
        assert!(!c.enabled);
        assert!(!c.wants_export());
        assert_eq!(c.effective_interval(), DEFAULT_INTERVAL);
    }

    #[test]
    fn zero_fields_fall_back_to_defaults() {
        let c = TraceConfig {
            interval: 0,
            flight_depth: 0,
            ..Default::default()
        };
        assert_eq!(c.effective_interval(), DEFAULT_INTERVAL);
        assert_eq!(c.effective_flight_depth(), DEFAULT_FLIGHT_DEPTH);
    }

    /// Single test touching the process environment — split tests would
    /// race each other through the shared environment.
    #[test]
    fn env_overrides_apply_and_clean_env_is_inert() {
        let base = TraceConfig::default();
        std::env::remove_var("VKSIM_TRACE");
        std::env::remove_var("VKSIM_TRACE_INTERVAL");
        std::env::remove_var("VKSIM_TRACE_CSV");
        std::env::remove_var("VKSIM_TRACE_SUMMARY");
        std::env::remove_var("VKSIM_PROF");
        std::env::remove_var("VKSIM_RT_ANALYTICS");
        std::env::remove_var("VKSIM_RT_HEATMAP");
        assert_eq!(base.with_env_overrides(), base);

        std::env::set_var("VKSIM_TRACE", "/tmp/t.json");
        std::env::set_var("VKSIM_TRACE_INTERVAL", "512");
        std::env::set_var("VKSIM_TRACE_CSV", "/tmp/t.csv");
        std::env::set_var("VKSIM_TRACE_SUMMARY", "/tmp/t.txt");
        let c = base.with_env_overrides();
        assert!(c.enabled);
        assert_eq!(c.out.as_deref(), Some("/tmp/t.json"));
        assert_eq!(c.interval, 512);
        assert_eq!(c.csv.as_deref(), Some("/tmp/t.csv"));
        assert_eq!(c.summary.as_deref(), Some("/tmp/t.txt"));
        assert!(!c.accounting, "tracing alone does not enable accounting");
        std::env::remove_var("VKSIM_TRACE");
        std::env::remove_var("VKSIM_TRACE_INTERVAL");
        std::env::remove_var("VKSIM_TRACE_CSV");
        std::env::remove_var("VKSIM_TRACE_SUMMARY");

        // VKSIM_PROF enables accounting without enabling event tracing.
        std::env::set_var("VKSIM_PROF", "/tmp/p.json");
        let c = base.with_env_overrides();
        assert!(!c.enabled);
        assert!(c.accounting);
        assert_eq!(c.prof.as_deref(), Some("/tmp/p.json"));
        std::env::remove_var("VKSIM_PROF");

        // Either RT knob enables rt analytics, never event tracing.
        std::env::set_var("VKSIM_RT_ANALYTICS", "/tmp/rt.json");
        std::env::set_var("VKSIM_RT_HEATMAP", "/tmp/rt.csv");
        let c = base.with_env_overrides();
        assert!(!c.enabled && !c.accounting);
        assert!(c.rt_analytics);
        assert_eq!(c.rt.as_deref(), Some("/tmp/rt.json"));
        assert_eq!(c.rt_heatmap.as_deref(), Some("/tmp/rt.csv"));
        std::env::remove_var("VKSIM_RT_ANALYTICS");
        std::env::set_var("VKSIM_RT_HEATMAP", "/tmp/rt2.csv");
        let c = base.with_env_overrides();
        assert!(c.rt_analytics && c.rt.is_none());
        assert_eq!(c.rt_heatmap.as_deref(), Some("/tmp/rt2.csv"));
        std::env::remove_var("VKSIM_RT_HEATMAP");
    }
}
