//! Exporters: Chrome trace-event JSON, interval CSV, hotspot summary.
//!
//! # Track model
//!
//! Each SM is one Chrome *process* (`pid` = SM id); the shared memory
//! system is one extra process (`pid` = `num_sms`). Within an SM process:
//!
//! * `tid 0` — the RT unit's busy span (`B`/`E` pairs);
//! * `tid warp+1` — per-warp instants (issue, retire, diverge,
//!   reconverge, RT enqueue, warp-attributed MSHR traffic) and the
//!   memory-stall span (`B`/`E` pairs);
//! * `tid 1_000_000 + warp` — RT traversal spans as complete (`X`)
//!   events, emitted at finish time with `ts = finish - latency`;
//! * `tid 2_000_000` — MSHR traffic not attributable to a warp (the RT
//!   unit's memory port);
//! * `tid 3_000_000` — the SM-wide interconnect-backpressure span
//!   (`B`/`E` pairs while the bounded icnt refuses the SM's requests).
//!
//! In the memory process, `tid` = DRAM channel for row-activate instants,
//! the interval series is appended as counter (`C`) events on
//! `tid 1_000_000`, and — when cycle accounting rides along — the
//! per-category accounting series (`acct_<category>`) as counter events
//! on `tid 4_000_000`. Timestamps are core cycles (Perfetto displays
//! them as microseconds; only relative scale matters).

use crate::accounting::{CycleCategory, NUM_CATEGORIES};
use crate::config::TraceConfig;
use crate::event::{Event, EventKind, NO_WARP};
use crate::rt_analytics::NUM_RT_SERIES;
use crate::sampler::IntervalRecord;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Thread-id offset for per-warp traversal tracks.
pub const TRAVERSAL_TID_BASE: u64 = 1_000_000;
/// Thread id for warp-less MSHR traffic.
pub const MSHR_TID: u64 = 2_000_000;
/// Thread id for the SM-wide interconnect-backpressure span.
pub const ICNT_STALL_TID: u64 = 3_000_000;
/// Thread id for interval counter events in the memory process.
pub const COUNTER_TID: u64 = 1_000_000;
/// Thread id for per-category cycle-accounting counter events in the
/// memory process.
pub const PROF_TID: u64 = 4_000_000;
/// Thread id for RT-analytics counter events in the memory process.
pub const RT_TID: u64 = 5_000_000;

/// Chrome counter-track names for the RT-analytics series, in the same
/// order as the `[u64; NUM_RT_SERIES]` samples.
const RT_SERIES_NAMES: [&str; NUM_RT_SERIES] = [
    "rt_trace_warps",
    "rt_lane_steps",
    "rt_warp_steps",
    "rt_unit_steps",
];

/// Everything collected over a run, ready for export.
#[derive(Clone, Debug)]
pub struct TraceReport {
    /// Number of SM processes; the memory pseudo-process is `num_sms`.
    pub num_sms: u32,
    /// Last simulated cycle.
    pub final_cycle: u64,
    /// Interval-sampler period used.
    pub interval: u64,
    /// Merged `(sm, event)` stream in deterministic drain order.
    pub events: Vec<(u32, Event)>,
    /// The interval time series.
    pub intervals: Vec<IntervalRecord>,
    /// Events discarded after the `max_events` cap was hit.
    pub dropped: u64,
    /// Issues per PC, merged across SMs.
    pub pc_issues: BTreeMap<u32, u64>,
    /// Stall cycles per `(sm, warp)`.
    pub warp_stalls: BTreeMap<(u32, u32), u64>,
    /// Cumulative merged cycle-accounting totals sampled at interval
    /// boundaries (empty unless accounting was enabled alongside
    /// tracing).
    pub prof_series: Vec<(u64, [u64; NUM_CATEGORIES])>,
    /// Cumulative merged RT-analytics series sampled at interval
    /// boundaries (empty unless RT analytics was enabled alongside
    /// tracing).
    pub rt_series: Vec<(u64, [u64; NUM_RT_SERIES])>,
    /// Traversal jobs and Σ resident latency per `(sm, warp)`.
    pub rt_warp_latency: BTreeMap<(u32, u32), (u64, u64)>,
    /// Events already flushed to the `out` file by the streaming exporter
    /// (and therefore absent from [`TraceReport::events`]); 0 on
    /// in-memory runs.
    pub flushed: u64,
    /// Whether the streaming exporter wrote (and finalized) the `out`
    /// file itself — when set, the one-shot export must not overwrite it.
    pub streamed: bool,
    /// The configuration the trace was collected under.
    pub config: TraceConfig,
}

/// Serializes the report as Chrome trace-event JSON (Perfetto-loadable).
/// Output is byte-deterministic for a fixed report.
///
/// Built from the same three pieces the streaming exporter writes
/// incrementally — [`chrome_header`], [`chrome_event_chunk`],
/// [`chrome_counter_tail`] — so a streamed file and a one-shot export of
/// the same event stream are byte-identical.
pub fn chrome_trace_json(report: &TraceReport) -> String {
    let mut out = chrome_header(report.num_sms);
    chrome_event_chunk(&mut out, &report.events);
    out.push_str(&chrome_counter_tail(report));
    out
}

/// The opening of the Chrome trace: the `traceEvents` array start plus
/// one process-name metadata record per SM and one for the memory
/// pseudo-process. At least one metadata record is always emitted, so
/// every subsequent record is `",\n"`-prefixed.
pub(crate) fn chrome_header(num_sms: u32) -> String {
    let mut out = String::with_capacity(64 * 1024);
    out.push_str("{\"traceEvents\":[\n");
    let mut first = true;
    for sm in 0..num_sms {
        meta(&mut out, &mut first, sm as u64, &format!("SM {sm}"));
    }
    meta(&mut out, &mut first, num_sms as u64, "Memory");
    out
}

/// Appends a chunk of timeline events (in deterministic drain order) to
/// a trace opened by [`chrome_header`].
pub(crate) fn chrome_event_chunk(out: &mut String, events: &[(u32, Event)]) {
    let mut first = false;
    for &(sm, ev) in events {
        emit_event(out, &mut first, sm as u64, ev);
    }
}

/// The closing of the Chrome trace: interval counter series, the
/// cycle-accounting and RT-analytics counter tracks, and the array
/// footer.
pub(crate) fn chrome_counter_tail(report: &TraceReport) -> String {
    let mut out = String::new();
    let mut first = false;
    // Interval counter series in the memory process.
    for rec in &report.intervals {
        for (name, value) in [
            ("ipc", rec.ipc()),
            ("l1_hit_rate", rec.l1_hit_rate()),
            ("l2_hit_rate", rec.l2_hit_rate()),
            ("dram_bw", rec.dram_bw()),
            ("rt_occupancy", rec.rt_occupancy()),
        ] {
            sep(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"name\":\"{name}\",\"ph\":\"C\",\"ts\":{},\"pid\":{},\"tid\":{COUNTER_TID},\"args\":{{\"value\":{value:.6}}}}}",
                rec.start, report.num_sms
            );
        }
    }
    // Per-category cycle-accounting counter tracks: each sample emits the
    // SM-cycles spent per category since the previous sample, stamped at
    // the start of its window.
    let mut prev_cycle = 0u64;
    let mut prev = [0u64; NUM_CATEGORIES];
    for &(cycle, totals) in &report.prof_series {
        for (i, cat) in CycleCategory::ALL.iter().enumerate() {
            let delta = totals[i].saturating_sub(prev[i]);
            sep(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"name\":\"acct_{}\",\"ph\":\"C\",\"ts\":{prev_cycle},\"pid\":{},\"tid\":{PROF_TID},\"args\":{{\"value\":{delta}}}}}",
                cat.name(),
                report.num_sms
            );
        }
        prev_cycle = cycle;
        prev = totals;
    }
    // RT-analytics counter tracks: per-window deltas of the traversal
    // coherence / RT-unit step series, stamped at the window start.
    let mut prev_cycle = 0u64;
    let mut prev = [0u64; NUM_RT_SERIES];
    for &(cycle, totals) in &report.rt_series {
        for (i, name) in RT_SERIES_NAMES.iter().enumerate() {
            let delta = totals[i].saturating_sub(prev[i]);
            sep(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"name\":\"{name}\",\"ph\":\"C\",\"ts\":{prev_cycle},\"pid\":{},\"tid\":{RT_TID},\"args\":{{\"value\":{delta}}}}}",
                report.num_sms
            );
        }
        prev_cycle = cycle;
        prev = totals;
    }
    out.push_str("\n]}\n");
    out
}

fn meta(out: &mut String, first: &mut bool, pid: u64, name: &str) {
    sep(out, first);
    let _ = write!(
        out,
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":\"{name}\"}}}}"
    );
}

fn sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push_str(",\n");
    }
}

fn emit_event(out: &mut String, first: &mut bool, sm: u64, ev: Event) {
    let name = ev.kind.name();
    let warp_tid = |w: u32| w as u64 + 1;
    sep(out, first);
    match ev.kind {
        EventKind::Issue { pc, lanes } => {
            let _ = write!(
                out,
                "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{sm},\"tid\":{},\"args\":{{\"pc\":{pc},\"lanes\":{lanes}}}}}",
                ev.cycle,
                warp_tid(ev.warp)
            );
        }
        EventKind::StallBegin => {
            let _ = write!(
                out,
                "{{\"name\":\"{name}\",\"ph\":\"B\",\"ts\":{},\"pid\":{sm},\"tid\":{}}}",
                ev.cycle,
                warp_tid(ev.warp)
            );
        }
        EventKind::StallEnd { cycles } => {
            let _ = write!(
                out,
                "{{\"name\":\"{name}\",\"ph\":\"E\",\"ts\":{},\"pid\":{sm},\"tid\":{},\"args\":{{\"cycles\":{cycles}}}}}",
                ev.cycle,
                warp_tid(ev.warp)
            );
        }
        EventKind::Retire => {
            let _ = write!(
                out,
                "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{sm},\"tid\":{}}}",
                ev.cycle,
                warp_tid(ev.warp)
            );
        }
        EventKind::Diverge { pc } | EventKind::Reconverge { pc } => {
            let _ = write!(
                out,
                "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{sm},\"tid\":{},\"args\":{{\"pc\":{pc}}}}}",
                ev.cycle,
                warp_tid(ev.warp)
            );
        }
        EventKind::RtBusyBegin => {
            let _ = write!(
                out,
                "{{\"name\":\"{name}\",\"ph\":\"B\",\"ts\":{},\"pid\":{sm},\"tid\":0}}",
                ev.cycle
            );
        }
        EventKind::RtBusyEnd => {
            let _ = write!(
                out,
                "{{\"name\":\"{name}\",\"ph\":\"E\",\"ts\":{},\"pid\":{sm},\"tid\":0}}",
                ev.cycle
            );
        }
        EventKind::RtStart => {
            let _ = write!(
                out,
                "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{sm},\"tid\":{}}}",
                ev.cycle,
                warp_tid(ev.warp)
            );
        }
        EventKind::RtFinish { latency } => {
            // A complete span on the warp's traversal track, ending now.
            let start = ev.cycle.saturating_sub(latency);
            let _ = write!(
                out,
                "{{\"name\":\"{name}\",\"ph\":\"X\",\"ts\":{start},\"dur\":{latency},\"pid\":{sm},\"tid\":{}}}",
                TRAVERSAL_TID_BASE + ev.warp as u64
            );
        }
        EventKind::MshrAlloc { line, partition } | EventKind::MshrFill { line, partition } => {
            let tid = if ev.warp == NO_WARP {
                MSHR_TID
            } else {
                warp_tid(ev.warp)
            };
            let _ = write!(
                out,
                "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{sm},\"tid\":{tid},\"args\":{{\"line\":{line},\"partition\":{partition}}}}}",
                ev.cycle
            );
        }
        EventKind::DramRowActivate {
            partition,
            channel,
            bank,
        } => {
            let _ = write!(
                out,
                "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{sm},\"tid\":{channel},\"args\":{{\"partition\":{partition},\"bank\":{bank}}}}}",
                ev.cycle
            );
        }
        EventKind::IcntStallBegin => {
            let _ = write!(
                out,
                "{{\"name\":\"{name}\",\"ph\":\"B\",\"ts\":{},\"pid\":{sm},\"tid\":{ICNT_STALL_TID}}}",
                ev.cycle
            );
        }
        EventKind::IcntStallEnd { cycles } => {
            let _ = write!(
                out,
                "{{\"name\":\"{name}\",\"ph\":\"E\",\"ts\":{},\"pid\":{sm},\"tid\":{ICNT_STALL_TID},\"args\":{{\"cycles\":{cycles}}}}}",
                ev.cycle
            );
        }
    }
}

/// Serializes the interval series as flat CSV (header + one row per
/// interval). Derived-metric columns use fixed 6-decimal formatting so
/// the file is byte-deterministic.
pub fn interval_csv(report: &TraceReport) -> String {
    let mut out = String::new();
    out.push_str(
        "start,len,issued_insts,ipc,l1_hits,l1_misses,l1_hit_rate,l2_hits,l2_misses,\
         l2_hit_rate,dram_reqs,dram_bw,rt_occupancy,rt_busy_cycles\n",
    );
    for r in &report.intervals {
        let d = &r.delta;
        let _ = writeln!(
            out,
            "{},{},{},{:.6},{},{},{:.6},{},{},{:.6},{},{:.6},{:.6},{}",
            r.start,
            r.len,
            d.issued_insts,
            r.ipc(),
            d.l1_hits,
            d.l1_misses,
            r.l1_hit_rate(),
            d.l2_hits,
            d.l2_misses,
            r.l2_hit_rate(),
            d.dram_reqs,
            r.dram_bw(),
            r.rt_occupancy(),
            d.rt_busy_cycles
        );
    }
    out
}

/// Renders a human-readable top-`n` hotspot summary: hottest PCs,
/// longest-stalled warps, and the worst RT-occupancy intervals among
/// intervals where the RT units were active at all.
pub fn hotspot_summary(report: &TraceReport, n: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== trace summary: {} cycles, {} SMs, {} events ({} dropped), {} intervals ===",
        report.final_cycle,
        report.num_sms,
        report.events.len() as u64 + report.flushed,
        report.dropped,
        report.intervals.len()
    );

    let _ = writeln!(out, "\nhottest PCs (by issued instructions):");
    let mut pcs: Vec<(u32, u64)> = report.pc_issues.iter().map(|(&pc, &c)| (pc, c)).collect();
    pcs.sort_by_key(|&(pc, c)| (std::cmp::Reverse(c), pc));
    for (pc, count) in pcs.iter().take(n) {
        let _ = writeln!(out, "  pc {pc:>6}  {count:>10} issues");
    }

    let _ = writeln!(out, "\nlongest-stalled warps (memory stall cycles):");
    let mut stalls: Vec<((u32, u32), u64)> =
        report.warp_stalls.iter().map(|(&k, &v)| (k, v)).collect();
    stalls.sort_by_key(|&(k, v)| (std::cmp::Reverse(v), k));
    for ((sm, warp), cycles) in stalls.iter().take(n) {
        let _ = writeln!(out, "  sm {sm:>2} warp {warp:>3}  {cycles:>10} cycles");
    }

    if !report.rt_warp_latency.is_empty() {
        let _ = writeln!(out, "\ntop traversal-latency warps (RT resident cycles):");
        let mut lat: Vec<((u32, u32), (u64, u64))> = report
            .rt_warp_latency
            .iter()
            .map(|(&k, &v)| (k, v))
            .collect();
        lat.sort_by_key(|&(k, (_, cycles))| (std::cmp::Reverse(cycles), k));
        for ((sm, warp), (jobs, cycles)) in lat.iter().take(n) {
            let _ = writeln!(
                out,
                "  sm {sm:>2} warp {warp:>3}  {cycles:>10} cycles over {jobs:>5} jobs"
            );
        }

        let _ = writeln!(out, "\nbusiest RT units (traversal jobs per SM):");
        let mut per_sm: BTreeMap<u32, (u64, u64)> = BTreeMap::new();
        for (&(sm, _), &(jobs, cycles)) in &report.rt_warp_latency {
            let agg = per_sm.entry(sm).or_insert((0, 0));
            agg.0 += jobs;
            agg.1 += cycles;
        }
        let mut units: Vec<(u32, (u64, u64))> = per_sm.into_iter().collect();
        units.sort_by_key(|&(sm, (jobs, _))| (std::cmp::Reverse(jobs), sm));
        for (sm, (jobs, cycles)) in units.iter().take(n) {
            let _ = writeln!(
                out,
                "  sm {sm:>2}  {jobs:>8} jobs  {cycles:>12} resident cycles"
            );
        }
    }

    let _ = writeln!(out, "\nworst RT-occupancy intervals (RT active only):");
    let mut active: Vec<&IntervalRecord> = report
        .intervals
        .iter()
        .filter(|r| r.delta.rt_busy_cycles > 0)
        .collect();
    active.sort_by(|a, b| {
        a.rt_occupancy()
            .partial_cmp(&b.rt_occupancy())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.start.cmp(&b.start))
    });
    for r in active.iter().take(n) {
        let _ = writeln!(
            out,
            "  [{:>8}, {:>8})  occupancy {:>8.3}  ipc {:>7.3}",
            r.start,
            r.start + r.len,
            r.rt_occupancy(),
            r.ipc()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::IntervalSnapshot;

    fn tiny_report() -> TraceReport {
        let events = vec![
            (
                0,
                Event {
                    cycle: 1,
                    warp: 0,
                    kind: EventKind::Issue { pc: 4, lanes: 32 },
                },
            ),
            (
                0,
                Event {
                    cycle: 2,
                    warp: 0,
                    kind: EventKind::StallBegin,
                },
            ),
            (
                0,
                Event {
                    cycle: 9,
                    warp: 0,
                    kind: EventKind::StallEnd { cycles: 7 },
                },
            ),
            (
                1,
                Event {
                    cycle: 3,
                    warp: NO_WARP,
                    kind: EventKind::RtBusyBegin,
                },
            ),
            (
                1,
                Event {
                    cycle: 8,
                    warp: NO_WARP,
                    kind: EventKind::RtBusyEnd,
                },
            ),
            (
                1,
                Event {
                    cycle: 8,
                    warp: 2,
                    kind: EventKind::RtFinish { latency: 5 },
                },
            ),
            (
                0,
                Event {
                    cycle: 4,
                    warp: NO_WARP,
                    kind: EventKind::IcntStallBegin,
                },
            ),
            (
                0,
                Event {
                    cycle: 7,
                    warp: NO_WARP,
                    kind: EventKind::IcntStallEnd { cycles: 3 },
                },
            ),
            (
                2,
                Event {
                    cycle: 6,
                    warp: NO_WARP,
                    kind: EventKind::DramRowActivate {
                        partition: 0,
                        channel: 1,
                        bank: 3,
                    },
                },
            ),
        ];
        let mut pc_issues = BTreeMap::new();
        pc_issues.insert(4, 1);
        let mut warp_stalls = BTreeMap::new();
        warp_stalls.insert((0, 0), 7);
        TraceReport {
            num_sms: 2,
            final_cycle: 10,
            interval: 4,
            events,
            intervals: vec![IntervalRecord {
                start: 0,
                len: 4,
                delta: IntervalSnapshot {
                    issued_insts: 8,
                    rt_busy_cycles: 2,
                    rt_resident_warp_cycles: 4,
                    ..Default::default()
                },
            }],
            dropped: 0,
            pc_issues,
            warp_stalls,
            prof_series: Vec::new(),
            rt_series: Vec::new(),
            rt_warp_latency: BTreeMap::new(),
            flushed: 0,
            streamed: false,
            config: TraceConfig::default(),
        }
    }

    #[test]
    fn one_shot_export_equals_streamed_pieces() {
        let r = tiny_report();
        let mut streamed = chrome_header(r.num_sms);
        // Flush the events in three uneven chunks, as the streaming
        // exporter would at interval boundaries.
        chrome_event_chunk(&mut streamed, &r.events[..2]);
        chrome_event_chunk(&mut streamed, &r.events[2..2]);
        chrome_event_chunk(&mut streamed, &r.events[2..]);
        streamed.push_str(&chrome_counter_tail(&r));
        assert_eq!(streamed, chrome_trace_json(&r), "chunking is invisible");
    }

    #[test]
    fn chrome_json_has_metadata_and_balanced_spans() {
        let json = chrome_trace_json(&tiny_report());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"SM 0\""));
        assert!(json.contains("\"name\":\"SM 1\""));
        assert!(json.contains("\"name\":\"Memory\""));
        assert_eq!(
            json.matches("\"ph\":\"B\"").count(),
            json.matches("\"ph\":\"E\"").count()
        );
        // The icnt-backpressure span lands on its dedicated SM track.
        assert!(json.contains(&format!(
            "\"name\":\"icnt_stall\",\"ph\":\"B\",\"ts\":4,\"pid\":0,\"tid\":{ICNT_STALL_TID}"
        )));
        // The traversal span lands on the offset track with ts = finish-latency.
        assert!(json.contains(&format!(
            "\"ts\":3,\"dur\":5,\"pid\":1,\"tid\":{}",
            TRAVERSAL_TID_BASE + 2
        )));
        // Counters present for the sampled interval.
        assert!(json.contains("\"name\":\"ipc\""));
        assert!(json.contains("\"value\":2.000000"));
    }

    #[test]
    fn accounting_counter_tracks_emit_deltas() {
        let mut r = tiny_report();
        let mut a = [0u64; NUM_CATEGORIES];
        a[CycleCategory::Issued as usize] = 5;
        a[CycleCategory::MemStall as usize] = 3;
        let mut b = a;
        b[CycleCategory::Issued as usize] = 9;
        b[CycleCategory::Drained as usize] = 4;
        r.prof_series = vec![(4, a), (8, b)];
        let json = chrome_trace_json(&r);
        // First window [0,4): cumulative == delta, stamped at ts 0.
        assert!(json.contains(&format!(
            "\"name\":\"acct_issued\",\"ph\":\"C\",\"ts\":0,\"pid\":2,\"tid\":{PROF_TID},\"args\":{{\"value\":5}}"
        )));
        // Second window [4,8): deltas, stamped at ts 4.
        assert!(json.contains(&format!(
            "\"name\":\"acct_issued\",\"ph\":\"C\",\"ts\":4,\"pid\":2,\"tid\":{PROF_TID},\"args\":{{\"value\":4}}"
        )));
        assert!(json.contains(&format!(
            "\"name\":\"acct_drained\",\"ph\":\"C\",\"ts\":4,\"pid\":2,\"tid\":{PROF_TID},\"args\":{{\"value\":4}}"
        )));
        // A report without a prof series emits no accounting tracks.
        assert!(!chrome_trace_json(&tiny_report()).contains("acct_"));
    }

    #[test]
    fn rt_counter_tracks_emit_deltas() {
        let mut r = tiny_report();
        r.rt_series = vec![(4, [2, 60, 5, 30]), (8, [3, 100, 9, 64])];
        let json = chrome_trace_json(&r);
        // First window [0,4): cumulative == delta, stamped at ts 0.
        assert!(json.contains(&format!(
            "\"name\":\"rt_trace_warps\",\"ph\":\"C\",\"ts\":0,\"pid\":2,\"tid\":{RT_TID},\"args\":{{\"value\":2}}"
        )));
        // Second window [4,8): deltas, stamped at ts 4.
        assert!(json.contains(&format!(
            "\"name\":\"rt_lane_steps\",\"ph\":\"C\",\"ts\":4,\"pid\":2,\"tid\":{RT_TID},\"args\":{{\"value\":40}}"
        )));
        assert!(json.contains(&format!(
            "\"name\":\"rt_unit_steps\",\"ph\":\"C\",\"ts\":4,\"pid\":2,\"tid\":{RT_TID},\"args\":{{\"value\":34}}"
        )));
        // A report without an RT series emits no RT counter tracks.
        assert!(!chrome_trace_json(&tiny_report()).contains("rt_trace_warps"));
    }

    #[test]
    fn summary_lists_rt_hotspots_only_when_present() {
        let plain = hotspot_summary(&tiny_report(), 5);
        assert!(!plain.contains("top traversal-latency warps"));
        let mut r = tiny_report();
        r.rt_warp_latency.insert((0, 3), (2, 900));
        r.rt_warp_latency.insert((1, 7), (5, 1400));
        let s = hotspot_summary(&r, 5);
        assert!(s.contains("top traversal-latency warps"));
        assert!(s.contains("sm  1 warp   7        1400 cycles over     5 jobs"));
        assert!(s.contains("busiest RT units"));
        assert!(s.contains("sm  1         5 jobs          1400 resident cycles"));
    }

    #[test]
    fn chrome_json_is_deterministic() {
        let r = tiny_report();
        assert_eq!(chrome_trace_json(&r), chrome_trace_json(&r));
    }

    #[test]
    fn csv_has_header_and_one_row_per_interval() {
        let csv = interval_csv(&tiny_report());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("start,len,issued_insts,ipc"));
        assert!(lines[1].starts_with("0,4,8,2.000000"));
    }

    #[test]
    fn summary_lists_hotspots() {
        let s = hotspot_summary(&tiny_report(), 5);
        assert!(s.contains("hottest PCs"));
        assert!(s.contains("pc      4"));
        assert!(s.contains("sm  0 warp   0"));
        assert!(s.contains("worst RT-occupancy"));
        assert!(s.contains("occupancy"));
    }
}
