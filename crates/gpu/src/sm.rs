//! Streaming multiprocessor model.
//!
//! Each SM holds resident warps, schedules one instruction per cycle with a
//! greedy-then-oldest warp scheduler, executes lanes functionally through
//! the ISA interpreter, and charges timing per instruction class: ALU
//! (pipelined, 1-cycle issue), SFU (blocking latency), memory (coalesced
//! 32 B chunks through the L1 and the shared backend), and `traverseAS`
//! (warp handed to the RT unit).

use crate::config::{DivergenceMode, GpuConfig};
use crate::simt::{CtxOutcome, Mask, SimtEngine};
use crate::{ScriptSource, WARP_SIZE};
use std::collections::{BTreeMap, HashMap};
use vksim_fault::SimError;
use vksim_isa::interp::{exec_at, Effect, RtHooks, ThreadState};
use vksim_isa::op::MemSpace;
use vksim_isa::{MemIo, Program};
use vksim_mem::{
    chunk_addresses, partition_of, AccessKind, Cache, CacheOutcome, MemRequest, MemSink,
};
use vksim_rtunit::{RtMem, RtMemResult, RtUnit, RtUnitEventKind, WarpJob};
use vksim_stats::Counters;
use vksim_trace::{
    CycleAccounting, CycleCategory, EventKind, SmTracer, TraceConfig, WarpCoherence, NO_WARP,
};

/// Hooks the GPU needs from the simulator core: the RT functional runtime
/// plus the recorded traversal scripts.
pub trait GpuHooks: RtHooks + ScriptSource {}
impl<T: RtHooks + ScriptSource> GpuHooks for T {}

#[derive(Clone, Debug, Default)]
struct CtxState {
    status: CtxStatus,
    retry_chunks: Vec<u64>,
    pending_rt_job: Option<WarpJob>,
}

impl CtxState {
    fn save(&self, e: &mut vksim_snapshot::Enc) {
        // Status codes match the post-mortem encoding in `Sm::post_mortem`.
        match self.status {
            CtxStatus::Ready => e.u8(0),
            CtxStatus::OpUntil(t) => {
                e.u8(1);
                e.u64(t);
            }
            CtxStatus::WaitMem { outstanding } => {
                e.u8(2);
                e.u32(outstanding);
            }
            CtxStatus::RtPending => e.u8(3),
            CtxStatus::InRt => e.u8(4),
        }
        e.seq(self.retry_chunks.len());
        for &c in &self.retry_chunks {
            e.u64(c);
        }
        match &self.pending_rt_job {
            None => e.u8(0),
            Some(job) => {
                e.u8(1);
                job.save(e);
            }
        }
    }

    fn load(d: &mut vksim_snapshot::Dec<'_>) -> Result<Self, vksim_snapshot::SnapError> {
        let status = match d.u8()? {
            0 => CtxStatus::Ready,
            1 => CtxStatus::OpUntil(d.u64()?),
            2 => CtxStatus::WaitMem {
                outstanding: d.u32()?,
            },
            3 => CtxStatus::RtPending,
            4 => CtxStatus::InRt,
            t => {
                return Err(vksim_snapshot::SnapError::Malformed(format!(
                    "ctx status tag {t}"
                )))
            }
        };
        let n = d.seq()?;
        let mut retry_chunks = Vec::with_capacity(n);
        for _ in 0..n {
            retry_chunks.push(d.u64()?);
        }
        let pending_rt_job = match d.u8()? {
            0 => None,
            1 => Some(WarpJob::load(d)?),
            t => {
                return Err(vksim_snapshot::SnapError::Malformed(format!(
                    "pending rt job tag {t}"
                )))
            }
        };
        Ok(CtxState {
            status,
            retry_chunks,
            pending_rt_job,
        })
    }
}

#[derive(Clone, Debug, Default, PartialEq)]
enum CtxStatus {
    #[default]
    Ready,
    /// Busy in an execution unit until the given cycle.
    OpUntil(u64),
    /// Waiting on outstanding memory chunks.
    WaitMem { outstanding: u32 },
    /// Waiting for space in the RT unit's warp buffer.
    RtPending,
    /// Resident in the RT unit.
    InRt,
}

/// One resident warp.
#[derive(Debug)]
pub struct Warp {
    /// Global warp index.
    pub id: u32,
    /// Global thread id of lane 0.
    pub base_tid: usize,
    threads: Vec<ThreadState>,
    engine: SimtEngine,
    ctx_state: HashMap<u32, CtxState>,
}

impl Warp {
    fn new(
        id: u32,
        base_tid: usize,
        active: Mask,
        program: &Program,
        mode: DivergenceMode,
    ) -> Self {
        let threads = (0..WARP_SIZE)
            .map(|lane| {
                ThreadState::with_tid(
                    program.num_regs(),
                    program.num_preds().max(1),
                    base_tid + lane,
                )
            })
            .collect();
        let engine = match mode {
            DivergenceMode::Stack => SimtEngine::stack(active),
            DivergenceMode::Multipath => SimtEngine::multipath(active),
        };
        Warp {
            id,
            base_tid,
            threads,
            engine,
            ctx_state: HashMap::new(),
        }
    }

    fn done(&self) -> bool {
        self.engine.done()
            && self
                .ctx_state
                .values()
                .all(|c| c.status == CtxStatus::Ready || matches!(c.status, CtxStatus::OpUntil(_)))
    }

    fn save(&self, e: &mut vksim_snapshot::Enc) {
        e.u32(self.id);
        e.usize(self.base_tid);
        e.seq(self.threads.len());
        for t in &self.threads {
            t.save(e);
        }
        self.engine.save(e);
        // HashMap: sorted by ctx id for a deterministic encoding.
        let mut ctxs: Vec<(&u32, &CtxState)> = self.ctx_state.iter().collect();
        ctxs.sort_by_key(|(&id, _)| id);
        e.seq(ctxs.len());
        for (&id, st) in ctxs {
            e.u32(id);
            st.save(e);
        }
    }

    fn load(d: &mut vksim_snapshot::Dec<'_>) -> Result<Self, vksim_snapshot::SnapError> {
        let id = d.u32()?;
        let base_tid = d.usize()?;
        let n = d.seq()?;
        let mut threads = Vec::with_capacity(n);
        for _ in 0..n {
            threads.push(ThreadState::load(d)?);
        }
        let engine = SimtEngine::load(d)?;
        let mut ctx_state = HashMap::new();
        for _ in 0..d.seq()? {
            let ctx = d.u32()?;
            ctx_state.insert(ctx, CtxState::load(d)?);
        }
        Ok(Warp {
            id,
            base_tid,
            threads,
            engine,
            ctx_state,
        })
    }
}

// Who is waiting on an L1 line fill.
#[derive(Clone, Copy, Debug)]
enum Waiter {
    WarpCtx { warp: u32, ctx: u32 },
    RtToken(u64),
}

impl Waiter {
    fn save(&self, e: &mut vksim_snapshot::Enc) {
        match *self {
            Waiter::WarpCtx { warp, ctx } => {
                e.u8(0);
                e.u32(warp);
                e.u32(ctx);
            }
            Waiter::RtToken(token) => {
                e.u8(1);
                e.u64(token);
            }
        }
    }

    fn load(d: &mut vksim_snapshot::Dec<'_>) -> Result<Self, vksim_snapshot::SnapError> {
        Ok(match d.u8()? {
            0 => Waiter::WarpCtx {
                warp: d.u32()?,
                ctx: d.u32()?,
            },
            1 => Waiter::RtToken(d.u64()?),
            t => {
                return Err(vksim_snapshot::SnapError::Malformed(format!(
                    "waiter tag {t}"
                )))
            }
        })
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum CacheSel {
    L1,
    Rtc,
}

impl CacheSel {
    fn code(self) -> u8 {
        match self {
            CacheSel::L1 => 0,
            CacheSel::Rtc => 1,
        }
    }

    fn from_code(c: u8) -> Result<Self, vksim_snapshot::SnapError> {
        match c {
            0 => Ok(CacheSel::L1),
            1 => Ok(CacheSel::Rtc),
            t => Err(vksim_snapshot::SnapError::Malformed(format!(
                "cache selector tag {t}"
            ))),
        }
    }
}

/// What one [`Sm::tick`] accomplished; consumed by the warp-refill logic
/// and the forward-progress watchdog.
#[derive(Clone, Copy, Debug, Default)]
pub struct TickReport {
    /// A warp retired this cycle.
    pub retired: bool,
    /// The SM made forward progress: an instruction issued, a warp
    /// retired, or the RT unit finished a warp.
    pub progress: bool,
}

/// The per-SM state.
pub struct Sm {
    /// SM index within the GPU.
    pub id: usize,
    warps: Vec<Warp>,
    l1: Cache,
    rtc: Option<Cache>,
    /// The SM's ray-tracing accelerator.
    pub rt_unit: RtUnit,
    waiting_lines: HashMap<(CacheSel, u64), Vec<Waiter>>,
    inflight: HashMap<u64, (CacheSel, u64)>, // req id -> (cache, line)
    next_rt_job: u32,
    rt_job_map: HashMap<u32, (u32, u32)>, // job id -> (warp id, ctx id)
    last_warp: Option<u32>,
    /// Fault injection: never schedule this warp id (crafts a livelock).
    stall_warp: Option<u32>,
    perfect_bvh: bool,
    sfu_latency: u32,
    divergence: DivergenceMode,
    /// Memory partitions in the shared backend (tags MSHR trace events).
    num_partitions: u32,
    next_req: u64,
    /// Per-SM counters (instruction mix, issue stats).
    pub stats: Counters,
    /// Sum of active lanes over issued instructions (SIMT efficiency).
    pub issued_lanes: u64,
    /// Number of issued instructions.
    pub issued_insts: u64,
    /// Cycles where the RT unit had at least one resident warp.
    pub trace_cycles: u64,
    // Cycle-level event recorder; `None` (the default) keeps every hook to
    // a single branch-on-null.
    tracer: Option<Box<SmTracer>>,
    // Cycle-accounting recorder; same branch-on-null discipline as the
    // tracer, so a disabled run pays one null check per tick.
    accounting: Option<Box<CycleAccounting>>,
    // Warp traversal-coherence recorder (rt analytics); same
    // branch-on-null discipline.
    rt_analytics: Option<Box<WarpCoherence>>,
}

impl Sm {
    /// Creates an SM from the GPU configuration.
    pub fn new(id: usize, config: &GpuConfig) -> Self {
        Sm {
            id,
            warps: Vec::new(),
            l1: Cache::new(config.l1.clone()),
            rtc: config.rt_cache.clone().map(Cache::new),
            rt_unit: RtUnit::new(config.rt_unit.clone()),
            waiting_lines: HashMap::new(),
            inflight: HashMap::new(),
            next_rt_job: 0,
            rt_job_map: HashMap::new(),
            last_warp: None,
            stall_warp: config.fault_plan.stall_warp,
            perfect_bvh: config.perfect_bvh,
            sfu_latency: config.sfu_latency,
            divergence: config.divergence,
            num_partitions: config.mem.num_partitions.max(1),
            next_req: 0,
            stats: Counters::new(),
            issued_lanes: 0,
            issued_insts: 0,
            trace_cycles: 0,
            tracer: None,
            accounting: None,
            rt_analytics: None,
        }
    }

    /// Switches on cycle-level tracing for this SM and its RT unit.
    pub fn enable_trace(&mut self, config: &TraceConfig) {
        self.tracer = Some(Box::new(SmTracer::new(config)));
        self.rt_unit.set_event_trace(true);
    }

    /// Switches on cycle accounting for this SM: from here on, every tick
    /// attributes its cycle to exactly one [`CycleCategory`].
    pub fn enable_accounting(&mut self) {
        self.accounting = Some(Box::new(CycleAccounting::new()));
    }

    /// The cycle-accounting recorder, when enabled.
    pub fn accounting(&self) -> Option<&CycleAccounting> {
        self.accounting.as_deref()
    }

    /// Switches on ray-traversal analytics for this SM: warp coherence is
    /// tallied at every `traceRay` issue and the RT unit attributes steps
    /// and latency per job.
    pub fn enable_rt_analytics(&mut self) {
        self.rt_analytics = Some(Box::new(WarpCoherence::new()));
        self.rt_unit.set_analytics(true);
    }

    /// The warp-coherence recorder, when rt analytics is enabled.
    pub fn rt_analytics(&self) -> Option<&WarpCoherence> {
        self.rt_analytics.as_deref()
    }

    /// The per-SM event recorder, when tracing is enabled. Phase B drains
    /// it through [`vksim_trace::TraceCollector::drain_sm`].
    pub fn tracer_mut(&mut self) -> Option<&mut SmTracer> {
        self.tracer.as_deref_mut()
    }

    /// The per-SM event recorder (read-only view).
    pub fn tracer(&self) -> Option<&SmTracer> {
        self.tracer.as_deref()
    }

    /// Closes every open trace span (stalls, RT-busy) at end of run.
    pub fn finalize_trace(&mut self, cycle: u64) {
        if let Some(tr) = self.tracer.as_mut() {
            tr.finalize(cycle);
        }
    }

    /// Number of resident warps.
    pub fn resident_warps(&self) -> usize {
        self.warps.len()
    }

    /// `true` when no warps are resident.
    pub fn is_empty(&self) -> bool {
        self.warps.is_empty()
    }

    /// The L1 data cache (statistics).
    pub fn l1(&self) -> &Cache {
        &self.l1
    }

    /// The dedicated RT cache, when configured.
    pub fn rtc(&self) -> Option<&Cache> {
        self.rtc.as_ref()
    }

    /// Admits a warp covering global threads `[base_tid, base_tid+32)` with
    /// `active` lanes.
    pub fn add_warp(&mut self, id: u32, base_tid: usize, active: Mask, program: &Program) {
        self.warps
            .push(Warp::new(id, base_tid, active, program, self.divergence));
    }

    fn alloc_req_id(&mut self) -> u64 {
        self.next_req += 1;
        ((self.id as u64) << 48) | self.next_req
    }

    /// Routes a completed backend request (id was allocated by this SM).
    pub fn on_mem_complete(&mut self, id: u64, at: u64) {
        let Some((sel, line)) = self.inflight.remove(&id) else {
            return;
        };
        if let Some(tr) = self.tracer.as_mut() {
            let partition = partition_of(line, self.num_partitions);
            tr.record(at, NO_WARP, EventKind::MshrFill { line, partition });
        }
        match sel {
            CacheSel::L1 => {
                self.l1.fill(line, at);
            }
            CacheSel::Rtc => {
                if let Some(rtc) = &mut self.rtc {
                    rtc.fill(line, at);
                }
            }
        }
        if let Some(waiters) = self.waiting_lines.remove(&(sel, line)) {
            for w in waiters {
                match w {
                    Waiter::WarpCtx { warp, ctx } => {
                        if let Some(wp) = self.warps.iter_mut().find(|w| w.id == warp) {
                            let st = wp.ctx_state.entry(ctx).or_default();
                            if let CtxStatus::WaitMem { outstanding } = &mut st.status {
                                *outstanding = outstanding.saturating_sub(1);
                                if *outstanding == 0 && st.retry_chunks.is_empty() {
                                    st.status = CtxStatus::OpUntil(at);
                                    if let Some(tr) = self.tracer.as_mut() {
                                        tr.stall_end(at, warp);
                                    }
                                }
                            }
                        }
                    }
                    Waiter::RtToken(token) => {
                        self.rt_unit.on_mem_complete(token, at);
                    }
                }
            }
        }
    }

    /// One core cycle.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Exec`] when a lane faults during issue (pc out
    /// of program range, RT instruction without a runtime, corrupt
    /// acceleration structure). The SM is left as of the faulting cycle so
    /// a post-mortem snapshot reflects the failure state.
    pub fn tick(
        &mut self,
        now: u64,
        program: &Program,
        mem: &mut dyn MemIo,
        sink: &mut dyn MemSink,
        hooks: &mut dyn GpuHooks,
    ) -> Result<TickReport, Box<SimError>> {
        // Interconnect backpressure: leftovers in the SM's request queue
        // after the previous phase-B drain mean the bounded interconnect
        // refused them. Sampled once at tick start — before this cycle's
        // own submissions land — so the reading is identical in the serial
        // and parallel engines.
        let icnt_blocked = sink.backlogged();
        if icnt_blocked {
            self.stats.inc("sm.icnt_stall_cycles");
        }
        if let Some(tr) = self.tracer.as_mut() {
            tr.icnt_stall_edge(now, icnt_blocked);
        }

        // Cycle accounting: classify the would-be stall reason from
        // SM-local state sampled at tick start — before the RT unit and
        // retry passes below mutate context statuses — so the attribution
        // is identical in the serial and parallel engines (the
        // `icnt_stall_cycles` discipline). `Issued` overrides the
        // precomputed class after the issue stage.
        let stall_class = self
            .accounting
            .is_some()
            .then(|| self.classify_stall(now, icnt_blocked));

        // 1. RT unit cycle.
        let rt_finished = self.tick_rt_unit(now, sink);

        // 2. Retry stalled RT enqueues and memory-chunk retries.
        self.retry_stalled(now, sink);

        // 3. Issue one instruction from one warp context (GTO) — held
        // while the interconnect is backpressuring this SM, so the warp
        // that would issue stalls instead of growing the backlog.
        let mut issued = false;
        if !icnt_blocked {
            if let Some((warp_idx, ctx_id)) = self.pick(now) {
                self.issue(warp_idx, ctx_id, now, program, mem, sink, hooks)?;
                issued = true;
            }
        }

        if self.rt_unit.resident_warps() > 0 {
            self.trace_cycles += 1;
        }
        if let Some(tr) = self.tracer.as_mut() {
            tr.rt_busy_edge(now, self.rt_unit.resident_warps() > 0);
        }

        // Attribute this cycle to exactly one category.
        if let Some((cat, resident, eligible)) = stall_class {
            let acc = self.accounting.as_mut().expect("classified => enabled");
            acc.record(if issued { CycleCategory::Issued } else { cat });
            acc.record_occupancy(resident, eligible);
        }

        // 4. Retire finished warps.
        if let Some(tr) = self.tracer.as_mut() {
            for w in self.warps.iter().filter(|w| w.done()) {
                tr.record(now, w.id, EventKind::Retire);
            }
        }
        let before = self.warps.len();
        self.warps.retain(|w| !w.done());
        let retired = before != self.warps.len();
        Ok(TickReport {
            retired,
            progress: issued || retired || rt_finished,
        })
    }

    fn tick_rt_unit(&mut self, now: u64, sink: &mut dyn MemSink) -> bool {
        let mut port = SmRtPort {
            l1: &mut self.l1,
            rtc: self.rtc.as_mut(),
            sink,
            waiting_lines: &mut self.waiting_lines,
            inflight: &mut self.inflight,
            next_req: &mut self.next_req,
            sm_id: self.id,
            perfect_bvh: self.perfect_bvh,
            num_partitions: self.num_partitions,
            tracer: self.tracer.as_deref_mut(),
        };
        let done = self.rt_unit.tick(now, &mut port);
        let finished = !done.is_empty();
        // Translate the RT unit's job-keyed events into warp-keyed trace
        // events *before* done jobs drop out of the map below.
        if self.tracer.is_some() {
            for ev in self.rt_unit.take_events() {
                if let Some(&(warp, _)) = self.rt_job_map.get(&ev.warp_id) {
                    let kind = match ev.kind {
                        RtUnitEventKind::Enqueue => EventKind::RtStart,
                        RtUnitEventKind::Finish { latency } => EventKind::RtFinish { latency },
                    };
                    if let Some(tr) = self.tracer.as_mut() {
                        tr.record(ev.cycle, warp, kind);
                    }
                }
            }
        }
        for d in done {
            if let Some((warp, ctx)) = self.rt_job_map.remove(&d.warp_id) {
                if let Some(w) = self.warps.iter_mut().find(|w| w.id == warp) {
                    w.ctx_state.entry(ctx).or_default().status = CtxStatus::Ready;
                }
            }
        }
        finished
    }

    fn retry_stalled(&mut self, now: u64, sink: &mut dyn MemSink) {
        // RT warp-buffer retries: admit stalled jobs while capacity lasts.
        let mut slots = self
            .rt_unit
            .config()
            .max_warps
            .saturating_sub(self.rt_unit.resident_warps());
        let mut enqueues: Vec<(u32, u32, WarpJob)> = Vec::new();
        'outer: for w in &mut self.warps {
            for (&ctx, st) in w.ctx_state.iter_mut() {
                if slots == 0 {
                    break 'outer;
                }
                if st.status == CtxStatus::RtPending && st.pending_rt_job.is_some() {
                    let job = st.pending_rt_job.take().expect("checked");
                    st.status = CtxStatus::InRt;
                    slots -= 1;
                    enqueues.push((w.id, ctx, job));
                }
            }
        }
        for (warp, ctx, job) in enqueues {
            let job_id = job.warp_id;
            if self.rt_unit.try_enqueue(job, now) {
                self.rt_job_map.insert(job_id, (warp, ctx));
            } else {
                // Capacity raced away (shouldn't in a single-threaded
                // model); count it and leave the ctx stuck for diagnosis.
                self.stats.inc("rt.enqueue_race");
            }
        }

        // Memory chunk retries (L1 MSHR was full).
        let mut retries: Vec<(u32, u32, u64)> = Vec::new();
        for w in &self.warps {
            for (&ctx, st) in &w.ctx_state {
                for &chunk in &st.retry_chunks {
                    retries.push((w.id, ctx, chunk));
                }
            }
        }
        for (warp, ctx, chunk) in retries {
            let outcome = self.l1.access(chunk, AccessKind::ShaderLoad, now);
            let line = self.l1.line_of(chunk);
            let resolved = match outcome {
                CacheOutcome::Hit => Some(None),
                CacheOutcome::MissToMemory => {
                    let id = self.alloc_req_id();
                    self.inflight.insert(id, (CacheSel::L1, line));
                    sink.submit(
                        MemRequest {
                            id,
                            addr: chunk,
                            kind: AccessKind::ShaderLoad,
                            is_store: false,
                        },
                        now,
                    );
                    if let Some(tr) = self.tracer.as_mut() {
                        let partition = partition_of(line, self.num_partitions);
                        tr.record(now, warp, EventKind::MshrAlloc { line, partition });
                    }
                    Some(Some(Waiter::WarpCtx { warp, ctx }))
                }
                CacheOutcome::MissMerged => Some(Some(Waiter::WarpCtx { warp, ctx })),
                CacheOutcome::ReservationFail => None,
            };
            let Some(waiter) = resolved else { continue };
            if let Some(wtr) = waiter {
                self.waiting_lines
                    .entry((CacheSel::L1, line))
                    .or_default()
                    .push(wtr);
            }
            if let Some(w) = self.warps.iter_mut().find(|w| w.id == warp) {
                let st = w.ctx_state.entry(ctx).or_default();
                st.retry_chunks.retain(|&c| c != chunk);
                match (&mut st.status, waiter.is_some()) {
                    (CtxStatus::WaitMem { outstanding }, true) => {
                        // Already counted in outstanding.
                        let _ = outstanding;
                    }
                    (CtxStatus::WaitMem { outstanding }, false) => {
                        *outstanding = outstanding.saturating_sub(1);
                        if *outstanding == 0 && st.retry_chunks.is_empty() {
                            st.status = CtxStatus::OpUntil(now + self.l1.hit_latency() as u64);
                            if let Some(tr) = self.tracer.as_mut() {
                                tr.stall_end(now, warp);
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    /// Classifies the cycle's stall reason from tick-start state and
    /// samples the occupancy tallies. Returns
    /// `(category, resident warps, eligible warps)`; the caller swaps the
    /// category for `Issued` if the issue stage fires this cycle.
    ///
    /// Precedence among simultaneous stall sources: interconnect
    /// backpressure freezes the whole issue stage, so it wins; an empty
    /// SM is `Drained`; then scoreboard memory waits, RT-unit parking,
    /// divergence wait, and finally the pure occupancy gap.
    fn classify_stall(&self, now: u64, icnt_blocked: bool) -> (CycleCategory, u64, u64) {
        let resident = self.warps.len() as u64;
        let mut eligible = 0u64;
        let mut any_mem = false;
        let mut any_rt = false;
        let mut any_simt = false;
        for w in &self.warps {
            let issuable = w.engine.contexts().iter().any(|c| {
                match w.ctx_state.get(&c.id).map(|s| &s.status) {
                    None | Some(CtxStatus::Ready) => true,
                    Some(CtxStatus::OpUntil(t)) => *t <= now,
                    _ => false,
                }
            });
            if issuable {
                eligible += 1;
            }
            for st in w.ctx_state.values() {
                match st.status {
                    CtxStatus::WaitMem { .. } => any_mem = true,
                    CtxStatus::RtPending | CtxStatus::InRt => any_rt = true,
                    _ => {}
                }
            }
            if w.engine.mid_divergence() {
                any_simt = true;
            }
        }
        let cat = if icnt_blocked {
            CycleCategory::IcntStall
        } else if resident == 0 {
            CycleCategory::Drained
        } else if any_mem {
            CycleCategory::MemStall
        } else if any_rt {
            CycleCategory::RtStall
        } else if any_simt {
            CycleCategory::SimtSync
        } else {
            CycleCategory::NoEligibleWarp
        };
        (cat, resident, eligible)
    }

    /// GTO pick: (warp index, ctx id).
    fn pick(&mut self, now: u64) -> Option<(usize, u32)> {
        let issuable_ctx = |w: &Warp| -> Option<u32> {
            w.engine
                .contexts()
                .iter()
                .filter(|c| {
                    let st = w.ctx_state.get(&c.id);
                    match st.map(|s| &s.status) {
                        None | Some(CtxStatus::Ready) => true,
                        Some(CtxStatus::OpUntil(t)) => *t <= now,
                        _ => false,
                    }
                })
                .map(|c| c.id)
                .min()
        };
        // Greedy: stick to the last-issued warp.
        if let Some(last) = self.last_warp {
            if Some(last) != self.stall_warp {
                if let Some(idx) = self.warps.iter().position(|w| w.id == last) {
                    if let Some(ctx) = issuable_ctx(&self.warps[idx]) {
                        return Some((idx, ctx));
                    }
                }
            }
        }
        // Then oldest (resident order is launch order).
        for (idx, w) in self.warps.iter().enumerate() {
            if Some(w.id) == self.stall_warp {
                continue;
            }
            if let Some(ctx) = issuable_ctx(w) {
                self.last_warp = Some(w.id);
                return Some((idx, ctx));
            }
        }
        None
    }

    /// `true` when some SIMT context could issue at `now`. Used by the
    /// watchdog to tell a scheduler livelock (schedulable work exists but
    /// nothing issues) from blocked-on-memory states.
    pub fn has_issuable_ctx(&self, now: u64) -> bool {
        self.warps.iter().any(|w| {
            w.engine.contexts().iter().any(|c| {
                let st = w.ctx_state.get(&c.id);
                match st.map(|s| &s.status) {
                    None | Some(CtxStatus::Ready) => true,
                    Some(CtxStatus::OpUntil(t)) => *t <= now,
                    _ => false,
                }
            })
        })
    }

    /// Records this SM's scheduler and memory state into a flat post-mortem
    /// snapshot: per-context pc/mask/status, MSHR and in-flight queue
    /// depths, and RT-unit occupancy.
    pub fn post_mortem(&self, snap: &mut BTreeMap<String, u64>) {
        let p = format!("sm{}", self.id);
        snap.insert(format!("{p}.resident_warps"), self.warps.len() as u64);
        snap.insert(format!("{p}.inflight_mem"), self.inflight.len() as u64);
        snap.insert(
            format!("{p}.waiting_lines"),
            self.waiting_lines.len() as u64,
        );
        snap.insert(
            format!("{p}.rt.resident_warps"),
            self.rt_unit.resident_warps() as u64,
        );
        snap.insert(
            format!("{p}.rt.active_rays"),
            self.rt_unit.active_rays() as u64,
        );
        snap.insert(
            format!("{p}.rt.queued_mem"),
            self.rt_unit.queued_mem_requests() as u64,
        );
        snap.insert(
            format!("{p}.rt.inflight_mem"),
            self.rt_unit.inflight_mem_requests() as u64,
        );
        for w in &self.warps {
            for c in w.engine.contexts() {
                let cp = format!("{p}.warp{}.ctx{}", w.id, c.id);
                snap.insert(format!("{cp}.pc"), c.pc as u64);
                snap.insert(format!("{cp}.mask"), c.mask as u64);
                let code = match w.ctx_state.get(&c.id).map(|s| &s.status) {
                    None | Some(CtxStatus::Ready) => 0,
                    Some(CtxStatus::OpUntil(_)) => 1,
                    Some(CtxStatus::WaitMem { .. }) => 2,
                    Some(CtxStatus::RtPending) => 3,
                    Some(CtxStatus::InRt) => 4,
                };
                snap.insert(format!("{cp}.status"), code);
            }
        }
        // Flight recorder: the last trace events before the failure, flat
        // so they survive the fault dump's counter-style encoding.
        if let Some(tr) = &self.tracer {
            for (i, ev) in tr.flight().enumerate() {
                let ep = format!("{p}.trace.ev{i}");
                snap.insert(format!("{ep}.cycle"), ev.cycle);
                snap.insert(format!("{ep}.warp"), ev.warp as u64);
                snap.insert(format!("{ep}.kind"), ev.kind.code());
                let (a, b) = ev.kind.args();
                snap.insert(format!("{ep}.a"), a);
                snap.insert(format!("{ep}.b"), b);
            }
        }
    }

    /// Serializes the SM's full dynamic state — warps, caches, RT unit,
    /// line-fill bookkeeping, counters and tracer — for a machine-state
    /// checkpoint. Config-derived fields (latencies, divergence mode,
    /// fault plan) are *not* written; [`Sm::load`] rebuilds them from the
    /// resuming configuration, which the snapshot fingerprint guarantees
    /// matches.
    pub fn save(&self, e: &mut vksim_snapshot::Enc) {
        e.seq(self.warps.len());
        for w in &self.warps {
            w.save(e);
        }
        self.l1.save(e);
        match &self.rtc {
            None => e.u8(0),
            Some(rtc) => {
                e.u8(1);
                rtc.save(e);
            }
        }
        self.rt_unit.save(e);
        // HashMaps: sorted by key for a deterministic encoding; each waiter
        // list keeps its arrival order (wake-up order is load-bearing).
        let mut lines: Vec<(&(CacheSel, u64), &Vec<Waiter>)> = self.waiting_lines.iter().collect();
        lines.sort_by_key(|(&k, _)| k);
        e.seq(lines.len());
        for (&(sel, line), waiters) in lines {
            e.u8(sel.code());
            e.u64(line);
            e.seq(waiters.len());
            for w in waiters {
                w.save(e);
            }
        }
        let mut inflight: Vec<(&u64, &(CacheSel, u64))> = self.inflight.iter().collect();
        inflight.sort_by_key(|(&id, _)| id);
        e.seq(inflight.len());
        for (&id, &(sel, line)) in inflight {
            e.u64(id);
            e.u8(sel.code());
            e.u64(line);
        }
        e.u32(self.next_rt_job);
        let mut jobs: Vec<(&u32, &(u32, u32))> = self.rt_job_map.iter().collect();
        jobs.sort_by_key(|(&id, _)| id);
        e.seq(jobs.len());
        for (&job, &(warp, ctx)) in jobs {
            e.u32(job);
            e.u32(warp);
            e.u32(ctx);
        }
        e.opt_u32(self.last_warp);
        e.u64(self.next_req);
        self.stats.save(e);
        e.u64(self.issued_lanes);
        e.u64(self.issued_insts);
        e.u64(self.trace_cycles);
        match &self.tracer {
            None => e.u8(0),
            Some(tr) => {
                e.u8(1);
                tr.save(e);
            }
        }
        match &self.accounting {
            None => e.u8(0),
            Some(acc) => {
                e.u8(1);
                acc.save(e);
            }
        }
        match &self.rt_analytics {
            None => e.u8(0),
            Some(rec) => {
                e.u8(1);
                rec.save(e);
            }
        }
    }

    /// Restores an SM written by [`Sm::save`], rebuilding config-derived
    /// fields from `config` (the fingerprint check upstream guarantees it
    /// matches the saving run's).
    ///
    /// # Errors
    ///
    /// Cache/RT geometry that disagrees with `config` — or a snapshot
    /// with/without an RT cache where the config says otherwise — is
    /// malformed.
    pub fn load(
        id: usize,
        config: &GpuConfig,
        d: &mut vksim_snapshot::Dec<'_>,
    ) -> Result<Self, vksim_snapshot::SnapError> {
        let mut sm = Sm::new(id, config);
        let n = d.seq()?;
        let mut warps = Vec::with_capacity(n);
        for _ in 0..n {
            warps.push(Warp::load(d)?);
        }
        sm.warps = warps;
        sm.l1 = Cache::load(config.l1.clone(), d)?;
        sm.rtc = match (d.u8()?, &config.rt_cache) {
            (0, None) => None,
            (1, Some(rtc_config)) => Some(Cache::load(rtc_config.clone(), d)?),
            (tag @ (0 | 1), _) => {
                return Err(vksim_snapshot::SnapError::Malformed(format!(
                    "rt cache presence mismatch: snapshot tag {tag}, config {}",
                    if config.rt_cache.is_some() {
                        "has an rt cache"
                    } else {
                        "has none"
                    }
                )))
            }
            (t, _) => {
                return Err(vksim_snapshot::SnapError::Malformed(format!(
                    "rt cache tag {t}"
                )))
            }
        };
        sm.rt_unit = RtUnit::load(config.rt_unit.clone(), d)?;
        sm.waiting_lines = HashMap::new();
        for _ in 0..d.seq()? {
            let sel = CacheSel::from_code(d.u8()?)?;
            let line = d.u64()?;
            let nw = d.seq()?;
            let mut waiters = Vec::with_capacity(nw);
            for _ in 0..nw {
                waiters.push(Waiter::load(d)?);
            }
            sm.waiting_lines.insert((sel, line), waiters);
        }
        sm.inflight = HashMap::new();
        for _ in 0..d.seq()? {
            let req = d.u64()?;
            let sel = CacheSel::from_code(d.u8()?)?;
            let line = d.u64()?;
            sm.inflight.insert(req, (sel, line));
        }
        sm.next_rt_job = d.u32()?;
        sm.rt_job_map = HashMap::new();
        for _ in 0..d.seq()? {
            let job = d.u32()?;
            let warp = d.u32()?;
            let ctx = d.u32()?;
            sm.rt_job_map.insert(job, (warp, ctx));
        }
        sm.last_warp = d.opt_u32()?;
        sm.next_req = d.u64()?;
        sm.stats = Counters::load(d)?;
        sm.issued_lanes = d.u64()?;
        sm.issued_insts = d.u64()?;
        sm.trace_cycles = d.u64()?;
        sm.tracer = match d.u8()? {
            0 => None,
            1 => Some(Box::new(SmTracer::load(d)?)),
            t => {
                return Err(vksim_snapshot::SnapError::Malformed(format!(
                    "tracer tag {t}"
                )))
            }
        };
        sm.accounting = match d.u8()? {
            0 => None,
            1 => Some(Box::new(CycleAccounting::load(d)?)),
            t => {
                return Err(vksim_snapshot::SnapError::Malformed(format!(
                    "accounting tag {t}"
                )))
            }
        };
        sm.rt_analytics = match d.u8()? {
            0 => None,
            1 => Some(Box::new(WarpCoherence::load(d)?)),
            t => {
                return Err(vksim_snapshot::SnapError::Malformed(format!(
                    "rt analytics tag {t}"
                )))
            }
        };
        Ok(sm)
    }

    #[allow(clippy::too_many_arguments)]
    fn issue(
        &mut self,
        warp_idx: usize,
        ctx_id: u32,
        now: u64,
        program: &Program,
        mem: &mut dyn MemIo,
        sink: &mut dyn MemSink,
        hooks: &mut dyn GpuHooks,
    ) -> Result<(), Box<SimError>> {
        let warp = &mut self.warps[warp_idx];
        let Some(ctx) = warp.engine.contexts().into_iter().find(|c| c.id == ctx_id) else {
            return Ok(());
        };
        let pc = ctx.pc;
        let mask = ctx.mask;
        if pc as usize >= program.len() {
            return Err(Box::new(SimError::Exec {
                sm: self.id,
                warp: warp.id,
                lane: 0,
                pc,
                detail: format!("pc {pc} outside program of {} instructions", program.len()),
            }));
        }
        let instr = *program.fetch(pc);
        self.stats.inc(&format!("inst.{:?}", instr.class()));
        self.issued_insts += 1;
        self.issued_lanes += mask.count_ones() as u64;
        if let Some(tr) = self.tracer.as_mut() {
            tr.issue(now, warp.id, pc, mask.count_ones());
        }

        // Execute every active lane functionally.
        let mut lane_effects: Vec<(usize, Effect)> = Vec::new();
        for lane in 0..WARP_SIZE {
            if mask & (1 << lane) == 0 {
                continue;
            }
            let t = &mut warp.threads[lane];
            let eff = exec_at(program, pc, t, mem, hooks).map_err(|e| {
                Box::new(SimError::Exec {
                    sm: self.id,
                    warp: warp.id,
                    lane,
                    pc,
                    detail: e.to_string(),
                })
            })?;
            lane_effects.push((lane, eff));
        }
        let Some(&(_, first)) = lane_effects.first() else {
            return Ok(());
        };

        let warp_id = warp.id;
        match first {
            Effect::Alu | Effect::RtOther => {
                warp.engine.apply(ctx_id, CtxOutcome::Fallthrough);
                warp.ctx_state.entry(ctx_id).or_default().status = CtxStatus::Ready;
            }
            Effect::Sfu => {
                warp.engine.apply(ctx_id, CtxOutcome::Fallthrough);
                warp.ctx_state.entry(ctx_id).or_default().status =
                    CtxStatus::OpUntil(now + self.sfu_latency as u64);
            }
            Effect::Ssy { reconv } => {
                warp.engine.apply(ctx_id, CtxOutcome::Ssy { reconv });
                warp.ctx_state.entry(ctx_id).or_default().status = CtxStatus::Ready;
            }
            Effect::Sync => {
                let info = warp.engine.apply(ctx_id, CtxOutcome::Sync);
                if info.reconverged {
                    if let Some(tr) = self.tracer.as_mut() {
                        tr.record(now, warp_id, EventKind::Reconverge { pc });
                    }
                }
                warp.ctx_state.entry(ctx_id).or_default().status = CtxStatus::Ready;
            }
            Effect::Exited => {
                warp.engine.apply(ctx_id, CtxOutcome::Exit);
            }
            Effect::Branch { target, .. } => {
                let mut taken: Mask = 0;
                for &(lane, eff) in &lane_effects {
                    if let Effect::Branch { taken: t, .. } = eff {
                        if t {
                            taken |= 1 << lane;
                        }
                    }
                }
                if taken != 0 && taken != mask {
                    self.stats.inc("divergent_branches");
                }
                let info = warp
                    .engine
                    .apply(ctx_id, CtxOutcome::Branch { target, taken });
                if let Some(tr) = self.tracer.as_mut() {
                    if info.diverged {
                        tr.record(now, warp_id, EventKind::Diverge { pc });
                    }
                    if info.reconverged {
                        tr.record(now, warp_id, EventKind::Reconverge { pc });
                    }
                }
                warp.ctx_state.entry(ctx_id).or_default().status = CtxStatus::Ready;
            }
            Effect::Mem {
                space: MemSpace::Const,
                ..
            } => {
                // Constant cache: single-cycle, no traffic modelled.
                warp.engine.apply(ctx_id, CtxOutcome::Fallthrough);
                warp.ctx_state.entry(ctx_id).or_default().status = CtxStatus::Ready;
            }
            Effect::Mem { is_store, .. } => {
                // Coalesce lane addresses into unique 32 B chunks.
                let mut chunks: Vec<u64> = Vec::new();
                for &(_, eff) in &lane_effects {
                    if let Effect::Mem { addr, size, .. } = eff {
                        for c in chunk_addresses(addr, size) {
                            if !chunks.contains(&c) {
                                chunks.push(c);
                            }
                        }
                    }
                }
                self.stats.add("mem.coalesced_chunks", chunks.len() as u64);
                warp.engine.apply(ctx_id, CtxOutcome::Fallthrough);
                if is_store {
                    // Write-through, no stall.
                    for c in chunks {
                        self.l1.access(c, AccessKind::ShaderStore, now);
                        let id = self.alloc_req_id();
                        sink.submit(
                            MemRequest {
                                id,
                                addr: c,
                                kind: AccessKind::ShaderStore,
                                is_store: true,
                            },
                            now,
                        );
                    }
                    self.warps[warp_idx]
                        .ctx_state
                        .entry(ctx_id)
                        .or_default()
                        .status = CtxStatus::Ready;
                    return Ok(());
                }
                let mut outstanding = 0u32;
                let mut retries: Vec<u64> = Vec::new();
                for c in chunks {
                    match self.l1.access(c, AccessKind::ShaderLoad, now) {
                        CacheOutcome::Hit => {}
                        CacheOutcome::MissToMemory => {
                            outstanding += 1;
                            let line = self.l1.line_of(c);
                            let id = self.alloc_req_id();
                            self.inflight.insert(id, (CacheSel::L1, line));
                            self.waiting_lines
                                .entry((CacheSel::L1, line))
                                .or_default()
                                .push(Waiter::WarpCtx {
                                    warp: warp_id,
                                    ctx: ctx_id,
                                });
                            sink.submit(
                                MemRequest {
                                    id,
                                    addr: c,
                                    kind: AccessKind::ShaderLoad,
                                    is_store: false,
                                },
                                now,
                            );
                            if let Some(tr) = self.tracer.as_mut() {
                                let partition = partition_of(line, self.num_partitions);
                                tr.record(now, warp_id, EventKind::MshrAlloc { line, partition });
                            }
                        }
                        CacheOutcome::MissMerged => {
                            outstanding += 1;
                            let line = self.l1.line_of(c);
                            self.waiting_lines
                                .entry((CacheSel::L1, line))
                                .or_default()
                                .push(Waiter::WarpCtx {
                                    warp: warp_id,
                                    ctx: ctx_id,
                                });
                        }
                        CacheOutcome::ReservationFail => {
                            outstanding += 1;
                            retries.push(c);
                        }
                    }
                }
                let st = self.warps[warp_idx].ctx_state.entry(ctx_id).or_default();
                if outstanding == 0 {
                    st.status = CtxStatus::OpUntil(now + self.l1.hit_latency() as u64);
                } else {
                    st.status = CtxStatus::WaitMem { outstanding };
                    st.retry_chunks = retries;
                    if let Some(tr) = self.tracer.as_mut() {
                        tr.stall_begin(now, warp_id);
                    }
                }
            }
            Effect::TraceRay => {
                // Collect the recorded traversal scripts for active lanes.
                let mut scripts = vec![Vec::new(); WARP_SIZE];
                for &(lane, _) in &lane_effects {
                    let tid = self.warps[warp_idx].base_tid + lane;
                    scripts[lane] = hooks.take_script(tid);
                }
                if let Some(rec) = self.rt_analytics.as_mut() {
                    // Lane `l` is active at step `s` while its script still
                    // has a step to run; tallying lane counts per step gives
                    // the integer-exact warp·step integral.
                    let max_len = scripts.iter().map(Vec::len).max().unwrap_or(0);
                    rec.record_job(
                        (0..max_len).map(|s| {
                            scripts.iter().filter(|script| script.len() > s).count() as u32
                        }),
                    );
                }
                self.next_rt_job += 1;
                let job_id = self.next_rt_job;
                let job = WarpJob {
                    warp_id: job_id,
                    scripts,
                };
                self.stats.inc("rt.trace_warps");
                let warp = &mut self.warps[warp_idx];
                warp.engine.apply(ctx_id, CtxOutcome::Fallthrough);
                if self.rt_unit.has_capacity() {
                    let admitted = self.rt_unit.try_enqueue(job, now);
                    debug_assert!(admitted, "capacity checked");
                    self.rt_job_map.insert(job_id, (warp_id, ctx_id));
                    warp.ctx_state.entry(ctx_id).or_default().status = CtxStatus::InRt;
                } else {
                    // Warp buffer full: hold the job; retried each cycle.
                    self.stats.inc("rt.enqueue_stall");
                    let st = warp.ctx_state.entry(ctx_id).or_default();
                    st.status = CtxStatus::RtPending;
                    st.pending_rt_job = Some(job);
                }
            }
        }
        Ok(())
    }
}

/// RT unit memory port backed by the SM's caches and the shared backend.
struct SmRtPort<'a> {
    l1: &'a mut Cache,
    rtc: Option<&'a mut Cache>,
    sink: &'a mut dyn MemSink,
    waiting_lines: &'a mut HashMap<(CacheSel, u64), Vec<Waiter>>,
    inflight: &'a mut HashMap<u64, (CacheSel, u64)>,
    next_req: &'a mut u64,
    sm_id: usize,
    perfect_bvh: bool,
    num_partitions: u32,
    tracer: Option<&'a mut SmTracer>,
}

impl SmRtPort<'_> {
    fn alloc_req_id(&mut self) -> u64 {
        *self.next_req += 1;
        ((self.sm_id as u64) << 48) | *self.next_req
    }
}

impl RtMem for SmRtPort<'_> {
    fn load_chunk(&mut self, addr: u64, now: u64) -> RtMemResult {
        if self.perfect_bvh {
            return RtMemResult::Ready { at: now + 1 };
        }
        let (sel, cache) = match self.rtc.as_deref_mut() {
            Some(rtc) => (CacheSel::Rtc, rtc),
            None => (CacheSel::L1, &mut *self.l1),
        };
        let line = cache.line_of(addr);
        match cache.access(addr, AccessKind::RtUnit, now) {
            CacheOutcome::Hit => RtMemResult::Ready {
                at: now + cache.hit_latency() as u64,
            },
            CacheOutcome::MissToMemory => {
                let id = self.alloc_req_id();
                self.inflight.insert(id, (sel, line));
                let token = id;
                self.waiting_lines
                    .entry((sel, line))
                    .or_default()
                    .push(Waiter::RtToken(token));
                if let Some(tr) = self.tracer.as_deref_mut() {
                    let partition = partition_of(line, self.num_partitions);
                    tr.record(now, NO_WARP, EventKind::MshrAlloc { line, partition });
                }
                self.sink.submit(
                    MemRequest {
                        id,
                        addr,
                        kind: AccessKind::RtUnit,
                        is_store: false,
                    },
                    now,
                );
                RtMemResult::Pending { token }
            }
            CacheOutcome::MissMerged => {
                let token = {
                    *self.next_req += 1;
                    ((self.sm_id as u64) << 48) | *self.next_req
                };
                self.waiting_lines
                    .entry((sel, line))
                    .or_default()
                    .push(Waiter::RtToken(token));
                RtMemResult::Pending { token }
            }
            CacheOutcome::ReservationFail => RtMemResult::Retry,
        }
    }

    fn store_chunk(&mut self, addr: u64, now: u64) {
        // Write-through traffic; no completion tracked.
        let id = self.alloc_req_id();
        self.sink.submit(
            MemRequest {
                id,
                addr,
                kind: AccessKind::ShaderStore,
                is_store: true,
            },
            now,
        );
    }
}
