//! GPU configuration (paper Table III).

use vksim_fault::FaultPlan;
use vksim_mem::{CacheConfig, SystemConfig};
use vksim_rtunit::RtUnitConfig;
use vksim_trace::TraceConfig;

/// How branch divergence is handled (paper §IV-B).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DivergenceMode {
    /// Immediate-post-dominator SIMT stack (baseline).
    #[default]
    Stack,
    /// Independent thread scheduling via multi-path tables (ITS).
    Multipath,
}

/// Full GPU configuration.
#[derive(Clone, Debug)]
pub struct GpuConfig {
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: usize,
    /// 32-bit registers per SM (bounds occupancy).
    pub registers_per_sm: u32,
    /// Per-SM L1 data cache.
    pub l1: CacheConfig,
    /// Optional dedicated RT cache (Fig. 15 "RT cache" configuration).
    pub rt_cache: Option<CacheConfig>,
    /// Shared L2 + DRAM backend.
    pub mem: SystemConfig,
    /// RT unit configuration (one per SM).
    pub rt_unit: RtUnitConfig,
    /// Divergence handling.
    pub divergence: DivergenceMode,
    /// Zero-latency BVH accesses (Fig. 15 "Perfect BVH" limit study).
    pub perfect_bvh: bool,
    /// SFU operation latency (sqrt/sin/cos/div).
    pub sfu_latency: u32,
    /// Core clock in MHz (reporting only; the model counts core cycles).
    pub core_clock_mhz: u32,
    /// Safety bound on simulated cycles.
    pub max_cycles: u64,
    /// Worker threads for the two-phase cycle engine. `1` is the serial
    /// reference path; any value produces bit-identical counters (the
    /// engine's determinism contract, see DESIGN.md). Overridable at run
    /// time with `VKSIM_THREADS`.
    pub threads: usize,
    /// Forward-progress watchdog window in cycles: if no instruction
    /// issues, no warp retires and no memory completion arrives for this
    /// many consecutive cycles, the run fails with a classified hang
    /// instead of spinning to `max_cycles`. `0` disables the watchdog.
    /// Overridable at run time with `VKSIM_WATCHDOG`.
    pub watchdog_cycles: u64,
    /// Deterministic fault-injection switches (tests and fault drills);
    /// the default plan injects nothing.
    pub fault_plan: FaultPlan,
    /// Periodic checkpoint interval in cycles: every multiple of this, the
    /// simulator core snapshots the complete machine state so a killed run
    /// can resume bit-identically. `0` (the default) disables
    /// checkpointing — the run is a single uninterrupted slice.
    /// Overridable at run time with `VKSIM_CHECKPOINT_EVERY`.
    pub checkpoint_every: u64,
    /// Directory receiving `ckpt-<cycle>.vksnap` checkpoint files; `None`
    /// uses the current directory. Overridable at run time with
    /// `VKSIM_CHECKPOINT_DIR`.
    pub checkpoint_dir: Option<String>,
    /// Checkpoint retention: after each successful checkpoint write, prune
    /// all but the newest `n` `ckpt-*.vksnap` files in the checkpoint
    /// directory. `0` (the default) keeps every checkpoint. Overridable at
    /// run time with `VKSIM_CHECKPOINT_KEEP`.
    pub checkpoint_keep: u64,
    /// Cycle-level tracing (timeline events + interval metrics). Off by
    /// default; overridable at run time with `VKSIM_TRACE`,
    /// `VKSIM_TRACE_INTERVAL`, `VKSIM_TRACE_CSV` and `VKSIM_TRACE_SUMMARY`.
    pub trace: TraceConfig,
}

impl GpuConfig {
    /// The paper's baseline configuration (Table III): 30 SMs, 32 warps/SM,
    /// 64 K registers, 64 KB fully associative L1, 3 MB 16-way L2,
    /// 1365 MHz, 1 RT unit per SM with 4 concurrent warps.
    pub fn baseline() -> Self {
        GpuConfig {
            num_sms: 30,
            max_warps_per_sm: 32,
            registers_per_sm: 65536,
            l1: CacheConfig::l1d_baseline(),
            rt_cache: None,
            mem: SystemConfig::default(),
            rt_unit: RtUnitConfig::default(),
            divergence: DivergenceMode::Stack,
            perfect_bvh: false,
            sfu_latency: 4,
            core_clock_mhz: 1365,
            max_cycles: 2_000_000_000,
            threads: 1,
            watchdog_cycles: 0,
            fault_plan: FaultPlan::default(),
            checkpoint_every: 0,
            checkpoint_dir: None,
            checkpoint_keep: 0,
            trace: TraceConfig::default(),
        }
    }

    /// The paper-scale configuration used for Table IV / Fig. 12 fidelity:
    /// 48 SMs, a 4 MB 16-way L2 sliced across 8 memory partitions, 8 DRAM
    /// channels (one per partition) under FR-FCFS scheduling.
    pub fn paper() -> Self {
        GpuConfig {
            num_sms: 48,
            mem: SystemConfig {
                l2: CacheConfig {
                    size_bytes: 4 * 1024 * 1024,
                    mshr_entries: 512,
                    ..CacheConfig::l2_baseline()
                },
                dram: vksim_mem::DramConfig {
                    channels: 8,
                    sched: vksim_mem::DramSched::fr_fcfs_paper(),
                    ..vksim_mem::DramConfig::default()
                },
                num_partitions: 8,
                ..SystemConfig::default()
            },
            ..Self::baseline()
        }
    }

    /// The paper's mobile configuration: 8 SMs, 32 K registers, less DRAM
    /// bandwidth.
    pub fn mobile() -> Self {
        GpuConfig {
            num_sms: 8,
            registers_per_sm: 32768,
            mem: SystemConfig {
                dram: vksim_mem::DramConfig::mobile(),
                ..SystemConfig::default()
            },
            ..Self::baseline()
        }
    }

    /// Worker threads to use, honouring the `VKSIM_THREADS` environment
    /// override (ignored when unset, empty, or not a positive integer).
    pub fn effective_threads(&self) -> usize {
        match std::env::var("VKSIM_THREADS") {
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(n) if n >= 1 => n,
                _ => self.threads,
            },
            Err(_) => self.threads,
        }
        .max(1)
    }

    /// Trace configuration to use, honouring the `VKSIM_TRACE`,
    /// `VKSIM_TRACE_INTERVAL`, `VKSIM_TRACE_CSV` and `VKSIM_TRACE_SUMMARY`
    /// environment overrides (each ignored when unset or empty).
    pub fn effective_trace(&self) -> TraceConfig {
        self.trace.with_env_overrides()
    }

    /// Watchdog window to use, honouring the `VKSIM_WATCHDOG` environment
    /// override (ignored when unset, empty, or not an integer; `0`
    /// disables the watchdog either way).
    pub fn effective_watchdog(&self) -> u64 {
        match std::env::var("VKSIM_WATCHDOG") {
            Ok(v) => match v.trim().parse::<u64>() {
                Ok(n) => n,
                Err(_) => self.watchdog_cycles,
            },
            Err(_) => self.watchdog_cycles,
        }
    }

    /// Checkpoint interval to use, honouring the `VKSIM_CHECKPOINT_EVERY`
    /// environment override (ignored when unset, empty, or not an
    /// integer; `0` disables checkpointing either way).
    pub fn effective_checkpoint_every(&self) -> u64 {
        match std::env::var("VKSIM_CHECKPOINT_EVERY") {
            Ok(v) => match v.trim().parse::<u64>() {
                Ok(n) => n,
                Err(_) => self.checkpoint_every,
            },
            Err(_) => self.checkpoint_every,
        }
    }

    /// Checkpoint retention count to use, honouring the
    /// `VKSIM_CHECKPOINT_KEEP` environment override (ignored when unset,
    /// empty, or not an integer; `0` keeps every checkpoint either way).
    pub fn effective_checkpoint_keep(&self) -> u64 {
        match std::env::var("VKSIM_CHECKPOINT_KEEP") {
            Ok(v) => match v.trim().parse::<u64>() {
                Ok(n) => n,
                Err(_) => self.checkpoint_keep,
            },
            Err(_) => self.checkpoint_keep,
        }
    }

    /// Checkpoint directory to use, honouring the `VKSIM_CHECKPOINT_DIR`
    /// environment override (ignored when unset or empty).
    pub fn effective_checkpoint_dir(&self) -> Option<String> {
        match std::env::var("VKSIM_CHECKPOINT_DIR") {
            Ok(v) if !v.trim().is_empty() => Some(v),
            _ => self.checkpoint_dir.clone(),
        }
    }

    /// Resident warps per SM given a program's register demand.
    pub fn occupancy_limit(&self, regs_per_thread: u32) -> usize {
        if regs_per_thread == 0 {
            return self.max_warps_per_sm;
        }
        let by_regs = self.registers_per_sm / (crate::WARP_SIZE as u32 * regs_per_thread);
        (by_regs as usize).clamp(1, self.max_warps_per_sm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table_iii() {
        let c = GpuConfig::baseline();
        assert_eq!(c.num_sms, 30);
        assert_eq!(c.max_warps_per_sm, 32);
        assert_eq!(c.registers_per_sm, 65536);
        assert_eq!(c.l1.size_bytes, 64 * 1024);
        assert_eq!(c.mem.l2.size_bytes, 3 * 1024 * 1024);
        assert_eq!(c.rt_unit.max_warps, 4);
        assert_eq!(c.core_clock_mhz, 1365);
    }

    #[test]
    fn paper_scale_is_partitioned() {
        let p = GpuConfig::paper();
        assert_eq!(p.num_sms, 48);
        assert_eq!(p.mem.num_partitions, 8);
        assert_eq!(p.mem.dram.channels, 8);
        assert_eq!(p.mem.l2.size_bytes, 4 * 1024 * 1024);
        assert!(matches!(
            p.mem.dram.sched,
            vksim_mem::DramSched::FrFcfs { .. }
        ));
    }

    #[test]
    fn mobile_is_smaller() {
        let m = GpuConfig::mobile();
        assert_eq!(m.num_sms, 8);
        assert_eq!(m.registers_per_sm, 32768);
        assert!(m.mem.dram.channels < GpuConfig::baseline().mem.dram.channels);
    }

    #[test]
    fn threads_default_to_serial_reference_path() {
        assert_eq!(GpuConfig::baseline().threads, 1);
        assert_eq!(GpuConfig::mobile().threads, 1);
    }

    #[test]
    fn watchdog_disabled_and_plan_empty_by_default() {
        let c = GpuConfig::baseline();
        assert_eq!(c.watchdog_cycles, 0);
        assert!(c.fault_plan.is_empty());
    }

    #[test]
    fn occupancy_limited_by_registers() {
        let c = GpuConfig::baseline();
        // 64 regs/thread: 65536 / (32*64) = 32 warps -> full occupancy.
        assert_eq!(c.occupancy_limit(64), 32);
        // 256 regs/thread: 8 warps.
        assert_eq!(c.occupancy_limit(256), 8);
        // Tiny program: capped at max.
        assert_eq!(c.occupancy_limit(4), 32);
        // Enormous program: at least one warp.
        assert_eq!(c.occupancy_limit(100_000), 1);
    }
}
