//! Cycle-level SIMT GPU timing model (the GPGPU-Sim 4.0 stand-in).
//!
//! Models the architecture of paper Fig. 3: multiple SMs, each with warp
//! schedulers (greedy-then-oldest), a SIMT reconvergence mechanism, ALU/SFU
//! execution units, a per-SM L1 data cache, and one RT unit; all SMs share
//! an interconnect to the L2 + DRAM backend (`vksim-mem`).
//!
//! Execution is *execution-driven*: the functional interpreter
//! (`vksim-isa`) supplies each lane's next instruction, and the timing
//! model charges cycles for issue, execution-unit latency, memory and RT
//! traversal. Two divergence-handling modes are available (paper §IV-B):
//!
//! * [`simt::SimtEngine::stack`] — classic immediate-post-dominator SIMT
//!   stack with `SSY`/`SYNC` reconvergence markers;
//! * [`simt::SimtEngine::multipath`] — independent thread scheduling as a
//!   multi-path table, letting warp splits interleave (and overlap
//!   `traverseAS` latency).
//!
//! The `traverseAS` instruction routes the issuing warp (split) to the
//! SM's RT unit; its per-lane traversal scripts come from a
//! [`ScriptSource`] implemented by the simulator core.

pub mod config;
pub mod gpu;
pub mod simt;
pub mod sm;

pub use config::{DivergenceMode, GpuConfig};
pub use gpu::{GpuFault, GpuSim, GpuStats, LaunchDims, RunOutcome};
pub use simt::{CtxOutcome, Mask, SimtEngine, FULL_MASK};
pub use sm::TickReport;
pub use vksim_fault::{FaultPlan, HangClass, SimError, WorkerPanicSpec};

/// Supplies the per-thread traversal scripts recorded by the functional
/// model when `traverseAS` executed (the paper's transactions buffer,
/// §III-B4). Implemented by the simulator core's RT runtime.
pub trait ScriptSource {
    /// Takes (and clears) the script for thread `tid`'s most recent
    /// `traverseAS`.
    fn take_script(&mut self, tid: usize) -> Vec<vksim_rtunit::Step>;
}

/// Number of lanes per warp (paper Table III: warp size 32).
pub const WARP_SIZE: usize = 32;
