//! Whole-GPU simulation: SM array + shared memory backend + kernel launch.

use crate::config::GpuConfig;
use crate::sm::{GpuHooks, Sm};
use crate::{Mask, WARP_SIZE};
use std::collections::VecDeque;
use vksim_isa::{Program, SimMemory};
use vksim_mem::SharedMemSystem;
use vksim_stats::{Counters, Histogram};

/// Ray-tracing launch dimensions (`vkCmdTraceRaysKHR` width/height/depth).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LaunchDims {
    /// Launch width (image width).
    pub width: u32,
    /// Launch height (image height).
    pub height: u32,
    /// Launch depth.
    pub depth: u32,
}

impl LaunchDims {
    /// Total threads (one per ray-generation invocation).
    pub fn total_threads(&self) -> usize {
        self.width as usize * self.height as usize * self.depth as usize
    }
}

struct WarpSeed {
    id: u32,
    base_tid: usize,
    active: Mask,
}

/// Aggregated results of a kernel run.
#[derive(Clone, Debug)]
pub struct GpuStats {
    /// Total simulated core cycles.
    pub cycles: u64,
    /// Instructions issued (warp-instructions).
    pub issued_insts: u64,
    /// SIMT efficiency: mean active lanes per issued instruction / 32.
    pub simt_efficiency: f64,
    /// RT-unit SIMT efficiency (active rays per resident-warp lane-cycle).
    pub rt_simt_efficiency: f64,
    /// Merged per-SM counters (instruction mix, coalescing, RT unit ...).
    pub counters: Counters,
    /// Merged L1 statistics.
    pub l1_stats: Counters,
    /// Merged dedicated RT cache statistics (empty when not configured).
    pub rtc_stats: Counters,
    /// L2 statistics.
    pub l2_stats: Counters,
    /// DRAM statistics.
    pub dram_stats: Counters,
    /// DRAM efficiency (Fig. 16).
    pub dram_efficiency: f64,
    /// DRAM utilization (Fig. 16).
    pub dram_utilization: f64,
    /// RT-unit warp latency distribution (Fig. 13).
    pub rt_warp_latency: Histogram,
    /// Cycles with at least one RT-unit-resident warp, summed over SMs.
    pub rt_busy_cycles: u64,
    /// Resident-warp-cycles in RT units (occupancy integral, Fig. 18).
    pub rt_resident_warp_cycles: u64,
    /// Per-SM RT-unit occupancy traces (cycle, warps, rays) (Fig. 18).
    pub rt_occupancy: Vec<Vec<(u64, u32, u32)>>,
    /// Total box/triangle/transform operations (roofline numerator).
    pub rt_ops: u64,
    /// 32 B chunks fetched by RT units (roofline denominator).
    pub rt_chunks_fetched: u64,
}

/// The execution-driven GPU simulator.
///
/// Owns the SM array, the shared L2/DRAM backend and the functional memory
/// image. Drive it with [`GpuSim::launch`] followed by [`GpuSim::run`].
pub struct GpuSim {
    config: GpuConfig,
    sms: Vec<Sm>,
    shared: SharedMemSystem,
    /// The functional memory image (descriptor sets, AS, framebuffers).
    pub mem: SimMemory,
    program: Option<Program>,
    pending: VecDeque<WarpSeed>,
    cycle: u64,
}

impl GpuSim {
    /// Builds an idle GPU.
    pub fn new(config: GpuConfig) -> Self {
        let sms = (0..config.num_sms).map(|i| Sm::new(i, &config)).collect();
        let shared = SharedMemSystem::new(config.mem.clone());
        GpuSim {
            config,
            sms,
            shared,
            mem: SimMemory::new(),
            program: None,
            pending: VecDeque::new(),
            cycle: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Prepares a kernel launch: one thread per raygen invocation, warps of
    /// 32 consecutive x-coordinates (paper §III-B5: block size (32,1,1)).
    pub fn launch(&mut self, program: Program, dims: LaunchDims) {
        let total = dims.total_threads();
        let mut id = 0;
        let mut base = 0usize;
        self.pending.clear();
        while base < total {
            let lanes = (total - base).min(WARP_SIZE);
            let active: Mask = if lanes == WARP_SIZE {
                u32::MAX
            } else {
                (1u32 << lanes) - 1
            };
            self.pending.push_back(WarpSeed {
                id,
                base_tid: base,
                active,
            });
            id += 1;
            base += WARP_SIZE;
        }
        self.program = Some(program);
    }

    fn refill_sms(&mut self) {
        let Some(program) = &self.program else { return };
        let limit = self.config.occupancy_limit(program.num_regs() as u32);
        // Fill the least-loaded SM first (round-robin-ish by load).
        loop {
            if self.pending.is_empty() {
                break;
            }
            let Some((idx, _)) = self
                .sms
                .iter()
                .enumerate()
                .map(|(i, sm)| (i, sm.resident_warps()))
                .filter(|&(_, n)| n < limit)
                .min_by_key(|&(_, n)| n)
            else {
                break;
            };
            let seed = self.pending.pop_front().expect("nonempty");
            self.sms[idx].add_warp(seed.id, seed.base_tid, seed.active, program);
        }
    }

    /// Runs the launched kernel to completion.
    ///
    /// # Panics
    ///
    /// Panics if no kernel was launched or the cycle bound is exceeded
    /// (runaway simulation).
    pub fn run(&mut self, hooks: &mut dyn GpuHooks) -> GpuStats {
        let program = self.program.clone().expect("launch() before run()");
        self.refill_sms();
        while self.sms.iter().any(|s| !s.is_empty()) || !self.pending.is_empty() {
            self.cycle += 1;
            assert!(
                self.cycle < self.config.max_cycles,
                "simulation exceeded {} cycles",
                self.config.max_cycles
            );
            // 1. Backend completions routed to their SM.
            for (id, at) in self.shared.advance_to(self.cycle) {
                let sm = (id >> 48) as usize;
                if let Some(sm) = self.sms.get_mut(sm) {
                    sm.on_mem_complete(id, at.max(self.cycle));
                }
            }
            // 2. SM cycles.
            let mut retired = false;
            for sm in &mut self.sms {
                retired |= sm.tick(self.cycle, &program, &mut self.mem, &mut self.shared, hooks);
            }
            if retired {
                self.refill_sms();
            }
        }
        self.collect_stats()
    }

    /// Current cycle count.
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    fn collect_stats(&self) -> GpuStats {
        let mut counters = Counters::new();
        let mut l1_stats = Counters::new();
        let mut rtc_stats = Counters::new();
        let mut issued_insts = 0;
        let mut issued_lanes = 0;
        let mut rt_warp_latency = Histogram::new(1000.0);
        let mut rt_busy = 0;
        let mut rt_resident = 0;
        let mut rt_active_rays = 0;
        let mut rt_occupancy = Vec::new();
        for sm in &self.sms {
            counters.merge(&sm.stats);
            l1_stats.merge(&sm.l1().stats);
            if let Some(rtc) = sm.rtc() {
                rtc_stats.merge(&rtc.stats);
            }
            issued_insts += sm.issued_insts;
            issued_lanes += sm.issued_lanes;
            let rts = sm.rt_unit.stats();
            counters.merge(&rts.counters);
            rt_warp_latency.merge(&rts.warp_latency);
            rt_busy += rts.busy_cycles;
            rt_resident += rts.resident_warp_cycles;
            rt_active_rays += rts.active_ray_cycles;
            rt_occupancy.push(sm.rt_unit.occupancy_trace().to_vec());
        }
        let rt_ops = counters.get("ops.box_tests")
            + counters.get("ops.triangle_tests")
            + counters.get("ops.transforms");
        GpuStats {
            cycles: self.cycle,
            issued_insts,
            simt_efficiency: if issued_insts == 0 {
                0.0
            } else {
                issued_lanes as f64 / (issued_insts * WARP_SIZE as u64) as f64
            },
            rt_simt_efficiency: if rt_resident == 0 {
                0.0
            } else {
                rt_active_rays as f64 / (rt_resident * WARP_SIZE as u64) as f64
            },
            counters,
            l1_stats,
            rtc_stats,
            l2_stats: self.shared.l2().stats.clone(),
            dram_stats: self.shared.dram().stats.clone(),
            dram_efficiency: self.shared.dram().efficiency(),
            dram_utilization: self.shared.dram().utilization(self.cycle.max(1)),
            rt_warp_latency,
            rt_busy_cycles: rt_busy,
            rt_resident_warp_cycles: rt_resident,
            rt_occupancy,
            rt_ops,
            rt_chunks_fetched: self
                .sms
                .iter()
                .map(|s| s.rt_unit.stats().counters.get("mem.issued"))
                .sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScriptSource;
    use vksim_isa::interp::{NoRt, RayDesc, RtHooks};
    use vksim_isa::op::{RtIdxQuery, RtQuery};
    use vksim_isa::ProgramBuilder;
    use vksim_rtunit::{OpKind, Step};

    /// Hooks for GPU tests: launch ids + canned traversal scripts.
    struct TestHooks {
        width: u32,
        scripts_taken: usize,
    }

    impl RtHooks for TestHooks {
        fn traverse(&mut self, _tid: usize, _ray: RayDesc) {}
        fn end_trace(&mut self, _tid: usize) {}
        fn alloc_mem(&mut self, _tid: usize, _size: u32) -> u64 {
            0
        }
        fn query(&mut self, tid: usize, q: RtQuery) -> u32 {
            match q {
                RtQuery::LaunchId(0) => (tid as u32) % self.width,
                RtQuery::LaunchId(1) => (tid as u32) / self.width,
                RtQuery::LaunchId(_) => 0,
                RtQuery::HitKind => 0,
                _ => 0,
            }
        }
        fn query_idx(&mut self, _tid: usize, _q: RtIdxQuery, _idx: u32) -> u32 {
            0
        }
        fn intersection_valid(&mut self, _tid: usize, _idx: u32) -> bool {
            false
        }
        fn next_coalesced_call(&mut self, _tid: usize, _idx: u32) -> u32 {
            u32::MAX
        }
        fn report_intersection(&mut self, _tid: usize, _idx: u32, _t: f32) {}
    }

    impl ScriptSource for TestHooks {
        fn take_script(&mut self, tid: usize) -> Vec<Step> {
            self.scripts_taken += 1;
            vec![Step::Fetch {
                addr: 0x8000_0000 + (tid as u64 % 7) * 64,
                size: 64,
                op: OpKind::Box { tests: 6 },
            }]
        }
    }

    impl ScriptSource for NoRt {
        fn take_script(&mut self, _tid: usize) -> Vec<Step> {
            Vec::new()
        }
    }

    fn small_config() -> GpuConfig {
        GpuConfig {
            num_sms: 2,
            max_cycles: 50_000_000,
            ..GpuConfig::baseline()
        }
    }

    #[test]
    fn store_kernel_writes_every_thread() {
        // Each thread stores its launch-id x to out[tid].
        let mut b = ProgramBuilder::new();
        let [idx, base, addr, four] = b.regs::<4>();
        b.emit(vksim_isa::op::Instr::RtRead {
            dst: idx,
            query: RtQuery::LaunchId(0),
        });
        b.mov_imm_u32(base, 0x10_0000);
        b.mov_imm_u32(four, 4);
        b.imul(addr, idx, four);
        b.iadd(addr, addr, base);
        b.st_global(addr, 0, idx);
        b.exit();
        let program = b.build();

        let mut gpu = GpuSim::new(small_config());
        gpu.launch(
            program,
            LaunchDims {
                width: 64,
                height: 1,
                depth: 1,
            },
        );
        let mut hooks = TestHooks {
            width: 64,
            scripts_taken: 0,
        };
        let stats = gpu.run(&mut hooks);
        for i in 0..64u64 {
            assert_eq!(gpu.mem.read_u32(0x10_0000 + i * 4), i as u32, "thread {i}");
        }
        assert!(stats.cycles > 0);
        assert!(stats.issued_insts >= 7 * 2); // 2 warps x 7 instructions
        assert!(
            stats.simt_efficiency > 0.9,
            "uniform kernel: {}",
            stats.simt_efficiency
        );
    }

    #[test]
    fn partial_last_warp_handled() {
        let mut b = ProgramBuilder::new();
        let [idx, base, addr, four] = b.regs::<4>();
        b.emit(vksim_isa::op::Instr::RtRead {
            dst: idx,
            query: RtQuery::LaunchId(0),
        });
        b.mov_imm_u32(base, 0x20_0000);
        b.mov_imm_u32(four, 4);
        b.imul(addr, idx, four);
        b.iadd(addr, addr, base);
        b.st_global(addr, 0, idx);
        b.exit();
        let program = b.build();
        let mut gpu = GpuSim::new(small_config());
        gpu.launch(
            program,
            LaunchDims {
                width: 40,
                height: 1,
                depth: 1,
            },
        );
        let mut hooks = TestHooks {
            width: 40,
            scripts_taken: 0,
        };
        gpu.run(&mut hooks);
        assert_eq!(gpu.mem.read_u32(0x20_0000 + 39 * 4), 39);
        // Thread 40 does not exist: untouched memory.
        assert_eq!(gpu.mem.read_u32(0x20_0000 + 40 * 4), 0);
    }

    #[test]
    fn loads_go_through_memory_hierarchy() {
        // Every thread loads the same word and stores it: one cold miss,
        // then hits.
        let mut b = ProgramBuilder::new();
        let [src, v, idx, base, addr, four] = b.regs::<6>();
        b.mov_imm_u32(src, 0x30_0000);
        b.ld_global(v, src, 0);
        b.emit(vksim_isa::op::Instr::RtRead {
            dst: idx,
            query: RtQuery::LaunchId(0),
        });
        b.mov_imm_u32(base, 0x40_0000);
        b.mov_imm_u32(four, 4);
        b.imul(addr, idx, four);
        b.iadd(addr, addr, base);
        b.st_global(addr, 0, v);
        b.exit();
        let program = b.build();
        let mut gpu = GpuSim::new(GpuConfig {
            num_sms: 1,
            ..small_config()
        });
        gpu.mem.write_u32(0x30_0000, 0xBEEF);
        gpu.launch(
            program,
            LaunchDims {
                width: 128,
                height: 1,
                depth: 1,
            },
        );
        let mut hooks = TestHooks {
            width: 128,
            scripts_taken: 0,
        };
        let stats = gpu.run(&mut hooks);
        assert_eq!(gpu.mem.read_u32(0x40_0000), 0xBEEF);
        assert_eq!(gpu.mem.read_u32(0x40_0000 + 127 * 4), 0xBEEF);
        let l1_misses = stats.l1_stats.get("shader_load.miss_compulsory");
        assert_eq!(l1_misses, 1, "one cold miss for the shared word");
        // The other three warps issue while the fill is outstanding and
        // merge into the MSHR (or, if scheduled after the fill, hit).
        let merged = stats.l1_stats.get("shader_load.miss_pending");
        let hits = stats.l1_stats.get("shader_load.hit");
        assert_eq!(merged + hits, 3, "merged={merged} hits={hits}");
    }

    #[test]
    fn trace_ray_routes_through_rt_unit() {
        let mut b = ProgramBuilder::new();
        let rs = b.regs::<9>();
        for r in &rs[..8] {
            b.mov_imm_f32(*r, 0.5);
        }
        b.mov_imm_u32(rs[8], 0);
        b.emit(vksim_isa::op::Instr::TraverseAs {
            origin: [rs[0], rs[1], rs[2]],
            dir: [rs[3], rs[4], rs[5]],
            tmin: rs[6],
            tmax: rs[7],
            flags: rs[8],
        });
        b.emit(vksim_isa::op::Instr::EndTraceRay);
        b.exit();
        let program = b.build();
        let mut gpu = GpuSim::new(GpuConfig {
            num_sms: 1,
            ..small_config()
        });
        gpu.launch(
            program,
            LaunchDims {
                width: 256,
                height: 1,
                depth: 1,
            },
        );
        let mut hooks = TestHooks {
            width: 256,
            scripts_taken: 0,
        };
        let stats = gpu.run(&mut hooks);
        assert_eq!(hooks.scripts_taken, 256, "every lane's script consumed");
        assert_eq!(stats.counters.get("rt.trace_warps"), 8);
        assert_eq!(stats.counters.get("warps_completed"), 8);
        assert!(stats.rt_busy_cycles > 0);
        assert!(stats.rt_ops > 0);
        // 8 warps > 4 RT slots: some enqueues must have stalled.
        assert!(stats.counters.get("rt.enqueue_stall") > 0 || stats.cycles > 10);
    }

    #[test]
    fn divergent_branch_lowers_simt_efficiency() {
        // if (lane_id < 8) { long ALU block } else { other block }
        let mut b = ProgramBuilder::new();
        let [idx, eight, acc, one] = b.regs::<4>();
        let p = b.pred();
        b.emit(vksim_isa::op::Instr::RtRead {
            dst: idx,
            query: RtQuery::LaunchId(0),
        });
        b.mov_imm_u32(eight, 8);
        b.mov_imm_u32(acc, 0);
        b.mov_imm_u32(one, 1);
        b.setp_i(p, vksim_isa::op::CmpOp::Lt, idx, eight);
        let join = b.new_label();
        let els = b.new_label();
        b.ssy(join);
        b.bra_if(els, p, false);
        for _ in 0..20 {
            b.iadd(acc, acc, one);
        }
        b.bra(join);
        b.bind_label(els);
        for _ in 0..20 {
            b.iadd(acc, acc, one);
        }
        b.bind_label(join);
        b.sync();
        b.exit();
        let program = b.build();
        let mut gpu = GpuSim::new(GpuConfig {
            num_sms: 1,
            ..small_config()
        });
        gpu.launch(
            program,
            LaunchDims {
                width: 32,
                height: 1,
                depth: 1,
            },
        );
        let mut hooks = TestHooks {
            width: 32,
            scripts_taken: 0,
        };
        let stats = gpu.run(&mut hooks);
        assert_eq!(stats.counters.get("divergent_branches"), 1);
        assert!(
            stats.simt_efficiency < 0.8,
            "divergence must cost efficiency: {}",
            stats.simt_efficiency
        );
    }

    #[test]
    fn multipath_mode_completes_divergent_kernel() {
        let mut b = ProgramBuilder::new();
        let [idx, half, acc, one] = b.regs::<4>();
        let p = b.pred();
        b.emit(vksim_isa::op::Instr::RtRead {
            dst: idx,
            query: RtQuery::LaunchId(0),
        });
        b.mov_imm_u32(half, 16);
        b.mov_imm_u32(acc, 0);
        b.mov_imm_u32(one, 1);
        b.setp_i(p, vksim_isa::op::CmpOp::Lt, idx, half);
        let join = b.new_label();
        let els = b.new_label();
        b.ssy(join);
        b.bra_if(els, p, false);
        b.iadd(acc, acc, one);
        b.bra(join);
        b.bind_label(els);
        b.iadd(acc, acc, one);
        b.bind_label(join);
        b.sync();
        // Store acc so we can verify both sides ran.
        let [base, addr, four] = b.regs::<3>();
        b.mov_imm_u32(base, 0x50_0000);
        b.mov_imm_u32(four, 4);
        b.imul(addr, idx, four);
        b.iadd(addr, addr, base);
        b.st_global(addr, 0, acc);
        b.exit();
        let program = b.build();
        let mut gpu = GpuSim::new(GpuConfig {
            num_sms: 1,
            divergence: DivergenceMode::Multipath,
            ..small_config()
        });
        gpu.launch(
            program,
            LaunchDims {
                width: 32,
                height: 1,
                depth: 1,
            },
        );
        let mut hooks = TestHooks {
            width: 32,
            scripts_taken: 0,
        };
        gpu.run(&mut hooks);
        for i in 0..32u64 {
            assert_eq!(gpu.mem.read_u32(0x50_0000 + i * 4), 1, "lane {i}");
        }
    }

    use crate::config::DivergenceMode;

    #[test]
    fn occupancy_respects_register_limit() {
        let c = GpuConfig::baseline();
        assert_eq!(c.occupancy_limit(2048), 1);
    }
}
