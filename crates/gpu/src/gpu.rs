//! Whole-GPU simulation: SM array + shared memory backend + kernel launch.
//!
//! The cycle loop is a *two-phase* engine (see DESIGN.md): phase A ticks
//! every SM against SM-local state only, buffering outbound memory requests
//! in per-SM [`RequestQueue`]s and functional-memory writes in per-SM
//! [`WriteOverlay`]s; phase B drains both serially in SM-id order into the
//! shared backend and memory image. Because the drain order is fixed, the
//! request interleaving — and every counter — is identical whether phase A
//! ran on one thread or many.

use crate::config::GpuConfig;
use crate::sm::{GpuHooks, Sm};
use crate::{Mask, WARP_SIZE};
use std::collections::{BTreeMap, VecDeque};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};
use vksim_fault::{panic_detail, HangClass, SimError};
use vksim_isa::{OverlayMem, Program, SimMemory, WriteOverlay};
use vksim_mem::{RequestQueue, SharedMemSystem};
use vksim_parallel::{chunk_range, DoneGuard, RoundBarrier, ShutdownGuard};
use vksim_stats::{Counters, Histogram};
use vksim_trace::{
    Event, EventKind, IntervalSnapshot, ProfReport, RtSmAnalytics, TraceCollector, TraceReport,
    NO_WARP, NUM_CATEGORIES, NUM_RT_SERIES,
};

/// Ray-tracing launch dimensions (`vkCmdTraceRaysKHR` width/height/depth).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LaunchDims {
    /// Launch width (image width).
    pub width: u32,
    /// Launch height (image height).
    pub height: u32,
    /// Launch depth.
    pub depth: u32,
}

impl LaunchDims {
    /// Total threads (one per ray-generation invocation).
    pub fn total_threads(&self) -> usize {
        self.width as usize * self.height as usize * self.depth as usize
    }
}

struct WarpSeed {
    id: u32,
    base_tid: usize,
    active: Mask,
}

impl WarpSeed {
    fn save(&self, e: &mut vksim_snapshot::Enc) {
        e.u32(self.id);
        e.usize(self.base_tid);
        e.u32(self.active);
    }

    fn load(d: &mut vksim_snapshot::Dec<'_>) -> Result<Self, vksim_snapshot::SnapError> {
        Ok(WarpSeed {
            id: d.u32()?,
            base_tid: d.usize()?,
            active: d.u32()?,
        })
    }
}

/// How a bounded run slice ended: the kernel completed (with its stats) or
/// the engine paused at the requested cycle boundary, ready to continue or
/// be checkpointed.
#[derive(Debug)]
pub enum RunOutcome {
    /// The kernel ran to completion.
    Done(Box<GpuStats>),
    /// The stop cycle was reached with work still resident; machine state
    /// is at a clean cycle boundary (phase B drained).
    Paused,
}

/// Aggregated results of a kernel run.
#[derive(Clone, Debug)]
pub struct GpuStats {
    /// Total simulated core cycles.
    pub cycles: u64,
    /// Instructions issued (warp-instructions).
    pub issued_insts: u64,
    /// SIMT efficiency: mean active lanes per issued instruction / 32.
    pub simt_efficiency: f64,
    /// RT-unit SIMT efficiency (active rays per resident-warp lane-cycle).
    pub rt_simt_efficiency: f64,
    /// Merged per-SM counters (instruction mix, coalescing, RT unit ...).
    pub counters: Counters,
    /// Merged L1 statistics.
    pub l1_stats: Counters,
    /// Merged dedicated RT cache statistics (empty when not configured).
    pub rtc_stats: Counters,
    /// L2 statistics.
    pub l2_stats: Counters,
    /// DRAM statistics.
    pub dram_stats: Counters,
    /// DRAM efficiency (Fig. 16).
    pub dram_efficiency: f64,
    /// DRAM utilization (Fig. 16).
    pub dram_utilization: f64,
    /// RT-unit warp latency distribution (Fig. 13).
    pub rt_warp_latency: Histogram,
    /// Cycles with at least one RT-unit-resident warp, summed over SMs.
    pub rt_busy_cycles: u64,
    /// Resident-warp-cycles in RT units (occupancy integral, Fig. 18).
    pub rt_resident_warp_cycles: u64,
    /// Per-SM RT-unit occupancy traces (cycle, warps, rays) (Fig. 18).
    pub rt_occupancy: Vec<Vec<(u64, u32, u32)>>,
    /// Total box/triangle/transform operations (roofline numerator).
    pub rt_ops: u64,
    /// 32 B chunks fetched by RT units (roofline denominator).
    pub rt_chunks_fetched: u64,
}

/// A failed GPU run: the classified error, the statistics accumulated up
/// to the faulting cycle, and the post-mortem dump path (when the dump
/// could be written).
#[derive(Debug)]
pub struct GpuFault {
    /// What went wrong.
    pub error: SimError,
    /// Partial statistics, valid up to the faulting cycle.
    pub stats: GpuStats,
    /// Flat post-mortem snapshot written via [`vksim_fault::write_dump`].
    pub dump: Option<PathBuf>,
}

impl std::fmt::Display for GpuFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.error)?;
        if let Some(d) = &self.dump {
            write!(f, " (post-mortem dump: {})", d.display())?;
        }
        Ok(())
    }
}

impl std::error::Error for GpuFault {}

/// Watchdog hang classification: schedulable-but-idle beats
/// blocked-on-busy-memory beats blocked-on-idle-memory.
fn classify_hang(any_issuable: bool, mem_idle: bool) -> HangClass {
    if any_issuable {
        HangClass::SimtLivelock
    } else if !mem_idle {
        HangClass::AllWarpsBlockedOnMemory
    } else {
        HangClass::ScoreboardWedge
    }
}

/// The execution-driven GPU simulator.
///
/// Owns the SM array, the shared L2/DRAM backend and the functional memory
/// image. Drive it with [`GpuSim::launch`] followed by [`GpuSim::run`].
pub struct GpuSim {
    config: GpuConfig,
    sms: Vec<Sm>,
    shared: SharedMemSystem,
    /// The functional memory image (descriptor sets, AS, framebuffers).
    pub mem: SimMemory,
    program: Option<Program>,
    pending: VecDeque<WarpSeed>,
    cycle: u64,
    dropped_completions: u64,
    faults: u64,
    /// Per-SM outbound request queues. Owned by the GPU (not the run
    /// loops) because the bounded interconnect can refuse requests in
    /// phase B, leaving them queued across cycle — and therefore pause —
    /// boundaries.
    queues: Vec<RequestQueue>,
    /// Watchdog baseline: the last cycle that made forward progress.
    /// Persisted so a checkpointed run resumes with the same hang window.
    last_progress: u64,
    /// Serial merge point for the tracing layer; `None` when tracing is
    /// off (the default), so the engines pay one null check per cycle.
    collector: Option<TraceCollector>,
}

/// Per-SM hook selection for the serial engine: one shared hook object
/// (`run`) or one shard per SM (`run_sharded`).
trait HookSet {
    fn get(&mut self, sm: usize) -> &mut dyn GpuHooks;
}

struct SingleHooks<'a>(&'a mut dyn GpuHooks);

impl HookSet for SingleHooks<'_> {
    fn get(&mut self, _sm: usize) -> &mut dyn GpuHooks {
        &mut *self.0
    }
}

struct ShardedHooks<'a, H>(&'a mut [H]);

impl<H: GpuHooks> HookSet for ShardedHooks<'_, H> {
    fn get(&mut self, sm: usize) -> &mut dyn GpuHooks {
        &mut self.0[sm]
    }
}

/// One SM's slice of engine state, lockable by a phase-A worker.
struct Lane<'h, H> {
    sm: Sm,
    hooks: &'h mut H,
    queue: RequestQueue,
    overlay: WriteOverlay,
    /// Backend completions routed to this SM, delivered at its next tick.
    inbox: Vec<(u64, u64)>,
    retired: bool,
    progress: bool,
    /// Tick fault (or contained panic), harvested by the coordinator in
    /// phase B.
    fault: Option<SimError>,
    empty: bool,
}

/// Converts a DRAM row-activate sample into a trace event.
fn row_activate_event((cycle, partition, channel, bank): (u64, u32, u32, u32)) -> Event {
    Event {
        cycle,
        warp: NO_WARP,
        kind: EventKind::DramRowActivate {
            partition,
            channel,
            bank,
        },
    }
}

/// Accumulates one SM's cumulative raw counters into an interval snapshot.
fn absorb_sm_snapshot(snap: &mut IntervalSnapshot, sm: &Sm) {
    snap.issued_insts += sm.issued_insts;
    snap.l1_hits += sm.l1().total_hits();
    snap.l1_misses += sm.l1().total_misses();
    if let Some(rtc) = sm.rtc() {
        snap.l1_hits += rtc.total_hits();
        snap.l1_misses += rtc.total_misses();
    }
    let rts = sm.rt_unit.stats();
    snap.rt_resident_warp_cycles += rts.resident_warp_cycles;
    snap.rt_busy_cycles += rts.busy_cycles;
}

/// Merges per-SM cumulative cycle-accounting category counts; `None`
/// when accounting is disabled on any SM (presence is uniform).
fn accounting_totals(sms: &[Sm]) -> Option<[u64; NUM_CATEGORIES]> {
    let mut totals = [0u64; NUM_CATEGORIES];
    for sm in sms {
        for (t, v) in totals.iter_mut().zip(sm.accounting()?.categories()) {
            *t += v;
        }
    }
    Some(totals)
}

/// Merges per-SM cumulative RT-analytics series (trace warps, lane steps,
/// warp steps, RT-unit script steps); `None` when RT analytics is disabled
/// on any SM (presence is uniform).
fn rt_totals(sms: &[Sm]) -> Option<[u64; NUM_RT_SERIES]> {
    let mut totals = [0u64; NUM_RT_SERIES];
    for sm in sms {
        let coh = sm.rt_analytics()?;
        totals[0] += coh.trace_warps();
        totals[1] += coh.lane_steps();
        totals[2] += coh.warp_steps();
        totals[3] += sm.rt_unit.analytics().map_or(0, |a| a.steps);
    }
    Some(totals)
}

/// Fills the shared-backend fields of an interval snapshot.
fn absorb_backend_snapshot(snap: &mut IntervalSnapshot, shared: &SharedMemSystem) {
    let (l2_hits, l2_misses, dram_reqs, dram_transfer) = shared.traffic_totals();
    snap.l2_hits = l2_hits;
    snap.l2_misses = l2_misses;
    snap.dram_reqs = dram_reqs;
    snap.dram_transfer_cycles = dram_transfer;
}

/// Replicates [`GpuSim::refill_sms`] over locked lanes: fill the
/// least-loaded SM below the occupancy limit first, lowest SM id winning
/// ties (same tiebreak as `Iterator::min_by_key`).
fn refill_lanes<H>(
    lanes: &[Mutex<Lane<'_, H>>],
    pending: &mut VecDeque<WarpSeed>,
    limit: usize,
    program: &Program,
) {
    while !pending.is_empty() {
        let mut best: Option<(usize, usize)> = None;
        for (i, lane) in lanes.iter().enumerate() {
            let n = lane.lock().expect("lane lock").sm.resident_warps();
            if n < limit && best.is_none_or(|(_, bn)| n < bn) {
                best = Some((i, n));
            }
        }
        let Some((idx, _)) = best else { break };
        let seed = pending.pop_front().expect("nonempty");
        let mut lane = lanes[idx].lock().expect("lane lock");
        lane.sm
            .add_warp(seed.id, seed.base_tid, seed.active, program);
        lane.empty = false;
    }
}

impl GpuSim {
    /// Builds an idle GPU.
    pub fn new(config: GpuConfig) -> Self {
        let trace = config.effective_trace();
        let sms = (0..config.num_sms)
            .map(|i| {
                let mut sm = Sm::new(i, &config);
                if trace.enabled {
                    sm.enable_trace(&trace);
                }
                if trace.accounting {
                    sm.enable_accounting();
                }
                if trace.rt_analytics {
                    sm.enable_rt_analytics();
                }
                sm
            })
            .collect();
        let mut shared = SharedMemSystem::new(config.mem.clone());
        if let Some(n) = config.fault_plan.drop_nth_completion {
            shared.inject_drop_nth_completion(n);
        }
        if trace.enabled {
            shared.set_trace(true);
        }
        let num_sms = config.num_sms;
        GpuSim {
            config,
            sms,
            shared,
            mem: SimMemory::new(),
            program: None,
            pending: VecDeque::new(),
            cycle: 0,
            dropped_completions: 0,
            faults: 0,
            queues: (0..num_sms).map(|_| RequestQueue::new()).collect(),
            last_progress: 0,
            collector: trace
                .enabled
                .then(|| TraceCollector::new(trace, num_sms as u32)),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Prepares a kernel launch: one thread per raygen invocation, warps of
    /// 32 consecutive x-coordinates (paper §III-B5: block size (32,1,1)).
    pub fn launch(&mut self, program: Program, dims: LaunchDims) {
        let total = dims.total_threads();
        let mut id = 0;
        let mut base = 0usize;
        self.pending.clear();
        while base < total {
            let lanes = (total - base).min(WARP_SIZE);
            let active: Mask = if lanes == WARP_SIZE {
                u32::MAX
            } else {
                (1u32 << lanes) - 1
            };
            self.pending.push_back(WarpSeed {
                id,
                base_tid: base,
                active,
            });
            id += 1;
            base += WARP_SIZE;
        }
        self.program = Some(program);
    }

    fn refill_sms(&mut self) {
        let Some(program) = &self.program else { return };
        let limit = self.config.occupancy_limit(program.num_regs() as u32);
        // Fill the least-loaded SM first (round-robin-ish by load).
        loop {
            if self.pending.is_empty() {
                break;
            }
            let Some((idx, _)) = self
                .sms
                .iter()
                .enumerate()
                .map(|(i, sm)| (i, sm.resident_warps()))
                .filter(|&(_, n)| n < limit)
                .min_by_key(|&(_, n)| n)
            else {
                break;
            };
            let seed = self.pending.pop_front().expect("nonempty");
            self.sms[idx].add_warp(seed.id, seed.base_tid, seed.active, program);
        }
    }

    /// Runs the launched kernel to completion with one shared hook object
    /// (always single-threaded; see [`GpuSim::run_sharded`] for the
    /// parallel engine).
    ///
    /// # Errors
    ///
    /// Returns a [`GpuFault`] — classified [`SimError`], partial
    /// statistics and the post-mortem dump path — when a lane faults, the
    /// cycle cap is exceeded, a tick panics, or the forward-progress
    /// watchdog declares a hang.
    ///
    /// # Panics
    ///
    /// Panics if no kernel was launched.
    pub fn run(&mut self, hooks: &mut dyn GpuHooks) -> Result<GpuStats, Box<GpuFault>> {
        match self.run_serial(&mut SingleHooks(hooks), None)? {
            RunOutcome::Done(stats) => Ok(*stats),
            RunOutcome::Paused => unreachable!("unbounded run cannot pause"),
        }
    }

    /// Runs until the kernel completes or the cycle counter reaches
    /// `stop_at`, whichever comes first. A [`RunOutcome::Paused`] return
    /// leaves the machine at a clean cycle boundary (phase B drained, no
    /// in-flight overlays), so [`GpuSim::save_state`] captures a state from
    /// which a resumed run is bit-identical to an uninterrupted one.
    ///
    /// # Errors
    ///
    /// As [`GpuSim::run`].
    ///
    /// # Panics
    ///
    /// Panics if no kernel was launched.
    pub fn run_until(
        &mut self,
        hooks: &mut dyn GpuHooks,
        stop_at: u64,
    ) -> Result<RunOutcome, Box<GpuFault>> {
        self.run_serial(&mut SingleHooks(hooks), Some(stop_at))
    }

    /// Runs the launched kernel with one hook shard per SM, using
    /// [`GpuConfig::effective_threads`] phase-A workers. Produces
    /// bit-identical counters at any thread count; with one thread it is
    /// exactly the serial engine.
    ///
    /// # Errors
    ///
    /// As [`GpuSim::run`]: every failure mode — including a worker panic
    /// in the parallel engine — surfaces as a classified [`GpuFault`]
    /// rather than a poisoned barrier or a raw panic.
    ///
    /// # Panics
    ///
    /// Panics if `shards.len() != num_sms` or no kernel was launched.
    pub fn run_sharded<H: GpuHooks + Send>(
        &mut self,
        shards: &mut [H],
    ) -> Result<GpuStats, Box<GpuFault>> {
        match self.run_sharded_inner(shards, None)? {
            RunOutcome::Done(stats) => Ok(*stats),
            RunOutcome::Paused => unreachable!("unbounded run cannot pause"),
        }
    }

    /// Sharded-hooks variant of [`GpuSim::run_until`]: runs until the
    /// kernel completes or `stop_at` is reached, with the engine chosen by
    /// [`GpuConfig::effective_threads`]. Pause placement is identical in
    /// the serial and parallel engines (the end of a phase-B boundary), so
    /// checkpoints are thread-count invariant.
    ///
    /// # Errors
    ///
    /// As [`GpuSim::run_sharded`].
    ///
    /// # Panics
    ///
    /// Panics if `shards.len() != num_sms` or no kernel was launched.
    pub fn run_sharded_until<H: GpuHooks + Send>(
        &mut self,
        shards: &mut [H],
        stop_at: u64,
    ) -> Result<RunOutcome, Box<GpuFault>> {
        self.run_sharded_inner(shards, Some(stop_at))
    }

    fn run_sharded_inner<H: GpuHooks + Send>(
        &mut self,
        shards: &mut [H],
        stop_at: Option<u64>,
    ) -> Result<RunOutcome, Box<GpuFault>> {
        assert_eq!(
            shards.len(),
            self.sms.len(),
            "run_sharded needs one hook shard per SM"
        );
        let threads = self.config.effective_threads().min(self.sms.len().max(1));
        if threads <= 1 {
            self.run_serial(&mut ShardedHooks(shards), stop_at)
        } else {
            self.run_parallel(shards, threads, stop_at)
        }
    }

    /// Reference two-phase engine, single-threaded.
    fn run_serial(
        &mut self,
        hooks: &mut dyn HookSet,
        stop_at: Option<u64>,
    ) -> Result<RunOutcome, Box<GpuFault>> {
        let program = self.program.clone().expect("launch() before run()");
        self.refill_sms();
        let num = self.sms.len();
        let watchdog = self.config.effective_watchdog();
        let plan = self.config.fault_plan;
        let mut queues = std::mem::take(&mut self.queues);
        debug_assert_eq!(queues.len(), num, "one request queue per SM");
        let mut overlays: Vec<WriteOverlay> = (0..num).map(|_| WriteOverlay::new()).collect();
        let mut last_progress = self.last_progress;
        let mut fault: Option<SimError> = None;
        let mut paused = false;
        'cycles: while self.sms.iter().any(|s| !s.is_empty()) || !self.pending.is_empty() {
            self.cycle += 1;
            if self.cycle >= self.config.max_cycles {
                fault = Some(SimError::MaxCycles {
                    limit: self.config.max_cycles,
                });
                break;
            }
            // Backend completions routed to their SM.
            let completions = self.shared.advance_to(self.cycle);
            let mut progress = !completions.is_empty();
            for (id, at) in completions {
                let sm = (id >> 48) as usize;
                debug_assert!(
                    sm < num,
                    "completion id {id:#x} routes to nonexistent SM {sm}"
                );
                match self.sms.get_mut(sm) {
                    Some(sm) => sm.on_mem_complete(id, at.max(self.cycle)),
                    None => self.dropped_completions += 1,
                }
            }
            // Phase A: tick SMs against SM-local state only. Each tick is
            // panic-contained so a deep failure becomes a classified
            // fault, not a torn-down process.
            let mut retired = false;
            for (i, sm) in self.sms.iter_mut().enumerate() {
                let mut view = OverlayMem::new(&self.mem, &mut overlays[i]);
                let queue = &mut queues[i];
                let hk = hooks.get(i);
                let cycle = self.cycle;
                let ticked = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    if let Some(spec) = plan.worker_panic {
                        if spec.sm == i && cycle >= spec.cycle {
                            panic!("injected worker panic (fault plan)");
                        }
                    }
                    sm.tick(cycle, &program, &mut view, queue, hk)
                }));
                match ticked {
                    Ok(Ok(t)) => {
                        retired |= t.retired;
                        progress |= t.progress;
                    }
                    Ok(Err(e)) => {
                        fault = Some(*e);
                        break 'cycles;
                    }
                    Err(p) => {
                        fault = Some(SimError::WorkerPanicked {
                            sm: i,
                            detail: panic_detail(&*p),
                        });
                        break 'cycles;
                    }
                }
            }
            // Phase B: drain request queues and write overlays in SM-id
            // order.
            for i in 0..num {
                queues[i].drain_into(&mut self.shared);
                overlays[i].apply_to(&mut self.mem);
            }
            self.drain_trace(self.cycle);
            if retired {
                self.refill_sms();
            }
            if progress {
                last_progress = self.cycle;
            } else if watchdog > 0 && self.cycle - last_progress >= watchdog {
                let issuable = self.sms.iter().any(|s| s.has_issuable_ctx(self.cycle));
                fault = Some(SimError::Hang {
                    class: classify_hang(issuable, self.shared.is_idle()),
                    window: watchdog,
                    cycle: self.cycle,
                });
                break;
            }
            if stop_at.is_some_and(|s| self.cycle >= s) {
                paused = true;
                break;
            }
        }
        self.queues = queues;
        self.last_progress = last_progress;
        match fault {
            Some(e) => Err(self.fail(e)),
            None if paused => {
                self.debug_assert_conservation();
                Ok(RunOutcome::Paused)
            }
            None => {
                self.debug_assert_conservation();
                Ok(RunOutcome::Done(Box::new(self.collect_stats())))
            }
        }
    }

    /// Two-phase engine with `threads` phase-A workers on scoped threads.
    ///
    /// Workers own disjoint contiguous lane ranges; the functional memory
    /// image is read-shared during a round (writes land in per-lane
    /// overlays) and exclusively held by the coordinator between rounds.
    fn run_parallel<H: GpuHooks + Send>(
        &mut self,
        shards: &mut [H],
        threads: usize,
        stop_at: Option<u64>,
    ) -> Result<RunOutcome, Box<GpuFault>> {
        let program = self.program.clone().expect("launch() before run()");
        self.refill_sms();
        let limit = self.config.occupancy_limit(program.num_regs() as u32);
        let max_cycles = self.config.max_cycles;
        let watchdog = self.config.effective_watchdog();
        let plan = self.config.fault_plan;
        let mut cycle = self.cycle;
        let mut last_progress = self.last_progress;
        let mut fault: Option<SimError> = None;
        let mut paused = false;

        let mem = RwLock::new(std::mem::take(&mut self.mem));
        let queues = std::mem::take(&mut self.queues);
        debug_assert_eq!(queues.len(), self.sms.len(), "one request queue per SM");
        let lanes: Vec<Mutex<Lane<'_, H>>> = std::mem::take(&mut self.sms)
            .into_iter()
            .zip(shards.iter_mut())
            .zip(queues)
            .map(|((sm, hooks), queue)| {
                let empty = sm.is_empty();
                Mutex::new(Lane {
                    sm,
                    hooks,
                    queue,
                    overlay: WriteOverlay::new(),
                    inbox: Vec::new(),
                    retired: false,
                    progress: false,
                    fault: None,
                    empty,
                })
            })
            .collect();
        let barrier = RoundBarrier::new(threads);
        let now_cycle = AtomicU64::new(cycle);

        std::thread::scope(|s| {
            let _shutdown = ShutdownGuard::new(&barrier);
            for w in 0..threads {
                let range = chunk_range(lanes.len(), threads, w);
                let (lanes, mem, barrier, now_cycle, program) =
                    (&lanes, &mem, &barrier, &now_cycle, &program);
                s.spawn(move || {
                    let mut epoch = 0;
                    while let Some(e) = barrier.wait_round(epoch) {
                        epoch = e;
                        let _done = DoneGuard::new(barrier);
                        let now = now_cycle.load(Ordering::Acquire);
                        let base = mem.read().expect("functional memory lock");
                        for i in range.clone() {
                            let mut lane = lanes[i].lock().expect("lane lock");
                            let lane = &mut *lane;
                            for (id, at) in lane.inbox.drain(..) {
                                lane.sm.on_mem_complete(id, at);
                            }
                            let mut view = OverlayMem::new(&base, &mut lane.overlay);
                            // Contain panics per lane: a dying tick must
                            // not poison the round barrier and hang the
                            // coordinator; it becomes a classified fault
                            // harvested in phase B.
                            let sm = &mut lane.sm;
                            let queue = &mut lane.queue;
                            let hooks = &mut lane.hooks;
                            let ticked = std::panic::catch_unwind(AssertUnwindSafe(|| {
                                if let Some(spec) = plan.worker_panic {
                                    if spec.sm == i && now >= spec.cycle {
                                        panic!("injected worker panic (fault plan)");
                                    }
                                }
                                sm.tick(now, program, &mut view, queue, &mut **hooks)
                            }));
                            match ticked {
                                Ok(Ok(t)) => {
                                    lane.retired = t.retired;
                                    lane.progress = t.progress;
                                }
                                Ok(Err(e)) => {
                                    lane.retired = false;
                                    lane.progress = false;
                                    lane.fault = Some(*e);
                                }
                                Err(p) => {
                                    lane.retired = false;
                                    lane.progress = false;
                                    lane.fault = Some(SimError::WorkerPanicked {
                                        sm: i,
                                        detail: panic_detail(&*p),
                                    });
                                }
                            }
                            lane.empty = lane.sm.is_empty();
                        }
                    }
                });
            }

            loop {
                let active = !self.pending.is_empty()
                    || lanes.iter().any(|l| !l.lock().expect("lane lock").empty);
                if !active {
                    break;
                }
                cycle += 1;
                if cycle >= max_cycles {
                    fault = Some(SimError::MaxCycles { limit: max_cycles });
                    break;
                }
                // Backend completions routed to lane inboxes; each SM
                // delivers its own inbox at the start of its tick, exactly
                // as the serial engine routes before ticking.
                let completions = self.shared.advance_to(cycle);
                let mut progress = !completions.is_empty();
                for (id, at) in completions {
                    let sm = (id >> 48) as usize;
                    debug_assert!(
                        sm < lanes.len(),
                        "completion id {id:#x} routes to nonexistent SM {sm}"
                    );
                    match lanes.get(sm) {
                        Some(l) => l.lock().expect("lane lock").inbox.push((id, at.max(cycle))),
                        None => self.dropped_completions += 1,
                    }
                }
                // Phase A (parallel).
                now_cycle.store(cycle, Ordering::Release);
                barrier.begin_round();
                // Defense in depth: panics are contained per lane above,
                // but if a worker still dies outside that net the barrier
                // reports poison instead of spinning forever.
                let poisoned = barrier.try_wait_workers().is_err();
                // Phase B (serial, SM-id order).
                let mut base = mem.write().expect("functional memory lock");
                let mut retired = false;
                for l in &lanes {
                    let mut lane = l.lock().expect("lane lock");
                    lane.queue.drain_into(&mut self.shared);
                    lane.overlay.apply_to(&mut base);
                    retired |= lane.retired;
                    progress |= lane.progress;
                    if fault.is_none() {
                        fault = lane.fault.take();
                    }
                }
                drop(base);
                // Trace maintenance, identical to the serial engine's: the
                // lane iteration order IS SM-id order, so the merged event
                // stream is thread-count invariant.
                if let Some(col) = self.collector.as_mut() {
                    let num = lanes.len() as u32;
                    for (i, l) in lanes.iter().enumerate() {
                        let mut lane = l.lock().expect("lane lock");
                        if let Some(tr) = lane.sm.tracer_mut() {
                            col.drain_sm(i as u32, tr);
                        }
                    }
                    let rows = self.shared.take_row_activates();
                    col.push_mem_events(num, rows.into_iter().map(row_activate_event));
                    let interval = col.interval();
                    if interval > 0 && cycle.is_multiple_of(interval) {
                        let mut snap = IntervalSnapshot::default();
                        let mut totals = [0u64; NUM_CATEGORIES];
                        let mut accounting = true;
                        for l in &lanes {
                            let lane = l.lock().expect("lane lock");
                            absorb_sm_snapshot(&mut snap, &lane.sm);
                            match lane.sm.accounting() {
                                Some(acc) => {
                                    for (t, v) in totals.iter_mut().zip(acc.categories()) {
                                        *t += v;
                                    }
                                }
                                None => accounting = false,
                            }
                        }
                        let mut rt = [0u64; NUM_RT_SERIES];
                        let mut rt_on = true;
                        for l in &lanes {
                            let lane = l.lock().expect("lane lock");
                            match lane.sm.rt_analytics() {
                                Some(coh) => {
                                    rt[0] += coh.trace_warps();
                                    rt[1] += coh.lane_steps();
                                    rt[2] += coh.warp_steps();
                                    rt[3] += lane.sm.rt_unit.analytics().map_or(0, |a| a.steps);
                                }
                                None => rt_on = false,
                            }
                        }
                        absorb_backend_snapshot(&mut snap, &self.shared);
                        col.sample(cycle, snap);
                        if accounting {
                            col.sample_prof(cycle, totals);
                        }
                        if rt_on {
                            col.sample_rt(cycle, rt);
                        }
                    }
                }
                if fault.is_none() && poisoned {
                    fault = Some(SimError::WorkerPanicked {
                        sm: 0,
                        detail: "a phase-A worker poisoned the round barrier".into(),
                    });
                }
                if fault.is_some() {
                    break;
                }
                if retired {
                    refill_lanes(&lanes, &mut self.pending, limit, &program);
                }
                if progress {
                    last_progress = cycle;
                } else if watchdog > 0 && cycle - last_progress >= watchdog {
                    let issuable = lanes
                        .iter()
                        .any(|l| l.lock().expect("lane lock").sm.has_issuable_ctx(cycle));
                    fault = Some(SimError::Hang {
                        class: classify_hang(issuable, self.shared.is_idle()),
                        window: watchdog,
                        cycle,
                    });
                    break;
                }
                if stop_at.is_some_and(|s| cycle >= s) {
                    paused = true;
                    break;
                }
            }
        });

        let mut sms = Vec::with_capacity(lanes.len());
        let mut queues = Vec::with_capacity(lanes.len());
        for l in lanes {
            let lane = l.into_inner().expect("lane lock");
            sms.push(lane.sm);
            queues.push(lane.queue);
        }
        self.sms = sms;
        self.queues = queues;
        self.mem = mem.into_inner().expect("functional memory lock");
        self.cycle = cycle;
        self.last_progress = last_progress;
        match fault {
            Some(e) => Err(self.fail(e)),
            None if paused => {
                self.debug_assert_conservation();
                Ok(RunOutcome::Paused)
            }
            None => {
                self.debug_assert_conservation();
                Ok(RunOutcome::Done(Box::new(self.collect_stats())))
            }
        }
    }

    /// Current cycle count.
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    /// Serializes the complete machine state — every SM, the per-SM
    /// request queues (which carry interconnect backpressure across cycle
    /// boundaries), the shared L2/DRAM backend, the functional memory
    /// image, pending warps, cycle/watchdog cursors and the trace
    /// collector — into a checkpoint payload. Must be called at a clean
    /// cycle boundary (between [`GpuSim::run_until`] slices); overlays are
    /// always empty there and are not written.
    pub fn save_state(&self, e: &mut vksim_snapshot::Enc) {
        e.seq(self.sms.len());
        for sm in &self.sms {
            sm.save(e);
        }
        e.seq(self.queues.len());
        for q in &self.queues {
            q.save(e);
        }
        self.shared.save(e);
        self.mem.save(e);
        e.seq(self.pending.len());
        for seed in &self.pending {
            seed.save(e);
        }
        e.u64(self.cycle);
        e.u64(self.dropped_completions);
        e.u64(self.faults);
        e.u64(self.last_progress);
        match &self.collector {
            None => e.u8(0),
            Some(col) => {
                e.u8(1);
                col.save(e);
            }
        }
    }

    /// Restores machine state written by [`GpuSim::save_state`] into this
    /// GPU. Call on a freshly built and launched [`GpuSim`] whose
    /// configuration matches the saving run's (the snapshot fingerprint
    /// check upstream guarantees this); the launch-seeded pending queue is
    /// replaced wholesale by the snapshot's.
    ///
    /// # Errors
    ///
    /// A snapshot whose SM/queue/partition geometry disagrees with the
    /// current configuration — or whose tracing state disagrees with the
    /// effective trace config — is malformed.
    pub fn restore_state(
        &mut self,
        d: &mut vksim_snapshot::Dec<'_>,
    ) -> Result<(), vksim_snapshot::SnapError> {
        let n = d.seq()?;
        if n != self.config.num_sms {
            return Err(vksim_snapshot::SnapError::Malformed(format!(
                "snapshot has {n} SMs, config has {}",
                self.config.num_sms
            )));
        }
        let trace = self.config.effective_trace();
        let mut sms = Vec::with_capacity(n);
        for i in 0..n {
            let sm = Sm::load(i, &self.config, d)?;
            if sm.accounting().is_some() != trace.accounting {
                return Err(vksim_snapshot::SnapError::Malformed(format!(
                    "cycle-accounting presence mismatch on SM {i}: snapshot {}, \
                     accounting {}abled in config",
                    if sm.accounting().is_some() {
                        "has it"
                    } else {
                        "lacks it"
                    },
                    if trace.accounting { "en" } else { "dis" }
                )));
            }
            if sm.rt_analytics().is_some() != trace.rt_analytics {
                return Err(vksim_snapshot::SnapError::Malformed(format!(
                    "rt-analytics presence mismatch on SM {i}: snapshot {}, \
                     rt analytics {}abled in config",
                    if sm.rt_analytics().is_some() {
                        "has it"
                    } else {
                        "lacks it"
                    },
                    if trace.rt_analytics { "en" } else { "dis" }
                )));
            }
            sms.push(sm);
        }
        self.sms = sms;
        let nq = d.seq()?;
        if nq != n {
            return Err(vksim_snapshot::SnapError::Malformed(format!(
                "snapshot has {nq} request queues for {n} SMs"
            )));
        }
        let mut queues = Vec::with_capacity(nq);
        for _ in 0..nq {
            queues.push(RequestQueue::load(d)?);
        }
        self.queues = queues;
        self.shared = SharedMemSystem::load(self.config.mem.clone(), d)?;
        self.mem = SimMemory::load(d)?;
        let np = d.seq()?;
        let mut pending = VecDeque::with_capacity(np);
        for _ in 0..np {
            pending.push_back(WarpSeed::load(d)?);
        }
        self.pending = pending;
        self.cycle = d.u64()?;
        self.dropped_completions = d.u64()?;
        self.faults = d.u64()?;
        self.last_progress = d.u64()?;
        self.collector = match (d.u8()?, trace.enabled) {
            (0, false) => None,
            (1, true) => Some(TraceCollector::load(trace, self.config.num_sms as u32, d)?),
            (tag @ (0 | 1), enabled) => {
                return Err(vksim_snapshot::SnapError::Malformed(format!(
                    "trace collector presence mismatch: snapshot tag {tag}, \
                     tracing {}abled in config",
                    if enabled { "en" } else { "dis" }
                )))
            }
            (t, _) => {
                return Err(vksim_snapshot::SnapError::Malformed(format!(
                    "trace collector tag {t}"
                )))
            }
        };
        Ok(())
    }

    /// Phase-B trace maintenance for the serial engine: drains per-SM
    /// staged events in SM-id order, appends shared-backend events under
    /// the memory pseudo-process, and samples the interval series. No-op
    /// when tracing is disabled.
    fn drain_trace(&mut self, cycle: u64) {
        let Some(col) = self.collector.as_mut() else {
            return;
        };
        for sm in &mut self.sms {
            let id = sm.id as u32;
            if let Some(tr) = sm.tracer_mut() {
                col.drain_sm(id, tr);
            }
        }
        let rows = self.shared.take_row_activates();
        let num = self.sms.len() as u32;
        col.push_mem_events(num, rows.into_iter().map(row_activate_event));
        let interval = col.interval();
        if interval > 0 && cycle.is_multiple_of(interval) {
            let mut snap = IntervalSnapshot::default();
            for sm in &self.sms {
                absorb_sm_snapshot(&mut snap, sm);
            }
            absorb_backend_snapshot(&mut snap, &self.shared);
            col.sample(cycle, snap);
            if let Some(totals) = accounting_totals(&self.sms) {
                col.sample_prof(cycle, totals);
            }
            if let Some(totals) = rt_totals(&self.sms) {
                col.sample_rt(cycle, totals);
            }
        }
    }

    /// Finishes the tracing layer: closes open spans, drains the residue,
    /// samples the tail interval and folds everything into an exportable
    /// [`TraceReport`]. Returns `None` when tracing is disabled; call once
    /// after a run (healthy or faulted).
    pub fn take_trace_report(&mut self) -> Option<TraceReport> {
        let mut col = self.collector.take()?;
        for sm in &mut self.sms {
            let id = sm.id as u32;
            sm.finalize_trace(self.cycle);
            if let Some(tr) = sm.tracer_mut() {
                col.drain_sm(id, tr);
            }
        }
        let rows = self.shared.take_row_activates();
        col.push_mem_events(
            self.sms.len() as u32,
            rows.into_iter().map(row_activate_event),
        );
        let mut snap = IntervalSnapshot::default();
        for sm in &self.sms {
            absorb_sm_snapshot(&mut snap, sm);
        }
        absorb_backend_snapshot(&mut snap, &self.shared);
        col.sample(self.cycle, snap);
        if let Some(totals) = accounting_totals(&self.sms) {
            col.sample_prof(self.cycle, totals);
        }
        if let Some(totals) = rt_totals(&self.sms) {
            col.sample_rt(self.cycle, totals);
        }
        for sm in &self.sms {
            if let Some(tr) = sm.tracer() {
                col.absorb_aggregates(sm.id as u32, tr);
            }
        }
        Some(col.finish(self.cycle, self.sms.len() as u32))
    }

    /// Gathers the cycle-accounting breakdown: elapsed cycles, per-SM
    /// category tallies and issue totals. `None` when accounting is
    /// disabled. Valid at any clean cycle boundary (after a healthy run,
    /// a pause, or a restore); the conservation invariant
    /// `Σ categories == num_sms × cycles` holds exactly there.
    pub fn prof_report(&self) -> Option<ProfReport> {
        let mut per_sm = Vec::with_capacity(self.sms.len());
        for sm in &self.sms {
            per_sm.push(sm.accounting()?.clone());
        }
        Some(ProfReport {
            cycles: self.cycle,
            per_sm,
            issued_insts: self.sms.iter().map(|s| s.issued_insts).sum(),
            issued_lanes: self.sms.iter().map(|s| s.issued_lanes).sum(),
        })
    }

    /// Gathers the timing-side half of the ray-traversal analytics report:
    /// one [`RtSmAnalytics`] per SM (warp traversal coherence plus RT-unit
    /// job/step/latency attribution) and the total RT-unit box-test
    /// operation count (the conservation anchor against the functional
    /// model's per-ray box-test tallies). `None` when RT analytics is
    /// disabled.
    pub fn rt_report_parts(&self) -> Option<(Vec<RtSmAnalytics>, u64)> {
        let mut per_sm = Vec::with_capacity(self.sms.len());
        for sm in &self.sms {
            let coherence = sm.rt_analytics()?.clone();
            let rtu = sm.rt_unit.analytics()?;
            per_sm.push(RtSmAnalytics {
                coherence,
                rtu_jobs: rtu.jobs,
                rtu_steps: rtu.steps,
                rtu_latency: rtu.latency_total,
            });
        }
        let rt_box_ops = self
            .sms
            .iter()
            .map(|sm| sm.rt_unit.stats().counters.get("ops.box_tests"))
            .sum();
        Some((per_sm, rt_box_ops))
    }

    /// Debug-only conservation check, run at healthy loop exits: every SM
    /// must have attributed exactly `cycle` cycles. Fault paths can leave
    /// later SMs unticked mid-cycle and legitimately violate this.
    fn debug_assert_conservation(&self) {
        if cfg!(debug_assertions) {
            if let Some(report) = self.prof_report() {
                debug_assert!(
                    report.conservation_holds(),
                    "cycle accounting leaked: {} cycles attributed over {} SMs at cycle {}",
                    report.merged().total(),
                    report.num_sms(),
                    report.cycles,
                );
            }
        }
    }

    /// Wraps a classified error with partial statistics and a post-mortem
    /// dump into the [`GpuFault`] returned by the run paths.
    fn fail(&mut self, error: SimError) -> Box<GpuFault> {
        self.faults += 1;
        let stats = self.collect_stats();
        let dump = self.write_post_mortem(&error);
        Box::new(GpuFault { error, stats, dump })
    }

    /// Serializes the engine state at the fault: cycle, pending warps,
    /// per-SM scheduler/queue state and the fault class, as a flat
    /// `name -> u64` JSON dump.
    fn write_post_mortem(&self, error: &SimError) -> Option<PathBuf> {
        let mut snap: BTreeMap<String, u64> = BTreeMap::new();
        snap.insert("fault.kind".into(), error.kind_code());
        snap.insert("cycle".into(), self.cycle);
        snap.insert("pending_warps".into(), self.pending.len() as u64);
        snap.insert("mem.idle".into(), u64::from(self.shared.is_idle()));
        for sm in &self.sms {
            sm.post_mortem(&mut snap);
        }
        vksim_fault::write_dump(&snap).ok()
    }

    fn collect_stats(&self) -> GpuStats {
        let mut counters = Counters::new();
        let mut l1_stats = Counters::new();
        let mut rtc_stats = Counters::new();
        let mut issued_insts = 0;
        let mut issued_lanes = 0;
        let mut rt_warp_latency = Histogram::new(1000.0);
        let mut rt_busy = 0;
        let mut rt_resident = 0;
        let mut rt_active_rays = 0;
        let mut rt_occupancy = Vec::new();
        for sm in &self.sms {
            counters.merge(&sm.stats);
            l1_stats.merge(&sm.l1().stats);
            if let Some(rtc) = sm.rtc() {
                rtc_stats.merge(&rtc.stats);
            }
            issued_insts += sm.issued_insts;
            issued_lanes += sm.issued_lanes;
            let rts = sm.rt_unit.stats();
            counters.merge(&rts.counters);
            rt_warp_latency.merge(&rts.warp_latency);
            rt_busy += rts.busy_cycles;
            rt_resident += rts.resident_warp_cycles;
            rt_active_rays += rts.active_ray_cycles;
            rt_occupancy.push(sm.rt_unit.occupancy_trace().to_vec());
        }
        let rt_ops = counters.get("ops.box_tests")
            + counters.get("ops.triangle_tests")
            + counters.get("ops.transforms");
        if self.dropped_completions > 0 {
            // Only inserted when nonzero so golden key sets are unchanged
            // on healthy runs.
            counters.add("gpu.dropped_completions", self.dropped_completions);
        }
        if let Some(col) = &self.collector {
            // Same convention: a healthy sampler leaves no key behind.
            let underflows = col.sampler_underflows();
            if underflows > 0 {
                counters.add("trace.sampler_underflow", underflows);
            }
        }
        // Backpressure observability: only-when-nonzero, so unbounded
        // (depth 0) runs keep their historical golden key sets.
        for key in ["icnt.refused", "dram.bank_full_retries"] {
            let v = self.shared.stats.get(key);
            if v > 0 {
                counters.add(key, v);
            }
        }
        // Same convention: healthy, watchdog-off runs carry neither key.
        counters.add("gpu.watchdog_armed", self.config.effective_watchdog());
        counters.add("gpu.faults", self.faults);
        GpuStats {
            cycles: self.cycle,
            issued_insts,
            simt_efficiency: if issued_insts == 0 {
                0.0
            } else {
                issued_lanes as f64 / (issued_insts * WARP_SIZE as u64) as f64
            },
            rt_simt_efficiency: if rt_resident == 0 {
                0.0
            } else {
                rt_active_rays as f64 / (rt_resident * WARP_SIZE as u64) as f64
            },
            counters,
            l1_stats,
            rtc_stats,
            l2_stats: self.shared.l2_stats(),
            dram_stats: self.shared.dram_stats(),
            dram_efficiency: self.shared.dram_efficiency(),
            dram_utilization: self.shared.dram_utilization(self.cycle.max(1)),
            rt_warp_latency,
            rt_busy_cycles: rt_busy,
            rt_resident_warp_cycles: rt_resident,
            rt_occupancy,
            rt_ops,
            rt_chunks_fetched: self
                .sms
                .iter()
                .map(|s| s.rt_unit.stats().counters.get("mem.issued"))
                .sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScriptSource;
    use vksim_isa::interp::{NoRt, RayDesc, RtHooks};
    use vksim_isa::op::{RtIdxQuery, RtQuery};
    use vksim_isa::ProgramBuilder;
    use vksim_rtunit::{OpKind, Step};

    /// Hooks for GPU tests: launch ids + canned traversal scripts.
    struct TestHooks {
        width: u32,
        scripts_taken: usize,
    }

    impl RtHooks for TestHooks {
        fn traverse(&mut self, _tid: usize, _ray: RayDesc) -> Result<(), vksim_isa::RtError> {
            Ok(())
        }
        fn end_trace(&mut self, _tid: usize) {}
        fn alloc_mem(&mut self, _tid: usize, _size: u32) -> u64 {
            0
        }
        fn query(&mut self, tid: usize, q: RtQuery) -> u32 {
            match q {
                RtQuery::LaunchId(0) => (tid as u32) % self.width,
                RtQuery::LaunchId(1) => (tid as u32) / self.width,
                RtQuery::LaunchId(_) => 0,
                RtQuery::HitKind => 0,
                _ => 0,
            }
        }
        fn query_idx(&mut self, _tid: usize, _q: RtIdxQuery, _idx: u32) -> u32 {
            0
        }
        fn intersection_valid(&mut self, _tid: usize, _idx: u32) -> bool {
            false
        }
        fn next_coalesced_call(&mut self, _tid: usize, _idx: u32) -> u32 {
            u32::MAX
        }
        fn report_intersection(
            &mut self,
            _tid: usize,
            _idx: u32,
            _t: f32,
        ) -> Result<(), vksim_isa::RtError> {
            Ok(())
        }
    }

    impl ScriptSource for TestHooks {
        fn take_script(&mut self, tid: usize) -> Vec<Step> {
            self.scripts_taken += 1;
            vec![Step::Fetch {
                addr: 0x8000_0000 + (tid as u64 % 7) * 64,
                size: 64,
                op: OpKind::Box { tests: 6 },
            }]
        }
    }

    impl ScriptSource for NoRt {
        fn take_script(&mut self, _tid: usize) -> Vec<Step> {
            Vec::new()
        }
    }

    fn small_config() -> GpuConfig {
        GpuConfig {
            num_sms: 2,
            max_cycles: 50_000_000,
            ..GpuConfig::baseline()
        }
    }

    #[test]
    fn store_kernel_writes_every_thread() {
        // Each thread stores its launch-id x to out[tid].
        let mut b = ProgramBuilder::new();
        let [idx, base, addr, four] = b.regs::<4>();
        b.emit(vksim_isa::op::Instr::RtRead {
            dst: idx,
            query: RtQuery::LaunchId(0),
        });
        b.mov_imm_u32(base, 0x10_0000);
        b.mov_imm_u32(four, 4);
        b.imul(addr, idx, four);
        b.iadd(addr, addr, base);
        b.st_global(addr, 0, idx);
        b.exit();
        let program = b.build();

        let mut gpu = GpuSim::new(small_config());
        gpu.launch(
            program,
            LaunchDims {
                width: 64,
                height: 1,
                depth: 1,
            },
        );
        let mut hooks = TestHooks {
            width: 64,
            scripts_taken: 0,
        };
        let stats = gpu.run(&mut hooks).expect("healthy run");
        for i in 0..64u64 {
            assert_eq!(gpu.mem.read_u32(0x10_0000 + i * 4), i as u32, "thread {i}");
        }
        assert!(stats.cycles > 0);
        assert!(stats.issued_insts >= 7 * 2); // 2 warps x 7 instructions
        assert!(
            stats.simt_efficiency > 0.9,
            "uniform kernel: {}",
            stats.simt_efficiency
        );
    }

    #[test]
    fn partial_last_warp_handled() {
        let mut b = ProgramBuilder::new();
        let [idx, base, addr, four] = b.regs::<4>();
        b.emit(vksim_isa::op::Instr::RtRead {
            dst: idx,
            query: RtQuery::LaunchId(0),
        });
        b.mov_imm_u32(base, 0x20_0000);
        b.mov_imm_u32(four, 4);
        b.imul(addr, idx, four);
        b.iadd(addr, addr, base);
        b.st_global(addr, 0, idx);
        b.exit();
        let program = b.build();
        let mut gpu = GpuSim::new(small_config());
        gpu.launch(
            program,
            LaunchDims {
                width: 40,
                height: 1,
                depth: 1,
            },
        );
        let mut hooks = TestHooks {
            width: 40,
            scripts_taken: 0,
        };
        gpu.run(&mut hooks).expect("healthy run");
        assert_eq!(gpu.mem.read_u32(0x20_0000 + 39 * 4), 39);
        // Thread 40 does not exist: untouched memory.
        assert_eq!(gpu.mem.read_u32(0x20_0000 + 40 * 4), 0);
    }

    #[test]
    fn loads_go_through_memory_hierarchy() {
        // Every thread loads the same word and stores it: one cold miss,
        // then hits.
        let mut b = ProgramBuilder::new();
        let [src, v, idx, base, addr, four] = b.regs::<6>();
        b.mov_imm_u32(src, 0x30_0000);
        b.ld_global(v, src, 0);
        b.emit(vksim_isa::op::Instr::RtRead {
            dst: idx,
            query: RtQuery::LaunchId(0),
        });
        b.mov_imm_u32(base, 0x40_0000);
        b.mov_imm_u32(four, 4);
        b.imul(addr, idx, four);
        b.iadd(addr, addr, base);
        b.st_global(addr, 0, v);
        b.exit();
        let program = b.build();
        let mut gpu = GpuSim::new(GpuConfig {
            num_sms: 1,
            ..small_config()
        });
        gpu.mem.write_u32(0x30_0000, 0xBEEF);
        gpu.launch(
            program,
            LaunchDims {
                width: 128,
                height: 1,
                depth: 1,
            },
        );
        let mut hooks = TestHooks {
            width: 128,
            scripts_taken: 0,
        };
        let stats = gpu.run(&mut hooks).expect("healthy run");
        assert_eq!(gpu.mem.read_u32(0x40_0000), 0xBEEF);
        assert_eq!(gpu.mem.read_u32(0x40_0000 + 127 * 4), 0xBEEF);
        let l1_misses = stats.l1_stats.get("shader_load.miss_compulsory");
        assert_eq!(l1_misses, 1, "one cold miss for the shared word");
        // The other three warps issue while the fill is outstanding and
        // merge into the MSHR (or, if scheduled after the fill, hit).
        let merged = stats.l1_stats.get("shader_load.miss_pending");
        let hits = stats.l1_stats.get("shader_load.hit");
        assert_eq!(merged + hits, 3, "merged={merged} hits={hits}");
    }

    #[test]
    fn trace_ray_routes_through_rt_unit() {
        let mut b = ProgramBuilder::new();
        let rs = b.regs::<9>();
        for r in &rs[..8] {
            b.mov_imm_f32(*r, 0.5);
        }
        b.mov_imm_u32(rs[8], 0);
        b.emit(vksim_isa::op::Instr::TraverseAs {
            origin: [rs[0], rs[1], rs[2]],
            dir: [rs[3], rs[4], rs[5]],
            tmin: rs[6],
            tmax: rs[7],
            flags: rs[8],
        });
        b.emit(vksim_isa::op::Instr::EndTraceRay);
        b.exit();
        let program = b.build();
        let mut gpu = GpuSim::new(GpuConfig {
            num_sms: 1,
            ..small_config()
        });
        gpu.launch(
            program,
            LaunchDims {
                width: 256,
                height: 1,
                depth: 1,
            },
        );
        let mut hooks = TestHooks {
            width: 256,
            scripts_taken: 0,
        };
        let stats = gpu.run(&mut hooks).expect("healthy run");
        assert_eq!(hooks.scripts_taken, 256, "every lane's script consumed");
        assert_eq!(stats.counters.get("rt.trace_warps"), 8);
        assert_eq!(stats.counters.get("warps_completed"), 8);
        assert!(stats.rt_busy_cycles > 0);
        assert!(stats.rt_ops > 0);
        // 8 warps > 4 RT slots: some enqueues must have stalled.
        assert!(stats.counters.get("rt.enqueue_stall") > 0 || stats.cycles > 10);
    }

    #[test]
    fn divergent_branch_lowers_simt_efficiency() {
        // if (lane_id < 8) { long ALU block } else { other block }
        let mut b = ProgramBuilder::new();
        let [idx, eight, acc, one] = b.regs::<4>();
        let p = b.pred();
        b.emit(vksim_isa::op::Instr::RtRead {
            dst: idx,
            query: RtQuery::LaunchId(0),
        });
        b.mov_imm_u32(eight, 8);
        b.mov_imm_u32(acc, 0);
        b.mov_imm_u32(one, 1);
        b.setp_i(p, vksim_isa::op::CmpOp::Lt, idx, eight);
        let join = b.new_label();
        let els = b.new_label();
        b.ssy(join);
        b.bra_if(els, p, false);
        for _ in 0..20 {
            b.iadd(acc, acc, one);
        }
        b.bra(join);
        b.bind_label(els);
        for _ in 0..20 {
            b.iadd(acc, acc, one);
        }
        b.bind_label(join);
        b.sync();
        b.exit();
        let program = b.build();
        let mut gpu = GpuSim::new(GpuConfig {
            num_sms: 1,
            ..small_config()
        });
        gpu.launch(
            program,
            LaunchDims {
                width: 32,
                height: 1,
                depth: 1,
            },
        );
        let mut hooks = TestHooks {
            width: 32,
            scripts_taken: 0,
        };
        let stats = gpu.run(&mut hooks).expect("healthy run");
        assert_eq!(stats.counters.get("divergent_branches"), 1);
        assert!(
            stats.simt_efficiency < 0.8,
            "divergence must cost efficiency: {}",
            stats.simt_efficiency
        );
    }

    #[test]
    fn multipath_mode_completes_divergent_kernel() {
        let mut b = ProgramBuilder::new();
        let [idx, half, acc, one] = b.regs::<4>();
        let p = b.pred();
        b.emit(vksim_isa::op::Instr::RtRead {
            dst: idx,
            query: RtQuery::LaunchId(0),
        });
        b.mov_imm_u32(half, 16);
        b.mov_imm_u32(acc, 0);
        b.mov_imm_u32(one, 1);
        b.setp_i(p, vksim_isa::op::CmpOp::Lt, idx, half);
        let join = b.new_label();
        let els = b.new_label();
        b.ssy(join);
        b.bra_if(els, p, false);
        b.iadd(acc, acc, one);
        b.bra(join);
        b.bind_label(els);
        b.iadd(acc, acc, one);
        b.bind_label(join);
        b.sync();
        // Store acc so we can verify both sides ran.
        let [base, addr, four] = b.regs::<3>();
        b.mov_imm_u32(base, 0x50_0000);
        b.mov_imm_u32(four, 4);
        b.imul(addr, idx, four);
        b.iadd(addr, addr, base);
        b.st_global(addr, 0, acc);
        b.exit();
        let program = b.build();
        let mut gpu = GpuSim::new(GpuConfig {
            num_sms: 1,
            divergence: DivergenceMode::Multipath,
            ..small_config()
        });
        gpu.launch(
            program,
            LaunchDims {
                width: 32,
                height: 1,
                depth: 1,
            },
        );
        let mut hooks = TestHooks {
            width: 32,
            scripts_taken: 0,
        };
        gpu.run(&mut hooks).expect("healthy run");
        for i in 0..32u64 {
            assert_eq!(gpu.mem.read_u32(0x50_0000 + i * 4), 1, "lane {i}");
        }
    }

    use crate::config::DivergenceMode;

    #[test]
    fn occupancy_respects_register_limit() {
        let c = GpuConfig::baseline();
        assert_eq!(c.occupancy_limit(2048), 1);
    }

    fn trace_program() -> vksim_isa::Program {
        let mut b = ProgramBuilder::new();
        let rs = b.regs::<9>();
        for r in &rs[..8] {
            b.mov_imm_f32(*r, 0.5);
        }
        b.mov_imm_u32(rs[8], 0);
        b.emit(vksim_isa::op::Instr::TraverseAs {
            origin: [rs[0], rs[1], rs[2]],
            dir: [rs[3], rs[4], rs[5]],
            tmin: rs[6],
            tmax: rs[7],
            flags: rs[8],
        });
        b.emit(vksim_isa::op::Instr::EndTraceRay);
        b.exit();
        b.build()
    }

    fn run_trace_with_threads(threads: usize) -> GpuStats {
        let mut gpu = GpuSim::new(GpuConfig {
            threads,
            ..small_config()
        });
        gpu.launch(
            trace_program(),
            LaunchDims {
                width: 256,
                height: 1,
                depth: 1,
            },
        );
        let mut shards: Vec<TestHooks> = (0..2)
            .map(|_| TestHooks {
                width: 256,
                scripts_taken: 0,
            })
            .collect();
        let stats = gpu.run_sharded(&mut shards).expect("healthy run");
        let taken: usize = shards.iter().map(|h| h.scripts_taken).sum();
        assert_eq!(taken, 256, "every lane's script consumed");
        stats
    }

    #[test]
    fn stalled_warp_trips_watchdog_as_simt_livelock() {
        use vksim_fault::{FaultPlan, HangClass};
        let mut gpu = GpuSim::new(GpuConfig {
            num_sms: 1,
            watchdog_cycles: 2_000,
            fault_plan: FaultPlan {
                stall_warp: Some(0),
                ..FaultPlan::default()
            },
            ..small_config()
        });
        gpu.launch(
            trace_program(),
            LaunchDims {
                width: 32,
                height: 1,
                depth: 1,
            },
        );
        let mut hooks = TestHooks {
            width: 32,
            scripts_taken: 0,
        };
        let fault = gpu.run(&mut hooks).expect_err("stalled warp must hang");
        assert!(
            matches!(
                fault.error,
                SimError::Hang {
                    class: HangClass::SimtLivelock,
                    window: 2_000,
                    ..
                }
            ),
            "{:?}",
            fault.error
        );
        assert!(fault.dump.is_some(), "post-mortem dump must be written");
        assert!(fault.stats.cycles > 0);
        assert_eq!(fault.stats.counters.get("gpu.faults"), 1);
        assert_eq!(fault.stats.counters.get("gpu.watchdog_armed"), 2_000);
    }

    #[test]
    fn injected_worker_panic_is_contained() {
        use vksim_fault::{FaultPlan, WorkerPanicSpec};
        let mut gpu = GpuSim::new(GpuConfig {
            fault_plan: FaultPlan {
                worker_panic: Some(WorkerPanicSpec { sm: 1, cycle: 5 }),
                ..FaultPlan::default()
            },
            ..small_config()
        });
        gpu.launch(
            trace_program(),
            LaunchDims {
                width: 256,
                height: 1,
                depth: 1,
            },
        );
        let mut hooks = TestHooks {
            width: 256,
            scripts_taken: 0,
        };
        let fault = gpu.run(&mut hooks).expect_err("injected panic must fault");
        match &fault.error {
            SimError::WorkerPanicked { sm, detail } => {
                assert_eq!(*sm, 1);
                assert!(detail.contains("injected worker panic"), "{detail}");
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
        assert!(fault.dump.is_some());
    }

    #[test]
    fn max_cycles_is_a_classified_error_not_a_panic() {
        use vksim_fault::FaultPlan;
        let mut gpu = GpuSim::new(GpuConfig {
            num_sms: 1,
            max_cycles: 1_000,
            fault_plan: FaultPlan {
                stall_warp: Some(0),
                ..FaultPlan::default()
            },
            ..small_config()
        });
        gpu.launch(
            trace_program(),
            LaunchDims {
                width: 32,
                height: 1,
                depth: 1,
            },
        );
        let mut hooks = TestHooks {
            width: 32,
            scripts_taken: 0,
        };
        let fault = gpu.run(&mut hooks).expect_err("cycle cap must fault");
        assert!(
            matches!(fault.error, SimError::MaxCycles { limit: 1_000 }),
            "{:?}",
            fault.error
        );
    }

    #[test]
    fn pause_save_restore_resumes_bit_identically() {
        std::env::remove_var("VKSIM_THREADS");
        let config = small_config();
        let mut hooks = TestHooks {
            width: 256,
            scripts_taken: 0,
        };
        let dims = LaunchDims {
            width: 256,
            height: 1,
            depth: 1,
        };

        // Uninterrupted reference run.
        let mut reference = GpuSim::new(config.clone());
        reference.launch(trace_program(), dims);
        let want = reference.run(&mut hooks).expect("healthy run");

        // Paused run: slice at cycle 40, snapshot, keep going.
        let mut gpu = GpuSim::new(config.clone());
        gpu.launch(trace_program(), dims);
        let mut hooks = TestHooks {
            width: 256,
            scripts_taken: 0,
        };
        let outcome = gpu.run_until(&mut hooks, 40).expect("healthy slice");
        assert!(matches!(outcome, RunOutcome::Paused), "{outcome:?}");
        assert_eq!(gpu.cycles(), 40);
        let mut enc = vksim_snapshot::Enc::new();
        gpu.save_state(&mut enc);
        let payload = enc.into_bytes();

        // Restore into a fresh GPU: re-encoding must be byte-identical.
        let mut restored = GpuSim::new(config);
        restored.launch(trace_program(), dims);
        let mut dec = vksim_snapshot::Dec::new(&payload);
        restored.restore_state(&mut dec).expect("restore");
        dec.finish().expect("full consumption");
        let mut enc2 = vksim_snapshot::Enc::new();
        restored.save_state(&mut enc2);
        assert_eq!(payload, enc2.into_bytes(), "snapshot idempotency");

        // Both the paused original and the restored copy finish exactly
        // like the uninterrupted run.
        let stats = gpu.run(&mut hooks).expect("healthy tail");
        assert_eq!(stats.cycles, want.cycles);
        assert_eq!(stats.counters, want.counters);
        assert_eq!(stats.l1_stats, want.l1_stats);
        let mut hooks = TestHooks {
            width: 256,
            scripts_taken: 0,
        };
        let stats = restored.run(&mut hooks).expect("healthy resumed tail");
        assert_eq!(stats.cycles, want.cycles);
        assert_eq!(stats.counters, want.counters);
        assert_eq!(stats.l1_stats, want.l1_stats);
        assert_eq!(stats.l2_stats, want.l2_stats);
        assert_eq!(stats.dram_stats, want.dram_stats);
    }

    #[test]
    fn restore_rejects_mismatched_sm_count() {
        let mut gpu = GpuSim::new(small_config());
        gpu.launch(
            trace_program(),
            LaunchDims {
                width: 64,
                height: 1,
                depth: 1,
            },
        );
        let mut enc = vksim_snapshot::Enc::new();
        gpu.save_state(&mut enc);
        let payload = enc.into_bytes();
        let mut other = GpuSim::new(GpuConfig {
            num_sms: 3,
            ..small_config()
        });
        let mut dec = vksim_snapshot::Dec::new(&payload);
        let err = other
            .restore_state(&mut dec)
            .expect_err("geometry mismatch");
        assert!(
            matches!(err, vksim_snapshot::SnapError::Malformed(_)),
            "{err:?}"
        );
    }

    #[test]
    fn parallel_engine_matches_serial_counters() {
        // Force the thread counts under test regardless of VKSIM_THREADS.
        std::env::remove_var("VKSIM_THREADS");
        let serial = run_trace_with_threads(1);
        let parallel = run_trace_with_threads(4);
        assert_eq!(serial.cycles, parallel.cycles);
        assert_eq!(serial.issued_insts, parallel.issued_insts);
        assert_eq!(serial.counters, parallel.counters);
        assert_eq!(serial.l1_stats, parallel.l1_stats);
        assert_eq!(serial.l2_stats, parallel.l2_stats);
        assert_eq!(serial.dram_stats, parallel.dram_stats);
    }

    fn accounting_config() -> GpuConfig {
        GpuConfig {
            trace: vksim_trace::TraceConfig {
                accounting: true,
                ..vksim_trace::TraceConfig::default()
            },
            ..small_config()
        }
    }

    #[test]
    fn accounting_attributes_every_cycle_to_one_category() {
        let mut gpu = GpuSim::new(accounting_config());
        gpu.launch(
            trace_program(),
            LaunchDims {
                width: 256,
                height: 1,
                depth: 1,
            },
        );
        let mut hooks = TestHooks {
            width: 256,
            scripts_taken: 0,
        };
        let stats = gpu.run(&mut hooks).expect("healthy run");
        let report = gpu.prof_report().expect("accounting enabled");
        assert!(report.conservation_holds(), "{report:?}");
        assert_eq!(report.cycles, stats.cycles);
        assert_eq!(report.issued_insts, stats.issued_insts);
        let merged = report.merged();
        assert!(merged.get(vksim_trace::CycleCategory::Issued) > 0);
        assert!(
            merged.get(vksim_trace::CycleCategory::RtStall) > 0,
            "trace kernel must spend cycles waiting on the RT unit: {merged:?}"
        );
        // Occupancy integrals are integer-exact and ordered.
        assert!(merged.eligible_warp_cycles() <= merged.resident_warp_cycles());
        assert!(merged.resident_warp_cycles() > 0);
    }

    #[test]
    fn accounting_disabled_leaves_no_trace_of_itself() {
        let mut gpu = GpuSim::new(small_config());
        gpu.launch(
            trace_program(),
            LaunchDims {
                width: 64,
                height: 1,
                depth: 1,
            },
        );
        let mut hooks = TestHooks {
            width: 64,
            scripts_taken: 0,
        };
        gpu.run(&mut hooks).expect("healthy run");
        assert!(gpu.prof_report().is_none());
    }

    fn run_prof_with_threads(threads: usize) -> String {
        let mut gpu = GpuSim::new(GpuConfig {
            threads,
            ..accounting_config()
        });
        gpu.launch(
            trace_program(),
            LaunchDims {
                width: 256,
                height: 1,
                depth: 1,
            },
        );
        let mut shards: Vec<TestHooks> = (0..2)
            .map(|_| TestHooks {
                width: 256,
                scripts_taken: 0,
            })
            .collect();
        gpu.run_sharded(&mut shards).expect("healthy run");
        let report = gpu.prof_report().expect("accounting enabled");
        assert!(report.conservation_holds(), "{report:?}");
        report.flat_json()
    }

    #[test]
    fn accounting_breakdown_is_thread_count_invariant() {
        std::env::remove_var("VKSIM_THREADS");
        let serial = run_prof_with_threads(1);
        let parallel = run_prof_with_threads(4);
        assert_eq!(serial, parallel, "breakdown must be byte-identical");
    }

    #[test]
    fn accounting_survives_checkpoint_byte_identically() {
        std::env::remove_var("VKSIM_THREADS");
        let config = accounting_config();
        let dims = LaunchDims {
            width: 256,
            height: 1,
            depth: 1,
        };
        let mut hooks = TestHooks {
            width: 256,
            scripts_taken: 0,
        };
        let mut reference = GpuSim::new(config.clone());
        reference.launch(trace_program(), dims);
        reference.run(&mut hooks).expect("healthy run");
        let want = reference.prof_report().expect("accounting on").flat_json();

        let mut gpu = GpuSim::new(config.clone());
        gpu.launch(trace_program(), dims);
        let mut hooks = TestHooks {
            width: 256,
            scripts_taken: 0,
        };
        let outcome = gpu.run_until(&mut hooks, 40).expect("healthy slice");
        assert!(matches!(outcome, RunOutcome::Paused), "{outcome:?}");
        let mut enc = vksim_snapshot::Enc::new();
        gpu.save_state(&mut enc);
        let payload = enc.into_bytes();

        let mut restored = GpuSim::new(config);
        restored.launch(trace_program(), dims);
        let mut dec = vksim_snapshot::Dec::new(&payload);
        restored.restore_state(&mut dec).expect("restore");
        dec.finish().expect("full consumption");
        let mut hooks = TestHooks {
            width: 256,
            scripts_taken: 0,
        };
        restored.run(&mut hooks).expect("healthy resumed tail");
        let got = restored.prof_report().expect("accounting on").flat_json();
        assert_eq!(want, got, "resumed breakdown must be byte-identical");
    }

    #[test]
    fn restore_rejects_accounting_presence_mismatch() {
        let mut gpu = GpuSim::new(accounting_config());
        gpu.launch(
            trace_program(),
            LaunchDims {
                width: 64,
                height: 1,
                depth: 1,
            },
        );
        let mut enc = vksim_snapshot::Enc::new();
        gpu.save_state(&mut enc);
        let payload = enc.into_bytes();
        let mut other = GpuSim::new(small_config());
        other.launch(
            trace_program(),
            LaunchDims {
                width: 64,
                height: 1,
                depth: 1,
            },
        );
        let mut dec = vksim_snapshot::Dec::new(&payload);
        let err = other
            .restore_state(&mut dec)
            .expect_err("accounting presence mismatch");
        assert!(
            matches!(&err, vksim_snapshot::SnapError::Malformed(m) if m.contains("accounting")),
            "{err:?}"
        );
    }

    #[test]
    fn accounting_counter_tracks_reach_chrome_trace() {
        let mut config = accounting_config();
        config.trace = vksim_trace::TraceConfig {
            enabled: true,
            interval: 16,
            ..config.trace
        };
        let mut gpu = GpuSim::new(config);
        gpu.launch(
            trace_program(),
            LaunchDims {
                width: 256,
                height: 1,
                depth: 1,
            },
        );
        let mut hooks = TestHooks {
            width: 256,
            scripts_taken: 0,
        };
        gpu.run(&mut hooks).expect("healthy run");
        let report = gpu.take_trace_report().expect("tracing enabled");
        let json = vksim_trace::chrome_trace_json(&report);
        assert!(
            json.contains("\"acct_issued\""),
            "prof counter tracks missing from chrome trace"
        );
    }

    fn rt_config() -> GpuConfig {
        GpuConfig {
            trace: vksim_trace::TraceConfig {
                rt_analytics: true,
                ..vksim_trace::TraceConfig::default()
            },
            ..small_config()
        }
    }

    #[test]
    fn rt_analytics_attributes_warps_jobs_and_steps() {
        let mut gpu = GpuSim::new(rt_config());
        gpu.launch(
            trace_program(),
            LaunchDims {
                width: 256,
                height: 1,
                depth: 1,
            },
        );
        let mut hooks = TestHooks {
            width: 256,
            scripts_taken: 0,
        };
        gpu.run(&mut hooks).expect("healthy run");
        let (per_sm, rt_box_ops) = gpu.rt_report_parts().expect("rt analytics enabled");
        assert_eq!(per_sm.len(), 2);
        let trace_warps: u64 = per_sm.iter().map(|s| s.coherence.trace_warps()).sum();
        let lane_steps: u64 = per_sm.iter().map(|s| s.coherence.lane_steps()).sum();
        let rtu_jobs: u64 = per_sm.iter().map(|s| s.rtu_jobs).sum();
        let rtu_steps: u64 = per_sm.iter().map(|s| s.rtu_steps).sum();
        let rtu_latency: u64 = per_sm.iter().map(|s| s.rtu_latency).sum();
        assert_eq!(trace_warps, 8, "256 threads = 8 trace warps");
        // Every lane runs a 1-step script, so lane steps == threads and
        // the RT units consume exactly that many script steps.
        assert_eq!(lane_steps, 256);
        assert_eq!(rtu_steps, 256);
        assert_eq!(rtu_jobs, 8, "every trace warp retires exactly once");
        assert!(rtu_latency > 0, "resident latency accumulates");
        // TestHooks scripts run one Box{tests: 6} op per thread.
        assert_eq!(rt_box_ops, 256 * 6);
    }

    #[test]
    fn rt_analytics_disabled_leaves_no_trace_of_itself() {
        let mut gpu = GpuSim::new(small_config());
        gpu.launch(
            trace_program(),
            LaunchDims {
                width: 64,
                height: 1,
                depth: 1,
            },
        );
        let mut hooks = TestHooks {
            width: 64,
            scripts_taken: 0,
        };
        gpu.run(&mut hooks).expect("healthy run");
        assert!(gpu.rt_report_parts().is_none());
    }

    fn run_rt_with_threads(threads: usize) -> String {
        let mut gpu = GpuSim::new(GpuConfig {
            threads,
            ..rt_config()
        });
        gpu.launch(
            trace_program(),
            LaunchDims {
                width: 256,
                height: 1,
                depth: 1,
            },
        );
        let mut shards: Vec<TestHooks> = (0..2)
            .map(|_| TestHooks {
                width: 256,
                scripts_taken: 0,
            })
            .collect();
        gpu.run_sharded(&mut shards).expect("healthy run");
        let parts = gpu.rt_report_parts().expect("rt analytics enabled");
        format!("{parts:?}")
    }

    #[test]
    fn rt_analytics_is_thread_count_invariant() {
        std::env::remove_var("VKSIM_THREADS");
        let serial = run_rt_with_threads(1);
        let parallel = run_rt_with_threads(4);
        assert_eq!(serial, parallel, "rt analytics must be identical");
    }

    #[test]
    fn rt_analytics_survives_checkpoint_byte_identically() {
        std::env::remove_var("VKSIM_THREADS");
        let config = rt_config();
        let dims = LaunchDims {
            width: 256,
            height: 1,
            depth: 1,
        };
        let mut hooks = TestHooks {
            width: 256,
            scripts_taken: 0,
        };
        let mut reference = GpuSim::new(config.clone());
        reference.launch(trace_program(), dims);
        reference.run(&mut hooks).expect("healthy run");
        let want = format!("{:?}", reference.rt_report_parts().expect("rt on"));

        let mut gpu = GpuSim::new(config.clone());
        gpu.launch(trace_program(), dims);
        let mut hooks = TestHooks {
            width: 256,
            scripts_taken: 0,
        };
        let outcome = gpu.run_until(&mut hooks, 40).expect("healthy slice");
        assert!(matches!(outcome, RunOutcome::Paused), "{outcome:?}");
        let mut enc = vksim_snapshot::Enc::new();
        gpu.save_state(&mut enc);
        let payload = enc.into_bytes();

        let mut restored = GpuSim::new(config);
        restored.launch(trace_program(), dims);
        let mut dec = vksim_snapshot::Dec::new(&payload);
        restored.restore_state(&mut dec).expect("restore");
        dec.finish().expect("full consumption");
        let mut hooks = TestHooks {
            width: 256,
            scripts_taken: 0,
        };
        restored.run(&mut hooks).expect("healthy resumed tail");
        let got = format!("{:?}", restored.rt_report_parts().expect("rt on"));
        assert_eq!(want, got, "resumed rt analytics must be identical");
    }

    #[test]
    fn restore_rejects_rt_analytics_presence_mismatch() {
        let mut gpu = GpuSim::new(rt_config());
        gpu.launch(
            trace_program(),
            LaunchDims {
                width: 64,
                height: 1,
                depth: 1,
            },
        );
        let mut enc = vksim_snapshot::Enc::new();
        gpu.save_state(&mut enc);
        let payload = enc.into_bytes();
        let mut other = GpuSim::new(small_config());
        other.launch(
            trace_program(),
            LaunchDims {
                width: 64,
                height: 1,
                depth: 1,
            },
        );
        let mut dec = vksim_snapshot::Dec::new(&payload);
        let err = other
            .restore_state(&mut dec)
            .expect_err("rt analytics presence mismatch");
        assert!(
            matches!(&err, vksim_snapshot::SnapError::Malformed(m) if m.contains("rt-analytics")),
            "{err:?}"
        );
    }

    #[test]
    fn rt_counter_tracks_reach_chrome_trace() {
        let mut config = rt_config();
        config.trace = vksim_trace::TraceConfig {
            enabled: true,
            interval: 16,
            ..config.trace
        };
        let mut gpu = GpuSim::new(config);
        gpu.launch(
            trace_program(),
            LaunchDims {
                width: 256,
                height: 1,
                depth: 1,
            },
        );
        let mut hooks = TestHooks {
            width: 256,
            scripts_taken: 0,
        };
        gpu.run(&mut hooks).expect("healthy run");
        let report = gpu.take_trace_report().expect("tracing enabled");
        assert!(
            !report.rt_warp_latency.is_empty(),
            "traversal-latency aggregates missing from trace report"
        );
        let json = vksim_trace::chrome_trace_json(&report);
        assert!(
            json.contains("\"rt_trace_warps\""),
            "rt counter tracks missing from chrome trace"
        );
        let summary = vksim_trace::hotspot_summary(&report, 5);
        assert!(
            summary.contains("top traversal-latency warps"),
            "rt hotspot section missing: {summary}"
        );
    }

    // -----------------------------------------------------------------
    // Property: on random divergent kernels the cycle-accounting
    // breakdown conserves (Σ categories == num_sms × cycles) and is
    // byte-identical between the serial and parallel engines.
    // -----------------------------------------------------------------

    mod accounting_properties {
        use super::*;
        use vksim_testkit::prop::{check, u32_in};
        use vksim_testkit::prop_assert_eq;

        fn prop_program(threshold: u32, alu_len: u32, with_store: bool) -> vksim_isa::Program {
            let mut b = ProgramBuilder::new();
            let [idx, thr, acc, one] = b.regs::<4>();
            let p = b.pred();
            b.emit(vksim_isa::op::Instr::RtRead {
                dst: idx,
                query: RtQuery::LaunchId(0),
            });
            b.mov_imm_u32(thr, threshold);
            b.mov_imm_u32(acc, 0);
            b.mov_imm_u32(one, 1);
            b.setp_i(p, vksim_isa::op::CmpOp::Lt, idx, thr);
            let join = b.new_label();
            let els = b.new_label();
            b.ssy(join);
            b.bra_if(els, p, false);
            for _ in 0..alu_len {
                b.iadd(acc, acc, one);
            }
            b.bra(join);
            b.bind_label(els);
            b.iadd(acc, acc, one);
            b.bind_label(join);
            b.sync();
            if with_store {
                let [base, addr, four] = b.regs::<3>();
                b.mov_imm_u32(base, 0x60_0000);
                b.mov_imm_u32(four, 4);
                b.imul(addr, idx, four);
                b.iadd(addr, addr, base);
                b.st_global(addr, 0, acc);
            }
            b.exit();
            b.build()
        }

        fn run_case(threads: usize, program: &vksim_isa::Program, width: u32) -> String {
            let mut gpu = GpuSim::new(GpuConfig {
                threads,
                ..accounting_config()
            });
            gpu.launch(
                program.clone(),
                LaunchDims {
                    width,
                    height: 1,
                    depth: 1,
                },
            );
            let mut shards: Vec<TestHooks> = (0..2)
                .map(|_| TestHooks {
                    width,
                    scripts_taken: 0,
                })
                .collect();
            gpu.run_sharded(&mut shards).expect("healthy run");
            let report = gpu.prof_report().expect("accounting enabled");
            assert!(
                report.conservation_holds(),
                "conservation violated at {threads} threads: {report:?}"
            );
            report.flat_json()
        }

        #[test]
        fn random_kernels_conserve_at_any_thread_count() {
            std::env::remove_var("VKSIM_THREADS");
            let strat = (u32_in(0, 33), u32_in(1, 12), u32_in(1, 200), u32_in(0, 2));
            check(&strat, |&(threshold, alu_len, width, store)| {
                let program = prop_program(threshold, alu_len, store == 1);
                let serial = run_case(1, &program, width);
                let parallel = run_case(4, &program, width);
                prop_assert_eq!(
                    &serial,
                    &parallel,
                    "breakdown diverged (threshold {threshold}, alu {alu_len}, \
                     width {width}, store {store})"
                );
                Ok(())
            });
        }
    }

    #[test]
    fn sharded_serial_matches_single_hooks_run() {
        // run() with one hook object and run_sharded() with per-SM shards
        // must agree when the hook state partitions by thread id.
        let mut gpu = GpuSim::new(small_config());
        gpu.launch(
            trace_program(),
            LaunchDims {
                width: 256,
                height: 1,
                depth: 1,
            },
        );
        let mut hooks = TestHooks {
            width: 256,
            scripts_taken: 0,
        };
        let single = gpu.run(&mut hooks).expect("healthy run");
        let sharded = run_trace_with_threads(1);
        assert_eq!(single.cycles, sharded.cycles);
        assert_eq!(single.counters, sharded.counters);
    }
}
