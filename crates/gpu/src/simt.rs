//! SIMT divergence handling: IPDOM stack and ITS multipath engines.
//!
//! Both engines consume the `SSY`/`SYNC` reconvergence markers the shader
//! translator emits around structured control flow:
//!
//! * **Stack** (baseline, paper §II-A): one runnable context; `SSY` pushes
//!   a join entry capturing the active mask; a divergent branch pushes the
//!   taken side as a split and continues on the fall-through side; `SYNC`
//!   pops — first the deferred splits, finally the join, reconverging all
//!   lanes. Only one warp split is schedulable at a time.
//! * **Multipath** (ITS, paper §IV-B): warp splits live in a table and are
//!   *all* schedulable; reconvergence is tracked in join entries keyed by
//!   the `SSY` point. This is what lets the two sides of a branch overlap
//!   long-latency `traverseAS` instructions.

/// A 32-lane activity mask.
pub type Mask = u32;

/// All 32 lanes active.
pub const FULL_MASK: Mask = u32::MAX;

/// What the executed instruction did to control flow, from the engine's
/// perspective.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CtxOutcome {
    /// Straight-line instruction: advance pc.
    Fallthrough,
    /// A branch; `taken` is the subset of the context's lanes that take it.
    Branch {
        /// Branch target.
        target: u32,
        /// Lanes taking the branch.
        taken: Mask,
    },
    /// `SSY reconv`: push a reconvergence point.
    Ssy {
        /// The join pc (where the matching `SYNC` sits).
        reconv: u32,
    },
    /// `SYNC`: reconverge.
    Sync,
    /// Lanes executed `Exit`.
    Exit,
}

/// What [`SimtEngine::apply`] did to the warp's divergence state, for
/// observers (the tracing layer). Purely informational: engines behave
/// identically whether or not the caller looks at it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ApplyInfo {
    /// The outcome split the context into two schedulable sides (stack:
    /// one deferred; multipath: both runnable).
    pub diverged: bool,
    /// The outcome merged lanes back together at a reconvergence point.
    pub reconverged: bool,
}

/// A runnable warp split.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ctx {
    /// Stable context id (for per-context scheduling state).
    pub id: u32,
    /// Program counter.
    pub pc: u32,
    /// Active lanes.
    pub mask: Mask,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum StackEntry {
    Join { pc: u32, mask: Mask },
    Split { pc: u32, mask: Mask },
}

/// IPDOM stack engine: exactly one runnable context.
#[derive(Clone, Debug)]
pub struct SimtStack {
    pc: u32,
    mask: Mask,
    stack: Vec<StackEntry>,
    exited: Mask,
}

impl SimtStack {
    fn new(mask: Mask) -> Self {
        SimtStack {
            pc: 0,
            mask,
            stack: Vec::new(),
            exited: 0,
        }
    }

    fn contexts(&self) -> Vec<Ctx> {
        if self.mask == 0 {
            Vec::new()
        } else {
            vec![Ctx {
                id: 0,
                pc: self.pc,
                mask: self.mask,
            }]
        }
    }

    fn apply(&mut self, outcome: CtxOutcome) -> ApplyInfo {
        let mut info = ApplyInfo::default();
        match outcome {
            CtxOutcome::Fallthrough => self.pc += 1,
            CtxOutcome::Ssy { reconv } => {
                self.stack.push(StackEntry::Join {
                    pc: reconv,
                    mask: self.mask,
                });
                self.pc += 1;
            }
            CtxOutcome::Branch { target, taken } => {
                let taken = taken & self.mask;
                let not_taken = self.mask & !taken;
                if taken == 0 {
                    self.pc += 1;
                } else if not_taken == 0 {
                    self.pc = target;
                } else {
                    // Defer the taken side; continue on fall-through.
                    self.stack.push(StackEntry::Split {
                        pc: target,
                        mask: taken,
                    });
                    self.mask = not_taken;
                    self.pc += 1;
                    info.diverged = true;
                }
            }
            CtxOutcome::Sync => match self.stack.pop() {
                Some(StackEntry::Split { pc, mask }) => {
                    // Current lanes park at the join (they are part of the
                    // join entry's mask); run the deferred split.
                    self.pc = pc;
                    self.mask = mask & !self.exited;
                    if self.mask == 0 {
                        self.unwind();
                    }
                }
                Some(StackEntry::Join { pc, mask }) => {
                    self.pc = pc + 1;
                    self.mask = mask & !self.exited;
                    info.reconverged = true;
                    if self.mask == 0 {
                        self.unwind();
                    }
                }
                None => self.pc += 1,
            },
            CtxOutcome::Exit => {
                self.exited |= self.mask;
                self.mask = 0;
                self.unwind();
            }
        }
        info
    }

    // Current mask is empty: resume from the stack.
    fn unwind(&mut self) {
        while self.mask == 0 {
            match self.stack.pop() {
                Some(StackEntry::Split { pc, mask }) => {
                    self.pc = pc;
                    self.mask = mask & !self.exited;
                }
                Some(StackEntry::Join { pc, mask }) => {
                    self.pc = pc + 1;
                    self.mask = mask & !self.exited;
                }
                None => return, // warp done
            }
        }
    }

    fn done(&self) -> bool {
        self.mask == 0 && self.stack.is_empty()
    }

    fn save(&self, e: &mut vksim_snapshot::Enc) {
        e.u32(self.pc);
        e.u32(self.mask);
        e.seq(self.stack.len());
        for entry in &self.stack {
            match *entry {
                StackEntry::Join { pc, mask } => {
                    e.u8(0);
                    e.u32(pc);
                    e.u32(mask);
                }
                StackEntry::Split { pc, mask } => {
                    e.u8(1);
                    e.u32(pc);
                    e.u32(mask);
                }
            }
        }
        e.u32(self.exited);
    }

    fn load(d: &mut vksim_snapshot::Dec<'_>) -> Result<Self, vksim_snapshot::SnapError> {
        let pc = d.u32()?;
        let mask = d.u32()?;
        let n = d.seq()?;
        let mut stack = Vec::with_capacity(n);
        for _ in 0..n {
            let tag = d.u8()?;
            let pc = d.u32()?;
            let mask = d.u32()?;
            stack.push(match tag {
                0 => StackEntry::Join { pc, mask },
                1 => StackEntry::Split { pc, mask },
                t => {
                    return Err(vksim_snapshot::SnapError::Malformed(format!(
                        "simt stack entry tag {t}"
                    )))
                }
            });
        }
        let exited = d.u32()?;
        Ok(SimtStack {
            pc,
            mask,
            stack,
            exited,
        })
    }
}

#[derive(Clone, Debug)]
struct JoinEntry {
    reconv: u32,
    expected: Mask,
    arrived: Mask,
    parent_joins: Vec<u32>,
    completed: bool,
}

#[derive(Clone, Debug)]
struct Split {
    id: u32,
    pc: u32,
    mask: Mask,
    joins: Vec<u32>,
}

/// ITS multipath engine: all warp splits are runnable; reconvergence is
/// tracked in a join table.
#[derive(Clone, Debug)]
pub struct Multipath {
    splits: Vec<Split>,
    joins: Vec<JoinEntry>,
    exited: Mask,
    next_id: u32,
}

impl Multipath {
    fn new(mask: Mask) -> Self {
        Multipath {
            splits: vec![Split {
                id: 0,
                pc: 0,
                mask,
                joins: Vec::new(),
            }],
            joins: Vec::new(),
            exited: 0,
            next_id: 1,
        }
    }

    fn contexts(&self) -> Vec<Ctx> {
        self.splits
            .iter()
            .map(|s| Ctx {
                id: s.id,
                pc: s.pc,
                mask: s.mask,
            })
            .collect()
    }

    fn split_index(&self, id: u32) -> Option<usize> {
        self.splits.iter().position(|s| s.id == id)
    }

    fn apply(&mut self, ctx_id: u32, outcome: CtxOutcome) -> ApplyInfo {
        let mut info = ApplyInfo::default();
        let Some(i) = self.split_index(ctx_id) else {
            return info;
        };
        match outcome {
            CtxOutcome::Fallthrough => self.splits[i].pc += 1,
            CtxOutcome::Ssy { reconv } => {
                let parent = self.splits[i].joins.clone();
                self.joins.push(JoinEntry {
                    reconv,
                    expected: self.splits[i].mask,
                    arrived: 0,
                    parent_joins: parent,
                    completed: false,
                });
                let jid = (self.joins.len() - 1) as u32;
                self.splits[i].joins.push(jid);
                self.splits[i].pc += 1;
            }
            CtxOutcome::Branch { target, taken } => {
                let mask = self.splits[i].mask;
                let taken = taken & mask;
                let not_taken = mask & !taken;
                if taken == 0 {
                    self.splits[i].pc += 1;
                } else if not_taken == 0 {
                    self.splits[i].pc = target;
                } else {
                    // True multipath: both sides become schedulable splits.
                    let joins = self.splits[i].joins.clone();
                    self.splits[i].mask = not_taken;
                    self.splits[i].pc += 1;
                    let id = self.next_id;
                    self.next_id += 1;
                    self.splits.push(Split {
                        id,
                        pc: target,
                        mask: taken,
                        joins,
                    });
                    info.diverged = true;
                }
            }
            CtxOutcome::Sync => {
                let split = self.splits.remove(i);
                match split.joins.last().copied() {
                    Some(jid) => {
                        self.joins[jid as usize].arrived |= split.mask;
                        info.reconverged = self.try_complete_join(jid);
                    }
                    None => {
                        // SYNC without SSY: resume past it.
                        let mut s = split;
                        s.pc += 1;
                        self.splits.push(s);
                    }
                }
            }
            CtxOutcome::Exit => {
                let split = self.splits.remove(i);
                self.exited |= split.mask;
                // Exited lanes will never arrive: re-check every join this
                // split was nested under.
                for jid in split.joins.iter().rev() {
                    self.try_complete_join(*jid);
                }
            }
        }
        info
    }

    fn try_complete_join(&mut self, jid: u32) -> bool {
        let j = &self.joins[jid as usize];
        if j.completed {
            return false;
        }
        let live_expected = j.expected & !self.exited;
        if j.arrived & live_expected != live_expected {
            return false;
        }
        let j = &mut self.joins[jid as usize];
        j.completed = true;
        let mask = j.arrived & !self.exited;
        let pc = j.reconv + 1;
        let joins = j.parent_joins.clone();
        if mask != 0 {
            let id = self.next_id;
            self.next_id += 1;
            self.splits.push(Split {
                id,
                pc,
                mask,
                joins,
            });
        } else if let Some(&parent) = joins.last() {
            // All lanes exited below this join: propagate completion upward.
            self.try_complete_join(parent);
        }
        true
    }

    fn done(&self) -> bool {
        self.splits.is_empty()
    }

    fn save(&self, e: &mut vksim_snapshot::Enc) {
        // Split and join table order is load-bearing (scheduler walks the
        // split Vec in order), so both are written as-is.
        e.seq(self.splits.len());
        for s in &self.splits {
            e.u32(s.id);
            e.u32(s.pc);
            e.u32(s.mask);
            e.seq(s.joins.len());
            for &j in &s.joins {
                e.u32(j);
            }
        }
        e.seq(self.joins.len());
        for j in &self.joins {
            e.u32(j.reconv);
            e.u32(j.expected);
            e.u32(j.arrived);
            e.seq(j.parent_joins.len());
            for &p in &j.parent_joins {
                e.u32(p);
            }
            e.bool(j.completed);
        }
        e.u32(self.exited);
        e.u32(self.next_id);
    }

    fn load(d: &mut vksim_snapshot::Dec<'_>) -> Result<Self, vksim_snapshot::SnapError> {
        let ns = d.seq()?;
        let mut splits = Vec::with_capacity(ns);
        for _ in 0..ns {
            let id = d.u32()?;
            let pc = d.u32()?;
            let mask = d.u32()?;
            let nj = d.seq()?;
            let mut joins = Vec::with_capacity(nj);
            for _ in 0..nj {
                joins.push(d.u32()?);
            }
            splits.push(Split {
                id,
                pc,
                mask,
                joins,
            });
        }
        let nj = d.seq()?;
        let mut joins = Vec::with_capacity(nj);
        for _ in 0..nj {
            let reconv = d.u32()?;
            let expected = d.u32()?;
            let arrived = d.u32()?;
            let np = d.seq()?;
            let mut parent_joins = Vec::with_capacity(np);
            for _ in 0..np {
                parent_joins.push(d.u32()?);
            }
            let completed = d.bool()?;
            joins.push(JoinEntry {
                reconv,
                expected,
                arrived,
                parent_joins,
                completed,
            });
        }
        let exited = d.u32()?;
        let next_id = d.u32()?;
        Ok(Multipath {
            splits,
            joins,
            exited,
            next_id,
        })
    }
}

/// A warp's divergence engine: stack or multipath.
#[derive(Clone, Debug)]
pub enum SimtEngine {
    /// IPDOM stack (baseline).
    Stack(SimtStack),
    /// ITS multipath.
    Multipath(Multipath),
}

impl SimtEngine {
    /// Creates a stack engine with the given initial active mask.
    pub fn stack(mask: Mask) -> Self {
        SimtEngine::Stack(SimtStack::new(mask))
    }

    /// Creates a multipath engine with the given initial active mask.
    pub fn multipath(mask: Mask) -> Self {
        SimtEngine::Multipath(Multipath::new(mask))
    }

    /// All currently runnable contexts (stack mode: at most one).
    pub fn contexts(&self) -> Vec<Ctx> {
        match self {
            SimtEngine::Stack(s) => s.contexts(),
            SimtEngine::Multipath(m) => m.contexts(),
        }
    }

    /// Applies an executed instruction's control-flow outcome to context
    /// `ctx_id`. The returned [`ApplyInfo`] reports divergence and
    /// reconvergence edges for observers; it is safe to ignore.
    pub fn apply(&mut self, ctx_id: u32, outcome: CtxOutcome) -> ApplyInfo {
        match self {
            SimtEngine::Stack(s) => s.apply(outcome),
            SimtEngine::Multipath(m) => m.apply(ctx_id, outcome),
        }
    }

    /// `true` when every lane has exited.
    pub fn done(&self) -> bool {
        match self {
            SimtEngine::Stack(s) => s.done(),
            SimtEngine::Multipath(m) => m.done(),
        }
    }

    /// `true` while the warp is mid-divergence: a split or join is
    /// outstanding (stack: non-empty reconvergence stack; multipath:
    /// multiple live splits or an incomplete join). Purely observational
    /// — the cycle-accounting layer uses it to classify otherwise-idle
    /// cycles as divergence/reconvergence wait.
    pub fn mid_divergence(&self) -> bool {
        match self {
            SimtEngine::Stack(s) => !s.stack.is_empty(),
            SimtEngine::Multipath(m) => m.splits.len() > 1 || m.joins.iter().any(|j| !j.completed),
        }
    }

    /// Serializes the engine (mode tag + full divergence state) for a
    /// machine-state snapshot.
    pub fn save(&self, e: &mut vksim_snapshot::Enc) {
        match self {
            SimtEngine::Stack(s) => {
                e.u8(0);
                s.save(e);
            }
            SimtEngine::Multipath(m) => {
                e.u8(1);
                m.save(e);
            }
        }
    }

    /// Restores an engine written by [`SimtEngine::save`].
    ///
    /// # Errors
    ///
    /// An unknown mode tag or a corrupt table is malformed.
    pub fn load(d: &mut vksim_snapshot::Dec<'_>) -> Result<Self, vksim_snapshot::SnapError> {
        Ok(match d.u8()? {
            0 => SimtEngine::Stack(SimtStack::load(d)?),
            1 => SimtEngine::Multipath(Multipath::load(d)?),
            t => {
                return Err(vksim_snapshot::SnapError::Malformed(format!(
                    "simt engine tag {t}"
                )))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives an engine through an if/else pattern:
    /// ```text
    /// 0: ssy 5
    /// 1: bra 3 if lane-odd       (then = lanes even at 2, else at 3)
    /// 2: bra 5                   (then side jumps to sync)
    /// 3: nop                     (else side)
    /// 4: -                       (falls to 5)
    /// 5: sync
    /// 6: exit
    /// ```
    fn drive_if_else(engine: &mut SimtEngine) -> Vec<(u32, Mask)> {
        let mut visits = Vec::new();
        let mut guard = 0;
        while !engine.done() {
            guard += 1;
            assert!(guard < 100, "engine did not converge");
            let ctxs = engine.contexts();
            let Some(c) = ctxs.first().copied() else {
                break;
            };
            visits.push((c.pc, c.mask));
            let outcome = match c.pc {
                0 => CtxOutcome::Ssy { reconv: 5 },
                1 => CtxOutcome::Branch {
                    target: 3,
                    taken: 0xAAAA_AAAA & c.mask,
                },
                2 => CtxOutcome::Branch {
                    target: 5,
                    taken: c.mask,
                },
                3 => CtxOutcome::Fallthrough,
                4 => CtxOutcome::Fallthrough,
                5 => CtxOutcome::Sync,
                6 => CtxOutcome::Exit,
                other => panic!("unexpected pc {other}"),
            };
            engine.apply(c.id, outcome);
        }
        visits
    }

    #[test]
    fn stack_if_else_reconverges_full_mask() {
        let mut e = SimtEngine::stack(FULL_MASK);
        let visits = drive_if_else(&mut e);
        // The instruction after sync (pc 6) must run with the full mask.
        let at6: Vec<Mask> = visits
            .iter()
            .filter(|(pc, _)| *pc == 6)
            .map(|&(_, m)| m)
            .collect();
        assert_eq!(at6, vec![FULL_MASK]);
        // Both sides executed with complementary masks.
        let at3: Mask = visits
            .iter()
            .filter(|(pc, _)| *pc == 3)
            .map(|&(_, m)| m)
            .sum();
        let at2: Mask = visits
            .iter()
            .filter(|(pc, _)| *pc == 2)
            .map(|&(_, m)| m)
            .sum();
        assert_eq!(at3 | at2, FULL_MASK);
        assert_eq!(at3 & at2, 0);
    }

    #[test]
    fn mid_divergence_tracks_split_lifetime() {
        for mut e in [SimtEngine::stack(0b1111), SimtEngine::multipath(0b1111)] {
            assert!(!e.mid_divergence(), "fresh warp is convergent");
            e.apply(0, CtxOutcome::Ssy { reconv: 4 });
            e.apply(
                0,
                CtxOutcome::Branch {
                    target: 3,
                    taken: 0b0011,
                },
            );
            assert!(e.mid_divergence(), "outstanding split/join");
            // Walk every context to the sync; after the final arrival the
            // warp is convergent again.
            let mut guard = 0;
            while e.mid_divergence() {
                guard += 1;
                assert!(guard < 50);
                let c = e.contexts()[0];
                if c.pc == 4 {
                    e.apply(c.id, CtxOutcome::Sync);
                } else {
                    e.apply(
                        c.id,
                        CtxOutcome::Branch {
                            target: 4,
                            taken: c.mask,
                        },
                    );
                }
            }
            assert_eq!(e.contexts()[0].mask, 0b1111);
        }
    }

    #[test]
    fn stack_uniform_branch_no_divergence() {
        let mut e = SimtEngine::stack(FULL_MASK);
        // pc0: ssy 3; pc1: branch all-taken to 3... then sync, exit.
        e.apply(0, CtxOutcome::Ssy { reconv: 3 });
        let c = e.contexts()[0];
        assert_eq!(c.pc, 1);
        e.apply(
            0,
            CtxOutcome::Branch {
                target: 3,
                taken: FULL_MASK,
            },
        );
        let c = e.contexts()[0];
        assert_eq!(c.pc, 3);
        assert_eq!(c.mask, FULL_MASK);
        e.apply(0, CtxOutcome::Sync);
        assert_eq!(e.contexts()[0].pc, 4);
        e.apply(0, CtxOutcome::Exit);
        assert!(e.done());
    }

    #[test]
    fn apply_info_reports_divergence_edges() {
        for mut e in [SimtEngine::stack(0b1111), SimtEngine::multipath(0b1111)] {
            assert_eq!(
                e.apply(0, CtxOutcome::Ssy { reconv: 4 }),
                ApplyInfo::default()
            );
            let info = e.apply(
                0,
                CtxOutcome::Branch {
                    target: 3,
                    taken: 0b0011,
                },
            );
            assert!(info.diverged && !info.reconverged);
            // Walk every context to the sync; the final arrival reconverges.
            let mut reconverged = 0;
            let mut guard = 0;
            while !e.done() && reconverged == 0 {
                guard += 1;
                assert!(guard < 50);
                let c = e.contexts()[0];
                let info = match c.pc {
                    4 => e.apply(c.id, CtxOutcome::Sync),
                    _ => e.apply(
                        c.id,
                        CtxOutcome::Branch {
                            target: 4,
                            taken: c.mask,
                        },
                    ),
                };
                assert!(
                    !info.diverged,
                    "uniform branches must not report divergence"
                );
                if info.reconverged {
                    reconverged += 1;
                }
            }
            assert_eq!(reconverged, 1);
            assert_eq!(e.contexts()[0].mask, 0b1111);
        }
    }

    #[test]
    fn stack_partial_exit_inside_divergence() {
        let mut e = SimtEngine::stack(0b1111);
        e.apply(0, CtxOutcome::Ssy { reconv: 10 });
        // Lanes 0,1 take the branch to 5 and exit there; lanes 2,3 fall
        // through and sync at 10.
        e.apply(
            0,
            CtxOutcome::Branch {
                target: 5,
                taken: 0b0011,
            },
        );
        // Current = fall-through lanes 2,3 at pc 2.
        let c = e.contexts()[0];
        assert_eq!((c.pc, c.mask), (2, 0b1100));
        // They run to the sync.
        e.apply(
            0,
            CtxOutcome::Branch {
                target: 10,
                taken: c.mask,
            },
        );
        e.apply(0, CtxOutcome::Sync); // pops the split (lanes 0,1 at pc 5)
        let c = e.contexts()[0];
        assert_eq!((c.pc, c.mask), (5, 0b0011));
        e.apply(0, CtxOutcome::Exit); // those lanes exit
                                      // Unwind pops the join; remaining lanes resume after the sync.
        let c = e.contexts()[0];
        assert_eq!((c.pc, c.mask), (11, 0b1100));
        e.apply(0, CtxOutcome::Exit);
        assert!(e.done());
    }

    #[test]
    fn multipath_if_else_reconverges() {
        let mut e = SimtEngine::multipath(FULL_MASK);
        let visits = drive_if_else(&mut e);
        let at6: Vec<Mask> = visits
            .iter()
            .filter(|(pc, _)| *pc == 6)
            .map(|&(_, m)| m)
            .collect();
        assert_eq!(at6, vec![FULL_MASK]);
    }

    #[test]
    fn multipath_exposes_both_splits_simultaneously() {
        let mut e = SimtEngine::multipath(FULL_MASK);
        e.apply(0, CtxOutcome::Ssy { reconv: 9 });
        e.apply(
            0,
            CtxOutcome::Branch {
                target: 5,
                taken: 0xFFFF,
            },
        );
        let ctxs = e.contexts();
        assert_eq!(ctxs.len(), 2, "ITS: both sides schedulable");
        let masks: Mask = ctxs.iter().map(|c| c.mask).sum();
        assert_eq!(masks, FULL_MASK);
        // The stack engine in the same situation exposes only one.
        let mut s = SimtEngine::stack(FULL_MASK);
        s.apply(0, CtxOutcome::Ssy { reconv: 9 });
        s.apply(
            0,
            CtxOutcome::Branch {
                target: 5,
                taken: 0xFFFF,
            },
        );
        assert_eq!(s.contexts().len(), 1);
    }

    #[test]
    fn multipath_join_waits_for_all_splits() {
        let mut e = SimtEngine::multipath(0b11);
        e.apply(0, CtxOutcome::Ssy { reconv: 4 });
        e.apply(
            0,
            CtxOutcome::Branch {
                target: 3,
                taken: 0b01,
            },
        );
        let ctxs = e.contexts();
        assert_eq!(ctxs.len(), 2);
        // First split syncs: join not yet complete.
        let first = ctxs[0];
        // walk it to pc4 then sync
        let mut c = first;
        while c.pc != 4 {
            e.apply(c.id, CtxOutcome::Fallthrough);
            c = *e.contexts().iter().find(|x| x.id == c.id).unwrap();
        }
        e.apply(c.id, CtxOutcome::Sync);
        assert_eq!(e.contexts().len(), 1, "other split still running");
        // Second split arrives.
        let mut c = e.contexts()[0];
        while c.pc != 4 {
            e.apply(c.id, CtxOutcome::Fallthrough);
            c = *e.contexts().iter().find(|x| x.id == c.id).unwrap();
        }
        e.apply(c.id, CtxOutcome::Sync);
        let merged = e.contexts();
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].mask, 0b11);
        assert_eq!(merged[0].pc, 5);
    }

    #[test]
    fn multipath_exit_releases_join() {
        let mut e = SimtEngine::multipath(0b11);
        e.apply(0, CtxOutcome::Ssy { reconv: 4 });
        e.apply(
            0,
            CtxOutcome::Branch {
                target: 3,
                taken: 0b01,
            },
        );
        // Taken split exits instead of syncing.
        let taken = *e.contexts().iter().find(|c| c.mask == 0b01).unwrap();
        e.apply(taken.id, CtxOutcome::Exit);
        // The other split syncs; join must complete with just its lanes.
        let other = *e.contexts().iter().find(|c| c.mask == 0b10).unwrap();
        let mut c = other;
        while c.pc != 4 {
            e.apply(c.id, CtxOutcome::Fallthrough);
            c = *e.contexts().iter().find(|x| x.id == c.id).unwrap();
        }
        e.apply(c.id, CtxOutcome::Sync);
        let merged = e.contexts();
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].mask, 0b10);
        e.apply(merged[0].id, CtxOutcome::Exit);
        assert!(e.done());
    }

    #[test]
    fn nested_divergence_stack() {
        // Outer if (lanes 0-1 vs 2-3), inner if inside then-side (lane 0 vs 1).
        let mut e = SimtEngine::stack(0b1111);
        e.apply(0, CtxOutcome::Ssy { reconv: 20 }); // outer join at 20
        e.apply(
            0,
            CtxOutcome::Branch {
                target: 10,
                taken: 0b1100,
            },
        );
        // Current: lanes 0,1 at pc 2 (fall-through).
        assert_eq!(e.contexts()[0].mask, 0b0011);
        e.apply(0, CtxOutcome::Ssy { reconv: 8 }); // inner join at 8
        e.apply(
            0,
            CtxOutcome::Branch {
                target: 6,
                taken: 0b0001,
            },
        );
        assert_eq!(e.contexts()[0].mask, 0b0010);
        // Fall-through lane reaches inner sync.
        e.apply(
            0,
            CtxOutcome::Branch {
                target: 8,
                taken: 0b0010,
            },
        );
        e.apply(0, CtxOutcome::Sync); // pops inner split (lane 0 at 6)
        assert_eq!((e.contexts()[0].pc, e.contexts()[0].mask), (6, 0b0001));
        e.apply(
            0,
            CtxOutcome::Branch {
                target: 8,
                taken: 0b0001,
            },
        );
        e.apply(0, CtxOutcome::Sync); // pops inner join -> lanes 0,1 at 9
        assert_eq!((e.contexts()[0].pc, e.contexts()[0].mask), (9, 0b0011));
        // They run to outer sync at 20.
        e.apply(
            0,
            CtxOutcome::Branch {
                target: 20,
                taken: 0b0011,
            },
        );
        e.apply(0, CtxOutcome::Sync); // pops outer split (lanes 2,3 at 10)
        assert_eq!((e.contexts()[0].pc, e.contexts()[0].mask), (10, 0b1100));
        e.apply(
            0,
            CtxOutcome::Branch {
                target: 20,
                taken: 0b1100,
            },
        );
        e.apply(0, CtxOutcome::Sync); // pops outer join -> all lanes at 21
        assert_eq!((e.contexts()[0].pc, e.contexts()[0].mask), (21, 0b1111));
    }

    #[test]
    fn loop_divergence_converges() {
        // while-loop shape: ssy J; TOP: branch exiting lanes to J (sync);
        // body; bra TOP. Lanes exit the loop on different iterations.
        let mut e = SimtEngine::stack(0b111);
        e.apply(0, CtxOutcome::Ssy { reconv: 9 });
        let mut iterations = 0;
        loop {
            iterations += 1;
            assert!(iterations < 20);
            let c = e.contexts()[0];
            if c.pc == 9 {
                e.apply(0, CtxOutcome::Sync);
                let c2 = e.contexts();
                if c2.is_empty() || c2[0].pc == 10 {
                    break;
                }
                continue;
            }
            // pc1: loop-exit branch: lane i leaves on iteration i+1.
            let leaving = match iterations {
                i if i < 4 => 1u32 << (i - 1),
                _ => c.mask,
            } & c.mask;
            e.apply(
                0,
                CtxOutcome::Branch {
                    target: 9,
                    taken: leaving,
                },
            );
            let c = e.contexts();
            if c.is_empty() {
                break;
            }
            if c[0].pc == 9 {
                continue;
            }
            // body at pc2 then back to pc1... model as single fallthrough
            // returning to the branch pc.
            e.apply(
                c[0].id,
                CtxOutcome::Branch {
                    target: 1,
                    taken: c[0].mask,
                },
            );
        }
        let c = e.contexts();
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].mask, 0b111, "all lanes reconverged after the loop");
        assert_eq!(c[0].pc, 10);
    }

    // -----------------------------------------------------------------
    // Property tests (vksim-testkit): random structured programs with
    // nested divergence must terminate, cover each instruction at most
    // once per lane, and behave identically on both engines.
    // -----------------------------------------------------------------

    mod properties {
        use super::*;
        use vksim_testkit::prop::{check, map, u32_in, u64_in};
        use vksim_testkit::{prop_assert_eq, Pcg32};

        /// A compiled structured program: straight-line code with nested
        /// if/else regions bracketed by `SSY`/`SYNC`, optional early exits
        /// on the taken side, and a terminal `Exit`.
        #[derive(Clone, Copy, Debug, PartialEq)]
        enum Instr {
            Ssy(u32),
            Bra { target: u32, taken: Mask },
            Nop,
            Sync,
            Exit,
        }

        /// Emits one block: optional nops around an optional nested
        /// if/else. Branch masks are random but static, so the lane
        /// partition (and therefore per-pc coverage) is schedule-free.
        fn gen_block(rng: &mut Pcg32, depth: u32, code: &mut Vec<Instr>) {
            for _ in 0..rng.u64_range(0, 2) {
                code.push(Instr::Nop);
            }
            if depth > 0 && rng.bool_with(0.85) {
                let ssy_at = code.len();
                code.push(Instr::Nop); // patched to Ssy below
                let bra_at = code.len();
                code.push(Instr::Nop); // patched to the divergent Bra
                gen_block(rng, depth - 1, code); // fall-through (else) side
                let jump_at = code.len();
                code.push(Instr::Nop); // patched to an unconditional Bra
                let then_start = code.len() as u32;
                gen_block(rng, depth - 1, code); // taken (then) side
                if rng.bool_with(0.15) {
                    code.push(Instr::Exit); // early exit under the join
                }
                let sync_at = code.len() as u32;
                code.push(Instr::Sync);
                code[ssy_at] = Instr::Ssy(sync_at);
                code[bra_at] = Instr::Bra {
                    target: then_start,
                    taken: rng.next_u32(),
                };
                code[jump_at] = Instr::Bra {
                    target: sync_at,
                    taken: FULL_MASK,
                };
            }
            for _ in 0..rng.u64_range(0, 2) {
                code.push(Instr::Nop);
            }
        }

        fn gen_program(seed: u64) -> Vec<Instr> {
            let mut rng = Pcg32::new(seed);
            let mut code = Vec::new();
            gen_block(&mut rng, 3, &mut code);
            code.push(Instr::Exit);
            code
        }

        /// Drives an engine to completion with a (seeded) random context
        /// schedule. Returns the per-pc executed-lane coverage, or an error
        /// if the engine ran away, left the program, or re-executed a pc on
        /// a lane.
        fn run_program(
            prog: &[Instr],
            mut engine: SimtEngine,
            sched_seed: u64,
        ) -> Result<Vec<Mask>, String> {
            let mut rng = Pcg32::new(sched_seed);
            let mut coverage = vec![0u32; prog.len()];
            let mut steps = 0u32;
            while !engine.done() {
                steps += 1;
                if steps > 10_000 {
                    return Err("engine did not terminate within 10k steps".into());
                }
                let ctxs = engine.contexts();
                if ctxs.is_empty() {
                    return Err("no runnable context but engine not done".into());
                }
                let c = ctxs[rng.u64_below(ctxs.len() as u64) as usize];
                let pc = c.pc as usize;
                if pc >= prog.len() {
                    return Err(format!("pc {pc} escaped the program"));
                }
                if coverage[pc] & c.mask != 0 {
                    return Err(format!(
                        "lanes {:#010x} re-executed pc {pc}",
                        coverage[pc] & c.mask
                    ));
                }
                coverage[pc] |= c.mask;
                let outcome = match prog[pc] {
                    Instr::Nop => CtxOutcome::Fallthrough,
                    Instr::Ssy(reconv) => CtxOutcome::Ssy { reconv },
                    Instr::Bra { target, taken } => CtxOutcome::Branch {
                        target,
                        taken: taken & c.mask,
                    },
                    Instr::Sync => CtxOutcome::Sync,
                    Instr::Exit => CtxOutcome::Exit,
                };
                engine.apply(c.id, outcome);
            }
            Ok(coverage)
        }

        fn strategy() -> impl vksim_testkit::Strategy<Value = (u64, u32, u64)> {
            (
                u64_in(0, 1 << 48),                  // program seed
                map(u32_in(0, u32::MAX), |m| m | 1), // nonzero initial mask
                u64_in(0, 1 << 48),                  // multipath schedule seed
            )
        }

        /// Both engines terminate on arbitrary nested-divergence programs,
        /// every initial lane eventually exits, and no lane executes an
        /// instruction it does not own.
        #[test]
        fn random_nested_divergence_terminates_and_exits_all_lanes() {
            check(&strategy(), |&(prog_seed, init_mask, sched_seed)| {
                let prog = gen_program(prog_seed);
                for engine in [
                    SimtEngine::stack(init_mask),
                    SimtEngine::multipath(init_mask),
                ] {
                    let coverage = run_program(&prog, engine, sched_seed)?;
                    prop_assert_eq!(coverage[0], init_mask, "entry block runs all lanes");
                    let mut exited: Mask = 0;
                    for (pc, instr) in prog.iter().enumerate() {
                        prop_assert_eq!(
                            coverage[pc] & !init_mask,
                            0,
                            "phantom lanes at pc {pc}: {:#010x}",
                            coverage[pc]
                        );
                        if *instr == Instr::Exit {
                            exited |= coverage[pc];
                        }
                    }
                    prop_assert_eq!(exited, init_mask, "every lane must reach an Exit");
                }
                Ok(())
            });
        }

        /// The IPDOM stack and the ITS multipath engine are semantically
        /// equivalent on structured programs: identical per-pc lane
        /// coverage regardless of the multipath schedule.
        #[test]
        fn stack_and_multipath_agree_on_coverage() {
            check(&strategy(), |&(prog_seed, init_mask, sched_seed)| {
                let prog = gen_program(prog_seed);
                let stack = run_program(&prog, SimtEngine::stack(init_mask), 0)?;
                for schedule in [sched_seed, sched_seed ^ 0xDEAD_BEEF] {
                    let multi = run_program(&prog, SimtEngine::multipath(init_mask), schedule)?;
                    prop_assert_eq!(
                        &stack,
                        &multi,
                        "engines diverged (prog seed {prog_seed}, mask {init_mask:#010x}, \
                         schedule {schedule})\n  stack: {stack:?}\n  multi: {multi:?}"
                    );
                }
                Ok(())
            });
        }
    }
}
