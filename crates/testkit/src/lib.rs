//! Hermetic verification substrate for the Vulkan-Sim reproduction.
//!
//! The workspace builds with **zero external dependencies** so that
//! `cargo build && cargo test` succeed with the network disabled. This
//! crate supplies everything the tests and benches previously pulled from
//! crates.io:
//!
//! * [`rng`] — a deterministic, seedable PCG32 generator with the small
//!   distribution helpers scene generators and tests need (replaces
//!   `rand`).
//! * [`prop`] — a minimal property-testing harness: strategy combinators
//!   for numeric ranges, tuples, mapped values and vectors; case
//!   generation; iteration-bounded shrinking; failure-seed reporting
//!   (replaces `proptest`).
//! * [`bench`] — a micro-benchmark harness with warmup, calibrated inner
//!   loops, median/MAD reporting and JSON output to `BENCH_<suite>.json`
//!   (replaces `criterion` for the `harness = false` bench targets).
//! * [`golden`] — exact-compare golden-counter snapshots: the regression
//!   gate that catches silent drift in simulator statistics. Goldens are
//!   checked-in JSON; set `VKSIM_BLESS=1` to regenerate them.
//!
//! Simulator papers live and die by reproducible counters; every future
//! performance PR diffs against the golden suite built on this crate.
//!
//! # Example
//!
//! ```
//! use vksim_testkit::prop::{check, f32_in, vec_of};
//! use vksim_testkit::prop_assert;
//!
//! check(&vec_of(f32_in(-1.0, 1.0), 1, 16), |xs| {
//!     let sum: f32 = xs.iter().sum();
//!     prop_assert!(sum.abs() <= xs.len() as f32, "sum {sum} out of bounds");
//!     Ok(())
//! });
//! ```

pub mod bench;
pub mod golden;
pub mod json;
pub mod prop;
pub mod rng;

pub use bench::Bench;
pub use golden::assert_matches_golden;
pub use prop::{check, check_with, Config, Strategy, TestResult};
pub use rng::Pcg32;

/// Re-export of the standard optimization barrier, so bench targets do not
/// need to reach into `std::hint` themselves.
pub use std::hint::black_box;
